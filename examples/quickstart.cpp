// Quickstart: build a circuit, run the three analyses, measure things.
//
// The circuit is a CMOS inverter driving an RC load - enough to see the
// netlist API, the operating point, a DC transfer sweep, and a transient
// with delay/energy measurements.
#include <iostream>

#include "nemsim/core/metrics.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/dcsweep.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/units.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::literals;
  using devices::Capacitor;
  using devices::Mosfet;
  using devices::MosPolarity;
  using devices::Resistor;
  using devices::SourceWave;
  using devices::VoltageSource;

  // ---- 1. Build the netlist ------------------------------------------
  spice::Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  spice::NodeId load = ckt.node("load");

  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  auto& vin = ckt.add<VoltageSource>(
      "Vin", in, ckt.gnd(),
      SourceWave::pulse(0.0, 1.2, 0.2_ns, 20.0_ps, 20.0_ps, 1.0_ns));
  // A 90 nm inverter from the technology cards...
  ckt.add<Mosfet>("Mp", out, in, vdd, MosPolarity::kPmos, tech::pmos_90nm(),
                  0.4_um, 0.1_um);
  ckt.add<Mosfet>("Mn", out, in, ckt.gnd(), MosPolarity::kNmos,
                  tech::nmos_90nm(), 0.2_um, 0.1_um);
  // ... driving an RC wire.
  ckt.add<Resistor>("Rw", out, load, 500.0);
  ckt.add<Capacitor>("Cw", load, ckt.gnd(), 5.0_fF);

  spice::MnaSystem system(ckt);

  // ---- 2. Operating point --------------------------------------------
  spice::OpResult op = spice::operating_point(system);
  std::cout << "OP with input low: v(out) = " << op.v("out")
            << " V, supply leakage = " << -op.value("i(Vdd)") * 1e9
            << " nA\n";

  // ---- 3. DC transfer sweep ------------------------------------------
  auto points = spice::linspace(0.0, 1.2, 61);
  spice::Waveform vtc = spice::dc_sweep(
      system, [&](double v) { vin.set_dc(v); }, points);
  const double vm =
      spice::cross_time(vtc, "v(out)", 0.6, spice::Edge::kFalling);
  std::cout << "Inverter switching threshold: " << vm << " V\n";

  // ---- 4. Transient + measurements -----------------------------------
  vin.set_wave(SourceWave::pulse(0.0, 1.2, 0.2_ns, 20.0_ps, 20.0_ps, 1.0_ns));
  spice::TransientOptions tran;
  tran.tstop = 2.5_ns;
  spice::Waveform wave = spice::transient(system, tran);

  const double tphl = spice::propagation_delay(
      wave, "v(in)", 0.6, spice::Edge::kRising, "v(load)", 0.6,
      spice::Edge::kFalling);
  const double energy =
      core::source_energy(ckt, wave, "Vdd", 0.0, wave.end_time());
  std::cout << "High-to-low delay to the load: " << tphl * 1e12 << " ps\n";
  std::cout << "Supply energy over the run:   " << energy * 1e15 << " fJ\n";
  return 0;
}
