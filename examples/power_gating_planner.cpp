// Power gating planner: size a sleep transistor for a logic block.
//
// Given a delay-degradation budget, find the smallest CMOS and NEMS
// footer switches that meet it, then compare the sleep-mode leakage -
// the practical version of the paper's Section 6 argument.
#include <iostream>

#include "nemsim/core/power_gating.h"
#include "nemsim/util/table.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::core;

  constexpr double kDelayBudget = 1.05;  // <= 5 % slower than ungated

  std::cout << "Sizing a footer sleep switch for a 4-stage inverter chain "
               "(delay budget: +5 %)\n\n";

  Table t({"device", "W (um)", "delay ratio", "vgnd droop (mV)",
           "sleep leak (nW)", "wake-up (ps)", "meets budget"});
  struct Pick {
    bool found = false;
    GatedBlockResult r;
    double width = 0.0;
  };
  Pick picks[2];

  for (SleepDeviceType dev : {SleepDeviceType::kCmos, SleepDeviceType::kNems}) {
    for (double w : {0.5e-6, 1e-6, 2e-6, 4e-6}) {
      GatedBlockConfig c;
      c.device = dev;
      c.sleep_width = w;
      GatedBlockResult r = measure_gated_block(c);
      const double ratio = r.delay_gated / r.delay_ungated;
      const bool ok = ratio <= kDelayBudget;
      t.begin_row()
          .cell(dev == SleepDeviceType::kCmos ? "CMOS" : "NEMS")
          .cell(w * 1e6, 3)
          .cell(ratio, 4)
          .cell(r.vgnd_droop * 1e3, 3)
          .cell(r.sleep_leakage * 1e9, 3)
          .cell(r.wakeup_time * 1e12, 3)
          .cell(ok ? "yes" : "no");
      Pick& p = picks[dev == SleepDeviceType::kNems ? 1 : 0];
      if (ok && !p.found) {
        p.found = true;
        p.r = r;
        p.width = w;
      }
    }
  }
  t.print(std::cout);

  if (picks[0].found && picks[1].found) {
    std::cout << "\nSmallest switches meeting the budget: CMOS "
              << picks[0].width * 1e6 << " um vs NEMS "
              << picks[1].width * 1e6 << " um.\n";
    std::cout << "At those sizes the NEMS switch leaks "
              << Table::format(
                     picks[0].r.sleep_leakage / picks[1].r.sleep_leakage, 3)
              << "x less in sleep - the paper's headline: size the NEMS "
                 "switch up and keep both speed and the leakage win.\n";
  } else {
    std::cout << "\nNo switch met the delay budget; widen the sweep.\n";
  }
  return 0;
}
