// NEMFET device exploration: hysteretic Id-Vgs curves, the pull-in /
// pull-out window, beam dynamics during a switching transient, and the
// paper's polynomial fit of the electrostatic force (Section 2.4).
#include <iostream>

#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/sources.h"
#include "nemsim/linalg/polyfit.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"
#include "nemsim/tech/characterize.h"
#include "nemsim/util/table.h"
#include "nemsim/util/units.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::literals;
  using devices::Nemfet;
  using devices::NemsPolarity;
  using devices::SourceWave;
  using devices::VoltageSource;

  const devices::NemsParams params = tech::nems_90nm();

  // ---- Hysteretic transfer curves (both sweep directions) -------------
  tech::NemsIV iv = tech::characterize_nemfet(params, 1.0_um, 1.2);
  std::cout << "NEMFET at W = 1 um, Vds = 1.2 V\n";
  std::cout << "  Ion  = " << iv.iv.ion * 1e6 << " uA  (paper: 330)\n";
  std::cout << "  Ioff = " << iv.iv.ioff * 1e12 << " pA  (paper: 110)\n";
  std::cout << "  effective swing = " << iv.iv.swing_mv_dec << " mV/dec\n";
  std::cout << "  pull-in  " << iv.pull_in_v << " V (analytic "
            << params.analytic_pull_in_voltage() << " V)\n";
  std::cout << "  pull-out " << iv.pull_out_v << " V (analytic "
            << params.analytic_pull_out_voltage() << " V)\n\n";

  Table t({"Vgs (V)", "Id up-sweep (A)", "Id down-sweep (A)"});
  for (std::size_t i = 0; i < iv.up_sweep.vgs.size(); i += 24) {
    const double v = iv.up_sweep.vgs[i];
    // The down sweep runs from Vdd to 0: index from the other end.
    const std::size_t j = iv.down_sweep.vgs.size() - 1 - i;
    t.begin_row()
        .cell(v, 3)
        .cell_sci(iv.up_sweep.id[i], 3)
        .cell_sci(iv.down_sweep.id[j], 3);
  }
  t.print(std::cout);

  // ---- Polynomial fit of the electrostatic force ----------------------
  // The paper's SPICE model replaces f(Vg) by a fitted polynomial [23];
  // here is that fit extracted from the physical force law at rest.
  Nemfet probe("probe", spice::NodeId{1}, spice::NodeId{2}, spice::NodeId{0},
               NemsPolarity::kN, params, 1.0_um);
  std::vector<double> vg, force;
  for (double v = 0.0; v <= 1.2001; v += 0.05) {
    vg.push_back(v);
    force.push_back(probe.electrostatic_force(v, 0.0));
  }
  linalg::Polynomial fit = linalg::polyfit(vg, force, 2);
  std::cout << "\nPolynomial fit of f(Vg) at x = 0 (paper Section 2.4):\n  "
            << "f(Vg) ~ " << fit.coefficients()[0] << " + "
            << fit.coefficients()[1] << "*Vg + " << fit.coefficients()[2]
            << "*Vg^2  (rms error "
            << linalg::fit_rms_error(fit, vg, force) << " N)\n";

  // ---- Beam dynamics during switching ---------------------------------
  spice::Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  ckt.add<VoltageSource>("Vd", d, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>(
      "Vg", g, ckt.gnd(),
      SourceWave::pulse(0.0, 1.2, 0.1_ns, 10.0_ps, 10.0_ps, 1.0_ns));
  ckt.add<Nemfet>("X1", d, g, ckt.gnd(), NemsPolarity::kN, params, 1.0_um);
  spice::MnaSystem system(ckt);
  spice::TransientOptions tran;
  tran.tstop = 2.0_ns;
  spice::Waveform wave = spice::transient(system, tran);

  const double gap = params.gap0;
  const double t_on =
      spice::cross_time(wave, "X1.x", 0.9 * gap, spice::Edge::kRising) -
      0.1_ns;
  const double t_off =
      spice::cross_time(wave, "X1.x", 0.5 * gap, spice::Edge::kFalling, 1,
                        1.1_ns) -
      1.11_ns;
  std::cout << "\nBeam dynamics: pull-in transit " << t_on * 1e12
            << " ps, release to half-gap " << t_off * 1e12 << " ps\n";
  return 0;
}
