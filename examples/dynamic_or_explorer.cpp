// Dynamic OR design exploration: compare the conventional and hybrid
// gates at one design point, then explore the keeper-size tradeoff the
// way a designer would before committing to a noise-margin target.
#include <iostream>

#include "nemsim/core/dynamic_or.h"
#include "nemsim/core/metrics.h"
#include "nemsim/util/table.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::core;

  // ---- Side-by-side at the paper's central configuration --------------
  DynamicOrConfig cfg;
  cfg.fanin = 8;
  cfg.fanout = 3;

  std::cout << "8-input dynamic OR, fan-out 3\n\n";
  Table t({"gate", "delay (ps)", "P_switch (uW)", "P_leak (nW)",
           "noise margin (V)", "PDP @ alpha=0.2 (fJ)"});
  for (bool hybrid : {false, true}) {
    cfg.hybrid = hybrid;
    DynamicOrGate gate = build_dynamic_or(cfg);
    DynamicOrMetrics m = measure_dynamic_or(gate);
    const double nm = measure_noise_margin(gate, 0.02);
    const double pdp = power_delay_product(0.2, m.leakage_power,
                                           m.switching_power,
                                           m.worst_case_delay);
    t.begin_row()
        .cell(hybrid ? "hybrid NEMS-CMOS" : "CMOS")
        .cell(m.worst_case_delay * 1e12, 4)
        .cell(m.switching_power * 1e6, 4)
        .cell(m.leakage_power * 1e9, 4)
        .cell(nm, 3)
        .cell(pdp * 1e15, 4);
  }
  t.print(std::cout);

  // ---- Keeper sweep on the CMOS gate ----------------------------------
  std::cout << "\nCMOS keeper sweep (the hybrid gate needs none of this - "
               "its pull-down barely leaks):\n";
  Table k({"keeper W (um)", "delay (ps)", "noise margin (V)"});
  for (double w : {0.2e-6, 0.4e-6, 0.6e-6, 0.8e-6}) {
    DynamicOrConfig c;
    c.fanin = 8;
    c.fanout = 3;
    c.autosize_keeper = false;
    c.keeper_width = w;
    DynamicOrGate gate = build_dynamic_or(c);
    const double d = measure_worst_case_delay(gate);
    const double nm = measure_noise_margin(gate, 0.02);
    k.begin_row().cell(w * 1e6, 3).cell(d * 1e12, 4).cell(nm, 3);
  }
  k.print(std::cout);
  std::cout << "\nBigger keeper -> better noise margin, worse delay: the "
               "Figure 9 tradeoff.\n";
  return 0;
}
