// SRAM cell design exploration: evaluate all four Figure 13 cell
// architectures on the three paper metrics, then size the hybrid cell's
// NEMS devices to walk the SNM-vs-latency frontier.
#include <iostream>

#include "nemsim/core/sram.h"
#include "nemsim/util/table.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::core;

  // ---- The four architectures ----------------------------------------
  std::cout << "SRAM cell comparison (90 nm, Vdd = 1.2 V, 20 fF bitlines)\n\n";
  Table t({"cell", "SNM (mV)", "read latency (ps)", "standby leak (nW)"});
  for (SramKind kind : {SramKind::kConventional, SramKind::kDualVt,
                        SramKind::kAsymmetric, SramKind::kHybrid}) {
    SramConfig c;
    c.kind = kind;
    ButterflyCurves b = measure_butterfly(c, 61);
    t.begin_row()
        .cell(sram_kind_name(kind))
        .cell(b.snm * 1e3, 4)
        .cell(measure_read_latency(c) * 1e12, 4)
        .cell(measure_standby_leakage(c) * 1e9, 4);
  }
  t.print(std::cout);

  // ---- Hybrid sizing frontier -----------------------------------------
  std::cout << "\nHybrid cell: NEMS pull-down width vs SNM and latency\n";
  Table f({"W_nems_pd (um)", "SNM (mV)", "latency (ps)"});
  for (double w : {0.25e-6, 0.3e-6, 0.4e-6, 0.5e-6}) {
    SramConfig c;
    c.kind = SramKind::kHybrid;
    c.w_nems_pulldown = w;
    ButterflyCurves b = measure_butterfly(c, 61);
    f.begin_row()
        .cell(w * 1e6, 3)
        .cell(b.snm * 1e3, 4)
        .cell(measure_read_latency(c) * 1e12, 4);
  }
  f.print(std::cout);
  std::cout << "\nWider NEMS pull-downs read faster AND hold the node "
               "harder (higher SNM) - the cost is area, not stability.\n";
  return 0;
}
