// NEMS resonator explorer: AC analysis of a NEMFET biased below pull-in
// (the RSG-MOSFET resonator of the paper's ref [22]).
//
// Prints the displacement Bode response at two bias points and the
// bias-tuning curve of the resonant frequency; dumps the full response to
// CSV-style rows for plotting.
#include <cmath>
#include <iostream>
#include <numbers>

#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/ac.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/table.h"
#include "nemsim/util/units.h"

namespace {

nemsim::spice::AcResult run_ac(double vbias,
                               const std::vector<double>& freqs) {
  using namespace nemsim;
  using namespace nemsim::literals;
  spice::Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  ckt.add<devices::VoltageSource>("Vd", d, ckt.gnd(),
                                  devices::SourceWave::dc(0.05));
  auto& vg = ckt.add<devices::VoltageSource>(
      "Vg", g, ckt.gnd(), devices::SourceWave::dc(vbias));
  vg.set_ac(1.0);
  ckt.add<devices::Nemfet>("X1", d, g, ckt.gnd(),
                           devices::NemsPolarity::kN, tech::nems_90nm(),
                           1.0_um);
  spice::MnaSystem system(ckt);
  return spice::ac_analysis(system, freqs);
}

}  // namespace

int main() {
  using namespace nemsim;

  const devices::NemsParams p = tech::nems_90nm();
  const double f0 =
      std::sqrt(p.spring_k / p.mass) / (2.0 * std::numbers::pi);
  std::cout << "NEMFET resonator explorer (bare-beam f0 = "
            << Table::format(f0 * 1e-9, 3) << " GHz, pull-in "
            << Table::format(p.analytic_pull_in_voltage(), 3) << " V)\n\n";

  // Bode table at a light and a heavy bias.
  auto freqs = spice::logspace(f0 / 30.0, 10.0 * f0, 25);
  spice::AcResult light = run_ac(0.15, freqs);
  spice::AcResult heavy = run_ac(0.35, freqs);

  Table t({"f (GHz)", "|x| @0.15V (pm/V)", "|x| @0.35V (pm/V)"});
  for (std::size_t k = 0; k < freqs.size(); k += 2) {
    t.begin_row()
        .cell(freqs[k] * 1e-9, 3)
        .cell(light.magnitude("X1.x", k) * 1e12, 4)
        .cell(heavy.magnitude("X1.x", k) * 1e12, 4);
  }
  t.print(std::cout);

  // Bias tuning curve.
  std::cout << "\nBias tuning of the resonance:\n";
  Table b({"V_bias (V)", "f_peak (GHz)", "static |x| (pm/V)"});
  for (double v = 0.05; v <= 0.4001; v += 0.05) {
    spice::AcResult ac = run_ac(v, freqs);
    auto mags = ac.magnitude_series("X1.x");
    const auto it = std::max_element(mags.begin(), mags.end());
    b.begin_row()
        .cell(v, 3)
        .cell(freqs[static_cast<std::size_t>(it - mags.begin())] * 1e-9, 4)
        .cell(mags.front() * 1e12, 4);
  }
  b.print(std::cout);
  std::cout << "\nElectrostatic spring softening: k_eff = k - dFe/dx "
               "shrinks with bias, tuning the resonator down toward the "
               "pull-in instability.\n";
  return 0;
}
