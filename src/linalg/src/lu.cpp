#include "nemsim/linalg/lu.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "nemsim/util/error.h"

namespace nemsim::linalg {

LuDecomposition::LuDecomposition(Matrix a, double pivot_tolerance)
    : lu_(std::move(a)) {
  require(lu_.rows() == lu_.cols(), "LU: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  // Row equilibration: MNA rows mix units (amperes for KCL, volts for
  // KVL, newtons for electromechanical rows); scaling each row by its
  // max magnitude makes partial pivoting meaningful across them.
  row_scale_.assign(n, 1.0);
  for (std::size_t r = 0; r < n; ++r) {
    double m = 0.0;
    for (std::size_t c = 0; c < n; ++c) m = std::max(m, std::abs(lu_(r, c)));
    if (m == 0.0) {
      throw SingularMatrixError("LU: zero row " + std::to_string(r));
    }
    row_scale_[r] = 1.0 / m;
    for (std::size_t c = 0; c < n; ++c) lu_(r, c) *= row_scale_[r];
  }

  double min_pivot = std::numeric_limits<double>::infinity();
  double max_pivot = 0.0;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k at/below k.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag <= pivot_tolerance || pivot_mag == 0.0) {
      throw SingularMatrixError("LU: singular matrix at column " +
                                std::to_string(k));
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot_row, c));
      }
      std::swap(perm_[k], perm_[pivot_row]);
      perm_sign_ = -perm_sign_;
    }
    min_pivot = std::min(min_pivot, pivot_mag);
    max_pivot = std::max(max_pivot, pivot_mag);

    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = lu_(r, k) * inv_pivot;
      if (m == 0.0) continue;
      lu_(r, k) = m;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= m * lu_(k, c);
      }
    }
  }
  rcond_ = n == 0 ? 1.0 : min_pivot / max_pivot;
}

Vector LuDecomposition::solve(const Vector& b) const {
  require(b.size() == size(), "LU::solve: rhs size mismatch");
  Vector x(size());
  for (std::size_t i = 0; i < size(); ++i) {
    x[i] = b[perm_[i]] * row_scale_[perm_[i]];
  }
  // Forward substitution (L has implicit unit diagonal).
  for (std::size_t r = 1; r < size(); ++r) {
    double sum = x[r];
    for (std::size_t c = 0; c < r; ++c) sum -= lu_(r, c) * x[c];
    x[r] = sum;
  }
  // Back substitution with U.
  for (std::size_t ri = size(); ri-- > 0;) {
    double sum = x[ri];
    for (std::size_t c = ri + 1; c < size(); ++c) sum -= lu_(ri, c) * x[c];
    x[ri] = sum / lu_(ri, ri);
  }
  return x;
}

void LuDecomposition::solve_in_place(Vector& x) const {
  x = solve(x);
}

double LuDecomposition::determinant() const {
  double det = perm_sign_;
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  for (double s : row_scale_) det /= s;
  return det;
}

Vector solve(Matrix a, const Vector& b) {
  return LuDecomposition(std::move(a)).solve(b);
}

}  // namespace nemsim::linalg
