#include "nemsim/linalg/complex.h"

#include <algorithm>
#include <cmath>

#include "nemsim/util/error.h"

namespace nemsim::linalg {

double CVector::inf_norm() const {
  double n = 0.0;
  for (const Complex& z : data_) n = std::max(n, std::abs(z));
  return n;
}

CMatrix CMatrix::from_real_pair(const Matrix& g, const Matrix& c,
                                double omega) {
  require(g.rows() == c.rows() && g.cols() == c.cols(),
          "CMatrix::from_real_pair: shape mismatch");
  CMatrix out(g.rows(), g.cols());
  for (std::size_t r = 0; r < g.rows(); ++r) {
    for (std::size_t col = 0; col < g.cols(); ++col) {
      out(r, col) = Complex(g(r, col), omega * c(r, col));
    }
  }
  return out;
}

CVector CMatrix::multiply(const CVector& x) const {
  require(cols_ == x.size(), "CMatrix::multiply: shape mismatch");
  CVector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += (*this)(r, c) * x[c];
    y[r] = sum;
  }
  return y;
}

CLuDecomposition::CLuDecomposition(CMatrix a) : lu_(std::move(a)) {
  require(lu_.rows() == lu_.cols(), "CLU: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  row_scale_.assign(n, 1.0);
  for (std::size_t r = 0; r < n; ++r) {
    double m = 0.0;
    for (std::size_t c = 0; c < n; ++c) m = std::max(m, std::abs(lu_(r, c)));
    if (m == 0.0) throw SingularMatrixError("CLU: zero row");
    row_scale_[r] = 1.0 / m;
    for (std::size_t c = 0; c < n; ++c) lu_(r, c) *= row_scale_[r];
  }

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag == 0.0) {
      throw SingularMatrixError("CLU: singular at column " +
                                std::to_string(k));
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot_row, c));
      }
      std::swap(perm_[k], perm_[pivot_row]);
    }
    const Complex inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const Complex m = lu_(r, k) * inv_pivot;
      if (m == Complex{}) continue;
      lu_(r, k) = m;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
}

CVector CLuDecomposition::solve(const CVector& b) const {
  require(b.size() == size(), "CLU::solve: rhs size mismatch");
  const std::size_t n = size();
  CVector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = b[perm_[i]] * row_scale_[perm_[i]];
  }
  for (std::size_t r = 1; r < n; ++r) {
    Complex sum = x[r];
    for (std::size_t c = 0; c < r; ++c) sum -= lu_(r, c) * x[c];
    x[r] = sum;
  }
  for (std::size_t ri = n; ri-- > 0;) {
    Complex sum = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= lu_(ri, c) * x[c];
    x[ri] = sum / lu_(ri, ri);
  }
  return x;
}

CVector solve(CMatrix a, const CVector& b) {
  return CLuDecomposition(std::move(a)).solve(b);
}

}  // namespace nemsim::linalg
