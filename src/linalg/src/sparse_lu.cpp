#include "nemsim/linalg/sparse_lu.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "nemsim/util/error.h"

namespace nemsim::linalg {

namespace {

/// Greedy minimum-degree ordering on the undirected graph of A + A^T.
/// Eliminating a vertex turns its neighbourhood into a clique (exactly
/// the fill Gaussian elimination creates), so repeatedly removing the
/// lowest-degree vertex defers the dense rail/clock rows of MNA matrices
/// to the end, where they no longer generate fill.
std::vector<std::size_t> minimum_degree_order(std::size_t n,
                                              const CsrView& a) {
  std::vector<std::set<std::size_t>> adj(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = a.row_start[r]; k < a.row_start[r + 1]; ++k) {
      const std::size_t c = a.col_index[k];
      if (c != r) {
        adj[r].insert(c);
        adj[c].insert(r);
      }
    }
  }
  std::vector<char> eliminated(n, 0);
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    std::size_t best_deg = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      const std::size_t deg = adj[v].size();
      if (best == n || deg < best_deg) {
        best = v;
        best_deg = deg;
      }
    }
    order.push_back(best);
    eliminated[best] = 1;
    const std::vector<std::size_t> nbr(adj[best].begin(), adj[best].end());
    for (std::size_t u : nbr) adj[u].erase(best);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      for (std::size_t j = i + 1; j < nbr.size(); ++j) {
        adj[nbr[i]].insert(nbr[j]);
        adj[nbr[j]].insert(nbr[i]);
      }
    }
    adj[best].clear();
  }
  return order;
}

}  // namespace

void SparseLuFactorization::factor(const CsrView& a) {
  require(a.n > 0, "SparseLuFactorization: empty matrix");
  const std::size_t n = a.n;

  // Fill-reducing symmetric preorder: elimination step k works on
  // original row/column col_perm_[k].
  col_perm_ = minimum_degree_order(n, a);
  std::vector<std::size_t> inv(n);
  for (std::size_t k = 0; k < n; ++k) inv[col_perm_[k]] = k;

  // Map-based working rows in the permuted space, as in
  // SparseMatrix::lu_solve, but keeping the L factors in place (columns
  // < the row's elimination step).
  std::vector<std::map<std::size_t, double>> rows(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = a.row_start[r]; k < a.row_start[r + 1]; ++k) {
      require(a.col_index[k] < n, "SparseLuFactorization: column out of range");
      rows[inv[r]][inv[a.col_index[k]]] += a.values[k];
    }
  }

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  // Relative pivot threshold for the sparsity-aware pivot choice below;
  // any candidate within this factor of the column maximum is considered
  // numerically acceptable.
  constexpr double kPivotAlpha = 0.1;

  for (std::size_t k = 0; k < n; ++k) {
    // Threshold pivoting with a Markowitz-style tie-break: magnitude-only
    // partial pivoting fills circuit matrices badly (supply rails couple
    // many rows), so among the numerically acceptable candidates
    // (|value| >= alpha * column max) take the shortest remaining row —
    // its update touches the fewest columns, which is what creates fill.
    double best_mag = 0.0;
    for (std::size_t r = k; r < n; ++r) {
      auto it = rows[order[r]].find(k);
      if (it != rows[order[r]].end() && std::abs(it->second) > best_mag) {
        best_mag = std::abs(it->second);
      }
    }
    if (best_mag == 0.0) {
      throw SingularMatrixError("sparse LU: singular at column " +
                                std::to_string(k));
    }
    std::size_t best = n;
    std::size_t best_len = 0;
    for (std::size_t r = k; r < n; ++r) {
      auto it = rows[order[r]].find(k);
      if (it == rows[order[r]].end() ||
          std::abs(it->second) < kPivotAlpha * best_mag) {
        continue;
      }
      const std::size_t len = rows[order[r]].size();
      if (best == n || len < best_len) {
        best = r;
        best_len = len;
      }
    }
    std::swap(order[k], order[best]);
    const std::size_t prow = order[k];
    const double pivot = rows[prow].find(k)->second;

    for (std::size_t r = k + 1; r < n; ++r) {
      const std::size_t row = order[r];
      auto it = rows[row].find(k);
      if (it == rows[row].end()) continue;
      const double factor = it->second / pivot;
      it->second = factor;  // keep as the L entry
      for (auto pit = rows[prow].upper_bound(k); pit != rows[prow].end();
           ++pit) {
        rows[row][pit->first] -= factor * pit->second;
      }
    }
  }

  // Freeze the filled-in structure in pivot order.  orig_row_ maps the
  // pivot position back to the ORIGINAL row index (through both the
  // fill-reducing preorder and the numeric row pivoting).
  n_ = n;
  orig_row_.resize(n);
  for (std::size_t k = 0; k < n; ++k) orig_row_[k] = col_perm_[order[k]];
  row_ptr_.assign(n + 1, 0);
  cols_.clear();
  vals_.clear();
  diag_.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    for (const auto& [c, v] : rows[order[k]]) {
      if (c == k) diag_[k] = cols_.size();
      cols_.push_back(c);
      vals_.push_back(v);
    }
    row_ptr_[k + 1] = cols_.size();
  }

  // Pivot position of each original row.
  std::vector<std::size_t> pos_of_row(n);
  for (std::size_t k = 0; k < n; ++k) pos_of_row[order[k]] = k;

  auto slot_of = [&](std::size_t pos, std::size_t col) {
    const std::size_t* first = cols_.data() + row_ptr_[pos];
    const std::size_t* last = cols_.data() + row_ptr_[pos + 1];
    const std::size_t* it = std::lower_bound(first, last, col);
    require(it != last && *it == col,
            "SparseLuFactorization: internal pattern inconsistency");
    return static_cast<std::size_t>(it - cols_.data());
  };

  // Scatter map: input nonzero -> L+U slot (both permutations folded in).
  input_nnz_ = a.row_start[n];
  scatter_.resize(input_nnz_);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = a.row_start[r]; k < a.row_start[r + 1]; ++k) {
      scatter_[k] = slot_of(pos_of_row[inv[r]], inv[a.col_index[k]]);
    }
  }

  // Elimination schedule: for each step k, the rows below it with a
  // structural entry in column k, plus the tail-to-target slot mapping.
  col_ptr_.assign(n + 1, 0);
  targets_.clear();
  op_tgt_.clear();
  for (std::size_t pos = 0; pos < n; ++pos) {
    for (std::size_t s = row_ptr_[pos]; s < diag_[pos]; ++s) {
      ++col_ptr_[cols_[s] + 1];
    }
  }
  for (std::size_t k = 0; k < n; ++k) col_ptr_[k + 1] += col_ptr_[k];
  targets_.resize(col_ptr_[n]);
  std::vector<std::size_t> fill_at(col_ptr_.begin(), col_ptr_.end() - 1);
  for (std::size_t pos = 0; pos < n; ++pos) {
    for (std::size_t s = row_ptr_[pos]; s < diag_[pos]; ++s) {
      targets_[fill_at[cols_[s]]++] = Target{s, 0};
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t tail_begin = diag_[k] + 1;
    const std::size_t tail_len = row_ptr_[k + 1] - tail_begin;
    for (std::size_t t = col_ptr_[k]; t < col_ptr_[k + 1]; ++t) {
      Target& tgt = targets_[t];
      tgt.op_start = op_tgt_.size();
      // The L slot's row: recover the pivot position of the target row by
      // binary search over row_ptr_.
      const std::size_t pos =
          static_cast<std::size_t>(
              std::upper_bound(row_ptr_.begin(), row_ptr_.end(), tgt.l_slot) -
              row_ptr_.begin()) -
          1;
      for (std::size_t s = tail_begin; s < tail_begin + tail_len; ++s) {
        op_tgt_.push_back(slot_of(pos, cols_[s]));
      }
    }
  }
}

bool SparseLuFactorization::run_schedule() {
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t tail_begin = diag_[k] + 1;
    const std::size_t tail_len = row_ptr_[k + 1] - tail_begin;
    const double pivot = vals_[diag_[k]];
    // Threshold test against the U part of the pivot row: a pivot chosen
    // for other values may have decayed into instability.
    double row_max = std::abs(pivot);
    for (std::size_t s = tail_begin; s < tail_begin + tail_len; ++s) {
      row_max = std::max(row_max, std::abs(vals_[s]));
    }
    if (!(std::abs(pivot) > 0.0) || std::abs(pivot) < tau_ * row_max) {
      return false;
    }
    const double inv_pivot = 1.0 / pivot;
    for (std::size_t t = col_ptr_[k]; t < col_ptr_[k + 1]; ++t) {
      const Target& tgt = targets_[t];
      const double f = vals_[tgt.l_slot] * inv_pivot;
      vals_[tgt.l_slot] = f;
      const std::size_t* out = op_tgt_.data() + tgt.op_start;
      const double* src = vals_.data() + tail_begin;
      for (std::size_t i = 0; i < tail_len; ++i) {
        vals_[out[i]] -= f * src[i];
      }
    }
  }
  return true;
}

bool SparseLuFactorization::refactor(const CsrView& a) {
  if (n_ == 0 || a.n != n_ || a.row_start[n_] != input_nnz_) return false;
  std::fill(vals_.begin(), vals_.end(), 0.0);
  for (std::size_t i = 0; i < input_nnz_; ++i) {
    vals_[scatter_[i]] += a.values[i];
  }
  return run_schedule();
}

Vector SparseLuFactorization::solve(const Vector& b) const {
  Vector x = b;
  solve_in_place(x);
  return x;
}

void SparseLuFactorization::solve_in_place(Vector& x) const {
  require(analyzed(), "SparseLuFactorization::solve: not factored");
  require(x.size() == n_, "SparseLuFactorization::solve: size mismatch");

  // Forward substitution, L has unit diagonal; y overwrites x permuted
  // into pivot order.
  Vector y(n_, 0.0);
  for (std::size_t k = 0; k < n_; ++k) {
    double sum = x[orig_row_[k]];
    for (std::size_t s = row_ptr_[k]; s < diag_[k]; ++s) {
      sum -= vals_[s] * y[cols_[s]];
    }
    y[k] = sum;
  }
  // Back substitution with U; y is indexed by elimination step, so undo
  // the fill-reducing column permutation on the way out.
  for (std::size_t k = n_; k-- > 0;) {
    double sum = y[k];
    for (std::size_t s = diag_[k] + 1; s < row_ptr_[k + 1]; ++s) {
      sum -= vals_[s] * y[cols_[s]];
    }
    y[k] = sum / vals_[diag_[k]];
  }
  for (std::size_t k = 0; k < n_; ++k) x[col_perm_[k]] = y[k];
}

}  // namespace nemsim::linalg
