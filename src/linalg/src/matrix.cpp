#include "nemsim/linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "nemsim/util/error.h"

namespace nemsim::linalg {

double& Vector::at(std::size_t i) {
  require(i < data_.size(), "Vector::at: index out of range");
  return data_[i];
}

double Vector::at(std::size_t i) const {
  require(i < data_.size(), "Vector::at: index out of range");
  return data_[i];
}

void Vector::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

Vector& Vector::operator+=(const Vector& other) {
  require(size() == other.size(), "Vector+=: size mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  require(size() == other.size(), "Vector-=: size mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scale) {
  for (double& x : data_) x *= scale;
  return *this;
}

double Vector::inf_norm() const {
  double n = 0.0;
  for (double x : data_) n = std::max(n, std::abs(x));
  return n;
}

double Vector::two_norm() const { return std::sqrt(dot(*this, *this)); }

Vector operator+(Vector a, const Vector& b) { return a += b; }
Vector operator-(Vector a, const Vector& b) { return a -= b; }
Vector operator*(double s, Vector v) { return v *= s; }

double dot(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    require(row.size() == cols_, "Matrix: ragged initializer rows");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

void Matrix::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::reset(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_, "Matrix+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_, "Matrix-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scale) {
  for (double& x : data_) x *= scale;
  return *this;
}

Vector Matrix::multiply(const Vector& x) const {
  require(cols_ == x.size(), "Matrix::multiply: shape mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& other) const {
  require(cols_ == other.rows_, "Matrix::multiply: shape mismatch");
  Matrix out(rows_, other.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double Matrix::inf_norm() const {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += std::abs((*this)(r, c));
    best = std::max(best, sum);
  }
  return best;
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(const Matrix& a, const Matrix& b) { return a.multiply(b); }
Vector operator*(const Matrix& a, const Vector& x) { return a.multiply(x); }

std::ostream& operator<<(std::ostream& os, const Vector& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v[i];
  }
  return os << ']';
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c) os << ", ";
      os << m(r, c);
    }
    os << (r + 1 == m.rows() ? "]]" : "]\n");
  }
  return os;
}

}  // namespace nemsim::linalg
