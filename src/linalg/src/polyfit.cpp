#include "nemsim/linalg/polyfit.h"

#include <cmath>

#include "nemsim/linalg/lu.h"
#include "nemsim/util/error.h"

namespace nemsim::linalg {

Polynomial::Polynomial(std::vector<double> coefficients)
    : coeffs_(std::move(coefficients)) {
  require(!coeffs_.empty(), "Polynomial: need at least one coefficient");
}

double Polynomial::operator()(double x) const {
  double acc = 0.0;
  // Horner evaluation from the highest power down.
  for (std::size_t i = coeffs_.size(); i-- > 0;) acc = acc * x + coeffs_[i];
  return acc;
}

double Polynomial::derivative_at(double x) const {
  double acc = 0.0;
  for (std::size_t i = coeffs_.size(); i-- > 1;) {
    acc = acc * x + coeffs_[i] * static_cast<double>(i);
  }
  return acc;
}

Polynomial Polynomial::derivative() const {
  if (coeffs_.size() <= 1) return Polynomial({0.0});
  std::vector<double> d(coeffs_.size() - 1);
  for (std::size_t i = 1; i < coeffs_.size(); ++i) {
    d[i - 1] = coeffs_[i] * static_cast<double>(i);
  }
  return Polynomial(std::move(d));
}

Polynomial polyfit(std::span<const double> xs, std::span<const double> ys,
                   std::size_t degree) {
  require(xs.size() == ys.size(), "polyfit: xs and ys sizes differ");
  require(xs.size() >= degree + 1, "polyfit: not enough samples for degree");
  const std::size_t m = degree + 1;

  // Normal equations: (V^T V) c = V^T y with Vandermonde V.
  Matrix ata(m, m, 0.0);
  Vector aty(m, 0.0);
  std::vector<double> powers(2 * degree + 1);
  for (std::size_t s = 0; s < xs.size(); ++s) {
    double p = 1.0;
    for (std::size_t k = 0; k < powers.size(); ++k) {
      if (s == 0) powers[k] = 0.0;
      powers[k] += p;
      p *= xs[s];
    }
    p = 1.0;
    for (std::size_t r = 0; r < m; ++r) {
      aty[r] += p * ys[s];
      p *= xs[s];
    }
  }
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) ata(r, c) = powers[r + c];
  }

  Vector coeffs = solve(std::move(ata), aty);
  std::vector<double> out(coeffs.begin(), coeffs.end());
  return Polynomial(std::move(out));
}

double fit_rms_error(const Polynomial& poly, std::span<const double> xs,
                     std::span<const double> ys) {
  require(xs.size() == ys.size() && !xs.empty(),
          "fit_rms_error: bad sample spans");
  double sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = poly(xs[i]) - ys[i];
    sum += e * e;
  }
  return std::sqrt(sum / static_cast<double>(xs.size()));
}

}  // namespace nemsim::linalg
