#include "nemsim/linalg/sparse.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "nemsim/util/error.h"

namespace nemsim::linalg {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols,
                           std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  for (const Triplet& t : triplets) {
    require(t.row < rows && t.col < cols, "SparseMatrix: triplet out of range");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_start_.assign(rows_ + 1, 0);
  for (std::size_t i = 0; i < triplets.size();) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    if (sum != 0.0) {
      col_index_.push_back(triplets[i].col);
      values_.push_back(sum);
      ++row_start_[triplets[i].row + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_start_[r + 1] += row_start_[r];
}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense) {
  std::vector<Triplet> triplets;
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t c = 0; c < dense.cols(); ++c) {
      if (dense(r, c) != 0.0) triplets.push_back({r, c, dense(r, c)});
    }
  }
  return SparseMatrix(dense.rows(), dense.cols(), std::move(triplets));
}

double SparseMatrix::at(std::size_t row, std::size_t col) const {
  require(row < rows_ && col < cols_, "SparseMatrix::at: out of range");
  for (std::size_t k = row_start_[row]; k < row_start_[row + 1]; ++k) {
    if (col_index_[k] == col) return values_[k];
  }
  return 0.0;
}

Vector SparseMatrix::multiply(const Vector& x) const {
  require(x.size() == cols_, "SparseMatrix::multiply: shape mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      sum += values_[k] * x[col_index_[k]];
    }
    y[r] = sum;
  }
  return y;
}

Matrix SparseMatrix::to_dense() const {
  Matrix out(rows_, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      out(r, col_index_[k]) = values_[k];
    }
  }
  return out;
}

Vector SparseMatrix::gauss_seidel(const Vector& b, double tol,
                                  int max_iterations) const {
  require(rows_ == cols_, "gauss_seidel: matrix must be square");
  require(b.size() == rows_, "gauss_seidel: rhs size mismatch");
  Vector x(rows_, 0.0);
  const double bnorm = std::max(b.inf_norm(), 1e-300);
  for (int iter = 0; iter < max_iterations; ++iter) {
    for (std::size_t r = 0; r < rows_; ++r) {
      double diag = 0.0;
      double sum = b[r];
      for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
        if (col_index_[k] == r) {
          diag = values_[k];
        } else {
          sum -= values_[k] * x[col_index_[k]];
        }
      }
      require(diag != 0.0, "gauss_seidel: zero diagonal");
      x[r] = sum / diag;
    }
    // Residual check.
    Vector res = multiply(x);
    res -= b;
    if (res.inf_norm() / bnorm < tol) return x;
  }
  throw ConvergenceError("gauss_seidel: did not converge");
}

Vector SparseMatrix::lu_solve(const Vector& b) const {
  require(rows_ == cols_, "lu_solve: matrix must be square");
  require(b.size() == rows_, "lu_solve: rhs size mismatch");
  const std::size_t n = rows_;

  // Row-map working copy (fill-in inserts into the maps).
  std::vector<std::map<std::size_t, double>> rows(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      rows[r][col_index_[k]] = values_[k];
    }
  }
  std::vector<double> rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = b[i];
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot among remaining rows on column k.
    std::size_t best = k;
    double best_mag = 0.0;
    for (std::size_t r = k; r < n; ++r) {
      auto it = rows[order[r]].find(k);
      if (it != rows[order[r]].end() && std::abs(it->second) > best_mag) {
        best_mag = std::abs(it->second);
        best = r;
      }
    }
    if (best_mag == 0.0) {
      throw SingularMatrixError("lu_solve: singular at column " +
                                std::to_string(k));
    }
    std::swap(order[k], order[best]);
    const std::size_t prow = order[k];
    const double pivot = rows[prow][k];

    for (std::size_t r = k + 1; r < n; ++r) {
      const std::size_t row = order[r];
      auto it = rows[row].find(k);
      if (it == rows[row].end()) continue;
      const double factor = it->second / pivot;
      rows[row].erase(it);
      for (auto pit = rows[prow].upper_bound(k); pit != rows[prow].end();
           ++pit) {
        rows[row][pit->first] -= factor * pit->second;
      }
      rhs[row] -= factor * rhs[prow];
    }
  }

  // Back substitution in pivot order.
  Vector x(n, 0.0);
  for (std::size_t ki = n; ki-- > 0;) {
    const std::size_t row = order[ki];
    double sum = rhs[row];
    for (auto it = rows[row].upper_bound(ki); it != rows[row].end(); ++it) {
      sum -= it->second * x[it->first];
    }
    x[ki] = sum / rows[row][ki];
  }
  return x;
}

// ------------------------------------------------------------- CsrMatrix

CsrMatrix::CsrMatrix(std::size_t n,
                     std::vector<std::pair<std::size_t, std::size_t>> entries)
    : n_(n) {
  for (const auto& [r, c] : entries) {
    require(r < n && c < n, "CsrMatrix: entry out of range");
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  row_start_.assign(n_ + 1, 0);
  col_index_.reserve(entries.size());
  for (const auto& [r, c] : entries) {
    col_index_.push_back(c);
    ++row_start_[r + 1];
  }
  for (std::size_t r = 0; r < n_; ++r) row_start_[r + 1] += row_start_[r];
  values_.assign(col_index_.size(), 0.0);
}

std::size_t CsrMatrix::slot(std::size_t row, std::size_t col) const {
  assert(row < n_ && col < n_);
  const std::size_t* first = col_index_.data() + row_start_[row];
  const std::size_t* last = col_index_.data() + row_start_[row + 1];
  const std::size_t* it = std::lower_bound(first, last, col);
  if (it != last && *it == col) {
    return static_cast<std::size_t>(it - col_index_.data());
  }
  return npos;
}

void CsrMatrix::zero_values() {
  std::fill(values_.begin(), values_.end(), 0.0);
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  require(row < n_ && col < n_, "CsrMatrix::at: out of range");
  const std::size_t s = slot(row, col);
  return s == npos ? 0.0 : values_[s];
}

Vector CsrMatrix::multiply(const Vector& x) const {
  require(x.size() == n_, "CsrMatrix::multiply: shape mismatch");
  Vector y(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      sum += values_[k] * x[col_index_[k]];
    }
    y[r] = sum;
  }
  return y;
}

Matrix CsrMatrix::to_dense() const {
  Matrix out(n_, n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      out(r, col_index_[k]) = values_[k];
    }
  }
  return out;
}

}  // namespace nemsim::linalg
