// LU factorization with partial pivoting, the linear kernel of the MNA
// Newton loop.
#pragma once

#include <vector>

#include "nemsim/linalg/matrix.h"

namespace nemsim::linalg {

/// PA = LU factorization with row partial pivoting.
///
/// The factorization is computed once and can solve many right-hand sides;
/// the Newton loop refactors per iteration (the Jacobian changes), so the
/// constructor is the hot path.
class LuDecomposition {
 public:
  /// Factors `a` (must be square).  Throws SingularMatrixError when a pivot
  /// falls below `pivot_tolerance` in magnitude.
  explicit LuDecomposition(Matrix a, double pivot_tolerance = 0.0);

  std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;
  /// Solves in place: x enters as b, leaves as the solution.
  void solve_in_place(Vector& x) const;

  /// Determinant of A (product of pivots with permutation sign,
  /// compensated for row equilibration).
  double determinant() const;

  /// Reciprocal condition estimate: min|pivot| / max|pivot| — a cheap
  /// diagnostic the Newton solver uses to spot near-singular Jacobians.
  double rcond_estimate() const { return rcond_; }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  std::vector<double> row_scale_;
  int perm_sign_ = 1;
  double rcond_ = 0.0;
};

/// One-shot convenience: solve A x = b.
Vector solve(Matrix a, const Vector& b);

}  // namespace nemsim::linalg
