// Complex dense vector/matrix and LU solve, for AC (small-signal)
// analysis: (G + j*omega*C) x = b.
#pragma once

#include <cassert>
#include <complex>
#include <cstddef>
#include <vector>

#include "nemsim/linalg/matrix.h"

namespace nemsim::linalg {

using Complex = std::complex<double>;

/// Dense complex column vector.
class CVector {
 public:
  CVector() = default;
  explicit CVector(std::size_t n, Complex fill = {}) : data_(n, fill) {}

  std::size_t size() const { return data_.size(); }
  Complex& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  Complex operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }
  double inf_norm() const;

 private:
  std::vector<Complex> data_;
};

/// Dense row-major complex matrix.
class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols, Complex fill = {})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// G + j*omega*C from two real matrices of identical shape.
  static CMatrix from_real_pair(const Matrix& g, const Matrix& c,
                                double omega);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  Complex& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  Complex operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  CVector multiply(const CVector& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

/// PA = LU with row equilibration and partial pivoting (complex).
class CLuDecomposition {
 public:
  explicit CLuDecomposition(CMatrix a);

  std::size_t size() const { return lu_.rows(); }
  CVector solve(const CVector& b) const;

 private:
  CMatrix lu_;
  std::vector<std::size_t> perm_;
  std::vector<double> row_scale_;
};

/// One-shot convenience solve.
CVector solve(CMatrix a, const CVector& b);

}  // namespace nemsim::linalg
