// Reusable sparse LU: symbolic analysis cached, numeric-only refactor.
//
// The MNA Newton loop solves a long sequence of systems that share one
// sparsity pattern and change only in their values.  factor() runs the
// full partial-pivot elimination once and freezes everything that is
// value-independent: the pivot (row) order, the filled-in L+U pattern, a
// scatter map from the input matrix's nonzeros into L+U slots, and the
// flattened multiply-add schedule of the elimination itself.  refactor()
// then replays that schedule on new values — no maps, no allocation, no
// pivot search — and solve() reuses the triangles for many right-hand
// sides.  When a frozen pivot decays numerically (threshold test),
// refactor() returns false and the caller re-runs factor() to re-pivot.
#pragma once

#include <cstddef>
#include <vector>

#include "nemsim/linalg/matrix.h"
#include "nemsim/linalg/sparse.h"

namespace nemsim::linalg {

/// Non-owning view of a square CSR matrix (adapts SparseMatrix/CsrMatrix).
struct CsrView {
  std::size_t n = 0;
  const std::size_t* row_start = nullptr;
  const std::size_t* col_index = nullptr;
  const double* values = nullptr;
};

inline CsrView csr_view(const SparseMatrix& a) {
  return {a.rows(), a.row_start().data(), a.col_index().data(),
          a.values().data()};
}

inline CsrView csr_view(const CsrMatrix& a) {
  return {a.size(), a.row_start().data(), a.col_index().data(),
          a.values().data()};
}

class SparseLuFactorization {
 public:
  SparseLuFactorization() = default;

  /// Full factorization: symbolic analysis (pivot order + fill pattern +
  /// elimination schedule) and numeric values.  Throws SingularMatrixError
  /// when a pivot column has no usable entry.
  void factor(const CsrView& a);
  void factor(const SparseMatrix& a) { factor(csr_view(a)); }
  void factor(const CsrMatrix& a) { factor(csr_view(a)); }

  /// Numeric-only refactorization reusing the cached symbolic analysis.
  /// `a` must have the same pattern factor() saw.  Returns false when a
  /// pivot fails the threshold test (|pivot| < tau * max|row|) — the
  /// caller should fall back to factor() for a fresh pivot order.
  bool refactor(const CsrView& a);
  bool refactor(const SparseMatrix& a) { return refactor(csr_view(a)); }
  bool refactor(const CsrMatrix& a) { return refactor(csr_view(a)); }

  bool analyzed() const { return n_ > 0; }
  std::size_t size() const { return n_; }
  /// Nonzeros of L+U (pattern nonzeros plus fill-in).
  std::size_t fill_nonzeros() const { return vals_.size(); }

  /// Solves A x = b with the current numeric factorization.
  Vector solve(const Vector& b) const;
  void solve_in_place(Vector& x) const;

  /// Relative pivot-decay threshold for refactor(); pivots below
  /// tau * max|U-row| reject the cached order.
  double pivot_threshold() const { return tau_; }
  void set_pivot_threshold(double tau) { tau_ = tau; }

 private:
  bool run_schedule();

  std::size_t n_ = 0;
  // Fill-reducing symmetric preorder (minimum degree on the pattern of
  // A + A^T): elimination step k works on original index col_perm_[k].
  std::vector<std::size_t> col_perm_;
  // L+U rows stored in pivot order; columns sorted ascending.  Slots with
  // column < k (the row's pivot step) hold L factors, the rest U values.
  std::vector<std::size_t> row_ptr_;  // size n_+1
  std::vector<std::size_t> cols_;
  std::vector<double> vals_;
  std::vector<std::size_t> diag_;      // slot of U(k, k)
  std::vector<std::size_t> orig_row_;  // pivot position -> original row
  // Input nonzero i (CSR order) scatters into slot scatter_[i].
  std::vector<std::size_t> scatter_;
  std::size_t input_nnz_ = 0;
  // Elimination schedule.  For step k, targets_[col_ptr_[k]..col_ptr_[k+1])
  // are the rows below the pivot with a structural entry in column k; each
  // target's op_start indexes op_tgt_, which maps the pivot row's U tail
  // (slots diag_[k]+1 .. row_ptr_[k+1]) onto slots of the target row.
  struct Target {
    std::size_t l_slot;
    std::size_t op_start;
  };
  std::vector<std::size_t> col_ptr_;  // size n_+1
  std::vector<Target> targets_;
  std::vector<std::size_t> op_tgt_;
  double tau_ = 1e-3;
};

}  // namespace nemsim::linalg
