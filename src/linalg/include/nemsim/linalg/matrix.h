// Dense vector and matrix types for the MNA engine.
//
// The circuits in this project are tiny (tens of unknowns), so a dense
// row-major matrix with partial-pivot LU beats any sparse machinery; the
// perf bench quantifies this.  Bounds are checked in debug via assert and
// on the public at() accessors unconditionally.
#pragma once

#include <cassert>
#include <cstddef>
#include <iosfwd>
#include <vector>

namespace nemsim::linalg {

/// Dense column vector of doubles.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  double operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }
  /// Bounds-checked access (throws InvalidArgument).
  double& at(std::size_t i);
  double at(std::size_t i) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  void assign(std::size_t n, double fill) { data_.assign(n, fill); }
  void fill(double value);

  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double scale);

  /// Maximum absolute entry; 0 for the empty vector.
  double inf_norm() const;
  /// Euclidean norm.
  double two_norm() const;

 private:
  std::vector<double> data_;
};

Vector operator+(Vector a, const Vector& b);
Vector operator-(Vector a, const Vector& b);
Vector operator*(double s, Vector v);
double dot(const Vector& a, const Vector& b);

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initializer lists (rows of equal length).
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  /// Bounds-checked access (throws InvalidArgument).
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Raw row-major storage: entry (r, c) lives at data()[r * cols() + c].
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void fill(double value);
  /// Resets to rows x cols, all zero (reuses storage when shape matches).
  void reset(std::size_t rows, std::size_t cols);

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scale);

  /// y = A * x; shapes must agree.
  Vector multiply(const Vector& x) const;
  Matrix multiply(const Matrix& other) const;
  Matrix transposed() const;

  /// Maximum absolute row sum (induced infinity norm).
  double inf_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(const Matrix& a, const Matrix& b);
Vector operator*(const Matrix& a, const Vector& x);

std::ostream& operator<<(std::ostream& os, const Vector& v);
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace nemsim::linalg
