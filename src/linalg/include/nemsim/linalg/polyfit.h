// Least-squares polynomial fitting.
//
// The paper's NEMFET electrical-equivalent model approximates the
// electrostatic force f(Vg) by a fitted polynomial; we expose the same
// facility so users can extract fitted force curves from the physical model.
#pragma once

#include <span>
#include <vector>

namespace nemsim::linalg {

/// Polynomial with coefficients in ascending power order: c0 + c1 x + ...
class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::vector<double> coefficients);

  std::size_t degree() const { return coeffs_.empty() ? 0 : coeffs_.size() - 1; }
  std::span<const double> coefficients() const { return coeffs_; }

  double operator()(double x) const;
  /// First derivative evaluated at x.
  double derivative_at(double x) const;
  Polynomial derivative() const;

 private:
  std::vector<double> coeffs_;
};

/// Fits a degree-`degree` polynomial through (xs, ys) in the least-squares
/// sense via the normal equations.  Requires xs.size() >= degree + 1.
Polynomial polyfit(std::span<const double> xs, std::span<const double> ys,
                   std::size_t degree);

/// Root-mean-square residual of `poly` over the samples.
double fit_rms_error(const Polynomial& poly, std::span<const double> xs,
                     std::span<const double> ys);

}  // namespace nemsim::linalg
