// Compressed-sparse-row matrix.
//
// The MNA engine defaults to the dense LU path (design decision #4 in
// DESIGN.md); CSR exists for the perf ablation bench and for users who
// want to export stamped Jacobians.  A Gauss-Seidel solver is provided for
// diagonally-dominant systems (e.g. resistor networks).
#pragma once

#include <cstddef>
#include <vector>

#include "nemsim/linalg/matrix.h"

namespace nemsim::linalg {

/// One (row, col, value) coordinate entry.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// Immutable CSR matrix; duplicate triplets are summed (stamp semantics).
class SparseMatrix {
 public:
  SparseMatrix(std::size_t rows, std::size_t cols,
               std::vector<Triplet> triplets);

  /// Converts a dense matrix, dropping exact zeros.
  static SparseMatrix from_dense(const Matrix& dense);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// Entry lookup (zero when not stored).
  double at(std::size_t row, std::size_t col) const;

  Vector multiply(const Vector& x) const;
  Matrix to_dense() const;

  /// Gauss-Seidel iteration for A x = b; returns the iterate after
  /// convergence (relative residual < tol) or throws ConvergenceError.
  Vector gauss_seidel(const Vector& b, double tol = 1e-10,
                      int max_iterations = 10000) const;

  /// Direct sparse LU solve (row-map Gaussian elimination with partial
  /// pivoting; fill-in tracked per row).  For the tiny, fairly dense MNA
  /// systems of this project the dense path wins (DESIGN.md decision #4,
  /// quantified in perf_simulator) - this exists to make that ablation
  /// honest and to serve genuinely sparse systems (e.g. ladder networks).
  Vector lu_solve(const Vector& b) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_start_;  // size rows_+1
  std::vector<std::size_t> col_index_;
  std::vector<double> values_;
};

}  // namespace nemsim::linalg
