// Compressed-sparse-row matrices.
//
// Two flavours: the immutable triplet-built SparseMatrix (exports, ad-hoc
// solves, Gauss-Seidel for diagonally-dominant systems) and CsrMatrix, a
// square pattern-frozen matrix with mutable values — the MNA engine's
// reusable Jacobian storage.  Above the sparse-selection threshold the
// engine assembles into a CsrMatrix and factors it with
// SparseLuFactorization (sparse_lu.h); below it the dense path of
// DESIGN.md decision #4 still wins.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "nemsim/linalg/matrix.h"

namespace nemsim::linalg {

/// One (row, col, value) coordinate entry.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// Immutable CSR matrix; duplicate triplets are summed (stamp semantics).
class SparseMatrix {
 public:
  SparseMatrix(std::size_t rows, std::size_t cols,
               std::vector<Triplet> triplets);

  /// Converts a dense matrix, dropping exact zeros.
  static SparseMatrix from_dense(const Matrix& dense);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// Entry lookup (zero when not stored).
  double at(std::size_t row, std::size_t col) const;

  Vector multiply(const Vector& x) const;
  Matrix to_dense() const;

  /// Gauss-Seidel iteration for A x = b; returns the iterate after
  /// convergence (relative residual < tol) or throws ConvergenceError.
  Vector gauss_seidel(const Vector& b, double tol = 1e-10,
                      int max_iterations = 10000) const;

  /// Direct sparse LU solve (row-map Gaussian elimination with partial
  /// pivoting; fill-in tracked per row).  For the tiny, fairly dense MNA
  /// systems of this project the dense path wins (DESIGN.md decision #4,
  /// quantified in perf_simulator) - this exists to make that ablation
  /// honest and to serve genuinely sparse systems (e.g. ladder networks).
  Vector lu_solve(const Vector& b) const;

  // Raw CSR access (read-only), e.g. for SparseLuFactorization.
  const std::vector<std::size_t>& row_start() const { return row_start_; }
  const std::vector<std::size_t>& col_index() const { return col_index_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_start_;  // size rows_+1
  std::vector<std::size_t> col_index_;
  std::vector<double> values_;
};

/// Square CSR matrix with a frozen sparsity pattern and mutable values.
///
/// Built once from the set of structurally-possible (row, col) positions;
/// afterwards assembly is "zero_values(), then add into slots" with no
/// allocation.  Entries outside the pattern report `npos` from slot() so
/// callers can detect and grow the pattern.
class CsrMatrix {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  CsrMatrix() = default;
  /// `entries` are (row, col) positions; duplicates are merged and each
  /// row's columns are sorted.  All values start at zero.
  CsrMatrix(std::size_t n,
            std::vector<std::pair<std::size_t, std::size_t>> entries);

  std::size_t size() const { return n_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// Index into values() of entry (row, col); npos when not in the pattern.
  std::size_t slot(std::size_t row, std::size_t col) const;

  void zero_values();
  /// Entry lookup (zero when not stored).
  double at(std::size_t row, std::size_t col) const;

  std::vector<double>& values() { return values_; }
  const std::vector<double>& values() const { return values_; }
  const std::vector<std::size_t>& row_start() const { return row_start_; }
  const std::vector<std::size_t>& col_index() const { return col_index_; }

  Vector multiply(const Vector& x) const;
  Matrix to_dense() const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_start_;  // size n_+1
  std::vector<std::size_t> col_index_;
  std::vector<double> values_;
};

}  // namespace nemsim::linalg
