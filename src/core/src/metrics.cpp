#include "nemsim/core/metrics.h"

#include <algorithm>

#include "nemsim/devices/sources.h"
#include "nemsim/util/error.h"

namespace nemsim::core {

double power_delay_product(double alpha, double leakage_power,
                           double switching_power, double delay) {
  require(alpha >= 0.0 && alpha <= 1.0,
          "power_delay_product: alpha must be in [0, 1]");
  return ((1.0 - alpha) * leakage_power + alpha * switching_power) * delay;
}

double static_power(const spice::Circuit& circuit,
                    const spice::OpResult& op) {
  double total = 0.0;
  circuit.for_each<devices::VoltageSource>(
      [&](const devices::VoltageSource& src) {
        // Branch current flows p -> n through the source; the power the
        // source delivers to the circuit is V * (-i).
        const double i = op.x(src.branch());
        const double v = src.value(0.0);
        total += v * (-i);
      });
  return total;
}

double source_energy(const spice::Circuit& circuit,
                     const spice::Waveform& wave, const std::string& source,
                     double t0, double t1) {
  require(t1 > t0, "source_energy: empty window");
  const auto& src = circuit.find<devices::VoltageSource>(source);
  const std::size_t isig = wave.signal_index("i(" + source + ")");

  // Trapezoidal integral of v(t) * (-i(t)) over the sample grid.
  const auto& ts = wave.times();
  double energy = 0.0;
  for (std::size_t k = 1; k < ts.size(); ++k) {
    const double a = std::max(ts[k - 1], t0);
    const double b = std::min(ts[k], t1);
    if (b <= a) continue;
    const double pa = src.value(a) * (-wave.at(isig, a));
    const double pb = src.value(b) * (-wave.at(isig, b));
    energy += 0.5 * (pa + pb) * (b - a);
  }
  return energy;
}

double source_average_power(const spice::Circuit& circuit,
                            const spice::Waveform& wave,
                            const std::string& source, double t0, double t1) {
  return source_energy(circuit, wave, source, t0, t1) / (t1 - t0);
}

}  // namespace nemsim::core
