#include "nemsim/core/cells.h"

#include "nemsim/devices/mosfet.h"

namespace nemsim::core {

using devices::Mosfet;
using devices::MosPolarity;
using devices::Nemfet;
using devices::NemsParams;
using devices::NemsPolarity;
using spice::NodeId;
using spice::Subcircuit;
using spice::SubcircuitScope;

spice::Subcircuit inverter_cell() {
  auto builder = [](SubcircuitScope& s) {
    NodeId in = s.port("in");
    NodeId out = s.port("out");
    NodeId vdd = s.port("vdd");
    NodeId vss = s.port("vss");
    s.add<Mosfet>("MP", out, in, vdd, MosPolarity::kPmos, tech::pmos_90nm(),
                  s.param("WP"), s.param("L"));
    s.add<Mosfet>("MN", out, in, vss, MosPolarity::kNmos, tech::nmos_90nm(),
                  s.param("WN"), s.param("L"));
  };
  return Subcircuit("inverter", {"in", "out", "vdd", "vss"}, builder,
                    {{"WP", 0.4e-6}, {"WN", 0.2e-6}, {"L", 1e-7}});
}

spice::Subcircuit load_inverter_cell() {
  auto builder = [](SubcircuitScope& s) {
    NodeId in = s.port("in");
    NodeId vdd = s.port("vdd");
    NodeId vss = s.port("vss");
    NodeId out = s.node("out");
    s.add<Mosfet>("MP", out, in, vdd, MosPolarity::kPmos, tech::pmos_90nm(),
                  s.param("WP"), s.param("L"));
    s.add<Mosfet>("MN", out, in, vss, MosPolarity::kNmos, tech::nmos_90nm(),
                  s.param("WN"), s.param("L"));
  };
  return Subcircuit("inverter_load", {"in", "vdd", "vss"}, builder,
                    {{"WP", 0.4e-6}, {"WN", 0.2e-6}, {"L", 1e-7}});
}

spice::Subcircuit domino_leg_cell(bool hybrid, const NemsParams& nems_card) {
  if (hybrid) {
    auto builder = [nems_card](SubcircuitScope& s) {
      NodeId dyn = s.port("dyn");
      NodeId in = s.port("in");
      // NMOS on top, NEMFET in series below (Figure 8 (b)).
      NodeId mid = s.node("mid");
      s.add<Mosfet>("MPD", dyn, in, mid, MosPolarity::kNmos,
                    tech::nmos_90nm(), s.param("W_NMOS"), s.param("L"));
      s.add<Nemfet>("XPD", mid, in, s.node("0"), NemsPolarity::kN, nems_card,
                    s.param("W_NEMS"));
    };
    return Subcircuit(
        "domino_leg_hybrid", {"dyn", "in"}, builder,
        {{"W_NMOS", 0.3e-6}, {"W_NEMS", 0.9e-6}, {"L", 1e-7}});
  }
  auto builder = [](SubcircuitScope& s) {
    NodeId dyn = s.port("dyn");
    NodeId in = s.port("in");
    s.add<Mosfet>("MPD", dyn, in, s.node("0"), MosPolarity::kNmos,
                  tech::nmos_90nm(), s.param("W_NMOS"), s.param("L"));
  };
  return Subcircuit("domino_leg_cmos", {"dyn", "in"}, builder,
                    {{"W_NMOS", 0.3e-6}, {"L", 1e-7}});
}

namespace {

const char* bitcell_def_name(SramKind kind) {
  switch (kind) {
    case SramKind::kConventional: return "sram6t_conv";
    case SramKind::kDualVt: return "sram6t_dualvt";
    case SramKind::kAsymmetric: return "sram6t_asym";
    case SramKind::kHybrid: return "sram6t_hybrid";
    case SramKind::kHybridPullupOnly: return "sram6t_hybrid_pu";
  }
  return "sram6t";
}

/// Adds the cross-coupled core + access transistors per Figure 13.
/// Local names follow the paper (AL/AR access, NL/NR pull-downs, PL/PR
/// pull-ups) behind the parser's element letter: "MAL", "XNL", ...
void build_bitcell(SubcircuitScope& s, SramKind kind) {
  const double wa = s.param("WA");
  const double l = s.param("L");
  NodeId bl = s.port("bl");
  NodeId blb = s.port("blb");
  NodeId wl = s.port("wl");
  NodeId vdd = s.port("vdd");
  NodeId ql = s.node("ql");
  NodeId qr = s.node("qr");
  NodeId gnd = s.node("0");

  // Access transistors: always CMOS (replacing them with NEMS would be
  // disastrous for latency, as the paper argues).  The dual-Vt cell [25]
  // pairs low-Vt access devices with a high-Vt core - fast bitline
  // access at the cost of read stability, which is exactly the tradeoff
  // the paper attributes to that architecture.
  const devices::MosParams access_card = kind == SramKind::kDualVt
                                             ? tech::nmos_90nm_lvt()
                                             : tech::nmos_90nm();
  s.add<Mosfet>("MAL", bl, wl, ql, MosPolarity::kNmos, access_card, wa, l);
  s.add<Mosfet>("MAR", blb, wl, qr, MosPolarity::kNmos, access_card, wa, l);

  const bool stored_one = s.param("STORED_ONE") != 0.0;
  auto nmos_card = [&](bool zero_state_leaker) {
    if (kind == SramKind::kDualVt) return tech::nmos_90nm_hvt();
    if (kind == SramKind::kAsymmetric && zero_state_leaker) {
      return tech::nmos_90nm_hvt();
    }
    return tech::nmos_90nm();
  };
  auto pmos_card = [&](bool zero_state_leaker) {
    if (kind == SramKind::kDualVt) return tech::pmos_90nm_hvt();
    if (kind == SramKind::kAsymmetric && zero_state_leaker) {
      return tech::pmos_90nm_hvt();
    }
    return tech::pmos_90nm();
  };

  if (kind == SramKind::kHybrid) {
    // Figure 13 (d): both pull-downs and pull-ups become NEMS devices.
    const double wnpd = s.param("WNPD");
    const double wnpu = s.param("WNPU");
    auto& nl = s.add<Nemfet>("XNL", ql, qr, gnd, NemsPolarity::kN,
                             tech::nems_90nm(), wnpd);
    auto& nr = s.add<Nemfet>("XNR", qr, ql, gnd, NemsPolarity::kN,
                             tech::nems_90nm(), wnpd);
    auto& pl = s.add<Nemfet>("XPL", ql, qr, vdd, NemsPolarity::kP,
                             tech::nems_90nm(), wnpu);
    auto& pr = s.add<Nemfet>("XPR", qr, ql, vdd, NemsPolarity::kP,
                             tech::nems_90nm(), wnpu);
    // Seed beam states consistent with the stored value so bistable DC
    // solves land on the right branch.
    if (stored_one) {
      // QL = 1, QR = 0: NR and PL conduct.
      nr.set_initially_closed();
      pl.set_initially_closed();
    } else {
      nl.set_initially_closed();
      pr.set_initially_closed();
    }
  } else if (kind == SramKind::kHybridPullupOnly) {
    // Section 5.3 alternative: NEMS pull-ups over a CMOS pull-down pair.
    const double wpd = s.param("WPD");
    const double wnpu = s.param("WNPU");
    s.add<Mosfet>("MNL", ql, qr, gnd, MosPolarity::kNmos, tech::nmos_90nm(),
                  wpd, l);
    s.add<Mosfet>("MNR", qr, ql, gnd, MosPolarity::kNmos, tech::nmos_90nm(),
                  wpd, l);
    auto& pl = s.add<Nemfet>("XPL", ql, qr, vdd, NemsPolarity::kP,
                             tech::nems_90nm(), wnpu);
    auto& pr = s.add<Nemfet>("XPR", qr, ql, vdd, NemsPolarity::kP,
                             tech::nems_90nm(), wnpu);
    if (stored_one) {
      pl.set_initially_closed();
    } else {
      pr.set_initially_closed();
    }
  } else {
    // For the asymmetric cell [26] the preferred state stores a zero at
    // QL; the devices that are OFF (and leak) in that state - PL and NR -
    // get the high threshold.
    const double wpd = s.param("WPD");
    const double wpu = s.param("WPU");
    s.add<Mosfet>("MNL", ql, qr, gnd, MosPolarity::kNmos, nmos_card(false),
                  wpd, l);
    s.add<Mosfet>("MNR", qr, ql, gnd, MosPolarity::kNmos, nmos_card(true),
                  wpd, l);
    s.add<Mosfet>("MPL", ql, qr, vdd, MosPolarity::kPmos, pmos_card(true),
                  wpu, l);
    s.add<Mosfet>("MPR", qr, ql, vdd, MosPolarity::kPmos, pmos_card(false),
                  wpu, l);
  }
}

}  // namespace

spice::Subcircuit sram_bitcell_cell(SramKind kind) {
  const SramConfig d{};  // defaults mirror the default SramConfig sizing
  return Subcircuit(
      bitcell_def_name(kind), {"bl", "blb", "wl", "vdd"},
      [kind](SubcircuitScope& s) { build_bitcell(s, kind); },
      {{"WA", d.w_access},
       {"WPD", d.w_pulldown},
       {"WPU", d.w_pullup},
       {"WNPD", d.w_nems_pulldown},
       {"WNPU", d.w_nems_pullup},
       {"L", d.l},
       {"STORED_ONE", 0.0}});
}

spice::Subcircuit sleep_switch_cell(bool footer, bool nems) {
  std::string name = std::string("sleep_") + (footer ? "footer" : "header") +
                     (nems ? "_nems" : "_cmos");
  auto builder = [footer, nems](SubcircuitScope& s) {
    NodeId d = s.port("d");
    NodeId g = s.port("g");
    NodeId src = s.port("s");
    if (nems) {
      s.add<Nemfet>("XSW", d, g, src,
                    footer ? NemsPolarity::kN : NemsPolarity::kP,
                    tech::nems_90nm(), s.param("W"));
    } else {
      s.add<Mosfet>("MSW", d, g, src,
                    footer ? MosPolarity::kNmos : MosPolarity::kPmos,
                    footer ? tech::nmos_90nm() : tech::pmos_90nm(),
                    s.param("W"), s.param("L"));
    }
  };
  return Subcircuit(std::move(name), {"d", "g", "s"}, std::move(builder),
                    {{"W", 1e-6}, {"L", tech::node_90nm().lmin}});
}

}  // namespace nemsim::core
