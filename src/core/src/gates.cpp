#include "nemsim/core/gates.h"

#include "nemsim/devices/mosfet.h"
#include "nemsim/util/error.h"

namespace nemsim::core {

using devices::Mosfet;
using devices::MosPolarity;

void add_inverter(spice::Circuit& ckt, const std::string& prefix,
                  spice::NodeId in, spice::NodeId out, spice::NodeId vdd,
                  const InverterSizes& sizes) {
  ckt.add<Mosfet>(prefix + ".P", out, in, vdd, MosPolarity::kPmos,
                  tech::pmos_90nm(), sizes.wp, sizes.l);
  ckt.add<Mosfet>(prefix + ".N", out, in, ckt.gnd(), MosPolarity::kNmos,
                  tech::nmos_90nm(), sizes.wn, sizes.l);
}

void add_fanout_load(spice::Circuit& ckt, const std::string& prefix,
                     spice::NodeId node, spice::NodeId vdd, int fanout,
                     const InverterSizes& sizes) {
  require(fanout >= 0, "add_fanout_load: fanout must be >= 0");
  for (int k = 0; k < fanout; ++k) {
    spice::NodeId out = ckt.internal_node(prefix + "_fo" + std::to_string(k));
    add_inverter(ckt, prefix + ".FO" + std::to_string(k), node, out, vdd,
                 sizes);
  }
}

double inverter_input_capacitance(const InverterSizes& sizes) {
  const devices::MosParams n = tech::nmos_90nm();
  const devices::MosParams p = tech::pmos_90nm();
  const double cg_n = n.cox_area * sizes.wn * sizes.l + 2.0 * n.cov * sizes.wn;
  const double cg_p = p.cox_area * sizes.wp * sizes.l + 2.0 * p.cov * sizes.wp;
  return cg_n + cg_p;
}

void add_nand2(spice::Circuit& ckt, const std::string& prefix,
               spice::NodeId a, spice::NodeId b, spice::NodeId out,
               spice::NodeId vdd, const InverterSizes& sizes) {
  // Parallel pull-ups at nominal width; the series NMOS stack is doubled
  // so the gate's worst-case pull-down matches an inverter's.
  ckt.add<Mosfet>(prefix + ".PA", out, a, vdd, MosPolarity::kPmos,
                  tech::pmos_90nm(), sizes.wp, sizes.l);
  ckt.add<Mosfet>(prefix + ".PB", out, b, vdd, MosPolarity::kPmos,
                  tech::pmos_90nm(), sizes.wp, sizes.l);
  spice::NodeId mid = ckt.internal_node(prefix + "_nstack");
  ckt.add<Mosfet>(prefix + ".NA", out, a, mid, MosPolarity::kNmos,
                  tech::nmos_90nm(), 2.0 * sizes.wn, sizes.l);
  ckt.add<Mosfet>(prefix + ".NB", mid, b, ckt.gnd(), MosPolarity::kNmos,
                  tech::nmos_90nm(), 2.0 * sizes.wn, sizes.l);
}

void add_nor2(spice::Circuit& ckt, const std::string& prefix,
              spice::NodeId a, spice::NodeId b, spice::NodeId out,
              spice::NodeId vdd, const InverterSizes& sizes) {
  // Series pull-up stack doubled; parallel pull-downs nominal.
  spice::NodeId mid = ckt.internal_node(prefix + "_pstack");
  ckt.add<Mosfet>(prefix + ".PA", mid, a, vdd, MosPolarity::kPmos,
                  tech::pmos_90nm(), 2.0 * sizes.wp, sizes.l);
  ckt.add<Mosfet>(prefix + ".PB", out, b, mid, MosPolarity::kPmos,
                  tech::pmos_90nm(), 2.0 * sizes.wp, sizes.l);
  ckt.add<Mosfet>(prefix + ".NA", out, a, ckt.gnd(), MosPolarity::kNmos,
                  tech::nmos_90nm(), sizes.wn, sizes.l);
  ckt.add<Mosfet>(prefix + ".NB", out, b, ckt.gnd(), MosPolarity::kNmos,
                  tech::nmos_90nm(), sizes.wn, sizes.l);
}

std::vector<spice::NodeId> add_inverter_chain(spice::Circuit& ckt,
                                              const std::string& prefix,
                                              spice::NodeId in,
                                              spice::NodeId vdd,
                                              spice::NodeId low_rail,
                                              int stages,
                                              const InverterSizes& sizes) {
  require(stages >= 1, "add_inverter_chain: need at least one stage");
  std::vector<spice::NodeId> outputs;
  outputs.reserve(stages);
  spice::NodeId prev = in;
  for (int s = 0; s < stages; ++s) {
    spice::NodeId out = ckt.internal_node(prefix + "_s" + std::to_string(s));
    const std::string stage = prefix + ".S" + std::to_string(s);
    ckt.add<Mosfet>(stage + ".P", out, prev, vdd, MosPolarity::kPmos,
                    tech::pmos_90nm(), sizes.wp, sizes.l);
    ckt.add<Mosfet>(stage + ".N", out, prev, low_rail, MosPolarity::kNmos,
                    tech::nmos_90nm(), sizes.wn, sizes.l);
    outputs.push_back(out);
    prev = out;
  }
  return outputs;
}

}  // namespace nemsim::core
