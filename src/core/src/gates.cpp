#include "nemsim/core/gates.h"

#include "nemsim/core/cells.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/util/error.h"

namespace nemsim::core {

using devices::Mosfet;
using devices::MosPolarity;
using spice::SubcktParams;

namespace {

/// Instance name for a caller-supplied prefix: 'X'-prefixed (the SPICE
/// subcircuit convention the elaborator enforces) with '.' (reserved as
/// the hierarchy separator) mapped to '_'.
std::string instance_name_for(const std::string& prefix) {
  std::string name = "X" + prefix;
  for (char& ch : name) {
    if (ch == '.') ch = '_';
  }
  return name;
}

SubcktParams inverter_params(const InverterSizes& sizes) {
  return {{"WP", sizes.wp}, {"WN", sizes.wn}, {"L", sizes.l}};
}

}  // namespace

void add_inverter(spice::Circuit& ckt, const std::string& prefix,
                  spice::NodeId in, spice::NodeId out, spice::NodeId vdd,
                  const InverterSizes& sizes) {
  add_inverter(ckt, prefix, in, out, vdd, ckt.gnd(), sizes);
}

void add_inverter(spice::Circuit& ckt, const std::string& prefix,
                  spice::NodeId in, spice::NodeId out, spice::NodeId vdd,
                  spice::NodeId vss, const InverterSizes& sizes) {
  ckt.instantiate(inverter_cell(), instance_name_for(prefix),
                  {in, out, vdd, vss}, inverter_params(sizes));
}

void add_fanout_load(spice::Circuit& ckt, const std::string& prefix,
                     spice::NodeId node, spice::NodeId vdd, int fanout,
                     const InverterSizes& sizes) {
  require(fanout >= 0, "add_fanout_load: fanout must be >= 0");
  const spice::Subcircuit load = load_inverter_cell();
  for (int k = 0; k < fanout; ++k) {
    ckt.instantiate(load, instance_name_for(prefix + ".FO" + std::to_string(k)),
                    {node, vdd, ckt.gnd()}, inverter_params(sizes));
  }
}

double inverter_input_capacitance(const InverterSizes& sizes) {
  const devices::MosParams n = tech::nmos_90nm();
  const devices::MosParams p = tech::pmos_90nm();
  const double cg_n = n.cox_area * sizes.wn * sizes.l + 2.0 * n.cov * sizes.wn;
  const double cg_p = p.cox_area * sizes.wp * sizes.l + 2.0 * p.cov * sizes.wp;
  return cg_n + cg_p;
}

void add_nand2(spice::Circuit& ckt, const std::string& prefix,
               spice::NodeId a, spice::NodeId b, spice::NodeId out,
               spice::NodeId vdd, const InverterSizes& sizes) {
  // Parallel pull-ups at nominal width; the series NMOS stack is doubled
  // so the gate's worst-case pull-down matches an inverter's.
  ckt.add<Mosfet>(prefix + ".PA", out, a, vdd, MosPolarity::kPmos,
                  tech::pmos_90nm(), sizes.wp, sizes.l);
  ckt.add<Mosfet>(prefix + ".PB", out, b, vdd, MosPolarity::kPmos,
                  tech::pmos_90nm(), sizes.wp, sizes.l);
  spice::NodeId mid = ckt.internal_node(prefix + "_nstack");
  ckt.add<Mosfet>(prefix + ".NA", out, a, mid, MosPolarity::kNmos,
                  tech::nmos_90nm(), 2.0 * sizes.wn, sizes.l);
  ckt.add<Mosfet>(prefix + ".NB", mid, b, ckt.gnd(), MosPolarity::kNmos,
                  tech::nmos_90nm(), 2.0 * sizes.wn, sizes.l);
}

void add_nor2(spice::Circuit& ckt, const std::string& prefix,
              spice::NodeId a, spice::NodeId b, spice::NodeId out,
              spice::NodeId vdd, const InverterSizes& sizes) {
  // Series pull-up stack doubled; parallel pull-downs nominal.
  spice::NodeId mid = ckt.internal_node(prefix + "_pstack");
  ckt.add<Mosfet>(prefix + ".PA", mid, a, vdd, MosPolarity::kPmos,
                  tech::pmos_90nm(), 2.0 * sizes.wp, sizes.l);
  ckt.add<Mosfet>(prefix + ".PB", out, b, mid, MosPolarity::kPmos,
                  tech::pmos_90nm(), 2.0 * sizes.wp, sizes.l);
  ckt.add<Mosfet>(prefix + ".NA", out, a, ckt.gnd(), MosPolarity::kNmos,
                  tech::nmos_90nm(), sizes.wn, sizes.l);
  ckt.add<Mosfet>(prefix + ".NB", out, b, ckt.gnd(), MosPolarity::kNmos,
                  tech::nmos_90nm(), sizes.wn, sizes.l);
}

std::vector<spice::NodeId> add_inverter_chain(spice::Circuit& ckt,
                                              const std::string& prefix,
                                              spice::NodeId in,
                                              spice::NodeId vdd,
                                              spice::NodeId low_rail,
                                              int stages,
                                              const InverterSizes& sizes) {
  require(stages >= 1, "add_inverter_chain: need at least one stage");
  std::vector<spice::NodeId> outputs;
  outputs.reserve(stages);
  spice::NodeId prev = in;
  for (int s = 0; s < stages; ++s) {
    spice::NodeId out = ckt.internal_node(prefix + "_s" + std::to_string(s));
    add_inverter(ckt, prefix + ".S" + std::to_string(s), prev, out, vdd,
                 low_rail, sizes);
    outputs.push_back(out);
    prev = out;
  }
  return outputs;
}

}  // namespace nemsim::core
