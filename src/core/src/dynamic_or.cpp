#include "nemsim/core/dynamic_or.h"

#include <algorithm>
#include <cmath>

#include "nemsim/core/cells.h"
#include "nemsim/core/metrics.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/op.h"
#include "nemsim/util/error.h"
#include "nemsim/util/root.h"

namespace nemsim::core {

using devices::Mosfet;
using devices::MosPolarity;
using devices::Nemfet;
using devices::NemsPolarity;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::Edge;
using spice::MnaSystem;

namespace {

/// One full clock cycle of the testbench.
double cycle_time(const DynamicOrConfig& c) {
  return c.t_precharge + c.t_evaluate + 2.0 * c.t_edge;
}

/// The clock waveform: low (precharge) for t_precharge, then one evaluate
/// phase, repeating.
SourceWave clock_wave(const DynamicOrConfig& c) {
  return SourceWave::pulse(0.0, c.vdd, c.t_precharge, c.t_edge, c.t_edge,
                           c.t_evaluate, cycle_time(c));
}

/// Input pulse asserted `skew` after the evaluate edge; it returns low
/// before the evaluate phase ends (domino discipline - otherwise the
/// next precharge would crowbar through the still-on pull-down).
SourceWave input_pulse(const DynamicOrConfig& c, double level) {
  const double width = c.t_evaluate - c.input_skew - 2.0 * c.t_edge;
  return SourceWave::pulse(0.0, level, c.t_precharge + c.t_edge + c.input_skew,
                           c.t_edge, c.t_edge, width);
}

/// Restores the testbench to its quiescent configuration.
void park_sources(DynamicOrGate& gate) {
  Circuit& ckt = gate.ckt();
  ckt.find<VoltageSource>("Vclk").set_wave(clock_wave(gate.config));
  for (int i = 0; i < gate.config.fanin; ++i) {
    ckt.find<VoltageSource>(gate.input_source(i)).set_dc(0.0);
  }
}

}  // namespace

DynamicOrGate build_dynamic_or(const DynamicOrConfig& config) {
  require(config.fanin >= 1, "build_dynamic_or: fanin must be >= 1");
  require(config.fanout >= 0, "build_dynamic_or: fanout must be >= 0");

  DynamicOrGate gate;
  gate.config = config;
  gate.circuit = std::make_unique<Circuit>();
  Circuit& ckt = *gate.circuit;

  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId clk = ckt.node("clk");
  spice::NodeId dyn = ckt.node("dyn");
  spice::NodeId out = ckt.node("out");

  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(config.vdd));
  ckt.add<VoltageSource>("Vclk", clk, ckt.gnd(), clock_wave(config));

  // Precharge device and feedback keeper (Figure 8).
  ckt.add<Mosfet>("Mpre", dyn, clk, vdd, MosPolarity::kPmos,
                  tech::pmos_90nm(), config.precharge_width, 1e-7);
  double keeper_w = config.keeper_width;
  if (config.hybrid) {
    keeper_w = config.hybrid_keeper_width;
  } else if (config.autosize_keeper) {
    keeper_w = std::clamp(config.keeper_per_input * config.fanin,
                          config.keeper_min_width, config.keeper_max_width);
  }
  ckt.add<Mosfet>("Mkeep", dyn, out, vdd, MosPolarity::kPmos,
                  tech::pmos_90nm(), keeper_w, 1e-7);

  // Output inverter and fan-out load.
  add_inverter(ckt, "INVout", dyn, out, vdd, config.output_inverter);
  add_fanout_load(ckt, "LD", out, vdd, config.fanout,
                  config.output_inverter);

  // Pull-down network: one leg-cell instance per input (Figure 8 —
  // "Xleg<i>.MPD", plus "Xleg<i>.XPD" below it in the hybrid gate).
  // Footless domino: inputs are guaranteed low during precharge by the
  // testbench (as in a domino pipeline).
  const spice::Subcircuit leg =
      domino_leg_cell(config.hybrid, config.nems_card);
  spice::SubcktParams leg_params{{"W_NMOS", config.input_nmos_width},
                                 {"L", 1e-7}};
  if (config.hybrid) leg_params["W_NEMS"] = config.nems_width;
  for (int i = 0; i < config.fanin; ++i) {
    spice::NodeId in = ckt.node(gate.input_node(i));
    ckt.add<VoltageSource>(gate.input_source(i), in, ckt.gnd(),
                           SourceWave::dc(0.0));
    ckt.instantiate(leg, "Xleg" + std::to_string(i), {dyn, in}, leg_params);
  }
  return gate;
}

namespace {

/// Runs the standard one-hot switching cycle (input 0 asserted during the
/// evaluate phase) and returns the waveform over `cycles` full cycles.
spice::Waveform run_switching_cycle(DynamicOrGate& gate, double extra_time,
                                    spice::RunReport* report = nullptr) {
  Circuit& ckt = gate.ckt();
  const DynamicOrConfig& c = gate.config;
  park_sources(gate);
  ckt.find<VoltageSource>(gate.input_source(0))
      .set_wave(input_pulse(c, c.vdd));

  MnaSystem system(ckt);
  spice::TransientOptions options;
  options.newton = c.newton;
  options.tstop = cycle_time(c) + extra_time;
  options.dt_initial = 1e-13;
  options.report = report;
  spice::Waveform wave = spice::transient(system, options);
  park_sources(gate);
  return wave;
}

}  // namespace

double measure_worst_case_delay(DynamicOrGate& gate) {
  spice::Waveform wave = run_switching_cycle(gate, 0.0);
  const double half = 0.5 * gate.config.vdd;
  return spice::propagation_delay(wave, "v(in0)", half, Edge::kRising,
                                  "v(out)", half, Edge::kRising,
                                  gate.config.t_precharge);
}

double measure_switching_power(DynamicOrGate& gate) {
  // One full cycle plus the next precharge phase, so the energy includes
  // recharging the dynamic node (the complete switching event).
  const DynamicOrConfig& c = gate.config;
  spice::Waveform wave = run_switching_cycle(gate, c.t_precharge);
  const double energy =
      source_energy(gate.ckt(), wave, "Vdd", 0.0, wave.end_time());
  return energy / wave.end_time();
}

DynamicOrMetrics measure_dynamic_or(DynamicOrGate& gate,
                                    spice::RunReport* report) {
  const DynamicOrConfig& c = gate.config;
  spice::Waveform wave = run_switching_cycle(gate, c.t_precharge, report);
  const double half = 0.5 * c.vdd;

  DynamicOrMetrics m;
  m.worst_case_delay = spice::propagation_delay(
      wave, "v(in0)", half, Edge::kRising, "v(out)", half, Edge::kRising,
      c.t_precharge);
  m.switching_energy =
      source_energy(gate.ckt(), wave, "Vdd", 0.0, wave.end_time());
  m.switching_power = m.switching_energy / wave.end_time();
  m.leakage_power = measure_leakage_power(gate, report);
  return m;
}

double measure_leakage_power(DynamicOrGate& gate, spice::RunReport* report) {
  Circuit& ckt = gate.ckt();
  const DynamicOrConfig& c = gate.config;
  park_sources(gate);
  // Evaluate phase, all inputs low: keeper fights PDN leakage.
  ckt.find<VoltageSource>("Vclk").set_dc(c.vdd);

  MnaSystem system(ckt);
  system.reset_devices();
  system.set_nodeset(ckt.find_node("dyn"), c.vdd);
  system.set_nodeset(ckt.find_node("out"), 0.0);
  spice::OpOptions op_options;
  op_options.newton = c.newton;
  op_options.report = report;
  spice::OpResult op = spice::operating_point(system, op_options);

  // Sanity: the keeper must actually be holding the dynamic node.
  const double v_dyn = op.v("dyn");
  require(v_dyn > 0.8 * c.vdd,
          "measure_leakage_power: dynamic node collapsed (keeper too weak "
          "for this leakage)");

  const devices::VoltageSource& vdd_src = ckt.find<VoltageSource>("Vdd");
  const double leak = c.vdd * (-op.x(vdd_src.branch()));
  park_sources(gate);
  return leak;
}

double measure_noise_margin(DynamicOrGate& gate, double v_resolution) {
  Circuit& ckt = gate.ckt();
  const DynamicOrConfig& c = gate.config;

  auto tolerates = [&](double v_noise) {
    park_sources(gate);
    for (int i = 0; i < c.fanin; ++i) {
      ckt.find<VoltageSource>(gate.input_source(i))
          .set_wave(SourceWave::pulse(0.0, v_noise,
                                      c.t_precharge + c.t_edge, c.t_edge,
                                      c.t_edge, c.t_evaluate));
    }
    MnaSystem system(ckt);
    spice::TransientOptions options;
    options.newton = c.newton;
    options.tstop = c.t_precharge + c.t_edge + c.t_evaluate;
    options.dt_initial = 1e-13;
    bool ok = true;
    try {
      spice::Waveform wave = spice::transient(system, options);
      const double out_peak = spice::max_value(
          wave, "v(out)", c.t_precharge, wave.end_time());
      ok = out_peak < 0.5 * c.vdd;
    } catch (const ConvergenceError&) {
      ok = false;  // treat numerical collapse as gate failure
    }
    return ok;
  };

  const double nm =
      monotone_threshold(tolerates, 0.0, c.vdd, v_resolution);
  park_sources(gate);
  return nm;
}

double size_keeper_for_noise_margin(const DynamicOrConfig& base,
                                    double nm_target, double w_lo,
                                    double w_hi, double w_resolution) {
  require(w_lo > 0.0 && w_hi > w_lo, "size_keeper: bad width bracket");
  auto nm_at = [&](double w) {
    DynamicOrConfig c = base;
    c.hybrid = false;
    c.autosize_keeper = false;
    c.keeper_width = w;
    DynamicOrGate gate = build_dynamic_or(c);
    return measure_noise_margin(gate, 0.02);
  };
  if (nm_at(w_hi) < nm_target) {
    throw ConvergenceError(
        "size_keeper_for_noise_margin: target unreachable at w_hi");
  }
  if (nm_at(w_lo) >= nm_target) return w_lo;
  double lo = w_lo, hi = w_hi;
  while (hi - lo > w_resolution) {
    const double mid = 0.5 * (lo + hi);
    if (nm_at(mid) >= nm_target) hi = mid; else lo = mid;
  }
  return hi;
}

}  // namespace nemsim::core
