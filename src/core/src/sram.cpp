#include "nemsim/core/sram.h"

#include <algorithm>
#include <cmath>

#include "nemsim/core/cells.h"
#include "nemsim/core/metrics.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/dcsweep.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/error.h"
#include "nemsim/util/interp.h"

namespace nemsim::core {

using devices::Capacitor;
using devices::Mosfet;
using devices::MosPolarity;
using devices::Nemfet;
using devices::NemsPolarity;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::MnaSystem;

const char* sram_kind_name(SramKind kind) {
  switch (kind) {
    case SramKind::kConventional: return "Conv.";
    case SramKind::kDualVt: return "Dual Vt";
    case SramKind::kAsymmetric: return "Asym.";
    case SramKind::kHybrid: return "Hybrid";
    case SramKind::kHybridPullupOnly: return "Hybrid-PU";
  }
  return "?";
}

namespace {

/// Bitcell-parameter map for one cell storing `stored_one` (the beam
/// seeding of the hybrid flavours reads STORED_ONE at elaboration).
spice::SubcktParams bitcell_params(const SramConfig& c, bool stored_one) {
  return {{"WA", c.w_access},        {"WPD", c.w_pulldown},
          {"WPU", c.w_pullup},       {"WNPD", c.w_nems_pulldown},
          {"WNPU", c.w_nems_pullup}, {"L", c.l},
          {"STORED_ONE", stored_one ? 1.0 : 0.0}};
}

void nodeset_stored_value(MnaSystem& system, const SramConfig& c) {
  Circuit& ckt = system.circuit();
  const double vql = c.stored_one ? c.vdd : 0.0;
  system.set_nodeset(ckt.find_node(SramCell::kQl), vql);
  system.set_nodeset(ckt.find_node(SramCell::kQr), c.vdd - vql);
}

}  // namespace

SramCell build_sram_cell(const SramConfig& config,
                         const SramBenchMode& mode) {
  SramCell cell;
  cell.config = config;
  cell.circuit = std::make_unique<Circuit>();
  Circuit& ckt = *cell.circuit;

  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId bl = ckt.node("bl");
  spice::NodeId blb = ckt.node("blb");
  spice::NodeId wl = ckt.node("wl");

  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(config.vdd));
  ckt.add<VoltageSource>("Vwl", wl, ckt.gnd(),
                         SourceWave::dc(mode.wordline));
  ckt.add<Capacitor>("Cbl", bl, ckt.gnd(), config.bitline_cap);
  ckt.add<Capacitor>("Cblb", blb, ckt.gnd(), config.bitline_cap);
  if (mode.drive_bitlines) {
    ckt.add<VoltageSource>("Vbl", bl, ckt.gnd(), SourceWave::dc(config.vdd));
    ckt.add<VoltageSource>("Vblb", blb, ckt.gnd(),
                           SourceWave::dc(config.vdd));
  }
  ckt.instantiate(sram_bitcell_cell(config.kind), "Xcell",
                  {bl, blb, wl, vdd},
                  bitcell_params(config, config.stored_one));
  return cell;
}

// --------------------------------------------------------------- column

SramColumn build_sram_column(const SramColumnConfig& config) {
  const SramConfig& c = config.cell;
  require(config.n_cells >= 1, "build_sram_column: need at least one cell");
  require(config.active_cell < config.n_cells,
          "build_sram_column: active_cell out of range");

  SramColumn col;
  col.config = config;
  col.circuit = std::make_unique<Circuit>();
  Circuit& ckt = *col.circuit;

  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId bl = ckt.node("bl");
  spice::NodeId blb = ckt.node("blb");
  spice::NodeId wl = ckt.node("wl");

  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(c.vdd));
  ckt.add<VoltageSource>("Vwl", wl, ckt.gnd(), SourceWave::dc(0.0));
  ckt.add<Capacitor>("Cbl", bl, ckt.gnd(), c.bitline_cap);
  ckt.add<Capacitor>("Cblb", blb, ckt.gnd(), c.bitline_cap);

  const spice::Subcircuit def = sram_bitcell_cell(c.kind);
  for (std::size_t i = 0; i < config.n_cells; ++i) {
    // Only the accessed row's wordline is driven; idle rows' wordlines
    // sit hard at ground, so their access transistors are OFF and only
    // leak — exactly the column effect of paper Section 5.1.
    spice::NodeId cell_wl = i == config.active_cell ? wl : ckt.gnd();
    ckt.instantiate(def, col.cell_name(i), {bl, blb, cell_wl, vdd},
                    bitcell_params(c, config.cell_stores_one(i)));
  }
  return col;
}

void nodeset_column_state(MnaSystem& system, const SramColumn& col) {
  Circuit& ckt = system.circuit();
  const SramConfig& c = col.config.cell;
  for (std::size_t i = 0; i < col.config.n_cells; ++i) {
    const double vql = col.config.cell_stores_one(i) ? c.vdd : 0.0;
    system.set_nodeset(ckt.find_node(col.cell_node(i, "ql")), vql);
    system.set_nodeset(ckt.find_node(col.cell_node(i, "qr")), c.vdd - vql);
  }
}

// ------------------------------------------------------------ butterfly

namespace {

/// Transfer curve of one half-cell under read stress: drive the input
/// storage node with a source, read the other storage node.
std::vector<double> half_cell_transfer(const SramConfig& config,
                                       bool drive_ql,
                                       const std::vector<double>& points) {
  SramBenchMode mode;
  mode.drive_bitlines = true;
  mode.wordline = config.vdd;  // read condition
  SramCell cell = build_sram_cell(config, mode);
  Circuit& ckt = cell.ckt();

  const std::string driven = drive_ql ? SramCell::kQl : SramCell::kQr;
  const std::string sensed = drive_ql ? SramCell::kQr : SramCell::kQl;
  auto& sweep_src = ckt.add<VoltageSource>(
      "Vsweep", ckt.find_node(driven), ckt.gnd(), SourceWave::dc(0.0));

  MnaSystem system(ckt);
  spice::Waveform sweep = spice::dc_sweep(
      system, [&](double v) { sweep_src.set_dc(v); }, points);
  return sweep.series("v(" + sensed + ")");
}

}  // namespace

double extract_snm(const std::vector<double>& v_in,
                   const std::vector<double>& v_fwd,
                   const std::vector<double>& v_rev) {
  require(v_in.size() == v_fwd.size() && v_in.size() == v_rev.size() &&
              v_in.size() >= 3,
          "extract_snm: need matched sampled curves");
  // Rotate 45 degrees: u = (x - y)/sqrt2 (monotone along a VTC),
  // v = (x + y)/sqrt2.  The largest axis-aligned square between the
  // curves has its diagonal along v; side = max |v1(u) - v2(u)| / sqrt2
  // per lobe (Seevinck's method).
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  std::vector<double> u1, w1, u2, w2;
  for (std::size_t i = 0; i < v_in.size(); ++i) {
    // Curve 1: (x = v_in, y = v_fwd).
    u1.push_back((v_in[i] - v_fwd[i]) * inv_sqrt2);
    w1.push_back((v_in[i] + v_fwd[i]) * inv_sqrt2);
    // Curve 2: (x = v_rev, y = v_in).
    u2.push_back((v_rev[i] - v_in[i]) * inv_sqrt2);
    w2.push_back((v_rev[i] + v_in[i]) * inv_sqrt2);
  }
  // u2 runs descending (y = v_in ascending while x decreasing): reverse.
  std::reverse(u2.begin(), u2.end());
  std::reverse(w2.begin(), w2.end());
  // Make both u axes strictly increasing for interpolation (drop ties).
  auto dedupe = [](std::vector<double>& u, std::vector<double>& w) {
    std::vector<double> uu, ww;
    for (std::size_t i = 0; i < u.size(); ++i) {
      if (uu.empty() || u[i] > uu.back() + 1e-12) {
        uu.push_back(u[i]);
        ww.push_back(w[i]);
      }
    }
    u = std::move(uu);
    w = std::move(ww);
  };
  dedupe(u1, w1);
  dedupe(u2, w2);
  require(u1.size() >= 2 && u2.size() >= 2, "extract_snm: degenerate curves");

  PiecewiseLinear f1(u1, w1);
  PiecewiseLinear f2(u2, w2);
  const double u_lo = std::max(u1.front(), u2.front());
  const double u_hi = std::min(u1.back(), u2.back());
  require(u_hi > u_lo, "extract_snm: curves do not overlap");

  double max_pos = 0.0;  // lobe where curve 2 is above curve 1
  double max_neg = 0.0;  // the other lobe
  constexpr int kSamples = 400;
  for (int i = 0; i <= kSamples; ++i) {
    const double u = u_lo + (u_hi - u_lo) * i / kSamples;
    const double d = f2(u) - f1(u);
    max_pos = std::max(max_pos, d);
    max_neg = std::max(max_neg, -d);
  }
  return std::min(max_pos, max_neg) * inv_sqrt2;
}

ButterflyCurves measure_butterfly(const SramConfig& config,
                                  std::size_t points) {
  ButterflyCurves out;
  out.v_in = spice::linspace(0.0, config.vdd, points);
  out.v_fwd = half_cell_transfer(config, /*drive_ql=*/true, out.v_in);
  out.v_rev = half_cell_transfer(config, /*drive_ql=*/false, out.v_in);
  out.snm = extract_snm(out.v_in, out.v_fwd, out.v_rev);
  return out;
}

// ---------------------------------------------------------- read latency

namespace {

/// Time from the wordline 50 % rising edge until the differential between
/// the (possibly drooping) reference bitline and the discharging read
/// bitline reaches `sense_margin` volts.
double bitline_sense_latency(const spice::Waveform& wave, double vdd,
                             bool stored_one, double sense_margin) {
  // The bitline on the zero-storing side discharges through access +
  // pull-down; sensing completes when the differential against the
  // reference bitline reaches the margin.
  const std::string read_bl = stored_one ? "v(blb)" : "v(bl)";
  const std::string ref_sig = stored_one ? "v(bl)" : "v(blb)";
  const double t_wl_half =
      spice::cross_time(wave, "v(wl)", 0.5 * vdd, spice::Edge::kRising);
  const std::size_t s_read = wave.signal_index(read_bl);
  const std::size_t s_ref = wave.signal_index(ref_sig);
  const auto& ts = wave.times();
  for (std::size_t k = 1; k < ts.size(); ++k) {
    if (ts[k] < t_wl_half) continue;
    const double diff = wave.sample(s_ref, k) - wave.sample(s_read, k);
    if (diff >= sense_margin) {
      // Linear refinement between samples.
      const double d0 =
          wave.sample(s_ref, k - 1) - wave.sample(s_read, k - 1);
      const double frac = (sense_margin - d0) / (diff - d0);
      return ts[k - 1] + frac * (ts[k] - ts[k - 1]) - t_wl_half;
    }
  }
  throw MeasurementError("read latency: sense margin never reached");
}

/// Read-bench timing shared by the single-cell and column benches.
constexpr double kPrechargeOff = 0.2e-9;
constexpr double kWordlineRise = 0.4e-9;

/// Adds the bitline precharge PMOS pair and switches Vpc off before the
/// wordline rises; reprograms "Vwl" with the read pulse.
void dress_read_bench(Circuit& ckt, double vdd, double l) {
  spice::NodeId pc = ckt.node("pc");
  ckt.add<Mosfet>("Mpcl", ckt.find_node("bl"), pc, ckt.find_node("vdd"),
                  MosPolarity::kPmos, tech::pmos_90nm(), 1e-6, l);
  ckt.add<Mosfet>("Mpcr", ckt.find_node("blb"), pc, ckt.find_node("vdd"),
                  MosPolarity::kPmos, tech::pmos_90nm(), 1e-6, l);
  ckt.add<VoltageSource>(
      "Vpc", pc, ckt.gnd(),
      SourceWave::pulse(0.0, vdd, kPrechargeOff, 20e-12, 20e-12, 1.0));
  ckt.find<VoltageSource>("Vwl").set_wave(
      SourceWave::pulse(0.0, vdd, kWordlineRise, 20e-12, 20e-12, 1.0));
}

double read_latency_impl(const SramConfig& config, std::size_t idle_cells,
                         double sense_margin,
                         spice::RunReport* report = nullptr) {
  SramBenchMode mode;
  mode.drive_bitlines = false;  // bitlines precharged via PMOS, then float
  SramCell cell = build_sram_cell(config, mode);
  Circuit& ckt = cell.ckt();
  const double vdd = config.vdd;

  // Precharge devices, switched off before the wordline rises.
  dress_read_bench(ckt, vdd, config.l);

  const std::string ref_bl = config.stored_one ? "bl" : "blb";
  if (idle_cells > 0) {
    // Lumped model of the other cells on the column (paper Section 5.1):
    // their OFF access transistors leak from the *reference* bitline into
    // storage nodes holding 0, drooping it and shrinking the sense
    // differential.  One wide device stands in for the parallel
    // combination; worst case assumes every idle cell stores the value
    // that discharges the reference side.
    spice::NodeId qidle = ckt.node("qidle");
    ckt.add<VoltageSource>("Vqidle", qidle, ckt.gnd(), SourceWave::dc(0.0));
    ckt.add<Mosfet>("Midle", ckt.find_node(ref_bl), ckt.gnd(), qidle,
                    MosPolarity::kNmos, tech::nmos_90nm(),
                    static_cast<double>(idle_cells) * config.w_access,
                    config.l);
  }

  MnaSystem system(ckt);
  nodeset_stored_value(system, config);
  system.set_nodeset(ckt.find_node("bl"), vdd);
  system.set_nodeset(ckt.find_node("blb"), vdd);

  spice::TransientOptions options;
  options.newton = config.newton;
  options.tstop = 3e-9;
  options.dt_initial = 1e-13;
  options.report = report;
  spice::Waveform wave = spice::transient(system, options);

  return bitline_sense_latency(wave, vdd, config.stored_one, sense_margin);
}

}  // namespace

double measure_read_latency(const SramConfig& config, double sense_margin,
                            spice::RunReport* report) {
  return read_latency_impl(config, 0, sense_margin, report);
}

double measure_column_read_latency(const SramConfig& config,
                                   std::size_t idle_cells,
                                   double sense_margin) {
  return read_latency_impl(config, idle_cells, sense_margin);
}

double measure_column_read_latency_structural(const SramColumnConfig& config,
                                              double sense_margin,
                                              spice::RunReport* report) {
  SramColumn col = build_sram_column(config);
  Circuit& ckt = col.ckt();
  const SramConfig& c = config.cell;

  dress_read_bench(ckt, c.vdd, c.l);

  MnaSystem system(ckt);
  nodeset_column_state(system, col);
  system.set_nodeset(ckt.find_node("bl"), c.vdd);
  system.set_nodeset(ckt.find_node("blb"), c.vdd);

  spice::TransientOptions options;
  options.newton = c.newton;
  options.tstop = 3e-9;
  options.dt_initial = 1e-13;
  options.report = report;
  spice::Waveform wave = spice::transient(system, options);

  return bitline_sense_latency(wave, c.vdd, c.stored_one, sense_margin);
}

// ---------------------------------------------------------------- write

WriteResult measure_write(const SramConfig& config, double wl_pulse) {
  require(wl_pulse > 1e-12, "measure_write: pulse too short");
  // Bitlines driven to the value being written: write the OPPOSITE of
  // the stored value (write 1 to QL when it holds 0 and vice versa).
  const bool write_one = !config.stored_one;
  const double vdd = config.vdd;

  SramBenchMode mode;
  mode.drive_bitlines = true;
  SramCell cell = build_sram_cell(config, mode);
  Circuit& ckt = cell.ckt();
  ckt.find<VoltageSource>("Vbl").set_dc(write_one ? vdd : 0.0);
  ckt.find<VoltageSource>("Vblb").set_dc(write_one ? 0.0 : vdd);
  const double t_wl = 0.2e-9;
  const double edge = 20e-12;
  ckt.find<VoltageSource>("Vwl").set_wave(
      SourceWave::pulse(0.0, vdd, t_wl, edge, edge, wl_pulse));

  MnaSystem system(ckt);
  nodeset_stored_value(system, config);

  spice::TransientOptions options;
  options.newton = config.newton;
  options.tstop = t_wl + wl_pulse + 2.0 * edge + 1e-9;  // settle after WL
  options.dt_initial = 1e-13;
  spice::Waveform wave = spice::transient(system, options);

  WriteResult result;
  const std::string v_ql = std::string("v(") + SramCell::kQl + ")";
  const double vql_final = spice::final_value(wave, v_ql);
  result.flipped = write_one ? (vql_final > 0.8 * vdd)
                             : (vql_final < 0.2 * vdd);
  if (result.flipped) {
    const double t_wl_half =
        spice::cross_time(wave, "v(wl)", 0.5 * vdd, spice::Edge::kRising);
    const double t_q = spice::cross_time(
        wave, v_ql, 0.5 * vdd,
        write_one ? spice::Edge::kRising : spice::Edge::kFalling, 1,
        t_wl_half);
    result.latency = t_q - t_wl_half;
  }
  return result;
}

double measure_min_write_pulse(const SramConfig& config, double lo,
                               double hi) {
  require(hi > lo && lo > 0.0, "measure_min_write_pulse: bad bracket");
  if (measure_write(config, lo).flipped) return lo;
  require(measure_write(config, hi).flipped,
          "measure_min_write_pulse: cell not writable even at hi");
  while (hi - lo > 0.05 * lo) {
    const double mid = std::sqrt(lo * hi);  // bisect in log space
    if (measure_write(config, mid).flipped) hi = mid; else lo = mid;
  }
  return hi;
}

// -------------------------------------------------------------- leakage

namespace {

double standby_leakage_impl(const SramConfig& config, bool precharged) {
  SramBenchMode mode;
  mode.drive_bitlines = precharged;
  mode.wordline = 0.0;
  SramCell cell = build_sram_cell(config, mode);
  Circuit& ckt = cell.ckt();

  MnaSystem system(ckt);
  nodeset_stored_value(system, config);
  if (!precharged) {
    // Floating bitlines start near the rail they last saw.
    system.set_nodeset(ckt.find_node("bl"), config.vdd);
    system.set_nodeset(ckt.find_node("blb"), config.vdd);
  }
  spice::OpResult op = spice::operating_point(system);

  // Sanity: the cell must still hold its value.
  const double vql = op.v(SramCell::kQl);
  const double expect = config.stored_one ? config.vdd : 0.0;
  require(std::abs(vql - expect) < 0.3 * config.vdd,
          "standby leakage: cell lost its state in the operating point");

  return static_power(ckt, op);
}

}  // namespace

double measure_standby_leakage(const SramConfig& config) {
  return standby_leakage_impl(config, /*precharged=*/false);
}

double measure_standby_leakage_precharged(const SramConfig& config) {
  return standby_leakage_impl(config, /*precharged=*/true);
}

}  // namespace nemsim::core
