#include "nemsim/core/sram.h"

#include <algorithm>
#include <cmath>

#include "nemsim/core/metrics.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/dcsweep.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/error.h"
#include "nemsim/util/interp.h"

namespace nemsim::core {

using devices::Capacitor;
using devices::Mosfet;
using devices::MosPolarity;
using devices::Nemfet;
using devices::NemsPolarity;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::MnaSystem;

const char* sram_kind_name(SramKind kind) {
  switch (kind) {
    case SramKind::kConventional: return "Conv.";
    case SramKind::kDualVt: return "Dual Vt";
    case SramKind::kAsymmetric: return "Asym.";
    case SramKind::kHybrid: return "Hybrid";
    case SramKind::kHybridPullupOnly: return "Hybrid-PU";
  }
  return "?";
}

namespace {

/// Adds the cross-coupled core + access transistors per Figure 13.
/// Node/device names follow the paper: QL/QR storage nodes, AL/AR access,
/// PL/PR pull-ups, NL/NR pull-downs.
void add_cell_core(Circuit& ckt, const SramConfig& c) {
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId ql = ckt.node("ql");
  spice::NodeId qr = ckt.node("qr");
  spice::NodeId bl = ckt.node("bl");
  spice::NodeId blb = ckt.node("blb");
  spice::NodeId wl = ckt.node("wl");

  // Access transistors: always CMOS (replacing them with NEMS would be
  // disastrous for latency, as the paper argues).  The dual-Vt cell [25]
  // pairs low-Vt access devices with a high-Vt core - fast bitline
  // access at the cost of read stability, which is exactly the tradeoff
  // the paper attributes to that architecture.
  const devices::MosParams access_card = c.kind == SramKind::kDualVt
                                             ? tech::nmos_90nm_lvt()
                                             : tech::nmos_90nm();
  ckt.add<Mosfet>("AL", bl, wl, ql, MosPolarity::kNmos, access_card,
                  c.w_access, c.l);
  ckt.add<Mosfet>("AR", blb, wl, qr, MosPolarity::kNmos, access_card,
                  c.w_access, c.l);

  // Device-flavour selection per architecture.
  const bool hybrid = c.kind == SramKind::kHybrid;
  const bool hybrid_pu = c.kind == SramKind::kHybridPullupOnly;
  auto nmos_card = [&](bool zero_state_leaker) {
    if (c.kind == SramKind::kDualVt) return tech::nmos_90nm_hvt();
    if (c.kind == SramKind::kAsymmetric && zero_state_leaker) {
      return tech::nmos_90nm_hvt();
    }
    return tech::nmos_90nm();
  };
  auto pmos_card = [&](bool zero_state_leaker) {
    if (c.kind == SramKind::kDualVt) return tech::pmos_90nm_hvt();
    if (c.kind == SramKind::kAsymmetric && zero_state_leaker) {
      return tech::pmos_90nm_hvt();
    }
    return tech::pmos_90nm();
  };

  if (hybrid) {
    // Figure 13 (d): both pull-downs and pull-ups become NEMS devices.
    auto& nl = ckt.add<Nemfet>("NL", ql, qr, ckt.gnd(), NemsPolarity::kN,
                               tech::nems_90nm(), c.w_nems_pulldown);
    auto& nr = ckt.add<Nemfet>("NR", qr, ql, ckt.gnd(), NemsPolarity::kN,
                               tech::nems_90nm(), c.w_nems_pulldown);
    auto& pl = ckt.add<Nemfet>("PL", ql, qr, vdd, NemsPolarity::kP,
                               tech::nems_90nm(), c.w_nems_pullup);
    auto& pr = ckt.add<Nemfet>("PR", qr, ql, vdd, NemsPolarity::kP,
                               tech::nems_90nm(), c.w_nems_pullup);
    // Seed beam states consistent with the stored value so bistable DC
    // solves land on the right branch.
    if (c.stored_one) {
      // QL = 1, QR = 0: NR and PL conduct.
      nr.set_initially_closed();
      pl.set_initially_closed();
    } else {
      nl.set_initially_closed();
      pr.set_initially_closed();
    }
  } else if (hybrid_pu) {
    // Section 5.3 alternative: NEMS pull-ups over a CMOS pull-down pair.
    ckt.add<Mosfet>("NL", ql, qr, ckt.gnd(), MosPolarity::kNmos,
                    tech::nmos_90nm(), c.w_pulldown, c.l);
    ckt.add<Mosfet>("NR", qr, ql, ckt.gnd(), MosPolarity::kNmos,
                    tech::nmos_90nm(), c.w_pulldown, c.l);
    auto& pl = ckt.add<Nemfet>("PL", ql, qr, vdd, NemsPolarity::kP,
                               tech::nems_90nm(), c.w_nems_pullup);
    auto& pr = ckt.add<Nemfet>("PR", qr, ql, vdd, NemsPolarity::kP,
                               tech::nems_90nm(), c.w_nems_pullup);
    if (c.stored_one) {
      pl.set_initially_closed();
    } else {
      pr.set_initially_closed();
    }
  } else {
    // For the asymmetric cell [26] the preferred state stores a zero at
    // QL; the devices that are OFF (and leak) in that state - PL and NR -
    // get the high threshold.
    ckt.add<Mosfet>("NL", ql, qr, ckt.gnd(), MosPolarity::kNmos,
                    nmos_card(false), c.w_pulldown, c.l);
    ckt.add<Mosfet>("NR", qr, ql, ckt.gnd(), MosPolarity::kNmos,
                    nmos_card(true), c.w_pulldown, c.l);
    ckt.add<Mosfet>("PL", ql, qr, vdd, MosPolarity::kPmos, pmos_card(true),
                    c.w_pullup, c.l);
    ckt.add<Mosfet>("PR", qr, ql, vdd, MosPolarity::kPmos, pmos_card(false),
                    c.w_pullup, c.l);
  }
}

void nodeset_stored_value(MnaSystem& system, const SramConfig& c) {
  Circuit& ckt = system.circuit();
  const double vql = c.stored_one ? c.vdd : 0.0;
  system.set_nodeset(ckt.find_node("ql"), vql);
  system.set_nodeset(ckt.find_node("qr"), c.vdd - vql);
}

}  // namespace

SramCell build_sram_cell(const SramConfig& config,
                         const SramBenchMode& mode) {
  SramCell cell;
  cell.config = config;
  cell.circuit = std::make_unique<Circuit>();
  Circuit& ckt = *cell.circuit;

  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId bl = ckt.node("bl");
  spice::NodeId blb = ckt.node("blb");
  spice::NodeId wl = ckt.node("wl");

  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(config.vdd));
  ckt.add<VoltageSource>("Vwl", wl, ckt.gnd(),
                         SourceWave::dc(mode.wordline));
  ckt.add<Capacitor>("Cbl", bl, ckt.gnd(), config.bitline_cap);
  ckt.add<Capacitor>("Cblb", blb, ckt.gnd(), config.bitline_cap);
  if (mode.drive_bitlines) {
    ckt.add<VoltageSource>("Vbl", bl, ckt.gnd(), SourceWave::dc(config.vdd));
    ckt.add<VoltageSource>("Vblb", blb, ckt.gnd(),
                           SourceWave::dc(config.vdd));
  }
  add_cell_core(ckt, config);
  return cell;
}

// ------------------------------------------------------------ butterfly

namespace {

/// Transfer curve of one half-cell under read stress: drive the input
/// storage node with a source, read the other storage node.
std::vector<double> half_cell_transfer(const SramConfig& config,
                                       bool drive_ql,
                                       const std::vector<double>& points) {
  SramBenchMode mode;
  mode.drive_bitlines = true;
  mode.wordline = config.vdd;  // read condition
  SramCell cell = build_sram_cell(config, mode);
  Circuit& ckt = cell.ckt();

  const std::string driven = drive_ql ? "ql" : "qr";
  const std::string sensed = drive_ql ? "qr" : "ql";
  auto& sweep_src = ckt.add<VoltageSource>(
      "Vsweep", ckt.find_node(driven), ckt.gnd(), SourceWave::dc(0.0));

  MnaSystem system(ckt);
  spice::Waveform sweep = spice::dc_sweep(
      system, [&](double v) { sweep_src.set_dc(v); }, points);
  return sweep.series("v(" + sensed + ")");
}

}  // namespace

double extract_snm(const std::vector<double>& v_in,
                   const std::vector<double>& v_fwd,
                   const std::vector<double>& v_rev) {
  require(v_in.size() == v_fwd.size() && v_in.size() == v_rev.size() &&
              v_in.size() >= 3,
          "extract_snm: need matched sampled curves");
  // Rotate 45 degrees: u = (x - y)/sqrt2 (monotone along a VTC),
  // v = (x + y)/sqrt2.  The largest axis-aligned square between the
  // curves has its diagonal along v; side = max |v1(u) - v2(u)| / sqrt2
  // per lobe (Seevinck's method).
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  std::vector<double> u1, w1, u2, w2;
  for (std::size_t i = 0; i < v_in.size(); ++i) {
    // Curve 1: (x = v_in, y = v_fwd).
    u1.push_back((v_in[i] - v_fwd[i]) * inv_sqrt2);
    w1.push_back((v_in[i] + v_fwd[i]) * inv_sqrt2);
    // Curve 2: (x = v_rev, y = v_in).
    u2.push_back((v_rev[i] - v_in[i]) * inv_sqrt2);
    w2.push_back((v_rev[i] + v_in[i]) * inv_sqrt2);
  }
  // u2 runs descending (y = v_in ascending while x decreasing): reverse.
  std::reverse(u2.begin(), u2.end());
  std::reverse(w2.begin(), w2.end());
  // Make both u axes strictly increasing for interpolation (drop ties).
  auto dedupe = [](std::vector<double>& u, std::vector<double>& w) {
    std::vector<double> uu, ww;
    for (std::size_t i = 0; i < u.size(); ++i) {
      if (uu.empty() || u[i] > uu.back() + 1e-12) {
        uu.push_back(u[i]);
        ww.push_back(w[i]);
      }
    }
    u = std::move(uu);
    w = std::move(ww);
  };
  dedupe(u1, w1);
  dedupe(u2, w2);
  require(u1.size() >= 2 && u2.size() >= 2, "extract_snm: degenerate curves");

  PiecewiseLinear f1(u1, w1);
  PiecewiseLinear f2(u2, w2);
  const double u_lo = std::max(u1.front(), u2.front());
  const double u_hi = std::min(u1.back(), u2.back());
  require(u_hi > u_lo, "extract_snm: curves do not overlap");

  double max_pos = 0.0;  // lobe where curve 2 is above curve 1
  double max_neg = 0.0;  // the other lobe
  constexpr int kSamples = 400;
  for (int i = 0; i <= kSamples; ++i) {
    const double u = u_lo + (u_hi - u_lo) * i / kSamples;
    const double d = f2(u) - f1(u);
    max_pos = std::max(max_pos, d);
    max_neg = std::max(max_neg, -d);
  }
  return std::min(max_pos, max_neg) * inv_sqrt2;
}

ButterflyCurves measure_butterfly(const SramConfig& config,
                                  std::size_t points) {
  ButterflyCurves out;
  out.v_in = spice::linspace(0.0, config.vdd, points);
  out.v_fwd = half_cell_transfer(config, /*drive_ql=*/true, out.v_in);
  out.v_rev = half_cell_transfer(config, /*drive_ql=*/false, out.v_in);
  out.snm = extract_snm(out.v_in, out.v_fwd, out.v_rev);
  return out;
}

// ---------------------------------------------------------- read latency

namespace {

double read_latency_impl(const SramConfig& config, std::size_t idle_cells,
                         double sense_margin,
                         spice::RunReport* report = nullptr) {
  SramBenchMode mode;
  mode.drive_bitlines = false;  // bitlines precharged via PMOS, then float
  SramCell cell = build_sram_cell(config, mode);
  Circuit& ckt = cell.ckt();
  const double vdd = config.vdd;

  // Precharge devices, switched off before the wordline rises.
  spice::NodeId pc = ckt.node("pc");
  ckt.add<Mosfet>("Mpcl", ckt.find_node("bl"), pc, ckt.find_node("vdd"),
                  MosPolarity::kPmos, tech::pmos_90nm(), 1e-6, config.l);
  ckt.add<Mosfet>("Mpcr", ckt.find_node("blb"), pc, ckt.find_node("vdd"),
                  MosPolarity::kPmos, tech::pmos_90nm(), 1e-6, config.l);
  const double t_pc_off = 0.2e-9;
  const double t_wl = 0.4e-9;
  ckt.add<VoltageSource>(
      "Vpc", pc, ckt.gnd(),
      SourceWave::pulse(0.0, vdd, t_pc_off, 20e-12, 20e-12, 1.0));
  ckt.find<VoltageSource>("Vwl").set_wave(
      SourceWave::pulse(0.0, vdd, t_wl, 20e-12, 20e-12, 1.0));

  const std::string ref_bl = config.stored_one ? "bl" : "blb";
  if (idle_cells > 0) {
    // Lumped model of the other cells on the column (paper Section 5.1):
    // their OFF access transistors leak from the *reference* bitline into
    // storage nodes holding 0, drooping it and shrinking the sense
    // differential.  One wide device stands in for the parallel
    // combination; worst case assumes every idle cell stores the value
    // that discharges the reference side.
    spice::NodeId qidle = ckt.node("qidle");
    ckt.add<VoltageSource>("Vqidle", qidle, ckt.gnd(), SourceWave::dc(0.0));
    ckt.add<Mosfet>("Midle", ckt.find_node(ref_bl), ckt.gnd(), qidle,
                    MosPolarity::kNmos, tech::nmos_90nm(),
                    static_cast<double>(idle_cells) * config.w_access,
                    config.l);
  }

  MnaSystem system(ckt);
  nodeset_stored_value(system, config);
  system.set_nodeset(ckt.find_node("bl"), vdd);
  system.set_nodeset(ckt.find_node("blb"), vdd);

  spice::TransientOptions options;
  options.tstop = 3e-9;
  options.dt_initial = 1e-13;
  options.report = report;
  spice::Waveform wave = spice::transient(system, options);

  // The bitline on the zero-storing side discharges through access +
  // pull-down; sensing completes when the differential against the
  // (possibly drooping) reference bitline reaches the margin.
  const std::string read_bl = config.stored_one ? "v(blb)" : "v(bl)";
  const std::string ref_sig = "v(" + ref_bl + ")";
  const double t_wl_half =
      spice::cross_time(wave, "v(wl)", 0.5 * vdd, spice::Edge::kRising);
  const std::size_t s_read = wave.signal_index(read_bl);
  const std::size_t s_ref = wave.signal_index(ref_sig);
  const auto& ts = wave.times();
  for (std::size_t k = 1; k < ts.size(); ++k) {
    if (ts[k] < t_wl_half) continue;
    const double diff = wave.sample(s_ref, k) - wave.sample(s_read, k);
    if (diff >= sense_margin) {
      // Linear refinement between samples.
      const double d0 =
          wave.sample(s_ref, k - 1) - wave.sample(s_read, k - 1);
      const double frac = (sense_margin - d0) / (diff - d0);
      return ts[k - 1] + frac * (ts[k] - ts[k - 1]) - t_wl_half;
    }
  }
  throw MeasurementError("read latency: sense margin never reached");
}

}  // namespace

double measure_read_latency(const SramConfig& config, double sense_margin,
                            spice::RunReport* report) {
  return read_latency_impl(config, 0, sense_margin, report);
}

double measure_column_read_latency(const SramConfig& config,
                                   std::size_t idle_cells,
                                   double sense_margin) {
  return read_latency_impl(config, idle_cells, sense_margin);
}

// ---------------------------------------------------------------- write

WriteResult measure_write(const SramConfig& config, double wl_pulse) {
  require(wl_pulse > 1e-12, "measure_write: pulse too short");
  // Bitlines driven to the value being written: write the OPPOSITE of
  // the stored value (write 1 to QL when it holds 0 and vice versa).
  const bool write_one = !config.stored_one;
  const double vdd = config.vdd;

  SramBenchMode mode;
  mode.drive_bitlines = true;
  SramCell cell = build_sram_cell(config, mode);
  Circuit& ckt = cell.ckt();
  ckt.find<VoltageSource>("Vbl").set_dc(write_one ? vdd : 0.0);
  ckt.find<VoltageSource>("Vblb").set_dc(write_one ? 0.0 : vdd);
  const double t_wl = 0.2e-9;
  const double edge = 20e-12;
  ckt.find<VoltageSource>("Vwl").set_wave(
      SourceWave::pulse(0.0, vdd, t_wl, edge, edge, wl_pulse));

  MnaSystem system(ckt);
  nodeset_stored_value(system, config);

  spice::TransientOptions options;
  options.tstop = t_wl + wl_pulse + 2.0 * edge + 1e-9;  // settle after WL
  options.dt_initial = 1e-13;
  spice::Waveform wave = spice::transient(system, options);

  WriteResult result;
  const double vql_final = spice::final_value(wave, "v(ql)");
  result.flipped = write_one ? (vql_final > 0.8 * vdd)
                             : (vql_final < 0.2 * vdd);
  if (result.flipped) {
    const double t_wl_half =
        spice::cross_time(wave, "v(wl)", 0.5 * vdd, spice::Edge::kRising);
    const double t_q = spice::cross_time(
        wave, "v(ql)", 0.5 * vdd,
        write_one ? spice::Edge::kRising : spice::Edge::kFalling, 1,
        t_wl_half);
    result.latency = t_q - t_wl_half;
  }
  return result;
}

double measure_min_write_pulse(const SramConfig& config, double lo,
                               double hi) {
  require(hi > lo && lo > 0.0, "measure_min_write_pulse: bad bracket");
  if (measure_write(config, lo).flipped) return lo;
  require(measure_write(config, hi).flipped,
          "measure_min_write_pulse: cell not writable even at hi");
  while (hi - lo > 0.05 * lo) {
    const double mid = std::sqrt(lo * hi);  // bisect in log space
    if (measure_write(config, mid).flipped) hi = mid; else lo = mid;
  }
  return hi;
}

// -------------------------------------------------------------- leakage

namespace {

double standby_leakage_impl(const SramConfig& config, bool precharged) {
  SramBenchMode mode;
  mode.drive_bitlines = precharged;
  mode.wordline = 0.0;
  SramCell cell = build_sram_cell(config, mode);
  Circuit& ckt = cell.ckt();

  MnaSystem system(ckt);
  nodeset_stored_value(system, config);
  if (!precharged) {
    // Floating bitlines start near the rail they last saw.
    system.set_nodeset(ckt.find_node("bl"), config.vdd);
    system.set_nodeset(ckt.find_node("blb"), config.vdd);
  }
  spice::OpResult op = spice::operating_point(system);

  // Sanity: the cell must still hold its value.
  const double vql = op.v("ql");
  const double expect = config.stored_one ? config.vdd : 0.0;
  require(std::abs(vql - expect) < 0.3 * config.vdd,
          "standby leakage: cell lost its state in the operating point");

  return static_power(ckt, op);
}

}  // namespace

double measure_standby_leakage(const SramConfig& config) {
  return standby_leakage_impl(config, /*precharged=*/false);
}

double measure_standby_leakage_precharged(const SramConfig& config) {
  return standby_leakage_impl(config, /*precharged=*/true);
}

}  // namespace nemsim::core
