#include "nemsim/core/power_gating.h"

#include <cmath>

#include "nemsim/core/cells.h"
#include "nemsim/core/gates.h"
#include "nemsim/core/metrics.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/error.h"

namespace nemsim::core {

using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::MnaSystem;

namespace {

/// Figure 17's reference area: a W/L = 5 device at the 90 nm node.
double reference_area() {
  const tech::TechNode node = tech::node_90nm();
  return 5.0 * node.lmin * node.lmin;
}

/// Width for a given normalized area (L fixed at Lmin for both device
/// types; the NEMS beam footprint is taken equal to its channel area).
double width_for_area(double area_norm) {
  const tech::TechNode node = tech::node_90nm();
  return area_norm * reference_area() / node.lmin;
}

/// Instantiates the library sleep-switch cell as `inst` between `d`, `g`
/// and `s` (nemsim/core/cells.h: footer = N-type to ground, header =
/// P-type to Vdd; NEMS or CMOS flavour per the experiment config).
void add_sleep_switch(Circuit& ckt, const std::string& inst,
                      SleepDeviceType device, bool footer, spice::NodeId d,
                      spice::NodeId g, spice::NodeId s, double width) {
  ckt.instantiate(
      sleep_switch_cell(footer, device != SleepDeviceType::kCmos), inst,
      {d, g, s}, {{"W", width}, {"L", tech::node_90nm().lmin}});
}

/// Builds a single footer/header switch with Vg/Vd sources, solves the
/// OP, and returns the drain current magnitude.
double switch_current(const SleepSweepConfig& config, double width,
                      bool on_state, double vds) {
  Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  const bool footer = config.style == SleepStyle::kFooter;
  // Footer: N device, source grounded.  Header: P device with the source
  // at Vdd, biases mirrored.
  const double sgn = footer ? 1.0 : -1.0;
  spice::NodeId src_node = ckt.gnd();
  if (!footer) {
    src_node = ckt.node("s");
    ckt.add<VoltageSource>("Vs", src_node, ckt.gnd(),
                           SourceWave::dc(config.vdd));
  }
  const double v_src = footer ? 0.0 : config.vdd;
  ckt.add<VoltageSource>("Vd", d, ckt.gnd(),
                         SourceWave::dc(v_src + sgn * vds));
  ckt.add<VoltageSource>(
      "Vg", g, ckt.gnd(),
      SourceWave::dc(on_state ? v_src + sgn * config.vdd : v_src));

  add_sleep_switch(ckt, "Xsw", config.device, footer, d, g, src_node, width);

  MnaSystem system(ckt);
  spice::OpResult op = spice::operating_point(system);
  return std::abs(op.value("i(Vd)"));
}

}  // namespace

std::vector<SleepPoint> sweep_sleep_transistor(
    const SleepSweepConfig& config, const std::vector<double>& areas) {
  require(!areas.empty(), "sweep_sleep_transistor: no areas");
  std::vector<SleepPoint> out;
  out.reserve(areas.size());
  for (double area : areas) {
    require(area > 0.0, "sweep_sleep_transistor: area must be positive");
    const double w = width_for_area(area);
    SleepPoint p;
    p.area_norm = area;
    const double i_on =
        switch_current(config, w, /*on_state=*/true, config.vds_on);
    p.ron = config.vds_on / i_on;
    p.ioff = switch_current(config, w, /*on_state=*/false, config.vdd);
    out.push_back(p);
  }
  return out;
}

GatedBlockResult measure_gated_block(const GatedBlockConfig& config) {
  GatedBlockResult result;
  const double vdd = config.vdd;

  // --- Active delay, gated vs ungated ---
  auto chain_delay = [&](bool gated) {
    Circuit ckt;
    spice::NodeId vdd_n = ckt.node("vdd");
    spice::NodeId in = ckt.node("in");
    spice::NodeId sleep_g = ckt.node("sleepg");
    spice::NodeId vgnd = gated ? ckt.node("vgnd") : ckt.gnd();
    ckt.add<VoltageSource>("Vdd", vdd_n, ckt.gnd(), SourceWave::dc(vdd));
    ckt.add<VoltageSource>(
        "Vin", in, ckt.gnd(),
        SourceWave::pulse(0.0, vdd, 0.5e-9, 20e-12, 20e-12, 2e-9));
    ckt.add<VoltageSource>("Vsleepg", sleep_g, ckt.gnd(),
                           SourceWave::dc(vdd));
    std::vector<spice::NodeId> outs =
        add_inverter_chain(ckt, "CH", in, vdd_n, vgnd, config.stages);
    if (gated) {
      add_sleep_switch(ckt, "Xsleep", config.device, /*footer=*/true, vgnd,
                       sleep_g, ckt.gnd(), config.sleep_width);
    }
    MnaSystem system(ckt);
    spice::TransientOptions options;
    options.newton = config.newton;
    options.tstop = 3e-9;
    options.dt_initial = 1e-13;
    spice::Waveform wave = spice::transient(system, options);
    const std::string last = "v(" + ckt.node_name(outs.back()) + ")";
    const double half = 0.5 * vdd;
    const spice::Edge out_edge = (config.stages % 2 == 0)
                                     ? spice::Edge::kRising
                                     : spice::Edge::kFalling;
    const double delay = spice::propagation_delay(
        wave, "v(in)", half, spice::Edge::kRising, last, half, out_edge);
    double droop = 0.0;
    if (gated) {
      droop = spice::max_value(wave, "v(vgnd)", 0.5e-9, wave.end_time());
    }
    return std::make_pair(delay, droop);
  };

  auto [dg, droop] = chain_delay(true);
  auto [du, droop_u] = chain_delay(false);
  (void)droop_u;
  result.delay_gated = dg;
  result.delay_ungated = du;
  result.vgnd_droop = droop;

  // --- Sleep leakage: switch off, input low, chain idle ---
  {
    Circuit ckt;
    spice::NodeId vdd_n = ckt.node("vdd");
    spice::NodeId in = ckt.node("in");
    spice::NodeId sleep_g = ckt.node("sleepg");
    spice::NodeId vgnd = ckt.node("vgnd");
    ckt.add<VoltageSource>("Vdd", vdd_n, ckt.gnd(), SourceWave::dc(vdd));
    ckt.add<VoltageSource>("Vin", in, ckt.gnd(), SourceWave::dc(0.0));
    ckt.add<VoltageSource>("Vsleepg", sleep_g, ckt.gnd(),
                           SourceWave::dc(0.0));
    add_inverter_chain(ckt, "CH", in, vdd_n, vgnd, config.stages);
    add_sleep_switch(ckt, "Xsleep", config.device, /*footer=*/true, vgnd,
                     sleep_g, ckt.gnd(), config.sleep_width);
    MnaSystem system(ckt);
    spice::OpResult op = spice::operating_point(system);
    result.sleep_leakage = static_power(ckt, op);
  }

  // --- Wake-up: sleep gate rises, virtual ground collapses to ~0 ---
  {
    Circuit ckt;
    spice::NodeId vdd_n = ckt.node("vdd");
    spice::NodeId in = ckt.node("in");
    spice::NodeId sleep_g = ckt.node("sleepg");
    spice::NodeId vgnd = ckt.node("vgnd");
    ckt.add<VoltageSource>("Vdd", vdd_n, ckt.gnd(), SourceWave::dc(vdd));
    ckt.add<VoltageSource>("Vin", in, ckt.gnd(), SourceWave::dc(0.0));
    ckt.add<VoltageSource>(
        "Vsleepg", sleep_g, ckt.gnd(),
        SourceWave::pulse(0.0, vdd, 0.5e-9, 20e-12, 20e-12, 10e-9));
    add_inverter_chain(ckt, "CH", in, vdd_n, vgnd, config.stages);
    add_sleep_switch(ckt, "Xsleep", config.device, /*footer=*/true, vgnd,
                     sleep_g, ckt.gnd(), config.sleep_width);
    MnaSystem system(ckt);
    spice::TransientOptions options;
    options.newton = config.newton;
    options.tstop = 3e-9;
    options.dt_initial = 1e-13;
    spice::Waveform wave = spice::transient(system, options);
    const double t_gate =
        spice::cross_time(wave, "v(sleepg)", 0.5 * vdd, spice::Edge::kRising);
    // Settled when virtual ground falls below 5 % of Vdd.
    const double t_settle = spice::cross_time(
        wave, "v(vgnd)", 0.05 * vdd, spice::Edge::kFalling, 1, t_gate);
    result.wakeup_time = t_settle - t_gate;
  }
  return result;
}

GranularityResult measure_granularity(SleepGranularity granularity,
                                      const GranularityConfig& config) {
  require(config.stages >= 1, "measure_granularity: need stages >= 1");
  const double vdd = config.vdd;
  const bool fine = granularity == SleepGranularity::kFineGrain;
  const double per_switch_width =
      fine ? config.total_sleep_width / config.stages
           : config.total_sleep_width;

  auto build = [&](bool sleep_on) {
    auto ckt = std::make_unique<Circuit>();
    spice::NodeId vdd_n = ckt->node("vdd");
    spice::NodeId in = ckt->node("in");
    spice::NodeId sleep_g = ckt->node("sleepg");
    ckt->add<VoltageSource>("Vdd", vdd_n, ckt->gnd(), SourceWave::dc(vdd));
    ckt->add<VoltageSource>(
        "Vin", in, ckt->gnd(),
        SourceWave::pulse(0.0, vdd, 0.5e-9, 20e-12, 20e-12, 2e-9));
    ckt->add<VoltageSource>("Vsleepg", sleep_g, ckt->gnd(),
                            SourceWave::dc(sleep_on ? vdd : 0.0));
    auto add_switch = [&](const std::string& inst, spice::NodeId vgnd) {
      add_sleep_switch(*ckt, inst, config.device, /*footer=*/true, vgnd,
                       sleep_g, ckt->gnd(), per_switch_width);
    };
    spice::NodeId shared_vgnd = ckt->node("vgnd0");
    if (!fine) add_switch("Xsleep", shared_vgnd);
    spice::NodeId prev = in;
    InverterSizes sizes;
    for (int s = 0; s < config.stages; ++s) {
      spice::NodeId vgnd =
          fine ? ckt->node("vgnd" + std::to_string(s)) : shared_vgnd;
      if (fine) add_switch("Xsleep" + std::to_string(s), vgnd);
      spice::NodeId out = ckt->node("o" + std::to_string(s));
      add_inverter(*ckt, "S" + std::to_string(s), prev, out, vdd_n, vgnd,
                   sizes);
      prev = out;
    }
    return ckt;
  };

  GranularityResult result;
  {
    auto ckt = build(/*sleep_on=*/true);
    MnaSystem system(*ckt);
    spice::TransientOptions options;
    options.newton = config.newton;
    options.tstop = 3e-9;
    options.dt_initial = 1e-13;
    spice::Waveform wave = spice::transient(system, options);
    const std::string last =
        "v(" + ckt->node_name(ckt->find_node(
                   "o" + std::to_string(config.stages - 1))) + ")";
    const spice::Edge out_edge = (config.stages % 2 == 0)
                                     ? spice::Edge::kRising
                                     : spice::Edge::kFalling;
    result.delay = spice::propagation_delay(wave, "v(in)", 0.5 * vdd,
                                            spice::Edge::kRising, last,
                                            0.5 * vdd, out_edge);
    const int vgnd_count = fine ? config.stages : 1;
    for (int g = 0; g < vgnd_count; ++g) {
      const std::string sig = "v(vgnd" + std::to_string(g) + ")";
      result.worst_droop = std::max(
          result.worst_droop,
          spice::max_value(wave, sig, 0.4e-9, wave.end_time()));
    }
  }
  {
    auto ckt = build(/*sleep_on=*/false);
    ckt->find<VoltageSource>("Vin").set_dc(0.0);
    MnaSystem system(*ckt);
    spice::OpResult op = spice::operating_point(system);
    result.sleep_leakage = static_power(*ckt, op);
  }
  return result;
}

}  // namespace nemsim::core
