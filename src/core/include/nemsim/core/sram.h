// SRAM cells of paper Figure 13 and their evaluation metrics:
// (a) conventional 6T, (b) dual-Vt, (c) asymmetric, (d) the proposed
// hybrid NEMS-CMOS cell — plus static noise margin (butterfly curves),
// read latency, and standby leakage (Figures 14-15).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nemsim/spice/circuit.h"
#include "nemsim/spice/diagnostics.h"
#include "nemsim/spice/waveform.h"

namespace nemsim::spice {
class MnaSystem;
}  // namespace nemsim::spice

namespace nemsim::core {

enum class SramKind {
  kConventional,  ///< Figure 13 (a): all nominal-Vt 6T
  kDualVt,        ///< Figure 13 (b): high-Vt cross-coupled inverters [25]
  kAsymmetric,    ///< Figure 13 (c): high-Vt on the zero-state leakage paths [26]
  kHybrid,        ///< Figure 13 (d): NEMS pull-up and pull-down devices
  /// The paper's Section 5.3 alternative: only the PMOS pull-ups become
  /// NEMS.  Read latency is untouched (PMOS is off during a read) but
  /// the leaky NMOS pull-downs remain, so the leakage saving is smaller.
  kHybridPullupOnly,
};

const char* sram_kind_name(SramKind kind);

struct SramConfig {
  SramKind kind = SramKind::kConventional;
  double vdd = 1.2;
  double w_access = 0.2e-6;   ///< AL / AR
  double w_pulldown = 0.3e-6; ///< NL / NR
  double w_pullup = 0.15e-6;  ///< PL / PR
  double l = 1e-7;
  /// NEMS device sizing (calibrated so the hybrid cell reproduces the
  /// paper's ~14 % SNM reduction at minor latency cost).
  double w_nems_pulldown = 0.3e-6;
  double w_nems_pullup = 0.3e-6;
  double bitline_cap = 20e-15;  ///< lumped BL capacitance (array + wire)
  /// Stored value: true means QL = Vdd ("1"), false QL = 0 ("0").
  bool stored_one = false;
  /// Newton solver knobs for every analysis the benches run on this cell
  /// (notably the quiescent-device bypass and Jacobian-reuse accelerators,
  /// both off by default so results stay bitwise-stable).
  spice::NewtonOptions newton{};
};

/// A built cell with its testbench sources.
///
/// The bitcell itself is a subcircuit instance named "Xcell"
/// (nemsim/core/cells.h), so the storage nodes carry hierarchical paths:
/// "Xcell.ql" / "Xcell.qr" (kQl / kQr below).  Testbench nodes stay top
/// level: "bl", "blb", "wl".  Sources: "Vdd", "Vwl"; plus "Vbl"/"Vblb"
/// when the bitlines are driven (read/SNM benches) — the standby bench
/// leaves them floating behind capacitors.
struct SramCell {
  /// Hierarchical storage-node paths of the "Xcell" instance.
  static constexpr const char* kQl = "Xcell.ql";
  static constexpr const char* kQr = "Xcell.qr";

  SramConfig config;
  std::unique_ptr<spice::Circuit> circuit;
  spice::Circuit& ckt() { return *circuit; }
};

/// Options controlling how the testbench dresses the cell.
struct SramBenchMode {
  bool drive_bitlines = true;   ///< Vbl/Vblb sources present
  double wordline = 0.0;        ///< DC wordline voltage
};

SramCell build_sram_cell(const SramConfig& config,
                         const SramBenchMode& mode = {});

/// One butterfly lobe: the VTC of one half-cell under read stress
/// (wordline high, both bitlines precharged to Vdd).
struct ButterflyCurves {
  std::vector<double> v_in;    ///< swept storage-node voltage
  std::vector<double> v_fwd;   ///< QL -> QR transfer
  std::vector<double> v_rev;   ///< QR -> QL transfer
  double snm = 0.0;            ///< largest embedded square (V)
};

/// Sweeps both half-cell transfer curves in the read condition and
/// extracts the static noise margin (largest square between the lobes,
/// Seevinck's rotated-axis method).
ButterflyCurves measure_butterfly(const SramConfig& config,
                                  std::size_t points = 121);

/// Read latency: wordline pulse with bitlines precharged to Vdd through
/// their lumped capacitance; time from WL 50 % rising until the read
/// bitline has discharged by `sense_margin` volts.  An optional RunReport
/// sink collects the transient diagnostics of the underlying run.
double measure_read_latency(const SramConfig& config,
                            double sense_margin = 0.1,
                            spice::RunReport* report = nullptr);

/// Standby leakage power: wordline low, bitlines floating (precharge
/// gated off in standby), cell holding its value.  Total static power
/// from all supplies.
double measure_standby_leakage(const SramConfig& config);

/// Standby leakage with bitlines held at Vdd (precharge kept on); the
/// alternative convention, reported by the bench for comparison.
double measure_standby_leakage_precharged(const SramConfig& config);

/// Seevinck SNM extraction from two transfer curves sampled on the same
/// input grid.  Exposed for tests.
double extract_snm(const std::vector<double>& v_in,
                   const std::vector<double>& v_fwd,
                   const std::vector<double>& v_rev);

/// Write operation result.
struct WriteResult {
  bool flipped = false;     ///< the cell took the new value
  double latency = 0.0;     ///< WL 50 % to storage-node crossing (s)
};

/// Writes the opposite of the stored value through the access transistors
/// (bitlines driven full-rail, wordline pulsed for `wl_pulse` seconds)
/// and reports whether the cell flipped and how fast.  Hybrid cells must
/// also move their beams, which shows up as write latency.
WriteResult measure_write(const SramConfig& config, double wl_pulse = 1e-9);

/// Minimum wordline pulse width that reliably flips the cell (bisection
/// between lo and hi); a writability margin metric.
double measure_min_write_pulse(const SramConfig& config, double lo = 2e-11,
                               double hi = 2e-9);

/// Column study (paper Section 5.1): reading one cell on a bitline shared
/// with `idle_cells` other cells.  The idle cells' OFF access transistors
/// leak INTO the discharging bitline (they all store the opposite value),
/// fighting the read and stretching the latency - worse the leakier the
/// access devices.  Returns the read latency of the accessed cell.
///
/// This variant lumps the idle cells into one wide leaker device (cheap,
/// scales to any depth); build_sram_column below elaborates the real
/// structural column instead.
double measure_column_read_latency(const SramConfig& config,
                                   std::size_t idle_cells,
                                   double sense_margin = 0.1);

// ---------------------------------------------------------------- column

/// A full structural bitline column: `n_cells` bitcell instances sharing
/// bl/blb, with only the active cell's wordline driven.
struct SramColumnConfig {
  SramConfig cell;                 ///< architecture + sizing of every cell
  std::size_t n_cells = 64;
  std::size_t active_cell = 0;     ///< the accessed row
  /// Worst case for reads (and the paper's Section 5.1 setup): every idle
  /// cell stores the value whose OFF access transistor leaks the
  /// *reference* bitline down toward its storage node.
  bool idle_store_opposite = true;

  /// Stored value of cell `i` under this configuration.
  bool cell_stores_one(std::size_t i) const {
    if (i == active_cell) return cell.stored_one;
    return idle_store_opposite ? !cell.stored_one : cell.stored_one;
  }
};

/// A built column.  Cells are subcircuit instances "Xcell0".."Xcell<n-1>"
/// of the sram_bitcell_cell definition, so storage nodes are
/// "Xcell<i>.ql" / "Xcell<i>.qr".  Top-level nodes: "bl", "blb", "wl"
/// (active row only), "vdd"; sources "Vdd", "Vwl"; bitline capacitors
/// "Cbl"/"Cblb".
struct SramColumn {
  SramColumnConfig config;
  std::unique_ptr<spice::Circuit> circuit;

  spice::Circuit& ckt() { return *circuit; }
  std::string cell_name(std::size_t i) const {
    return "Xcell" + std::to_string(i);
  }
  std::string cell_node(std::size_t i, const std::string& local) const {
    return cell_name(i) + "." + local;
  }
};

SramColumn build_sram_column(const SramColumnConfig& config);

/// Nodesets every cell's storage pair to its configured stored value so
/// the bistable column op lands on the intended state.
void nodeset_column_state(spice::MnaSystem& system, const SramColumn& col);

/// Read latency of the active cell measured on the real elaborated column
/// (every idle cell present as its own bitcell instance), rather than the
/// lumped leaker of measure_column_read_latency.  The 64-cell default
/// builds a few hundred devices; the MNA system crosses the sparse
/// fast-path threshold, so this is also the canonical "hierarchy at
/// scale" exercise (see bench/ablation_sram_column.cpp).
double measure_column_read_latency_structural(
    const SramColumnConfig& config, double sense_margin = 0.1,
    spice::RunReport* report = nullptr);

}  // namespace nemsim::core
