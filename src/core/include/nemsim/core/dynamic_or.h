// Wide fan-in dynamic (domino) OR gates: the conventional CMOS gate with
// a feedback keeper (paper Figure 8 (a)) and the proposed hybrid
// NEMS-CMOS gate with NEMFETs in series below the NMOS pull-down devices
// (Figure 8 (b)), plus the testbench metrics the paper reports: worst-case
// delay, switching power, leakage power and noise margin.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nemsim/core/gates.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"

namespace nemsim::core {

/// Configuration of one dynamic OR gate instance.
struct DynamicOrConfig {
  int fanin = 8;
  int fanout = 1;              ///< inverter loads on the output
  bool hybrid = false;         ///< true: NEMS in series in the pull-down
  double vdd = 1.2;

  double input_nmos_width = 0.3e-6;   ///< per-input pull-down NMOS
  double nems_width = 0.9e-6;         ///< series NEMFET (hybrid only)
  double precharge_width = 0.6e-6;    ///< clocked precharge PMOS
  /// CMOS keeper sizing.  The paper's premise (Figure 9 / ref [24]): the
  /// keeper must be sized against the *worst-case pull-down leakage*,
  /// which grows with fan-in, so by default the CMOS keeper scales as
  /// keeper_per_input * fanin.  Set autosize_keeper = false to use
  /// keeper_width directly.
  bool autosize_keeper = true;
  double keeper_per_input = 0.0825e-6;
  double keeper_min_width = 0.12e-6;
  /// The keeper cannot outgrow a single pull-down path or the gate can no
  /// longer evaluate; clamp its autosized width.
  double keeper_max_width = 0.8e-6;
  double keeper_width = 0.15e-6;      ///< used when autosize_keeper = false
  /// With the near-zero-leakage NEMS pull-down the keeper can always be
  /// minimum size; the hybrid builder uses this.
  double hybrid_keeper_width = 0.12e-6;
  InverterSizes output_inverter{0.4e-6, 0.2e-6, 1e-7};
  /// NEMS technology card for the series devices (ablation studies swap
  /// in modified mechanics here).
  devices::NemsParams nems_card = tech::nems_90nm();

  // Testbench timing: one precharge phase then one evaluate phase.
  double t_precharge = 1e-9;   ///< clk low (precharge) duration
  double t_evaluate = 1e-9;    ///< clk high (evaluate) duration
  double t_edge = 20e-12;      ///< clk and input edge times
  double input_skew = 100e-12; ///< input rises this long after clk

  /// Newton solver knobs for the measurement transients/ops (notably the
  /// quiescent-device bypass and Jacobian-reuse accelerators, both off by
  /// default so results stay bitwise-stable).
  spice::NewtonOptions newton{};
};

/// A built gate plus its testbench sources.
///
/// Node names: "clk", "dyn" (dynamic node), "out" (after the inverter),
/// inputs "in0".."in<k>".  Sources: "Vdd", "Vclk", "Vin0".."Vin<k>".
/// Each pull-down leg is a subcircuit instance "Xleg<i>"
/// (nemsim/core/cells.h), so its devices carry hierarchical names:
/// "Xleg<i>.MPD" and, in the hybrid gate, "Xleg<i>.XPD" with internal
/// node "Xleg<i>.mid".  The output inverter is instance "XINVout".
struct DynamicOrGate {
  DynamicOrConfig config;
  std::unique_ptr<spice::Circuit> circuit;

  spice::Circuit& ckt() { return *circuit; }
  std::string input_source(int i) const {
    return "Vin" + std::to_string(i);
  }
  std::string input_node(int i) const { return "in" + std::to_string(i); }
};

/// Builds the gate and its testbench skeleton (all inputs parked at 0 V
/// DC; reconfigure individual input sources per experiment).
DynamicOrGate build_dynamic_or(const DynamicOrConfig& config);

/// Measured gate metrics (paper Figures 9-12).
struct DynamicOrMetrics {
  double worst_case_delay = 0.0;   ///< input-50% to out-50%, one-hot input
  double switching_energy = 0.0;   ///< supply energy over one full cycle
  double switching_power = 0.0;    ///< energy / cycle time
  double leakage_power = 0.0;      ///< evaluate phase, all inputs low
};

/// Worst-case delay: a single asserted input (the weakest pull-down path)
/// rising `input_skew` after the evaluate edge; measured from input 50 %
/// crossing to output 50 % crossing.
double measure_worst_case_delay(DynamicOrGate& gate);

/// Switching power: supply energy over one precharge+evaluate cycle with
/// one input switching, divided by the cycle time.
double measure_switching_power(DynamicOrGate& gate);

/// Leakage power: static dissipation in the evaluate phase with all
/// inputs low (keeper holding the dynamic node against PDN leakage).
/// An optional RunReport sink collects the op-phase Newton diagnostics.
double measure_leakage_power(DynamicOrGate& gate,
                             spice::RunReport* report = nullptr);

/// All three in one (shares the transient run between delay and power).
/// An optional RunReport sink collects the transient + op diagnostics of
/// the underlying runs (histogram, LTE rejects, stepping stages).
DynamicOrMetrics measure_dynamic_or(DynamicOrGate& gate,
                                    spice::RunReport* report = nullptr);

/// Noise margin: the largest DC noise voltage that can sit on ALL inputs
/// during the evaluate phase without the output rising (bisection over
/// transient runs; resolution `v_resolution`).
double measure_noise_margin(DynamicOrGate& gate,
                            double v_resolution = 5e-3);

/// Sizes the CMOS keeper to just meet `nm_target` volts of noise margin:
/// the smallest width in [w_lo, w_hi] whose measured noise margin
/// reaches the target (noise margin grows monotonically with keeper
/// width).  Throws ConvergenceError when even w_hi cannot meet it.
double size_keeper_for_noise_margin(const DynamicOrConfig& base,
                                    double nm_target, double w_lo = 0.12e-6,
                                    double w_hi = 0.8e-6,
                                    double w_resolution = 0.02e-6);

}  // namespace nemsim::core
