// Sleep transistors (power gating), paper Section 6 / Figures 16-17:
// NEMS vs CMOS switches compared on ON-resistance and OFF-state leakage
// across device area, plus a gated-block study (virtual-rail droop,
// delay degradation, wake-up) as the fine/coarse-grain illustration.
#pragma once

#include <vector>

#include "nemsim/spice/circuit.h"
#include "nemsim/spice/newton.h"

namespace nemsim::core {

enum class SleepDeviceType { kCmos, kNems };
enum class SleepStyle { kFooter, kHeader };

/// One point of the Figure 17 sweep.
struct SleepPoint {
  double area_norm = 0.0;  ///< device area / area of a W/L=5 90 nm CMOS
  double ron = 0.0;        ///< ON resistance (Ohm), measured at small Vds
  double ioff = 0.0;       ///< OFF current at Vds = Vdd (A)
};

struct SleepSweepConfig {
  SleepDeviceType device = SleepDeviceType::kCmos;
  SleepStyle style = SleepStyle::kFooter;
  double vdd = 1.2;
  double vds_on = 0.05;    ///< small drain bias for the Ron measurement
};

/// Measures Ron and Ioff of a sleep switch at each normalized area in
/// `areas` (area scales the width; L fixed at the 90 nm channel length).
/// Reference area (norm = 1) is a W/L = 5 CMOS device as in Figure 17.
std::vector<SleepPoint> sweep_sleep_transistor(
    const SleepSweepConfig& config, const std::vector<double>& areas);

/// Gated logic block study: an inverter chain behind a footer sleep
/// switch.  Reports active-mode delay (vs an ungated chain), virtual
/// ground droop, sleep-mode leakage, and wake-up time.
struct GatedBlockResult {
  double delay_gated = 0.0;     ///< chain propagation delay with the switch on
  double delay_ungated = 0.0;   ///< reference delay without power gating
  double vgnd_droop = 0.0;      ///< peak virtual-ground bounce while switching
  double sleep_leakage = 0.0;   ///< supply power with the switch off (W)
  double wakeup_time = 0.0;     ///< virtual ground settling after wake (s)
};

struct GatedBlockConfig {
  SleepDeviceType device = SleepDeviceType::kCmos;
  double sleep_width = 1e-6;   ///< footer device width
  int stages = 4;              ///< inverter chain length
  double vdd = 1.2;
  /// Newton knobs for the underlying transients (bypass / Jacobian reuse
  /// accelerators, both off by default).
  spice::NewtonOptions newton{};
};

GatedBlockResult measure_gated_block(const GatedBlockConfig& config);

/// Sleep-transistor granularity (paper Figure 16 (c)/(d)).
enum class SleepGranularity {
  kFineGrain,    ///< one sleep device per gate
  kCoarseGrain,  ///< one shared sleep device for the whole block
};

struct GranularityConfig {
  SleepDeviceType device = SleepDeviceType::kCmos;
  int stages = 4;                 ///< inverter chain length
  double total_sleep_width = 2e-6;///< silicon spent on sleep devices, total
  double vdd = 1.2;
  /// Newton knobs for the underlying transients (bypass / Jacobian reuse
  /// accelerators, both off by default).
  spice::NewtonOptions newton{};
};

struct GranularityResult {
  double delay = 0.0;          ///< chain delay in active mode
  double sleep_leakage = 0.0;  ///< static power with switches off (W)
  double worst_droop = 0.0;    ///< worst virtual-ground bounce (V)
};

/// Compares fine vs coarse granularity at EQUAL total sleep-device area:
/// fine-grain splits `total_sleep_width` across per-gate footers (each
/// sees only its own gate's current but gets a narrow device), coarse
/// shares one wide footer (current averaging across gates, the usual
/// area argument for coarse-grain gating).
GranularityResult measure_granularity(SleepGranularity granularity,
                                      const GranularityConfig& config);

}  // namespace nemsim::core
