// Standard-cell-style building blocks shared by the experiment circuits:
// CMOS inverters, fan-out loads, and static gates.
#pragma once

#include <string>
#include <vector>

#include "nemsim/spice/circuit.h"
#include "nemsim/tech/cards.h"

namespace nemsim::core {

/// Sizing of one CMOS inverter (beta-matched default for 90 nm).
struct InverterSizes {
  double wp = 0.4e-6;
  double wn = 0.2e-6;
  double l = 1e-7;
};

/// Adds a CMOS inverter to `ckt` as an instance of the library's
/// "inverter" cell (nemsim/core/cells.h).  The instance is named
/// "X<prefix>" ('.' in the prefix maps to '_'), so the devices are
/// "X<prefix>.MP" and "X<prefix>.MN"; the supply rail is `vdd`, the low
/// rail ground.
void add_inverter(spice::Circuit& ckt, const std::string& prefix,
                  spice::NodeId in, spice::NodeId out, spice::NodeId vdd,
                  const InverterSizes& sizes = {});

/// Same, with an explicit low rail (power-gated blocks hang their
/// inverters on a virtual ground).
void add_inverter(spice::Circuit& ckt, const std::string& prefix,
                  spice::NodeId in, spice::NodeId out, spice::NodeId vdd,
                  spice::NodeId vss, const InverterSizes& sizes = {});

/// Adds `fanout` "inverter_load" cell instances whose inputs all hang on
/// `node` (their outputs stay internal to each cell).  This is how the
/// paper loads the dynamic gate outputs: a fan-out of k = k receiver
/// gates.
void add_fanout_load(spice::Circuit& ckt, const std::string& prefix,
                     spice::NodeId node, spice::NodeId vdd, int fanout,
                     const InverterSizes& sizes = {});

/// Input capacitance of one inverter with these sizes (gate caps only);
/// the paper's "C_L = k" axis is k such input capacitances.
double inverter_input_capacitance(const InverterSizes& sizes = {});

/// Adds a 2-input static NAND gate ("<prefix>.PA/.PB/.NA/.NB"):
/// parallel PMOS pull-ups, series NMOS pull-down stack.
void add_nand2(spice::Circuit& ckt, const std::string& prefix,
               spice::NodeId a, spice::NodeId b, spice::NodeId out,
               spice::NodeId vdd, const InverterSizes& sizes = {});

/// Adds a 2-input static NOR gate: series PMOS stack, parallel NMOS.
void add_nor2(spice::Circuit& ckt, const std::string& prefix,
              spice::NodeId a, spice::NodeId b, spice::NodeId out,
              spice::NodeId vdd, const InverterSizes& sizes = {});

/// Adds a chain of `stages` inverter-cell instances ("X<prefix>_S<k>")
/// from `in`; returns the node ids of every stage output (fresh internal
/// nodes).  Used by the power gating experiments as a representative
/// logic block.
std::vector<spice::NodeId> add_inverter_chain(spice::Circuit& ckt,
                                              const std::string& prefix,
                                              spice::NodeId in,
                                              spice::NodeId vdd,
                                              spice::NodeId low_rail,
                                              int stages,
                                              const InverterSizes& sizes = {});

}  // namespace nemsim::core
