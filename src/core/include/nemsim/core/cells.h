// Parameterized cell library: the subcircuit definitions the experiment
// builders (gates, dynamic_or, sram, power_gating) instantiate instead
// of hand-stamping devices.  Each factory returns a spice::Subcircuit
// whose builder reads its sizing from subcircuit parameters, so one
// definition serves every instance and exported netlists carry proper
// .subckt blocks and X cards.
//
// Local device names follow the first-letter dispatch convention of the
// netlist parser ("MP"/"MN" for MOSFETs, "XPD"/"XNL" for NEMFETs) so an
// exported .subckt body re-parses to the same cell.
#pragma once

#include "nemsim/core/sram.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/spice/subcircuit.h"
#include "nemsim/tech/cards.h"

namespace nemsim::core {

/// CMOS inverter "inverter": ports (in, out, vdd, vss); params WP, WN, L.
spice::Subcircuit inverter_cell();

/// Load inverter "inverter_load": an inverter whose output stays internal
/// to the cell — the shape fan-out loads want (only the gate capacitance
/// matters, the output deliberately drives nothing).  Ports
/// (in, vdd, vss); params WP, WN, L.
spice::Subcircuit load_inverter_cell();

/// One pull-down leg of a domino gate (paper Figure 8): the CMOS leg
/// "domino_leg_cmos" is a single NMOS from dyn to ground; the hybrid leg
/// "domino_leg_hybrid" stacks that NMOS over a series NEMFET ("XPD").
/// Ports (dyn, in); params W_NMOS, L and (hybrid) W_NEMS.  The NEMS
/// technology card is baked into the definition by the factory.
spice::Subcircuit domino_leg_cell(
    bool hybrid, const devices::NemsParams& nems_card = tech::nems_90nm());

/// The 6T bitcell of paper Figure 13 in each architecture flavour
/// ("sram6t_conv", "sram6t_dualvt", "sram6t_asym", "sram6t_hybrid",
/// "sram6t_hybrid_pu").  Ports (bl, blb, wl, vdd); storage nodes ql/qr
/// stay internal, so an instance "Xcell" exposes them as "Xcell.ql" /
/// "Xcell.qr".  Params: WA (access), WPD / WPU (CMOS core), WNPD / WNPU
/// (NEMS core), L, and STORED_ONE (nonzero seeds the beam states of the
/// hybrid flavours for a stored one; the DC nodesets are the caller's
/// job since a subcircuit cannot reach the MnaSystem).
spice::Subcircuit sram_bitcell_cell(SramKind kind);

/// Power-gating sleep switch (paper Section 6): footer (N-type, source at
/// ground) or header (P-type, source at Vdd), in CMOS ("sleep_footer_cmos"
/// / "sleep_header_cmos") or NEMS ("sleep_footer_nems" /
/// "sleep_header_nems") flavours.  Ports (d, g, s); params W and (CMOS) L.
spice::Subcircuit sleep_switch_cell(bool footer, bool nems);

}  // namespace nemsim::core
