// Power/energy/delay metrics shared by the experiment harnesses,
// including the paper's Equation 1 power-delay product.
#pragma once

#include <string>

#include "nemsim/spice/circuit.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/waveform.h"

namespace nemsim::core {

/// Equation 1 of the paper:
///   P.D. = ((1 - alpha) * P_L + alpha * P_S) * D
/// where alpha is the activity factor, P_L leakage power, P_S switching
/// power and D the worst-case delay.
double power_delay_product(double alpha, double leakage_power,
                           double switching_power, double delay);

/// Total static power delivered by all voltage sources at an operating
/// point: sum over sources of V * I(delivered).  This is the circuit's
/// total dissipation in that state.
double static_power(const spice::Circuit& circuit, const spice::OpResult& op);

/// Energy delivered by the named voltage source over [t0, t1]:
///   E = integral of v_src(t) * i_delivered(t) dt.
/// For a DC supply this is Vdd * charge drawn.
double source_energy(const spice::Circuit& circuit,
                     const spice::Waveform& wave, const std::string& source,
                     double t0, double t1);

/// Average power from the named source over [t0, t1].
double source_average_power(const spice::Circuit& circuit,
                            const spice::Waveform& wave,
                            const std::string& source, double t0, double t1);

}  // namespace nemsim::core
