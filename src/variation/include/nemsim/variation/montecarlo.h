// Process variation: per-device threshold-voltage sampling and a
// Monte-Carlo driver (paper Figure 9 studies sigma_Vth/mu_Vth of 3/6/9 %).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nemsim/spice/circuit.h"
#include "nemsim/spice/compile.h"
#include "nemsim/spice/diagnostics.h"
#include "nemsim/spice/parambank.h"
#include "nemsim/util/rng.h"
#include "nemsim/util/stats.h"

namespace nemsim::variation {

/// Applies independent N(0, sigma) threshold shifts to every MOSFET and
/// NEMFET in the circuit.  `sigma_fraction` is sigma_Vth/mu_Vth; each
/// device's own nominal threshold magnitude sets its mu.
void apply_vth_variation(spice::Circuit& circuit, double sigma_fraction,
                         Rng& rng);

/// Restores all threshold shifts to zero.
void clear_vth_variation(spice::Circuit& circuit);

/// The same variation draw as apply_vth_variation, expressed as a bank
/// overlay patch instead of device mutation.  Draws from `rng` in the
/// identical order (all MOSFETs, then all NEMFETs, in registration
/// order), and each entry targets the device's vth-shift bank slot —
/// so applying the patch to a CompiledCircuit produces bitwise the same
/// parameters as apply_vth_variation on the same circuit with the same
/// RNG stream.
spice::ParamPatch vth_variation_patch(const spice::Circuit& circuit,
                                      double sigma_fraction, Rng& rng);

struct MonteCarloOptions {
  std::size_t trials = 100;
  std::uint64_t seed = 20070604;  ///< DAC 2007 started June 4th
  double sigma_fraction = 0.06;
  /// Trials whose metric evaluation throws are recorded as failures
  /// rather than aborting the run when true.
  bool tolerate_failures = true;
  /// Worker threads for monte_carlo_parallel (0 = all hardware threads,
  /// 1 = inline).  Ignored by the sequential monte_carlo, which mutates
  /// a shared circuit and cannot be parallelized.
  std::size_t num_threads = 0;
  /// Optional diagnostics sink: trial counters plus a note per failed
  /// trial carrying the structured convergence payload (worst residual
  /// rows) instead of just a log line.  Filled after the workers join in
  /// the parallel driver.
  spice::RunReport* report = nullptr;
  /// Opt-in per-trial failure dump.  Each failed trial writes a bundle
  /// tagged "<tag>_trial<N>" with the *varied* circuit's netlist, so the
  /// exact failing sample can be replayed offline.
  spice::ForensicsOptions forensics;
};

struct MonteCarloResult {
  RunningStats stats;
  std::vector<double> samples;
  std::size_t failures = 0;

  /// Mean + `k` standard deviations — the usual worst-case corner proxy.
  /// With fewer than two successful trials the spread is undefined
  /// (RunningStats::stddev is NaN there); `k` of 0 still returns the
  /// plain mean so a single-trial smoke run keeps its nominal value.
  double mean_plus_sigmas(double k) const {
    if (k == 0.0) return stats.mean();
    return stats.mean() + k * stats.stddev();
  }
  double worst() const { return stats.max(); }
};

/// Runs `metric` under `trials` independent variation draws on `circuit`.
///
/// For each trial: threshold shifts are sampled (deterministically from
/// seed + trial index), `metric(circuit)` is evaluated, and shifts are
/// cleared again.  The metric typically rebuilds an MnaSystem and runs an
/// analysis.
MonteCarloResult monte_carlo(
    spice::Circuit& circuit,
    const std::function<double(spice::Circuit&)>& metric,
    const MonteCarloOptions& options);

/// Parallel Monte-Carlo over independent per-trial circuits.
///
/// `make_circuit` builds a fresh Circuit for every trial, so trials can
/// run on options.num_threads workers without sharing any state.  Each
/// trial draws its threshold shifts from the same per-trial child RNG
/// stream as the sequential driver (seed + trial index), and samples are
/// collected in trial order — the result is identical to the sequential
/// monte_carlo on an equivalent circuit, for any thread count.
MonteCarloResult monte_carlo_parallel(
    const std::function<spice::Circuit()>& make_circuit,
    const std::function<double(spice::Circuit&)>& metric,
    const MonteCarloOptions& options);

/// Batched Monte-Carlo over one compiled circuit: compile once, then per
/// trial install the variation draw as a bank overlay and evaluate
/// `metric(compiled)`.  No circuit or MnaSystem is rebuilt between
/// trials — the per-trial cost is the patch write plus the solves the
/// metric runs.  Trials draw from the same per-trial child RNG streams
/// as monte_carlo (seed + trial index) and samples are folded in trial
/// order, so with a metric equivalent to the rebuild-per-trial one the
/// result is bitwise identical to the sequential driver.  The overlay is
/// cleared before returning.
MonteCarloResult monte_carlo_batch(
    spice::CompiledCircuit& compiled,
    const std::function<double(spice::CompiledCircuit&)>& metric,
    const MonteCarloOptions& options);

}  // namespace nemsim::variation
