#include "nemsim/variation/montecarlo.h"

#include <cmath>

#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/util/error.h"
#include "nemsim/util/logging.h"

namespace nemsim::variation {

void apply_vth_variation(spice::Circuit& circuit, double sigma_fraction,
                         Rng& rng) {
  require(sigma_fraction >= 0.0, "apply_vth_variation: sigma must be >= 0");
  circuit.for_each<devices::Mosfet>([&](devices::Mosfet& m) {
    const double sigma = sigma_fraction * std::abs(m.params().vth0);
    m.set_vth_shift(rng.normal(0.0, sigma));
  });
  circuit.for_each<devices::Nemfet>([&](devices::Nemfet& x) {
    const double sigma = sigma_fraction * std::abs(x.params().vth_ch);
    x.set_vth_shift(rng.normal(0.0, sigma));
  });
}

void clear_vth_variation(spice::Circuit& circuit) {
  circuit.for_each<devices::Mosfet>(
      [](devices::Mosfet& m) { m.set_vth_shift(0.0); });
  circuit.for_each<devices::Nemfet>(
      [](devices::Nemfet& x) { x.set_vth_shift(0.0); });
}

MonteCarloResult monte_carlo(
    spice::Circuit& circuit,
    const std::function<double(spice::Circuit&)>& metric,
    const MonteCarloOptions& options) {
  require(options.trials > 0, "monte_carlo: need at least one trial");
  MonteCarloResult result;
  result.samples.reserve(options.trials);
  Rng root(options.seed);
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    Rng stream = root.child(trial);
    apply_vth_variation(circuit, options.sigma_fraction, stream);
    try {
      const double value = metric(circuit);
      result.stats.add(value);
      result.samples.push_back(value);
    } catch (const Error& e) {
      if (!options.tolerate_failures) {
        clear_vth_variation(circuit);
        throw;
      }
      ++result.failures;
      log_warn("monte_carlo: trial " + std::to_string(trial) +
               " failed: " + e.what());
    }
    clear_vth_variation(circuit);
  }
  require(result.stats.count() > 0, "monte_carlo: all trials failed");
  return result;
}

}  // namespace nemsim::variation
