#include "nemsim/variation/montecarlo.h"

#include <cmath>
#include <string>

#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/spice/lint.h"
#include "nemsim/util/error.h"
#include "nemsim/util/logging.h"
#include "nemsim/util/parallel.h"

namespace nemsim::variation {

namespace {

/// Builds the failure note / forensics bundle for one failed trial.  The
/// circuit still carries the trial's threshold shifts here, so the dumped
/// netlist reproduces the exact failing sample.
std::string record_trial_failure(const MonteCarloOptions& options,
                                 spice::Circuit& circuit, std::size_t trial,
                                 const Error& e) {
  const auto* conv = dynamic_cast<const ConvergenceError*>(&e);
  const ConvergenceDiagnostics* diag =
      conv != nullptr ? conv->diagnostics() : nullptr;
  std::string note =
      "trial " + std::to_string(trial) + " failed: " + e.what();
  if (diag != nullptr) note += "\n" + diag->describe();
  if (options.forensics.enabled) {
    spice::ForensicsOptions trial_forensics = options.forensics;
    trial_forensics.tag += "_trial" + std::to_string(trial);
    // Lint the varied circuit so the dump can name a structural cause
    // (a variation-shifted device tripping a parameter check, say).
    const lint::LintReport lint_report = lint::lint_circuit(circuit);
    spice::write_failure_forensics(trial_forensics, circuit,
                                   /*wave=*/nullptr, e.what(), diag,
                                   &lint_report);
  }
  return note;
}

}  // namespace

void apply_vth_variation(spice::Circuit& circuit, double sigma_fraction,
                         Rng& rng) {
  require(sigma_fraction >= 0.0, "apply_vth_variation: sigma must be >= 0");
  circuit.for_each<devices::Mosfet>([&](devices::Mosfet& m) {
    const double sigma = sigma_fraction * std::abs(m.params().vth0);
    m.set_vth_shift(rng.normal(0.0, sigma));
  });
  circuit.for_each<devices::Nemfet>([&](devices::Nemfet& x) {
    const double sigma = sigma_fraction * std::abs(x.params().vth_ch);
    x.set_vth_shift(rng.normal(0.0, sigma));
  });
}

void clear_vth_variation(spice::Circuit& circuit) {
  circuit.for_each<devices::Mosfet>(
      [](devices::Mosfet& m) { m.set_vth_shift(0.0); });
  circuit.for_each<devices::Nemfet>(
      [](devices::Nemfet& x) { x.set_vth_shift(0.0); });
}

spice::ParamPatch vth_variation_patch(const spice::Circuit& circuit,
                                      double sigma_fraction, Rng& rng) {
  require(sigma_fraction >= 0.0, "vth_variation_patch: sigma must be >= 0");
  spice::ParamPatch patch;
  // Draw order must match apply_vth_variation exactly so the same RNG
  // stream yields the same per-device shifts.
  circuit.for_each<devices::Mosfet>([&](const devices::Mosfet& m) {
    const double sigma = sigma_fraction * std::abs(m.params().vth0);
    patch.push_back({m.vth_shift_slot(), rng.normal(0.0, sigma)});
  });
  circuit.for_each<devices::Nemfet>([&](const devices::Nemfet& x) {
    const double sigma = sigma_fraction * std::abs(x.params().vth_ch);
    patch.push_back({x.vth_shift_slot(), rng.normal(0.0, sigma)});
  });
  return patch;
}

MonteCarloResult monte_carlo(
    spice::Circuit& circuit,
    const std::function<double(spice::Circuit&)>& metric,
    const MonteCarloOptions& options) {
  require(options.trials > 0, "monte_carlo: need at least one trial");
  spice::RunReport* report = options.report;
  if (report && report->analysis.empty()) report->analysis = "monte_carlo";
  MonteCarloResult result;
  result.samples.reserve(options.trials);
  Rng root(options.seed);
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    Rng stream = root.child(trial);
    apply_vth_variation(circuit, options.sigma_fraction, stream);
    if (report) ++report->points;
    try {
      const double value = metric(circuit);
      result.stats.add(value);
      result.samples.push_back(value);
    } catch (const Error& e) {
      // Capture the structured failure (and the varied netlist, when
      // forensics is on) before the shifts are cleared below.
      const std::string note =
          record_trial_failure(options, circuit, trial, e);
      if (report) {
        ++report->failed_points;
        report->add_note("monte_carlo: " + note);
      }
      if (!options.tolerate_failures) {
        clear_vth_variation(circuit);
        throw;
      }
      ++result.failures;
      log_warn("monte_carlo: " + note);
    }
    clear_vth_variation(circuit);
  }
  require(result.stats.count() > 0, "monte_carlo: all trials failed");
  if (report && result.stats.count() < 2) {
    report->add_note(
        "monte_carlo: fewer than two successful trials — spread "
        "(variance/stddev) is undefined and reported as NaN");
  }
  return result;
}

MonteCarloResult monte_carlo_batch(
    spice::CompiledCircuit& compiled,
    const std::function<double(spice::CompiledCircuit&)>& metric,
    const MonteCarloOptions& options) {
  require(options.trials > 0, "monte_carlo_batch: need at least one trial");
  spice::RunReport* report = options.report;
  if (report && report->analysis.empty()) report->analysis = "monte_carlo";
  MonteCarloResult result;
  result.samples.reserve(options.trials);
  Rng root(options.seed);
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    Rng stream = root.child(trial);
    compiled.set_overlay(
        vth_variation_patch(compiled.circuit(), options.sigma_fraction,
                            stream));
    if (report) ++report->points;
    try {
      const double value = metric(compiled);
      result.stats.add(value);
      result.samples.push_back(value);
    } catch (const Error& e) {
      const std::string note =
          record_trial_failure(options, compiled.circuit(), trial, e);
      if (report) {
        ++report->failed_points;
        report->add_note("monte_carlo_batch: " + note);
      }
      if (!options.tolerate_failures) {
        compiled.clear_overlay();
        throw;
      }
      ++result.failures;
      log_warn("monte_carlo_batch: " + note);
    }
  }
  compiled.clear_overlay();
  require(result.stats.count() > 0, "monte_carlo_batch: all trials failed");
  if (report && result.stats.count() < 2) {
    report->add_note(
        "monte_carlo_batch: fewer than two successful trials — spread "
        "(variance/stddev) is undefined and reported as NaN");
  }
  return result;
}

namespace {

struct TrialOutcome {
  double value = 0.0;
  bool ok = false;
  std::string error;
};

}  // namespace

MonteCarloResult monte_carlo_parallel(
    const std::function<spice::Circuit()>& make_circuit,
    const std::function<double(spice::Circuit&)>& metric,
    const MonteCarloOptions& options) {
  require(options.trials > 0, "monte_carlo_parallel: need at least one trial");
  spice::RunReport* report = options.report;
  if (report && report->analysis.empty()) report->analysis = "monte_carlo";
  const Rng root(options.seed);

  std::vector<TrialOutcome> outcomes = util::parallel_map(
      options.trials,
      [&](std::size_t trial) {
        spice::Circuit circuit = make_circuit();
        Rng stream = root.child(trial);
        apply_vth_variation(circuit, options.sigma_fraction, stream);
        TrialOutcome outcome;
        try {
          outcome.value = metric(circuit);
          outcome.ok = true;
        } catch (const Error& e) {
          // Forensics (distinct per-trial file tags) is written here in
          // the worker, while the varied circuit is still alive; the
          // shared report is only touched after the join below.
          outcome.error = record_trial_failure(options, circuit, trial, e);
        }
        return outcome;
      },
      options.num_threads);

  MonteCarloResult result;
  result.samples.reserve(options.trials);
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    const TrialOutcome& outcome = outcomes[trial];
    if (report) ++report->points;
    if (outcome.ok) {
      result.stats.add(outcome.value);
      result.samples.push_back(outcome.value);
    } else {
      if (report) {
        ++report->failed_points;
        report->add_note("monte_carlo_parallel: " + outcome.error);
      }
      if (!options.tolerate_failures) {
        throw ConvergenceError("monte_carlo_parallel: " + outcome.error);
      }
      ++result.failures;
      log_warn("monte_carlo_parallel: " + outcome.error);
    }
  }
  require(result.stats.count() > 0, "monte_carlo_parallel: all trials failed");
  if (report && result.stats.count() < 2) {
    report->add_note(
        "monte_carlo_parallel: fewer than two successful trials — spread "
        "(variance/stddev) is undefined and reported as NaN");
  }
  return result;
}

}  // namespace nemsim::variation
