#include "nemsim/variation/montecarlo.h"

#include <cmath>
#include <string>

#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/util/error.h"
#include "nemsim/util/logging.h"
#include "nemsim/util/parallel.h"

namespace nemsim::variation {

void apply_vth_variation(spice::Circuit& circuit, double sigma_fraction,
                         Rng& rng) {
  require(sigma_fraction >= 0.0, "apply_vth_variation: sigma must be >= 0");
  circuit.for_each<devices::Mosfet>([&](devices::Mosfet& m) {
    const double sigma = sigma_fraction * std::abs(m.params().vth0);
    m.set_vth_shift(rng.normal(0.0, sigma));
  });
  circuit.for_each<devices::Nemfet>([&](devices::Nemfet& x) {
    const double sigma = sigma_fraction * std::abs(x.params().vth_ch);
    x.set_vth_shift(rng.normal(0.0, sigma));
  });
}

void clear_vth_variation(spice::Circuit& circuit) {
  circuit.for_each<devices::Mosfet>(
      [](devices::Mosfet& m) { m.set_vth_shift(0.0); });
  circuit.for_each<devices::Nemfet>(
      [](devices::Nemfet& x) { x.set_vth_shift(0.0); });
}

MonteCarloResult monte_carlo(
    spice::Circuit& circuit,
    const std::function<double(spice::Circuit&)>& metric,
    const MonteCarloOptions& options) {
  require(options.trials > 0, "monte_carlo: need at least one trial");
  MonteCarloResult result;
  result.samples.reserve(options.trials);
  Rng root(options.seed);
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    Rng stream = root.child(trial);
    apply_vth_variation(circuit, options.sigma_fraction, stream);
    try {
      const double value = metric(circuit);
      result.stats.add(value);
      result.samples.push_back(value);
    } catch (const Error& e) {
      if (!options.tolerate_failures) {
        clear_vth_variation(circuit);
        throw;
      }
      ++result.failures;
      log_warn("monte_carlo: trial " + std::to_string(trial) +
               " failed: " + e.what());
    }
    clear_vth_variation(circuit);
  }
  require(result.stats.count() > 0, "monte_carlo: all trials failed");
  return result;
}

namespace {

struct TrialOutcome {
  double value = 0.0;
  bool ok = false;
  std::string error;
};

}  // namespace

MonteCarloResult monte_carlo_parallel(
    const std::function<spice::Circuit()>& make_circuit,
    const std::function<double(spice::Circuit&)>& metric,
    const MonteCarloOptions& options) {
  require(options.trials > 0, "monte_carlo_parallel: need at least one trial");
  const Rng root(options.seed);

  std::vector<TrialOutcome> outcomes = util::parallel_map(
      options.trials,
      [&](std::size_t trial) {
        spice::Circuit circuit = make_circuit();
        Rng stream = root.child(trial);
        apply_vth_variation(circuit, options.sigma_fraction, stream);
        TrialOutcome outcome;
        try {
          outcome.value = metric(circuit);
          outcome.ok = true;
        } catch (const Error& e) {
          outcome.error = e.what();
        }
        return outcome;
      },
      options.num_threads);

  MonteCarloResult result;
  result.samples.reserve(options.trials);
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    const TrialOutcome& outcome = outcomes[trial];
    if (outcome.ok) {
      result.stats.add(outcome.value);
      result.samples.push_back(outcome.value);
    } else {
      if (!options.tolerate_failures) {
        throw ConvergenceError("monte_carlo_parallel: trial " +
                               std::to_string(trial) +
                               " failed: " + outcome.error);
      }
      ++result.failures;
      log_warn("monte_carlo_parallel: trial " + std::to_string(trial) +
               " failed: " + outcome.error);
    }
  }
  require(result.stats.count() > 0, "monte_carlo_parallel: all trials failed");
  return result;
}

}  // namespace nemsim::variation
