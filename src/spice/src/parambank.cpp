#include "nemsim/spice/parambank.h"

#include "nemsim/util/error.h"

namespace nemsim::spice {

ParamSlot ParamBank::bind(const std::string& column, const std::string& owner,
                          double value) {
  std::size_t col = find_column(column);
  if (col == npos) {
    col = columns_.size();
    columns_.push_back(Column{column, {}, {}});
  }
  Column& c = columns_[col];
  c.values.push_back(value);
  c.owners.push_back(owner);
  return ParamSlot{static_cast<std::uint32_t>(col),
                   static_cast<std::uint32_t>(c.values.size() - 1)};
}

std::size_t ParamBank::num_params() const {
  std::size_t n = 0;
  for (const Column& c : columns_) n += c.values.size();
  return n;
}

std::size_t ParamBank::find_column(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return npos;
}

ParamBank::Snapshot ParamBank::snapshot() const {
  Snapshot snap;
  snap.reserve(columns_.size());
  for (const Column& c : columns_) snap.push_back(c.values);
  return snap;
}

void ParamBank::restore(const Snapshot& snap) {
  require(snap.size() == columns_.size(),
          "ParamBank::restore: snapshot from a different registration state");
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    require(snap[i].size() == columns_[i].values.size(),
            "ParamBank::restore: column size changed since snapshot");
    Column& col = columns_[i];
    for (std::size_t r = 0; r < col.values.size(); ++r) {
      if (col.values[r] != snap[i][r]) {
        col.values[r] = snap[i][r];
        col.dirty = true;
      }
    }
  }
}

}  // namespace nemsim::spice
