#include "nemsim/spice/waveform.h"

#include <algorithm>
#include <ostream>

#include "nemsim/util/error.h"

namespace nemsim::spice {

Waveform::Waveform(std::vector<std::string> signal_names)
    : names_(std::move(signal_names)) {
  require(!names_.empty(), "Waveform: need at least one signal");
  for (std::size_t i = 0; i < names_.size(); ++i) {
    auto [it, inserted] = index_.emplace(names_[i], i);
    (void)it;
    require(inserted, "Waveform: duplicate signal name '" + names_[i] + "'");
  }
}

void Waveform::append(double t, const linalg::Vector& values) {
  require(values.size() == names_.size(), "Waveform::append: arity mismatch");
  require(times_.empty() || t != times_.back(),
          "Waveform::append: repeated axis value");
  if (times_.size() >= 1 && t < times_.back()) ascending_ = false;
  times_.push_back(t);
  data_.insert(data_.end(), values.begin(), values.end());
}

void Waveform::reserve(std::size_t samples) {
  times_.reserve(samples);
  data_.reserve(samples * names_.size());
}

bool Waveform::has_signal(const std::string& name) const {
  return index_.count(name) != 0;
}

std::size_t Waveform::signal_index(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    throw MeasurementError("Waveform: no signal named '" + name + "'");
  }
  return it->second;
}

double Waveform::start_time() const {
  require(!times_.empty(), "Waveform: empty");
  return times_.front();
}

double Waveform::end_time() const {
  require(!times_.empty(), "Waveform: empty");
  return times_.back();
}

double Waveform::sample(std::size_t signal, std::size_t k) const {
  require(signal < names_.size() && k < times_.size(),
          "Waveform::sample: out of range");
  return data_[k * names_.size() + signal];
}

std::vector<double> Waveform::series(const std::string& name) const {
  const std::size_t s = signal_index(name);
  std::vector<double> out(times_.size());
  for (std::size_t k = 0; k < times_.size(); ++k) out[k] = sample(s, k);
  return out;
}

double Waveform::at(const std::string& name, double t) const {
  return at(signal_index(name), t);
}

double Waveform::at(std::size_t signal, double t) const {
  require(!times_.empty(), "Waveform::at: empty waveform");
  require(ascending_, "Waveform::at: axis is not ascending");
  if (t <= times_.front()) return sample(signal, 0);
  if (t >= times_.back()) return sample(signal, times_.size() - 1);
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const auto hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double frac = (t - times_[lo]) / (times_[hi] - times_[lo]);
  return sample(signal, lo) * (1.0 - frac) + sample(signal, hi) * frac;
}

void Waveform::write_csv(std::ostream& os,
                         const std::vector<std::string>& signals) const {
  std::vector<std::size_t> cols;
  if (signals.empty()) {
    cols.resize(names_.size());
    for (std::size_t i = 0; i < names_.size(); ++i) cols[i] = i;
  } else {
    for (const std::string& s : signals) cols.push_back(signal_index(s));
  }
  os << "t";
  for (std::size_t c : cols) os << "," << names_[c];
  os << "\n";
  for (std::size_t k = 0; k < times_.size(); ++k) {
    os << times_[k];
    for (std::size_t c : cols) os << "," << sample(c, k);
    os << "\n";
  }
}

}  // namespace nemsim::spice
