#include "nemsim/spice/circuit.h"

namespace nemsim::spice {

Circuit::Circuit() : param_bank_(std::make_unique<ParamBank>()) {
  node_names_.push_back("0");
  node_index_.emplace("0", 0);
  node_internal_.push_back(false);
}

void Circuit::require_mutable(const char* what) const {
  if (frozen_) {
    throw NetlistError(std::string(what) +
                       ": circuit structure is frozen (a CompiledCircuit owns "
                       "it); parameter writes are allowed, structure is not");
  }
}

NodeId Circuit::node(const std::string& name) {
  require(!name.empty(), "Circuit::node: empty node name");
  if (!node_index_.count(name)) require_mutable("Circuit::node");
  auto [it, inserted] = node_index_.try_emplace(name, node_names_.size());
  if (inserted) {
    node_names_.push_back(name);
    node_internal_.push_back(false);
  }
  return NodeId{it->second};
}

NodeId Circuit::internal_node(const std::string& hint) {
  std::string name;
  do {
    name = "_" + hint + "#" + std::to_string(internal_counter_++);
  } while (node_index_.count(name));
  NodeId id = node(name);
  node_internal_[id.index] = true;
  return id;
}

bool Circuit::node_is_internal(NodeId node) const {
  require(node.index < node_internal_.size(),
          "node_is_internal: node out of range");
  return node_internal_[node.index];
}

NodeId Circuit::find_node(const std::string& name) const {
  auto it = node_index_.find(name);
  if (it == node_index_.end()) {
    throw NetlistError("unknown node '" + name + "'");
  }
  return NodeId{it->second};
}

bool Circuit::has_node(const std::string& name) const {
  return node_index_.count(name) != 0;
}

const std::string& Circuit::node_name(NodeId node) const {
  require(node.index < node_names_.size(), "node_name: node out of range");
  return node_names_[node.index];
}

void Circuit::require_unique_device_name(const std::string& name) const {
  if (name.empty()) throw NetlistError("device name must be non-empty");
  if (device_index_.count(name)) {
    throw NetlistError("duplicate device name '" + name + "'");
  }
}

void Circuit::register_device(std::unique_ptr<Device> device) {
  require_mutable("Circuit::add");
  // Diff the bank around bind_params: any column that appeared or grew
  // was bound by this device.
  std::vector<std::size_t> sizes(param_bank_->num_columns());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    sizes[i] = param_bank_->column_values(i).size();
  }
  device->bind_params(*param_bank_);
  std::vector<std::uint32_t> bound;
  for (std::size_t i = 0; i < param_bank_->num_columns(); ++i) {
    const std::size_t before = i < sizes.size() ? sizes[i] : 0;
    if (param_bank_->column_values(i).size() > before) {
      bound.push_back(static_cast<std::uint32_t>(i));
    }
  }
  device_bound_columns_.push_back(std::move(bound));
  device_index_.emplace(device->name(), devices_.size());
  devices_.push_back(std::move(device));
  device_owner_.push_back(open_instance_);
}

void Circuit::notify_params_changed() {
  // Latch the dirty set, then clear before the callbacks run: a resync
  // that writes bank values (none do today) would re-dirty its columns
  // for the next sweep instead of being silently swallowed.
  std::vector<bool> dirty(param_bank_->num_columns());
  bool any = false;
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    dirty[i] = param_bank_->column_dirty(i);
    any = any || dirty[i];
  }
  param_bank_->clear_dirty();
  if (!any) return;
  for (std::size_t di = 0; di < devices_.size(); ++di) {
    for (std::uint32_t col : device_bound_columns_[di]) {
      if (dirty[col]) {
        devices_[di]->on_params_changed();
        break;
      }
    }
  }
}

Device& Circuit::find_device(const std::string& name) {
  auto it = device_index_.find(name);
  if (it == device_index_.end()) {
    throw NetlistError("unknown device '" + name + "'");
  }
  return *devices_[it->second];
}

const Device& Circuit::find_device(const std::string& name) const {
  auto it = device_index_.find(name);
  if (it == device_index_.end()) {
    throw NetlistError("unknown device '" + name + "'");
  }
  return *devices_[it->second];
}

}  // namespace nemsim::spice
