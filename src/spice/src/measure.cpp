#include "nemsim/spice/measure.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "nemsim/util/error.h"

namespace nemsim::spice {

namespace {

struct Window {
  double t0;
  double t1;
};

Window resolve_window(const Waveform& wave, double t_from, double t_to) {
  require(!wave.empty(), "measure: empty waveform");
  require(wave.ascending_axis(), "measure: waveform axis must be ascending");
  Window w;
  w.t0 = t_from;
  w.t1 = t_to > 0.0 ? t_to : wave.end_time();
  require(w.t1 >= w.t0, "measure: window end before start");
  return w;
}

/// Window that the point-valued measurements (extrema, RMS) evaluate
/// over: resolve_window clamped to the sampled span, rejected when the
/// requested window lies entirely outside it.  Shared with the
/// interpolated-endpoint semantics documented in measure.h.
Window resolve_value_window(const Waveform& wave, double t_from, double t_to,
                            const char* who) {
  Window w = resolve_window(wave, t_from, t_to);
  require(w.t1 >= wave.start_time() && w.t0 <= wave.end_time(),
          std::string(who) + ": window does not intersect the waveform");
  w.t0 = std::max(w.t0, wave.start_time());
  w.t1 = std::min(w.t1, wave.end_time());
  return w;
}

bool edge_matches(Edge edge, double before, double after) {
  switch (edge) {
    case Edge::kRising: return after > before;
    case Edge::kFalling: return after < before;
    case Edge::kEither: return true;
  }
  return false;
}

/// Scans for crossings; returns time of the `occurrence`-th or NaN.
double find_crossing(const Waveform& wave, const std::string& signal,
                     double level, Edge edge, std::size_t occurrence,
                     double t_from, double t_to) {
  require(occurrence >= 1, "measure: occurrence is 1-based");
  const Window w = resolve_window(wave, t_from, t_to);
  const std::size_t s = wave.signal_index(signal);
  const auto& ts = wave.times();
  std::size_t found = 0;
  for (std::size_t k = 1; k < ts.size(); ++k) {
    if (ts[k] < w.t0 || ts[k - 1] > w.t1) continue;
    const double v0 = wave.sample(s, k - 1);
    const double v1 = wave.sample(s, k);
    // A crossing belongs to the half-open interval (ts[k-1], ts[k]]: a
    // sample landing exactly on `level` is counted as the crossing of the
    // interval that *reaches* it, never again by the interval that
    // *leaves* it (v0 == level), which used to double-count.
    const bool crosses = (v0 - level) * (v1 - level) < 0.0 ||
                         (v1 == level && v0 != level);
    if (!crosses || !edge_matches(edge, v0, v1)) continue;
    const double frac = (level - v0) / (v1 - v0);
    const double t = ts[k - 1] + frac * (ts[k] - ts[k - 1]);
    if (t < w.t0 || t > w.t1) continue;
    if (++found == occurrence) return t;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace

double cross_time(const Waveform& wave, const std::string& signal,
                  double level, Edge edge, std::size_t occurrence,
                  double t_from, double t_to) {
  const double t =
      find_crossing(wave, signal, level, edge, occurrence, t_from, t_to);
  if (std::isnan(t)) {
    throw MeasurementError("cross_time: signal '" + signal +
                           "' does not cross " + std::to_string(level));
  }
  return t;
}

bool has_crossing(const Waveform& wave, const std::string& signal,
                  double level, Edge edge, std::size_t occurrence,
                  double t_from, double t_to) {
  return !std::isnan(
      find_crossing(wave, signal, level, edge, occurrence, t_from, t_to));
}

double propagation_delay(const Waveform& wave, const std::string& from_signal,
                         double from_level, Edge from_edge,
                         const std::string& to_signal, double to_level,
                         Edge to_edge, double t_from) {
  const double t_launch =
      cross_time(wave, from_signal, from_level, from_edge, 1, t_from);
  const double t_arrive =
      cross_time(wave, to_signal, to_level, to_edge, 1, t_launch);
  return t_arrive - t_launch;
}

double integrate(const Waveform& wave, const std::string& signal, double t0,
                 double t1) {
  const Window w = resolve_window(wave, t0, t1);
  const std::size_t s = wave.signal_index(signal);
  const auto& ts = wave.times();
  double acc = 0.0;
  for (std::size_t k = 1; k < ts.size(); ++k) {
    const double a = std::max(ts[k - 1], w.t0);
    const double b = std::min(ts[k], w.t1);
    if (b <= a) continue;
    const double va = wave.at(s, a);
    const double vb = wave.at(s, b);
    acc += 0.5 * (va + vb) * (b - a);
  }
  return acc;
}

double average(const Waveform& wave, const std::string& signal, double t0,
               double t1) {
  const Window w = resolve_window(wave, t0, t1);
  require(w.t1 > w.t0, "average: zero-length window");
  return integrate(wave, signal, w.t0, w.t1) / (w.t1 - w.t0);
}

double max_value(const Waveform& wave, const std::string& signal, double t0,
                 double t1) {
  const Window w = resolve_value_window(wave, t0, t1, "max_value");
  const std::size_t s = wave.signal_index(signal);
  const auto& ts = wave.times();
  // Interpolated window endpoints first: an extremum attained exactly at
  // a clamped boundary between two samples must not be missed (the same
  // endpoint semantics integrate() uses).
  double best = std::max(wave.at(s, w.t0), wave.at(s, w.t1));
  for (std::size_t k = 0; k < ts.size(); ++k) {
    if (ts[k] < w.t0 || ts[k] > w.t1) continue;
    best = std::max(best, wave.sample(s, k));
  }
  return best;
}

double min_value(const Waveform& wave, const std::string& signal, double t0,
                 double t1) {
  const Window w = resolve_value_window(wave, t0, t1, "min_value");
  const std::size_t s = wave.signal_index(signal);
  const auto& ts = wave.times();
  double best = std::min(wave.at(s, w.t0), wave.at(s, w.t1));
  for (std::size_t k = 0; k < ts.size(); ++k) {
    if (ts[k] < w.t0 || ts[k] > w.t1) continue;
    best = std::min(best, wave.sample(s, k));
  }
  return best;
}

double rms(const Waveform& wave, const std::string& signal, double t0,
           double t1) {
  const Window w = resolve_value_window(wave, t0, t1, "rms");
  require(w.t1 > w.t0, "rms: zero-length window");
  const std::size_t s = wave.signal_index(signal);
  const auto& ts = wave.times();
  double acc = 0.0;
  for (std::size_t k = 1; k < ts.size(); ++k) {
    const double a = std::max(ts[k - 1], w.t0);
    const double b = std::min(ts[k], w.t1);
    if (b <= a) continue;
    const double va = wave.at(s, a);
    const double vb = wave.at(s, b);
    // v is linear inside a sample interval, so v^2 is quadratic and its
    // integral over [a, b] is exactly (b-a)(va^2 + va*vb + vb^2)/3.
    acc += (b - a) * (va * va + va * vb + vb * vb) / 3.0;
  }
  return std::sqrt(acc / (w.t1 - w.t0));
}

double final_value(const Waveform& wave, const std::string& signal) {
  require(!wave.empty(), "final_value: empty waveform");
  return wave.sample(wave.signal_index(signal), wave.num_samples() - 1);
}

}  // namespace nemsim::spice
