#include "nemsim/spice/netlist_export.h"

#include <cctype>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <functional>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <vector>

#include "nemsim/spice/subcircuit.h"
#include "nemsim/util/error.h"

namespace nemsim::spice {

namespace {

/// Removes a hierarchical scope prefix ("Xcol.") from a name, turning a
/// flattened global name back into the local name seen inside the scope.
std::string strip_prefix(const std::string& name, const std::string& prefix) {
  if (!prefix.empty() && name.rfind(prefix, 0) == 0) {
    return name.substr(prefix.size());
  }
  return name;
}

void emit_params(std::ostream& os, const SubcktParams& params) {
  for (const auto& [key, value] : params) os << " " << key << "=" << value;
}

/// One `X<inst> <nodes...> <subckt> [K=V...]` card, localized to `prefix`.
void emit_instance_card(std::ostream& os, const Circuit& ckt,
                        const SubcircuitInstanceRecord& rec,
                        const std::string& prefix) {
  os << strip_prefix(rec.name, prefix);
  for (NodeId n : rec.ports) {
    os << " " << strip_prefix(ckt.node_name(n), prefix);
  }
  os << " " << rec.subckt;
  emit_params(os, rec.params);
  os << "\n";
}

/// Emits the device lines and child X cards of one scope, in elaboration
/// order.  `scope_rec` is the index of the owning instance record (-1 for
/// the top level) and [first, last) its device range; devices inside a
/// child instance's range are covered by that child's X card.
void emit_scope_body(std::ostream& os, const Circuit& ckt,
                     std::ptrdiff_t scope_rec, std::size_t first,
                     std::size_t last, const std::string& prefix) {
  std::vector<const SubcircuitInstanceRecord*> children;
  for (const auto& rec : ckt.instances()) {
    if (rec.parent == scope_rec) children.push_back(&rec);
  }
  // instances() is in elaboration order, so children are already sorted
  // by first_device.
  auto namer = [&](NodeId n) {
    return strip_prefix(ckt.node_name(n), prefix);
  };
  std::size_t i = first;
  std::size_t ci = 0;
  while (i < last || ci < children.size()) {
    if (ci < children.size() && children[ci]->first_device <= i) {
      emit_instance_card(os, ckt, *children[ci], prefix);
      const std::size_t past =
          children[ci]->first_device + children[ci]->num_devices;
      if (past > i) i = past;
      ++ci;
    } else if (i < last) {
      os << strip_prefix(ckt.device(i).netlist_line(namer), prefix) << "\n";
      ++i;
    } else {
      break;
    }
  }
}

/// Elaborates `def` at `overrides` (over its defaults) into a scratch
/// circuit and returns the localized body lines.  Propagates whatever
/// the builder throws.
std::vector<std::string> render_body_lines(const Subcircuit& def,
                                           const SubcktParams& overrides) {
  Circuit scratch;
  std::vector<NodeId> ports;
  ports.reserve(def.num_ports());
  for (const std::string& p : def.ports()) ports.push_back(scratch.node(p));
  scratch.instantiate(def, "Xbody", ports, overrides);
  std::ostringstream os;
  emit_scope_body(os, scratch, /*scope_rec=*/0,
                  scratch.instances()[0].first_device,
                  scratch.instances()[0].first_device +
                      scratch.instances()[0].num_devices,
                  "Xbody.");
  std::vector<std::string> lines;
  std::string line;
  std::istringstream is(os.str());
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

std::string to_upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

/// Splits a card token into prefix and numeric tail: "W=4e-07" ->
/// {"W=", 4e-7}, "1000.0" -> {"", 1000.0}.  Returns false when the tail
/// is not a complete number.
bool split_numeric_token(const std::string& tok, std::string& prefix,
                         double& value) {
  const std::size_t eq = tok.find('=');
  const std::size_t start = eq == std::string::npos ? 0 : eq + 1;
  prefix = tok.substr(0, start);
  const std::string tail = tok.substr(start);
  if (tail.empty()) return false;
  char* end = nullptr;
  value = std::strtod(tail.c_str(), &end);
  return end == tail.c_str() + tail.size();
}

/// Equal up to the exporter's 6-significant-digit number formatting.
bool approx(double formatted, double exact) {
  if (exact == 0.0) return formatted == 0.0;
  return std::abs(formatted - exact) <=
         1e-5 * std::max(std::abs(formatted), std::abs(exact));
}

/// Attempts a `{KEY}`-parameterized body for a builder-defined cell by
/// two-point probing: the body is rendered at defaults and once more
/// per parameter with that parameter perturbed; a token that tracks the
/// parameter's value verbatim in both renders becomes its placeholder.
/// Returns empty (caller falls back to the expanded-at-defaults body)
/// whenever any parameter's effect is not a plain token substitution:
/// the builder branches on it (line/token structure changes), derives
/// other values from it, shares a token with another parameter, or
/// rejects the perturbed value outright.
std::vector<std::string> parameterized_body_lines(const Subcircuit& def) {
  std::vector<std::string> base;
  try {
    base = render_body_lines(def, {});
  } catch (const Error&) {
    return {};
  }
  std::vector<std::vector<std::string>> tokens;
  tokens.reserve(base.size());
  for (const std::string& line : base) tokens.push_back(split_tokens(line));

  // placeholder_key[i][j]: parameter owning token j of line i, if any.
  std::vector<std::vector<std::string>> placeholder_key(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    placeholder_key[i].resize(tokens[i].size());
  }

  for (const auto& [key, value] : def.defaults()) {
    const double perturbed = value == 0.0 ? 1.0 : 2.0 * value;
    std::vector<std::string> probe;
    try {
      probe = render_body_lines(def, {{key, perturbed}});
    } catch (const Error&) {
      return {};
    }
    if (probe.size() != base.size()) return {};
    bool used = false;
    for (std::size_t i = 0; i < base.size(); ++i) {
      const std::vector<std::string> ptok = split_tokens(probe[i]);
      if (ptok.size() != tokens[i].size()) return {};
      for (std::size_t j = 0; j < ptok.size(); ++j) {
        if (ptok[j] == tokens[i][j]) continue;
        std::string base_prefix, probe_prefix;
        double base_value = 0.0, probe_value = 0.0;
        if (!split_numeric_token(tokens[i][j], base_prefix, base_value) ||
            !split_numeric_token(ptok[j], probe_prefix, probe_value)) {
          return {};
        }
        if (base_prefix != probe_prefix || !approx(base_value, value) ||
            !approx(probe_value, perturbed)) {
          return {};
        }
        if (!placeholder_key[i][j].empty()) return {};  // shared token
        placeholder_key[i][j] = key;
        used = true;
      }
    }
    // A parameter the builder never reads is fine (it stays on the
    // defaults line without a placeholder); `used` exists only to make
    // that explicit.
    (void)used;
  }

  std::vector<std::string> lines;
  lines.reserve(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    std::string line;
    for (std::size_t j = 0; j < tokens[i].size(); ++j) {
      if (j > 0) line += " ";
      if (!placeholder_key[i][j].empty()) {
        std::string prefix;
        double ignored = 0.0;
        split_numeric_token(tokens[i][j], prefix, ignored);
        // The parser uppercases parameter keys from the defaults line,
        // so the placeholder must be uppercase to resolve.
        line += prefix + "{" + to_upper(placeholder_key[i][j]) + "}";
      } else {
        line += tokens[i][j];
      }
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

/// Renders a definition body.  Deck-defined subcircuits carry their
/// source text verbatim (so "{KEY}" placeholders survive the round
/// trip).  Builder-defined ones get placeholders synthesized by the
/// two-point probe above, so non-default instance parameters survive an
/// export -> parse round trip too; bodies the probe cannot express fall
/// back to expansion at default parameters (the DESIGN.md 7d caveat
/// then still applies to that definition only).
void emit_def_body(std::ostream& os, const Subcircuit& def) {
  if (!def.body_text().empty()) {
    for (const std::string& line : def.body_text()) os << line << "\n";
    return;
  }
  std::vector<std::string> lines = parameterized_body_lines(def);
  if (lines.empty()) lines = render_body_lines(def, {});
  for (const std::string& line : lines) os << line << "\n";
}

/// Orders definition names so that every definition precedes its users
/// (leaf cells first).  Dependency evidence comes from the circuit's
/// instance records; definitions never elaborated keep name order.
std::vector<std::string> def_emission_order(const Circuit& ckt) {
  // uses[A] = set of definitions A instantiates.
  std::map<std::string, std::set<std::string>> uses;
  for (const auto& [name, def] : ckt.subckt_defs()) uses[name];
  for (const auto& rec : ckt.instances()) {
    if (rec.parent >= 0) {
      uses[ckt.instances()[static_cast<std::size_t>(rec.parent)].subckt]
          .insert(rec.subckt);
    }
  }
  std::vector<std::string> order;
  std::set<std::string> done;
  // Depth-first post-order; `uses` is name-sorted, so ties are stable.
  std::function<void(const std::string&)> visit =
      [&](const std::string& name) {
        if (done.count(name)) return;
        done.insert(name);
        for (const std::string& child : uses[name]) visit(child);
        order.push_back(name);
      };
  for (const auto& [name, children] : uses) visit(name);
  return order;
}

}  // namespace

void export_netlist(const Circuit& circuit, std::ostream& os,
                    const std::string& title) {
  os << "* " << title << "\n";
  for (const std::string& name : def_emission_order(circuit)) {
    const Subcircuit& def = *circuit.subckt_defs().at(name);
    os << ".subckt " << def.name();
    for (const std::string& p : def.ports()) os << " " << p;
    emit_params(os, def.defaults());
    os << "\n";
    emit_def_body(os, def);
    os << ".ends " << def.name() << "\n";
  }
  emit_scope_body(os, circuit, /*scope_rec=*/-1, 0, circuit.num_devices(),
                  /*prefix=*/"");
  os << ".end\n";
}

std::string netlist_string(const Circuit& circuit, const std::string& title) {
  std::ostringstream os;
  export_netlist(circuit, os, title);
  return os.str();
}

}  // namespace nemsim::spice
