#include "nemsim/spice/netlist_export.h"

#include <ostream>
#include <sstream>

namespace nemsim::spice {

void export_netlist(const Circuit& circuit, std::ostream& os,
                    const std::string& title) {
  os << "* " << title << "\n";
  auto namer = [&](NodeId n) { return circuit.node_name(n); };
  for (std::size_t i = 0; i < circuit.num_devices(); ++i) {
    os << circuit.device(i).netlist_line(namer) << "\n";
  }
  os << ".end\n";
}

std::string netlist_string(const Circuit& circuit, const std::string& title) {
  std::ostringstream os;
  export_netlist(circuit, os, title);
  return os.str();
}

}  // namespace nemsim::spice
