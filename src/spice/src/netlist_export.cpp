#include "nemsim/spice/netlist_export.h"

#include <cstddef>
#include <functional>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <vector>

#include "nemsim/spice/subcircuit.h"

namespace nemsim::spice {

namespace {

/// Removes a hierarchical scope prefix ("Xcol.") from a name, turning a
/// flattened global name back into the local name seen inside the scope.
std::string strip_prefix(const std::string& name, const std::string& prefix) {
  if (!prefix.empty() && name.rfind(prefix, 0) == 0) {
    return name.substr(prefix.size());
  }
  return name;
}

void emit_params(std::ostream& os, const SubcktParams& params) {
  for (const auto& [key, value] : params) os << " " << key << "=" << value;
}

/// One `X<inst> <nodes...> <subckt> [K=V...]` card, localized to `prefix`.
void emit_instance_card(std::ostream& os, const Circuit& ckt,
                        const SubcircuitInstanceRecord& rec,
                        const std::string& prefix) {
  os << strip_prefix(rec.name, prefix);
  for (NodeId n : rec.ports) {
    os << " " << strip_prefix(ckt.node_name(n), prefix);
  }
  os << " " << rec.subckt;
  emit_params(os, rec.params);
  os << "\n";
}

/// Emits the device lines and child X cards of one scope, in elaboration
/// order.  `scope_rec` is the index of the owning instance record (-1 for
/// the top level) and [first, last) its device range; devices inside a
/// child instance's range are covered by that child's X card.
void emit_scope_body(std::ostream& os, const Circuit& ckt,
                     std::ptrdiff_t scope_rec, std::size_t first,
                     std::size_t last, const std::string& prefix) {
  std::vector<const SubcircuitInstanceRecord*> children;
  for (const auto& rec : ckt.instances()) {
    if (rec.parent == scope_rec) children.push_back(&rec);
  }
  // instances() is in elaboration order, so children are already sorted
  // by first_device.
  auto namer = [&](NodeId n) {
    return strip_prefix(ckt.node_name(n), prefix);
  };
  std::size_t i = first;
  std::size_t ci = 0;
  while (i < last || ci < children.size()) {
    if (ci < children.size() && children[ci]->first_device <= i) {
      emit_instance_card(os, ckt, *children[ci], prefix);
      const std::size_t past =
          children[ci]->first_device + children[ci]->num_devices;
      if (past > i) i = past;
      ++ci;
    } else if (i < last) {
      os << strip_prefix(ckt.device(i).netlist_line(namer), prefix) << "\n";
      ++i;
    } else {
      break;
    }
  }
}

/// Renders a definition body.  Deck-defined subcircuits carry their
/// source text verbatim (so "{KEY}" placeholders survive the round
/// trip); builder-defined ones are expanded at default parameters into a
/// scratch circuit and localized.
void emit_def_body(std::ostream& os, const Subcircuit& def) {
  if (!def.body_text().empty()) {
    for (const std::string& line : def.body_text()) os << line << "\n";
    return;
  }
  Circuit scratch;
  std::vector<NodeId> ports;
  ports.reserve(def.num_ports());
  for (const std::string& p : def.ports()) ports.push_back(scratch.node(p));
  scratch.instantiate(def, "Xbody", ports);
  emit_scope_body(os, scratch, /*scope_rec=*/0,
                  scratch.instances()[0].first_device,
                  scratch.instances()[0].first_device +
                      scratch.instances()[0].num_devices,
                  "Xbody.");
}

/// Orders definition names so that every definition precedes its users
/// (leaf cells first).  Dependency evidence comes from the circuit's
/// instance records; definitions never elaborated keep name order.
std::vector<std::string> def_emission_order(const Circuit& ckt) {
  // uses[A] = set of definitions A instantiates.
  std::map<std::string, std::set<std::string>> uses;
  for (const auto& [name, def] : ckt.subckt_defs()) uses[name];
  for (const auto& rec : ckt.instances()) {
    if (rec.parent >= 0) {
      uses[ckt.instances()[static_cast<std::size_t>(rec.parent)].subckt]
          .insert(rec.subckt);
    }
  }
  std::vector<std::string> order;
  std::set<std::string> done;
  // Depth-first post-order; `uses` is name-sorted, so ties are stable.
  std::function<void(const std::string&)> visit =
      [&](const std::string& name) {
        if (done.count(name)) return;
        done.insert(name);
        for (const std::string& child : uses[name]) visit(child);
        order.push_back(name);
      };
  for (const auto& [name, children] : uses) visit(name);
  return order;
}

}  // namespace

void export_netlist(const Circuit& circuit, std::ostream& os,
                    const std::string& title) {
  os << "* " << title << "\n";
  for (const std::string& name : def_emission_order(circuit)) {
    const Subcircuit& def = *circuit.subckt_defs().at(name);
    os << ".subckt " << def.name();
    for (const std::string& p : def.ports()) os << " " << p;
    emit_params(os, def.defaults());
    os << "\n";
    emit_def_body(os, def);
    os << ".ends " << def.name() << "\n";
  }
  emit_scope_body(os, circuit, /*scope_rec=*/-1, 0, circuit.num_devices(),
                  /*prefix=*/"");
  os << ".end\n";
}

std::string netlist_string(const Circuit& circuit, const std::string& title) {
  std::ostringstream os;
  export_netlist(circuit, os, title);
  return os.str();
}

}  // namespace nemsim::spice
