#include "nemsim/spice/transient.h"

#include <optional>

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "nemsim/spice/analyze.h"
#include "nemsim/spice/op.h"
#include "nemsim/util/error.h"
#include "nemsim/util/logging.h"

namespace nemsim::spice {

namespace {

/// Quadratic extrapolation of each unknown through the last three accepted
/// points, evaluated at `t`.  Used both as the Newton predictor and as the
/// reference for the LTE estimate.
linalg::Vector extrapolate(const std::vector<double>& ts,
                           const std::vector<linalg::Vector>& xs, double t) {
  const std::size_t m = ts.size();
  if (m == 1) return xs.back();
  if (m == 2) {
    const double w = (t - ts[0]) / (ts[1] - ts[0]);
    linalg::Vector out = xs[1];
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = xs[0][i] + w * (xs[1][i] - xs[0][i]);
    }
    return out;
  }
  // Lagrange through the last three points.
  const double t0 = ts[m - 3], t1 = ts[m - 2], t2 = ts[m - 1];
  const double l0 = (t - t1) * (t - t2) / ((t0 - t1) * (t0 - t2));
  const double l1 = (t - t0) * (t - t2) / ((t1 - t0) * (t1 - t2));
  const double l2 = (t - t0) * (t - t1) / ((t2 - t0) * (t2 - t1));
  linalg::Vector out(xs.back().size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = l0 * xs[m - 3][i] + l1 * xs[m - 2][i] + l2 * xs[m - 1][i];
  }
  return out;
}

/// Snaps a step-size ask to the quarter-octave ladder anchored at
/// `dt_ref`: the largest rung not above the ask.  Rungs are derived from
/// the anchor and an integer exponent each call -- never by compounding
/// -- so a revisited rung reproduces the identical double, which is what
/// lets device bypass caches (exact-dt match) survive step retuning.
double quantize_dt(double dt_desired, double dt_ref) {
  const int rung =
      static_cast<int>(std::floor(std::log2(dt_desired / dt_ref) * 4.0));
  return dt_ref * std::pow(2.0, 0.25 * rung);
}

}  // namespace

Waveform transient(MnaSystem& system, const TransientOptions& options) {
  require(options.tstop > 0.0, "transient: tstop must be positive");
  const double dt_max =
      options.dt_max > 0.0 ? options.dt_max : options.tstop / 50.0;
  require(options.dt_initial > 0.0 && options.dt_initial <= dt_max,
          "transient: dt_initial must be in (0, dt_max]");

  system.reset_devices();

  RunReport* report = options.report;
  if (report && report->analysis.empty()) report->analysis = "transient";

  // Lint once at analysis entry; strict mode throws before any solve.
  const lint::LintReport lint_report =
      lint::lint_gate(system, options.lint, report);
  // Semantic gate.  The recorded signals feed the observability cones:
  // an opt-in record_signals subset means everything outside those
  // nodes' cones provably never reaches the output waveform.
  {
    analyze::AnalyzeOptions analyze_options;
    for (const std::string& s : options.record_signals) {
      if (s.size() > 3 && s.compare(0, 2, "v(") == 0 && s.back() == ')') {
        analyze_options.observed_nodes.push_back(s.substr(2, s.size() - 3));
      }
    }
    analyze::analyze_gate(system.circuit(), options.analyze, report,
                          analyze_options);
  }

  // Bias point at t = 0 (commits device state).  The report is shared so
  // the op phase lands in the same sink ("phase.op" timing, op stage
  // records); op also honors the forensics hook if the bias point fails.
  // The gate above already ran, so the embedded op must not lint again.
  OpOptions op_options;
  op_options.newton = options.newton;
  op_options.report = report;
  op_options.forensics = options.forensics;
  op_options.lint = lint::LintMode::kOff;
  OpResult op = operating_point(system, op_options);

  // Column layout: every unknown by default, or the opt-in subset from
  // record_signals (resolved up front so a typo fails before stepping).
  std::vector<std::size_t> record_cols;
  std::vector<std::string> names;
  if (options.record_signals.empty()) {
    names.reserve(system.num_unknowns());
    for (std::size_t i = 0; i < system.num_unknowns(); ++i) {
      names.push_back(system.unknown_info(i).name);
    }
  } else {
    names.reserve(options.record_signals.size());
    record_cols.reserve(options.record_signals.size());
    for (const std::string& signal : options.record_signals) {
      record_cols.push_back(system.unknown_by_name(signal).index);
      names.push_back(signal);
    }
  }
  Waveform wave(std::move(names));
  // Capacity hint: adaptive stepping settles near dt_max with bursts of
  // small steps after breakpoints.  Capped so wide circuits never
  // pre-commit more than a few MB before the first sample lands.
  {
    const double estimate = 2.0 * options.tstop / dt_max + 64.0;
    const std::size_t rows =
        static_cast<std::size_t>(std::min(estimate, 65536.0));
    const std::size_t row_cap =
        (std::size_t{1} << 20) / std::max<std::size_t>(wave.num_signals(), 1);
    wave.reserve(std::min(rows, std::max<std::size_t>(row_cap, 64)));
  }
  linalg::Vector record_row(record_cols.size());
  auto record = [&](double tt, const linalg::Vector& xx) {
    if (record_cols.empty()) {
      wave.append(tt, xx);
      return;
    }
    for (std::size_t i = 0; i < record_cols.size(); ++i) {
      record_row[i] = xx[record_cols[i]];
    }
    wave.append(tt, record_row);
  };
  record(0.0, op.raw());

  std::vector<double> breakpoints = options.precomputed_breakpoints
                                        ? *options.precomputed_breakpoints
                                        : system.breakpoints(options.tstop);
  std::size_t next_bp = 0;

  std::optional<NewtonSolver> local_newton;
  if (!options.shared_solver) local_newton.emplace(system, options.newton);
  NewtonSolver& newton =
      options.shared_solver ? *options.shared_solver : *local_newton;

  // Rolling history of the last few accepted points for the predictor.
  std::vector<double> hist_t{0.0};
  std::vector<linalg::Vector> hist_x{op.raw()};
  auto push_history = [&](double t, const linalg::Vector& x) {
    hist_t.push_back(t);
    hist_x.push_back(x);
    if (hist_t.size() > 3) {
      hist_t.erase(hist_t.begin());
      hist_x.erase(hist_x.begin());
    }
  };
  auto clear_history_to = [&](double t, const linalg::Vector& x) {
    hist_t.assign(1, t);
    hist_x.assign(1, x);
  };

  double t = 0.0;
  double dt = options.dt_initial;
  linalg::Vector x = op.raw();

  TransientStats local_stats;
  TransientStats& stats = options.stats ? *options.stats : local_stats;
  stats = TransientStats{};

  // Last inner Newton failure, preserved so the terminal "dt below
  // dt_min" error can name the unknowns that refused to converge.
  ConvergenceDiagnostics last_diag;
  bool have_last_diag = false;

  util::ScopedTimer stepping_timer(report ? &report->metrics : nullptr,
                                   "phase.stepping");

  while (t < options.tstop - 1e-18 * options.tstop) {
    // Skip breakpoints at or behind the current time.  Distinct sources
    // sharing an edge (or edges within rounding of each other) would
    // otherwise leave a zero-length step behind after landing on the
    // first of the pair, which Waveform::append rejects as a repeated
    // axis value.
    while (next_bp < breakpoints.size() &&
           breakpoints[next_bp] - t <= 1e-21 + 1e-12 * t) {
      ++next_bp;
    }

    // Clamp the step to the next breakpoint / stop time.
    double dt_eff = std::min(dt, dt_max);
    bool lands_on_bp = false;
    if (next_bp < breakpoints.size()) {
      const double gap = breakpoints[next_bp] - t;
      if (dt_eff >= gap - 1e-21) {
        dt_eff = gap;
        lands_on_bp = true;
      }
    }
    if (t + dt_eff > options.tstop) {
      dt_eff = options.tstop - t;
      lands_on_bp = false;
    }

    const double t_new = t + dt_eff;
    system.begin_step(t_new, dt_eff);

    linalg::Vector guess = extrapolate(hist_t, hist_x, t_new);
    linalg::Vector x_new;
    bool solved = false;
    // With a report attached, solve into a local stats block and fold it
    // into every sink afterwards; without one, keep the legacy direct
    // pass-through (bitwise-identical run, no extra work).
    NewtonStats step_newton;
    NewtonStats* step_stats = report ? &step_newton : options.newton_stats;
    try {
      x_new = newton.solve_plain(guess, AnalysisMode::kTransient, t_new,
                                 dt_eff, options.newton.gmin_final, 1.0,
                                 step_stats);
      solved = true;
    } catch (const ConvergenceError& e) {
      solved = false;
      if (e.has_diagnostics()) {
        last_diag = *e.diagnostics();
        have_last_diag = true;
      }
      if (report && report->step_failures.size() < RunReport::kMaxRecords) {
        report->step_failures.push_back({t_new, dt_eff, e.what()});
      }
    }
    if (report) {
      report->newton.merge(step_newton);
      if (solved) report->record_newton_iterations(step_newton.iterations);
      if (options.newton_stats) options.newton_stats->merge(step_newton);
    }

    // LTE control normally needs the full three-point history for its
    // quadratic predictor.  The bypass path additionally runs the check
    // at two history points, against the linear predictor: its
    // post-breakpoint ramp rides the quantized dt ladder, whose
    // round-up can outpace the reference path's smooth 1.5x growth, and
    // an uncontrolled oversized step right after a source edge commits
    // error into device companion state permanently.  A first-order
    // predictor is order-consistent with the backward-Euler restart, so
    // its deviation measures real local error there.  (The one-point
    // constant predictor is NOT usable: it measures total change, which
    // the relative tolerance turns into a demand for absurdly small
    // steps on signals near zero.  The single one-point step stays at
    // dt_initial, tiny and blind, exactly like the accelerator-off
    // path.)
    const bool lte_active =
        hist_t.size() == 3 || (options.newton.bypass && hist_t.size() == 2);
    if (solved && lte_active) {
      // LTE control: distance between the converged point and the
      // predictor, relative to per-unknown tolerance.
      double ratio = 0.0;
      std::size_t worst_unknown = 0;
      for (std::size_t i = 0; i < x_new.size(); ++i) {
        // Branch currents are excluded (standard SPICE practice): the
        // trapezoidal companion recurrence is marginally stable, so
        // source currents carry a non-decaying +-eps ripple that is not
        // truncation error and must not drive the step size.
        if (system.unknown_info(i).kind == UnknownKind::kBranchCurrent) {
          continue;
        }
        const double tol =
            options.lte_reltol * std::max(std::abs(x_new[i]), std::abs(x[i])) +
            10.0 * system.unknown_info(i).abstol;
        const double r = std::abs(x_new[i] - guess[i]) / tol;
        if (r > ratio) {
          ratio = r;
          worst_unknown = i;
        }
      }
      if (ratio > options.reject_factor && dt_eff > options.dt_min) {
        ++stats.lte_rejects;
        if (report) {
          ++report->lte_reject_count;
          if (report->lte_rejects.size() < RunReport::kMaxRecords) {
            report->lte_rejects.push_back(
                {t_new, dt_eff, ratio, worst_unknown,
                 system.unknown_info(worst_unknown).name});
          }
        }
        dt = std::max(options.dt_min, dt_eff * 0.25);
        // The retry must not replay device entries captured along the
        // rejected trajectory (bypass correctness guard, DESIGN.md).
        if (options.newton.bypass) {
          dt = std::max(options.dt_min, quantize_dt(dt, options.dt_initial));
          system.invalidate_bypass_caches();
        }
        continue;  // reject; device state untouched since not accepted
      }
      // Smooth step adaptation (trapezoidal is 2nd order: exponent 1/3).
      const double grow =
          ratio > 0.0 ? 0.9 * std::pow(1.0 / ratio, 1.0 / 3.0) : 2.0;
      const double dt_desired = dt_eff * std::clamp(grow, 0.25, 2.0);
      if (options.newton.bypass) {
        // Step control for the bypass path: dt enters companion
        // conductances as 1/dt, so device caches require an exact dt
        // match and a continuously retuned step defeats replay entirely.
        // Hold dt while the controller's ask stays inside its jitter
        // band.  In the quiet regime (previous solve converged in <= 2
        // iterations) the band reaches down to 0.7x -- the controller
        // limit-cycles with asks around ~0.7x (LTE ratio ~ 2, still far
        // from the reject threshold), and a genuinely too-large step
        // escalates to an LTE reject, which shrinks hard and flushes the
        // caches regardless; quiet asks outside the band snap down to
        // the quarter-octave ladder so a revisited step size is an exact
        // dt match.  Active windows follow the ask verbatim: the devices
        // that matter miss on their inputs there anyway, and pinning dt
        // (hold bands, snap-down, or nearest-rung rounding were all
        // measured) costs more Newton iterations than the extra replays
        // repay on the SRAM column workload.
        constexpr double kRung = 1.18920711500272107;  // 2^(1/4)
        const bool quiet = newton.last_converged_iters() <= 2;
        if (quiet && dt_desired >= 0.7 * dt_eff &&
            dt_desired < kRung * dt_eff) {
          dt = dt_eff;
        } else if (quiet) {
          dt = quantize_dt(dt_desired, options.dt_initial);
        } else {
          dt = dt_desired;
        }
      } else {
        dt = dt_desired;
      }
    } else if (solved) {
      // Not enough history for LTE yet: grow gently (on-ladder when
      // the bypass cares about dt repeating bit-for-bit).
      dt = options.newton.bypass
               ? quantize_dt(dt_eff * 1.5, options.dt_initial)
               : dt_eff * 1.5;
    } else {
      ++stats.newton_failures;
      if (report) ++report->newton_failures;
      const double dt_retry = dt_eff * 0.125;
      if (dt_retry < options.dt_min) {
        const std::string msg = "transient: step failed at t = " +
                                std::to_string(t) + " with dt below dt_min";
        ConvergenceError error(msg);
        if (have_last_diag) {
          ConvergenceDiagnostics diag = last_diag;
          diag.strategy = "transient-step";
          diag.time = t_new;
          diag.dt = dt_eff;
          error = ConvergenceError(msg, std::move(diag));
        }
        lint::LintReport forensic_lint;
        const lint::LintReport* lint_ptr = nullptr;
        if (options.forensics.enabled) {
          forensic_lint = options.lint == lint::LintMode::kOff
                              ? lint::lint_system(system)
                              : lint_report;
          lint_ptr = &forensic_lint;
        }
        write_failure_forensics(options.forensics, system.circuit(), &wave,
                                msg, error.diagnostics(), lint_ptr);
        throw error;
      }
      dt = dt_retry;
      // Same guard as the LTE reject: retry from clean caches.
      if (options.newton.bypass) system.invalidate_bypass_caches();
      continue;
    }
    dt = std::min(dt, dt_max);
    dt = std::max(dt, options.dt_min);

    ++stats.accepted_steps;
    stats.min_dt = stats.min_dt == 0.0 ? dt_eff : std::min(stats.min_dt, dt_eff);
    stats.max_dt = std::max(stats.max_dt, dt_eff);
    if (report) {
      ++report->accepted_steps;
      report->min_dt =
          report->min_dt == 0.0 ? dt_eff : std::min(report->min_dt, dt_eff);
      report->max_dt = std::max(report->max_dt, dt_eff);
    }

    system.accept(x_new, AnalysisMode::kTransient, t_new, dt_eff);
    record(t_new, x_new);
    t = t_new;
    x = x_new;

    if (lands_on_bp) {
      ++next_bp;
      system.notify_discontinuity();
      clear_history_to(t, x);
      // Full re-ramp from dt_initial on BOTH paths.  An earlier bypass
      // variant resumed at dt/8 of the equilibrated step right after the
      // edge — the history reset disarms the quadratic LTE check for two
      // steps, so after a quiescent stretch that was a blind
      // multi-picosecond backward-Euler step into the edge whose error
      // entered device companion state permanently (caught by
      // nemsim::check, tran/bypass contract, as a ~30 mV trajectory
      // displacement through a 24 V/ns edge; a later linear-predictor-
      // checked variant still under-resolved post-edge curvature, since
      // the BE overshoot and the tangent extrapolation err together).
      // The ramp's cost on the bypass path is carried by the cache
      // instead: device entries are NOT invalidated here — they
      // self-validate per lookup (exact dt, inputs, committed-state
      // signature; the companions' BE-restart flag is part of the
      // signature, so post-edge steps cannot replay pre-edge
      // trapezoidal stamps) — and the per-device way set keeps one
      // entry per quantized dt rung, so from the second edge onward
      // quiescent devices replay straight through the re-ramp.
      dt = options.dt_initial;
    } else {
      push_history(t, x);
    }
  }
  return wave;
}

}  // namespace nemsim::spice
