#include "nemsim/spice/analyze.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "nemsim/spice/circuit.h"
#include "nemsim/spice/device.h"
#include "nemsim/spice/diagnostics.h"
#include "nemsim/util/logging.h"

namespace nemsim::spice {

// Default interval transfer: one maximum-principle neighbor claim per
// direction of every conductive topology edge.  Sound for any device
// whose conductive edges are passive — every in-tree device.  In-tree
// devices override this with an allocation-free equivalent (topology()
// builds vectors, and the fixpoint loop calls the hook every sweep).
void Device::interval_transfer(const analyze::IntervalSet& nodes,
                               std::vector<analyze::NodeClaim>& out) const {
  const DeviceTopology topo = topology();
  for (const DeviceTopology::Edge& e : topo.edges) {
    if (e.kind != DeviceTopology::EdgeKind::kConductive) continue;
    const NodeId a = topo.terminals[e.a].node;
    const NodeId b = topo.terminals[e.b].node;
    out.push_back({a, nodes.at(b), analyze::NodeClaim::Kind::kNeighbor});
    out.push_back({b, nodes.at(a), analyze::NodeClaim::Kind::kNeighbor});
  }
}

}  // namespace nemsim::spice

namespace nemsim::analyze {

using spice::Circuit;
using spice::DeviceTopology;
using spice::NodeId;

std::string Interval::to_string() const {
  std::ostringstream os;
  os << "[";
  if (std::isfinite(lo)) {
    os << lo;
  } else {
    os << "-inf";
  }
  os << ", ";
  if (std::isfinite(hi)) {
    os << hi;
  } else {
    os << "+inf";
  }
  os << "]";
  return os.str();
}

namespace {

using lint::LintFinding;
using lint::LintReport;
using lint::LintSeverity;

/// Findings accumulator: caps the stored vector while the severity
/// counters keep counting, then orders errors > warnings > hints
/// (stable, so rule emission order breaks ties) — the same contract
/// lint's builder keeps.
class ReportBuilder {
 public:
  explicit ReportBuilder(std::size_t cap) : cap_(cap) {}

  void add(LintFinding finding) {
    switch (finding.severity) {
      case LintSeverity::kError: ++report_.errors; break;
      case LintSeverity::kWarning: ++report_.warnings; break;
      case LintSeverity::kHint: ++report_.hints; break;
    }
    if (report_.findings.size() < cap_) {
      report_.findings.push_back(std::move(finding));
    }
  }

  LintReport take() {
    std::stable_sort(report_.findings.begin(), report_.findings.end(),
                     [](const LintFinding& a, const LintFinding& b) {
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     });
    return std::move(report_);
  }

 private:
  LintReport report_;
  std::size_t cap_;
};

struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

std::string engineering(double v) {
  std::ostringstream os;
  os.precision(3);
  os << v;
  return os.str();
}

/// The DC interval fixpoint.  Jacobi-style: every sweep gathers all
/// device claims against the intervals as they stood at sweep start,
/// then applies them — relation claims by direct intersection, neighbor
/// claims by intersecting the union (hull) of every neighbor claim at a
/// node, and only at nodes the maximum principle covers (no incident
/// voltage- or current-defined edge; those inject current past the
/// passive edges, so such a node can legitimately sit outside its
/// neighbors' hull).  The lattice starts at top and only narrows, so
/// the sweep cap bounds work without costing soundness.
void run_interval_fixpoint(const Circuit& circuit,
                           const std::vector<DeviceTopology>& topos,
                           const AnalyzeOptions& options,
                           AnalyzeReport& rpt) {
  const std::size_t nn = circuit.num_nodes();

  std::vector<char> relaxable(nn, 1);
  relaxable[0] = 0;  // ground is pinned to [0, 0]
  for (const DeviceTopology& topo : topos) {
    for (const DeviceTopology::Edge& e : topo.edges) {
      if (e.kind == DeviceTopology::EdgeKind::kVoltage ||
          e.kind == DeviceTopology::EdgeKind::kCurrent) {
        relaxable[topo.terminals[e.a].node.index] = 0;
        relaxable[topo.terminals[e.b].node.index] = 0;
      }
    }
  }

  const std::size_t cap =
      options.max_sweeps != 0 ? options.max_sweeps : nn + 8;
  std::vector<NodeClaim> claims;
  std::vector<Interval> hull(nn);
  std::vector<char> has_neighbor(nn, 0);
  for (std::size_t sweep = 0; sweep < cap; ++sweep) {
    claims.clear();
    for (std::size_t d = 0; d < circuit.num_devices(); ++d) {
      circuit.device(d).interval_transfer(rpt.intervals, claims);
    }

    std::fill(has_neighbor.begin(), has_neighbor.end(), 0);
    for (const NodeClaim& c : claims) {
      if (c.kind != NodeClaim::Kind::kNeighbor) continue;
      const std::size_t i = c.node.index;
      hull[i] = has_neighbor[i] ? hull[i].hull(c.bound) : c.bound;
      has_neighbor[i] = 1;
    }

    bool changed = false;
    for (std::size_t i = 1; i < nn; ++i) {
      if (relaxable[i] && has_neighbor[i]) {
        changed |= rpt.intervals.tighten(NodeId{i}, hull[i]);
      }
    }
    for (const NodeClaim& c : claims) {
      if (c.kind == NodeClaim::Kind::kRelation && !c.node.is_ground()) {
        changed |= rpt.intervals.tighten(c.node, c.bound);
      }
    }

    ++rpt.sweeps;
    if (!changed) {
      rpt.fixpoint = true;
      break;
    }
  }
}

/// Stiffness and conditioning scan over the edge magnitudes.
void run_magnitude_scan(const Circuit& circuit,
                        const std::vector<DeviceTopology>& topos,
                        const AnalyzeOptions& options, AnalyzeReport& rpt,
                        ReportBuilder& out) {
  const std::size_t nn = circuit.num_nodes();
  std::vector<double> sum_g(nn, 0.0), sum_c(nn, 0.0);
  double g_min = std::numeric_limits<double>::infinity(), g_max = 0.0;
  std::string g_min_dev, g_max_dev;

  for (std::size_t d = 0; d < circuit.num_devices(); ++d) {
    const DeviceTopology& topo = topos[d];
    for (const DeviceTopology::Edge& e : topo.edges) {
      if (e.magnitude <= 0.0) continue;
      const std::size_t a = topo.terminals[e.a].node.index;
      const std::size_t b = topo.terminals[e.b].node.index;
      if (e.kind == DeviceTopology::EdgeKind::kConductive) {
        sum_g[a] += e.magnitude;
        sum_g[b] += e.magnitude;
        if (e.magnitude < g_min) {
          g_min = e.magnitude;
          g_min_dev = circuit.device(d).name();
        }
        if (e.magnitude > g_max) {
          g_max = e.magnitude;
          g_max_dev = circuit.device(d).name();
        }
      } else if (e.kind == DeviceTopology::EdgeKind::kCapacitive) {
        sum_c[a] += e.magnitude;
        sum_c[b] += e.magnitude;
      } else if (e.kind == DeviceTopology::EdgeKind::kCurrent &&
                 !e.is_source) {
        // A VCCS's gm lands in the same Jacobian as the conductances and
        // stretches the pivot scale just like one.
        if (e.magnitude < g_min) {
          g_min = e.magnitude;
          g_min_dev = circuit.device(d).name();
        }
        if (e.magnitude > g_max) {
          g_max = e.magnitude;
          g_max_dev = circuit.device(d).name();
        }
      }
    }
  }

  // Per-node RC time constants, plus L/R for inductor branches (an
  // inductor's kVoltage edge carries its inductance as magnitude).
  double tau_min = std::numeric_limits<double>::infinity(), tau_max = 0.0;
  std::string tau_min_at, tau_max_at;
  auto consider = [&](double tau, const std::string& where) {
    if (!(tau > 0.0) || !std::isfinite(tau)) return;
    if (tau < tau_min) {
      tau_min = tau;
      tau_min_at = where;
    }
    if (tau > tau_max) {
      tau_max = tau;
      tau_max_at = where;
    }
  };
  for (std::size_t i = 1; i < nn; ++i) {
    if (sum_c[i] > 0.0 && sum_g[i] > 0.0) {
      consider(sum_c[i] / sum_g[i], "v(" + rpt.node_names[i] + ")");
    }
  }
  for (std::size_t d = 0; d < circuit.num_devices(); ++d) {
    const DeviceTopology& topo = topos[d];
    for (const DeviceTopology::Edge& e : topo.edges) {
      if (e.kind != DeviceTopology::EdgeKind::kVoltage || e.is_source ||
          e.magnitude <= 0.0) {
        continue;
      }
      const double g = std::max(sum_g[topo.terminals[e.a].node.index],
                                sum_g[topo.terminals[e.b].node.index]);
      if (g > 0.0) consider(e.magnitude * g, circuit.device(d).name());
    }
  }

  if (tau_max > 0.0 && std::isfinite(tau_min)) {
    rpt.tau_min = tau_min;
    rpt.tau_max = tau_max;
    if (tau_max / tau_min > options.stiffness_ratio) {
      std::ostringstream msg;
      msg << "time constants span " << engineering(tau_min) << " s ("
          << tau_min_at << ") to " << engineering(tau_max) << " s ("
          << tau_max_at << "), ratio " << engineering(tau_max / tau_min)
          << ": the system is stiff — the LTE controller will hold dt near "
          << "the fast pole while the waveform evolves on the slow one. "
          << "Start with dt_initial ~ " << engineering(tau_min)
          << " s, keep jacobian_reuse on, and consider whether the fast "
          << "pole is parasitic and can be coarsened";
      out.add({LintSeverity::kWarning, "stiff-time-constants", tau_max_at,
               msg.str()});
    }
  }

  if (g_max > 0.0 && std::isfinite(g_min)) {
    rpt.g_min = g_min;
    rpt.g_max = g_max;
    if (g_max / g_min > options.conditioning_ratio) {
      std::ostringstream msg;
      msg << "conductances span " << engineering(g_min) << " S (" << g_min_dev
          << ") to " << engineering(g_max) << " S (" << g_max_dev
          << "), ratio " << engineering(g_max / g_min)
          << ": Jacobian rows mix these scales and LU pivots lose ~"
          << engineering(std::log10(g_max / g_min))
          << " digits; rescale element values toward a common decade or "
          << "raise the gmin floor so the small conductances stop "
          << "controlling pivot growth";
      out.add({LintSeverity::kWarning, "conductance-scale-spread", g_max_dev,
               msg.str()});
    }
  }
}

/// Controllability / observability cones via terminal co-incidence.
/// Influence propagates through every edge kind and through a device's
/// body (a VCVS couples its control pair to its output pair), so the
/// conservative move — union all non-ground terminals of each device —
/// can only merge components, never invent a false "dead" verdict.
/// Ground itself conducts no influence: it is a fixed rail, so two
/// subnetworks meeting only at ground stay separate components.
void run_reachability(const Circuit& circuit,
                      const std::vector<DeviceTopology>& topos,
                      const AnalyzeOptions& options, ReportBuilder& out) {
  const std::size_t nn = circuit.num_nodes();
  UnionFind uf(nn);
  std::vector<char> sourced(nn, 0);

  for (const DeviceTopology& topo : topos) {
    std::size_t first = nn;  // first non-ground terminal seen
    bool has_source_edge = false;
    for (const DeviceTopology::Edge& e : topo.edges) {
      has_source_edge |= e.is_source;
    }
    for (const DeviceTopology::Terminal& t : topo.terminals) {
      if (t.node.is_ground()) continue;
      if (first == nn) {
        first = t.node.index;
      } else {
        uf.unite(first, t.node.index);
      }
      if (has_source_edge) sourced[t.node.index] = 1;
    }
  }

  std::vector<char> component_sourced(nn, 0);
  for (std::size_t i = 1; i < nn; ++i) {
    if (sourced[i]) component_sourced[uf.find(i)] = 1;
  }

  std::vector<char> component_observed(nn, 0);
  bool have_observed = false;
  for (const std::string& name : options.observed_nodes) {
    if (!circuit.has_node(name)) {
      out.add({LintSeverity::kHint, "observed-node-unknown", name,
               "observed node '" + name +
                   "' does not exist in the circuit; the observability "
                   "cone ignores it"});
      continue;
    }
    const NodeId n = circuit.find_node(name);
    if (n.is_ground()) continue;  // v(0) is 0 by definition, observes nothing
    component_observed[uf.find(n.index)] = 1;
    have_observed = true;
  }

  for (std::size_t d = 0; d < circuit.num_devices(); ++d) {
    const DeviceTopology& topo = topos[d];
    bool touches_circuit = false, reachable = false, observed = false;
    for (const DeviceTopology::Terminal& t : topo.terminals) {
      if (t.node.is_ground()) continue;
      touches_circuit = true;
      const std::size_t root = uf.find(t.node.index);
      reachable |= component_sourced[root] != 0;
      observed |= component_observed[root] != 0;
    }
    if (!touches_circuit) continue;  // all terminals grounded: inert anyway
    if (!reachable) {
      out.add({LintSeverity::kWarning, "dead-subcircuit",
               circuit.device(d).name(),
               "no independent source can influence this device (its "
               "connected component has no excitation): every solution "
               "is the zero solution, and it burns stamps and unknowns "
               "for nothing"});
    } else if (have_observed && !observed) {
      out.add({LintSeverity::kHint, "unobserved-device",
               circuit.device(d).name(),
               "no observed node can see this device (it is outside every "
               "measurement's cone); its contribution to the recorded "
               "signals is exactly zero"});
    }
  }
}

}  // namespace

AnalyzeReport analyze_circuit(const Circuit& circuit,
                              const AnalyzeOptions& options) {
  AnalyzeReport rpt;
  const std::size_t nn = circuit.num_nodes();
  rpt.intervals = IntervalSet(nn);
  rpt.node_names.reserve(nn);
  for (std::size_t i = 0; i < nn; ++i) {
    rpt.node_names.push_back(circuit.node_name(NodeId{i}));
  }

  std::vector<DeviceTopology> topos;
  topos.reserve(circuit.num_devices());
  for (std::size_t d = 0; d < circuit.num_devices(); ++d) {
    topos.push_back(circuit.device(d).topology());
  }

  run_interval_fixpoint(circuit, topos, options, rpt);

  for (std::size_t d = 0; d < circuit.num_devices(); ++d) {
    circuit.device(d).interval_check(rpt.intervals, rpt.verdicts);
  }

  ReportBuilder builder(options.max_findings);
  for (const RegionVerdict& v : rpt.verdicts) {
    builder.add({v.severity, v.region, v.device, v.message});
  }
  run_magnitude_scan(circuit, topos, options, rpt, builder);
  run_reachability(circuit, topos, options, builder);
  rpt.findings = builder.take();
  return rpt;
}

LintReport analyze_gate(const Circuit& circuit, lint::LintMode mode,
                        spice::RunReport* run_report,
                        const AnalyzeOptions& options) {
  if (mode == lint::LintMode::kOff) return {};
  AnalyzeReport rpt = analyze_circuit(circuit, options);
  if (run_report != nullptr) {
    run_report->analyze_findings.insert(run_report->analyze_findings.end(),
                                        rpt.findings.findings.begin(),
                                        rpt.findings.findings.end());
  }
  if (!rpt.findings.clean()) {
    log_warn("analyze: circuit has findings\n" + rpt.findings.summary());
  }
  if (mode == lint::LintMode::kStrict &&
      (rpt.findings.has_errors() || rpt.findings.warnings != 0)) {
    std::string what =
        "analyze rejected circuit (strict mode): " +
        std::to_string(rpt.findings.errors + rpt.findings.warnings) +
        " finding(s); first: " + rpt.findings.findings.front().to_string();
    throw lint::LintError(what, std::move(rpt.findings));
  }
  return rpt.findings;
}

}  // namespace nemsim::analyze
