#include "nemsim/spice/dcsweep.h"

#include "nemsim/spice/op.h"
#include "nemsim/util/error.h"

namespace nemsim::spice {

Waveform dc_sweep(MnaSystem& system,
                  const std::function<void(double)>& set_param,
                  std::span<const double> points,
                  const DcSweepOptions& options) {
  require(!points.empty(), "dc_sweep: no sweep points");

  std::vector<std::string> names;
  names.reserve(system.num_unknowns());
  for (std::size_t i = 0; i < system.num_unknowns(); ++i) {
    names.push_back(system.unknown_info(i).name);
  }
  Waveform wave(std::move(names));

  OpOptions op_options;
  op_options.newton = options.newton;

  linalg::Vector previous = system.initial_guess();
  bool have_previous = false;
  for (double value : points) {
    set_param(value);
    OpResult op = (options.continuation && have_previous)
                      ? operating_point_from(system, previous, op_options)
                      : operating_point(system, op_options);
    previous = op.raw();
    have_previous = true;
    wave.append(value, op.raw());
  }
  return wave;
}

std::vector<double> linspace(double first, double last, std::size_t count) {
  require(count >= 2, "linspace: need at least two points");
  std::vector<double> out(count);
  const double step = (last - first) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = first + step * static_cast<double>(i);
  }
  out.back() = last;
  return out;
}

}  // namespace nemsim::spice
