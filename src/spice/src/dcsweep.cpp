#include "nemsim/spice/dcsweep.h"

#include "nemsim/spice/analyze.h"
#include "nemsim/spice/op.h"
#include "nemsim/util/error.h"
#include "nemsim/util/parallel.h"

namespace nemsim::spice {

Waveform dc_sweep(MnaSystem& system,
                  const std::function<void(double)>& set_param,
                  std::span<const double> points,
                  const DcSweepOptions& options) {
  require(!points.empty(), "dc_sweep: no sweep points");

  std::vector<std::string> names;
  names.reserve(system.num_unknowns());
  for (std::size_t i = 0; i < system.num_unknowns(); ++i) {
    names.push_back(system.unknown_info(i).name);
  }
  Waveform wave(std::move(names));

  RunReport* report = options.report;
  if (report && report->analysis.empty()) report->analysis = "dc_sweep";

  // Lint once for the whole sweep; per-point ops must not lint again.
  lint::lint_gate(system, options.lint, report);
  analyze::analyze_gate(system.circuit(), options.analyze, report);

  OpOptions op_options;
  op_options.newton = options.newton;
  op_options.report = report;
  op_options.forensics = options.forensics;
  op_options.lint = lint::LintMode::kOff;
  // Per-point embedded ops may reuse one Newton workspace: the sweep is
  // sequential, so the cached factorization hand-off is safe here
  // (dc_sweep_parallel deliberately leaves this null per task).
  op_options.shared_solver = options.shared_solver;

  linalg::Vector previous = system.initial_guess();
  bool have_previous = false;
  for (double value : points) {
    set_param(value);
    if (report) ++report->points;
    try {
      OpResult op = (options.continuation && have_previous)
                        ? operating_point_from(system, previous, op_options)
                        : operating_point(system, op_options);
      previous = op.raw();
      have_previous = true;
      wave.append(value, op.raw());
    } catch (const ConvergenceError& e) {
      if (report) {
        ++report->failed_points;
        report->add_note("dc_sweep: point " + std::to_string(value) +
                         " failed: " + e.what());
      }
      throw;
    }
  }
  return wave;
}

Waveform dc_sweep_parallel(
    const std::function<Circuit()>& make_circuit,
    const std::function<void(Circuit&, double)>& set_param,
    std::span<const double> points, const DcSweepOptions& options,
    std::size_t num_threads) {
  require(!points.empty(), "dc_sweep_parallel: no sweep points");

  RunReport* report = options.report;
  if (report && report->analysis.empty()) report->analysis = "dc_sweep";

  OpOptions op_options;
  op_options.newton = options.newton;
  // The gate below lints the reference instance once, before any worker
  // starts; per-point worker ops must not lint (or log) again.
  op_options.lint = lint::LintMode::kOff;

  // Name table from a reference instance; every task builds the same
  // topology, so the unknown layout is identical across points.
  std::vector<std::string> names;
  {
    Circuit reference = make_circuit();
    MnaSystem system(reference);
    lint::lint_gate(system, options.lint, report);
    analyze::analyze_gate(system.circuit(), options.analyze, report);
    names.reserve(system.num_unknowns());
    for (std::size_t i = 0; i < system.num_unknowns(); ++i) {
      names.push_back(system.unknown_info(i).name);
    }
  }

  // Workers solve into per-task stats blocks (RunReport is not safe for
  // concurrent mutation); the report is folded together after the join,
  // in input order, so its contents are thread-count independent.
  struct PointResult {
    linalg::Vector x;
    NewtonStats newton;
  };
  std::vector<PointResult> solutions;
  if (options.parallel_chunk == 0) {
    solutions = util::parallel_map(
        points.size(),
        [&](std::size_t i) {
          Circuit circuit = make_circuit();
          set_param(circuit, points[i]);
          MnaSystem system(circuit);
          PointResult result;
          OpOptions task_options = op_options;
          task_options.report = nullptr;
          task_options.stats = report ? &result.newton : nullptr;
          result.x = operating_point(system, task_options).raw();
          return result;
        },
        num_threads);
  } else {
    // Warm-start chunking: one task per run of `parallel_chunk`
    // consecutive points.  The chunk's first point is solved cold; each
    // later point is seeded from the previous solution on the *same*
    // circuit instance (set_param mutates device values only, never the
    // topology — the same contract the sequential dc_sweep relies on).
    // Chunk boundaries are a pure function of the point index, so the
    // result is bitwise identical for any thread count.
    const std::size_t chunk = options.parallel_chunk;
    const std::size_t num_chunks = (points.size() + chunk - 1) / chunk;
    std::vector<std::vector<PointResult>> chunks = util::parallel_map(
        num_chunks,
        [&](std::size_t c) {
          const std::size_t begin = c * chunk;
          const std::size_t end = std::min(begin + chunk, points.size());
          Circuit circuit = make_circuit();
          MnaSystem system(circuit);
          std::vector<PointResult> out;
          out.reserve(end - begin);
          linalg::Vector previous;
          for (std::size_t i = begin; i < end; ++i) {
            set_param(circuit, points[i]);
            PointResult result;
            OpOptions task_options = op_options;
            task_options.report = nullptr;
            task_options.stats = report ? &result.newton : nullptr;
            OpResult op = i == begin
                              ? operating_point(system, task_options)
                              : operating_point_from(system, previous,
                                                     task_options);
            previous = op.raw();
            result.x = op.raw();
            out.push_back(std::move(result));
          }
          return out;
        },
        num_threads);
    solutions.reserve(points.size());
    for (std::vector<PointResult>& c : chunks) {
      for (PointResult& r : c) solutions.push_back(std::move(r));
    }
  }

  Waveform wave(std::move(names));
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (report) {
      ++report->points;
      report->newton.merge(solutions[i].newton);
      report->record_newton_iterations(solutions[i].newton.iterations);
    }
    wave.append(points[i], solutions[i].x);
  }
  return wave;
}

std::vector<double> linspace(double first, double last, std::size_t count) {
  require(count >= 2, "linspace: need at least two points");
  std::vector<double> out(count);
  const double step = (last - first) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = first + step * static_cast<double>(i);
  }
  out.back() = last;
  return out;
}

}  // namespace nemsim::spice
