#include "nemsim/spice/dcsweep.h"

#include "nemsim/spice/op.h"
#include "nemsim/util/error.h"
#include "nemsim/util/parallel.h"

namespace nemsim::spice {

Waveform dc_sweep(MnaSystem& system,
                  const std::function<void(double)>& set_param,
                  std::span<const double> points,
                  const DcSweepOptions& options) {
  require(!points.empty(), "dc_sweep: no sweep points");

  std::vector<std::string> names;
  names.reserve(system.num_unknowns());
  for (std::size_t i = 0; i < system.num_unknowns(); ++i) {
    names.push_back(system.unknown_info(i).name);
  }
  Waveform wave(std::move(names));

  OpOptions op_options;
  op_options.newton = options.newton;

  linalg::Vector previous = system.initial_guess();
  bool have_previous = false;
  for (double value : points) {
    set_param(value);
    OpResult op = (options.continuation && have_previous)
                      ? operating_point_from(system, previous, op_options)
                      : operating_point(system, op_options);
    previous = op.raw();
    have_previous = true;
    wave.append(value, op.raw());
  }
  return wave;
}

Waveform dc_sweep_parallel(
    const std::function<Circuit()>& make_circuit,
    const std::function<void(Circuit&, double)>& set_param,
    std::span<const double> points, const DcSweepOptions& options,
    std::size_t num_threads) {
  require(!points.empty(), "dc_sweep_parallel: no sweep points");

  OpOptions op_options;
  op_options.newton = options.newton;

  // Name table from a reference instance; every task builds the same
  // topology, so the unknown layout is identical across points.
  std::vector<std::string> names;
  {
    Circuit reference = make_circuit();
    MnaSystem system(reference);
    names.reserve(system.num_unknowns());
    for (std::size_t i = 0; i < system.num_unknowns(); ++i) {
      names.push_back(system.unknown_info(i).name);
    }
  }

  std::vector<linalg::Vector> solutions = util::parallel_map(
      points.size(),
      [&](std::size_t i) {
        Circuit circuit = make_circuit();
        set_param(circuit, points[i]);
        MnaSystem system(circuit);
        return operating_point(system, op_options).raw();
      },
      num_threads);

  Waveform wave(std::move(names));
  for (std::size_t i = 0; i < points.size(); ++i) {
    wave.append(points[i], solutions[i]);
  }
  return wave;
}

std::vector<double> linspace(double first, double last, std::size_t count) {
  require(count >= 2, "linspace: need at least two points");
  std::vector<double> out(count);
  const double step = (last - first) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = first + step * static_cast<double>(i);
  }
  out.back() = last;
  return out;
}

}  // namespace nemsim::spice
