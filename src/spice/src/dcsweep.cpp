#include "nemsim/spice/dcsweep.h"

#include "nemsim/spice/op.h"
#include "nemsim/util/error.h"
#include "nemsim/util/parallel.h"

namespace nemsim::spice {

Waveform dc_sweep(MnaSystem& system,
                  const std::function<void(double)>& set_param,
                  std::span<const double> points,
                  const DcSweepOptions& options) {
  require(!points.empty(), "dc_sweep: no sweep points");

  std::vector<std::string> names;
  names.reserve(system.num_unknowns());
  for (std::size_t i = 0; i < system.num_unknowns(); ++i) {
    names.push_back(system.unknown_info(i).name);
  }
  Waveform wave(std::move(names));

  RunReport* report = options.report;
  if (report && report->analysis.empty()) report->analysis = "dc_sweep";

  // Lint once for the whole sweep; per-point ops must not lint again.
  lint::lint_gate(system, options.lint, report);

  OpOptions op_options;
  op_options.newton = options.newton;
  op_options.report = report;
  op_options.forensics = options.forensics;
  op_options.lint = lint::LintMode::kOff;

  linalg::Vector previous = system.initial_guess();
  bool have_previous = false;
  for (double value : points) {
    set_param(value);
    if (report) ++report->points;
    try {
      OpResult op = (options.continuation && have_previous)
                        ? operating_point_from(system, previous, op_options)
                        : operating_point(system, op_options);
      previous = op.raw();
      have_previous = true;
      wave.append(value, op.raw());
    } catch (const ConvergenceError& e) {
      if (report) {
        ++report->failed_points;
        report->add_note("dc_sweep: point " + std::to_string(value) +
                         " failed: " + e.what());
      }
      throw;
    }
  }
  return wave;
}

Waveform dc_sweep_parallel(
    const std::function<Circuit()>& make_circuit,
    const std::function<void(Circuit&, double)>& set_param,
    std::span<const double> points, const DcSweepOptions& options,
    std::size_t num_threads) {
  require(!points.empty(), "dc_sweep_parallel: no sweep points");

  RunReport* report = options.report;
  if (report && report->analysis.empty()) report->analysis = "dc_sweep";

  OpOptions op_options;
  op_options.newton = options.newton;
  // The gate below lints the reference instance once, before any worker
  // starts; per-point worker ops must not lint (or log) again.
  op_options.lint = lint::LintMode::kOff;

  // Name table from a reference instance; every task builds the same
  // topology, so the unknown layout is identical across points.
  std::vector<std::string> names;
  {
    Circuit reference = make_circuit();
    MnaSystem system(reference);
    lint::lint_gate(system, options.lint, report);
    names.reserve(system.num_unknowns());
    for (std::size_t i = 0; i < system.num_unknowns(); ++i) {
      names.push_back(system.unknown_info(i).name);
    }
  }

  // Workers solve into per-task stats blocks (RunReport is not safe for
  // concurrent mutation); the report is folded together after the join,
  // in input order, so its contents are thread-count independent.
  struct PointResult {
    linalg::Vector x;
    NewtonStats newton;
  };
  std::vector<PointResult> solutions = util::parallel_map(
      points.size(),
      [&](std::size_t i) {
        Circuit circuit = make_circuit();
        set_param(circuit, points[i]);
        MnaSystem system(circuit);
        PointResult result;
        OpOptions task_options = op_options;
        task_options.report = nullptr;
        task_options.stats = report ? &result.newton : nullptr;
        result.x = operating_point(system, task_options).raw();
        return result;
      },
      num_threads);

  Waveform wave(std::move(names));
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (report) {
      ++report->points;
      report->newton.merge(solutions[i].newton);
      report->record_newton_iterations(solutions[i].newton.iterations);
    }
    wave.append(points[i], solutions[i].x);
  }
  return wave;
}

std::vector<double> linspace(double first, double last, std::size_t count) {
  require(count >= 2, "linspace: need at least two points");
  std::vector<double> out(count);
  const double step = (last - first) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = first + step * static_cast<double>(i);
  }
  out.back() = last;
  return out;
}

}  // namespace nemsim::spice
