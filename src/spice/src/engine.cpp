#include "nemsim/spice/engine.h"


#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "nemsim/spice/kernels.h"
#include "nemsim/util/error.h"

namespace nemsim::spice {

namespace {
// Default Newton clamps: node voltages move at most 0.5 V per iteration
// (keeps exponential device models in range); branch currents unlimited.
constexpr double kVoltageStepLimit = 0.5;
constexpr double kVoltageAbstol = 1e-9;
constexpr double kCurrentAbstol = 1e-12;
// Step size used for the symbolic transient stamping pass.  The value is
// irrelevant (only the set of touched positions matters); it merely has
// to be positive so companion models stamp their conductances.
constexpr double kSymbolicDt = 1e-9;
}  // namespace

// ---------------------------------------------------------------- Setup

UnknownId SetupContext::add_branch_current(const std::string& name) {
  UnknownInfo info;
  info.name = "i(" + name + ")";
  info.kind = UnknownKind::kBranchCurrent;
  info.max_newton_step = 0.0;
  info.abstol = kCurrentAbstol;
  info.row_abstol = kVoltageAbstol;  // branch rows are KVL equations
  return system_.allocate_unknown(std::move(info));
}

UnknownId SetupContext::add_internal(const std::string& name, double abstol,
                                     double row_abstol, double max_newton_step,
                                     double initial_guess) {
  UnknownInfo info;
  info.name = name;
  info.kind = UnknownKind::kInternal;
  info.abstol = abstol;
  info.row_abstol = row_abstol;
  info.max_newton_step = max_newton_step;
  info.initial_guess = initial_guess;
  return system_.allocate_unknown(std::move(info));
}

// ------------------------------------------------------------- Solution

double Solution::v(NodeId node) const {
  if (node.is_ground()) return 0.0;
  return (*x_)[system_->unknown_of(node).index];
}

double Solution::x(UnknownId unknown) const {
  require(unknown.valid(), "Solution::x: invalid unknown");
  return (*x_)[unknown.index];
}

// --------------------------------------------------------- StampContext

StampContext::StampContext(const MnaSystem& system, const linalg::Vector& x,
                           linalg::Matrix& jacobian, linalg::Vector& residual,
                           linalg::Vector& residual_scale)
    : system_(system),
      x_(x),
      dense_jacobian_(&jacobian),
      residual_(residual),
      residual_scale_(residual_scale) {}

StampContext::StampContext(
    const MnaSystem& system, const linalg::Vector& x,
    linalg::CsrMatrix* jacobian, linalg::Vector& residual,
    linalg::Vector& residual_scale,
    std::vector<std::pair<std::size_t, std::size_t>>* missed)
    : system_(system),
      x_(x),
      sparse_jacobian_(jacobian),
      missed_(missed),
      residual_(residual),
      residual_scale_(residual_scale) {}

void StampContext::record_pattern(
    std::vector<std::pair<std::size_t, std::size_t>>& pattern) {
  pattern_ = &pattern;
  dense_jacobian_ = nullptr;
  sparse_jacobian_ = nullptr;
}

void StampContext::configure(AnalysisMode mode, double time, double dt,
                             double gmin, double source_factor) {
  mode_ = mode;
  time_ = time;
  dt_ = dt;
  gmin_ = gmin;
  source_factor_ = source_factor;
}

double StampContext::v(NodeId node) const {
  if (node.is_ground()) return 0.0;
  const std::size_t index = system_.unknown_of(node).index;
  if (capture_ != nullptr) capture_->inputs.emplace_back(index, x_[index]);
  return x_[index];
}

double StampContext::x(UnknownId unknown) const {
  require(unknown.valid(), "StampContext::x: invalid unknown");
  if (capture_ != nullptr) {
    capture_->inputs.emplace_back(unknown.index, x_[unknown.index]);
  }
  return x_[unknown.index];
}

void StampContext::raw_f(UnknownId eq, double value) {
  if (!eq.valid()) return;  // ground row: dropped
  if (!want_residual_) return;
  residual_[eq.index] += value;
  residual_scale_[eq.index] += std::abs(value);
  if (capture_ != nullptr) capture_->f_entries.push_back({eq.index, value});
}

void StampContext::raw_J(UnknownId eq, UnknownId var, double value) {
  if (!eq.valid() || !var.valid()) return;
  if (pattern_ != nullptr) {
    pattern_->emplace_back(eq.index, var.index);
    return;
  }
  if (dense_jacobian_ != nullptr) {
    (*dense_jacobian_)(eq.index, var.index) += value;
    if (capture_ != nullptr) {
      capture_->j_entries.push_back(
          {eq.index, var.index, linalg::CsrMatrix::npos, value});
    }
    return;
  }
  if (sparse_jacobian_ != nullptr) {
    const std::size_t slot = sparse_jacobian_->slot(eq.index, var.index);
    if (slot == linalg::CsrMatrix::npos) {
      // Outside the frozen pattern (e.g. a MOSFET source/drain swap hit
      // a new asymmetric position): report it so the pattern can grow.
      if (missed_ != nullptr) missed_->emplace_back(eq.index, var.index);
      // The assembly will be retried against a grown pattern; a capture
      // taken during this pass has dangling slots and must be dropped.
      if (capture_ != nullptr) capture_->poisoned = true;
      return;
    }
    sparse_jacobian_->values()[slot] += value;
    if (capture_ != nullptr) {
      capture_->j_entries.push_back({eq.index, var.index, slot, value});
    }
    return;
  }
  // Residual-only assembly: Jacobian contributions are dropped.
}

void StampContext::apply_cached(const DeviceBypassCache& cache) {
  if (want_residual_) {
    for (const auto& e : cache.f_entries) {
      residual_[e.row] += e.value;
      residual_scale_[e.row] += std::abs(e.value);
    }
    // First-order replay: f(x) ~= f(x_c) + J(x_c) * (x - x_c).  Replaying
    // the cached values alone freezes the residual at the capture point,
    // which stalls Newton as soon as sub-tolerance movement matters (the
    // solver chases a residual that cannot respond to its updates).  The
    // linear correction keeps the replay error second-order in the input
    // delta, so bypassed devices stay consistent with the iterate.
    for (const auto& e : cache.j_entries) {
      for (const auto& in : cache.inputs) {
        if (in.first == e.col) {
          const double corr = e.value * (x_[e.col] - in.second);
          residual_[e.row] += corr;
          residual_scale_[e.row] += std::abs(corr);
          break;
        }
      }
    }
  }
  if (dense_jacobian_ != nullptr) {
    for (const auto& e : cache.j_entries) {
      (*dense_jacobian_)(e.row, e.col) += e.value;
    }
  } else if (sparse_jacobian_ != nullptr) {
    // Compatibility pre-check guarantees the recorded slots belong to the
    // current pattern epoch.
    for (const auto& e : cache.j_entries) {
      sparse_jacobian_->values()[e.slot] += e.value;
    }
  }
}

void StampContext::add_f(NodeId eq, double current) {
  raw_f(system_.unknown_of(eq), current);
}

void StampContext::add_f(UnknownId eq, double value) { raw_f(eq, value); }

void StampContext::add_J(NodeId eq, NodeId var, double dfdx) {
  raw_J(system_.unknown_of(eq), system_.unknown_of(var), dfdx);
}

void StampContext::add_J(NodeId eq, UnknownId var, double dfdx) {
  raw_J(system_.unknown_of(eq), var, dfdx);
}

void StampContext::add_J(UnknownId eq, NodeId var, double dfdx) {
  raw_J(eq, system_.unknown_of(var), dfdx);
}

void StampContext::add_J(UnknownId eq, UnknownId var, double dfdx) {
  raw_J(eq, var, dfdx);
}

// ------------------------------------------------------------ MnaSystem

MnaSystem::MnaSystem(Circuit& circuit) : circuit_(circuit) {
  // Node voltages first: node i (1-based) -> unknown i-1.
  unknowns_.reserve(circuit.num_nodes() - 1);
  for (std::size_t n = 1; n < circuit.num_nodes(); ++n) {
    UnknownInfo info;
    info.name = "v(" + circuit.node_name(NodeId{n}) + ")";
    info.kind = UnknownKind::kNodeVoltage;
    info.max_newton_step = kVoltageStepLimit;
    info.abstol = kVoltageAbstol;
    info.row_abstol = kCurrentAbstol;  // node rows are KCL equations
    unknown_index_.emplace(info.name, unknowns_.size());
    unknowns_.push_back(std::move(info));
  }
  SetupContext setup(*this);
  for (std::size_t i = 0; i < circuit.num_devices(); ++i) {
    circuit.device(i).setup(setup);
  }
  device_class_.reserve(circuit.num_devices());
  for (std::size_t i = 0; i < circuit.num_devices(); ++i) {
    const Device& device = circuit.device(i);
    if (device.is_linear()) {
      linear_devices_.push_back(i);
      device_class_.push_back(0);
    } else {
      nonlinear_devices_.push_back(i);
      std::vector<double> probe;
      device_class_.push_back(device.bypass_signature(probe) ? 2 : 1);
    }
  }
}

MnaSystem::~MnaSystem() = default;

UnknownId MnaSystem::unknown_of(NodeId node) const {
  if (node.is_ground()) return kNoUnknown;
  require(node.index < circuit_.num_nodes(), "unknown_of: node out of range");
  return UnknownId{node.index - 1};
}

UnknownId MnaSystem::unknown_by_name(const std::string& name) const {
  auto it = unknown_index_.find(name);
  if (it == unknown_index_.end()) {
    throw InvalidArgument("unknown signal '" + name + "'");
  }
  return UnknownId{it->second};
}

bool MnaSystem::has_unknown(const std::string& name) const {
  return unknown_index_.find(name) != unknown_index_.end();
}

UnknownId MnaSystem::allocate_unknown(UnknownInfo info) {
  unknown_index_.emplace(info.name, unknowns_.size());
  unknowns_.push_back(std::move(info));
  return UnknownId{unknowns_.size() - 1};
}

linalg::Vector MnaSystem::initial_guess() const {
  linalg::Vector x(num_unknowns(), 0.0);
  for (std::size_t i = 0; i < unknowns_.size(); ++i) {
    x[i] = unknowns_[i].initial_guess;
  }
  return x;
}

void MnaSystem::set_nodeset(NodeId node, double volts) {
  UnknownId u = unknown_of(node);
  require(u.valid(), "set_nodeset: cannot nodeset ground");
  unknowns_[u.index].initial_guess = volts;
}

void MnaSystem::clear_nodesets() {
  for (auto& u : unknowns_) {
    if (u.kind == UnknownKind::kNodeVoltage) u.initial_guess = 0.0;
  }
}

// --------------------------------------------------- quiescent bypass

namespace {
/// The bypass input tolerance: |a - b| within reltol of the larger
/// magnitude plus an absolute floor.
inline bool bypass_close(double a, double b, double reltol, double abstol) {
  return std::abs(a - b) <=
         reltol * std::max(std::abs(a), std::abs(b)) + abstol;
}
}  // namespace

void MnaSystem::configure_bypass(bool enabled, double reltol, double abstol) {
  if (enabled && bypass_caches_.size() != circuit_.num_devices()) {
    bypass_caches_.assign(circuit_.num_devices(), {});
  }
  // A tolerance or enable change re-baselines what "quiescent" means;
  // entries admitted under the old bound must not survive it.
  if (enabled != bypass_enabled_ || reltol != bypass_reltol_ ||
      abstol != bypass_abstol_) {
    invalidate_bypass_caches();
  }
  bypass_enabled_ = enabled;
  bypass_reltol_ = reltol;
  bypass_abstol_ = abstol;
}

void MnaSystem::set_bypass_replay_suspended(bool suspended) {
  bypass_replay_suspended_ = suspended;
}

void MnaSystem::set_bypass_exact_only(bool exact_only) {
  bypass_exact_only_ = exact_only;
}

void MnaSystem::invalidate_bypass_caches() {
  for (std::vector<DeviceBypassCache>& ways : bypass_caches_) {
    for (DeviceBypassCache& cache : ways) cache.valid = false;
  }
}

bool MnaSystem::bypass_context_matches(const DeviceBypassCache& cache,
                                       const StampContext& ctx) {
  if (cache.mode != ctx.mode()) return false;
  if (cache.read_time && cache.time != ctx.time()) return false;
  if (cache.read_dt && cache.dt != ctx.dt()) return false;
  if (cache.read_gmin && cache.gmin != ctx.gmin()) return false;
  if (cache.read_source_factor && cache.source_factor != ctx.source_factor())
    return false;
  return true;
}

DeviceBypassCache& MnaSystem::bypass_capture_way(std::size_t device_index,
                                                 const StampContext& ctx) const {
  std::vector<DeviceBypassCache>& ways = bypass_caches_[device_index];
  // Supersede the entry for this exact context first: a re-capture at the
  // same step/dt replaces the previous iteration's entry instead of
  // evicting another rung's.
  for (DeviceBypassCache& way : ways) {
    if (way.valid && bypass_context_matches(way, ctx)) return way;
  }
  for (DeviceBypassCache& way : ways) {
    if (!way.valid) return way;
  }
  // Entries pinned to an absolute time that has passed can never replay
  // again — reuse them before evicting anything live.
  for (DeviceBypassCache& way : ways) {
    if (way.read_time && way.time != ctx.time()) return way;
  }
  if (ways.size() < kBypassWays) {
    ways.emplace_back();
    return ways.back();
  }
  DeviceBypassCache* victim = &ways.front();
  for (DeviceBypassCache& way : ways) {
    if (way.last_used < victim->last_used) victim = &way;
  }
  return *victim;
}

bool MnaSystem::bypass_compatible(const StampContext& ctx,
                                  const DeviceBypassCache& cache,
                                  const Device& device, bool exact) const {
  const double reltol = exact ? 0.0 : bypass_reltol_;
  const double abstol = exact ? 0.0 : bypass_abstol_;
  if (cache.mode != ctx.mode()) return false;
  // Context scalars the stamp read must match *exactly*: dt enters
  // companion conductances as 1/dt, so even a sub-tolerance mismatch
  // skews the cached Jacobian in ways the input tolerance cannot bound.
  if (cache.read_time && cache.time != ctx.time()) return false;
  if (cache.read_dt && cache.dt != ctx.dt()) return false;
  if (cache.read_gmin && cache.gmin != ctx.gmin()) return false;
  if (cache.read_source_factor && cache.source_factor != ctx.source_factor())
    return false;
  // CSR sinks replay through recorded slots, valid only for the pattern
  // epoch they were captured at (dense captures carry kNoEpoch and are
  // never replayed into a CSR sink).
  if (ctx.has_sparse_sink() && cache.epoch != pattern_epoch_) return false;
  for (const auto& [index, value] : cache.inputs) {
    if (!bypass_close(value, ctx.unknown_value(index), reltol, abstol))
      return false;
  }
  // Committed device state (companion history, beam position) is judged
  // two decades tighter than the iterate inputs: state drift feeds the
  // residual at first order (companion currents scale it by C/dt) and
  // the cached-Jacobian correction only spans the unknown inputs, so an
  // input-sized state delta routinely flunks the converged-iteration
  // verification and costs an extra Newton cycle.
  const double sig_reltol = 0.01 * reltol;
  const double sig_abstol = 0.01 * abstol;
  bypass_signature_scratch_.clear();
  if (!device.bypass_signature(bypass_signature_scratch_)) return false;
  if (bypass_signature_scratch_.size() != cache.signature.size()) return false;
  for (std::size_t i = 0; i < cache.signature.size(); ++i) {
    if (!bypass_close(cache.signature[i], bypass_signature_scratch_[i],
                      sig_reltol, sig_abstol))
      return false;
  }
  return true;
}

void MnaSystem::stamp_one(StampContext& ctx, std::size_t device_index,
                          bool hot) const {
  const Device& device = circuit_.device(device_index);
  if (!hot || device_class_[device_index] == 0) {
    device.stamp(ctx);
    return;
  }
  if (!bypass_enabled_ || device_class_[device_index] != 2) {
    ++bypass_counters_.evals;
    device.stamp(ctx);
    return;
  }
  std::vector<DeviceBypassCache>& ways = bypass_caches_[device_index];
  if (!bypass_replay_suspended_) {
    for (DeviceBypassCache& cache : ways) {
      // A cache whose f-side has drifted from its J entries (j_stale)
      // only replays into residual-only assemblies, where the J entries
      // are never stamped: the f-side is current, and the first-order
      // correction's stale slope contributes at most
      // O(tolerance * J drift), which the converged-iteration
      // verification bounds.
      const bool j_ok = !cache.j_stale || ctx.residual_only();
      if (cache.valid && j_ok &&
          bypass_compatible(ctx, cache, device, bypass_exact_only_)) {
        ctx.apply_cached(cache);
        cache.last_used = ++bypass_tick_;
        ++bypass_counters_.bypassed;
        return;
      }
    }
  }
  ++bypass_counters_.evals;
  if (ctx.can_capture()) {
    DeviceBypassCache& cache = bypass_capture_way(device_index, ctx);
    cache.reset();
    ctx.begin_capture(&cache);
    device.stamp(ctx);
    ctx.end_capture();
    if (cache.poisoned) return;  // pattern grew mid-stamp; capture dropped
    cache.mode = ctx.mode();
    cache.epoch = ctx.has_sparse_sink() ? pattern_epoch_
                                        : DeviceBypassCache::kNoEpoch;
    device.bypass_signature(cache.signature);
    cache.j_anchor = cache.inputs;
    cache.valid = true;
    cache.last_used = ++bypass_tick_;
    return;
  }
  // Residual-only pass: pick the way captured for this exact scalar
  // context (damping trials and stale-Jacobian iterations run at the
  // step's own time/dt, so this is the full capture they follow).
  DeviceBypassCache* refresh_target = nullptr;
  if (ctx.residual_only()) {
    for (DeviceBypassCache& way : ways) {
      if (way.valid && bypass_context_matches(way, ctx)) {
        refresh_target = &way;
        break;
      }
    }
  }
  if (refresh_target != nullptr) {
    DeviceBypassCache& cache = *refresh_target;
    // Residual-only pass over a full capture: refresh the f-side (inputs,
    // residual entries, scalars, signature) and keep the J entries.  If
    // the new point has left the bypass tolerance of the J anchor -- or
    // any context scalar the J entries bake in changed -- the J side is
    // marked stale.  This keeps caches current across damping trials and
    // stale-Jacobian iterations, so the converged-iteration verification
    // can replay the accepted trial's own evaluations bitwise instead of
    // repeating them.
    f_refresh_scratch_.reset();
    ctx.begin_capture(&f_refresh_scratch_);
    device.stamp(ctx);
    ctx.end_capture();
    bool stale = cache.j_stale;
    if (cache.read_time != f_refresh_scratch_.read_time ||
        (cache.read_time && cache.time != f_refresh_scratch_.time) ||
        cache.read_dt != f_refresh_scratch_.read_dt ||
        (cache.read_dt && cache.dt != f_refresh_scratch_.dt) ||
        cache.read_gmin != f_refresh_scratch_.read_gmin ||
        (cache.read_gmin && cache.gmin != f_refresh_scratch_.gmin) ||
        cache.read_source_factor != f_refresh_scratch_.read_source_factor ||
        (cache.read_source_factor &&
         cache.source_factor != f_refresh_scratch_.source_factor)) {
      stale = true;
    }
    if (!stale) {
      if (f_refresh_scratch_.inputs.size() != cache.j_anchor.size()) {
        stale = true;
      } else {
        for (std::size_t i = 0; i < cache.j_anchor.size(); ++i) {
          if (f_refresh_scratch_.inputs[i].first != cache.j_anchor[i].first ||
              !bypass_close(f_refresh_scratch_.inputs[i].second,
                            cache.j_anchor[i].second, bypass_reltol_,
                            bypass_abstol_)) {
            stale = true;
            break;
          }
        }
      }
    }
    cache.j_stale = stale;
    cache.inputs.swap(f_refresh_scratch_.inputs);
    cache.f_entries.swap(f_refresh_scratch_.f_entries);
    cache.mode = ctx.mode();
    cache.read_time = f_refresh_scratch_.read_time;
    cache.time = f_refresh_scratch_.time;
    cache.read_dt = f_refresh_scratch_.read_dt;
    cache.dt = f_refresh_scratch_.dt;
    cache.read_gmin = f_refresh_scratch_.read_gmin;
    cache.gmin = f_refresh_scratch_.gmin;
    cache.read_source_factor = f_refresh_scratch_.read_source_factor;
    cache.source_factor = f_refresh_scratch_.source_factor;
    cache.signature.clear();
    device.bypass_signature(cache.signature);
    cache.last_used = ++bypass_tick_;
    return;
  }
  // Jacobian-only pass (or no prior capture to refresh): stamp plainly
  // and keep whatever captures the way set already holds.
  device.stamp(ctx);
}

void MnaSystem::stamp_devices(StampContext& ctx, DeviceSet set,
                              bool hot) const {
  // Pattern-recording passes always use the virtual path: the recorder
  // captures exactly what the devices stamp, and the kernel plan's own
  // declared cells are merged into the pattern separately.
  if (kernels_enabled_ && kernel_plan_ != nullptr && !ctx.pattern_recording()) {
    stamp_devices_kernels(ctx, set, hot);
    return;
  }
  stamp_devices_virtual(ctx, set, hot);
}

void MnaSystem::stamp_devices_virtual(StampContext& ctx, DeviceSet set,
                                      bool hot) const {
  switch (set) {
    case DeviceSet::kAll:
      // Circuit order, linear and nonlinear interleaved: with bypass off
      // this floating-point accumulation order is part of the engine's
      // bitwise contract.
      for (std::size_t i = 0; i < circuit_.num_devices(); ++i) {
        stamp_one(ctx, i, hot);
      }
      break;
    case DeviceSet::kLinear:
      for (std::size_t i : linear_devices_) stamp_one(ctx, i, hot);
      break;
    case DeviceSet::kNonlinear:
      for (std::size_t i : nonlinear_devices_) stamp_one(ctx, i, hot);
      break;
  }
}

// ------------------------------------------- type-bucketed kernels

void MnaSystem::configure_kernels(bool enabled) {
  if (enabled && kernel_plan_ == nullptr) build_kernel_plan();
  kernels_enabled_ = enabled && kernel_plan_ != nullptr;
}

void MnaSystem::build_kernel_plan() {
  auto plan = std::make_unique<KernelPlan>();
  const KernelLayout layout(*this);
  const std::size_t n = num_unknowns();
  std::unordered_map<std::string, std::size_t> lane_of_bucket;
  for (std::size_t di = 0; di < circuit_.num_devices(); ++di) {
    const Device& device = circuit_.device(di);
    KernelDescriptor desc;
    device.kernel_descriptor(layout, desc);
    const bool linear = device_class_[di] == 0;
    const std::size_t roles = static_cast<std::size_t>(desc.roles);
    bool usable = desc.supported && desc.batch != nullptr && desc.roles > 0 &&
                  desc.role_unknowns.size() == roles;
    if (usable) {
      for (const auto& [er, vr] : desc.j_positions) {
        if (er >= desc.roles || vr >= desc.roles) usable = false;
      }
    }
    std::size_t lane_index = 0;
    if (usable) {
      // Linearity is part of the key so a (hypothetical) bucket spanning
      // both device classes still lands in homogeneous lanes.
      const std::string key =
          std::string(desc.bucket) + (linear ? "#l" : "#n");
      auto [it, inserted] =
          lane_of_bucket.try_emplace(key, plan->lanes.size());
      if (inserted) {
        KernelLane lane;
        lane.bucket = desc.bucket;
        lane.batch = desc.batch;
        lane.roles = desc.roles;
        lane.linear = linear;
        plan->lanes.push_back(std::move(lane));
      }
      lane_index = it->second;
      const KernelLane& lane = plan->lanes[lane_index];
      if (lane.batch != desc.batch || lane.roles != desc.roles) {
        usable = false;  // bucket key collision across types
      }
    }
    if (!usable) {
      (linear ? plan->leftover_linear : plan->leftover_nonlinear)
          .push_back(di);
      continue;
    }
    KernelLane& lane = plan->lanes[lane_index];
    lane.bypassable = lane.bypassable || device_class_[di] == 2;
    lane.devices.push_back(&device);
    lane.device_indices.push_back(di);
    const std::size_t base = lane.rows.size();
    for (std::size_t r = 0; r < roles; ++r) {
      const UnknownId u = desc.role_unknowns[r];
      lane.rows.push_back(u.valid() ? u.index : kKernelAbsent);
    }
    const std::size_t cell_base = lane.rowcol.size();
    lane.rowcol.resize(cell_base + roles * roles,
                       {kKernelAbsent, kKernelAbsent});
    lane.dense_slots.resize(cell_base + roles * roles, kKernelAbsent);
    lane.sparse_slots.resize(cell_base + roles * roles, kKernelAbsent);
    for (const auto& [er, vr] : desc.j_positions) {
      const std::size_t row = lane.rows[base + er];
      const std::size_t col = lane.rows[base + vr];
      if (row == kKernelAbsent || col == kKernelAbsent) continue;  // ground
      const std::size_t cell = cell_base + er * roles + vr;
      lane.rowcol[cell] = {row, col};
      lane.dense_slots[cell] = row * n + col;
      plan->declared_cells.emplace_back(row, col);
    }
  }
  std::sort(plan->declared_cells.begin(), plan->declared_cells.end());
  plan->declared_cells.erase(
      std::unique(plan->declared_cells.begin(), plan->declared_cells.end()),
      plan->declared_cells.end());
  kernel_plan_ = std::move(plan);
  // The sparse pattern must contain every declared cell so slot
  // resolution can freeze the scatter maps; when the pattern does not
  // exist yet, ensure_pattern folds the cells in at build time instead
  // (no extra epoch bump).
  if (pattern_built_) ensure_pattern_contains(kernel_plan_->declared_cells);
}

void MnaSystem::ensure_pattern_contains(
    const std::vector<std::pair<std::size_t, std::size_t>>& cells) const {
  if (!pattern_built_) return;
  // pattern_ is sorted and unique; collect only the genuinely new cells
  // so the epoch is not bumped (skeletons not invalidated) for no-ops.
  std::vector<std::pair<std::size_t, std::size_t>> missing;
  for (const auto& cell : cells) {
    if (!std::binary_search(pattern_.begin(), pattern_.end(), cell)) {
      missing.push_back(cell);
    }
  }
  grow_pattern(missing);
}

void MnaSystem::resolve_kernel_sparse_slots(
    KernelPlan& plan, const linalg::CsrMatrix& csr,
    std::vector<std::pair<std::size_t, std::size_t>>* missed) const {
  bool complete = true;
  for (KernelLane& lane : plan.lanes) {
    for (std::size_t cell = 0; cell < lane.rowcol.size(); ++cell) {
      const auto& [row, col] = lane.rowcol[cell];
      if (row == kKernelAbsent) {
        lane.sparse_slots[cell] = kKernelAbsent;
        continue;
      }
      const std::size_t slot = csr.slot(row, col);
      if (slot == linalg::CsrMatrix::npos) {
        lane.sparse_slots[cell] = kKernelAbsent;
        complete = false;
        if (missed != nullptr) missed->emplace_back(row, col);
      } else {
        lane.sparse_slots[cell] = slot;
      }
    }
  }
  plan.sparse_epoch = complete ? pattern_epoch_ : KernelPlan::kNoEpoch;
}

std::vector<std::pair<std::string, std::uint64_t>>
MnaSystem::kernel_lane_evals() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  if (kernel_plan_ == nullptr) return out;
  out.reserve(kernel_plan_->lanes.size());
  for (const KernelLane& lane : kernel_plan_->lanes) {
    out.emplace_back(lane.bucket, lane.evals);
  }
  return out;
}

void MnaSystem::stamp_devices_kernels(StampContext& ctx, DeviceSet set,
                                      bool hot) const {
  KernelPlan& plan = *kernel_plan_;
  KernelEvalContext ectx;
  ectx.x = ctx.iterate_data();
  if (ctx.wants_residual()) {
    ectx.residual = ctx.residual_data();
    ectx.residual_scale = ctx.residual_scale_data();
  }
  bool sparse = false;
  if (linalg::Matrix* dense = ctx.dense_sink()) {
    ectx.jacobian = dense->data();
  } else if (linalg::CsrMatrix* csr = ctx.sparse_sink()) {
    sparse = true;
    if (plan.sparse_epoch != pattern_epoch_) {
      resolve_kernel_sparse_slots(plan, *csr, ctx.missed_sink());
    }
    if (plan.sparse_epoch != pattern_epoch_) {
      // Declared cells missing from this skeleton (resolution failed):
      // the misses were reported above, the caller grows the pattern and
      // retries.  Complete this pass through the virtual path so its
      // (discarded) residual stays well-formed.
      stamp_devices_virtual(ctx, set, hot);
      return;
    }
    ectx.jacobian = csr->values().data();
  }
  ectx.mode = ctx.mode();
  ectx.time = ctx.time();
  ectx.dt = ctx.dt();
  ectx.gmin = ctx.gmin();
  ectx.source_factor = ctx.source_factor();

  const bool bypass_hot = hot && bypass_enabled_;
  auto run_lane = [&](KernelLane& lane) {
    if (lane.devices.empty()) return;
    if (bypass_hot && !lane.linear && lane.bypassable) {
      // Bypass owns hot replay for these devices: route them through the
      // per-device path so capture/replay (and its counters) work
      // unchanged.
      for (std::size_t di : lane.device_indices) stamp_one(ctx, di, hot);
      return;
    }
    lane.batch(lane.view(sparse ? lane.sparse_slots.data()
                                : lane.dense_slots.data()),
               ectx);
    lane.evals += lane.devices.size();
    if (hot && !lane.linear) {
      bypass_counters_.evals += static_cast<std::int64_t>(lane.devices.size());
    }
  };

  // Deterministic kernels-on order: linear lanes, linear leftovers,
  // nonlinear lanes, nonlinear leftovers — each in bucket-creation /
  // circuit order.  This differs from the virtual path's interleaved
  // circuit order, which is why kernels are a reltol contract.
  if (set != DeviceSet::kNonlinear) {
    for (KernelLane& lane : plan.lanes) {
      if (lane.linear) run_lane(lane);
    }
    for (std::size_t di : plan.leftover_linear) stamp_one(ctx, di, hot);
  }
  if (set != DeviceSet::kLinear) {
    for (KernelLane& lane : plan.lanes) {
      if (!lane.linear) run_lane(lane);
    }
    for (std::size_t di : plan.leftover_nonlinear) stamp_one(ctx, di, hot);
  }
}

void MnaSystem::assemble(const linalg::Vector& x, linalg::Matrix& jacobian,
                         linalg::Vector& residual,
                         linalg::Vector& residual_scale, AnalysisMode mode,
                         double time, double dt, double gmin,
                         double source_factor) const {
  const std::size_t n = num_unknowns();
  require(x.size() == n, "assemble: iterate size mismatch");
  jacobian.reset(n, n);
  residual.assign(n, 0.0);
  residual_scale.assign(n, 0.0);

  StampContext ctx(*this, x, jacobian, residual, residual_scale);
  ctx.configure(mode, time, dt, gmin, source_factor);
  stamp_devices(ctx, DeviceSet::kAll, /*hot=*/true);

  if (gmin > 0.0) {
    // Homotopy shunt from every node to ground; does not enter the scale
    // so convergence is still judged against physical currents.
    for (std::size_t i = 0; i < n; ++i) {
      if (unknowns_[i].kind == UnknownKind::kNodeVoltage) {
        residual[i] += gmin * x[i];
        jacobian(i, i) += gmin;
      }
    }
  }
}

void MnaSystem::assemble_residual(const linalg::Vector& x,
                                  linalg::Vector& residual,
                                  linalg::Vector& residual_scale,
                                  AnalysisMode mode, double time, double dt,
                                  double gmin, double source_factor) const {
  const std::size_t n = num_unknowns();
  require(x.size() == n, "assemble_residual: iterate size mismatch");
  residual.assign(n, 0.0);
  residual_scale.assign(n, 0.0);

  StampContext ctx(*this, x, /*jacobian=*/nullptr, residual, residual_scale,
                   /*missed=*/nullptr);
  ctx.configure(mode, time, dt, gmin, source_factor);
  stamp_devices(ctx, DeviceSet::kAll, /*hot=*/true);

  if (gmin > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (unknowns_[i].kind == UnknownKind::kNodeVoltage) {
        residual[i] += gmin * x[i];
      }
    }
  }
}

// ------------------------------------------------- sparse fast path

void MnaSystem::ensure_pattern() const {
  if (pattern_built_) return;
  const std::size_t n = num_unknowns();
  pattern_.clear();

  // Symbolic stamping passes at the cold-start iterate: one in OP mode
  // (capacitors open, inductors short) and one in transient mode (all
  // companion conductances active).  The union covers mode-dependent
  // stamps; iterate-dependent positions (device operating-region flips)
  // are caught later by lazy growth.
  const linalg::Vector x0 = initial_guess();
  linalg::Vector scratch_f(n, 0.0);
  linalg::Vector scratch_scale(n, 0.0);
  StampContext ctx(*this, x0, /*jacobian=*/nullptr, scratch_f, scratch_scale,
                   /*missed=*/nullptr);
  ctx.record_pattern(pattern_);
  ctx.disable_residual();
  ctx.configure(AnalysisMode::kDcOperatingPoint, 0.0, 0.0, 0.0, 1.0);
  stamp_devices(ctx, DeviceSet::kAll);
  ctx.configure(AnalysisMode::kTransient, kSymbolicDt, kSymbolicDt, 0.0, 1.0);
  stamp_devices(ctx, DeviceSet::kAll);

  // Every diagonal: gmin shunts stamp (i, i) on node rows, and keeping
  // the full diagonal structurally present helps the LU pivot search.
  for (std::size_t i = 0; i < n; ++i) pattern_.emplace_back(i, i);

  // The kernel plan's declared scatter cells are part of the pattern by
  // construction (orientation unions the symbolic passes cannot see),
  // folded in here so enabling kernels before the first sparse solve
  // costs no extra epoch bump.
  if (kernel_plan_ != nullptr) {
    pattern_.insert(pattern_.end(), kernel_plan_->declared_cells.begin(),
                    kernel_plan_->declared_cells.end());
  }

  std::sort(pattern_.begin(), pattern_.end());
  pattern_.erase(std::unique(pattern_.begin(), pattern_.end()),
                 pattern_.end());
  pattern_built_ = true;
  ++pattern_epoch_;
}

std::vector<std::pair<std::size_t, std::size_t>>
MnaSystem::structural_pattern(AnalysisMode mode) const {
  const std::size_t n = num_unknowns();
  std::vector<std::pair<std::size_t, std::size_t>> pattern;

  const linalg::Vector x0 = initial_guess();
  linalg::Vector scratch_f(n, 0.0);
  linalg::Vector scratch_scale(n, 0.0);
  StampContext ctx(*this, x0, /*jacobian=*/nullptr, scratch_f, scratch_scale,
                   /*missed=*/nullptr);
  ctx.record_pattern(pattern);
  ctx.disable_residual();
  const double dt = mode == AnalysisMode::kTransient ? kSymbolicDt : 0.0;
  ctx.configure(mode, dt, dt, /*gmin=*/0.0, /*source_factor=*/1.0);
  stamp_devices(ctx, DeviceSet::kAll);

  std::sort(pattern.begin(), pattern.end());
  pattern.erase(std::unique(pattern.begin(), pattern.end()), pattern.end());
  return pattern;
}

void MnaSystem::grow_pattern(
    const std::vector<std::pair<std::size_t, std::size_t>>& missed) const {
  if (missed.empty()) return;
  pattern_.insert(pattern_.end(), missed.begin(), missed.end());
  std::sort(pattern_.begin(), pattern_.end());
  pattern_.erase(std::unique(pattern_.begin(), pattern_.end()),
                 pattern_.end());
  ++pattern_epoch_;
}

std::uint64_t MnaSystem::jacobian_pattern_epoch() const {
  ensure_pattern();
  return pattern_epoch_;
}

linalg::CsrMatrix MnaSystem::make_sparse_jacobian() const {
  ensure_pattern();
  return linalg::CsrMatrix(num_unknowns(), pattern_);
}

bool MnaSystem::assemble_sparse(
    const linalg::Vector& x, linalg::CsrMatrix& jacobian,
    linalg::Vector& residual, linalg::Vector& residual_scale,
    AnalysisMode mode, double time, double dt, double gmin,
    double source_factor, const std::vector<double>* linear_baseline) const {
  const std::size_t n = num_unknowns();
  require(x.size() == n, "assemble_sparse: iterate size mismatch");
  require(jacobian.size() == n, "assemble_sparse: jacobian size mismatch");
  residual.assign(n, 0.0);
  residual_scale.assign(n, 0.0);

  std::vector<std::pair<std::size_t, std::size_t>> missed;
  StampContext ctx(*this, x, &jacobian, residual, residual_scale, &missed);
  ctx.configure(mode, time, dt, gmin, source_factor);

  if (linear_baseline != nullptr) {
    require(linear_baseline->size() == jacobian.values().size(),
            "assemble_sparse: baseline/pattern mismatch");
    jacobian.values() = *linear_baseline;
    stamp_devices(ctx, DeviceSet::kNonlinear, /*hot=*/true);
    // Linear devices: residual still depends on the iterate, but their
    // Jacobian values are already in the baseline.
    StampContext rctx(*this, x, /*jacobian=*/nullptr, residual,
                      residual_scale, /*missed=*/nullptr);
    rctx.configure(mode, time, dt, gmin, source_factor);
    stamp_devices(rctx, DeviceSet::kLinear);
  } else {
    jacobian.zero_values();
    stamp_devices(ctx, DeviceSet::kAll, /*hot=*/true);
  }

  if (gmin > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (unknowns_[i].kind == UnknownKind::kNodeVoltage) {
        residual[i] += gmin * x[i];
        const std::size_t slot = jacobian.slot(i, i);
        if (slot != linalg::CsrMatrix::npos) {
          jacobian.values()[slot] += gmin;
        } else {
          missed.emplace_back(i, i);
        }
      }
    }
  }

  if (!missed.empty()) {
    grow_pattern(missed);
    return false;
  }
  return true;
}

bool MnaSystem::assemble_jacobian_sparse(
    const linalg::Vector& x, linalg::CsrMatrix& jacobian, AnalysisMode mode,
    double time, double dt, double gmin, double source_factor,
    const std::vector<double>* linear_baseline) const {
  const std::size_t n = num_unknowns();
  require(x.size() == n, "assemble_jacobian_sparse: iterate size mismatch");
  require(jacobian.size() == n,
          "assemble_jacobian_sparse: jacobian size mismatch");
  linalg::Vector scratch_f(n, 0.0);
  linalg::Vector scratch_scale(n, 0.0);

  std::vector<std::pair<std::size_t, std::size_t>> missed;
  StampContext ctx(*this, x, &jacobian, scratch_f, scratch_scale, &missed);
  ctx.disable_residual();
  ctx.configure(mode, time, dt, gmin, source_factor);

  if (linear_baseline != nullptr) {
    require(linear_baseline->size() == jacobian.values().size(),
            "assemble_jacobian_sparse: baseline/pattern mismatch");
    jacobian.values() = *linear_baseline;
    stamp_devices(ctx, DeviceSet::kNonlinear, /*hot=*/true);
  } else {
    jacobian.zero_values();
    stamp_devices(ctx, DeviceSet::kAll, /*hot=*/true);
  }

  if (gmin > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (unknowns_[i].kind == UnknownKind::kNodeVoltage) {
        const std::size_t slot = jacobian.slot(i, i);
        if (slot != linalg::CsrMatrix::npos) {
          jacobian.values()[slot] += gmin;
        } else {
          missed.emplace_back(i, i);
        }
      }
    }
  }

  if (!missed.empty()) {
    grow_pattern(missed);
    return false;
  }
  return true;
}

bool MnaSystem::assemble_linear_jacobian(const linalg::Vector& x,
                                         linalg::CsrMatrix& jacobian,
                                         std::vector<double>& baseline,
                                         AnalysisMode mode, double time,
                                         double dt) const {
  const std::size_t n = num_unknowns();
  require(x.size() == n, "assemble_linear_jacobian: iterate size mismatch");
  require(jacobian.size() == n,
          "assemble_linear_jacobian: jacobian size mismatch");
  linalg::Vector scratch_f(n, 0.0);
  linalg::Vector scratch_scale(n, 0.0);

  std::vector<std::pair<std::size_t, std::size_t>> missed;
  StampContext ctx(*this, x, &jacobian, scratch_f, scratch_scale, &missed);
  ctx.disable_residual();
  ctx.configure(mode, time, dt, 0.0, 1.0);

  jacobian.zero_values();
  stamp_devices(ctx, DeviceSet::kLinear);

  if (!missed.empty()) {
    grow_pattern(missed);
    return false;
  }
  baseline = jacobian.values();
  return true;
}

// ----------------------------------------------------- step lifecycle

void MnaSystem::begin_step(double time, double dt) {
  for (std::size_t i = 0; i < circuit_.num_devices(); ++i) {
    circuit_.device(i).begin_step(time, dt);
  }
}

void MnaSystem::accept(const linalg::Vector& x, AnalysisMode mode, double time,
                       double dt) {
  Solution solution(*this, x);
  AcceptContext ctx(solution, mode, time, dt);
  for (std::size_t i = 0; i < circuit_.num_devices(); ++i) {
    circuit_.device(i).accept_step(ctx);
  }
}

void MnaSystem::reset_devices() {
  for (std::size_t i = 0; i < circuit_.num_devices(); ++i) {
    circuit_.device(i).reset_state();
  }
  invalidate_bypass_caches();
}

void MnaSystem::notify_discontinuity() {
  for (std::size_t i = 0; i < circuit_.num_devices(); ++i) {
    circuit_.device(i).notify_discontinuity();
  }
}

std::vector<double> MnaSystem::breakpoints(double tstop) const {
  std::vector<double> points;
  for (std::size_t i = 0; i < circuit_.num_devices(); ++i) {
    circuit_.device(i).breakpoints(tstop, points);
  }
  std::sort(points.begin(), points.end());
  std::vector<double> out;
  for (double t : points) {
    if (t <= 0.0 || t > tstop) continue;
    // Relative-tolerance dedup: two sources sharing an edge produce
    // breakpoints a few ulps apart at large t, and a pair that survives
    // dedup leaves a zero-length step behind for the transient driver.
    if (!out.empty() && t - out.back() < std::max(1e-18, 1e-12 * t)) continue;
    out.push_back(t);
  }
  return out;
}

}  // namespace nemsim::spice
