#include "nemsim/spice/engine.h"

#include <algorithm>
#include <cmath>

#include "nemsim/util/error.h"

namespace nemsim::spice {

namespace {
// Default Newton clamps: node voltages move at most 0.5 V per iteration
// (keeps exponential device models in range); branch currents unlimited.
constexpr double kVoltageStepLimit = 0.5;
constexpr double kVoltageAbstol = 1e-9;
constexpr double kCurrentAbstol = 1e-12;
}  // namespace

// ---------------------------------------------------------------- Setup

UnknownId SetupContext::add_branch_current(const std::string& name) {
  UnknownInfo info;
  info.name = "i(" + name + ")";
  info.kind = UnknownKind::kBranchCurrent;
  info.max_newton_step = 0.0;
  info.abstol = kCurrentAbstol;
  info.row_abstol = kVoltageAbstol;  // branch rows are KVL equations
  return system_.allocate_unknown(std::move(info));
}

UnknownId SetupContext::add_internal(const std::string& name, double abstol,
                                     double row_abstol, double max_newton_step,
                                     double initial_guess) {
  UnknownInfo info;
  info.name = name;
  info.kind = UnknownKind::kInternal;
  info.abstol = abstol;
  info.row_abstol = row_abstol;
  info.max_newton_step = max_newton_step;
  info.initial_guess = initial_guess;
  return system_.allocate_unknown(std::move(info));
}

// ------------------------------------------------------------- Solution

double Solution::v(NodeId node) const {
  if (node.is_ground()) return 0.0;
  return (*x_)[system_->unknown_of(node).index];
}

double Solution::x(UnknownId unknown) const {
  require(unknown.valid(), "Solution::x: invalid unknown");
  return (*x_)[unknown.index];
}

// --------------------------------------------------------- StampContext

StampContext::StampContext(const MnaSystem& system, const linalg::Vector& x,
                           linalg::Matrix& jacobian, linalg::Vector& residual,
                           linalg::Vector& residual_scale)
    : system_(system),
      x_(x),
      jacobian_(jacobian),
      residual_(residual),
      residual_scale_(residual_scale) {}

void StampContext::configure(AnalysisMode mode, double time, double dt,
                             double gmin, double source_factor) {
  mode_ = mode;
  time_ = time;
  dt_ = dt;
  gmin_ = gmin;
  source_factor_ = source_factor;
}

double StampContext::v(NodeId node) const {
  if (node.is_ground()) return 0.0;
  return x_[system_.unknown_of(node).index];
}

double StampContext::x(UnknownId unknown) const {
  require(unknown.valid(), "StampContext::x: invalid unknown");
  return x_[unknown.index];
}

void StampContext::raw_f(UnknownId eq, double value) {
  if (!eq.valid()) return;  // ground row: dropped
  residual_[eq.index] += value;
  residual_scale_[eq.index] += std::abs(value);
}

void StampContext::raw_J(UnknownId eq, UnknownId var, double value) {
  if (!eq.valid() || !var.valid()) return;
  jacobian_(eq.index, var.index) += value;
}

void StampContext::add_f(NodeId eq, double current) {
  raw_f(system_.unknown_of(eq), current);
}

void StampContext::add_f(UnknownId eq, double value) { raw_f(eq, value); }

void StampContext::add_J(NodeId eq, NodeId var, double dfdx) {
  raw_J(system_.unknown_of(eq), system_.unknown_of(var), dfdx);
}

void StampContext::add_J(NodeId eq, UnknownId var, double dfdx) {
  raw_J(system_.unknown_of(eq), var, dfdx);
}

void StampContext::add_J(UnknownId eq, NodeId var, double dfdx) {
  raw_J(eq, system_.unknown_of(var), dfdx);
}

void StampContext::add_J(UnknownId eq, UnknownId var, double dfdx) {
  raw_J(eq, var, dfdx);
}

// ------------------------------------------------------------ MnaSystem

MnaSystem::MnaSystem(Circuit& circuit) : circuit_(circuit) {
  // Node voltages first: node i (1-based) -> unknown i-1.
  unknowns_.reserve(circuit.num_nodes() - 1);
  for (std::size_t n = 1; n < circuit.num_nodes(); ++n) {
    UnknownInfo info;
    info.name = "v(" + circuit.node_name(NodeId{n}) + ")";
    info.kind = UnknownKind::kNodeVoltage;
    info.max_newton_step = kVoltageStepLimit;
    info.abstol = kVoltageAbstol;
    info.row_abstol = kCurrentAbstol;  // node rows are KCL equations
    unknowns_.push_back(std::move(info));
  }
  SetupContext setup(*this);
  for (std::size_t i = 0; i < circuit.num_devices(); ++i) {
    circuit.device(i).setup(setup);
  }
}

UnknownId MnaSystem::unknown_of(NodeId node) const {
  if (node.is_ground()) return kNoUnknown;
  require(node.index < circuit_.num_nodes(), "unknown_of: node out of range");
  return UnknownId{node.index - 1};
}

UnknownId MnaSystem::unknown_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < unknowns_.size(); ++i) {
    if (unknowns_[i].name == name) return UnknownId{i};
  }
  throw InvalidArgument("unknown signal '" + name + "'");
}

bool MnaSystem::has_unknown(const std::string& name) const {
  for (const auto& u : unknowns_) {
    if (u.name == name) return true;
  }
  return false;
}

UnknownId MnaSystem::allocate_unknown(UnknownInfo info) {
  unknowns_.push_back(std::move(info));
  return UnknownId{unknowns_.size() - 1};
}

linalg::Vector MnaSystem::initial_guess() const {
  linalg::Vector x(num_unknowns(), 0.0);
  for (std::size_t i = 0; i < unknowns_.size(); ++i) {
    x[i] = unknowns_[i].initial_guess;
  }
  return x;
}

void MnaSystem::set_nodeset(NodeId node, double volts) {
  UnknownId u = unknown_of(node);
  require(u.valid(), "set_nodeset: cannot nodeset ground");
  unknowns_[u.index].initial_guess = volts;
}

void MnaSystem::clear_nodesets() {
  for (auto& u : unknowns_) {
    if (u.kind == UnknownKind::kNodeVoltage) u.initial_guess = 0.0;
  }
}

void MnaSystem::assemble(const linalg::Vector& x, linalg::Matrix& jacobian,
                         linalg::Vector& residual,
                         linalg::Vector& residual_scale, AnalysisMode mode,
                         double time, double dt, double gmin,
                         double source_factor) const {
  const std::size_t n = num_unknowns();
  require(x.size() == n, "assemble: iterate size mismatch");
  jacobian.reset(n, n);
  residual.assign(n, 0.0);
  residual_scale.assign(n, 0.0);

  StampContext ctx(*this, x, jacobian, residual, residual_scale);
  ctx.configure(mode, time, dt, gmin, source_factor);
  for (std::size_t i = 0; i < circuit_.num_devices(); ++i) {
    circuit_.device(i).stamp(ctx);
  }

  if (gmin > 0.0) {
    // Homotopy shunt from every node to ground; does not enter the scale
    // so convergence is still judged against physical currents.
    for (std::size_t i = 0; i < n; ++i) {
      if (unknowns_[i].kind == UnknownKind::kNodeVoltage) {
        residual[i] += gmin * x[i];
        jacobian(i, i) += gmin;
      }
    }
  }
}

void MnaSystem::begin_step(double time, double dt) {
  for (std::size_t i = 0; i < circuit_.num_devices(); ++i) {
    circuit_.device(i).begin_step(time, dt);
  }
}

void MnaSystem::accept(const linalg::Vector& x, AnalysisMode mode, double time,
                       double dt) {
  Solution solution(*this, x);
  AcceptContext ctx(solution, mode, time, dt);
  for (std::size_t i = 0; i < circuit_.num_devices(); ++i) {
    circuit_.device(i).accept_step(ctx);
  }
}

void MnaSystem::reset_devices() {
  for (std::size_t i = 0; i < circuit_.num_devices(); ++i) {
    circuit_.device(i).reset_state();
  }
}

void MnaSystem::notify_discontinuity() {
  for (std::size_t i = 0; i < circuit_.num_devices(); ++i) {
    circuit_.device(i).notify_discontinuity();
  }
}

std::vector<double> MnaSystem::breakpoints(double tstop) const {
  std::vector<double> points;
  for (std::size_t i = 0; i < circuit_.num_devices(); ++i) {
    circuit_.device(i).breakpoints(tstop, points);
  }
  std::sort(points.begin(), points.end());
  std::vector<double> out;
  for (double t : points) {
    if (t <= 0.0 || t > tstop) continue;
    if (!out.empty() && t - out.back() < 1e-18) continue;
    out.push_back(t);
  }
  return out;
}

}  // namespace nemsim::spice
