#include "nemsim/spice/kernels.h"

#include "nemsim/spice/engine.h"

namespace nemsim::spice {

UnknownId KernelLayout::of(NodeId node) const {
  return system_.unknown_of(node);
}

// Default: no kernel support — the device stamps through the virtual
// path.  Concrete devices override in their own translation units.
void Device::kernel_descriptor(const KernelLayout& layout,
                               KernelDescriptor& out) const {
  (void)layout;
  (void)out;
}

}  // namespace nemsim::spice
