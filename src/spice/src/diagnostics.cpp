#include "nemsim/spice/diagnostics.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "nemsim/spice/netlist_export.h"
#include "nemsim/spice/waveform.h"
#include "nemsim/util/logging.h"

namespace nemsim::spice {

namespace {

/// Largest histogram size; solves at/above this land in the last bucket.
constexpr std::size_t kHistogramBuckets = 64;

const char* stage_kind_name(SteppingStageRecord::Kind kind) {
  switch (kind) {
    case SteppingStageRecord::Kind::kPlain: return "plain";
    case SteppingStageRecord::Kind::kGminStep: return "gmin";
    case SteppingStageRecord::Kind::kSourceStep: return "source";
  }
  return "?";
}

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void RunReport::record_newton_iterations(int iterations) {
  if (iterations < 0) return;
  const std::size_t bucket =
      std::min<std::size_t>(static_cast<std::size_t>(iterations),
                            kHistogramBuckets - 1);
  if (newton_iteration_histogram.size() <= bucket) {
    newton_iteration_histogram.resize(bucket + 1, 0);
  }
  ++newton_iteration_histogram[bucket];
}

void RunReport::add_note(const std::string& note) {
  if (notes.size() < kMaxRecords) notes.push_back(note);
}

std::size_t RunReport::stage_count(SteppingStageRecord::Kind kind) const {
  return static_cast<std::size_t>(
      std::count_if(stages.begin(), stages.end(),
                    [kind](const SteppingStageRecord& s) {
                      return s.kind == kind;
                    }));
}

int RunReport::stage_iterations_total() const {
  int total = 0;
  for (const SteppingStageRecord& s : stages) total += s.iterations;
  return total;
}

void RunReport::reset() {
  analysis.clear();
  newton = NewtonStats{};
  stages.clear();
  newton_iteration_histogram.clear();
  accepted_steps = 0;
  newton_failures = 0;
  lte_reject_count = 0;
  min_dt = 0.0;
  max_dt = 0.0;
  lte_rejects.clear();
  step_failures.clear();
  points = 0;
  failed_points = 0;
  notes.clear();
  lint_findings.clear();
  analyze_findings.clear();
  metrics.clear();
}

std::string RunReport::summary() const {
  std::ostringstream os;
  os << "RunReport[" << (analysis.empty() ? "?" : analysis) << "]"
     << " newton_total_iters=" << newton.total_iterations
     << " assembles=" << newton.assembles
     << " factorizations=" << newton.factorizations
     << " reuses=" << newton.factorization_reuses
     << (newton.used_sparse ? " sparse" : " dense");
  if (newton.bypassed_evals > 0 || newton.stale_jacobian_solves > 0) {
    os << " nl_evals=" << newton.nonlinear_evals
       << " bypassed=" << newton.bypassed_evals
       << " bypass_hit_rate=" << newton.bypass_hit_rate()
       << " stale_solves=" << newton.stale_jacobian_solves
       << " forced_refreshes=" << newton.forced_refreshes;
  }
  if (!newton.kernel_lane_evals.empty()) {
    os << " kernels[";
    for (std::size_t i = 0; i < newton.kernel_lane_evals.size(); ++i) {
      os << (i ? " " : "") << newton.kernel_lane_evals[i].first << "="
         << newton.kernel_lane_evals[i].second;
    }
    os << "]";
  }
  if (!stages.empty()) {
    os << " stages[plain=" << stage_count(SteppingStageRecord::Kind::kPlain)
       << " gmin=" << stage_count(SteppingStageRecord::Kind::kGminStep)
       << " source=" << stage_count(SteppingStageRecord::Kind::kSourceStep)
       << "]";
  }
  if (accepted_steps > 0 || newton_failures > 0 || lte_reject_count > 0) {
    os << " steps=" << accepted_steps
       << " newton_failures=" << newton_failures
       << " lte_rejects=" << lte_reject_count
       << " dt=[" << min_dt << "," << max_dt << "]";
  }
  if (points > 0) {
    os << " points=" << points << " failed=" << failed_points;
  }
  const auto findings_block = [&os](const char* label,
                                    const std::vector<lint::LintFinding>& v) {
    if (v.empty()) return;
    std::size_t errors = 0, warnings = 0, hints = 0;
    for (const auto& f : v) {
      switch (f.severity) {
        case lint::LintSeverity::kError: ++errors; break;
        case lint::LintSeverity::kWarning: ++warnings; break;
        case lint::LintSeverity::kHint: ++hints; break;
      }
    }
    os << " " << label << "[errors=" << errors << " warnings=" << warnings
       << " hints=" << hints << "]";
  };
  findings_block("lint", lint_findings);
  findings_block("analyze", analyze_findings);
  for (const auto& [name, entry] : metrics.snapshot()) {
    os << " " << name << "=";
    if (entry.seconds > 0.0) {
      os << entry.seconds << "s";
    } else {
      os << entry.count;
    }
  }
  os << "\n";
  return os.str();
}

void RunReport::write_json(std::ostream& os) const {
  const auto saved_precision = os.precision(15);
  os << "{\n  \"analysis\": ";
  json_escape(os, analysis);
  os << ",\n  \"newton\": {"
     << "\"iterations\": " << newton.iterations
     << ", \"total_iterations\": " << newton.total_iterations
     << ", \"gmin_steps\": " << newton.gmin_steps
     << ", \"source_steps\": " << newton.source_steps
     << ", \"assembles\": " << newton.assembles
     << ", \"residual_assembles\": " << newton.residual_assembles
     << ", \"factorizations\": " << newton.factorizations
     << ", \"factorization_reuses\": " << newton.factorization_reuses
     << ", \"nonlinear_evals\": " << newton.nonlinear_evals
     << ", \"bypassed_evals\": " << newton.bypassed_evals
     << ", \"bypass_hit_rate\": " << newton.bypass_hit_rate()
     << ", \"stale_jacobian_solves\": " << newton.stale_jacobian_solves
     << ", \"forced_refreshes\": " << newton.forced_refreshes
     << ", \"used_sparse\": " << (newton.used_sparse ? "true" : "false")
     << ", \"kernel_lane_evals\": {";
  for (std::size_t i = 0; i < newton.kernel_lane_evals.size(); ++i) {
    os << (i ? ", " : "");
    json_escape(os, newton.kernel_lane_evals[i].first);
    os << ": " << newton.kernel_lane_evals[i].second;
  }
  os << "}}";

  os << ",\n  \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const SteppingStageRecord& s = stages[i];
    os << (i ? ", " : "") << "{\"kind\": \"" << stage_kind_name(s.kind)
       << "\", \"value\": " << s.value
       << ", \"iterations\": " << s.iterations
       << ", \"converged\": " << (s.converged ? "true" : "false") << "}";
  }
  os << "]";

  os << ",\n  \"newton_iteration_histogram\": [";
  for (std::size_t i = 0; i < newton_iteration_histogram.size(); ++i) {
    os << (i ? ", " : "") << newton_iteration_histogram[i];
  }
  os << "]";

  os << ",\n  \"transient\": {"
     << "\"accepted_steps\": " << accepted_steps
     << ", \"newton_failures\": " << newton_failures
     << ", \"lte_rejects\": " << lte_reject_count
     << ", \"min_dt\": " << min_dt << ", \"max_dt\": " << max_dt << "}";

  os << ",\n  \"lte_reject_locations\": [";
  for (std::size_t i = 0; i < lte_rejects.size(); ++i) {
    const LteRejectRecord& r = lte_rejects[i];
    os << (i ? ", " : "") << "{\"time\": " << r.time << ", \"dt\": " << r.dt
       << ", \"ratio\": " << r.ratio << ", \"worst\": ";
    json_escape(os, r.worst_name);
    os << "}";
  }
  os << "]";

  os << ",\n  \"step_failures\": [";
  for (std::size_t i = 0; i < step_failures.size(); ++i) {
    const StepFailureRecord& r = step_failures[i];
    os << (i ? ", " : "") << "{\"time\": " << r.time << ", \"dt\": " << r.dt
       << ", \"message\": ";
    json_escape(os, r.message);
    os << "}";
  }
  os << "]";

  os << ",\n  \"points\": " << points
     << ",\n  \"failed_points\": " << failed_points;

  os << ",\n  \"notes\": [";
  for (std::size_t i = 0; i < notes.size(); ++i) {
    os << (i ? ", " : "");
    json_escape(os, notes[i]);
  }
  os << "]";

  os << ",\n  \"lint_findings\": ";
  write_findings_json(os, lint_findings);
  os << ",\n  \"analyze_findings\": ";
  write_findings_json(os, analyze_findings);

  os << ",\n  \"metrics\": {";
  bool first = true;
  for (const auto& [name, entry] : metrics.snapshot()) {
    os << (first ? "" : ", ");
    first = false;
    json_escape(os, name);
    os << ": {\"count\": " << entry.count
       << ", \"seconds\": " << entry.seconds << "}";
  }
  os << "}\n}\n";
  os.precision(saved_precision);
}

void write_findings_json(std::ostream& os,
                         const std::vector<lint::LintFinding>& findings) {
  os << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const lint::LintFinding& f = findings[i];
    os << (i ? ", " : "") << "{\"severity\": \""
       << lint::lint_severity_name(f.severity) << "\", \"rule\": ";
    json_escape(os, f.rule);
    os << ", \"subject\": ";
    json_escape(os, f.subject);
    os << ", \"message\": ";
    json_escape(os, f.message);
    os << "}";
  }
  os << "]";
}

std::vector<std::string> write_failure_forensics(
    const ForensicsOptions& options, const Circuit& circuit,
    const Waveform* wave, const std::string& what,
    const ConvergenceDiagnostics* diag, const lint::LintReport* lint) {
  std::vector<std::string> written;
  if (!options.enabled) return written;
  try {
    namespace fs = std::filesystem;
    const fs::path dir(options.directory);
    fs::create_directories(dir);
    const std::string prefix = (dir / options.tag).string();

    {
      const std::string path = prefix + ".failure.txt";
      std::ofstream os(path);
      os << what << "\n";
      if (diag != nullptr) os << diag->describe() << "\n";
      if (lint != nullptr && !lint->findings.empty()) {
        os << "\nlint findings (structural analysis of the circuit):\n"
           << lint->summary() << "\n";
      }
      if (os) written.push_back(path);
    }
    {
      const std::string path = prefix + ".netlist.sp";
      std::ofstream os(path);
      export_netlist(circuit, os, "forensics snapshot: " + options.tag);
      if (os) written.push_back(path);
    }
    if (wave != nullptr && !wave->empty()) {
      const std::string path = prefix + ".wave.csv";
      std::ofstream os(path);
      os.precision(17);  // round-trippable doubles for exact repro
      // Recent window only: the samples leading up to the failure are
      // what a repro needs; full traces can be arbitrarily large.
      const std::size_t n = wave->num_samples();
      const std::size_t first =
          n > options.window_samples ? n - options.window_samples : 0;
      os << "t";
      for (const std::string& name : wave->signal_names()) os << "," << name;
      os << "\n";
      for (std::size_t k = first; k < n; ++k) {
        os << wave->times()[k];
        for (std::size_t s = 0; s < wave->num_signals(); ++s) {
          os << "," << wave->sample(s, k);
        }
        os << "\n";
      }
      if (os) written.push_back(path);
    }
    log_warn("forensics: wrote " + std::to_string(written.size()) +
             " file(s) under " + options.directory + " (tag " + options.tag +
             ")");
  } catch (const std::exception& e) {
    log_warn(std::string("forensics: dump failed: ") + e.what());
  }
  return written;
}

}  // namespace nemsim::spice
