#include "nemsim/spice/compile.h"

#include <utility>

namespace nemsim::spice {

CompiledCircuit compile(Circuit&& circuit, const CompileOptions& options) {
  CompiledCircuit compiled;
  compiled.circuit_ = std::make_unique<Circuit>(std::move(circuit));
  compiled.system_ = std::make_unique<MnaSystem>(*compiled.circuit_);
  compiled.newton_ = options.newton;

  // One-time gates; per-run gates are forced off in prepare_run.
  compiled.lint_findings_ =
      lint::lint_gate(*compiled.system_, options.lint, options.report);
  compiled.analyze_findings_ = analyze::analyze_gate(
      *compiled.circuit_, options.analyze, options.report);

  // Freeze the Jacobian sparsity pattern now: the structural stamping
  // pass is deterministic in the device list, so prebuilding it here is
  // bitwise-neutral and every variant run skips the lazy build.
  (void)compiled.system_->make_sparse_jacobian();

  // From here on the device list and unknown table must stay valid.
  compiled.circuit_->freeze_structure();
  compiled.base_params_ = compiled.circuit_->param_bank().snapshot();

  if (options.reuse_newton_workspace) {
    compiled.shared_solver_ =
        std::make_unique<NewtonSolver>(*compiled.system_, options.newton);
  }
  return compiled;
}

void CompiledCircuit::set_overlay(const ParamPatch& patch) {
  ParamBank& bank = circuit_->param_bank();
  bank.restore(base_params_);
  bank.apply(patch);
  circuit_->notify_params_changed();
}

void CompiledCircuit::clear_overlay() {
  circuit_->param_bank().restore(base_params_);
  circuit_->notify_params_changed();
}

void CompiledCircuit::prepare_run(AnalysisCommon& common) {
  common.newton = newton_;
  common.lint = lint::LintMode::kOff;
  common.analyze = lint::LintMode::kOff;
  common.shared_solver = shared_solver_.get();
  // Per-run state ownership: committed device state (companion history,
  // NEMS branch memory) never leaks from one run into the next.
  system_->reset_devices();
}

OpResult CompiledCircuit::run_op(OpOptions options) {
  prepare_run(options);
  return operating_point(*system_, options);
}

Waveform CompiledCircuit::run_transient(TransientOptions options) {
  prepare_run(options);
  auto [it, inserted] = breakpoint_memo_.try_emplace(options.tstop);
  if (inserted) it->second = system_->breakpoints(options.tstop);
  options.precomputed_breakpoints = &it->second;
  return transient(*system_, options);
}

Waveform CompiledCircuit::run_dc_sweep(
    const std::function<void(double)>& set_param,
    std::span<const double> points, DcSweepOptions options) {
  prepare_run(options);
  return dc_sweep(*system_, set_param, points, options);
}

AcResult CompiledCircuit::run_ac(std::span<const double> frequencies,
                                 AcOptions options) {
  prepare_run(options);
  return ac_analysis(*system_, frequencies, options);
}

}  // namespace nemsim::spice
