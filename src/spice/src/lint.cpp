// nemsim::lint rule engine (see nemsim/spice/lint.h for the rule list).
#include "nemsim/spice/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <functional>
#include <map>
#include <numeric>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "nemsim/spice/circuit.h"
#include "nemsim/spice/diagnostics.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/subcircuit.h"
#include "nemsim/util/logging.h"

namespace nemsim::lint {

namespace {

using spice::Circuit;
using spice::DeviceTopology;
using spice::MnaSystem;
using spice::NodeId;
using EdgeKind = DeviceTopology::EdgeKind;

/// Union-find over node indices (path halving + union by size).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }

  /// Returns false when a and b were already in the same set (a cycle).
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

/// Per-node incidence counters accumulated from all device topologies.
struct NodeFacts {
  std::size_t terminals = 0;  ///< device-terminal attachments
  std::size_t edges = 0;      ///< incident edges of any kind
  std::size_t conductive = 0;
  std::size_t voltage = 0;
  std::size_t current = 0;
  std::size_t capacitive = 0;
};

/// Builds the report while enforcing the findings cap; the severity
/// counters keep counting past it.
class ReportBuilder {
 public:
  explicit ReportBuilder(const LintOptions& options) : options_(options) {}

  void add(LintSeverity severity, std::string rule, std::string subject,
           std::string message) {
    switch (severity) {
      case LintSeverity::kError: ++report_.errors; break;
      case LintSeverity::kWarning: ++report_.warnings; break;
      case LintSeverity::kHint: ++report_.hints; break;
    }
    if (report_.findings.size() < options_.max_findings) {
      report_.findings.push_back({severity, std::move(rule),
                                  std::move(subject), std::move(message)});
    }
  }

  LintReport take() {
    // Errors first, then warnings, then hints; stable within a tier so
    // rules keep their deliberate emission order.
    std::stable_sort(report_.findings.begin(), report_.findings.end(),
                     [](const LintFinding& a, const LintFinding& b) {
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     });
    return std::move(report_);
  }

 private:
  const LintOptions& options_;
  LintReport report_;
};

const char* edge_kind_name(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kConductive: return "conductive";
    case EdgeKind::kVoltage: return "voltage-defined";
    case EdgeKind::kCurrent: return "current-defined";
    case EdgeKind::kCapacitive: return "capacitive";
  }
  return "?";
}

/// The largest |V| any independent voltage source reaches over all time:
/// the best available notion of "the supply rail" for actuation checks.
double infer_supply_rail(const std::vector<DeviceTopology>& topologies) {
  double rail = 0.0;
  for (const auto& topo : topologies) {
    for (const auto& edge : topo.edges) {
      if (edge.kind == EdgeKind::kVoltage && edge.is_source) {
        rail = std::max(rail, edge.max_abs);
      }
    }
  }
  return rail;
}

/// Graph rules: reachability, voltage loops, current cutsets, dangling
/// and capacitive-only nodes, conflicting parallel sources.
/// `flagged_nodes` receives the indices of nodes with graph *errors* so
/// the MNA-pattern rules can skip re-reporting the same defect.
void run_graph_rules(const Circuit& circuit,
                     const std::vector<DeviceTopology>& topologies,
                     ReportBuilder& out,
                     std::unordered_set<std::size_t>& flagged_nodes) {
  const std::size_t num_nodes = circuit.num_nodes();
  std::vector<NodeFacts> facts(num_nodes);
  UnionFind dc_reach(num_nodes);     // conductive + voltage edges
  UnionFind full_reach(num_nodes);   // every edge kind
  UnionFind voltage_loops(num_nodes);

  for (std::size_t d = 0; d < topologies.size(); ++d) {
    const auto& topo = topologies[d];
    const std::string& dev_name = circuit.device(d).name();
    for (const auto& term : topo.terminals) {
      ++facts[term.node.index].terminals;
    }
    for (const auto& edge : topo.edges) {
      const std::size_t a = topo.terminals.at(edge.a).node.index;
      const std::size_t b = topo.terminals.at(edge.b).node.index;
      for (std::size_t n : {a, b}) {
        ++facts[n].edges;
        switch (edge.kind) {
          case EdgeKind::kConductive: ++facts[n].conductive; break;
          case EdgeKind::kVoltage: ++facts[n].voltage; break;
          case EdgeKind::kCurrent: ++facts[n].current; break;
          case EdgeKind::kCapacitive: ++facts[n].capacitive; break;
        }
      }
      full_reach.unite(a, b);
      if (edge.kind == EdgeKind::kConductive || edge.kind == EdgeKind::kVoltage) {
        dc_reach.unite(a, b);
      }
      if (edge.kind == EdgeKind::kVoltage) {
        // A voltage-defined branch closing a cycle of voltage-defined
        // branches fixes a KVL sum that is generically inconsistent (and
        // exactly singular even when consistent).  Inductors are DC
        // shorts, so they participate; a == b is the degenerate loop.
        if (!voltage_loops.unite(a, b)) {
          std::ostringstream msg;
          msg << "voltage-defined branch of '" << dev_name << "' between "
              << "nodes '" << circuit.node_name(NodeId{a}) << "' and '"
              << circuit.node_name(NodeId{b})
              << "' closes a loop of voltage-defined branches (voltage "
                 "sources / VCVS outputs / inductors, which are DC "
                 "shorts); the MNA system is singular";
          out.add(LintSeverity::kError, "voltage-loop", dev_name, msg.str());
        }
      }
    }
  }

  // Conflicting independent voltage sources on the same node pair.  The
  // loop rule already fires for any parallel pair; this names the value
  // conflict explicitly when there is one.
  std::map<std::pair<std::size_t, std::size_t>,
           std::vector<std::pair<std::string, double>>>
      sources_by_pair;
  for (std::size_t d = 0; d < topologies.size(); ++d) {
    for (const auto& edge : topologies[d].edges) {
      if (edge.kind != EdgeKind::kVoltage || !edge.is_source) continue;
      std::size_t a = topologies[d].terminals.at(edge.a).node.index;
      std::size_t b = topologies[d].terminals.at(edge.b).node.index;
      if (a > b) std::swap(a, b);
      sources_by_pair[{a, b}].push_back(
          {circuit.device(d).name(), edge.dc_value});
    }
  }
  for (const auto& [pair, sources] : sources_by_pair) {
    for (std::size_t i = 1; i < sources.size(); ++i) {
      if (sources[i].second != sources[0].second) {
        std::ostringstream msg;
        msg << "voltage sources '" << sources[0].first << "' ("
            << sources[0].second << " V) and '" << sources[i].first << "' ("
            << sources[i].second << " V) drive the same node pair '"
            << circuit.node_name(NodeId{pair.first}) << "'/'"
            << circuit.node_name(NodeId{pair.second})
            << "' with conflicting values";
        out.add(LintSeverity::kWarning, "parallel-voltage-sources",
                sources[i].first, msg.str());
      }
    }
  }

  // Per-node rules.  Ground (index 0) is exempt from all of them.
  const std::size_t ground = circuit.gnd().index;
  for (std::size_t n = 1; n < num_nodes; ++n) {
    const NodeFacts& f = facts[n];
    if (f.terminals == 0) continue;  // named but unused node: harmless
    const std::string& node_name = circuit.node_name(NodeId{n});

    if (f.edges > 0 && f.edges == f.current) {
      // Every incident branch prescribes its current, so KCL at this
      // node is an equation over constants and the node voltage appears
      // in no equation at all.
      std::ostringstream msg;
      msg << "node '" << node_name << "' is driven only by "
          << "current-defined branches (" << f.current
          << " attached); its KCL row fixes a sum of prescribed currents "
             "and its voltage is structurally undetermined";
      out.add(LintSeverity::kError, "current-cutset", node_name, msg.str());
      flagged_nodes.insert(n);
    } else if (!dc_reach.same(n, ground)) {
      if (f.capacitive > 0 && full_reach.same(n, ground)) {
        std::ostringstream msg;
        msg << "node '" << node_name
            << "' reaches ground only through capacitive couplings; its "
               "DC voltage exists only thanks to the gmin shunt and the "
               "operating point will lean on the homotopy ladder";
        out.add(LintSeverity::kWarning, "capacitive-only-node", node_name,
                msg.str());
      } else {
        std::ostringstream msg;
        msg << "node '" << node_name
            << "' has no conductive path to ground";
        if (f.edges == 0) {
          msg << " (only sensing terminals attach to it)";
        }
        msg << "; its voltage is structurally undetermined";
        out.add(LintSeverity::kError, "floating-node", node_name, msg.str());
        flagged_nodes.insert(n);
      }
    }

    if (f.terminals == 1) {
      const auto* only_edge_kind = [&]() -> const char* {
        // Find the single device terminal to name what dangles.
        for (std::size_t d = 0; d < topologies.size(); ++d) {
          for (const auto& edge : topologies[d].edges) {
            if (topologies[d].terminals.at(edge.a).node.index == n ||
                topologies[d].terminals.at(edge.b).node.index == n) {
              return edge_kind_name(edge.kind);
            }
          }
        }
        return nullptr;
      }();
      std::ostringstream msg;
      msg << "node '" << node_name << "' dangles: only one device "
          << "terminal attaches to it";
      if (only_edge_kind) msg << " (a " << only_edge_kind << " branch)";
      out.add(LintSeverity::kWarning, "dangling-node", node_name, msg.str());
    }
  }
}

/// MNA-pattern rules: zero rows/columns and the full structural rank
/// check (Kuhn's augmenting-path bipartite matching on the pattern).
void run_structural_rules(const MnaSystem& system, ReportBuilder& out,
                          const std::unordered_set<std::size_t>& flagged_nodes) {
  const std::size_t n = system.num_unknowns();
  if (n == 0) return;

  // Union of the OP and transient structural stamps: an entry present in
  // either mode counts (a capacitor fixes a transient row even though it
  // vanishes at DC — DC-only singularity is the graph rules' job).
  auto pattern = system.structural_pattern(spice::AnalysisMode::kDcOperatingPoint);
  {
    auto tran = system.structural_pattern(spice::AnalysisMode::kTransient);
    pattern.insert(pattern.end(), tran.begin(), tran.end());
    std::sort(pattern.begin(), pattern.end());
    pattern.erase(std::unique(pattern.begin(), pattern.end()), pattern.end());
  }

  // Map each node-voltage unknown back to its node index so defects
  // already reported by the graph rules are not re-reported here.
  std::vector<std::size_t> unknown_to_node(n, SIZE_MAX);
  const Circuit& circuit = system.circuit();
  for (std::size_t node = 1; node < circuit.num_nodes(); ++node) {
    const spice::UnknownId u = system.unknown_of(NodeId{node});
    if (u.valid()) unknown_to_node[u.index] = node;
  }
  auto already_flagged = [&](std::size_t unknown) {
    return unknown_to_node[unknown] != SIZE_MAX &&
           flagged_nodes.count(unknown_to_node[unknown]) != 0;
  };

  std::vector<std::vector<std::size_t>> adj(n);  // row -> cols
  std::vector<std::size_t> row_entries(n, 0), col_entries(n, 0);
  for (const auto& [row, col] : pattern) {
    adj[row].push_back(col);
    ++row_entries[row];
    ++col_entries[col];
  }

  std::vector<bool> degenerate(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (row_entries[i] == 0) {
      degenerate[i] = true;
      if (already_flagged(i)) continue;
      std::ostringstream msg;
      msg << "equation row of unknown '" << system.unknown_info(i).name
          << "' has no structural entries: nothing the devices stamp "
             "constrains it";
      out.add(LintSeverity::kError, "zero-mna-row",
              system.unknown_info(i).name, msg.str());
    }
    if (col_entries[i] == 0) {
      degenerate[i] = true;
      if (already_flagged(i)) continue;
      std::ostringstream msg;
      msg << "unknown '" << system.unknown_info(i).name
          << "' appears in no equation: no device stamp depends on it";
      out.add(LintSeverity::kError, "zero-mna-column",
              system.unknown_info(i).name, msg.str());
    }
  }

  // Structural rank via maximum bipartite matching (Kuhn's algorithm).
  // A perfect matching of rows to columns is necessary for the Jacobian
  // to be generically nonsingular; its absence is a singularity no
  // numeric pivoting can fix.
  std::vector<std::size_t> match_col(n, SIZE_MAX);  // col -> row
  std::vector<bool> visited(n);
  std::function<bool(std::size_t)> try_match = [&](std::size_t row) -> bool {
    for (std::size_t col : adj[row]) {
      if (visited[col]) continue;
      visited[col] = true;
      if (match_col[col] == SIZE_MAX || try_match(match_col[col])) {
        match_col[col] = row;
        return true;
      }
    }
    return false;
  };

  std::vector<std::size_t> unmatched_rows;
  std::size_t matched = 0;
  for (std::size_t row = 0; row < n; ++row) {
    std::fill(visited.begin(), visited.end(), false);
    if (try_match(row)) {
      ++matched;
    } else {
      unmatched_rows.push_back(row);
    }
  }

  // Report the rank deficit once, naming a few unmatched unknowns that
  // were not already explained by a zero row/column or a graph error.
  std::vector<std::string> fresh;
  for (std::size_t row : unmatched_rows) {
    if (degenerate[row] || already_flagged(row)) continue;
    fresh.push_back(system.unknown_info(row).name);
  }
  if (!fresh.empty()) {
    constexpr std::size_t kMaxNamed = 4;
    std::ostringstream msg;
    msg << "MNA structural rank is " << matched << " of " << n
        << ": no assignment of equations to unknowns covers ";
    for (std::size_t i = 0; i < fresh.size() && i < kMaxNamed; ++i) {
      if (i) msg << ", ";
      msg << "'" << fresh[i] << "'";
    }
    if (fresh.size() > kMaxNamed) {
      msg << " and " << (fresh.size() - kMaxNamed) << " more";
    }
    msg << "; the Jacobian is singular for every numeric value";
    out.add(LintSeverity::kError, "structural-rank", fresh.front(), msg.str());
  }
}

/// Hint: device names that will not survive export -> parse.  The
/// netlist parser dispatches on the first letter of the element name, so
/// a Mosfet named "AL" comes back as something else entirely (or not at
/// all); whitespace never survives tokenization.
void run_name_rules(const Circuit& circuit,
                    const std::vector<DeviceTopology>& topologies,
                    ReportBuilder& out) {
  for (std::size_t d = 0; d < topologies.size(); ++d) {
    const char letter = topologies[d].element_letter;
    if (letter == 0) continue;  // no netlist form, nothing to round-trip
    // Devices elaborated from a subcircuit round-trip through the
    // .subckt body and the instance's X card, not through their scoped
    // global name, so the first-letter convention does not apply.
    if (circuit.device_instance(d) != nullptr) continue;
    const std::string& name = circuit.device(d).name();
    const bool bad_first =
        name.empty() ||
        std::toupper(static_cast<unsigned char>(name[0])) != letter;
    const bool has_space =
        std::any_of(name.begin(), name.end(), [](unsigned char c) {
          return std::isspace(c) != 0;
        });
    if (!bad_first && !has_space) continue;
    std::ostringstream msg;
    if (has_space) {
      msg << "device name '" << name << "' contains whitespace and cannot "
          << "survive netlist tokenization";
    } else {
      msg << "device name '" << name << "' does not start with its SPICE "
          << "element letter '" << letter << "'; re-parsing an exported "
          << "netlist would dispatch it as a different element";
    }
    out.add(LintSeverity::kHint, "name-convention", name, msg.str());
  }
}

/// Hierarchy rule: a subcircuit instance port that nothing outside the
/// instance attaches to (the cell's terminal dangles into thin air), or
/// that the subcircuit body itself never uses (a dead formal).  Both are
/// almost always wiring mistakes at the instantiation site.
void run_hierarchy_rules(const Circuit& circuit,
                         const std::vector<DeviceTopology>& topologies,
                         ReportBuilder& out) {
  if (circuit.instances().empty()) return;

  // Terminal attachments per node, as (device index) multiset.
  std::vector<std::vector<std::size_t>> attached(circuit.num_nodes());
  for (std::size_t d = 0; d < topologies.size(); ++d) {
    for (const auto& term : topologies[d].terminals) {
      attached[term.node.index].push_back(d);
    }
  }

  for (const auto& rec : circuit.instances()) {
    const auto def_it = circuit.subckt_defs().find(rec.subckt);
    for (std::size_t p = 0; p < rec.ports.size(); ++p) {
      const NodeId node = rec.ports[p];
      if (node.is_ground()) continue;  // ground is connected by definition
      // Nodes from Circuit::internal_node are declared private: a cell
      // output deliberately left unloaded (chain tail, probe-only wire).
      if (circuit.node_is_internal(node)) continue;
      std::size_t inside = 0, outside = 0;
      for (std::size_t d : attached[node.index]) {
        const bool in_range = d >= rec.first_device &&
                              d < rec.first_device + rec.num_devices;
        (in_range ? inside : outside) += 1;
      }
      const std::string formal =
          def_it != circuit.subckt_defs().end() &&
                  p < def_it->second->ports().size()
              ? def_it->second->ports()[p]
              : std::to_string(p);
      const std::string& node_name = circuit.node_name(node);
      if (outside == 0) {
        std::ostringstream msg;
        msg << "port '" << formal << "' of subcircuit instance '" << rec.name
            << "' (" << rec.subckt << ") is bound to node '" << node_name
            << "', which nothing outside the instance connects to";
        out.add(LintSeverity::kWarning, "unconnected-subckt-port", rec.name,
                msg.str());
      } else if (inside == 0) {
        std::ostringstream msg;
        msg << "port '" << formal << "' of subcircuit instance '" << rec.name
            << "' (" << rec.subckt << ") is never used inside the "
            << "subcircuit body; node '" << node_name
            << "' only connects through the other side";
        out.add(LintSeverity::kWarning, "unconnected-subckt-port", rec.name,
                msg.str());
      }
    }
  }
}

}  // namespace

const char* lint_severity_name(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kHint: return "hint";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kError: return "error";
  }
  return "?";
}

std::string LintFinding::to_string() const {
  std::string line = lint_severity_name(severity);
  line += '[';
  line += rule;
  line += "] ";
  line += subject;
  line += ": ";
  line += message;
  return line;
}

std::string LintReport::summary() const {
  std::ostringstream os;
  for (const auto& finding : findings) {
    os << finding.to_string() << '\n';
  }
  os << "lint: " << errors << " error(s), " << warnings << " warning(s), "
     << hints << " hint(s)";
  if (findings.size() < errors + warnings + hints) {
    os << " (" << findings.size() << " shown)";
  }
  return os.str();
}

LintReport lint_system(const MnaSystem& system, const LintOptions& options) {
  const Circuit& circuit = system.circuit();
  ReportBuilder out(options);

  std::vector<DeviceTopology> topologies;
  topologies.reserve(circuit.num_devices());
  for (std::size_t d = 0; d < circuit.num_devices(); ++d) {
    topologies.push_back(circuit.device(d).topology());
  }

  // Device-local checks, fed the circuit-level supply rail.
  DeviceCheckContext ctx;
  ctx.supply_rail = infer_supply_rail(topologies);
  std::vector<LintFinding> device_findings;
  for (std::size_t d = 0; d < circuit.num_devices(); ++d) {
    device_findings.clear();
    circuit.device(d).self_check(ctx, device_findings);
    for (auto& finding : device_findings) {
      if (finding.subject.empty()) finding.subject = circuit.device(d).name();
      out.add(finding.severity, std::move(finding.rule),
              std::move(finding.subject), std::move(finding.message));
    }
  }

  std::unordered_set<std::size_t> flagged_nodes;
  run_graph_rules(circuit, topologies, out, flagged_nodes);
  if (options.structural_checks) {
    run_structural_rules(system, out, flagged_nodes);
  }
  run_hierarchy_rules(circuit, topologies, out);
  run_name_rules(circuit, topologies, out);

  return out.take();
}

LintReport lint_circuit(Circuit& circuit, const LintOptions& options) {
  MnaSystem system(circuit);
  return lint_system(system, options);
}

LintReport lint_gate(const MnaSystem& system, LintMode mode,
                     spice::RunReport* run_report) {
  if (mode == LintMode::kOff) return {};
  LintReport report = lint_system(system);
  if (run_report) {
    run_report->lint_findings.insert(run_report->lint_findings.end(),
                                     report.findings.begin(),
                                     report.findings.end());
  }
  // Hints stay silent here (they are embedded in the run report): the
  // shipped experiment circuits deliberately use the paper's device
  // names ("AL", "INV0.P"), and a warn-level line on every analysis of
  // a perfectly simulable circuit would train users to ignore the log.
  if (!report.clean()) {
    log_warn("lint: circuit has findings\n" + report.summary());
  }
  if (mode == LintMode::kStrict && report.has_errors()) {
    std::string what = "lint rejected circuit (strict mode): " +
                       std::to_string(report.errors) + " error(s); first: " +
                       report.findings.front().to_string();
    throw LintError(what, std::move(report));
  }
  return report;
}

}  // namespace nemsim::lint
