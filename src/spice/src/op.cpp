#include "nemsim/spice/op.h"

#include <optional>

#include "nemsim/spice/analyze.h"

namespace nemsim::spice {

OpResult::OpResult(const MnaSystem& system, linalg::Vector x)
    : system_(&system), x_(std::move(x)) {
  // Copy the name tables so lookups survive the system (and circuit)
  // going out of scope; only solution() still needs the live system.
  const Circuit& ckt = system.circuit();
  node_unknown_.resize(ckt.num_nodes(), -1);
  for (std::size_t n = 0; n < ckt.num_nodes(); ++n) {
    const NodeId node{n};
    node_index_.emplace(ckt.node_name(node), n);
    if (node.is_ground()) continue;
    const UnknownId u = system.unknown_of(node);
    if (u.valid()) node_unknown_[n] = static_cast<std::ptrdiff_t>(u.index);
  }
  for (std::size_t i = 0; i < system.num_unknowns(); ++i) {
    unknown_index_.emplace(system.unknown_info(i).name, i);
  }
}

double OpResult::v(NodeId node) const {
  require(node.index < node_unknown_.size(), "OpResult::v: node out of range");
  const std::ptrdiff_t u = node_unknown_[node.index];
  return u < 0 ? 0.0 : x_[static_cast<std::size_t>(u)];
}

double OpResult::v(const std::string& node_name) const {
  auto it = node_index_.find(node_name);
  if (it == node_index_.end()) {
    throw NetlistError("unknown node '" + node_name + "'");
  }
  return v(NodeId{it->second});
}

double OpResult::value(const std::string& name) const {
  auto it = unknown_index_.find(name);
  if (it == unknown_index_.end()) {
    throw InvalidArgument("unknown signal '" + name + "'");
  }
  return x_[it->second];
}

double OpResult::x(UnknownId unknown) const {
  require(unknown.valid(), "OpResult::x: invalid unknown");
  return x_[unknown.index];
}

OpResult operating_point(MnaSystem& system, const OpOptions& options) {
  return operating_point_from(system, system.initial_guess(), options);
}

OpResult operating_point_from(MnaSystem& system, const linalg::Vector& x0,
                              const OpOptions& options) {
  RunReport* report = options.report;
  // Strict mode throws LintError here — before the solver is even
  // constructed, so a structurally singular circuit never enters the
  // gmin/source homotopy ladder.
  const lint::LintReport lint_report =
      lint::lint_gate(system, options.lint, report);
  // Semantic gate (interval reachability, operating regions); strict
  // mode rejects on warnings here for the same fail-before-Newton reason.
  analyze::analyze_gate(system.circuit(), options.analyze, report);
  std::optional<NewtonSolver> local_newton;
  if (!options.shared_solver) local_newton.emplace(system, options.newton);
  NewtonSolver& newton =
      options.shared_solver ? *options.shared_solver : *local_newton;
  linalg::Vector x;
  try {
    util::ScopedTimer timer(report ? &report->metrics : nullptr, "phase.op");
    if (report) {
      if (report->analysis.empty()) report->analysis = "op";
      // Solve into a local stats block so the report and the caller's
      // stats both see this solve exactly once.
      NewtonStats local;
      x = newton.solve(x0, AnalysisMode::kDcOperatingPoint, /*time=*/0.0,
                       /*dt=*/0.0, &local, report);
      report->newton.merge(local);
      report->record_newton_iterations(local.iterations);
      if (options.stats) options.stats->merge(local);
    } else {
      x = newton.solve(x0, AnalysisMode::kDcOperatingPoint, /*time=*/0.0,
                       /*dt=*/0.0, options.stats);
    }
  } catch (const ConvergenceError& e) {
    if (report) ++report->newton_failures;
    // Convergence failures often have a structural cause lint can name;
    // attach its findings to the dump.  With the gate off, the analyzer
    // runs here only for the dump (the failure is being thrown anyway,
    // so the solve itself stays untouched).
    lint::LintReport forensic_lint;
    const lint::LintReport* lint_ptr = nullptr;
    if (options.forensics.enabled) {
      forensic_lint = options.lint == lint::LintMode::kOff
                          ? lint::lint_system(system)
                          : lint_report;
      lint_ptr = &forensic_lint;
    }
    write_failure_forensics(options.forensics, system.circuit(),
                            /*wave=*/nullptr, e.what(), e.diagnostics(),
                            lint_ptr);
    throw;
  }
  system.accept(x, AnalysisMode::kDcOperatingPoint, 0.0, 0.0);
  return OpResult(system, std::move(x));
}

}  // namespace nemsim::spice
