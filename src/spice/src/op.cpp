#include "nemsim/spice/op.h"

namespace nemsim::spice {

double OpResult::v(const std::string& node_name) const {
  return v(system_->circuit().find_node(node_name));
}

double OpResult::value(const std::string& name) const {
  return x_[system_->unknown_by_name(name).index];
}

OpResult operating_point(MnaSystem& system, const OpOptions& options) {
  return operating_point_from(system, system.initial_guess(), options);
}

OpResult operating_point_from(MnaSystem& system, const linalg::Vector& x0,
                              const OpOptions& options) {
  NewtonSolver newton(system, options.newton);
  linalg::Vector x =
      newton.solve(x0, AnalysisMode::kDcOperatingPoint, /*time=*/0.0,
                   /*dt=*/0.0, options.stats);
  system.accept(x, AnalysisMode::kDcOperatingPoint, 0.0, 0.0);
  return OpResult(system, std::move(x));
}

}  // namespace nemsim::spice
