#include "nemsim/spice/op.h"

namespace nemsim::spice {

double OpResult::v(const std::string& node_name) const {
  return v(system_->circuit().find_node(node_name));
}

double OpResult::value(const std::string& name) const {
  return x_[system_->unknown_by_name(name).index];
}

OpResult operating_point(MnaSystem& system, const OpOptions& options) {
  return operating_point_from(system, system.initial_guess(), options);
}

OpResult operating_point_from(MnaSystem& system, const linalg::Vector& x0,
                              const OpOptions& options) {
  RunReport* report = options.report;
  NewtonSolver newton(system, options.newton);
  linalg::Vector x;
  try {
    util::ScopedTimer timer(report ? &report->metrics : nullptr, "phase.op");
    if (report) {
      if (report->analysis.empty()) report->analysis = "op";
      // Solve into a local stats block so the report and the caller's
      // stats both see this solve exactly once.
      NewtonStats local;
      x = newton.solve(x0, AnalysisMode::kDcOperatingPoint, /*time=*/0.0,
                       /*dt=*/0.0, &local, report);
      report->newton.merge(local);
      report->record_newton_iterations(local.iterations);
      if (options.stats) options.stats->merge(local);
    } else {
      x = newton.solve(x0, AnalysisMode::kDcOperatingPoint, /*time=*/0.0,
                       /*dt=*/0.0, options.stats);
    }
  } catch (const ConvergenceError& e) {
    if (report) ++report->newton_failures;
    write_failure_forensics(options.forensics, system.circuit(),
                            /*wave=*/nullptr, e.what(), e.diagnostics());
    throw;
  }
  system.accept(x, AnalysisMode::kDcOperatingPoint, 0.0, 0.0);
  return OpResult(system, std::move(x));
}

}  // namespace nemsim::spice
