#include "nemsim/spice/subcircuit.h"

#include <utility>

#include "nemsim/util/error.h"

namespace nemsim::spice {

namespace {

/// Instance names must start with 'X' so the elaborated circuit exports
/// to X cards the parser can re-dispatch, and must not contain the '.'
/// scope separator.
void check_instance_name(const std::string& local_name) {
  if (local_name.empty() || (local_name[0] != 'X' && local_name[0] != 'x')) {
    throw NetlistError("subcircuit instance name '" + local_name +
                       "' must start with 'X'");
  }
  if (local_name.find('.') != std::string::npos) {
    throw NetlistError("subcircuit instance name '" + local_name +
                       "' must not contain '.'");
  }
}

SubcktParams merge_params(const SubcktParams& defaults,
                          const SubcktParams& overrides) {
  SubcktParams merged = defaults;
  for (const auto& [key, value] : overrides) merged[key] = value;
  return merged;
}

}  // namespace

// ------------------------------------------------------------ Subcircuit

Subcircuit::Subcircuit(std::string name, std::vector<std::string> ports,
                       Builder builder, SubcktParams defaults)
    : name_(std::move(name)),
      ports_(std::move(ports)),
      builder_(std::move(builder)),
      defaults_(std::move(defaults)) {
  require(!name_.empty(), "Subcircuit: empty definition name");
  require(static_cast<bool>(builder_), "Subcircuit '" + name_ +
                                           "': null builder");
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i].empty() || ports_[i] == "0") {
      throw NetlistError("subcircuit '" + name_ + "': invalid port name '" +
                         ports_[i] + "'");
    }
    for (std::size_t j = i + 1; j < ports_.size(); ++j) {
      if (ports_[i] == ports_[j]) {
        throw NetlistError("subcircuit '" + name_ + "': duplicate port '" +
                           ports_[i] + "'");
      }
    }
  }
}

void Subcircuit::build(SubcircuitScope& scope) const { builder_(scope); }

void Subcircuit::set_body_text(std::vector<std::string> lines) {
  body_text_ = std::move(lines);
}

// ------------------------------------------------------- SubcircuitScope

SubcircuitScope::SubcircuitScope(Circuit& circuit, std::string path,
                                 const Subcircuit& def,
                                 std::vector<NodeId> actuals,
                                 SubcktParams params)
    : circuit_(circuit),
      path_(std::move(path)),
      def_(def),
      actuals_(std::move(actuals)),
      params_(std::move(params)) {}

NodeId SubcircuitScope::port(std::size_t i) const {
  if (i >= actuals_.size()) {
    throw NetlistError("subcircuit '" + def_.name() + "': port index " +
                       std::to_string(i) + " out of range (has " +
                       std::to_string(actuals_.size()) + " ports)");
  }
  return actuals_[i];
}

NodeId SubcircuitScope::port(const std::string& formal) const {
  const auto& ports = def_.ports();
  for (std::size_t i = 0; i < ports.size(); ++i) {
    if (ports[i] == formal) return actuals_[i];
  }
  throw NetlistError("subcircuit '" + def_.name() + "' has no port '" +
                     formal + "'");
}

NodeId SubcircuitScope::node(const std::string& local) {
  if (local == "0") return circuit_.gnd();
  const auto& ports = def_.ports();
  for (std::size_t i = 0; i < ports.size(); ++i) {
    if (ports[i] == local) return actuals_[i];
  }
  return circuit_.node(scoped(local));
}

std::string SubcircuitScope::scoped(const std::string& local) const {
  return path_ + "." + local;
}

double SubcircuitScope::param(const std::string& key, double fallback) const {
  auto it = params_.find(key);
  return it == params_.end() ? fallback : it->second;
}

double SubcircuitScope::param(const std::string& key) const {
  auto it = params_.find(key);
  if (it == params_.end()) {
    throw NetlistError("subcircuit '" + def_.name() + "' instance '" + path_ +
                       "': no value for parameter '" + key + "'");
  }
  return it->second;
}

bool SubcircuitScope::has_param(const std::string& key) const {
  return params_.count(key) != 0;
}

void SubcircuitScope::instantiate(const Subcircuit& def,
                                  const std::string& local_inst,
                                  const std::vector<NodeId>& actuals,
                                  const SubcktParams& overrides) {
  check_instance_name(local_inst);
  circuit_.instantiate_impl(def, path_ + "." + local_inst, actuals, overrides,
                            circuit_.open_instance_);
}

// -------------------------------------------------- Circuit (hierarchy)

void Circuit::instantiate(const Subcircuit& def, const std::string& inst_name,
                          const std::vector<NodeId>& actuals,
                          const SubcktParams& overrides) {
  check_instance_name(inst_name);
  require(open_instance_ == -1,
          "Circuit::instantiate called during elaboration; use "
          "SubcircuitScope::instantiate for nested instances");
  instantiate_impl(def, inst_name, actuals, overrides, /*parent=*/-1);
}

void Circuit::instantiate_impl(const Subcircuit& def,
                               const std::string& full_name,
                               const std::vector<NodeId>& actuals,
                               const SubcktParams& overrides,
                               std::ptrdiff_t parent) {
  if (instance_index_.count(full_name)) {
    throw NetlistError("duplicate subcircuit instance name '" + full_name +
                       "'");
  }
  if (actuals.size() != def.num_ports()) {
    throw NetlistError("subcircuit '" + def.name() + "' instance '" +
                       full_name + "': expected " +
                       std::to_string(def.num_ports()) + " port(s), got " +
                       std::to_string(actuals.size()));
  }
  for (NodeId n : actuals) {
    require(n.index < node_names_.size(),
            "instantiate '" + full_name + "': port node out of range");
  }
  register_subckt_def(std::make_shared<Subcircuit>(def));

  const std::size_t rec_index = instances_.size();
  SubcircuitInstanceRecord record;
  record.name = full_name;
  record.subckt = def.name();
  record.ports = actuals;
  record.params = overrides;
  record.parent = parent;
  record.first_device = devices_.size();
  instances_.push_back(std::move(record));
  instance_index_.emplace(full_name, rec_index);

  const std::ptrdiff_t saved_open = open_instance_;
  open_instance_ = static_cast<std::ptrdiff_t>(rec_index);
  SubcircuitScope scope(*this, full_name, def, actuals,
                        merge_params(def.defaults(), overrides));
  def.build(scope);
  open_instance_ = saved_open;
  instances_[rec_index].num_devices =
      devices_.size() - instances_[rec_index].first_device;
}

bool Circuit::has_instance(const std::string& name) const {
  return instance_index_.count(name) != 0;
}

const SubcircuitInstanceRecord* Circuit::device_instance(
    std::size_t device_index) const {
  if (device_index >= device_owner_.size()) return nullptr;
  const std::ptrdiff_t owner = device_owner_[device_index];
  return owner < 0 ? nullptr : &instances_[static_cast<std::size_t>(owner)];
}

void Circuit::register_subckt_def(std::shared_ptr<const Subcircuit> def) {
  require(static_cast<bool>(def), "register_subckt_def: null definition");
  auto it = subckt_defs_.find(def->name());
  if (it == subckt_defs_.end()) {
    subckt_defs_.emplace(def->name(), std::move(def));
    return;
  }
  // Keep the first registration; a redefinition must at least agree on
  // the interface, otherwise exported X cards would be wrong.
  const Subcircuit& existing = *it->second;
  if (existing.ports() != def->ports() ||
      existing.defaults() != def->defaults()) {
    throw NetlistError("conflicting definitions for subcircuit '" +
                       def->name() + "'");
  }
}

}  // namespace nemsim::spice
