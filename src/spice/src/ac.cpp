#include "nemsim/spice/ac.h"

#include <cmath>
#include <numbers>

#include "nemsim/spice/analyze.h"
#include "nemsim/util/error.h"

namespace nemsim::spice {

// Default for devices that never implemented an AC model.  ac_analysis
// normally rejects such devices before the bias solve (see the
// "ac-incapable-device" scan below); this throw only fires for a device
// that overrides has_ac_model() without overriding stamp_ac.
void Device::stamp_ac(AcStampContext& ctx) const {
  (void)ctx;
  throw InvalidArgument("AC analysis, small-signal assembly phase: device '" +
                        name() +
                        "' has no AC model (stamp_ac not implemented)");
}

// --------------------------------------------------------- AcStampContext

AcStampContext::AcStampContext(const MnaSystem& system, const Solution& bias,
                               linalg::Matrix& g, linalg::Matrix& c,
                               linalg::CVector& rhs)
    : system_(system), bias_(bias), g_(g), c_(c), rhs_(rhs) {}

void AcStampContext::raw(linalg::Matrix& m, UnknownId eq, UnknownId var,
                         double value) {
  if (!eq.valid() || !var.valid()) return;
  m(eq.index, var.index) += value;
}

void AcStampContext::add_G(NodeId eq, NodeId var, double value) {
  raw(g_, system_.unknown_of(eq), system_.unknown_of(var), value);
}
void AcStampContext::add_G(NodeId eq, UnknownId var, double value) {
  raw(g_, system_.unknown_of(eq), var, value);
}
void AcStampContext::add_G(UnknownId eq, NodeId var, double value) {
  raw(g_, eq, system_.unknown_of(var), value);
}
void AcStampContext::add_G(UnknownId eq, UnknownId var, double value) {
  raw(g_, eq, var, value);
}

void AcStampContext::add_C(NodeId eq, NodeId var, double value) {
  raw(c_, system_.unknown_of(eq), system_.unknown_of(var), value);
}
void AcStampContext::add_C(NodeId eq, UnknownId var, double value) {
  raw(c_, system_.unknown_of(eq), var, value);
}
void AcStampContext::add_C(UnknownId eq, NodeId var, double value) {
  raw(c_, eq, system_.unknown_of(var), value);
}
void AcStampContext::add_C(UnknownId eq, UnknownId var, double value) {
  raw(c_, eq, var, value);
}

void AcStampContext::add_rhs(NodeId eq, linalg::Complex value) {
  add_rhs(system_.unknown_of(eq), value);
}
void AcStampContext::add_rhs(UnknownId eq, linalg::Complex value) {
  if (!eq.valid()) return;
  rhs_[eq.index] += value;
}

void AcStampContext::stamp_conductance(NodeId p, NodeId n, double g) {
  add_G(p, p, g);
  add_G(p, n, -g);
  add_G(n, p, -g);
  add_G(n, n, g);
}

void AcStampContext::stamp_capacitance(NodeId p, NodeId n, double c) {
  add_C(p, p, c);
  add_C(p, n, -c);
  add_C(n, p, -c);
  add_C(n, n, c);
}

// --------------------------------------------------------------- AcResult

AcResult::AcResult(std::vector<std::string> signal_names,
                   std::vector<double> freqs)
    : names_(std::move(signal_names)), freqs_(std::move(freqs)) {}

std::size_t AcResult::signal_index(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  throw MeasurementError("AcResult: no signal named '" + name + "'");
}

void AcResult::append_point(const linalg::CVector& x) {
  require(data_.size() < freqs_.size(), "AcResult: too many points");
  data_.push_back(x);
}

linalg::Complex AcResult::at(const std::string& name, std::size_t k) const {
  require(k < data_.size(), "AcResult::at: index out of range");
  return data_[k][signal_index(name)];
}

double AcResult::magnitude(const std::string& name, std::size_t k) const {
  return std::abs(at(name, k));
}

double AcResult::magnitude_db(const std::string& name, std::size_t k) const {
  return 20.0 * std::log10(std::max(magnitude(name, k), 1e-300));
}

double AcResult::phase_deg(const std::string& name, std::size_t k) const {
  return std::arg(at(name, k)) * 180.0 / std::numbers::pi;
}

std::vector<double> AcResult::magnitude_series(const std::string& name) const {
  std::vector<double> out(data_.size());
  for (std::size_t k = 0; k < data_.size(); ++k) out[k] = magnitude(name, k);
  return out;
}

// ------------------------------------------------------------ ac_analysis

AcResult ac_analysis(MnaSystem& system, std::span<const double> frequencies,
                     const AcOptions& options) {
  require(!frequencies.empty(), "ac_analysis: no frequencies");
  for (double f : frequencies) {
    require(f > 0.0, "ac_analysis: frequencies must be positive");
  }

  // Lint once at analysis entry; the embedded bias-point op is gated off.
  lint::lint_gate(system, options.lint, options.report);
  analyze::analyze_gate(system.circuit(), options.analyze, options.report);

  // AC capability scan, before any Newton work: every device must carry a
  // small-signal model or the assembly after the (possibly expensive)
  // bias solve would die mid-stamp with no analysis context.  Findings
  // use the lint rule id "ac-incapable-device" so report consumers see
  // them next to the structural findings.
  {
    std::vector<std::string> incapable;
    const Circuit& ckt = system.circuit();
    for (std::size_t i = 0; i < ckt.num_devices(); ++i) {
      const Device& dev = ckt.device(i);
      if (dev.has_ac_model()) continue;
      incapable.push_back(dev.name());
      if (options.report != nullptr) {
        options.report->lint_findings.push_back(
            {lint::LintSeverity::kError, "ac-incapable-device", dev.name(),
             "device '" + dev.name() +
                 "' has no AC small-signal model (stamp_ac not "
                 "implemented); it cannot take part in an AC analysis"});
      }
    }
    if (!incapable.empty()) {
      std::string what =
          "AC analysis, pre-solve capability check: " +
          std::to_string(incapable.size()) +
          " device(s) have no AC small-signal model:";
      for (const std::string& name : incapable) what += " '" + name + "'";
      throw InvalidArgument(what);
    }
  }

  // Bias the circuit.
  OpOptions op_options;
  op_options.newton = options.newton;
  op_options.report = options.report;
  op_options.forensics = options.forensics;
  op_options.lint = lint::LintMode::kOff;
  OpResult op = operating_point(system, op_options);
  Solution bias = op.solution();

  // Assemble frequency-independent G and C once.
  const std::size_t n = system.num_unknowns();
  linalg::Matrix g(n, n), c(n, n);
  linalg::CVector rhs(n);
  AcStampContext ctx(system, bias, g, c, rhs);
  const Circuit& circuit = system.circuit();
  for (std::size_t i = 0; i < circuit.num_devices(); ++i) {
    circuit.device(i).stamp_ac(ctx);
  }

  std::vector<std::string> names;
  names.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    names.push_back(system.unknown_info(i).name);
  }
  AcResult result(std::move(names), {frequencies.begin(), frequencies.end()});
  for (double f : frequencies) {
    const double omega = 2.0 * std::numbers::pi * f;
    linalg::CMatrix a = linalg::CMatrix::from_real_pair(g, c, omega);
    result.append_point(linalg::solve(std::move(a), rhs));
  }
  return result;
}

std::vector<double> logspace(double f_first, double f_last,
                             std::size_t points_total) {
  require(f_first > 0.0 && f_last > f_first, "logspace: bad range");
  require(points_total >= 2, "logspace: need at least two points");
  std::vector<double> out(points_total);
  const double l0 = std::log10(f_first);
  const double l1 = std::log10(f_last);
  for (std::size_t i = 0; i < points_total; ++i) {
    out[i] = std::pow(10.0, l0 + (l1 - l0) * static_cast<double>(i) /
                                static_cast<double>(points_total - 1));
  }
  return out;
}

}  // namespace nemsim::spice
