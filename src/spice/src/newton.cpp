#include "nemsim/spice/newton.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nemsim/linalg/lu.h"
#include "nemsim/spice/diagnostics.h"
#include "nemsim/util/error.h"
#include "nemsim/util/logging.h"

namespace nemsim::spice {

namespace {

/// Residual norm weighted per-row by reltol*scale + row_abstol; a value
/// <= 1 means every row satisfies its convergence criterion.
double weighted_residual_norm(const MnaSystem& system,
                              const linalg::Vector& residual,
                              const linalg::Vector& scale, double reltol) {
  double worst = 0.0;
  for (std::size_t i = 0; i < residual.size(); ++i) {
    const double tol =
        reltol * scale[i] + system.unknown_info(i).row_abstol;
    worst = std::max(worst, std::abs(residual[i]) / tol);
  }
  return worst;
}

/// Update norm weighted by reltol*max(|x|,|x_new|) + abstol.
double weighted_update_norm(const MnaSystem& system, const linalg::Vector& x,
                            const linalg::Vector& x_new, double reltol) {
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double tol = reltol * std::max(std::abs(x[i]), std::abs(x_new[i])) +
                       system.unknown_info(i).abstol;
    worst = std::max(worst, std::abs(x_new[i] - x[i]) / tol);
  }
  return worst;
}

/// Builds the structured failure payload: top-k worst weighted-residual
/// rows named via the unknown table, plus the exit norms and location.
/// Only runs on the failure path — converging solves never pay for it.
ConvergenceDiagnostics failure_diagnostics(
    const MnaSystem& system, const linalg::Vector& residual,
    const linalg::Vector& scale, double reltol, double time, double dt,
    int iterations, double res_norm, double update_norm,
    const std::string& strategy, std::size_t top_k = 5) {
  ConvergenceDiagnostics diag;
  diag.strategy = strategy;
  diag.time = time;
  diag.dt = dt;
  diag.iterations = iterations;
  diag.residual_norm = res_norm;
  diag.update_norm = update_norm;

  const std::size_t n = residual.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  auto weighted = [&](std::size_t i) {
    const double tol = reltol * scale[i] + system.unknown_info(i).row_abstol;
    return std::abs(residual[i]) / tol;
  };
  const std::size_t k = std::min(top_k, n);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return weighted(a) > weighted(b);
                    });
  diag.worst_rows.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t i = order[j];
    diag.worst_rows.push_back(
        {system.unknown_info(i).name, residual[i], weighted(i)});
  }
  return diag;
}

/// Direction-preserving clamp so no unknown exceeds its per-iteration
/// step limit (keeps exponential models in their valid range).
double step_clamp(const MnaSystem& system, const linalg::Vector& dx) {
  double clamp = 1.0;
  for (std::size_t i = 0; i < dx.size(); ++i) {
    const double limit = system.unknown_info(i).max_newton_step;
    if (limit > 0.0 && std::abs(dx[i]) > limit) {
      clamp = std::min(clamp, limit / std::abs(dx[i]));
    }
  }
  return clamp;
}

}  // namespace

bool NewtonSolver::uses_sparse() const {
  switch (options_.solver) {
    case JacobianSolver::kDense:
      return false;
    case JacobianSolver::kSparse:
      return true;
    case JacobianSolver::kAuto:
      return system_.num_unknowns() >= options_.sparse_threshold;
  }
  return false;
}

linalg::Vector NewtonSolver::solve_plain(const linalg::Vector& x0,
                                         AnalysisMode mode, double time,
                                         double dt, double gmin,
                                         double source_factor,
                                         NewtonStats* stats) {
  require(x0.size() == system_.num_unknowns(),
          "NewtonSolver: initial guess size mismatch");
  if (uses_sparse()) {
    if (stats) stats->used_sparse = true;
    return solve_plain_sparse(x0, mode, time, dt, gmin, source_factor, stats);
  }
  return solve_plain_dense(x0, mode, time, dt, gmin, source_factor, stats);
}

linalg::Vector NewtonSolver::solve_plain_dense(const linalg::Vector& x0,
                                               AnalysisMode mode, double time,
                                               double dt, double gmin,
                                               double source_factor,
                                               NewtonStats* stats) {
  const std::size_t n = system_.num_unknowns();
  linalg::Vector x = x0;
  linalg::Matrix jacobian;
  linalg::Vector residual, scale;
  linalg::Vector x_trial, residual_trial, scale_trial;

  system_.assemble(x, jacobian, residual, scale, mode, time, dt, gmin,
                   source_factor);
  if (stats) ++stats->assembles;
  double res_norm =
      weighted_residual_norm(system_, residual, scale, options_.reltol);
  double last_update_norm = 0.0;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    if (stats) {
      ++stats->iterations;
      ++stats->total_iterations;
    }

    // Newton direction: J dx = -f.
    linalg::Vector dx;
    try {
      linalg::LuDecomposition lu(jacobian);
      if (stats) ++stats->factorizations;
      linalg::Vector rhs = residual;
      rhs *= -1.0;
      dx = lu.solve(rhs);
    } catch (const SingularMatrixError&) {
      throw ConvergenceError(
          "Newton: singular Jacobian (floating node or unstable device?)",
          failure_diagnostics(system_, residual, scale, options_.reltol,
                              time, dt, iter, res_norm, last_update_norm,
                              "singular-jacobian"));
    }

    const double clamp = step_clamp(system_, dx);

    // Damped accept: halve the step while the weighted residual norm
    // increases badly.  The first (undamped) trial assembles residual AND
    // Jacobian — if accepted, which is the common case, the Jacobian is
    // already in place for the next iteration.  Extra damping trials only
    // assemble the residual; the Jacobian is refreshed after acceptance.
    double alpha = clamp;
    double trial_norm = 0.0;
    bool jacobian_at_trial = false;
    for (int halving = 0; halving <= options_.max_damping_halvings;
         ++halving) {
      x_trial = x;
      for (std::size_t i = 0; i < n; ++i) x_trial[i] += alpha * dx[i];
      if (halving == 0) {
        system_.assemble(x_trial, jacobian, residual_trial, scale_trial,
                         mode, time, dt, gmin, source_factor);
        jacobian_at_trial = true;
        if (stats) ++stats->assembles;
      } else {
        system_.assemble_residual(x_trial, residual_trial, scale_trial, mode,
                                  time, dt, gmin, source_factor);
        jacobian_at_trial = false;
        if (stats) ++stats->residual_assembles;
      }
      trial_norm = weighted_residual_norm(system_, residual_trial, scale_trial,
                                          options_.reltol);
      // Accept descent, any sub-tolerance point, or a mild increase when
      // the step was clamped (the model may need to traverse a barrier).
      if (trial_norm <= std::max(1.0, res_norm) ||
          (halving == options_.max_damping_halvings)) {
        break;
      }
      alpha *= 0.5;
    }

    const double update_norm =
        weighted_update_norm(system_, x, x_trial, options_.reltol);
    last_update_norm = update_norm;

    x = x_trial;
    residual = residual_trial;
    scale = scale_trial;
    res_norm = trial_norm;

    if (res_norm <= 1.0 && update_norm <= 1.0) {
      return x;
    }
    if (!jacobian_at_trial) {
      // A damped trial was accepted: refresh the Jacobian at the new x.
      system_.assemble(x, jacobian, residual, scale, mode, time, dt, gmin,
                       source_factor);
      if (stats) ++stats->assembles;
    }
  }
  throw ConvergenceError(
      "Newton: no convergence after " +
          std::to_string(options_.max_iterations) +
          " iterations (weighted residual " + std::to_string(res_norm) + ")",
      failure_diagnostics(system_, residual, scale, options_.reltol, time,
                          dt, options_.max_iterations, res_norm,
                          last_update_norm, "plain"));
}

void NewtonSolver::ensure_sparse_skeleton() {
  const std::uint64_t epoch = system_.jacobian_pattern_epoch();
  if (!sparse_ready_ || sparse_epoch_ != epoch) {
    sparse_jac_ = system_.make_sparse_jacobian();
    sparse_epoch_ = system_.jacobian_pattern_epoch();
    sparse_ready_ = true;
    lu_ready_ = false;
  }
}

linalg::Vector NewtonSolver::solve_plain_sparse(const linalg::Vector& x0,
                                                AnalysisMode mode, double time,
                                                double dt, double gmin,
                                                double source_factor,
                                                NewtonStats* stats) {
  const std::size_t n = system_.num_unknowns();
  linalg::Vector x = x0;
  linalg::Vector residual, scale;
  linalg::Vector x_trial, residual_trial, scale_trial;

  ensure_sparse_skeleton();

  // Linear devices' Jacobian values are constant for the whole solve
  // (fixed mode/time/dt and committed device state): stamp them once.
  auto refresh_baseline = [&]() {
    while (!system_.assemble_linear_jacobian(x, sparse_jac_, linear_baseline_,
                                             mode, time, dt)) {
      ensure_sparse_skeleton();
    }
  };
  refresh_baseline();

  // Full assembly with pattern-growth retry: on a miss the system grows
  // its pattern, we rebuild the skeleton + baseline and assemble again.
  auto assemble_full = [&](const linalg::Vector& xi, linalg::Vector& f,
                           linalg::Vector& s) {
    while (!system_.assemble_sparse(xi, sparse_jac_, f, s, mode, time, dt,
                                    gmin, source_factor, &linear_baseline_)) {
      ensure_sparse_skeleton();
      refresh_baseline();
    }
    if (stats) ++stats->assembles;
  };

  assemble_full(x, residual, scale);
  double res_norm =
      weighted_residual_norm(system_, residual, scale, options_.reltol);
  double last_update_norm = 0.0;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    if (stats) {
      ++stats->iterations;
      ++stats->total_iterations;
    }

    // Newton direction: J dx = -f.  The symbolic analysis (pivot order +
    // fill pattern) is reused across iterations; only the numeric sweep
    // runs, unless a pivot decayed past the threshold or the pattern
    // changed — then a full factorization recovers.
    linalg::Vector dx;
    try {
      const linalg::CsrView view = linalg::csr_view(sparse_jac_);
      bool reused = false;
      if (lu_ready_ && sparse_lu_.refactor(view)) {
        reused = true;
        if (stats) ++stats->factorization_reuses;
      } else {
        sparse_lu_.factor(view);
        lu_ready_ = true;
        if (stats) ++stats->factorizations;
      }
      (void)reused;
      dx = residual;
      for (std::size_t i = 0; i < n; ++i) dx[i] = -dx[i];
      sparse_lu_.solve_in_place(dx);
    } catch (const SingularMatrixError&) {
      throw ConvergenceError(
          "Newton: singular Jacobian (floating node or unstable device?)",
          failure_diagnostics(system_, residual, scale, options_.reltol,
                              time, dt, iter, res_norm, last_update_norm,
                              "singular-jacobian"));
    }

    const double clamp = step_clamp(system_, dx);

    double alpha = clamp;
    double trial_norm = 0.0;
    bool jacobian_at_trial = false;
    for (int halving = 0; halving <= options_.max_damping_halvings;
         ++halving) {
      x_trial = x;
      for (std::size_t i = 0; i < n; ++i) x_trial[i] += alpha * dx[i];
      if (halving == 0) {
        assemble_full(x_trial, residual_trial, scale_trial);
        jacobian_at_trial = true;
      } else {
        system_.assemble_residual(x_trial, residual_trial, scale_trial, mode,
                                  time, dt, gmin, source_factor);
        jacobian_at_trial = false;
        if (stats) ++stats->residual_assembles;
      }
      trial_norm = weighted_residual_norm(system_, residual_trial, scale_trial,
                                          options_.reltol);
      if (trial_norm <= std::max(1.0, res_norm) ||
          (halving == options_.max_damping_halvings)) {
        break;
      }
      alpha *= 0.5;
    }

    const double update_norm =
        weighted_update_norm(system_, x, x_trial, options_.reltol);
    last_update_norm = update_norm;

    x = x_trial;
    residual = residual_trial;
    scale = scale_trial;
    res_norm = trial_norm;

    if (res_norm <= 1.0 && update_norm <= 1.0) {
      return x;
    }
    if (!jacobian_at_trial) {
      assemble_full(x, residual, scale);
      res_norm =
          weighted_residual_norm(system_, residual, scale, options_.reltol);
    }
  }
  throw ConvergenceError(
      "Newton: no convergence after " +
          std::to_string(options_.max_iterations) +
          " iterations (weighted residual " + std::to_string(res_norm) + ")",
      failure_diagnostics(system_, residual, scale, options_.reltol, time,
                          dt, options_.max_iterations, res_norm,
                          last_update_norm, "plain"));
}

linalg::Vector NewtonSolver::solve(const linalg::Vector& x0, AnalysisMode mode,
                                   double time, double dt,
                                   NewtonStats* stats, RunReport* report) {
  NewtonStats local;
  NewtonStats* st = stats ? stats : &local;

  // Runs one ladder stage, recording its iteration cost (the delta of the
  // cumulative counter — stages accumulate into the total instead of
  // clobbering each other) and outcome into the report.
  auto run_stage = [&](SteppingStageRecord::Kind kind, double value,
                       const linalg::Vector& start, double gmin,
                       double source_factor) {
    const int before = st->total_iterations;
    try {
      linalg::Vector x =
          solve_plain(start, mode, time, dt, gmin, source_factor, st);
      const int spent = st->total_iterations - before;
      if (report) report->stages.push_back({kind, value, spent, true});
      // Documented NewtonStats semantics: `iterations` is the cost of the
      // final (successful) solve; the ladder total lives in
      // total_iterations.
      st->iterations = spent;
      return x;
    } catch (const ConvergenceError&) {
      if (report) {
        report->stages.push_back(
            {kind, value, st->total_iterations - before, false});
      }
      st->iterations = st->total_iterations;
      throw;
    }
  };

  // Keeps the most informative failure so the final error can carry its
  // structured payload even after later strategies also fail.
  ConvergenceError last_error("Newton: no strategy attempted");

  try {
    return run_stage(SteppingStageRecord::Kind::kPlain, options_.gmin_final,
                     x0, options_.gmin_final, 1.0);
  } catch (const ConvergenceError& e) {
    last_error = e;
    log_debug("Newton: plain solve failed, trying gmin stepping");
  }

  if (options_.gmin_stepping) {
    try {
      linalg::Vector x = x0;
      // Ramp the shunt conductance down decade by decade, reusing each
      // converged point as the next start.
      for (double gmin = 1e-3; gmin >= options_.gmin_final * 0.99 &&
                               gmin >= 1e-15;
           gmin *= 0.1) {
        ++st->gmin_steps;
        x = run_stage(SteppingStageRecord::Kind::kGminStep, gmin, x, gmin,
                      1.0);
      }
      return run_stage(SteppingStageRecord::Kind::kGminStep,
                       options_.gmin_final, x, options_.gmin_final, 1.0);
    } catch (const ConvergenceError& e) {
      last_error = e;
      log_debug("Newton: gmin stepping failed, trying source stepping");
    }
  }

  if (options_.source_stepping) {
    linalg::Vector x(system_.num_unknowns(), 0.0);
    double factor = 0.0;
    double step = 0.1;
    // At factor 0 all sources are off; x = 0 is the exact solution for
    // most circuits, so Newton converges immediately and we walk up.
    while (factor < 1.0) {
      const double next = std::min(1.0, factor + step);
      try {
        ++st->source_steps;
        x = run_stage(SteppingStageRecord::Kind::kSourceStep, next, x,
                      options_.gmin_final, next);
        factor = next;
        step = std::min(0.25, step * 1.5);
      } catch (const ConvergenceError& e) {
        last_error = e;
        step *= 0.5;
        if (step < 1e-4) {
          const std::string msg = "Newton: source stepping stalled at factor " +
                                  std::to_string(factor);
          if (last_error.has_diagnostics()) {
            ConvergenceDiagnostics diag = *last_error.diagnostics();
            diag.strategy = "source";
            throw ConvergenceError(msg, std::move(diag));
          }
          throw ConvergenceError(msg);
        }
      }
    }
    return x;
  }

  const std::string msg =
      std::string("Newton: all strategies failed (last: ") +
      last_error.what() + ")";
  if (last_error.has_diagnostics()) {
    ConvergenceDiagnostics diag = *last_error.diagnostics();
    diag.strategy = options_.gmin_stepping ? "gmin" : "plain";
    throw ConvergenceError(msg, std::move(diag));
  }
  throw ConvergenceError(msg);
}

}  // namespace nemsim::spice
