#include "nemsim/spice/newton.h"

#include <algorithm>
#include <cmath>

#include "nemsim/linalg/lu.h"
#include "nemsim/util/error.h"
#include "nemsim/util/logging.h"

namespace nemsim::spice {

namespace {

/// Residual norm weighted per-row by reltol*scale + row_abstol; a value
/// <= 1 means every row satisfies its convergence criterion.
double weighted_residual_norm(const MnaSystem& system,
                              const linalg::Vector& residual,
                              const linalg::Vector& scale, double reltol) {
  double worst = 0.0;
  for (std::size_t i = 0; i < residual.size(); ++i) {
    const double tol =
        reltol * scale[i] + system.unknown_info(i).row_abstol;
    worst = std::max(worst, std::abs(residual[i]) / tol);
  }
  return worst;
}

/// Update norm weighted by reltol*max(|x|,|x_new|) + abstol.
double weighted_update_norm(const MnaSystem& system, const linalg::Vector& x,
                            const linalg::Vector& x_new, double reltol) {
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double tol = reltol * std::max(std::abs(x[i]), std::abs(x_new[i])) +
                       system.unknown_info(i).abstol;
    worst = std::max(worst, std::abs(x_new[i] - x[i]) / tol);
  }
  return worst;
}

}  // namespace

linalg::Vector NewtonSolver::solve_plain(const linalg::Vector& x0,
                                         AnalysisMode mode, double time,
                                         double dt, double gmin,
                                         double source_factor,
                                         NewtonStats* stats) {
  const std::size_t n = system_.num_unknowns();
  require(x0.size() == n, "NewtonSolver: initial guess size mismatch");

  linalg::Vector x = x0;
  linalg::Matrix jacobian;
  linalg::Vector residual, scale;
  linalg::Vector x_trial, residual_trial, scale_trial;
  linalg::Matrix jacobian_trial;

  system_.assemble(x, jacobian, residual, scale, mode, time, dt, gmin,
                   source_factor);
  double res_norm =
      weighted_residual_norm(system_, residual, scale, options_.reltol);

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    if (stats) {
      ++stats->iterations;
      ++stats->total_iterations;
    }

    // Newton direction: J dx = -f.
    linalg::Vector dx;
    try {
      linalg::LuDecomposition lu(jacobian);
      linalg::Vector rhs = residual;
      rhs *= -1.0;
      dx = lu.solve(rhs);
    } catch (const SingularMatrixError&) {
      throw ConvergenceError(
          "Newton: singular Jacobian (floating node or unstable device?)");
    }

    // Direction-preserving clamp so no unknown exceeds its per-iteration
    // step limit (keeps exponential models in their valid range).
    double clamp = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double limit = system_.unknown_info(i).max_newton_step;
      if (limit > 0.0 && std::abs(dx[i]) > limit) {
        clamp = std::min(clamp, limit / std::abs(dx[i]));
      }
    }

    // Damped accept: halve the step while the weighted residual norm
    // increases badly.
    double alpha = clamp;
    double trial_norm = 0.0;
    bool accepted = false;
    for (int halving = 0; halving <= options_.max_damping_halvings;
         ++halving) {
      x_trial = x;
      for (std::size_t i = 0; i < n; ++i) x_trial[i] += alpha * dx[i];
      system_.assemble(x_trial, jacobian_trial, residual_trial, scale_trial,
                       mode, time, dt, gmin, source_factor);
      trial_norm = weighted_residual_norm(system_, residual_trial, scale_trial,
                                          options_.reltol);
      // Accept descent, any sub-tolerance point, or a mild increase when
      // the step was clamped (the model may need to traverse a barrier).
      if (trial_norm <= std::max(1.0, res_norm) ||
          (halving == options_.max_damping_halvings)) {
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    (void)accepted;

    const double update_norm =
        weighted_update_norm(system_, x, x_trial, options_.reltol);

    x = x_trial;
    jacobian = jacobian_trial;
    residual = residual_trial;
    scale = scale_trial;
    res_norm = trial_norm;

    if (res_norm <= 1.0 && update_norm <= 1.0) {
      return x;
    }
  }
  throw ConvergenceError("Newton: no convergence after " +
                         std::to_string(options_.max_iterations) +
                         " iterations (weighted residual " +
                         std::to_string(res_norm) + ")");
}

linalg::Vector NewtonSolver::solve(const linalg::Vector& x0, AnalysisMode mode,
                                   double time, double dt,
                                   NewtonStats* stats) {
  NewtonStats local;
  NewtonStats* st = stats ? stats : &local;

  try {
    return solve_plain(x0, mode, time, dt, options_.gmin_final, 1.0, st);
  } catch (const ConvergenceError&) {
    log_debug("Newton: plain solve failed, trying gmin stepping");
  }

  if (options_.gmin_stepping) {
    try {
      linalg::Vector x = x0;
      // Ramp the shunt conductance down decade by decade, reusing each
      // converged point as the next start.
      for (double gmin = 1e-3; gmin >= options_.gmin_final * 0.99 &&
                               gmin >= 1e-15;
           gmin *= 0.1) {
        st->iterations = 0;
        ++st->gmin_steps;
        x = solve_plain(x, mode, time, dt, gmin, 1.0, st);
      }
      st->iterations = 0;
      return solve_plain(x, mode, time, dt, options_.gmin_final, 1.0, st);
    } catch (const ConvergenceError&) {
      log_debug("Newton: gmin stepping failed, trying source stepping");
    }
  }

  if (options_.source_stepping) {
    linalg::Vector x(system_.num_unknowns(), 0.0);
    double factor = 0.0;
    double step = 0.1;
    // At factor 0 all sources are off; x = 0 is the exact solution for
    // most circuits, so Newton converges immediately and we walk up.
    while (factor < 1.0) {
      const double next = std::min(1.0, factor + step);
      try {
        st->iterations = 0;
        ++st->source_steps;
        x = solve_plain(x, mode, time, dt, options_.gmin_final, next, st);
        factor = next;
        step = std::min(0.25, step * 1.5);
      } catch (const ConvergenceError&) {
        step *= 0.5;
        if (step < 1e-4) {
          throw ConvergenceError(
              "Newton: source stepping stalled at factor " +
              std::to_string(factor));
        }
      }
    }
    return x;
  }

  throw ConvergenceError("Newton: all strategies failed");
}

}  // namespace nemsim::spice
