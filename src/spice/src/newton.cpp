#include "nemsim/spice/newton.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nemsim/linalg/lu.h"
#include "nemsim/spice/diagnostics.h"
#include "nemsim/util/error.h"
#include "nemsim/util/logging.h"

namespace nemsim::spice {

namespace {
// Weighted-residual threshold below which the next trial is likely the
// converging one.  Such a trial runs with replay restricted to
// bitwise-exact caches, so convergence is decided on the true residual
// and no separate verification assembly is needed.  Mispredicting costs
// little: the fresh evaluations are the ones the verification pass
// would have run anyway, and they re-seed the caches for the next
// iteration.
constexpr double kExactTrialNorm = 30.0;

}  // namespace


namespace {

/// Residual norm weighted per-row by reltol*scale + row_abstol; a value
/// <= 1 means every row satisfies its convergence criterion.
double weighted_residual_norm(const MnaSystem& system,
                              const linalg::Vector& residual,
                              const linalg::Vector& scale, double reltol) {
  double worst = 0.0;
  for (std::size_t i = 0; i < residual.size(); ++i) {
    const double tol =
        reltol * scale[i] + system.unknown_info(i).row_abstol;
    worst = std::max(worst, std::abs(residual[i]) / tol);
  }
  return worst;
}

/// Update norm weighted by reltol*max(|x|,|x_new|) + abstol.
double weighted_update_norm(const MnaSystem& system, const linalg::Vector& x,
                            const linalg::Vector& x_new, double reltol) {
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double tol = reltol * std::max(std::abs(x[i]), std::abs(x_new[i])) +
                       system.unknown_info(i).abstol;
    worst = std::max(worst, std::abs(x_new[i] - x[i]) / tol);
  }
  return worst;
}

/// Builds the structured failure payload: top-k worst weighted-residual
/// rows named via the unknown table, plus the exit norms and location.
/// Only runs on the failure path — converging solves never pay for it.
ConvergenceDiagnostics failure_diagnostics(
    const MnaSystem& system, const linalg::Vector& residual,
    const linalg::Vector& scale, double reltol, double time, double dt,
    int iterations, double res_norm, double update_norm,
    const std::string& strategy, std::size_t top_k = 5) {
  ConvergenceDiagnostics diag;
  diag.strategy = strategy;
  diag.time = time;
  diag.dt = dt;
  diag.iterations = iterations;
  diag.residual_norm = res_norm;
  diag.update_norm = update_norm;

  const std::size_t n = residual.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  auto weighted = [&](std::size_t i) {
    const double tol = reltol * scale[i] + system.unknown_info(i).row_abstol;
    return std::abs(residual[i]) / tol;
  };
  const std::size_t k = std::min(top_k, n);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return weighted(a) > weighted(b);
                    });
  diag.worst_rows.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t i = order[j];
    diag.worst_rows.push_back(
        {system.unknown_info(i).name, residual[i], weighted(i)});
  }
  return diag;
}

/// Direction-preserving clamp so no unknown exceeds its per-iteration
/// step limit (keeps exponential models in their valid range).
double step_clamp(const MnaSystem& system, const linalg::Vector& dx) {
  double clamp = 1.0;
  for (std::size_t i = 0; i < dx.size(); ++i) {
    const double limit = system.unknown_info(i).max_newton_step;
    if (limit > 0.0 && std::abs(dx[i]) > limit) {
      clamp = std::min(clamp, limit / std::abs(dx[i]));
    }
  }
  return clamp;
}

}  // namespace

bool NewtonSolver::uses_sparse() const {
  switch (options_.solver) {
    case JacobianSolver::kDense:
      return false;
    case JacobianSolver::kSparse:
      return true;
    case JacobianSolver::kAuto:
      return system_.num_unknowns() >= options_.sparse_threshold;
  }
  return false;
}

bool NewtonSolver::lu_context_compatible(AnalysisMode mode, double dt,
                                         double gmin,
                                         double source_factor) const {
  if (!lu_context_valid_) return false;
  if (lu_mode_ != mode) return false;
  // Homotopy ladder stages change gmin/source_factor: always refresh.
  if (lu_gmin_ != gmin || lu_source_factor_ != source_factor) return false;
  if (lu_dt_ == dt) return true;
  if (lu_dt_ <= 0.0 || dt <= 0.0) return false;
  const double ratio = dt > lu_dt_ ? dt / lu_dt_ : lu_dt_ / dt;
  return ratio <= options_.reuse_dt_ratio;
}

linalg::Vector NewtonSolver::solve_plain(const linalg::Vector& x0,
                                         AnalysisMode mode, double time,
                                         double dt, double gmin,
                                         double source_factor,
                                         NewtonStats* stats) {
  require(x0.size() == system_.num_unknowns(),
          "NewtonSolver: initial guess size mismatch");
  system_.configure_bypass(options_.bypass, options_.bypass_reltol,
                           options_.bypass_abstol);
  system_.configure_kernels(options_.kernels);
  // A failed converged-iteration verification in a previous solve leaves
  // replay suspended (see the guard below); every solve starts trusting
  // its caches again.
  system_.set_bypass_replay_suspended(false);
  system_.set_bypass_exact_only(false);
  // Fold the system's eval/bypass/kernel deltas into the stats block even
  // when the solve throws — homotopy ladder retries must not lose counts.
  const MnaSystem::BypassCounters before = system_.bypass_counters();
  const auto kernel_before = system_.kernel_lane_evals();
  auto record = [&]() {
    if (stats == nullptr) return;
    const MnaSystem::BypassCounters& after = system_.bypass_counters();
    stats->nonlinear_evals += after.evals - before.evals;
    stats->bypassed_evals += after.bypassed - before.bypassed;
    const auto kernel_after = system_.kernel_lane_evals();
    for (std::size_t i = 0; i < kernel_after.size(); ++i) {
      const std::uint64_t prior =
          i < kernel_before.size() ? kernel_before[i].second : 0;
      stats->add_kernel_lane_evals(kernel_after[i].first,
                                   kernel_after[i].second - prior);
    }
  };
  try {
    linalg::Vector x;
    if (uses_sparse()) {
      if (stats) stats->used_sparse = true;
      x = solve_plain_sparse(x0, mode, time, dt, gmin, source_factor, stats);
    } else {
      x = solve_plain_dense(x0, mode, time, dt, gmin, source_factor, stats);
    }
    record();
    return x;
  } catch (...) {
    last_converged_iters_ = 99;  // a failed solve means the circuit is hard
    record();
    throw;
  }
}

linalg::Vector NewtonSolver::solve_plain_dense(const linalg::Vector& x0,
                                               AnalysisMode mode, double time,
                                               double dt, double gmin,
                                               double source_factor,
                                               NewtonStats* stats) {
  const std::size_t n = system_.num_unknowns();
  linalg::Vector x = x0;
  linalg::Matrix jacobian;
  linalg::Vector residual, scale;
  linalg::Vector x_trial, residual_trial, scale_trial;

  system_.assemble(x, jacobian, residual, scale, mode, time, dt, gmin,
                   source_factor);
  if (stats) ++stats->assembles;
  double res_norm =
      weighted_residual_norm(system_, residual, scale, options_.reltol);
  double last_update_norm = 0.0;
  int verify_failures = 0;

  // Modified-Newton bookkeeping (inert with jacobian_reuse off):
  // `contraction_ok` tracks whether the previous iteration contracted
  // fast enough to keep solving against the kept LU; `fresh_at_x` tracks
  // whether `jacobian` holds the true Jacobian at the current x.  Cross-
  // solve reuse only engages when the previous solve was easy -- a hard
  // solve means the circuit is moving and the kept LU is a poor operator.
  bool contraction_ok = last_converged_iters_ <= 1;
  bool fresh_at_x = true;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    if (stats) {
      ++stats->iterations;
      ++stats->total_iterations;
    }

    if (options_.bypass && iter == options_.max_iterations / 2) {
      // Half the iteration budget is gone: a coarse replay tolerance may
      // be masking real residual movement.  Fall back to full
      // evaluations for the rest of this solve and refresh at x.
      system_.set_bypass_replay_suspended(true);
      fresh_at_x = false;
      contraction_ok = false;
      if (stats) ++stats->forced_refreshes;
    }

    const bool use_stale = options_.jacobian_reuse && dense_lu_.has_value() &&
                           lu_context_compatible(mode, dt, gmin,
                                                 source_factor) &&
                           contraction_ok;
    if (!use_stale && !fresh_at_x) {
      // Leaving stale mode: rebuild the true Jacobian at x first.
      system_.assemble(x, jacobian, residual, scale, mode, time, dt, gmin,
                       source_factor);
      if (stats) ++stats->assembles;
      res_norm =
          weighted_residual_norm(system_, residual, scale, options_.reltol);
      fresh_at_x = true;
    }

    // Newton direction: J dx = -f.
    linalg::Vector dx;
    try {
      if (use_stale) {
        if (stats) ++stats->stale_jacobian_solves;
      } else {
        dense_lu_.emplace(jacobian);
        lu_mode_ = mode;
        lu_dt_ = dt;
        lu_gmin_ = gmin;
        lu_source_factor_ = source_factor;
        lu_context_valid_ = true;
        if (stats) ++stats->factorizations;
      }
      linalg::Vector rhs = residual;
      rhs *= -1.0;
      dx = dense_lu_->solve(rhs);
    } catch (const SingularMatrixError&) {
      throw ConvergenceError(
          "Newton: singular Jacobian (floating node or unstable device?)",
          failure_diagnostics(system_, residual, scale, options_.reltol,
                              time, dt, iter, res_norm, last_update_norm,
                              "singular-jacobian"));
    }

    const double clamp = step_clamp(system_, dx);

    // Damped accept: halve the step while the weighted residual norm
    // increases badly.  The first (undamped) trial assembles residual AND
    // Jacobian — if accepted, which is the common case, the Jacobian is
    // already in place for the next iteration.  Extra damping trials only
    // assemble the residual; the Jacobian is refreshed after acceptance.
    // Stale-LU iterations keep every trial residual-only: the Jacobian is
    // not needed while the kept factorization stays in use.
    // When this trial can be the converging one -- the undamped update
    // already satisfies the update test and the residual is within
    // striking distance -- restrict replay to bitwise-exact caches for
    // the whole trial: if it converges, it converged on the true
    // residual and the separate verification below is unnecessary.  The
    // update norm is computable before assembling (dx is known), so
    // non-final trials keep full tolerance replay.
    x_trial = x;
    for (std::size_t i = 0; i < n; ++i) x_trial[i] += clamp * dx[i];
    const bool exact_trial =
        options_.bypass && res_norm <= kExactTrialNorm &&
        weighted_update_norm(system_, x, x_trial, options_.reltol) <= 1.0;
    double alpha = clamp;
    double trial_norm = 0.0;
    bool jacobian_at_trial = false;
    int halvings_used = 0;
    std::int64_t trial_bypassed = 0;
    for (int halving = 0; halving <= options_.max_damping_halvings;
         ++halving) {
      x_trial = x;
      for (std::size_t i = 0; i < n; ++i) x_trial[i] += alpha * dx[i];
      const std::int64_t bypassed_before = system_.bypass_counters().bypassed;
      // Exact mode only applies to the undamped trial; a halved step is
      // no longer the predicted convergence point, so fall back to
      // tolerance replay (the verification below then covers it).  An
      // exact trial always builds the full Jacobian, even against a
      // stale LU: its fresh evaluations must capture complete cache
      // entries, and the Jacobian at the solution is exactly what the
      // next solve's cross-step reuse wants.
      system_.set_bypass_exact_only(exact_trial && halving == 0);
      if (halving == 0 && (!use_stale || exact_trial)) {
        system_.assemble(x_trial, jacobian, residual_trial, scale_trial,
                         mode, time, dt, gmin, source_factor);
        jacobian_at_trial = true;
        if (stats) ++stats->assembles;
      } else {
        system_.assemble_residual(x_trial, residual_trial, scale_trial, mode,
                                  time, dt, gmin, source_factor);
        jacobian_at_trial = false;
        if (stats) ++stats->residual_assembles;
      }
      trial_bypassed = system_.bypass_counters().bypassed - bypassed_before;
      trial_norm = weighted_residual_norm(system_, residual_trial, scale_trial,
                                          options_.reltol);
      // Accept descent, any sub-tolerance point, or a mild increase when
      // the step was clamped (the model may need to traverse a barrier).
      if (trial_norm <= std::max(1.0, res_norm) ||
          (halving == options_.max_damping_halvings)) {
        halvings_used = halving;
        break;
      }
      alpha *= 0.5;
    }
    system_.set_bypass_exact_only(false);

    const double update_norm =
        weighted_update_norm(system_, x, x_trial, options_.reltol);
    last_update_norm = update_norm;

    const double prev_norm = res_norm;
    x = x_trial;
    residual = residual_trial;
    scale = scale_trial;
    res_norm = trial_norm;
    fresh_at_x = jacobian_at_trial;

    bool verification_failed = false;
    if (res_norm <= 1.0 && update_norm <= 1.0) {
      if (options_.bypass && !(exact_trial && halvings_used == 0) &&
          trial_bypassed > 0) {
        // The accepted trial replayed tolerance-admitted stamps: never
        // converge on an approximated residual.  Re-check with replay
        // restricted to caches captured at this exact iterate -- those
        // entries ARE the true evaluation here, so replaying them is
        // free and exact -- while every tolerance-admitted device gets a
        // real model evaluation and its cache re-seeded at the solution.
        system_.set_bypass_exact_only(true);
        system_.assemble(x, jacobian, residual, scale, mode, time, dt, gmin,
                         source_factor);
        system_.set_bypass_exact_only(false);
        if (stats) {
          ++stats->assembles;
          ++stats->forced_refreshes;
        }
        res_norm =
            weighted_residual_norm(system_, residual, scale, options_.reltol);
        fresh_at_x = true;
        jacobian_at_trial = true;
        if (res_norm <= 1.0) {
          last_converged_iters_ = iter + 1;
          return x;
        }
        // Tolerance-admitted drift hid real residual movement.  The
        // verification itself re-seeded every cache with a true
        // evaluation at x, so replay stays trustworthy from here; just
        // force a Jacobian refresh and keep iterating.  If it happens
        // twice in one solve the iterate is hovering at the tolerance
        // edge: stop replaying for the remainder of the solve rather
        // than paying a verify assembly per bounce.
        verification_failed = true;
        if (++verify_failures >= 2)
          system_.set_bypass_replay_suspended(true);
      } else {
        last_converged_iters_ = iter + 1;
        return x;
      }
    }

    if (options_.jacobian_reuse) {
      const bool contracted =
          halvings_used == 0 &&
          (trial_norm <= options_.reuse_residual_ratio * prev_norm ||
           trial_norm <= 1.0);
      if (use_stale && !contracted && stats) ++stats->forced_refreshes;
      contraction_ok = contracted && !verification_failed;
    }

    if (!jacobian_at_trial) {
      const bool keep_stale = options_.jacobian_reuse &&
                              dense_lu_.has_value() &&
                              lu_context_compatible(mode, dt, gmin,
                                                    source_factor) &&
                              contraction_ok;
      if (!keep_stale) {
        // A damped trial was accepted: refresh the Jacobian at the new x.
        system_.assemble(x, jacobian, residual, scale, mode, time, dt, gmin,
                         source_factor);
        if (stats) ++stats->assembles;
        fresh_at_x = true;
      }
    }
  }
  throw ConvergenceError(
      "Newton: no convergence after " +
          std::to_string(options_.max_iterations) +
          " iterations (weighted residual " + std::to_string(res_norm) + ")",
      failure_diagnostics(system_, residual, scale, options_.reltol, time,
                          dt, options_.max_iterations, res_norm,
                          last_update_norm, "plain"));
}

void NewtonSolver::ensure_sparse_skeleton() {
  const std::uint64_t epoch = system_.jacobian_pattern_epoch();
  if (!sparse_ready_ || sparse_epoch_ != epoch) {
    sparse_jac_ = system_.make_sparse_jacobian();
    sparse_epoch_ = system_.jacobian_pattern_epoch();
    sparse_ready_ = true;
    lu_ready_ = false;
  }
}

linalg::Vector NewtonSolver::solve_plain_sparse(const linalg::Vector& x0,
                                                AnalysisMode mode, double time,
                                                double dt, double gmin,
                                                double source_factor,
                                                NewtonStats* stats) {
  const std::size_t n = system_.num_unknowns();
  linalg::Vector x = x0;
  linalg::Vector residual, scale;
  linalg::Vector x_trial, residual_trial, scale_trial;

  ensure_sparse_skeleton();

  // Linear devices' Jacobian values are constant for the whole solve
  // (fixed mode/time/dt and committed device state): stamp them once —
  // lazily, so a solve that starts (and finishes) against a kept stale
  // LU never pays for a baseline it does not use.
  bool baseline_fresh = false;
  auto refresh_baseline = [&]() {
    while (!system_.assemble_linear_jacobian(x, sparse_jac_, linear_baseline_,
                                             mode, time, dt)) {
      ensure_sparse_skeleton();
    }
    baseline_fresh = true;
  };

  // Full assembly with pattern-growth retry: on a miss the system grows
  // its pattern, we rebuild the skeleton + baseline and assemble again.
  auto assemble_full = [&](const linalg::Vector& xi, linalg::Vector& f,
                           linalg::Vector& s) {
    if (!baseline_fresh) refresh_baseline();
    while (!system_.assemble_sparse(xi, sparse_jac_, f, s, mode, time, dt,
                                    gmin, source_factor, &linear_baseline_)) {
      ensure_sparse_skeleton();
      refresh_baseline();
    }
    if (stats) ++stats->assembles;
  };

  // Cross-step modified Newton: when the kept LU was factored at a
  // compatible analysis point, start the solve against it and defer all
  // Jacobian work until the contraction test demands a refresh.
  const bool start_stale = options_.jacobian_reuse && lu_ready_ &&
                           last_converged_iters_ <= 1 &&
                           lu_context_compatible(mode, dt, gmin,
                                                 source_factor);
  bool contraction_ok = last_converged_iters_ <= 1;
  bool fresh_at_x = false;
  if (start_stale) {
    system_.assemble_residual(x, residual, scale, mode, time, dt, gmin,
                              source_factor);
    if (stats) ++stats->residual_assembles;
  } else {
    assemble_full(x, residual, scale);
    fresh_at_x = true;
  }
  double res_norm =
      weighted_residual_norm(system_, residual, scale, options_.reltol);
  double last_update_norm = 0.0;
  int verify_failures = 0;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    if (stats) {
      ++stats->iterations;
      ++stats->total_iterations;
    }

    if (options_.bypass && iter == options_.max_iterations / 2) {
      // Half the iteration budget is gone: a coarse replay tolerance may
      // be masking real residual movement.  Fall back to full
      // evaluations for the rest of this solve and refresh at x.
      system_.set_bypass_replay_suspended(true);
      fresh_at_x = false;
      contraction_ok = false;
      if (stats) ++stats->forced_refreshes;
    }

    const bool use_stale = options_.jacobian_reuse && lu_ready_ &&
                           lu_context_compatible(mode, dt, gmin,
                                                 source_factor) &&
                           contraction_ok;
    if (!use_stale && !fresh_at_x) {
      // Leaving stale mode: rebuild the true Jacobian at x first.
      assemble_full(x, residual, scale);
      res_norm =
          weighted_residual_norm(system_, residual, scale, options_.reltol);
      fresh_at_x = true;
    }

    // Newton direction: J dx = -f.  The symbolic analysis (pivot order +
    // fill pattern) is reused across iterations; only the numeric sweep
    // runs, unless a pivot decayed past the threshold or the pattern
    // changed — then a full factorization recovers.  A stale-LU
    // iteration skips even the numeric sweep and solves against the
    // factors kept from an earlier iterate or step.
    linalg::Vector dx;
    try {
      if (use_stale) {
        if (stats) ++stats->stale_jacobian_solves;
      } else {
        const linalg::CsrView view = linalg::csr_view(sparse_jac_);
        if (lu_ready_ && sparse_lu_.refactor(view)) {
          if (stats) ++stats->factorization_reuses;
        } else {
          sparse_lu_.factor(view);
          lu_ready_ = true;
          if (stats) ++stats->factorizations;
        }
        lu_mode_ = mode;
        lu_dt_ = dt;
        lu_gmin_ = gmin;
        lu_source_factor_ = source_factor;
        lu_context_valid_ = true;
      }
      dx = residual;
      for (std::size_t i = 0; i < n; ++i) dx[i] = -dx[i];
      sparse_lu_.solve_in_place(dx);
    } catch (const SingularMatrixError&) {
      throw ConvergenceError(
          "Newton: singular Jacobian (floating node or unstable device?)",
          failure_diagnostics(system_, residual, scale, options_.reltol,
                              time, dt, iter, res_norm, last_update_norm,
                              "singular-jacobian"));
    }

    const double clamp = step_clamp(system_, dx);

    // When this trial can be the converging one -- the undamped update
    // already satisfies the update test and the residual is within
    // striking distance -- restrict replay to bitwise-exact caches for
    // the whole trial: if it converges, it converged on the true
    // residual and the separate verification below is unnecessary.  The
    // update norm is computable before assembling (dx is known), so
    // non-final trials keep full tolerance replay.
    x_trial = x;
    for (std::size_t i = 0; i < n; ++i) x_trial[i] += clamp * dx[i];
    const bool exact_trial =
        options_.bypass && res_norm <= kExactTrialNorm &&
        weighted_update_norm(system_, x, x_trial, options_.reltol) <= 1.0;
    double alpha = clamp;
    double trial_norm = 0.0;
    bool jacobian_at_trial = false;
    int halvings_used = 0;
    std::int64_t trial_bypassed = 0;
    for (int halving = 0; halving <= options_.max_damping_halvings;
         ++halving) {
      x_trial = x;
      for (std::size_t i = 0; i < n; ++i) x_trial[i] += alpha * dx[i];
      const std::int64_t bypassed_before = system_.bypass_counters().bypassed;
      // Exact mode only applies to the undamped trial; a halved step is
      // no longer the predicted convergence point, so fall back to
      // tolerance replay (the verification below then covers it).  An
      // exact trial always builds the full Jacobian, even against a
      // stale LU: its fresh evaluations must capture complete cache
      // entries, and the Jacobian at the solution is exactly what the
      // next solve's cross-step reuse wants.
      system_.set_bypass_exact_only(exact_trial && halving == 0);
      if (halving == 0 && (!use_stale || exact_trial)) {
        assemble_full(x_trial, residual_trial, scale_trial);
        jacobian_at_trial = true;
      } else {
        system_.assemble_residual(x_trial, residual_trial, scale_trial, mode,
                                  time, dt, gmin, source_factor);
        jacobian_at_trial = false;
        if (stats) ++stats->residual_assembles;
      }
      trial_bypassed = system_.bypass_counters().bypassed - bypassed_before;
      trial_norm = weighted_residual_norm(system_, residual_trial, scale_trial,
                                          options_.reltol);
      if (trial_norm <= std::max(1.0, res_norm) ||
          (halving == options_.max_damping_halvings)) {
        halvings_used = halving;
        break;
      }
      alpha *= 0.5;
    }
    system_.set_bypass_exact_only(false);

    const double update_norm =
        weighted_update_norm(system_, x, x_trial, options_.reltol);
    last_update_norm = update_norm;

    const double prev_norm = res_norm;
    x = x_trial;
    residual = residual_trial;
    scale = scale_trial;
    res_norm = trial_norm;
    fresh_at_x = jacobian_at_trial;

    bool verification_failed = false;
    if (res_norm <= 1.0 && update_norm <= 1.0) {
      if (options_.bypass && !(exact_trial && halvings_used == 0) &&
          trial_bypassed > 0) {
        // The accepted trial replayed tolerance-admitted stamps: never
        // converge on an approximated residual.  Re-check with replay
        // restricted to caches captured at this exact iterate -- those
        // entries ARE the true evaluation here, so replaying them is
        // free and exact -- while every tolerance-admitted device gets a
        // real model evaluation and its cache re-seeded at the solution.
        system_.set_bypass_exact_only(true);
        assemble_full(x, residual, scale);
        system_.set_bypass_exact_only(false);
        if (stats) ++stats->forced_refreshes;
        res_norm =
            weighted_residual_norm(system_, residual, scale, options_.reltol);
        fresh_at_x = true;
        jacobian_at_trial = true;
        if (res_norm <= 1.0) {
          last_converged_iters_ = iter + 1;
          return x;
        }
        // Tolerance-admitted drift hid real residual movement.  The
        // verification itself re-seeded every cache with a true
        // evaluation at x, so replay stays trustworthy from here; just
        // force a Jacobian refresh and keep iterating.  If it happens
        // twice in one solve the iterate is hovering at the tolerance
        // edge: stop replaying for the remainder of the solve rather
        // than paying a verify assembly per bounce.
        verification_failed = true;
        if (++verify_failures >= 2)
          system_.set_bypass_replay_suspended(true);
      } else {
        last_converged_iters_ = iter + 1;
        return x;
      }
    }

    if (options_.jacobian_reuse) {
      const bool contracted =
          halvings_used == 0 &&
          (trial_norm <= options_.reuse_residual_ratio * prev_norm ||
           trial_norm <= 1.0);
      if (use_stale && !contracted && stats) ++stats->forced_refreshes;
      contraction_ok = contracted && !verification_failed;
    }

    if (!jacobian_at_trial) {
      const bool keep_stale = options_.jacobian_reuse && lu_ready_ &&
                              lu_context_compatible(mode, dt, gmin,
                                                    source_factor) &&
                              contraction_ok;
      if (!keep_stale) {
        assemble_full(x, residual, scale);
        res_norm =
            weighted_residual_norm(system_, residual, scale, options_.reltol);
        fresh_at_x = true;
      }
    }
  }
  throw ConvergenceError(
      "Newton: no convergence after " +
          std::to_string(options_.max_iterations) +
          " iterations (weighted residual " + std::to_string(res_norm) + ")",
      failure_diagnostics(system_, residual, scale, options_.reltol, time,
                          dt, options_.max_iterations, res_norm,
                          last_update_norm, "plain"));
}

linalg::Vector NewtonSolver::solve(const linalg::Vector& x0, AnalysisMode mode,
                                   double time, double dt,
                                   NewtonStats* stats, RunReport* report) {
  NewtonStats local;
  NewtonStats* st = stats ? stats : &local;

  // Runs one ladder stage, recording its iteration cost (the delta of the
  // cumulative counter — stages accumulate into the total instead of
  // clobbering each other) and outcome into the report.
  auto run_stage = [&](SteppingStageRecord::Kind kind, double value,
                       const linalg::Vector& start, double gmin,
                       double source_factor) {
    const int before = st->total_iterations;
    try {
      linalg::Vector x =
          solve_plain(start, mode, time, dt, gmin, source_factor, st);
      const int spent = st->total_iterations - before;
      if (report) report->stages.push_back({kind, value, spent, true});
      // Documented NewtonStats semantics: `iterations` is the cost of the
      // final (successful) solve; the ladder total lives in
      // total_iterations.
      st->iterations = spent;
      return x;
    } catch (const ConvergenceError&) {
      if (report) {
        report->stages.push_back(
            {kind, value, st->total_iterations - before, false});
      }
      st->iterations = st->total_iterations;
      throw;
    }
  };

  // Keeps the most informative failure so the final error can carry its
  // structured payload even after later strategies also fail.
  ConvergenceError last_error("Newton: no strategy attempted");

  try {
    return run_stage(SteppingStageRecord::Kind::kPlain, options_.gmin_final,
                     x0, options_.gmin_final, 1.0);
  } catch (const ConvergenceError& e) {
    last_error = e;
    log_debug("Newton: plain solve failed, trying gmin stepping");
  }

  if (options_.gmin_stepping) {
    try {
      linalg::Vector x = x0;
      // Ramp the shunt conductance down decade by decade, reusing each
      // converged point as the next start.
      for (double gmin = 1e-3; gmin >= options_.gmin_final * 0.99 &&
                               gmin >= 1e-15;
           gmin *= 0.1) {
        ++st->gmin_steps;
        x = run_stage(SteppingStageRecord::Kind::kGminStep, gmin, x, gmin,
                      1.0);
      }
      return run_stage(SteppingStageRecord::Kind::kGminStep,
                       options_.gmin_final, x, options_.gmin_final, 1.0);
    } catch (const ConvergenceError& e) {
      last_error = e;
      log_debug("Newton: gmin stepping failed, trying source stepping");
    }
  }

  if (options_.source_stepping) {
    linalg::Vector x(system_.num_unknowns(), 0.0);
    double factor = 0.0;
    double step = 0.1;
    // At factor 0 all sources are off; x = 0 is the exact solution for
    // most circuits, so Newton converges immediately and we walk up.
    while (factor < 1.0) {
      const double next = std::min(1.0, factor + step);
      try {
        ++st->source_steps;
        x = run_stage(SteppingStageRecord::Kind::kSourceStep, next, x,
                      options_.gmin_final, next);
        factor = next;
        step = std::min(0.25, step * 1.5);
      } catch (const ConvergenceError& e) {
        last_error = e;
        step *= 0.5;
        if (step < 1e-4) {
          const std::string msg = "Newton: source stepping stalled at factor " +
                                  std::to_string(factor);
          if (last_error.has_diagnostics()) {
            ConvergenceDiagnostics diag = *last_error.diagnostics();
            diag.strategy = "source";
            throw ConvergenceError(msg, std::move(diag));
          }
          throw ConvergenceError(msg);
        }
      }
    }
    return x;
  }

  const std::string msg =
      std::string("Newton: all strategies failed (last: ") +
      last_error.what() + ")";
  if (last_error.has_diagnostics()) {
    ConvergenceDiagnostics diag = *last_error.diagnostics();
    diag.strategy = options_.gmin_stepping ? "gmin" : "plain";
    throw ConvergenceError(msg, std::move(diag));
  }
  throw ConvergenceError(msg);
}

}  // namespace nemsim::spice
