// Waveform measurements: crossings, delays, integrals, averages.
//
// These are the primitives every experiment harness builds on: 50 %
// propagation delays, switching energy (integral of supply current),
// steady-state leakage (late-window average).
#pragma once

#include <cstddef>
#include <string>

#include "nemsim/spice/waveform.h"

namespace nemsim::spice {

enum class Edge { kRising, kFalling, kEither };

/// Time of the `occurrence`-th (1-based) crossing of `level` by `signal`,
/// searching within [t_from, t_to] (0/inf mean full range).  Uses linear
/// interpolation between samples.  Throws MeasurementError when the
/// requested crossing does not exist.
///
/// Each sample interval is treated as half-open, (t[k-1], t[k]]: a sample
/// that lands exactly on `level` counts as one crossing, attributed to
/// the interval that reaches it — never counted again by the interval
/// that leaves it.
double cross_time(const Waveform& wave, const std::string& signal,
                  double level, Edge edge = Edge::kEither,
                  std::size_t occurrence = 1, double t_from = 0.0,
                  double t_to = 0.0);

/// True when the crossing exists (same search as cross_time).
bool has_crossing(const Waveform& wave, const std::string& signal,
                  double level, Edge edge = Edge::kEither,
                  std::size_t occurrence = 1, double t_from = 0.0,
                  double t_to = 0.0);

/// Propagation delay: time from `from_signal` crossing `from_level` to the
/// next `to_signal` crossing of `to_level` at/after that instant.
double propagation_delay(const Waveform& wave, const std::string& from_signal,
                         double from_level, Edge from_edge,
                         const std::string& to_signal, double to_level,
                         Edge to_edge, double t_from = 0.0);

// --- Windowed measurements --------------------------------------------
//
// Shared window semantics (integrate, average, max_value, min_value,
// rms): the window is [t0, t1], with t1 = 0 meaning "until the last
// sample".  The window is clamped to the sampled span, and the values at
// the clamped boundaries are obtained by linear interpolation — a
// boundary falling between two samples contributes the interpolated
// value there, so integrals and extrema agree about where the window
// ends (an extremum attained exactly at an interpolated edge is seen by
// max_value/min_value just as integrate accumulates up to it).  The
// point-valued measurements (extrema, rms) throw MeasurementError /
// InvalidArgument when the window lies entirely outside the sampled
// span; integrate returns 0 over an empty overlap.

/// Trapezoidal integral of `signal` over [t0, t1].
double integrate(const Waveform& wave, const std::string& signal, double t0,
                 double t1);

/// Time average of `signal` over [t0, t1].
double average(const Waveform& wave, const std::string& signal, double t0,
               double t1);

/// Extrema of `signal` over [t0, t1]: all samples inside the window plus
/// the interpolated values at the clamped window boundaries.
double max_value(const Waveform& wave, const std::string& signal,
                 double t0 = 0.0, double t1 = 0.0);
double min_value(const Waveform& wave, const std::string& signal,
                 double t0 = 0.0, double t1 = 0.0);

/// Root-mean-square of `signal` over [t0, t1] (exact per-segment
/// integration of the squared linear interpolant, same window semantics
/// as the other windowed measurements).
double rms(const Waveform& wave, const std::string& signal, double t0 = 0.0,
           double t1 = 0.0);

/// Value of `signal` at the final sample.
double final_value(const Waveform& wave, const std::string& signal);

}  // namespace nemsim::spice
