// Type-bucketed SoA evaluation kernels with frozen scatter maps.
//
// The generic assembly path walks the device list making one virtual
// Device::stamp call per device per Newton iteration, and every sparse
// Jacobian write pays a per-entry binary search (CsrMatrix::slot) inside
// StampContext::raw_J.  For the transient sweeps that dominate the
// paper's figures this is the hot loop.  This header provides the
// alternative: at configure time the engine buckets devices by concrete
// type into *lanes* — contiguous arrays of unknown indices plus a
// per-device *scatter map* of direct value-array offsets (CSR nzval
// slots, or dense row-major offsets) — and each bucket supplies one
// batch function that evaluates the whole lane in a tight loop, writing
// f/J contributions straight into the sink storage.  No virtual call per
// device, no NodeId-to-unknown hashing, no slot search per entry: those
// are all resolved once per pattern epoch and frozen into the plan.
//
// Opt-in via NewtonOptions::kernels (accel contract: default off is
// bitwise-identical to the virtual path; on is a reltol contract because
// lanes accumulate in bucket order, not circuit order — see DESIGN.md
// §7i and Contract::kKernels).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nemsim/spice/device.h"
#include "nemsim/spice/ids.h"

namespace nemsim::spice {

class MnaSystem;

/// Sentinel for "no row / no slot".  Roles bound to ground (and Jacobian
/// cells touching them) carry this: reads yield 0, writes are dropped —
/// exactly the ground-row semantics of StampContext.
inline constexpr std::size_t kKernelAbsent = static_cast<std::size_t>(-1);

/// Unknown-table lookups handed to Device::kernel_descriptor, so devices
/// can translate their terminals into role unknowns without depending on
/// MnaSystem directly.
class KernelLayout {
 public:
  explicit KernelLayout(const MnaSystem& system) : system_(system) {}

  /// Unknown carrying a node's voltage; kNoUnknown for ground.
  UnknownId of(NodeId node) const;
  /// Identity overload so descriptors can list node and internal
  /// unknowns uniformly.
  static UnknownId of(UnknownId unknown) { return unknown; }

 private:
  const MnaSystem& system_;
};

/// Raw sinks + scalars of one assembly pass, shared by every lane the
/// pass evaluates.  Built by the engine from the active StampContext.
struct KernelEvalContext {
  const double* x = nullptr;              ///< Newton iterate
  double* residual = nullptr;             ///< null: Jacobian-only pass
  double* residual_scale = nullptr;       ///< accumulates sum(|f|) per row
  /// Jacobian value storage — CSR nzval or dense row-major data; which
  /// one is already encoded in the lane's slot table.  Null: residual-
  /// only pass (damping trials), J writes are dropped.
  double* jacobian = nullptr;
  AnalysisMode mode = AnalysisMode::kDcOperatingPoint;
  double time = 0.0;
  double dt = 0.0;
  double gmin = 0.0;
  double source_factor = 1.0;
};

/// Role-indexed writer for one device inside a batch loop.  A *role* is
/// the device type's fixed terminal/unknown index (e.g. MOSFET: 0 = d,
/// 1 = g, 2 = s); role -1 addresses ground explicitly (companion models
/// with a grounded terminal).  All guards compile down to one compare
/// per access; with constant roles the -1 checks fold away entirely.
class KernelSink {
 public:
  KernelSink(const KernelEvalContext& ctx, const std::size_t* rows,
             const std::size_t* slots, int roles)
      : ctx_(ctx), rows_(rows), slots_(slots), roles_(roles) {}

  /// Iterate value of a role's unknown (0 for ground-tied roles).
  double xr(int role) const {
    if (role < 0) return 0.0;
    const std::size_t u = rows_[static_cast<std::size_t>(role)];
    return u == kKernelAbsent ? 0.0 : ctx_.x[u];
  }

  bool dc() const { return ctx_.mode == AnalysisMode::kDcOperatingPoint; }
  AnalysisMode mode() const { return ctx_.mode; }
  double time() const { return ctx_.time; }
  double dt() const { return ctx_.dt; }
  double gmin() const { return ctx_.gmin; }
  double source_factor() const { return ctx_.source_factor; }

  /// Adds `value` to the role's residual row (and its scale), mirroring
  /// StampContext::raw_f.  Dropped for ground roles / residual-less pass.
  void f(int role, double value) const {
    if (role < 0 || ctx_.residual == nullptr) return;
    const std::size_t u = rows_[static_cast<std::size_t>(role)];
    if (u == kKernelAbsent) return;
    ctx_.residual[u] += value;
    ctx_.residual_scale[u] += std::abs(value);
  }

  /// Adds d f(eq_role) / d x(var_role) through the frozen scatter map.
  void J(int eq_role, int var_role, double value) const {
    if (eq_role < 0 || var_role < 0 || ctx_.jacobian == nullptr) return;
    const std::size_t s =
        slots_[static_cast<std::size_t>(eq_role) *
                   static_cast<std::size_t>(roles_) +
               static_cast<std::size_t>(var_role)];
    if (s == kKernelAbsent) return;
    ctx_.jacobian[s] += value;
  }

 private:
  const KernelEvalContext& ctx_;
  const std::size_t* rows_;   ///< roles entries: unknown index or absent
  const std::size_t* slots_;  ///< roles*roles entries: value offsets
  int roles_;
};

/// One lane's view handed to its batch function: parallel arrays over
/// `count` devices of the same concrete type.
struct KernelLaneView {
  const Device* const* devices = nullptr;
  std::size_t count = 0;
  int roles = 0;
  const std::size_t* rows = nullptr;   ///< count * roles
  const std::size_t* slots = nullptr;  ///< count * roles * roles
};

using KernelBatchFn = void (*)(const KernelLaneView&,
                               const KernelEvalContext&);

/// The canonical batch function: a tight loop of direct (devirtualized)
/// per-device evaluations.  Each device type T exposes
/// `void kernel_eval(const KernelSink&) const` and registers
/// `&kernel_batch_eval<T>` in its descriptor.
template <typename DeviceT>
void kernel_batch_eval(const KernelLaneView& lane,
                       const KernelEvalContext& ctx) {
  const std::size_t r = static_cast<std::size_t>(lane.roles);
  const std::size_t rr = r * r;
  for (std::size_t i = 0; i < lane.count; ++i) {
    const KernelSink sink(ctx, lane.rows + i * r, lane.slots + i * rr,
                          lane.roles);
    static_cast<const DeviceT*>(lane.devices[i])->kernel_eval(sink);
  }
}

/// Filled by Device::kernel_descriptor.  Devices sharing a bucket key
/// must share `batch` and `roles` (the plan builder verifies and demotes
/// mismatches to the per-device fallback path).
struct KernelDescriptor {
  bool supported = false;
  /// Stable bucket key ("resistor", "mosfet", ...) — also the label the
  /// per-bucket eval counters report under.
  const char* bucket = "";
  KernelBatchFn batch = nullptr;
  int roles = 0;
  /// Unknown behind each role (kNoUnknown for ground-tied terminals).
  std::vector<UnknownId> role_unknowns;
  /// Declared union of Jacobian (eq_role, var_role) cells over all
  /// analysis modes AND runtime orientations (e.g. the MOSFET
  /// source/drain swap).  Undeclared cells have no slot and silently
  /// drop writes — a device must declare every cell it can ever stamp.
  std::vector<std::pair<std::uint8_t, std::uint8_t>> j_positions;

  void add_j(int eq_role, int var_role) {
    j_positions.emplace_back(static_cast<std::uint8_t>(eq_role),
                             static_cast<std::uint8_t>(var_role));
  }
};

/// One type bucket: SoA arrays over its member devices, in circuit
/// (registration) order.
struct KernelLane {
  std::string bucket;
  KernelBatchFn batch = nullptr;
  int roles = 0;
  bool linear = false;      ///< device_class 0 (vs nonlinear lanes)
  bool bypassable = false;  ///< any member supports quiescent bypass
  std::vector<const Device*> devices;
  std::vector<std::size_t> device_indices;  ///< MnaSystem device index
  std::vector<std::size_t> rows;            ///< count * roles
  /// Declared (row, col) per Jacobian cell — (absent, absent) for
  /// undeclared or ground-dropped cells.  count * roles * roles.
  std::vector<std::pair<std::size_t, std::size_t>> rowcol;
  std::vector<std::size_t> dense_slots;   ///< row * n + col
  std::vector<std::size_t> sparse_slots;  ///< CSR nzval slots (per epoch)
  std::uint64_t evals = 0;  ///< cumulative device evaluations via kernels

  KernelLaneView view(const std::size_t* slot_table) const {
    return {devices.data(), devices.size(), roles, rows.data(), slot_table};
  }
};

/// The frozen evaluation plan for one MnaSystem: built once at the first
/// kernels-enabled solve, CSR slots re-resolved whenever the Jacobian
/// pattern epoch moves.
struct KernelPlan {
  std::vector<KernelLane> lanes;  ///< bucket creation order
  /// Devices with no (usable) descriptor, stamped via the virtual path
  /// after the lanes; split by linearity to serve DeviceSet passes.
  std::vector<std::size_t> leftover_linear;
  std::vector<std::size_t> leftover_nonlinear;
  /// Union of all lanes' declared (row, col) cells, deduplicated — the
  /// positions the Jacobian pattern is pre-grown to contain.
  std::vector<std::pair<std::size_t, std::size_t>> declared_cells;
  /// Pattern epoch `sparse_slots` were resolved against; kNoEpoch when
  /// never resolved (or resolution failed and must be retried).
  static constexpr std::uint64_t kNoEpoch = ~std::uint64_t{0};
  std::uint64_t sparse_epoch = kNoEpoch;
};

}  // namespace nemsim::spice
