// Transient analysis: adaptive-step integration of the full MNA system.
//
// Devices discretize their own dynamics (capacitors/inductors use
// trapezoidal companions with backward-Euler restarts at source
// discontinuities; the NEMS beam uses backward Euler for its mechanical
// rows).  The driver adapts the step from a predictor-corrector local
// truncation error estimate and lands exactly on source breakpoints.
#pragma once

#include "nemsim/spice/analysis.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/waveform.h"

namespace nemsim::spice {

/// Diagnostic counters filled in by the transient driver.
struct TransientStats {
  std::size_t accepted_steps = 0;
  std::size_t newton_failures = 0;  ///< step retries due to non-convergence
  std::size_t lte_rejects = 0;      ///< step retries due to truncation error
  double min_dt = 0.0;
  double max_dt = 0.0;
};

/// Newton settings, report sink, forensics, and lint gate live in the
/// shared AnalysisCommon base (nemsim/spice/analysis.h).
struct TransientOptions : AnalysisCommon {
  double tstop = 0.0;          ///< required: end time (seconds)
  double dt_initial = 1e-12;   ///< first step and post-breakpoint restart
  double dt_min = 1e-18;       ///< give up below this step
  double dt_max = 0.0;         ///< 0 → tstop / 50
  double lte_reltol = 2e-3;    ///< LTE target relative to signal magnitude
  double reject_factor = 8.0;  ///< reject a step when LTE ratio exceeds this
  TransientStats* stats = nullptr;  ///< optional diagnostics sink
  /// Optional cumulative Newton work counters (assembles, factorizations,
  /// sparse refactorization reuses) summed over every accepted and
  /// rejected step of the run.
  NewtonStats* newton_stats = nullptr;
  /// Opt-in signal subset: when non-empty, only these unknowns (by
  /// display name, e.g. "v(out)") are recorded into the waveform, so big
  /// structural circuits stop copying every unknown on every accepted
  /// step.  Empty records everything (bitwise-identical default).
  /// Unknown names throw InvalidArgument before the run starts.
  std::vector<std::string> record_signals;
  /// Optional breakpoint schedule computed ahead of time (compiled
  /// execution memoizes MnaSystem::breakpoints per tstop).  Must be the
  /// sorted distinct breakpoints in (0, tstop] for THIS system and
  /// tstop; the driver uses it verbatim instead of re-collecting.
  const std::vector<double>* precomputed_breakpoints = nullptr;
};

/// Runs a transient from the DC operating point at t = 0.
/// Returns the full solution trace (every unknown, every accepted step).
Waveform transient(MnaSystem& system, const TransientOptions& options);

}  // namespace nemsim::spice
