// Damped Newton-Raphson over the MNA system, with gmin stepping and
// source stepping fallbacks for hard DC problems (classic SPICE homotopy
// ladder).
#pragma once

#include "nemsim/linalg/matrix.h"
#include "nemsim/spice/engine.h"

namespace nemsim::spice {

struct NewtonOptions {
  int max_iterations = 150;
  /// Relative tolerance on unknown updates and residual-vs-scale.
  /// Kept well below the transient LTE tolerance so integration error
  /// control sees truncation error, not Newton convergence noise.
  double reltol = 1e-7;
  /// Maximum halvings of the Newton step during damping.
  int max_damping_halvings = 8;
  /// Shunt conductance left in place even in the final solve; 0 for a
  /// clean system.  A tiny nonzero value (1e-15) guards floating nodes.
  double gmin_final = 1e-15;
  /// Enables the gmin-ramp fallback when the plain solve fails.
  bool gmin_stepping = true;
  /// Enables the source-ramp fallback when gmin stepping also fails.
  bool source_stepping = true;
};

struct NewtonStats {
  int iterations = 0;      ///< iterations of the successful (final) solve
  int total_iterations = 0;///< including homotopy ladder solves
  int gmin_steps = 0;
  int source_steps = 0;
};

/// Solves f(x) = 0 for the configured analysis point.
class NewtonSolver {
 public:
  NewtonSolver(MnaSystem& system, NewtonOptions options)
      : system_(system), options_(options) {}

  /// Plain damped Newton from `x0` with fixed gmin/source factor.
  /// Throws ConvergenceError / SingularMatrixError on failure.
  linalg::Vector solve_plain(const linalg::Vector& x0, AnalysisMode mode,
                             double time, double dt, double gmin,
                             double source_factor, NewtonStats* stats = nullptr);

  /// Full ladder: plain solve, then gmin stepping, then source stepping.
  linalg::Vector solve(const linalg::Vector& x0, AnalysisMode mode,
                       double time, double dt, NewtonStats* stats = nullptr);

  const NewtonOptions& options() const { return options_; }

 private:
  MnaSystem& system_;
  NewtonOptions options_;
};

}  // namespace nemsim::spice
