// Damped Newton-Raphson over the MNA system, with gmin stepping and
// source stepping fallbacks for hard DC problems (classic SPICE homotopy
// ladder).
//
// Two linear-solver paths share the outer loop:
//  - dense: LU of a dense Jacobian, re-factored every iteration (wins for
//    small systems, DESIGN.md decision #4);
//  - sparse: pattern-frozen CSR assembly plus SparseLuFactorization,
//    whose symbolic analysis (pivot order + fill pattern) is computed
//    once and reused across iterations and transient steps with a cheap
//    numeric-only refactorization.
// kAuto picks by system size against NewtonOptions::sparse_threshold.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "nemsim/linalg/lu.h"
#include "nemsim/linalg/matrix.h"
#include "nemsim/linalg/sparse.h"
#include "nemsim/linalg/sparse_lu.h"
#include "nemsim/spice/engine.h"

namespace nemsim::spice {

struct RunReport;  // spice/diagnostics.h

/// Which linear solver backs the Newton iteration.
enum class JacobianSolver {
  kAuto,    ///< sparse at/above NewtonOptions::sparse_threshold unknowns
  kDense,   ///< dense LU, re-factored every iteration
  kSparse,  ///< CSR assembly + cached-symbolic sparse LU
};

struct NewtonOptions {
  int max_iterations = 150;
  /// Relative tolerance on unknown updates and residual-vs-scale.
  /// Kept well below the transient LTE tolerance so integration error
  /// control sees truncation error, not Newton convergence noise.
  double reltol = 1e-7;
  /// Maximum halvings of the Newton step during damping.
  int max_damping_halvings = 8;
  /// Shunt conductance left in place even in the final solve; 0 for a
  /// clean system.  A tiny nonzero value (1e-15) guards floating nodes.
  double gmin_final = 1e-15;
  /// Enables the gmin-ramp fallback when the plain solve fails.
  bool gmin_stepping = true;
  /// Enables the source-ramp fallback when gmin stepping also fails.
  bool source_stepping = true;
  /// Linear-solver selection (see JacobianSolver).
  JacobianSolver solver = JacobianSolver::kAuto;
  /// kAuto switches to the sparse path at this many unknowns.  Measured
  /// dense/sparse crossover on the paper circuits (BM_TransientSolverPath:
  /// dense wins at n = 25, sparse wins at n = 41 — see DESIGN.md decision
  /// #4 and bench/perf_simulator).
  std::size_t sparse_threshold = 32;

  // --- Event-locality acceleration (off by default: with both knobs
  // off, results are bitwise identical to the baseline engine).  See
  // DESIGN.md "Quiescent bypass and Jacobian reuse".

  /// Quiescent-device bypass: nonlinear devices whose inputs (iterate,
  /// context scalars, committed state) moved less than the bypass
  /// tolerance since their last full evaluation replay their cached
  /// residual/Jacobian entries, first-order corrected for the input
  /// delta.  Convergence is never declared on a replayed residual: a
  /// trial predicted to converge runs with replay restricted to
  /// bitwise-exact caches (whose entries ARE the true evaluation), and
  /// any other converging iterate is re-verified the same way, so the
  /// accepted solution satisfies the true residual test regardless of
  /// the tolerance.
  bool bypass = false;
  /// Replay admission tolerances on device inputs.  Replay error is
  /// second order in the admitted delta (the cached Jacobian corrects
  /// the first-order term) and only perturbs the Newton direction —
  /// the exact-replay convergence guard keeps accepted solutions exact
  /// either way, so these sit orders of magnitude above solver reltol.
  /// Tightening them below ~1e-6 mostly converts replays into redundant
  /// evaluations; loosening beyond ~1e-3 starts costing extra Newton
  /// iterations on mis-steered steps.
  double bypass_reltol = 1e-4;
  double bypass_abstol = 1e-8;
  /// Modified Newton: keep the previous LU factorization across
  /// iterations and across accepted timesteps while convergence stays
  /// fast, refreshing on slow contraction, damping, homotopy stage
  /// changes, or dt changes beyond `reuse_dt_ratio`.
  bool jacobian_reuse = false;
  /// A stale-LU iteration must shrink the weighted residual norm to this
  /// fraction (or below tolerance) to keep the factorization.
  double reuse_residual_ratio = 0.3;
  /// Maximum dt growth/shrink ratio across steps before the cross-step
  /// LU is considered stale beyond use.
  double reuse_dt_ratio = 2.0;
  /// Type-bucketed SoA evaluation kernels (nemsim/spice/kernels.h):
  /// devices with a kernel descriptor assemble through per-type lanes
  /// that scatter f/J into the Jacobian through frozen slot maps instead
  /// of per-device virtual stamps with per-entry CSR slot searches.
  /// Off: bitwise identical to the baseline engine.  On: lanes
  /// accumulate in bucket order rather than circuit order, so results
  /// match the baseline to solver tolerance, not bitwise (reltol
  /// contract, Contract::kKernels).  Composes with bypass — kernels own
  /// cold full assemblies, bypass keeps owning hot replay of quiescent
  /// nonlinear devices.
  bool kernels = false;
};

struct NewtonStats {
  /// Iterations of the successful (final) solve only.  After a failed
  /// solve this equals total_iterations (everything that was attempted).
  int iterations = 0;
  /// Cumulative iterations including every homotopy ladder stage — never
  /// reset between stages, so the caller sees total work, not just the
  /// last stage (see RunReport::stages for the per-stage split).
  int total_iterations = 0;
  int gmin_steps = 0;
  int source_steps = 0;
  // Work counters for the fast-path instrumentation (cumulative across
  // ladder solves and, when the caller reuses the struct, across steps).
  std::int64_t assembles = 0;            ///< full residual+Jacobian passes
  std::int64_t residual_assembles = 0;   ///< residual-only damping trials
  std::int64_t factorizations = 0;       ///< full LU factorizations
  std::int64_t factorization_reuses = 0; ///< sparse numeric refactorizations
  bool used_sparse = false;              ///< sparse path taken at least once
  // Event-locality acceleration counters (NewtonOptions::bypass /
  // jacobian_reuse).  nonlinear_evals is maintained even with both knobs
  // off, so before/after comparisons share a baseline.
  std::int64_t nonlinear_evals = 0;      ///< nonlinear model evaluations run
  std::int64_t bypassed_evals = 0;       ///< evaluations replayed from cache
  std::int64_t stale_jacobian_solves = 0;///< solves against a kept-stale LU
  std::int64_t forced_refreshes = 0;     ///< stale state abandoned (slow
                                         ///< contraction or converged-
                                         ///< iteration verification)
  /// Per-bucket device evaluations through the kernel lane path
  /// (NewtonOptions::kernels), keyed by bucket label; empty when kernels
  /// never ran.
  std::vector<std::pair<std::string, std::uint64_t>> kernel_lane_evals;

  /// Fraction of nonlinear stamp requests served from the bypass cache.
  double bypass_hit_rate() const {
    const std::int64_t total = nonlinear_evals + bypassed_evals;
    return total > 0 ? static_cast<double>(bypassed_evals) /
                           static_cast<double>(total)
                     : 0.0;
  }

  /// Accumulates another stats block into this one (counters add,
  /// used_sparse ORs) — used by drivers that solve with a local block per
  /// step and fold it into a run-level report.
  void merge(const NewtonStats& other) {
    iterations += other.iterations;
    total_iterations += other.total_iterations;
    gmin_steps += other.gmin_steps;
    source_steps += other.source_steps;
    assembles += other.assembles;
    residual_assembles += other.residual_assembles;
    factorizations += other.factorizations;
    factorization_reuses += other.factorization_reuses;
    used_sparse = used_sparse || other.used_sparse;
    nonlinear_evals += other.nonlinear_evals;
    bypassed_evals += other.bypassed_evals;
    stale_jacobian_solves += other.stale_jacobian_solves;
    forced_refreshes += other.forced_refreshes;
    for (const auto& [bucket, count] : other.kernel_lane_evals) {
      add_kernel_lane_evals(bucket, count);
    }
  }

  /// Adds `count` evaluations to `bucket`'s kernel counter (merge by
  /// label, insertion-ordered).
  void add_kernel_lane_evals(const std::string& bucket, std::uint64_t count) {
    if (count == 0) return;
    for (auto& [name, total] : kernel_lane_evals) {
      if (name == bucket) {
        total += count;
        return;
      }
    }
    kernel_lane_evals.emplace_back(bucket, count);
  }
};

/// Solves f(x) = 0 for the configured analysis point.
///
/// Keep one NewtonSolver alive across transient steps: the sparse
/// workspace (CSR skeleton, symbolic LU, linear-device baseline) persists
/// between solve calls and is rebuilt only when the Jacobian pattern
/// grows.
class NewtonSolver {
 public:
  NewtonSolver(MnaSystem& system, NewtonOptions options)
      : system_(system), options_(options) {}

  /// Plain damped Newton from `x0` with fixed gmin/source factor.
  /// Throws ConvergenceError / SingularMatrixError on failure.
  linalg::Vector solve_plain(const linalg::Vector& x0, AnalysisMode mode,
                             double time, double dt, double gmin,
                             double source_factor, NewtonStats* stats = nullptr);

  /// Full ladder: plain solve, then gmin stepping, then source stepping.
  /// With a `report` attached, every ladder stage is recorded as a
  /// SteppingStageRecord (per-stage iteration counts alongside the
  /// cumulative NewtonStats totals).  On failure the thrown
  /// ConvergenceError carries a ConvergenceDiagnostics payload naming the
  /// worst weighted-residual rows.
  linalg::Vector solve(const linalg::Vector& x0, AnalysisMode mode,
                       double time, double dt, NewtonStats* stats = nullptr,
                       RunReport* report = nullptr);

  const NewtonOptions& options() const { return options_; }

  /// True when solve_plain would take the sparse path for this system.
  bool uses_sparse() const;

  /// Iteration count of the most recent converged solve (99 after a
  /// failed one).  The transient driver uses it to tell the quiet
  /// regime (easy solves, worth pinning dt so bypass caches replay)
  /// from active windows (follow the LTE controller verbatim).
  int last_converged_iters() const { return last_converged_iters_; }

 private:
  linalg::Vector solve_plain_dense(const linalg::Vector& x0,
                                   AnalysisMode mode, double time, double dt,
                                   double gmin, double source_factor,
                                   NewtonStats* stats);
  linalg::Vector solve_plain_sparse(const linalg::Vector& x0,
                                    AnalysisMode mode, double time, double dt,
                                    double gmin, double source_factor,
                                    NewtonStats* stats);
  /// (Re)builds the CSR skeleton when the system's pattern epoch moved;
  /// invalidates the cached symbolic LU on rebuild.
  void ensure_sparse_skeleton();
  /// True when the kept LU was factored at a compatible analysis point
  /// (same mode/gmin/source factor; dt within reuse_dt_ratio).
  bool lu_context_compatible(AnalysisMode mode, double dt, double gmin,
                             double source_factor) const;

  MnaSystem& system_;
  NewtonOptions options_;

  // Sparse fast-path workspace, persistent across solves so the symbolic
  // LU analysis amortizes over iterations and transient steps.
  linalg::CsrMatrix sparse_jac_;
  linalg::SparseLuFactorization sparse_lu_;
  std::vector<double> linear_baseline_;
  std::uint64_t sparse_epoch_ = 0;  ///< pattern epoch of sparse_jac_
  bool sparse_ready_ = false;       ///< sparse_jac_ matches current pattern
  bool lu_ready_ = false;           ///< sparse_lu_ analysis matches sparse_jac_

  // Modified-Newton state (NewtonOptions::jacobian_reuse): the analysis
  // point the kept LU was factored at, used to decide cross-solve reuse.
  // dense_lu_ holds the dense path's factorization across iterations and
  // solves (the sparse path reuses sparse_lu_ itself).
  std::optional<linalg::LuDecomposition> dense_lu_;
  AnalysisMode lu_mode_ = AnalysisMode::kDcOperatingPoint;
  double lu_dt_ = -1.0;
  double lu_gmin_ = -1.0;
  double lu_source_factor_ = -1.0;
  bool lu_context_valid_ = false;

  // Iteration count of the most recent converged solve.  Cross-step
  // stale-LU starts only pay off in the quiet regime where solves
  // converge in a step or two; after a hard solve the circuit is moving
  // and a stale start just wastes a residual pass before the inevitable
  // refresh.
  int last_converged_iters_ = 99;
};

}  // namespace nemsim::spice
