// Damped Newton-Raphson over the MNA system, with gmin stepping and
// source stepping fallbacks for hard DC problems (classic SPICE homotopy
// ladder).
//
// Two linear-solver paths share the outer loop:
//  - dense: LU of a dense Jacobian, re-factored every iteration (wins for
//    small systems, DESIGN.md decision #4);
//  - sparse: pattern-frozen CSR assembly plus SparseLuFactorization,
//    whose symbolic analysis (pivot order + fill pattern) is computed
//    once and reused across iterations and transient steps with a cheap
//    numeric-only refactorization.
// kAuto picks by system size against NewtonOptions::sparse_threshold.
#pragma once

#include <cstdint>
#include <vector>

#include "nemsim/linalg/matrix.h"
#include "nemsim/linalg/sparse.h"
#include "nemsim/linalg/sparse_lu.h"
#include "nemsim/spice/engine.h"

namespace nemsim::spice {

struct RunReport;  // spice/diagnostics.h

/// Which linear solver backs the Newton iteration.
enum class JacobianSolver {
  kAuto,    ///< sparse at/above NewtonOptions::sparse_threshold unknowns
  kDense,   ///< dense LU, re-factored every iteration
  kSparse,  ///< CSR assembly + cached-symbolic sparse LU
};

struct NewtonOptions {
  int max_iterations = 150;
  /// Relative tolerance on unknown updates and residual-vs-scale.
  /// Kept well below the transient LTE tolerance so integration error
  /// control sees truncation error, not Newton convergence noise.
  double reltol = 1e-7;
  /// Maximum halvings of the Newton step during damping.
  int max_damping_halvings = 8;
  /// Shunt conductance left in place even in the final solve; 0 for a
  /// clean system.  A tiny nonzero value (1e-15) guards floating nodes.
  double gmin_final = 1e-15;
  /// Enables the gmin-ramp fallback when the plain solve fails.
  bool gmin_stepping = true;
  /// Enables the source-ramp fallback when gmin stepping also fails.
  bool source_stepping = true;
  /// Linear-solver selection (see JacobianSolver).
  JacobianSolver solver = JacobianSolver::kAuto;
  /// kAuto switches to the sparse path at this many unknowns.  Measured
  /// dense/sparse crossover on the paper circuits (BM_TransientSolverPath:
  /// dense wins at n = 25, sparse wins at n = 41 — see DESIGN.md decision
  /// #4 and bench/perf_simulator).
  std::size_t sparse_threshold = 32;
};

struct NewtonStats {
  /// Iterations of the successful (final) solve only.  After a failed
  /// solve this equals total_iterations (everything that was attempted).
  int iterations = 0;
  /// Cumulative iterations including every homotopy ladder stage — never
  /// reset between stages, so the caller sees total work, not just the
  /// last stage (see RunReport::stages for the per-stage split).
  int total_iterations = 0;
  int gmin_steps = 0;
  int source_steps = 0;
  // Work counters for the fast-path instrumentation (cumulative across
  // ladder solves and, when the caller reuses the struct, across steps).
  std::int64_t assembles = 0;            ///< full residual+Jacobian passes
  std::int64_t residual_assembles = 0;   ///< residual-only damping trials
  std::int64_t factorizations = 0;       ///< full LU factorizations
  std::int64_t factorization_reuses = 0; ///< sparse numeric refactorizations
  bool used_sparse = false;              ///< sparse path taken at least once

  /// Accumulates another stats block into this one (counters add,
  /// used_sparse ORs) — used by drivers that solve with a local block per
  /// step and fold it into a run-level report.
  void merge(const NewtonStats& other) {
    iterations += other.iterations;
    total_iterations += other.total_iterations;
    gmin_steps += other.gmin_steps;
    source_steps += other.source_steps;
    assembles += other.assembles;
    residual_assembles += other.residual_assembles;
    factorizations += other.factorizations;
    factorization_reuses += other.factorization_reuses;
    used_sparse = used_sparse || other.used_sparse;
  }
};

/// Solves f(x) = 0 for the configured analysis point.
///
/// Keep one NewtonSolver alive across transient steps: the sparse
/// workspace (CSR skeleton, symbolic LU, linear-device baseline) persists
/// between solve calls and is rebuilt only when the Jacobian pattern
/// grows.
class NewtonSolver {
 public:
  NewtonSolver(MnaSystem& system, NewtonOptions options)
      : system_(system), options_(options) {}

  /// Plain damped Newton from `x0` with fixed gmin/source factor.
  /// Throws ConvergenceError / SingularMatrixError on failure.
  linalg::Vector solve_plain(const linalg::Vector& x0, AnalysisMode mode,
                             double time, double dt, double gmin,
                             double source_factor, NewtonStats* stats = nullptr);

  /// Full ladder: plain solve, then gmin stepping, then source stepping.
  /// With a `report` attached, every ladder stage is recorded as a
  /// SteppingStageRecord (per-stage iteration counts alongside the
  /// cumulative NewtonStats totals).  On failure the thrown
  /// ConvergenceError carries a ConvergenceDiagnostics payload naming the
  /// worst weighted-residual rows.
  linalg::Vector solve(const linalg::Vector& x0, AnalysisMode mode,
                       double time, double dt, NewtonStats* stats = nullptr,
                       RunReport* report = nullptr);

  const NewtonOptions& options() const { return options_; }

  /// True when solve_plain would take the sparse path for this system.
  bool uses_sparse() const;

 private:
  linalg::Vector solve_plain_dense(const linalg::Vector& x0,
                                   AnalysisMode mode, double time, double dt,
                                   double gmin, double source_factor,
                                   NewtonStats* stats);
  linalg::Vector solve_plain_sparse(const linalg::Vector& x0,
                                    AnalysisMode mode, double time, double dt,
                                    double gmin, double source_factor,
                                    NewtonStats* stats);
  /// (Re)builds the CSR skeleton when the system's pattern epoch moved;
  /// invalidates the cached symbolic LU on rebuild.
  void ensure_sparse_skeleton();

  MnaSystem& system_;
  NewtonOptions options_;

  // Sparse fast-path workspace, persistent across solves so the symbolic
  // LU analysis amortizes over iterations and transient steps.
  linalg::CsrMatrix sparse_jac_;
  linalg::SparseLuFactorization sparse_lu_;
  std::vector<double> linear_baseline_;
  std::uint64_t sparse_epoch_ = 0;  ///< pattern epoch of sparse_jac_
  bool sparse_ready_ = false;       ///< sparse_jac_ matches current pattern
  bool lu_ready_ = false;           ///< sparse_lu_ analysis matches sparse_jac_
};

}  // namespace nemsim::spice
