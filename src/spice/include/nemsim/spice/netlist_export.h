// SPICE-style netlist export.
//
// Writes a Circuit in a conventional .sp-like text form so a design built
// with the C++ API can be inspected, diffed, or cross-checked against an
// external simulator.  Device lines carry the element letter conventions
// (R/C/L/V/I/E/G/D/M) plus an X line with parameters for the NEMFET,
// which has no standard SPICE primitive.
#pragma once

#include <iosfwd>
#include <string>

#include "nemsim/spice/circuit.h"

namespace nemsim::spice {

/// Writes the netlist to `os`.  `title` becomes the first (title) line.
void export_netlist(const Circuit& circuit, std::ostream& os,
                    const std::string& title = "nemsim netlist");

/// Convenience: the netlist as a string.
std::string netlist_string(const Circuit& circuit,
                           const std::string& title = "nemsim netlist");

}  // namespace nemsim::spice
