// Circuit: the netlist container (nodes + devices).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nemsim/spice/device.h"
#include "nemsim/spice/ids.h"
#include "nemsim/util/error.h"

namespace nemsim::spice {

/// A flat netlist: named nodes and owned devices.
///
/// Typical use:
/// ```
/// Circuit ckt;
/// NodeId out = ckt.node("out");
/// ckt.add<Resistor>("R1", out, ckt.gnd(), 1e3);
/// ckt.add<VoltageSource>("V1", ckt.node("in"), ckt.gnd(), SourceWave::dc(1.0));
/// ```
class Circuit {
 public:
  Circuit();

  /// The ground node (always node 0, named "0").
  NodeId gnd() const { return kGround; }

  /// Returns the node named `name`, creating it on first use.
  NodeId node(const std::string& name);

  /// Creates a fresh internal node with a unique name derived from `hint`.
  NodeId internal_node(const std::string& hint);

  /// Looks up an existing node; throws NetlistError when absent.
  NodeId find_node(const std::string& name) const;
  bool has_node(const std::string& name) const;

  const std::string& node_name(NodeId node) const;

  /// Total node count including ground.
  std::size_t num_nodes() const { return node_names_.size(); }

  /// Constructs a device in place and returns a reference to it.
  /// Device names must be unique within the circuit.
  template <typename T, typename... Args>
  T& add(std::string name, Args&&... args) {
    require_unique_device_name(name);
    auto device = std::make_unique<T>(std::move(name), std::forward<Args>(args)...);
    T& ref = *device;
    register_device(std::move(device));
    return ref;
  }

  std::size_t num_devices() const { return devices_.size(); }
  Device& device(std::size_t i) { return *devices_.at(i); }
  const Device& device(std::size_t i) const { return *devices_.at(i); }

  /// Finds a device by name; throws NetlistError when absent.
  Device& find_device(const std::string& name);
  const Device& find_device(const std::string& name) const;

  /// Finds a device by name and casts it; throws NetlistError on missing
  /// name or wrong type.
  template <typename T>
  T& find(const std::string& name) {
    T* p = dynamic_cast<T*>(&find_device(name));
    if (!p) throw NetlistError("device '" + name + "' has unexpected type");
    return *p;
  }

  /// Finds a device by name and casts it (const).
  template <typename T>
  const T& find(const std::string& name) const {
    const T* p = dynamic_cast<const T*>(&find_device(name));
    if (!p) throw NetlistError("device '" + name + "' has unexpected type");
    return *p;
  }

  /// Iterates over devices of a given type.
  template <typename T, typename Fn>
  void for_each(Fn&& fn) {
    for (auto& d : devices_) {
      if (T* p = dynamic_cast<T*>(d.get())) fn(*p);
    }
  }

  /// Iterates over devices of a given type (const).
  template <typename T, typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& d : devices_) {
      if (const T* p = dynamic_cast<const T*>(d.get())) fn(*p);
    }
  }

 private:
  void require_unique_device_name(const std::string& name) const;
  void register_device(std::unique_ptr<Device> device);

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, std::size_t> node_index_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<std::string, std::size_t> device_index_;
  std::size_t internal_counter_ = 0;
};

}  // namespace nemsim::spice
