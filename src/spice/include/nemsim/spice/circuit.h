// Circuit: the netlist container (nodes + devices).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nemsim/spice/device.h"
#include "nemsim/spice/ids.h"
#include "nemsim/spice/parambank.h"
#include "nemsim/util/error.h"

namespace nemsim::spice {

class Subcircuit;
class SubcircuitScope;

/// Per-instance parameter values (ordered for deterministic export).
using SubcktParams = std::map<std::string, double>;

/// Bookkeeping for one elaborated subcircuit instance.  Devices created
/// by the instance (including those of nested instances) occupy the
/// contiguous range [first_device, first_device + num_devices).
struct SubcircuitInstanceRecord {
  std::string name;           ///< full hierarchical path, e.g. "Xcol.Xcell3"
  std::string subckt;         ///< definition name
  std::vector<NodeId> ports;  ///< actual nodes bound to the formal ports
  SubcktParams params;        ///< explicit per-instance overrides only
  std::ptrdiff_t parent = -1; ///< enclosing instance index, -1 for top level
  std::size_t first_device = 0;
  std::size_t num_devices = 0;
};

/// A flat netlist: named nodes and owned devices.
///
/// Typical use:
/// ```
/// Circuit ckt;
/// NodeId out = ckt.node("out");
/// ckt.add<Resistor>("R1", out, ckt.gnd(), 1e3);
/// ckt.add<VoltageSource>("V1", ckt.node("in"), ckt.gnd(), SourceWave::dc(1.0));
/// ```
///
/// Hierarchy (nemsim/spice/subcircuit.h) flattens into this container at
/// instantiate() time: scoped device/node names plus instance records,
/// so the solver stack stays flat while export and lint see structure.
class Circuit {
 public:
  Circuit();

  /// The ground node (always node 0, named "0").
  NodeId gnd() const { return kGround; }

  /// Returns the node named `name`, creating it on first use.
  NodeId node(const std::string& name);

  /// Creates a fresh internal node with a unique name derived from `hint`.
  /// Internal nodes are declared intentionally private (a generated wire
  /// nothing else is expected to attach to); lint's hierarchy rules use
  /// this to avoid flagging them as unconnected instance ports.
  NodeId internal_node(const std::string& hint);
  /// True when `node` was created by internal_node().
  bool node_is_internal(NodeId node) const;

  /// Looks up an existing node; throws NetlistError when absent.
  NodeId find_node(const std::string& name) const;
  bool has_node(const std::string& name) const;

  const std::string& node_name(NodeId node) const;

  /// Total node count including ground.
  std::size_t num_nodes() const { return node_names_.size(); }

  /// Constructs a device in place and returns a reference to it.
  /// Device names must be unique within the circuit.
  template <typename T, typename... Args>
  T& add(std::string name, Args&&... args) {
    require_unique_device_name(name);
    auto device = std::make_unique<T>(std::move(name), std::forward<Args>(args)...);
    T& ref = *device;
    register_device(std::move(device));
    return ref;
  }

  std::size_t num_devices() const { return devices_.size(); }
  Device& device(std::size_t i) { return *devices_.at(i); }
  const Device& device(std::size_t i) const { return *devices_.at(i); }

  /// Finds a device by name; throws NetlistError when absent.
  Device& find_device(const std::string& name);
  const Device& find_device(const std::string& name) const;

  /// Finds a device by name and casts it; throws NetlistError on missing
  /// name or wrong type.
  template <typename T>
  T& find(const std::string& name) {
    T* p = dynamic_cast<T*>(&find_device(name));
    if (!p) throw NetlistError("device '" + name + "' has unexpected type");
    return *p;
  }

  /// Finds a device by name and casts it (const).
  template <typename T>
  const T& find(const std::string& name) const {
    const T* p = dynamic_cast<const T*>(&find_device(name));
    if (!p) throw NetlistError("device '" + name + "' has unexpected type");
    return *p;
  }

  /// Iterates over devices of a given type.
  template <typename T, typename Fn>
  void for_each(Fn&& fn) {
    for (auto& d : devices_) {
      if (T* p = dynamic_cast<T*>(d.get())) fn(*p);
    }
  }

  /// Iterates over devices of a given type (const).
  template <typename T, typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& d : devices_) {
      if (const T* p = dynamic_cast<const T*>(d.get())) fn(*p);
    }
  }

  // --- Hierarchy (see nemsim/spice/subcircuit.h) -----------------------

  /// Elaborates `def` into this circuit as instance `inst_name` (must
  /// start with 'X' and contain no '.'), binding `actuals` to the formal
  /// ports in order.  Throws NetlistError on bad names, duplicate
  /// instances, or port-arity mismatch.
  void instantiate(const Subcircuit& def, const std::string& inst_name,
                   const std::vector<NodeId>& actuals,
                   const SubcktParams& overrides = {});

  /// All elaborated instances, in elaboration order (parents precede
  /// their nested children).
  const std::vector<SubcircuitInstanceRecord>& instances() const {
    return instances_;
  }
  bool has_instance(const std::string& name) const;
  /// Innermost instance owning the device at `device_index`, or nullptr
  /// for a top-level device.
  const SubcircuitInstanceRecord* device_instance(
      std::size_t device_index) const;

  /// Definitions registered by elaboration (and by the netlist parser),
  /// keyed by definition name.
  const std::map<std::string, std::shared_ptr<const Subcircuit>>&
  subckt_defs() const {
    return subckt_defs_;
  }
  /// Registers a definition (keeps the first; throws NetlistError when a
  /// different definition already holds the name).
  void register_subckt_def(std::shared_ptr<const Subcircuit> def);

  // --- Parameter bank (see nemsim/spice/parambank.h) -------------------

  /// The structure-of-arrays bank holding every tunable device scalar, in
  /// device-registration order per column.  Owned behind a stable pointer
  /// so device-held handles survive moves of the Circuit.
  ParamBank& param_bank() { return *param_bank_; }
  const ParamBank& param_bank() const { return *param_bank_; }

  /// Resyncs devices whose banked parameters changed since the last
  /// call: each device is resynced only when a bank column it bound in
  /// bind_params is dirty (see ParamBank::column_dirty), then the dirty
  /// flags are cleared.  Derived device state is a pure function of the
  /// current bank values, so skipping untouched devices is exact, not an
  /// approximation.  Call after writing bank values directly
  /// (ParamBank::apply/restore); the per-device setter methods keep
  /// derived state in sync themselves.
  void notify_params_changed();

  // --- Compile-time freeze (see nemsim/spice/compile.h) ----------------

  /// Once frozen, structural mutation (adding devices or nodes,
  /// elaborating instances) throws NetlistError: a compiled program's
  /// device list and unknown table must stay valid.  Parameter writes
  /// (bank overlays, setters) remain allowed.
  void freeze_structure() { frozen_ = true; }
  bool structure_frozen() const { return frozen_; }

 private:
  friend class SubcircuitScope;

  void require_unique_device_name(const std::string& name) const;
  void register_device(std::unique_ptr<Device> device);
  /// Shared elaboration core for top-level and nested instantiation.
  void instantiate_impl(const Subcircuit& def, const std::string& full_name,
                        const std::vector<NodeId>& actuals,
                        const SubcktParams& overrides, std::ptrdiff_t parent);

  /// Throws NetlistError when the structure is frozen.
  void require_mutable(const char* what) const;

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, std::size_t> node_index_;
  std::vector<bool> node_internal_;  ///< parallel to node_names_
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<std::string, std::size_t> device_index_;
  std::size_t internal_counter_ = 0;

  std::vector<SubcircuitInstanceRecord> instances_;
  std::unordered_map<std::string, std::size_t> instance_index_;
  std::map<std::string, std::shared_ptr<const Subcircuit>> subckt_defs_;
  /// Per-device innermost owning instance index (-1 = top level);
  /// parallel to devices_.
  std::vector<std::ptrdiff_t> device_owner_;
  /// Innermost instance currently elaborating (-1 outside elaboration).
  std::ptrdiff_t open_instance_ = -1;
  /// Stable home of the parameter bank (devices hold pointers into it).
  std::unique_ptr<ParamBank> param_bank_;
  /// Bank columns each device bound in bind_params (parallel to
  /// devices_); drives the dirty-column filter in notify_params_changed.
  std::vector<std::vector<std::uint32_t>> device_bound_columns_;
  bool frozen_ = false;
};

}  // namespace nemsim::spice
