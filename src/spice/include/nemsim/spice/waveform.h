// Waveform: sampled multi-signal result of a transient or sweep analysis.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "nemsim/linalg/matrix.h"

namespace nemsim::spice {

/// A set of signals sampled on a shared, strictly-increasing axis
/// (time for transients, the swept variable for DC sweeps).
class Waveform {
 public:
  /// `signal_names` fixes the column layout; samples are appended row-wise.
  explicit Waveform(std::vector<std::string> signal_names);

  /// Appends one sample; `values` must match the signal count.  The axis
  /// may run in either direction (descending sweeps), but interpolation
  /// via `at()` requires an ascending axis.
  void append(double t, const linalg::Vector& values);

  /// Pre-allocates storage for `samples` rows (axis + data).  Purely a
  /// capacity hint: exceeding it just falls back to normal growth.
  void reserve(std::size_t samples);

  /// True while the axis is (still) strictly ascending.
  bool ascending_axis() const { return ascending_; }

  std::size_t num_signals() const { return names_.size(); }
  std::size_t num_samples() const { return times_.size(); }
  bool empty() const { return times_.empty(); }

  const std::vector<std::string>& signal_names() const { return names_; }
  bool has_signal(const std::string& name) const;
  std::size_t signal_index(const std::string& name) const;

  const std::vector<double>& times() const { return times_; }
  double start_time() const;
  double end_time() const;

  /// Sample k of signal `index`.
  double sample(std::size_t signal, std::size_t k) const;
  /// Full series of one signal (copied).
  std::vector<double> series(const std::string& name) const;

  /// Linear interpolation of signal `name` at time t (clamped at ends).
  double at(const std::string& name, double t) const;
  double at(std::size_t signal, double t) const;

  /// Writes a CSV dump ("t,<sig1>,<sig2>,..." header then one row per
  /// sample).  `signals` selects and orders columns; empty = all.
  void write_csv(std::ostream& os,
                 const std::vector<std::string>& signals = {}) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<double> times_;
  std::vector<double> data_;  // row-major: sample k at data_[k*num_signals+s]
  bool ascending_ = true;
};

}  // namespace nemsim::spice
