// nemsim::lint primitive types: findings, reports, modes.
//
// Kept separate from the analyzer (nemsim/spice/lint.h) so the low-level
// headers that only *carry* findings — spice/device.h (Device::self_check)
// and spice/diagnostics.h (RunReport::lint_findings) — can include this
// without pulling in the Circuit/MnaSystem machinery.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nemsim/util/error.h"

namespace nemsim::lint {

/// How serious a finding is.
///
///  - kError: the circuit is structurally broken — the MNA system is
///    singular (up to the gmin crutch) and Newton will grind through the
///    whole homotopy ladder before failing.  Strict mode refuses to
///    simulate these.
///  - kWarning: the circuit will simulate but something is almost
///    certainly not what the author meant (non-physical parameter, a node
///    whose DC value only exists thanks to gmin, ...).
///  - kHint: style/portability advice (e.g. a device name that will not
///    round-trip through the netlist parser's first-letter dispatch).
enum class LintSeverity { kHint = 0, kWarning = 1, kError = 2 };

/// Stable lowercase name of a severity ("hint", "warning", "error").
const char* lint_severity_name(LintSeverity severity);

/// One finding of the pre-simulation structural analyzer.
struct LintFinding {
  LintSeverity severity = LintSeverity::kWarning;
  /// Stable kebab-case rule id ("floating-node", "voltage-loop", ...).
  std::string rule;
  /// Device or node name the finding anchors to.
  std::string subject;
  /// Full human-readable text, including the names involved.
  std::string message;

  /// "error[voltage-loop] V2: ..." — one-line rendering.
  std::string to_string() const;
};

/// Severity-tiered result of a lint pass.  The counters keep counting
/// even after the findings vector is capped (LintOptions::max_findings),
/// so a pathological circuit cannot grow the report unboundedly while
/// `clean()` stays truthful.
struct LintReport {
  std::vector<LintFinding> findings;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t hints = 0;

  /// No errors and no warnings.  Hints are allowed: they flag
  /// portability concerns, not simulation problems.
  bool clean() const { return errors == 0 && warnings == 0; }
  bool has_errors() const { return errors != 0; }
  std::size_t count(LintSeverity severity) const {
    switch (severity) {
      case LintSeverity::kError: return errors;
      case LintSeverity::kWarning: return warnings;
      case LintSeverity::kHint: return hints;
    }
    return 0;
  }

  /// Multi-line listing: one line per finding plus a totals line.
  std::string summary() const;
};

/// Strict-mode rejection: the analyzer found errors and the analysis
/// options asked to fail fast.  Carries the full report (shared_ptr-held
/// so the exception stays cheaply copyable, mirroring ConvergenceError).
class LintError : public Error {
 public:
  LintError(const std::string& what, LintReport report)
      : Error(what),
        report_(std::make_shared<const LintReport>(std::move(report))) {}

  const LintReport& report() const { return *report_; }

 private:
  std::shared_ptr<const LintReport> report_;
};

/// Per-analysis lint gating, carried by {Op,Transient,DcSweep,Ac}Options.
///
///  - kOff: no lint work at all; the run is bitwise identical to a build
///    without the analyzer.
///  - kWarn (default): findings are logged (warn level) and embedded in
///    the attached RunReport; the solve proceeds regardless.
///  - kStrict: like kWarn, but a report with errors throws LintError
///    before any Newton work (in particular before the gmin/source
///    homotopy ladder has a chance to burn time on a structurally
///    singular system).
enum class LintMode { kOff, kWarn, kStrict };

/// Circuit-level facts handed to Device::self_check so device-local
/// checks can see their environment.
struct DeviceCheckContext {
  /// Largest magnitude any independent voltage source in the circuit
  /// reaches over all time (the supply rail, for actuation checks).
  /// 0 when the circuit has no voltage source.
  double supply_rail = 0.0;
};

}  // namespace nemsim::lint
