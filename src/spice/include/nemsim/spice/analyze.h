// nemsim::analyze — semantic static analysis over a spice::Circuit.
//
// Runs after nemsim::lint (graph shape, stamp pattern) and before any
// solve.  Where lint asks "can this system be assembled and factored at
// all", analyze asks "what will the solution look like, and is that what
// the author meant" — abstract interpretation over node-voltage
// intervals plus structural magnitude scans:
//
//  1. DC interval analysis.  Every node starts at (-inf, inf); ground is
//     [0, 0].  Device::interval_transfer hooks supply difference
//     relations through voltage-defining elements (V, E, L-as-DC-short)
//     and maximum-principle neighbor claims through passive conductive
//     edges (R, D, FET and NEMFET channels).  The engine intersects
//     relation claims directly; neighbor claims are only applied at
//     nodes whose every DC-current-carrying edge is passive (a node fed
//     by a current source can sit outside its neighbors' hull), where
//     the union of all neighbor claims bounds the node.  Iterated to a
//     fixpoint with a sweep cap; because the lattice only narrows from
//     top, stopping early is sound — intervals are enclosures of the
//     exact DC solution.  (The solver's gmin regularization perturbs the
//     solved OP off the exact solution by up to ~gmin/G of the voltage
//     scale; consumers asserting containment add slack for that.)
//  2. Operating-region reachability.  Device::interval_check turns the
//     converged intervals into verdicts: a NEMFET whose gate drive can
//     never reach pull-in (or never fall below release), channels that
//     are provably always off, junctions that can never forward-bias.
//     NEMFET verdicts carry a testable prediction of the beam-position
//     unknown at the OP — the soundness contract nemsim-fuzz replays.
//  3. Stiffness & conditioning prediction.  Per-node time constants
//     (sum of capacitive edge magnitudes over sum of conductive edge
//     magnitudes, plus L/R for inductor branches) predict the transient
//     step-count spread; the global conductance scale spread predicts
//     Jacobian ill-conditioning.  Both come with concrete suggestions
//     (dt_initial, scaling, gmin) instead of a bare number.
//  4. Controllability / observability cones.  Union-find over non-ground
//     terminal co-incidence: a connected component with no independent
//     source is provably dead (settles to the zero solution); with an
//     observed-node set given, components no measurement can see are
//     flagged unobserved.
//
// All findings use the lint severity/report machinery, so the CLI, the
// analysis-gate, RunReport JSON and forensics render them uniformly.
#pragma once

#include <string>
#include <vector>

#include "nemsim/spice/analyze_types.h"
#include "nemsim/spice/lint_types.h"

namespace nemsim::spice {
class Circuit;
struct RunReport;
}  // namespace nemsim::spice

namespace nemsim::analyze {

struct AnalyzeOptions {
  /// Fixpoint sweep cap; 0 = automatic (num_nodes + 8, enough for one
  /// relation/neighbor hop per sweep along the longest possible chain).
  std::size_t max_sweeps = 0;
  /// Node time-constant spread (tau_max / tau_min) above which the
  /// circuit is called stiff.
  double stiffness_ratio = 1e6;
  /// Conductive-magnitude spread (g_max / g_min) above which Jacobian
  /// conditioning is flagged.
  double conditioning_ratio = 1e9;
  /// Node names a measurement actually reads.  Empty: observability
  /// cones are skipped (controllability / dead-device still runs).
  std::vector<std::string> observed_nodes;
  /// Findings kept in the report; counters keep counting past the cap.
  std::size_t max_findings = 256;
};

/// Everything the pass computed, alongside the findings that summarize
/// it.  `intervals` is indexed by NodeId and always sized to the
/// circuit's node count.
struct AnalyzeReport {
  IntervalSet intervals;
  std::vector<std::string> node_names;        ///< node_names[i] = node i
  std::vector<RegionVerdict> verdicts;
  lint::LintReport findings;
  std::size_t sweeps = 0;     ///< fixpoint sweeps actually run
  bool fixpoint = false;      ///< true when a sweep changed nothing
  // Stiffness / conditioning scan results (0 when not derivable).
  double tau_min = 0.0, tau_max = 0.0;
  double g_min = 0.0, g_max = 0.0;
};

/// Runs the full pass.  Pure analysis: no device or circuit state is
/// modified and no MnaSystem is built — this is a topology/params walk.
AnalyzeReport analyze_circuit(const spice::Circuit& circuit,
                              const AnalyzeOptions& options = {});

/// Analysis-entry gate used by the op/transient/dc_sweep/ac drivers,
/// mirroring lint::lint_gate:
///
/// kOff (the default): returns an empty report without doing any work.
/// kWarn: runs the pass; findings are logged at warn level and copied
///   into `run_report->analyze_findings` (if attached).
/// kStrict: like kWarn, but throws LintError when the report has errors
///   OR warnings.  Unlike the lint gate (whose warnings are "simulable
///   but suspicious" and must not block the shipped decks), every
///   analyze warning is a semantic claim — a dead subcircuit, an
///   unreachable operating region — that a caller opting into strict
///   mode wants rejected before burning a homotopy ladder on it.
lint::LintReport analyze_gate(const spice::Circuit& circuit,
                              lint::LintMode mode,
                              spice::RunReport* run_report,
                              const AnalyzeOptions& options = {});

}  // namespace nemsim::analyze
