// Hierarchical netlists: subcircuit definitions and scoped elaboration.
//
// A Subcircuit is a reusable cell: an ordered list of formal ports, a
// builder callback that populates devices, and default parameter values.
// Instantiation (Circuit::instantiate or, from inside a builder,
// SubcircuitScope::instantiate) *flattens* the definition into the parent
// Circuit immediately — there is no hierarchical solver.  Every local
// device and node gets a dot-scoped name ("Xcol.Xcell3.ql"), so the MNA
// engine, Newton, the sparse fast path, RunReport, forensics, and lint
// all work unchanged but report hierarchical paths.
//
// Scoping rules:
//  - Instance names must start with 'X' (SPICE convention; required for
//    netlist round trips) and may not contain '.'.
//  - Inside a builder, SubcircuitScope::node("q") resolves to the actual
//    node bound to formal port "q" when "q" is a port, to ground for
//    "0", and otherwise to the scoped name "<path>.q" (created on first
//    use).  Builders cannot reach nodes outside their scope except
//    through ports — cells stay encapsulated.
//  - Parameter precedence: per-instance overrides > definition defaults.
//    Unknown override keys are allowed (a builder may consult arbitrary
//    keys via param()).
//
// The Circuit records every elaborated instance
// (SubcircuitInstanceRecord: contiguous device range, bound port nodes,
// overrides, parent link) and registers the definition, so
// export_netlist can emit proper .subckt/.ends blocks and X cards
// instead of the flattened device soup.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "nemsim/spice/circuit.h"
#include "nemsim/spice/ids.h"

namespace nemsim::spice {

class SubcircuitScope;

/// A subcircuit definition: name, ordered formal ports, builder callback,
/// and default parameters.  Copyable; Circuit keeps a registered copy per
/// definition name for netlist export.
class Subcircuit {
 public:
  using Builder = std::function<void(SubcircuitScope&)>;

  Subcircuit(std::string name, std::vector<std::string> ports,
             Builder builder, SubcktParams defaults = {});

  const std::string& name() const { return name_; }
  const std::vector<std::string>& ports() const { return ports_; }
  std::size_t num_ports() const { return ports_.size(); }
  const SubcktParams& defaults() const { return defaults_; }

  /// Runs the builder into `scope` (called by the elaboration pass).
  void build(SubcircuitScope& scope) const;

  /// Verbatim source body lines for netlist export (set by the netlist
  /// parser for deck-defined subcircuits, so "{KEY}" parameter
  /// placeholders survive a round trip).  When empty, the exporter
  /// renders the body by expanding the builder at default parameters.
  const std::vector<std::string>& body_text() const { return body_text_; }
  void set_body_text(std::vector<std::string> lines);

 private:
  std::string name_;
  std::vector<std::string> ports_;
  Builder builder_;
  SubcktParams defaults_;
  std::vector<std::string> body_text_;
};

/// The builder's window into the parent circuit during elaboration:
/// resolves local names to scoped globals, binds formal ports to actual
/// nodes, and merges parameter overrides over defaults.
class SubcircuitScope {
 public:
  /// The circuit being elaborated into (for direct, already-scoped use).
  Circuit& circuit() { return circuit_; }

  /// Full hierarchical instance path, e.g. "Xcol.Xcell3".
  const std::string& path() const { return path_; }

  /// Actual node bound to the i-th formal port.
  NodeId port(std::size_t i) const;
  /// Actual node bound to the formal port named `formal`; throws
  /// NetlistError when no such port exists.
  NodeId port(const std::string& formal) const;

  /// Resolves a local node name ("0" -> ground, formal port -> bound
  /// actual, anything else -> "<path>.<local>", created on first use).
  NodeId node(const std::string& local);

  /// The scoped global name "<path>.<local>".
  std::string scoped(const std::string& local) const;

  /// Effective parameter value: instance override, else definition
  /// default, else `fallback`.
  double param(const std::string& key, double fallback) const;
  /// Effective parameter value; throws NetlistError when the key is
  /// neither overridden nor defaulted.
  double param(const std::string& key) const;
  bool has_param(const std::string& key) const;
  /// The full merged parameter map (overrides layered over defaults).
  const SubcktParams& params() const { return params_; }

  /// Adds a device under its scoped name and returns a reference to it.
  template <typename T, typename... Args>
  T& add(const std::string& local_name, Args&&... args) {
    return circuit_.add<T>(scoped(local_name), std::forward<Args>(args)...);
  }

  /// Elaborates a nested instance (local name must start with 'X').
  void instantiate(const Subcircuit& def, const std::string& local_inst,
                   const std::vector<NodeId>& actuals,
                   const SubcktParams& overrides = {});

 private:
  friend class Circuit;
  SubcircuitScope(Circuit& circuit, std::string path,
                  const Subcircuit& def, std::vector<NodeId> actuals,
                  SubcktParams params);

  Circuit& circuit_;
  std::string path_;
  const Subcircuit& def_;
  std::vector<NodeId> actuals_;
  SubcktParams params_;  ///< merged: overrides over defaults
};

}  // namespace nemsim::spice
