// DC sweep: repeated operating points along a swept parameter, with
// solution continuation (each point starts Newton from the previous one).
// Continuation is what makes hysteretic device curves (NEMS pull-in /
// pull-out) come out correctly: sweeping up and sweeping down follow
// different stable branches.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "nemsim/spice/analysis.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/waveform.h"

namespace nemsim::spice {

/// Newton settings, report sink, forensics, and lint gate live in the
/// shared AnalysisCommon base (nemsim/spice/analysis.h).  The lint gate
/// runs once per sweep (not per point); in dc_sweep_parallel it runs on
/// the reference instance before any worker starts, and the report is
/// filled after the workers join, in input order.
struct DcSweepOptions : AnalysisCommon {
  /// When true (default), each point starts from the previous solution;
  /// when false, every point is solved cold (branch-independent).
  bool continuation = true;
  /// dc_sweep_parallel only: warm-start chunking.  0 (default) keeps
  /// today's behavior — every point solved cold, one task per point.
  /// k > 0 groups k consecutive points into one task that solves its
  /// first point cold and seeds each later point from the previous
  /// solution (continuation within the chunk).  Chunk boundaries depend
  /// only on the point index, so the result is identical for any thread
  /// count — but differs from the cold-per-point result whenever
  /// warm-starting lands Newton on a different solution branch.
  std::size_t parallel_chunk = 0;
};

/// Applies `set_param(value)` then solves an operating point, for each
/// value in `points` (any order; typically ascending or descending).
/// The returned Waveform's axis is the swept value; all unknowns are
/// recorded per point.
Waveform dc_sweep(MnaSystem& system,
                  const std::function<void(double)>& set_param,
                  std::span<const double> points,
                  const DcSweepOptions& options = {});

/// Parallel DC sweep over independent per-point circuits.
///
/// `make_circuit` builds a fresh Circuit per task (tasks never share
/// devices or MnaSystems, so no synchronization is needed) and
/// `set_param(circuit, value)` applies the swept value before the solve.
/// Every point is solved cold — there is no continuation between points,
/// so the result matches dc_sweep with `continuation = false` and is
/// bitwise identical for any thread count (points are collected in input
/// order).  Hysteretic curves (NEMS pull-in/pull-out) need the
/// sequential, continuation-enabled dc_sweep instead.
/// `num_threads` of 0 uses util::default_parallelism(); 1 runs inline.
Waveform dc_sweep_parallel(
    const std::function<Circuit()>& make_circuit,
    const std::function<void(Circuit&, double)>& set_param,
    std::span<const double> points, const DcSweepOptions& options = {},
    std::size_t num_threads = 0);

/// Evenly spaced sweep points, inclusive of both ends.
std::vector<double> linspace(double first, double last, std::size_t count);

}  // namespace nemsim::spice
