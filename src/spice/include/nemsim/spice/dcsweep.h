// DC sweep: repeated operating points along a swept parameter, with
// solution continuation (each point starts Newton from the previous one).
// Continuation is what makes hysteretic device curves (NEMS pull-in /
// pull-out) come out correctly: sweeping up and sweeping down follow
// different stable branches.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "nemsim/spice/engine.h"
#include "nemsim/spice/newton.h"
#include "nemsim/spice/waveform.h"

namespace nemsim::spice {

struct DcSweepOptions {
  NewtonOptions newton;
  /// When true (default), each point starts from the previous solution;
  /// when false, every point is solved cold (branch-independent).
  bool continuation = true;
};

/// Applies `set_param(value)` then solves an operating point, for each
/// value in `points` (any order; typically ascending or descending).
/// The returned Waveform's axis is the swept value; all unknowns are
/// recorded per point.
Waveform dc_sweep(MnaSystem& system,
                  const std::function<void(double)>& set_param,
                  std::span<const double> points,
                  const DcSweepOptions& options = {});

/// Evenly spaced sweep points, inclusive of both ends.
std::vector<double> linspace(double first, double last, std::size_t count);

}  // namespace nemsim::spice
