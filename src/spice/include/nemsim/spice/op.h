// DC operating point analysis.
#pragma once

#include <string>

#include "nemsim/linalg/matrix.h"
#include "nemsim/spice/diagnostics.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/lint.h"
#include "nemsim/spice/newton.h"

namespace nemsim::spice {

struct OpOptions {
  NewtonOptions newton;
  NewtonStats* stats = nullptr;  ///< optional Newton work counters
  /// Optional diagnostics sink (stage records, histogram, timings).
  /// Zero overhead when left null.
  RunReport* report = nullptr;
  /// Opt-in failure dump (netlist snapshot + failure description).
  ForensicsOptions forensics;
  /// Pre-solve structural lint gate (nemsim/spice/lint.h).  kWarn logs
  /// findings and embeds them in `report`; kStrict throws LintError on
  /// errors before any Newton work; kOff skips the analyzer entirely
  /// (bitwise-identical run).
  lint::LintMode lint = lint::LintMode::kWarn;
};

/// Result of an operating-point solve; values accessible by node/unknown
/// or by display name ("out" for node voltage, "i(Vdd)" for a branch).
///
/// Holds a reference to the MnaSystem for name resolution: do not keep an
/// OpResult alive past the system that produced it (AcResult, which is
/// routinely returned across scopes, owns its name table instead).
class OpResult {
 public:
  OpResult(const MnaSystem& system, linalg::Vector x)
      : system_(&system), x_(std::move(x)) {}

  double v(NodeId node) const { return Solution(*system_, x_).v(node); }
  /// Voltage of the node named `node_name`.
  double v(const std::string& node_name) const;
  /// Value of the unknown with display name `name` (e.g. "i(Vdd)").
  double value(const std::string& name) const;
  double x(UnknownId unknown) const { return Solution(*system_, x_).x(unknown); }

  const linalg::Vector& raw() const { return x_; }
  Solution solution() const { return Solution(*system_, x_); }

 private:
  const MnaSystem* system_;
  linalg::Vector x_;
};

/// Solves the DC operating point and commits it to device state (so a
/// following transient starts from this bias point).
OpResult operating_point(MnaSystem& system, const OpOptions& options = {});

/// Same, but starting Newton from `x0` (continuation use).
OpResult operating_point_from(MnaSystem& system, const linalg::Vector& x0,
                              const OpOptions& options = {});

}  // namespace nemsim::spice
