// DC operating point analysis.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "nemsim/linalg/matrix.h"
#include "nemsim/spice/analysis.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/lint.h"

namespace nemsim::spice {

struct OpOptions : AnalysisCommon {
  NewtonStats* stats = nullptr;  ///< optional Newton work counters
};

/// Result of an operating-point solve; values accessible by node/unknown
/// or by display name ("out" for node voltage, "i(Vdd)" for a branch).
///
/// Owns copies of the name tables it needs (node names, unknown display
/// names), so — like AcResult — it stays valid after the MnaSystem and
/// Circuit that produced it are gone.  Only solution(), which exposes
/// the live system, still requires the system to be alive.
class OpResult {
 public:
  OpResult(const MnaSystem& system, linalg::Vector x);

  /// Voltage of `node` (0 for ground).
  double v(NodeId node) const;
  /// Voltage of the node named `node_name`.
  double v(const std::string& node_name) const;
  /// Value of the unknown with display name `name` (e.g. "i(Vdd)").
  double value(const std::string& name) const;
  double x(UnknownId unknown) const;

  const linalg::Vector& raw() const { return x_; }
  /// Live-system view (the one accessor that still needs the MnaSystem
  /// this result came from to be alive).
  Solution solution() const { return Solution(*system_, x_); }

 private:
  const MnaSystem* system_;
  linalg::Vector x_;
  /// Unknown index per node index (-1 for ground / unmapped nodes).
  std::vector<std::ptrdiff_t> node_unknown_;
  std::unordered_map<std::string, std::size_t> node_index_;
  std::unordered_map<std::string, std::size_t> unknown_index_;
};

/// Solves the DC operating point and commits it to device state (so a
/// following transient starts from this bias point).
OpResult operating_point(MnaSystem& system, const OpOptions& options = {});

/// Same, but starting Newton from `x0` (continuation use).
OpResult operating_point_from(MnaSystem& system, const linalg::Vector& x0,
                              const OpOptions& options = {});

}  // namespace nemsim::spice
