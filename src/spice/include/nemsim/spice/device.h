// Device abstraction: everything that stamps the MNA system.
//
// A device contributes residual (KCL/KVL) entries and Jacobian entries at
// the current Newton iterate.  Devices own their dynamic state (capacitor
// history, NEMS beam position) and commit it in `accept_step` after a
// transient step converges.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "nemsim/spice/analyze_types.h"
#include "nemsim/spice/ids.h"
#include "nemsim/spice/lint_types.h"

namespace nemsim::spice {

class SetupContext;
class StampContext;
class AcceptContext;
class AcStampContext;
class ParamBank;
class KernelLayout;
struct KernelDescriptor;

/// Which analysis the stamp is being evaluated for.
enum class AnalysisMode {
  kDcOperatingPoint,  ///< capacitors open, inductors short, mechanics static
  kTransient,         ///< companion models active
};

/// Structural self-description of a device for the pre-simulation lint
/// pass (nemsim/spice/lint.h): which nodes the device touches and how
/// each terminal pair is coupled in the DC / transient MNA structure.
/// This is graph-level metadata, deliberately independent of the stamp
/// values — lint reasons about *which* failure classes are possible, not
/// about numbers.
struct DeviceTopology {
  /// How a terminal pair is coupled.
  enum class EdgeKind {
    kConductive,  ///< finite DC conductance (R, diode, FET channel)
    kVoltage,     ///< ideal voltage-defined branch (V, VCVS, L as DC short)
    kCurrent,     ///< ideal current-defined branch (I, VCCS output)
    kCapacitive,  ///< charge-only coupling: no DC path (C, gate caps)
  };

  struct Terminal {
    const char* label;  ///< static terminal label ("p", "drain", ...)
    NodeId node;
  };

  struct Edge {
    EdgeKind kind = EdgeKind::kConductive;
    std::size_t a = 0, b = 0;  ///< indices into `terminals`
    /// Independent-source branches (V/I) only: marks the edge as a fixed
    /// excitation and carries its DC (t = 0) value plus its all-time
    /// maximum magnitude — used for supply-rail inference and the
    /// conflicting-parallel-sources check.
    bool is_source = false;
    double dc_value = 0.0;
    double max_abs = 0.0;
    /// Nominal element magnitude in the edge's natural unit — siemens
    /// for kConductive (a representative on-state conductance for
    /// nonlinear channels), farads for kCapacitive, henries for an
    /// inductor's kVoltage edge, siemens (gm) for a VCCS's kCurrent
    /// edge; 0 when not meaningful (source branches).  Feeds the
    /// analyzer's stiffness / conditioning predictions — order of
    /// magnitude is what matters, not precision.
    double magnitude = 0.0;
  };

  /// SPICE element letter the netlist exporter/parser dispatch on
  /// ('R', 'C', 'L', 'V', 'I', 'E', 'G', 'D', 'M', 'X'); 0 when the
  /// device has no netlist form.
  char element_letter = 0;
  std::vector<Terminal> terminals;
  std::vector<Edge> edges;

  /// Appends a terminal and returns its index (for add_edge).
  std::size_t add_terminal(const char* label, NodeId node) {
    terminals.push_back({label, node});
    return terminals.size() - 1;
  }
  /// Appends an edge between terminal indices `a` and `b`.
  Edge& add_edge(EdgeKind kind, std::size_t a, std::size_t b) {
    edges.push_back({kind, a, b});
    return edges.back();
  }
};

/// Base class for all circuit devices.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Requests extra unknowns (branch currents, internal states) and caches
  /// their ids.  Called once per analysis setup.
  virtual void setup(SetupContext& ctx) { (void)ctx; }

  /// Registers the device's tunable scalar parameters in the circuit's
  /// structure-of-arrays bank (nemsim/spice/parambank.h).  Called exactly
  /// once, by Circuit::register_device; afterwards the registered values
  /// live in the bank and the device reads them through its BankedParam
  /// handles.  Free-standing devices are never bound and keep the values
  /// inline.  The default registers nothing.
  virtual void bind_params(ParamBank& bank) { (void)bank; }

  /// Called after a bank overlay was applied or reverted
  /// (Circuit::notify_params_changed).  Devices that cache state derived
  /// from a banked parameter (companion capacitances sized from C or W, a
  /// source waveform mirroring its banked DC level) resync here; devices
  /// that read the bank directly at stamp time need nothing.
  virtual void on_params_changed() {}

  /// Adds residual and Jacobian contributions at the context's iterate.
  /// Must be side-effect free with respect to device state.
  virtual void stamp(StampContext& ctx) const = 0;

  /// True when the device's Jacobian entries do not depend on the Newton
  /// iterate (only on mode/time/dt and committed device state).  The
  /// engine stamps linear devices' Jacobian once per solve and reuses the
  /// values across iterations; residuals are always re-stamped.
  virtual bool is_linear() const { return false; }

  /// Type-bucketed kernel support (nemsim/spice/kernels.h).  A device
  /// that can be evaluated by a batch kernel fills `out` with its bucket
  /// key, batch function, role unknowns and declared Jacobian cells; the
  /// engine then assembles it through the lane path when
  /// NewtonOptions::kernels is on.  The declared cells must cover every
  /// position the device can ever stamp (union over modes and runtime
  /// orientations) — undeclared cells drop writes silently.  The default
  /// leaves `out` unsupported: the device always stamps virtually.
  virtual void kernel_descriptor(const KernelLayout& layout,
                                 KernelDescriptor& out) const;

  /// Quiescent-bypass support (nonlinear devices only).  A device that
  /// returns true appends every piece of committed state its stamp reads
  /// *besides* the iterate and the StampContext scalars (beam position,
  /// companion history, ...) to `out`; the engine may then replay a cached
  /// stamp whenever the iterate, the context scalars, and this signature
  /// all match the values at capture time within the bypass tolerance.
  /// The default (false) opts the device out of bypass entirely — it is
  /// always evaluated.
  virtual bool bypass_signature(std::vector<double>& out) const {
    (void)out;
    return false;
  }

  /// Adds small-signal G/C/rhs contributions at the bias point in `ctx`.
  /// The default implementation throws: a device without an AC model must
  /// not silently vanish from an AC analysis.
  virtual void stamp_ac(AcStampContext& ctx) const;

  /// True when the device implements stamp_ac.  ac_analysis scans this
  /// *before* the bias solve and rejects the circuit with every
  /// AC-incapable device named (lint rule "ac-incapable-device"), instead
  /// of letting the default stamp_ac throw mid-assembly.  A device that
  /// overrides stamp_ac must override this to return true.
  virtual bool has_ac_model() const { return false; }

  /// Called once before each transient step's Newton solve; `dt` is the
  /// step about to be taken and `time` its end point.  Devices capture
  /// whatever history their companion model needs.
  virtual void begin_step(double time, double dt) { (void)time; (void)dt; }

  /// Commits state after a converged solve (OP or transient step).
  virtual void accept_step(const AcceptContext& ctx) { (void)ctx; }

  /// Clears all dynamic state (new analysis from scratch).
  virtual void reset_state() {}

  /// Signals a derivative discontinuity (source edge).  Devices whose
  /// companion models use history across steps should fall back to a
  /// self-starting method (backward Euler) for the next step.
  virtual void notify_discontinuity() {}

  /// Time points the transient must land on exactly (source edges).
  virtual void breakpoints(double tstop, std::vector<double>& out) const {
    (void)tstop; (void)out;
  }

  /// Structural metadata for the lint pass.  The default returns an
  /// empty topology: such a device is invisible to the graph rules (no
  /// false positives), though the MNA-pattern rules still see whatever
  /// it stamps.  All in-tree devices override this.
  virtual DeviceTopology topology() const { return {}; }

  /// Device-local lint checks (non-physical parameters, can-never-actuate
  /// conditions, ...).  Implementations append findings to `out`; the
  /// analyzer fills in the `subject` field with the device name, so
  /// findings only need rule/severity/message.
  virtual void self_check(const lint::DeviceCheckContext& ctx,
                          std::vector<lint::LintFinding>& out) const {
    (void)ctx;
    (void)out;
  }

  /// Interval-transfer hook for the DC interval analysis
  /// (nemsim/spice/analyze.h).  Given the current per-node voltage
  /// intervals, appends the bounds this device can claim about its
  /// terminal nodes (see analyze::NodeClaim for the two claim kinds and
  /// their soundness conditions).  The default derives one kNeighbor
  /// claim per direction of every kConductive topology edge — correct
  /// for any device whose conductive edges are passive (current through
  /// the edge has the sign of the branch voltage), which holds for every
  /// in-tree device.  An override must cover each of its conductive
  /// edges with claims at least as wide, or the analysis loses soundness.
  virtual void interval_transfer(const analyze::IntervalSet& nodes,
                                 std::vector<analyze::NodeClaim>& out) const;

  /// Post-fixpoint semantic check: operating-region conclusions the
  /// device can prove from the converged intervals (NEMFET pull-in
  /// reachability, always-off channels, never-forward junctions).
  /// Verdicts with a non-empty `unknown` carry an OP-testable prediction
  /// that the differential checker verifies against a real solve.
  virtual void interval_check(const analyze::IntervalSet& nodes,
                              std::vector<analyze::RegionVerdict>& out) const {
    (void)nodes;
    (void)out;
  }

  /// One line of SPICE-style netlist for this device (node names resolved
  /// through `node_namer`).  The default emits a comment placeholder.
  virtual std::string netlist_line(
      const std::function<std::string(NodeId)>& node_namer) const {
    (void)node_namer;
    return "* " + name_ + " (no netlist exporter)";
  }

 private:
  std::string name_;
};

}  // namespace nemsim::spice
