// nemsim::lint — pre-simulation structural analyzer for circuits.
//
// Runs over a spice::Circuit *before* any solve and returns a
// severity-tiered LintReport.  The rules move whole failure classes from
// "Newton died after the full gmin/source homotopy ladder" to "rejected
// in microseconds with a named node and rule".
//
// Foundations:
//  - Device::topology(): a graph-level incidence probe — every rule sees
//    which nodes each device touches and how each terminal pair is
//    coupled (conductive / voltage-defined / current-defined /
//    capacitive).
//  - MnaSystem::structural_pattern(): a recording structural-stamp pass
//    (the pattern machinery of the sparse fast path, minus the forced
//    diagonals and gmin shunts) giving the true MNA sparsity structure.
//  - Device::self_check(): device-local parameter sanity, fed the
//    circuit-level supply rail.
//
// Rule classes (stable ids; DESIGN.md enumerates each in detail):
//   error   floating-node              node unreachable from ground
//   error   voltage-loop               cycle of voltage-defined branches
//                                      (inductors count as DC shorts)
//   error   current-cutset             node driven only by current sources
//   error   zero-mna-row               equation row with no structural entries
//   error   zero-mna-column            unknown appearing in no equation
//   error   structural-rank            no perfect matching on the pattern
//   warning nonphysical-parameter      negative/zero R, C, L, W; NEMS
//                                      mechanics out of physical range
//   warning pull-in-above-rail         NEMFET that can never actuate
//   warning capacitive-only-node       no DC path (gmin ladder fodder)
//   warning dangling-node              single-terminal internal node
//   warning parallel-voltage-sources   conflicting sources on one node pair
//   warning unconnected-subckt-port    instance port with nothing attached
//                                      outside the instance (or a formal
//                                      the subcircuit body never uses)
//   hint    name-convention            device name won't round-trip through
//                                      the first-letter-dispatch parser
//                                      (devices elaborated from subcircuits
//                                      are exempt: they round-trip via
//                                      their .subckt body and X card)
//
// Findings over elaborated hierarchies (nemsim/spice/subcircuit.h) name
// nodes and devices by their full hierarchical path ("Xcol.Xcell3.ql").
#pragma once

#include "nemsim/spice/lint_types.h"

namespace nemsim::spice {
class Circuit;
class MnaSystem;
struct RunReport;
}  // namespace nemsim::spice

namespace nemsim::lint {

struct LintOptions {
  /// Enables the MNA-pattern rules (zero rows/columns, structural rank).
  /// These need a structural stamping pass — still microseconds, but the
  /// only part of lint that is not a pure graph walk.
  bool structural_checks = true;
  /// Findings kept in the report; severity counters keep counting past
  /// the cap (mirrors RunReport::kMaxRecords).
  std::size_t max_findings = 256;
};

/// Runs every rule over an existing MNA system (no re-setup; this is
/// what the analysis drivers call).  Pure analysis: no device or system
/// state is modified, and the subsequent solve is bitwise identical.
LintReport lint_system(const spice::MnaSystem& system,
                       const LintOptions& options = {});

/// Convenience entry point over a bare circuit.  Builds a temporary
/// MnaSystem, which (re)runs Device::setup — idempotent, but the
/// non-const reference is why this overload exists separately.
LintReport lint_circuit(spice::Circuit& circuit,
                        const LintOptions& options = {});

/// Analysis-entry gate used by the op/transient/dc_sweep/ac drivers.
///
/// kOff: returns an empty report without doing any work.
/// kWarn: runs the analyzer; when findings exist they are logged at warn
///   level and copied into `run_report->lint_findings` (if attached).
/// kStrict: like kWarn, but throws LintError when the report has errors
///   — before any Newton work, so a structurally singular circuit never
///   enters the gmin/source homotopy ladder.
LintReport lint_gate(const spice::MnaSystem& system, LintMode mode,
                     spice::RunReport* run_report);

}  // namespace nemsim::lint
