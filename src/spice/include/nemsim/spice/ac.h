// AC (small-signal) analysis.
//
// Linearizes the circuit at a DC operating point into
//   (G + j*omega*C) x = b(omega)
// where G holds conductances/couplings (d f / d x at the bias point) and
// C holds charge/flux/momentum storage (d f / d x').  Devices contribute
// through Device::stamp_ac.  For the NEMFET the mechanical rows carry the
// beam's mass and damping, so the AC response exhibits the
// electromechanical resonance (the RSG-MOSFET resonator of the paper's
// ref [22]).
#pragma once

#include <complex>
#include <span>
#include <string>
#include <vector>

#include "nemsim/linalg/complex.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/op.h"

namespace nemsim::spice {

/// Stamping interface for AC: G entries (conductance), C entries
/// (capacitance/mass), and the complex excitation vector.
class AcStampContext {
 public:
  AcStampContext(const MnaSystem& system, const Solution& bias,
                 linalg::Matrix& g, linalg::Matrix& c, linalg::CVector& rhs);

  /// DC bias values from the operating point.
  double v(NodeId node) const { return bias_.v(node); }
  double x(UnknownId unknown) const { return bias_.x(unknown); }

  void add_G(NodeId eq, NodeId var, double value);
  void add_G(NodeId eq, UnknownId var, double value);
  void add_G(UnknownId eq, NodeId var, double value);
  void add_G(UnknownId eq, UnknownId var, double value);

  void add_C(NodeId eq, NodeId var, double value);
  void add_C(NodeId eq, UnknownId var, double value);
  void add_C(UnknownId eq, NodeId var, double value);
  void add_C(UnknownId eq, UnknownId var, double value);

  void add_rhs(NodeId eq, linalg::Complex value);
  void add_rhs(UnknownId eq, linalg::Complex value);

  /// Stamps a two-terminal conductance (the common quad pattern).
  void stamp_conductance(NodeId p, NodeId n, double g);
  /// Stamps a two-terminal capacitance.
  void stamp_capacitance(NodeId p, NodeId n, double c);

 private:
  void raw(linalg::Matrix& m, UnknownId eq, UnknownId var, double value);

  const MnaSystem& system_;
  const Solution& bias_;
  linalg::Matrix& g_;
  linalg::Matrix& c_;
  linalg::CVector& rhs_;
};

/// Newton settings (for the embedded operating-point solve), report
/// sink, forensics, and lint gate live in the shared AnalysisCommon base
/// (nemsim/spice/analysis.h).  The lint gate runs once before the
/// bias-point solve, which itself does not lint again.
struct AcOptions : AnalysisCommon {};

/// Frequency-sweep result: complex value of every unknown per frequency.
/// Owns its signal-name table, so it stays valid after the MnaSystem that
/// produced it is gone.
class AcResult {
 public:
  AcResult(std::vector<std::string> signal_names, std::vector<double> freqs);

  const std::vector<double>& frequencies() const { return freqs_; }
  std::size_t num_points() const { return freqs_.size(); }

  /// Complex phasor of signal `name` at frequency index k.
  linalg::Complex at(const std::string& name, std::size_t k) const;
  double magnitude(const std::string& name, std::size_t k) const;
  double magnitude_db(const std::string& name, std::size_t k) const;
  double phase_deg(const std::string& name, std::size_t k) const;

  /// Full magnitude series of one signal.
  std::vector<double> magnitude_series(const std::string& name) const;

  // Filled by ac_analysis.
  void append_point(const linalg::CVector& x);

 private:
  std::size_t signal_index(const std::string& name) const;

  std::vector<std::string> names_;
  std::vector<double> freqs_;
  std::vector<linalg::CVector> data_;
};

/// Runs an AC sweep about the circuit's operating point.  Excitations
/// come from sources with a nonzero AC magnitude (`set_ac`).
AcResult ac_analysis(MnaSystem& system, std::span<const double> frequencies,
                     const AcOptions& options = {});

/// Logarithmically spaced frequency points, inclusive of both decades.
std::vector<double> logspace(double f_first, double f_last,
                             std::size_t points_total);

}  // namespace nemsim::spice
