// nemsim::analyze primitive types: intervals, node claims, verdicts.
//
// Kept separate from the analyzer (nemsim/spice/analyze.h) for the same
// reason lint_types.h exists: spice/device.h only needs the value types
// to declare the per-device interval hooks, not the fixpoint engine.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "nemsim/spice/ids.h"
#include "nemsim/spice/lint_types.h"

namespace nemsim::analyze {

/// A closed interval [lo, hi] of DC node voltages (volts).  The lattice
/// the analyzer computes over: `top()` is "no information" and every
/// operation only ever narrows, so stopping at any sweep count is sound.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  static Interval top() { return {}; }
  static Interval point(double v) { return {v, v}; }
  /// Interval spanning two values given in either order.
  static Interval span(double a, double b) {
    return {std::min(a, b), std::max(a, b)};
  }

  bool is_top() const { return !std::isfinite(lo) && !std::isfinite(hi); }
  /// Both endpoints finite (the only intervals worth asserting against).
  bool bounded() const { return std::isfinite(lo) && std::isfinite(hi); }
  double width() const { return hi - lo; }

  bool contains(double v, double slack = 0.0) const {
    return v >= lo - slack && v <= hi + slack;
  }

  /// Smallest interval covering both (lattice join).
  Interval hull(const Interval& o) const {
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
  }

  /// Minkowski sum / difference: x + y with x in *this, y in o.
  Interval operator+(const Interval& o) const { return {lo + o.lo, hi + o.hi}; }
  Interval operator-(const Interval& o) const { return {lo - o.hi, hi - o.lo}; }
  /// k * [lo, hi] (sign-aware; k = 0 collapses to [0, 0] even for
  /// unbounded intervals, sidestepping 0 * inf).
  Interval scaled(double k) const {
    if (k == 0.0) return point(0.0);
    return k > 0.0 ? Interval{k * lo, k * hi} : Interval{k * hi, k * lo};
  }
  /// |x| for x in [lo, hi].
  Interval abs() const {
    if (lo >= 0.0) return {lo, hi};
    if (hi <= 0.0) return {-hi, -lo};
    return {0.0, std::max(-lo, hi)};
  }

  std::string to_string() const;
};

/// One per-node map of intervals, indexed by NodeId.  Ground (node 0) is
/// pinned to [0, 0]; everything else starts at top and is narrowed.
class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(std::size_t num_nodes)
      : v_(num_nodes, Interval::top()) {
    if (!v_.empty()) v_[0] = Interval::point(0.0);
  }

  std::size_t size() const { return v_.size(); }
  const Interval& at(spice::NodeId n) const { return v_.at(n.index); }
  void set(spice::NodeId n, const Interval& iv) { v_.at(n.index) = iv; }

  /// Narrows node `n` to its intersection with `iv`.  An empty
  /// intersection (contradictory constraints: the deck is unsatisfiable
  /// and lint has almost certainly flagged it already) is skipped rather
  /// than produced, so the stored interval stays a sound enclosure of
  /// whatever solution the solver's regularization settles on.  Returns
  /// true when the stored interval actually changed.
  bool tighten(spice::NodeId n, const Interval& iv) {
    Interval& cur = v_.at(n.index);
    const double lo = std::max(cur.lo, iv.lo);
    const double hi = std::min(cur.hi, iv.hi);
    if (lo > hi) return false;
    if (lo == cur.lo && hi == cur.hi) return false;
    cur = {lo, hi};
    return true;
  }

 private:
  std::vector<Interval> v_;
};

/// One bound a device claims about a node, emitted by
/// Device::interval_transfer.
///
///  - kRelation: sound unconditionally — a difference relation through a
///    voltage-defining element ("v(p) lies in v(n) + source range").
///    The engine intersects these into the node directly.
///  - kNeighbor: a maximum-principle claim through one passive
///    conductive edge ("my other terminal's interval").  Sound only at
///    nodes whose every DC-current-carrying edge is passive, which the
///    engine verifies from the topology before *unioning* all neighbor
///    claims at the node and intersecting the hull in.
struct NodeClaim {
  spice::NodeId node;
  Interval bound;
  enum class Kind { kRelation, kNeighbor };
  Kind kind = Kind::kNeighbor;
};

/// A semantic operating-region conclusion a device draws from the
/// converged node intervals (Device::interval_check).  Verdicts become
/// findings in the analyzer report; when `unknown` is non-empty they
/// additionally carry a differential-testable prediction: the named MNA
/// unknown must land inside `predicted` at the solved operating point
/// (the soundness contract nemsim-fuzz checks per seed).
struct RegionVerdict {
  std::string device;    ///< instance name
  std::string region;    ///< stable kebab-case id ("nemfet-never-actuates")
  std::string message;   ///< human-readable text with the numbers involved
  lint::LintSeverity severity = lint::LintSeverity::kWarning;
  std::string unknown;   ///< display name of the predicted unknown, or ""
  Interval predicted;    ///< predicted enclosure of that unknown at the OP
};

}  // namespace nemsim::analyze
