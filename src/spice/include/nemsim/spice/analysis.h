// Options shared by every analysis driver.
//
// Each of {Op,Transient,DcSweep,Ac}Options used to carry its own copy of
// the Newton settings, the RunReport sink, the forensics hook, and the
// lint-gate mode; they are one struct now so a caller can configure the
// common knobs once and reuse them across analyses.  The per-analysis
// Options structs inherit AnalysisCommon, so existing field access
// (`options.newton.max_iterations`, `options.report`) is unchanged.
#pragma once

#include "nemsim/spice/diagnostics.h"
#include "nemsim/spice/lint_types.h"
#include "nemsim/spice/newton.h"

namespace nemsim::spice {

struct AnalysisCommon {
  NewtonOptions newton;
  /// Optional diagnostics sink (stage records, histograms, timings).
  /// Zero overhead when left null; the run is bitwise identical.
  RunReport* report = nullptr;
  /// Opt-in failure dump (netlist snapshot + failure description; the
  /// transient driver adds the recent waveform window).
  ForensicsOptions forensics;
  /// Pre-solve structural lint gate (nemsim/spice/lint.h).  kWarn logs
  /// findings and embeds them in `report`; kStrict throws LintError on
  /// errors before any Newton work; kOff skips the analyzer entirely
  /// (bitwise-identical run).  Runs once per analysis entry — embedded
  /// operating points do not lint again.
  lint::LintMode lint = lint::LintMode::kWarn;
  /// Pre-solve semantic analysis gate (nemsim/spice/analyze.h): interval
  /// reachability, operating regions, stiffness/conditioning, dead
  /// cones.  Same tiering as `lint`, except strict mode rejects on
  /// warnings too (every analyze warning is a semantic claim about the
  /// solution, not a style concern).  Defaults to kOff: the pass walks
  /// every device per fixpoint sweep, and the per-analysis drivers are
  /// on hot paths (Monte-Carlo trials, sweep points).
  lint::LintMode analyze = lint::LintMode::kOff;
  /// Opt-in persistent Newton workspace (compiled batched execution).
  /// Null (default): the driver constructs its own solver per entry —
  /// the bitwise-identical legacy behavior.  Non-null: the driver solves
  /// through this instance, so its cached sparse symbolic factorization
  /// and dense workspace survive across runs.  The instance must wrap
  /// the same MnaSystem the analysis runs on; `newton` above is ignored
  /// in favor of the solver's own options.  Not shared across threads.
  NewtonSolver* shared_solver = nullptr;
};

}  // namespace nemsim::spice
