// Structure-of-arrays parameter bank: the tunable scalar parameters of a
// circuit's devices, hoisted out of the device objects into contiguous
// per-kind columns ("mos.vth_shift", "r.resistance", ...).
//
// The bank is what makes a batch of N variants of one topology cheap:
// instead of rebuilding the circuit N times, the compiled program
// (nemsim/spice/compile.h) applies N overlays — base values plus a small
// patch of (slot, value) pairs — over one elaborated circuit.  Devices
// register their tunable scalars in Device::bind_params (called once by
// Circuit::register_device) and afterwards read them through BankedParam
// handles, so a bank write is immediately visible to the next stamp.
//
// Devices that derive cached state from a parameter (companion
// capacitances sized from C or W, source waveforms mirroring a DC level)
// resync in Device::on_params_changed, which Circuit::notify_params_changed
// broadcasts after every overlay application.  Plain setter methods
// (set_vth_shift, set_resistance, ...) keep writing through the same
// slots, so the bank path and the legacy mutation path are literally the
// same storage — which is what makes overlay-vs-rebuilt bitwise testable.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nemsim::spice {

/// Handle to one scalar in the bank: column (parameter kind) and row
/// (registration order within the kind).
struct ParamSlot {
  static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};
  std::uint32_t column = kInvalid;
  std::uint32_t row = 0;
  bool valid() const { return column != kInvalid; }
};

/// One (slot, value) assignment; a patch is the delta of a variant.
struct ParamPatchEntry {
  ParamSlot slot;
  double value = 0.0;
};
using ParamPatch = std::vector<ParamPatchEntry>;

class ParamBank {
 public:
  /// Appends `value` to the column named `column` (created on first
  /// use), tagged with the owning device's name for introspection.
  ParamSlot bind(const std::string& column, const std::string& owner,
                 double value);

  double value(ParamSlot slot) const {
    return columns_[slot.column].values[slot.row];
  }
  /// Writes mark the column dirty only when the stored value actually
  /// changes, so Circuit::notify_params_changed can skip resyncing
  /// devices whose parameters a restore+apply round trip left untouched.
  void set_value(ParamSlot slot, double v) {
    Column& col = columns_[slot.column];
    if (col.values[slot.row] != v) {
      col.values[slot.row] = v;
      col.dirty = true;
    }
  }

  std::size_t num_columns() const { return columns_.size(); }
  std::size_t num_params() const;
  const std::string& column_name(std::size_t column) const {
    return columns_[column].name;
  }
  /// Contiguous values of one column, in device-registration order.
  const std::vector<double>& column_values(std::size_t column) const {
    return columns_[column].values;
  }
  /// Owning device name per row of `column` (parallel to column_values).
  const std::vector<std::string>& column_owners(std::size_t column) const {
    return columns_[column].owners;
  }
  /// Column index by name; npos when absent.
  std::size_t find_column(const std::string& name) const;
  static constexpr std::size_t npos = ~std::size_t{0};

  /// Dense copy of every column's values — the base-parameter snapshot a
  /// compiled program restores before applying each variant's patch.
  using Snapshot = std::vector<std::vector<double>>;
  Snapshot snapshot() const;
  /// Restores a snapshot taken from this bank (same registration state).
  void restore(const Snapshot& snap);

  /// Applies a patch on top of the current values.
  void apply(const ParamPatch& patch) {
    for (const ParamPatchEntry& e : patch) set_value(e.slot, e.value);
  }

  // --- Dirty-column tracking -------------------------------------------
  // Consumed by Circuit::notify_params_changed to resync only the
  // devices bound to columns whose values changed since the last sweep.

  /// True when any value in `column` changed since the last clear_dirty.
  bool column_dirty(std::size_t column) const {
    return columns_[column].dirty;
  }
  void clear_dirty() {
    for (Column& col : columns_) col.dirty = false;
  }

 private:
  struct Column {
    std::string name;
    std::vector<double> values;
    std::vector<std::string> owners;
    bool dirty = false;
  };
  std::vector<Column> columns_;
};

/// A device-held parameter handle.  Free-standing devices (never added to
/// a Circuit — calibration harnesses, unit tests) keep the value inline;
/// once bind() moves it into a circuit's bank, reads and writes go
/// through the slot so bank overlays and device setters share storage.
class BankedParam {
 public:
  explicit BankedParam(double value = 0.0) : local_(value) {}

  double get() const { return bank_ ? bank_->value(slot_) : local_; }
  void set(double v) {
    if (bank_) {
      bank_->set_value(slot_, v);
    } else {
      local_ = v;
    }
  }

  /// Moves the current value into `bank` (Device::bind_params only).
  void bind(ParamBank& bank, const std::string& column,
            const std::string& owner) {
    slot_ = bank.bind(column, owner, local_);
    bank_ = &bank;
  }

  bool bound() const { return bank_ != nullptr; }
  /// Slot in the owning circuit's bank; invalid when free-standing.
  ParamSlot slot() const { return bank_ ? slot_ : ParamSlot{}; }

 private:
  ParamBank* bank_ = nullptr;
  ParamSlot slot_;
  double local_;
};

}  // namespace nemsim::spice
