// Compile/execute split: build a circuit once, run it many times.
//
// `compile()` consumes a finished Circuit and returns an immutable
// CompiledCircuit: the elaborated device list in stamp order, the frozen
// unknown table and Jacobian sparsity pattern, lint/analyze findings
// memoized from a single compile-time pass, and a per-tstop breakpoint
// schedule cache.  Structural mutation of the compiled circuit throws;
// parameter writes stay open through SoA bank overlays, which is what
// makes N Monte-Carlo variants N cheap patches over one compiled
// program instead of N rebuilt circuits (DESIGN.md section 7h).
//
// Execution contract: every run_* entry point resets committed device
// state first, so runs are order-independent — run A then B produces
// the same B as running B alone.  With default options each run
// constructs its own NewtonSolver and is bitwise identical to the
// legacy drivers on a freshly built circuit.  Opting into
// `reuse_newton_workspace` shares one solver across runs (cached sparse
// symbolic factorization, persistent dense workspace); that changes
// pivot-order history and is NOT bitwise against the legacy path.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "nemsim/spice/ac.h"
#include "nemsim/spice/analysis.h"
#include "nemsim/spice/analyze.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/dcsweep.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/lint.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/parambank.h"
#include "nemsim/spice/transient.h"
#include "nemsim/spice/waveform.h"

namespace nemsim::spice {

struct CompileOptions {
  /// Newton settings baked into every run of the compiled program (the
  /// per-run options' `newton` field is ignored so all variants of a
  /// batch solve under one configuration).
  NewtonOptions newton;
  /// Structural lint, run once at compile time; findings are memoized
  /// on the CompiledCircuit and the per-run gates are forced off.
  /// kStrict throws LintError at compile() on errors.
  lint::LintMode lint = lint::LintMode::kWarn;
  /// Semantic analysis gate, same once-at-compile treatment.
  lint::LintMode analyze = lint::LintMode::kOff;
  /// Optional diagnostics sink for the compile-time passes.
  RunReport* report = nullptr;
  /// Share one NewtonSolver across every run of this compiled circuit.
  /// Keeps the cached sparse symbolic factorization and dense workspace
  /// warm between variants (numeric-only refactorization when the
  /// pattern holds), but pivot-order history then carries across runs:
  /// results are NOT bitwise against the legacy per-run-solver path.
  bool reuse_newton_workspace = false;
};

/// An immutable compiled simulation program.  Move-only; owns the
/// Circuit and MnaSystem it was compiled from (both heap-held, so
/// device/system references stay valid across moves).
class CompiledCircuit {
 public:
  CompiledCircuit(CompiledCircuit&&) noexcept = default;
  CompiledCircuit& operator=(CompiledCircuit&&) noexcept = default;
  CompiledCircuit(const CompiledCircuit&) = delete;
  CompiledCircuit& operator=(const CompiledCircuit&) = delete;

  /// The compiled netlist.  Structure is frozen (adding devices or
  /// nodes throws NetlistError); parameter setters remain usable.
  Circuit& circuit() { return *circuit_; }
  const Circuit& circuit() const { return *circuit_; }
  /// The frozen MNA view (unknown table, sparsity pattern).
  MnaSystem& system() { return *system_; }
  const MnaSystem& system() const { return *system_; }
  /// The SoA parameter bank (shared with circuit().param_bank()).
  ParamBank& params() { return circuit_->param_bank(); }

  /// Lint findings memoized at compile time.
  const lint::LintReport& lint_findings() const { return lint_findings_; }
  /// Analyze findings memoized at compile time (empty when the analyze
  /// gate was kOff).
  const lint::LintReport& analyze_findings() const {
    return analyze_findings_;
  }
  /// Bank contents as of compile(): the base every overlay starts from.
  const ParamBank::Snapshot& base_params() const { return base_params_; }

  /// Installs a parameter variant: restores the compile-time base, then
  /// applies `patch` and broadcasts on_params_changed.  Writing through
  /// device setters and overlaying the same values hit the same bank
  /// slots, so the two routes produce bitwise-identical runs.
  void set_overlay(const ParamPatch& patch);
  /// Back to the compile-time base parameters.
  void clear_overlay();

  /// Drops memoized breakpoint schedules.  Needed only if a source's
  /// waveform is replaced (set_wave) on the compiled circuit — bank
  /// overlays never invalidate breakpoints (DC levels, widths, R/C
  /// values contribute none).
  void invalidate_breakpoints() { breakpoint_memo_.clear(); }

  /// Per-run entry points.  Each resets committed device state first,
  /// then runs the legacy driver with lint/analyze forced off (already
  /// memoized) and the compiled Newton configuration.
  OpResult run_op(OpOptions options = {});
  Waveform run_transient(TransientOptions options);
  Waveform run_dc_sweep(const std::function<void(double)>& set_param,
                        std::span<const double> points,
                        DcSweepOptions options = {});
  AcResult run_ac(std::span<const double> frequencies,
                  AcOptions options = {});

 private:
  friend CompiledCircuit compile(Circuit&& circuit,
                                 const CompileOptions& options);
  CompiledCircuit() = default;

  /// Applies the compiled execution policy to one run's options.
  void prepare_run(AnalysisCommon& common);

  std::unique_ptr<Circuit> circuit_;
  std::unique_ptr<MnaSystem> system_;
  /// Present only under reuse_newton_workspace.
  std::unique_ptr<NewtonSolver> shared_solver_;
  NewtonOptions newton_;
  lint::LintReport lint_findings_;
  lint::LintReport analyze_findings_;
  ParamBank::Snapshot base_params_;
  /// tstop -> sorted breakpoint schedule (map node addresses are stable,
  /// so a run can hold a pointer into the memo).
  std::map<double, std::vector<double>> breakpoint_memo_;
};

/// Compiles `circuit` (consumed) into an executable program: runs the
/// lint/analyze gates once, builds the unknown table, freezes the
/// Jacobian sparsity pattern and the circuit structure, and snapshots
/// the parameter bank as the overlay base.
CompiledCircuit compile(Circuit&& circuit, const CompileOptions& options = {});

}  // namespace nemsim::spice
