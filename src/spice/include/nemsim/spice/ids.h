// Strong identifier types for circuit nodes and MNA unknowns.
#pragma once

#include <cstddef>
#include <limits>
#include <string>

namespace nemsim::spice {

/// A circuit node.  Index 0 is always ground; other indices are assigned by
/// `Circuit::node()` in creation order.
struct NodeId {
  std::size_t index = 0;

  bool is_ground() const { return index == 0; }
  friend bool operator==(NodeId a, NodeId b) { return a.index == b.index; }
  friend bool operator!=(NodeId a, NodeId b) { return a.index != b.index; }
};

/// Ground node constant.
inline constexpr NodeId kGround{0};

/// What an MNA unknown represents; drives per-unknown tolerances and
/// Newton step limiting.
enum class UnknownKind {
  kNodeVoltage,    ///< KCL row, volt-scaled
  kBranchCurrent,  ///< source/inductor branch current, ampere-scaled
  kInternal,       ///< device-internal state (e.g. NEMS displacement)
};

/// Index into the MNA unknown/equation vector.
struct UnknownId {
  std::size_t index = std::numeric_limits<std::size_t>::max();

  bool valid() const {
    return index != std::numeric_limits<std::size_t>::max();
  }
  friend bool operator==(UnknownId a, UnknownId b) { return a.index == b.index; }
};

/// Invalid/absent unknown (also used for the ground row, which has no
/// equation).
inline constexpr UnknownId kNoUnknown{};

/// Descriptor of one unknown: how to display it, how to bound Newton
/// updates on it, and which absolute tolerance applies.
struct UnknownInfo {
  std::string name;          ///< e.g. "v(out)", "i(Vdd)", "Mn1.x"
  UnknownKind kind = UnknownKind::kNodeVoltage;
  double max_newton_step = 0.0;  ///< 0 = unlimited; else |dx| clamp
  double abstol = 1e-6;          ///< convergence floor for this unknown
  /// Absolute floor for the matching equation row's residual.  Node rows
  /// are KCL (amperes), branch rows are KVL (volts), internal rows are in
  /// whatever unit the owning device's equation uses.
  double row_abstol = 1e-12;
  double initial_guess = 0.0;    ///< starting value for cold Newton solves
};

}  // namespace nemsim::spice
