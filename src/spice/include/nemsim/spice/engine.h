// MNA engine: unknown allocation, stamping contexts, system assembly.
//
// Residual convention: for every node n (except ground) the equation is
//   f_n(x) = sum of currents *leaving* node n through all devices = 0
// Devices add current contributions with `add_f` and the matching partial
// derivatives with `add_J`; Newton then solves J*dx = -f.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nemsim/linalg/matrix.h"
#include "nemsim/linalg/sparse.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/device.h"
#include "nemsim/spice/ids.h"

namespace nemsim::spice {

class MnaSystem;

/// Handed to Device::setup so devices can claim extra unknowns.
class SetupContext {
 public:
  explicit SetupContext(MnaSystem& system) : system_(system) {}

  /// Claims a branch-current unknown (for voltage sources, inductors).
  UnknownId add_branch_current(const std::string& name);

  /// Claims a device-internal unknown with explicit tolerances/limits.
  /// `row_abstol` is the absolute residual floor of the matching equation.
  UnknownId add_internal(const std::string& name, double abstol,
                         double row_abstol, double max_newton_step,
                         double initial_guess);

 private:
  MnaSystem& system_;
};

/// Read-only access to a converged solution vector, with node helpers.
class Solution {
 public:
  Solution(const MnaSystem& system, const linalg::Vector& x)
      : system_(&system), x_(&x) {}

  /// Voltage of `node` (0 for ground).
  double v(NodeId node) const;
  /// Value of any unknown.
  double x(UnknownId unknown) const;

  const linalg::Vector& raw() const { return *x_; }
  const MnaSystem& system() const { return *system_; }

 private:
  const MnaSystem* system_;
  const linalg::Vector* x_;
};

/// Stamping interface passed to Device::stamp.
///
/// The Jacobian sink is pluggable: dense matrix (classic path), frozen
/// CSR slots (sparse fast path), pattern recorder (symbolic pass), or
/// none (residual-only assembly for Newton damping trials).  Devices see
/// the same add_f/add_J interface in every case.
class StampContext {
 public:
  /// Dense Jacobian sink.
  StampContext(const MnaSystem& system, const linalg::Vector& x,
               linalg::Matrix& jacobian, linalg::Vector& residual,
               linalg::Vector& residual_scale);

  /// Sparse (CSR) Jacobian sink; entries outside the frozen pattern are
  /// appended to `missed` instead of being dropped.  Pass
  /// `jacobian == nullptr` for residual-only assembly.
  StampContext(const MnaSystem& system, const linalg::Vector& x,
               linalg::CsrMatrix* jacobian, linalg::Vector& residual,
               linalg::Vector& residual_scale,
               std::vector<std::pair<std::size_t, std::size_t>>* missed);

  /// Disables residual/scale accumulation (Jacobian-only assembly).
  void disable_residual() { want_residual_ = false; }
  /// Switches the Jacobian sink to a pattern recorder (symbolic pass).
  void record_pattern(
      std::vector<std::pair<std::size_t, std::size_t>>& pattern);

  AnalysisMode mode() const { return mode_; }
  /// End time of the step being solved (transient), or 0 for OP.
  double time() const { return time_; }
  /// Step size (transient only; 0 for OP).
  double dt() const { return dt_; }
  /// Shunt conductance to ground added at every node (homotopy aid).
  double gmin() const { return gmin_; }
  /// Scale factor applied by sources during source stepping, in [0,1].
  double source_factor() const { return source_factor_; }

  /// Value of node voltage at the current Newton iterate.
  double v(NodeId node) const;
  /// Value of any unknown at the current Newton iterate.
  double x(UnknownId unknown) const;

  /// Adds `current` (amperes, leaving the node) to node equation `eq`.
  void add_f(NodeId eq, double current);
  /// Adds `value` to an arbitrary equation row (branch/internal rows).
  void add_f(UnknownId eq, double value);

  /// Jacobian entries d f(eq) / d x(var); ground rows/cols are dropped.
  void add_J(NodeId eq, NodeId var, double dfdx);
  void add_J(NodeId eq, UnknownId var, double dfdx);
  void add_J(UnknownId eq, NodeId var, double dfdx);
  void add_J(UnknownId eq, UnknownId var, double dfdx);

  // Engine-side configuration (not for devices).
  void configure(AnalysisMode mode, double time, double dt, double gmin,
                 double source_factor);

 private:
  void raw_f(UnknownId eq, double value);
  void raw_J(UnknownId eq, UnknownId var, double value);

  const MnaSystem& system_;
  const linalg::Vector& x_;
  linalg::Matrix* dense_jacobian_ = nullptr;
  linalg::CsrMatrix* sparse_jacobian_ = nullptr;
  std::vector<std::pair<std::size_t, std::size_t>>* missed_ = nullptr;
  std::vector<std::pair<std::size_t, std::size_t>>* pattern_ = nullptr;
  linalg::Vector& residual_;
  linalg::Vector& residual_scale_;
  bool want_residual_ = true;
  AnalysisMode mode_ = AnalysisMode::kDcOperatingPoint;
  double time_ = 0.0;
  double dt_ = 0.0;
  double gmin_ = 0.0;
  double source_factor_ = 1.0;
};

/// Passed to Device::accept_step after a converged solve.
class AcceptContext {
 public:
  AcceptContext(const Solution& solution, AnalysisMode mode, double time,
                double dt)
      : solution_(solution), mode_(mode), time_(time), dt_(dt) {}

  double v(NodeId node) const { return solution_.v(node); }
  double x(UnknownId unknown) const { return solution_.x(unknown); }
  AnalysisMode mode() const { return mode_; }
  double time() const { return time_; }
  double dt() const { return dt_; }
  const Solution& solution() const { return solution_; }

 private:
  const Solution& solution_;
  AnalysisMode mode_;
  double time_;
  double dt_;
};

/// The assembled MNA problem over a circuit.
///
/// Owns the unknown table (node voltages first, then device-claimed
/// unknowns) and provides assembly of residual + Jacobian at an iterate.
class MnaSystem {
 public:
  /// Builds the unknown table by running Device::setup on every device.
  explicit MnaSystem(Circuit& circuit);

  Circuit& circuit() { return circuit_; }
  const Circuit& circuit() const { return circuit_; }

  std::size_t num_unknowns() const { return unknowns_.size(); }
  const UnknownInfo& unknown_info(std::size_t i) const { return unknowns_.at(i); }

  /// Unknown for a node's voltage; invalid for ground.
  UnknownId unknown_of(NodeId node) const;
  /// Unknown by display name ("v(out)", "i(Vdd)", ...); throws if absent.
  UnknownId unknown_by_name(const std::string& name) const;
  bool has_unknown(const std::string& name) const;

  /// Initial iterate: zeros for node voltages (unless a nodeset entry
  /// overrides) and per-unknown initial guesses for device internals.
  linalg::Vector initial_guess() const;

  /// Overrides the cold-start guess of a node voltage (SPICE .nodeset).
  void set_nodeset(NodeId node, double volts);
  void clear_nodesets();

  /// Assembles residual/Jacobian at iterate `x`.  `residual_scale`
  /// accumulates sum(|contribution|) per row for relative convergence
  /// checks.  The StampContext must have been `configure`d by the caller.
  void assemble(const linalg::Vector& x, linalg::Matrix& jacobian,
                linalg::Vector& residual, linalg::Vector& residual_scale,
                AnalysisMode mode, double time, double dt, double gmin,
                double source_factor) const;

  /// Residual + scale only (no Jacobian work) — the cheap assembly for
  /// Newton damping trials that only need a residual norm.
  void assemble_residual(const linalg::Vector& x, linalg::Vector& residual,
                         linalg::Vector& residual_scale, AnalysisMode mode,
                         double time, double dt, double gmin,
                         double source_factor) const;

  // --- Sparse fast path (pattern-frozen CSR assembly) ------------------
  //
  // The Jacobian sparsity pattern is captured once by a symbolic stamping
  // pass (union of OP and transient stamps plus all diagonals) and grows
  // lazily if a device later stamps an unseen position (e.g. a MOSFET
  // source/drain swap flips an asymmetric entry).  Growth bumps the
  // pattern epoch; callers rebuild their CsrMatrix workspace and retry.

  /// Monotonic counter bumped whenever the pattern grows.
  std::uint64_t jacobian_pattern_epoch() const;
  /// Raw structural Jacobian pattern of one recording stamp pass in
  /// `mode`: exactly the (row, col) positions devices stamp, with no
  /// gmin shunts and no forced diagonals (unlike the solver pattern,
  /// which unions modes and completes the diagonal).  Sorted and
  /// deduplicated.  This is the probe behind the lint structural rules
  /// (zero rows/columns, structural rank — nemsim/spice/lint.h).
  std::vector<std::pair<std::size_t, std::size_t>> structural_pattern(
      AnalysisMode mode) const;
  /// A zero-valued CSR skeleton over the current pattern.
  linalg::CsrMatrix make_sparse_jacobian() const;

  /// Full sparse assembly (residual + Jacobian).  With a non-null
  /// `linear_baseline` (from assemble_linear_jacobian, same pattern
  /// epoch), linear devices' Jacobian values are taken from the baseline
  /// and only nonlinear devices are re-stamped into the Jacobian.
  /// Returns false when the pattern grew (retry with a fresh skeleton).
  bool assemble_sparse(const linalg::Vector& x, linalg::CsrMatrix& jacobian,
                       linalg::Vector& residual,
                       linalg::Vector& residual_scale, AnalysisMode mode,
                       double time, double dt, double gmin,
                       double source_factor,
                       const std::vector<double>* linear_baseline
                       = nullptr) const;

  /// Jacobian-only sparse assembly (residual untouched); same baseline
  /// and return-value semantics as assemble_sparse.
  bool assemble_jacobian_sparse(const linalg::Vector& x,
                                linalg::CsrMatrix& jacobian,
                                AnalysisMode mode, double time, double dt,
                                double gmin, double source_factor,
                                const std::vector<double>* linear_baseline
                                = nullptr) const;

  /// Stamps only the linear devices' Jacobian into `jacobian` (values
  /// valid for the whole Newton solve at fixed mode/time/dt) and copies
  /// them into `baseline`.  Returns false when the pattern grew.
  bool assemble_linear_jacobian(const linalg::Vector& x,
                                linalg::CsrMatrix& jacobian,
                                std::vector<double>& baseline,
                                AnalysisMode mode, double time,
                                double dt) const;

  /// Calls begin_step on every device.
  void begin_step(double time, double dt);
  /// Calls accept_step on every device.
  void accept(const linalg::Vector& x, AnalysisMode mode, double time,
              double dt);
  /// Calls reset_state on every device.
  void reset_devices();
  /// Calls notify_discontinuity on every device.
  void notify_discontinuity();

  /// Collects and sorts distinct breakpoints in (0, tstop].
  std::vector<double> breakpoints(double tstop) const;

  // Used by SetupContext.
  UnknownId allocate_unknown(UnknownInfo info);

 private:
  enum class DeviceSet { kAll, kLinear, kNonlinear };
  void stamp_devices(StampContext& ctx, DeviceSet set) const;
  void ensure_pattern() const;
  void grow_pattern(
      const std::vector<std::pair<std::size_t, std::size_t>>& missed) const;

  Circuit& circuit_;
  std::vector<UnknownInfo> unknowns_;
  std::unordered_map<std::string, std::size_t> unknown_index_;
  std::vector<std::size_t> linear_devices_;
  std::vector<std::size_t> nonlinear_devices_;
  // Jacobian sparsity pattern, built lazily and grown on demand.
  mutable std::vector<std::pair<std::size_t, std::size_t>> pattern_;
  mutable bool pattern_built_ = false;
  mutable std::uint64_t pattern_epoch_ = 0;
};

}  // namespace nemsim::spice
