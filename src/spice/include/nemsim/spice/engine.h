// MNA engine: unknown allocation, stamping contexts, system assembly.
//
// Residual convention: for every node n (except ground) the equation is
//   f_n(x) = sum of currents *leaving* node n through all devices = 0
// Devices add current contributions with `add_f` and the matching partial
// derivatives with `add_J`; Newton then solves J*dx = -f.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nemsim/linalg/matrix.h"
#include "nemsim/linalg/sparse.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/device.h"
#include "nemsim/spice/ids.h"

namespace nemsim::spice {

class MnaSystem;
struct KernelPlan;

/// Handed to Device::setup so devices can claim extra unknowns.
class SetupContext {
 public:
  explicit SetupContext(MnaSystem& system) : system_(system) {}

  /// Claims a branch-current unknown (for voltage sources, inductors).
  UnknownId add_branch_current(const std::string& name);

  /// Claims a device-internal unknown with explicit tolerances/limits.
  /// `row_abstol` is the absolute residual floor of the matching equation.
  UnknownId add_internal(const std::string& name, double abstol,
                         double row_abstol, double max_newton_step,
                         double initial_guess);

 private:
  MnaSystem& system_;
};

/// Read-only access to a converged solution vector, with node helpers.
class Solution {
 public:
  Solution(const MnaSystem& system, const linalg::Vector& x)
      : system_(&system), x_(&x) {}

  /// Voltage of `node` (0 for ground).
  double v(NodeId node) const;
  /// Value of any unknown.
  double x(UnknownId unknown) const;

  const linalg::Vector& raw() const { return *x_; }
  const MnaSystem& system() const { return *system_; }

 private:
  const MnaSystem* system_;
  const linalg::Vector* x_;
};

/// Cached stamp of one quiescent nonlinear device (SPICE-style bypass).
///
/// Captured during a full (residual + Jacobian) assembly: every input the
/// stamp read — iterate entries via v()/x() and context scalars via
/// time()/dt()/gmin()/source_factor() — plus every residual/Jacobian
/// entry it produced and the device's committed-state signature.  A later
/// assembly whose inputs all match within the bypass tolerance replays
/// the recorded entries instead of re-evaluating the device model.
///
/// Each device holds a small set of these (up to kBypassWays, LRU
/// eviction) rather than a single slot: dt enters companion conductances
/// as 1/dt, so replay demands an exact dt match, and a single slot is
/// flushed by every dt change.  The transient's post-breakpoint ramps
/// revisit the same quantized dt rungs at every source edge, so keeping
/// one entry per rung lets quiescent devices replay straight through the
/// ramp from the second edge onward — the entries self-validate on every
/// lookup (inputs, committed-state signature, exact scalars), so no
/// event-driven invalidation is needed for correctness.
struct DeviceBypassCache {
  struct FEntry {
    std::size_t row;
    double value;
  };
  struct JEntry {
    std::size_t row;
    std::size_t col;
    std::size_t slot;  ///< CSR slot at capture; npos for dense captures
    double value;
  };
  /// Sentinel epoch for dense captures: never matches a real pattern
  /// epoch, so dense-captured slots are never replayed into a CSR sink.
  static constexpr std::uint64_t kNoEpoch = ~std::uint64_t{0};

  bool valid = false;
  /// Set when the capture hit outside the frozen CSR pattern (the pattern
  /// grows and the assembly retries); such a capture is discarded.
  bool poisoned = false;
  AnalysisMode mode = AnalysisMode::kDcOperatingPoint;
  // Context scalars the stamp actually read (replay requires an exact
  // match on each one that was read; unread scalars are unconstrained).
  bool read_time = false, read_dt = false, read_gmin = false,
       read_source_factor = false;
  double time = 0.0, dt = 0.0, gmin = 0.0, source_factor = 0.0;
  std::uint64_t epoch = kNoEpoch;  ///< pattern epoch of the CSR slots
  /// Set when the f-side of the capture has been refreshed (residual-only
  /// pass) at a point outside the bypass tolerance of the J entries'
  /// capture point: the J entries no longer linearize around `inputs`,
  /// so the cache only replays where they are never stamped and the
  /// first-order correction vanishes (exact-match residual-only replay).
  bool j_stale = false;
  /// (unknown index, value at capture) for every iterate entry read.
  std::vector<std::pair<std::size_t, double>> inputs;
  /// `inputs` as of the last *full* capture: the anchor the J entries
  /// linearize around, used to decide `j_stale` on f-side refreshes.
  std::vector<std::pair<std::size_t, double>> j_anchor;
  std::vector<double> signature;  ///< Device::bypass_signature at capture
  std::vector<FEntry> f_entries;
  std::vector<JEntry> j_entries;
  std::uint64_t last_used = 0;  ///< LRU stamp (MnaSystem::bypass_tick_)

  void reset() {
    valid = false;
    poisoned = false;
    j_stale = false;
    read_time = read_dt = read_gmin = read_source_factor = false;
    epoch = kNoEpoch;
    inputs.clear();
    j_anchor.clear();
    signature.clear();
    f_entries.clear();
    j_entries.clear();
  }
};

/// Bypass set associativity: sized so the distinct quantized dt rungs a
/// post-breakpoint ramp visits (dt_initial .. dt_max at ~1.5x growth on
/// the quarter-octave ladder) plus the equilibrated step all stay
/// resident — a smaller set LRU-thrashes on the cyclic per-edge rung
/// sequence and every ramp step degenerates to a full evaluation.
inline constexpr std::size_t kBypassWays = 16;

/// Stamping interface passed to Device::stamp.
///
/// The Jacobian sink is pluggable: dense matrix (classic path), frozen
/// CSR slots (sparse fast path), pattern recorder (symbolic pass), or
/// none (residual-only assembly for Newton damping trials).  Devices see
/// the same add_f/add_J interface in every case.
class StampContext {
 public:
  /// Dense Jacobian sink.
  StampContext(const MnaSystem& system, const linalg::Vector& x,
               linalg::Matrix& jacobian, linalg::Vector& residual,
               linalg::Vector& residual_scale);

  /// Sparse (CSR) Jacobian sink; entries outside the frozen pattern are
  /// appended to `missed` instead of being dropped.  Pass
  /// `jacobian == nullptr` for residual-only assembly.
  StampContext(const MnaSystem& system, const linalg::Vector& x,
               linalg::CsrMatrix* jacobian, linalg::Vector& residual,
               linalg::Vector& residual_scale,
               std::vector<std::pair<std::size_t, std::size_t>>* missed);

  /// Disables residual/scale accumulation (Jacobian-only assembly).
  void disable_residual() { want_residual_ = false; }
  /// Switches the Jacobian sink to a pattern recorder (symbolic pass).
  void record_pattern(
      std::vector<std::pair<std::size_t, std::size_t>>& pattern);

  AnalysisMode mode() const { return mode_; }
  /// End time of the step being solved (transient), or 0 for OP.
  double time() const {
    if (capture_) {
      capture_->read_time = true;
      capture_->time = time_;
    }
    return time_;
  }
  /// Step size (transient only; 0 for OP).
  double dt() const {
    if (capture_) {
      capture_->read_dt = true;
      capture_->dt = dt_;
    }
    return dt_;
  }
  /// Shunt conductance to ground added at every node (homotopy aid).
  double gmin() const {
    if (capture_) {
      capture_->read_gmin = true;
      capture_->gmin = gmin_;
    }
    return gmin_;
  }
  /// Scale factor applied by sources during source stepping, in [0,1].
  double source_factor() const {
    if (capture_) {
      capture_->read_source_factor = true;
      capture_->source_factor = source_factor_;
    }
    return source_factor_;
  }

  /// Value of node voltage at the current Newton iterate.
  double v(NodeId node) const;
  /// Value of any unknown at the current Newton iterate.
  double x(UnknownId unknown) const;

  /// Adds `current` (amperes, leaving the node) to node equation `eq`.
  void add_f(NodeId eq, double current);
  /// Adds `value` to an arbitrary equation row (branch/internal rows).
  void add_f(UnknownId eq, double value);

  /// Jacobian entries d f(eq) / d x(var); ground rows/cols are dropped.
  void add_J(NodeId eq, NodeId var, double dfdx);
  void add_J(NodeId eq, UnknownId var, double dfdx);
  void add_J(UnknownId eq, NodeId var, double dfdx);
  void add_J(UnknownId eq, UnknownId var, double dfdx);

  // Engine-side configuration (not for devices).
  void configure(AnalysisMode mode, double time, double dt, double gmin,
                 double source_factor);

  // --- Bypass plumbing (engine-internal, not for devices) --------------

  /// True when this context can produce a complete capture: residual and
  /// Jacobian sinks both attached (full assembly, not a pattern pass).
  bool can_capture() const {
    return want_residual_ && pattern_ == nullptr &&
           (dense_jacobian_ != nullptr || sparse_jacobian_ != nullptr);
  }
  /// Residual-only assembly: Jacobian contributions are dropped, so a
  /// replayed cache's J entries are never stamped.
  bool residual_only() const {
    return want_residual_ && pattern_ == nullptr &&
           dense_jacobian_ == nullptr && sparse_jacobian_ == nullptr;
  }
  bool has_sparse_sink() const { return sparse_jacobian_ != nullptr; }
  bool has_jacobian_sink() const {
    return dense_jacobian_ != nullptr || sparse_jacobian_ != nullptr;
  }
  bool wants_residual() const { return want_residual_; }
  /// Raw iterate entry by unknown index (replay input comparison).
  double unknown_value(std::size_t index) const { return x_[index]; }
  /// Routes all reads/stamps of the next Device::stamp into `cache`.
  void begin_capture(DeviceBypassCache* cache) { capture_ = cache; }
  void end_capture() { capture_ = nullptr; }
  /// Replays a cached stamp into the attached sinks.  The caller has
  /// already verified compatibility (mode/scalars/inputs/signature, and
  /// for CSR sinks a matching pattern epoch).
  void apply_cached(const DeviceBypassCache& cache);

  // --- Kernel plumbing (engine-internal, not for devices) --------------
  // Raw views over the attached sinks so the batched lane path
  // (nemsim/spice/kernels.h) can scatter directly into storage.

  bool pattern_recording() const { return pattern_ != nullptr; }
  const double* iterate_data() const { return x_.data(); }
  linalg::Matrix* dense_sink() const { return dense_jacobian_; }
  linalg::CsrMatrix* sparse_sink() const { return sparse_jacobian_; }
  std::vector<std::pair<std::size_t, std::size_t>>* missed_sink() const {
    return missed_;
  }
  double* residual_data() { return residual_.data(); }
  double* residual_scale_data() { return residual_scale_.data(); }

 private:
  void raw_f(UnknownId eq, double value);
  void raw_J(UnknownId eq, UnknownId var, double value);

  const MnaSystem& system_;
  const linalg::Vector& x_;
  linalg::Matrix* dense_jacobian_ = nullptr;
  linalg::CsrMatrix* sparse_jacobian_ = nullptr;
  std::vector<std::pair<std::size_t, std::size_t>>* missed_ = nullptr;
  std::vector<std::pair<std::size_t, std::size_t>>* pattern_ = nullptr;
  linalg::Vector& residual_;
  linalg::Vector& residual_scale_;
  bool want_residual_ = true;
  AnalysisMode mode_ = AnalysisMode::kDcOperatingPoint;
  double time_ = 0.0;
  double dt_ = 0.0;
  double gmin_ = 0.0;
  double source_factor_ = 1.0;
  /// Active capture sink (null outside a bypass capture); the const
  /// accessors (v, x, dt, ...) record reads into the pointee.
  DeviceBypassCache* capture_ = nullptr;
};

/// Passed to Device::accept_step after a converged solve.
class AcceptContext {
 public:
  AcceptContext(const Solution& solution, AnalysisMode mode, double time,
                double dt)
      : solution_(solution), mode_(mode), time_(time), dt_(dt) {}

  double v(NodeId node) const { return solution_.v(node); }
  double x(UnknownId unknown) const { return solution_.x(unknown); }
  AnalysisMode mode() const { return mode_; }
  double time() const { return time_; }
  double dt() const { return dt_; }
  const Solution& solution() const { return solution_; }

 private:
  const Solution& solution_;
  AnalysisMode mode_;
  double time_;
  double dt_;
};

/// The assembled MNA problem over a circuit.
///
/// Owns the unknown table (node voltages first, then device-claimed
/// unknowns) and provides assembly of residual + Jacobian at an iterate.
class MnaSystem {
 public:
  /// Builds the unknown table by running Device::setup on every device.
  explicit MnaSystem(Circuit& circuit);
  ~MnaSystem();  // out-of-line: KernelPlan is incomplete here

  Circuit& circuit() { return circuit_; }
  const Circuit& circuit() const { return circuit_; }

  std::size_t num_unknowns() const { return unknowns_.size(); }
  const UnknownInfo& unknown_info(std::size_t i) const { return unknowns_.at(i); }

  /// Unknown for a node's voltage; invalid for ground.
  UnknownId unknown_of(NodeId node) const;
  /// Unknown by display name ("v(out)", "i(Vdd)", ...); throws if absent.
  UnknownId unknown_by_name(const std::string& name) const;
  bool has_unknown(const std::string& name) const;

  /// Initial iterate: zeros for node voltages (unless a nodeset entry
  /// overrides) and per-unknown initial guesses for device internals.
  linalg::Vector initial_guess() const;

  /// Overrides the cold-start guess of a node voltage (SPICE .nodeset).
  void set_nodeset(NodeId node, double volts);
  void clear_nodesets();

  /// Assembles residual/Jacobian at iterate `x`.  `residual_scale`
  /// accumulates sum(|contribution|) per row for relative convergence
  /// checks.  The StampContext must have been `configure`d by the caller.
  void assemble(const linalg::Vector& x, linalg::Matrix& jacobian,
                linalg::Vector& residual, linalg::Vector& residual_scale,
                AnalysisMode mode, double time, double dt, double gmin,
                double source_factor) const;

  /// Residual + scale only (no Jacobian work) — the cheap assembly for
  /// Newton damping trials that only need a residual norm.
  void assemble_residual(const linalg::Vector& x, linalg::Vector& residual,
                         linalg::Vector& residual_scale, AnalysisMode mode,
                         double time, double dt, double gmin,
                         double source_factor) const;

  // --- Sparse fast path (pattern-frozen CSR assembly) ------------------
  //
  // The Jacobian sparsity pattern is captured once by a symbolic stamping
  // pass (union of OP and transient stamps plus all diagonals) and grows
  // lazily if a device later stamps an unseen position (e.g. a MOSFET
  // source/drain swap flips an asymmetric entry).  Growth bumps the
  // pattern epoch; callers rebuild their CsrMatrix workspace and retry.

  /// Monotonic counter bumped whenever the pattern grows.
  std::uint64_t jacobian_pattern_epoch() const;
  /// Raw structural Jacobian pattern of one recording stamp pass in
  /// `mode`: exactly the (row, col) positions devices stamp, with no
  /// gmin shunts and no forced diagonals (unlike the solver pattern,
  /// which unions modes and completes the diagonal).  Sorted and
  /// deduplicated.  This is the probe behind the lint structural rules
  /// (zero rows/columns, structural rank — nemsim/spice/lint.h).
  std::vector<std::pair<std::size_t, std::size_t>> structural_pattern(
      AnalysisMode mode) const;
  /// A zero-valued CSR skeleton over the current pattern.
  linalg::CsrMatrix make_sparse_jacobian() const;

  /// Full sparse assembly (residual + Jacobian).  With a non-null
  /// `linear_baseline` (from assemble_linear_jacobian, same pattern
  /// epoch), linear devices' Jacobian values are taken from the baseline
  /// and only nonlinear devices are re-stamped into the Jacobian.
  /// Returns false when the pattern grew (retry with a fresh skeleton).
  bool assemble_sparse(const linalg::Vector& x, linalg::CsrMatrix& jacobian,
                       linalg::Vector& residual,
                       linalg::Vector& residual_scale, AnalysisMode mode,
                       double time, double dt, double gmin,
                       double source_factor,
                       const std::vector<double>* linear_baseline
                       = nullptr) const;

  /// Jacobian-only sparse assembly (residual untouched); same baseline
  /// and return-value semantics as assemble_sparse.
  bool assemble_jacobian_sparse(const linalg::Vector& x,
                                linalg::CsrMatrix& jacobian,
                                AnalysisMode mode, double time, double dt,
                                double gmin, double source_factor,
                                const std::vector<double>* linear_baseline
                                = nullptr) const;

  /// Stamps only the linear devices' Jacobian into `jacobian` (values
  /// valid for the whole Newton solve at fixed mode/time/dt) and copies
  /// them into `baseline`.  Returns false when the pattern grew.
  bool assemble_linear_jacobian(const linalg::Vector& x,
                                linalg::CsrMatrix& jacobian,
                                std::vector<double>& baseline,
                                AnalysisMode mode, double time,
                                double dt) const;

  // --- Quiescent-device bypass (nemsim/spice/newton.h knobs) -----------
  //
  // Off by default; NewtonSolver::solve_plain configures it from
  // NewtonOptions on every solve.  When enabled, nonlinear devices whose
  // inputs (iterate entries + context scalars + committed-state
  // signature) match their last full evaluation within the tolerance
  // replay the recorded residual/Jacobian entries instead of
  // re-evaluating the model.  With bypass disabled the assembly control
  // flow is unchanged (bitwise-identical results).

  /// Cumulative nonlinear-device stamp accounting.  `evals` counts model
  /// evaluations actually executed in assembly passes (maintained even
  /// with bypass off, so before/after comparisons share a baseline);
  /// `bypassed` counts replays that skipped an evaluation.
  struct BypassCounters {
    std::int64_t evals = 0;
    std::int64_t bypassed = 0;
  };

  void configure_bypass(bool enabled, double reltol, double abstol);
  /// Suspends replay (capture still runs): every device is re-evaluated
  /// and its cache refreshed.  Used for the final converged-iteration
  /// verification pass, which must see true model evaluations.
  void set_bypass_replay_suspended(bool suspended);
  /// Converged-iteration verification mode: caches captured at the
  /// current iterate replay bitwise-exactly (their entries ARE the true
  /// evaluation at this point); any tolerance-admitted cache is
  /// re-evaluated.  Cheaper than full suspension with the same
  /// "never converge on an approximated residual" guarantee.
  void set_bypass_exact_only(bool exact_only);
  /// Drops every cached stamp (LTE reject, breakpoint, discontinuity).
  void invalidate_bypass_caches();
  const BypassCounters& bypass_counters() const { return bypass_counters_; }

  // --- Type-bucketed evaluation kernels (nemsim/spice/kernels.h) -------
  //
  // Off by default; NewtonSolver::solve_plain configures them from
  // NewtonOptions::kernels on every solve.  When enabled, devices with a
  // kernel descriptor are evaluated in type-bucketed lanes that scatter
  // f/J straight into CSR/dense storage through frozen slot maps; with
  // kernels disabled the assembly control flow is unchanged
  // (bitwise-identical results).

  /// Enables/disables lane assembly.  The plan (lanes + scatter maps) is
  /// built once on first enable and kept across toggles; the first
  /// enable also pre-grows the Jacobian pattern with every declared
  /// cell, which may bump the pattern epoch.
  void configure_kernels(bool enabled);
  bool kernels_enabled() const { return kernels_enabled_; }
  /// The frozen plan (null until the first enable).  Exposed for tests
  /// and per-bucket counters.
  const KernelPlan* kernel_plan() const { return kernel_plan_.get(); }
  /// Cumulative per-bucket device evaluations through the lane path
  /// (empty when no plan exists).
  std::vector<std::pair<std::string, std::uint64_t>> kernel_lane_evals()
      const;

  /// Calls begin_step on every device.
  void begin_step(double time, double dt);
  /// Calls accept_step on every device.
  void accept(const linalg::Vector& x, AnalysisMode mode, double time,
              double dt);
  /// Calls reset_state on every device.
  void reset_devices();
  /// Calls notify_discontinuity on every device.
  void notify_discontinuity();

  /// Collects and sorts distinct breakpoints in (0, tstop].
  std::vector<double> breakpoints(double tstop) const;

  // Used by SetupContext.
  UnknownId allocate_unknown(UnknownInfo info);

 private:
  enum class DeviceSet { kAll, kLinear, kNonlinear };
  /// `hot` marks the Newton assembly passes: nonlinear evaluations are
  /// counted and the bypass cache may capture/replay.  Symbolic and
  /// pattern passes stamp plainly (hot = false).
  void stamp_devices(StampContext& ctx, DeviceSet set,
                     bool hot = false) const;
  /// The classic per-device virtual dispatch loop (always used for
  /// pattern-recording passes and with kernels off).
  void stamp_devices_virtual(StampContext& ctx, DeviceSet set,
                             bool hot) const;
  /// Lane-batched assembly through the kernel plan; devices without a
  /// descriptor (and bypass-managed devices in hot passes) fall back to
  /// stamp_one.
  void stamp_devices_kernels(StampContext& ctx, DeviceSet set,
                             bool hot) const;
  void stamp_one(StampContext& ctx, std::size_t device_index,
                 bool hot) const;
  /// Builds the kernel plan (lanes, rows, declared cells, dense slots).
  void build_kernel_plan();
  /// Resolves every lane's CSR slots against `csr`; on success stamps the
  /// plan with the current pattern epoch.  Unresolvable cells are
  /// appended to `missed` (pattern grows, caller retries).
  void resolve_kernel_sparse_slots(
      KernelPlan& plan, const linalg::CsrMatrix& csr,
      std::vector<std::pair<std::size_t, std::size_t>>* missed) const;
  /// Grows the pattern with whichever of `cells` it lacks; bumps the
  /// epoch only when something was genuinely new.  No-op when the
  /// pattern has not been built yet (ensure_pattern folds the kernel
  /// plan's declared cells in at build time instead).
  void ensure_pattern_contains(
      const std::vector<std::pair<std::size_t, std::size_t>>& cells) const;
  /// True when `cache` can stand in for re-evaluating the device whose
  /// stamp it recorded, given the context's iterate/scalars/sinks.
  /// With `exact` set, inputs and signature must match bitwise (the
  /// cache was captured at this very iterate, so replaying it IS the
  /// true evaluation); otherwise the configured tolerances apply.
  bool bypass_compatible(const StampContext& ctx,
                         const DeviceBypassCache& cache,
                         const Device& device, bool exact) const;
  /// True when the scalar context the entry's stamp read (mode plus any
  /// of time/dt/gmin/source_factor it consumed) matches `ctx` exactly —
  /// the entry describes *this* operating context, whatever its iterate
  /// inputs say.  Used to pick capture victims and f-refresh targets in
  /// the per-device way set.
  static bool bypass_context_matches(const DeviceBypassCache& cache,
                                     const StampContext& ctx);
  /// Picks the way a fresh capture for `device_index` should land in:
  /// supersede the entry for this exact context if one exists, else an
  /// invalid slot, else a time-stamped entry that can never replay again
  /// (its absolute time has passed), else grow the set up to kBypassWays,
  /// else evict least-recently-used.
  DeviceBypassCache& bypass_capture_way(std::size_t device_index,
                                        const StampContext& ctx) const;
  void ensure_pattern() const;
  void grow_pattern(
      const std::vector<std::pair<std::size_t, std::size_t>>& missed) const;

  Circuit& circuit_;
  std::vector<UnknownInfo> unknowns_;
  std::unordered_map<std::string, std::size_t> unknown_index_;
  std::vector<std::size_t> linear_devices_;
  std::vector<std::size_t> nonlinear_devices_;
  /// Per device index: 0 linear, 1 nonlinear (bypass-ineligible),
  /// 2 nonlinear with bypass_signature support.
  std::vector<std::uint8_t> device_class_;
  // Bypass configuration + per-device caches (mutable: assembly is
  // logically const; the caches memoize it).
  bool bypass_enabled_ = false;
  bool bypass_replay_suspended_ = false;
  /// Verification mode: replay only caches captured at the current
  /// iterate bitwise; everything else gets a true model evaluation.
  bool bypass_exact_only_ = false;
  double bypass_reltol_ = 1e-6;
  double bypass_abstol_ = 1e-12;
  /// Per device index: up to kBypassWays cached stamps (grown on demand,
  /// LRU-evicted), one per distinct operating context — typically one per
  /// quantized dt rung the transient revisits.
  mutable std::vector<std::vector<DeviceBypassCache>> bypass_caches_;
  mutable std::uint64_t bypass_tick_ = 0;
  mutable BypassCounters bypass_counters_;
  mutable std::vector<double> bypass_signature_scratch_;
  /// Scratch capture for f-side refreshes in residual-only passes.
  mutable DeviceBypassCache f_refresh_scratch_;
  // Jacobian sparsity pattern, built lazily and grown on demand.
  mutable std::vector<std::pair<std::size_t, std::size_t>> pattern_;
  mutable bool pattern_built_ = false;
  mutable std::uint64_t pattern_epoch_ = 0;
  // Type-bucketed kernel plan (built on first enable, kept across
  // toggles; lane counters and sparse-slot resolution mutate through the
  // pointer during const assembly).
  bool kernels_enabled_ = false;
  std::unique_ptr<KernelPlan> kernel_plan_;
};

}  // namespace nemsim::spice
