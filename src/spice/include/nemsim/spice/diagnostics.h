// Simulation observability: per-analysis run reports and convergence
// forensics.
//
// Every analysis driver (operating point, transient, DC sweep, Monte
// Carlo) accepts an optional RunReport sink.  When attached, the driver
// fills in cumulative Newton work counters, homotopy stepping-stage
// records, a per-solve Newton-iteration histogram, LTE-reject and
// step-failure locations, and phase wall-clock timings.  When no sink is
// attached the instrumented code paths are skipped entirely, so the
// simulation is bitwise identical and pays nothing.
//
// On failure, ConvergenceError (util/error.h) carries a structured
// ConvergenceDiagnostics payload naming the worst weighted-residual rows
// via the MNA unknown table.  The opt-in forensics hook additionally
// dumps the recent waveform window, a netlist snapshot (via
// spice/netlist_export.h) and the failure description to disk for
// offline reproduction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nemsim/spice/lint_types.h"
#include "nemsim/spice/newton.h"
#include "nemsim/util/error.h"
#include "nemsim/util/instrument.h"

namespace nemsim::spice {

class Circuit;
class Waveform;

/// One rung of the Newton homotopy ladder (plain solve, one gmin decade,
/// one source-stepping factor), with its iteration cost.
struct SteppingStageRecord {
  enum class Kind { kPlain, kGminStep, kSourceStep };
  Kind kind = Kind::kPlain;
  /// gmin value for kGminStep, source factor for kSourceStep, final gmin
  /// for kPlain.
  double value = 0.0;
  int iterations = 0;  ///< Newton iterations spent in this stage
  bool converged = false;
};

/// Location of one rejected transient step (local truncation error).
struct LteRejectRecord {
  double time = 0.0;            ///< end time of the rejected step
  double dt = 0.0;              ///< rejected step size
  double ratio = 0.0;           ///< LTE ratio that triggered the reject
  std::size_t worst_unknown = 0;
  std::string worst_name;       ///< display name of the dominant unknown
};

/// Location of one transient step retried after Newton failed on it.
struct StepFailureRecord {
  double time = 0.0;  ///< end time of the failed step
  double dt = 0.0;    ///< step size that failed
  std::string message;
};

/// Unified per-analysis diagnostics report.
///
/// Attach one via {Op,Transient,DcSweep,MonteCarlo}Options::report; the
/// driver accumulates into it (reports are reusable across runs — values
/// keep adding up until reset()).  Not safe for concurrent mutation; the
/// parallel drivers fill it after their workers join.
struct RunReport {
  /// Caps the per-event record vectors (lte_rejects, step_failures,
  /// notes) so a pathological run cannot grow the report unboundedly;
  /// counters keep counting past the cap.
  static constexpr std::size_t kMaxRecords = 256;

  std::string analysis;  ///< "op", "transient", "dc_sweep", "monte_carlo"

  /// Cumulative Newton work over the whole run (all steps/points/trials).
  NewtonStats newton;
  /// Homotopy ladder records, in execution order.
  std::vector<SteppingStageRecord> stages;
  /// Bucket i counts Newton solves that finished in i iterations (last
  /// bucket collects everything at/above the bucket count).
  std::vector<std::uint64_t> newton_iteration_histogram;

  // Transient-specific.
  std::size_t accepted_steps = 0;
  std::size_t newton_failures = 0;  ///< step retries due to non-convergence
  std::size_t lte_reject_count = 0;
  double min_dt = 0.0;
  double max_dt = 0.0;
  std::vector<LteRejectRecord> lte_rejects;    ///< first kMaxRecords
  std::vector<StepFailureRecord> step_failures;  ///< first kMaxRecords

  // Sweep / Monte-Carlo.
  std::size_t points = 0;         ///< sweep points or trials attempted
  std::size_t failed_points = 0;  ///< points/trials that threw
  std::vector<std::string> notes;  ///< per-failure notes (first kMaxRecords)

  /// Findings of the pre-simulation lint gate (spice/lint.h) when the
  /// analysis options had lint != kOff; empty otherwise.  Filled before
  /// any Newton work, so on a strict-mode rejection the report holds the
  /// findings while `stages` stays empty.
  std::vector<lint::LintFinding> lint_findings;

  /// Findings of the semantic analysis gate (spice/analyze.h) when the
  /// analysis options had analyze != kOff; empty otherwise.  Same
  /// timing contract as lint_findings: filled before any Newton work.
  std::vector<lint::LintFinding> analyze_findings;

  /// Phase wall-clock ("phase.op", "phase.stepping") and free-form
  /// counters.  Mutex-guarded, so parallel workers may add to it.
  util::MetricRegistry metrics;

  /// Records one Newton solve's iteration count into the histogram.
  void record_newton_iterations(int iterations);
  /// Appends a note, honoring kMaxRecords.
  void add_note(const std::string& note);

  /// Count of stages by kind (per-stage views of the ladder).
  std::size_t stage_count(SteppingStageRecord::Kind kind) const;
  /// Sum of iterations over all recorded stages.
  int stage_iterations_total() const;

  /// Clears everything back to a freshly constructed report.
  void reset();

  /// Compact human-readable rendering (for bench output and logs).
  std::string summary() const;
  /// Stable JSON rendering (consumed by bench/run_benchmarks.sh).
  void write_json(std::ostream& os) const;
};

/// Writes a findings vector as a JSON array of
/// {"severity", "rule", "subject", "message"} objects — the one schema
/// shared by RunReport::write_json's lint_findings / analyze_findings
/// arrays and the `nemsim-lint --json` CLI output, kept in one function
/// so the consumers can't drift apart.
void write_findings_json(std::ostream& os,
                         const std::vector<lint::LintFinding>& findings);

/// Opt-in failure forensics: where and what to dump when an analysis
/// fails.  Attached to {Op,Transient,MonteCarlo}Options.
struct ForensicsOptions {
  bool enabled = false;
  std::string directory = ".";   ///< created if missing
  std::string tag = "nemsim";    ///< file-name prefix
  /// How many of the most recent accepted samples of the waveform to
  /// keep in the dump (the window right before the failure).
  std::size_t window_samples = 256;
};

/// Writes the forensics bundle for a failed analysis:
///   <dir>/<tag>.failure.txt  — what() plus the structured payload
///   <dir>/<tag>.netlist.sp   — netlist snapshot for offline repro
///   <dir>/<tag>.wave.csv     — recent waveform window (when wave given)
/// When `lint` is non-null and non-clean its findings are appended to the
/// failure description — convergence failures very often have a
/// structural cause the analyzer can name.  Returns the paths written.
/// IO errors are logged and swallowed — a forensics dump must never mask
/// the original failure.
std::vector<std::string> write_failure_forensics(
    const ForensicsOptions& options, const Circuit& circuit,
    const Waveform* wave, const std::string& what,
    const ConvergenceDiagnostics* diag,
    const lint::LintReport* lint = nullptr);

}  // namespace nemsim::spice
