#include "nemsim/util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "nemsim/util/error.h"

namespace nemsim {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  require(!columns_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == columns_.size(),
          "Table::add_row: row arity does not match column count");
  rows_.push_back(std::move(cells));
}

Table& Table::begin_row() {
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::cell(const std::string& text) {
  require(!rows_.empty() && rows_.back().size() < columns_.size(),
          "Table::cell: no open row or row already full");
  rows_.back().push_back(text);
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format(value, precision));
}

Table& Table::cell_sci(double value, int precision) {
  return cell(format_sci(value, precision));
}

Table& Table::cell(int value) { return cell(std::to_string(value)); }

std::string Table::format(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::format_sci(double value, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& text = c < row.size() ? row[c] : std::string{};
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << std::left << text;
    }
    os << " |\n";
  };
  print_row(columns_);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace nemsim
