#include "nemsim/util/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace nemsim {
namespace {
// Atomic so worker threads (util/parallel.h sweeps) can consult the
// threshold without a data race; emission is serialized separately.
std::atomic<LogLevel> g_level = LogLevel::kWarn;
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::clog << "[nemsim " << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace nemsim
