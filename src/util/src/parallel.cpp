#include "nemsim/util/parallel.h"

#include <cerrno>
#include <cstdlib>
#include <optional>
#include <string>

#include "nemsim/util/error.h"

namespace nemsim::util {

namespace {

/// Strictly parses a worker count: the whole string must be a base-10
/// integer (leading whitespace allowed, trailing whitespace tolerated) in
/// [1, kMaxThreads].  Negative, zero, garbage, partial ("8x"), and
/// overflowing values all yield nullopt so the caller falls back to the
/// hardware default instead of wrapping or throwing.
constexpr long long kMaxThreads = 1 << 20;

std::optional<std::size_t> parse_thread_count(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text, &end, 10);
  if (end == text) return std::nullopt;           // no digits at all
  while (*end == ' ' || *end == '\t') ++end;
  if (*end != '\0') return std::nullopt;          // trailing garbage
  if (errno == ERANGE) return std::nullopt;       // overflow/underflow
  if (parsed < 1 || parsed > kMaxThreads) return std::nullopt;
  return static_cast<std::size_t>(parsed);
}

}  // namespace

std::size_t default_parallelism() {
  if (const char* env = std::getenv("NEMSIM_THREADS")) {
    if (const auto parsed = parse_thread_count(env)) return *parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_parallelism();
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw Error("ThreadPool::submit: pool already shut down");
    }
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    task_ready_.wait(lock,
                     [this]() { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) all_idle_.notify_all();
  }
}

}  // namespace nemsim::util
