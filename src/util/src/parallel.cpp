#include "nemsim/util/parallel.h"

#include <cstdlib>
#include <string>

namespace nemsim::util {

std::size_t default_parallelism() {
  if (const char* env = std::getenv("NEMSIM_THREADS")) {
    try {
      const long parsed = std::stol(env);
      if (parsed >= 1) return static_cast<std::size_t>(parsed);
    } catch (...) {
      // Malformed value: fall through to the hardware default.
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_parallelism();
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    task_ready_.wait(lock,
                     [this]() { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) all_idle_.notify_all();
  }
}

}  // namespace nemsim::util
