#include "nemsim/util/instrument.h"

namespace nemsim::util {

void MetricRegistry::add_count(const std::string& name, std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[name].count += delta;
}

void MetricRegistry::add_time(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricEntry& e = entries_[name];
  e.seconds += seconds;
  ++e.count;
}

MetricEntry MetricRegistry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? MetricEntry{} : it->second;
}

std::vector<std::pair<std::string, MetricEntry>> MetricRegistry::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {entries_.begin(), entries_.end()};
}

void MetricRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace nemsim::util
