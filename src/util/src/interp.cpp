#include "nemsim/util/interp.h"

#include <algorithm>

#include "nemsim/util/error.h"

namespace nemsim {
namespace {

double interp_impl(std::span<const double> xs, std::span<const double> ys,
                   double x) {
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const auto hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] * (1.0 - t) + ys[hi] * t;
}

void check_sorted(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "interp: xs and ys sizes differ");
  require(!xs.empty(), "interp: empty sample");
  for (std::size_t i = 1; i < xs.size(); ++i) {
    require(xs[i] > xs[i - 1], "interp: xs must be strictly increasing");
  }
}

}  // namespace

PiecewiseLinear::PiecewiseLinear(std::span<const double> xs,
                                 std::span<const double> ys)
    : xs_(xs.begin(), xs.end()), ys_(ys.begin(), ys.end()) {
  check_sorted(xs_, ys_);
}

double PiecewiseLinear::operator()(double x) const {
  return interp_impl(xs_, ys_, x);
}

double lerp_at(std::span<const double> xs, std::span<const double> ys,
               double x) {
  check_sorted(xs, ys);
  return interp_impl(xs, ys, x);
}

}  // namespace nemsim
