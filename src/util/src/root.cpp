#include "nemsim/util/root.h"

#include <cmath>

#include "nemsim/util/error.h"

namespace nemsim {

double bisect(const std::function<double(double)>& f, double lo, double hi,
              const RootOptions& options) {
  require(lo <= hi, "bisect: lo must be <= hi");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  require(std::signbit(flo) != std::signbit(fhi),
          "bisect: f(lo) and f(hi) must bracket a root");
  for (int i = 0; i < options.max_iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0 || hi - lo < options.xtol ||
        (options.ftol > 0.0 && std::abs(fmid) < options.ftol)) {
      return mid;
    }
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  throw ConvergenceError("bisect: iteration budget exhausted");
}

double brent(const std::function<double(double)>& f, double a, double b,
             const RootOptions& options) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  require(std::signbit(fa) != std::signbit(fb),
          "brent: f(lo) and f(hi) must bracket a root");
  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int i = 0; i < options.max_iterations; ++i) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol = 2.0 * 1e-16 * std::abs(b) + 0.5 * options.xtol;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0 ||
        (options.ftol > 0.0 && std::abs(fb) < options.ftol)) {
      return b;
    }
    if (std::abs(e) < tol || std::abs(fa) <= std::abs(fb)) {
      d = e = m;  // bisection
    } else {
      double p, q;
      const double s = fb / fa;
      if (a == c) {  // secant
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {  // inverse quadratic
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q; else p = -p;
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q), std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = e = m;
      }
    }
    a = b;
    fa = fb;
    b += std::abs(d) > tol ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if (std::signbit(fb) == std::signbit(fc)) {
      c = a;
      fc = fa;
      e = d = b - a;
    }
  }
  throw ConvergenceError("brent: iteration budget exhausted");
}

double golden_minimize(const std::function<double(double)>& f, double lo,
                       double hi, double xtol) {
  require(lo <= hi, "golden_minimize: lo must be <= hi");
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  while (b - a > xtol) {
    if (f1 < f2) {
      b = x2;
      x2 = x1; f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2; f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

double monotone_threshold(const std::function<bool(double)>& pred, double lo,
                          double hi, double xtol) {
  require(lo <= hi, "monotone_threshold: lo must be <= hi");
  if (!pred(lo)) return lo;
  if (pred(hi)) return hi;
  while (hi - lo > xtol) {
    const double mid = 0.5 * (lo + hi);
    if (pred(mid)) lo = mid; else hi = mid;
  }
  return lo;
}

}  // namespace nemsim
