#include "nemsim/util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "nemsim/util/error.h"

namespace nemsim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  // Sample variance is undefined below two samples.  Returning 0.0 here
  // (the old behavior) made a single-trial Monte-Carlo report zero
  // spread as if it had been measured; NaN matches the free stddev()'s
  // "need at least two samples" contract while staying usable in
  // streaming contexts that cannot afford a throw.
  if (n_ < 2) return std::numeric_limits<double>::quiet_NaN();
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  require(!xs.empty(), "mean: empty sample");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  require(xs.size() >= 2, "stddev: need at least two samples");
  const double mu = mean(xs);
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mu) * (x - mu);
  return std::sqrt(m2 / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
  require(!xs.empty(), "percentile: empty sample");
  require(p >= 0.0 && p <= 100.0, "percentile: p must be in [0, 100]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace nemsim
