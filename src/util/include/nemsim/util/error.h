// Exception hierarchy for nemsim.
//
// All recoverable failures in the simulator are reported via exceptions
// derived from `nemsim::Error`, so callers can distinguish numerical
// failures (convergence, singular systems) from usage errors (bad netlist,
// bad arguments) with a single catch site.
#pragma once

#include <stdexcept>
#include <string>

namespace nemsim {

/// Base class of all nemsim exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A function was called with arguments that violate its preconditions.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A netlist is structurally invalid (unknown node, duplicate name, ...).
class NetlistError : public Error {
 public:
  explicit NetlistError(const std::string& what) : Error(what) {}
};

/// A linear system could not be factored (matrix numerically singular).
class SingularMatrixError : public Error {
 public:
  explicit SingularMatrixError(const std::string& what) : Error(what) {}
};

/// Newton iteration (or one of its homotopy fallbacks) failed to converge.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

/// A requested signal/measurement does not exist or is ill-posed.
class MeasurementError : public Error {
 public:
  explicit MeasurementError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `msg` when `cond` is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}

}  // namespace nemsim
