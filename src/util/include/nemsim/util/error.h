// Exception hierarchy for nemsim.
//
// All recoverable failures in the simulator are reported via exceptions
// derived from `nemsim::Error`, so callers can distinguish numerical
// failures (convergence, singular systems) from usage errors (bad netlist,
// bad arguments) with a single catch site.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace nemsim {

/// Base class of all nemsim exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A function was called with arguments that violate its preconditions.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A netlist is structurally invalid (unknown node, duplicate name, ...).
class NetlistError : public Error {
 public:
  explicit NetlistError(const std::string& what) : Error(what) {}
};

/// A linear system could not be factored (matrix numerically singular).
class SingularMatrixError : public Error {
 public:
  explicit SingularMatrixError(const std::string& what) : Error(what) {}
};

/// Structured description of a convergence failure: where the solve was
/// (time/dt), how hard it tried (iterations), how far it was from
/// converging (weighted norms) and which equations were worst.  Row names
/// use the simulator's unknown display names ("v(out)", "i(Vdd)",
/// "X1.x"), so the payload points directly at the offending device/node.
struct ConvergenceDiagnostics {
  /// Strategy or analysis phase that failed ("plain", "gmin", "source",
  /// "transient-step", ...).
  std::string strategy;
  double time = 0.0;           ///< analysis time at failure (0 for DC)
  double dt = 0.0;             ///< step size at failure (0 for DC)
  int iterations = 0;          ///< Newton iterations spent in the failing solve
  double residual_norm = 0.0;  ///< weighted residual norm at exit (<=1 converged)
  double update_norm = 0.0;    ///< weighted update norm at exit (<=1 converged)

  struct Row {
    std::string name;       ///< unknown/equation display name
    double residual = 0.0;  ///< raw residual value of the row
    double weighted = 0.0;  ///< residual / per-row tolerance (>1 violates)
  };
  /// Worst weighted-residual rows, most-violating first (top-k).
  std::vector<Row> worst_rows;

  /// Human-readable multi-line rendering of the payload.
  std::string describe() const {
    std::string out = "strategy=" + strategy +
                      " time=" + std::to_string(time) +
                      " dt=" + std::to_string(dt) +
                      " iterations=" + std::to_string(iterations) +
                      " residual_norm=" + std::to_string(residual_norm) +
                      " update_norm=" + std::to_string(update_norm);
    for (const Row& row : worst_rows) {
      out += "\n  worst row: " + row.name +
             " residual=" + std::to_string(row.residual) +
             " weighted=" + std::to_string(row.weighted);
    }
    return out;
  }
};

/// Newton iteration (or one of its homotopy fallbacks) failed to converge.
///
/// Optionally carries a ConvergenceDiagnostics payload naming the worst
/// residual rows and the failure point; the payload is shared_ptr-held so
/// the exception stays cheaply copyable (as exceptions must be).
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
  ConvergenceError(const std::string& what, ConvergenceDiagnostics diag)
      : Error(what),
        diag_(std::make_shared<const ConvergenceDiagnostics>(
            std::move(diag))) {}

  bool has_diagnostics() const { return diag_ != nullptr; }
  /// Structured payload, or nullptr when the thrower attached none.
  const ConvergenceDiagnostics* diagnostics() const { return diag_.get(); }

 private:
  std::shared_ptr<const ConvergenceDiagnostics> diag_;
};

/// A requested signal/measurement does not exist or is ill-posed.
class MeasurementError : public Error {
 public:
  explicit MeasurementError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `msg` when `cond` is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}

}  // namespace nemsim
