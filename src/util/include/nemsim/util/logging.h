// Minimal leveled logger.
//
// The simulator logs convergence diagnostics at Debug level; benches and
// examples run quietly by default.  A single global level keeps the
// interface small; the level is atomic and emission is serialized so
// parallel sweep workers (util/parallel.h) can log safely.
#pragma once

#include <sstream>
#include <string>

namespace nemsim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the current global log threshold.
LogLevel log_level();
/// Sets the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Logs `message` at `level` if it passes the global threshold.
inline void log(LogLevel level, const std::string& message) {
  if (level >= log_level() && log_level() != LogLevel::kOff) {
    detail::log_emit(level, message);
  }
}

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

/// Builds a log message from streamable parts: logf(LogLevel::kInfo, "x=", x).
template <typename... Parts>
void logf(LogLevel level, const Parts&... parts) {
  if (level < log_level() || log_level() == LogLevel::kOff) return;
  std::ostringstream os;
  (os << ... << parts);
  detail::log_emit(level, os.str());
}

}  // namespace nemsim
