// Physical constants and unit helpers used throughout nemsim.
//
// All internal quantities are SI: volts, amperes, seconds, meters, farads,
// henries, kilograms, newtons.  The user-facing literals below exist so that
// device geometry and waveform parameters can be written the way a circuit
// designer writes them ("0.12_um", "10_fF", "50_ps") without unit mistakes.
#pragma once

namespace nemsim {

/// Fundamental physical constants (CODATA values, SI units).
namespace phys {
inline constexpr double kBoltzmann = 1.380649e-23;   ///< J/K
inline constexpr double kElementaryCharge = 1.602176634e-19;  ///< C
inline constexpr double kEps0 = 8.8541878128e-12;    ///< F/m, vacuum permittivity
inline constexpr double kEpsRSi = 11.7;              ///< relative permittivity of silicon
inline constexpr double kEpsRSiO2 = 3.9;             ///< relative permittivity of SiO2
inline constexpr double kRoomTemperature = 300.0;    ///< K, default simulation temperature

/// Thermal voltage kT/q at temperature `temp_k` (about 25.85 mV at 300 K).
constexpr double thermal_voltage(double temp_k) {
  return kBoltzmann * temp_k / kElementaryCharge;
}
}  // namespace phys

/// User-defined literals for common circuit units.  All convert to SI.
namespace literals {
// clang-format off
constexpr double operator""_m(long double v)   { return static_cast<double>(v); }
constexpr double operator""_mm(long double v)  { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_um(long double v)  { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nm(long double v)  { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_um(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nm(unsigned long long v) { return static_cast<double>(v) * 1e-9; }

constexpr double operator""_s(long double v)   { return static_cast<double>(v); }
constexpr double operator""_ms(long double v)  { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_us(long double v)  { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_ns(long double v)  { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_ps(long double v)  { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_ns(unsigned long long v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_ps(unsigned long long v) { return static_cast<double>(v) * 1e-12; }

constexpr double operator""_V(long double v)   { return static_cast<double>(v); }
constexpr double operator""_mV(long double v)  { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_mV(unsigned long long v) { return static_cast<double>(v) * 1e-3; }

constexpr double operator""_A(long double v)   { return static_cast<double>(v); }
constexpr double operator""_mA(long double v)  { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uA(long double v)  { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nA(long double v)  { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pA(long double v)  { return static_cast<double>(v) * 1e-12; }

constexpr double operator""_F(long double v)   { return static_cast<double>(v); }
constexpr double operator""_uF(long double v)  { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nF(long double v)  { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pF(long double v)  { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fF(long double v)  { return static_cast<double>(v) * 1e-15; }
constexpr double operator""_fF(unsigned long long v) { return static_cast<double>(v) * 1e-15; }

constexpr double operator""_Ohm(long double v) { return static_cast<double>(v); }
constexpr double operator""_kOhm(long double v){ return static_cast<double>(v) * 1e3; }
constexpr double operator""_MOhm(long double v){ return static_cast<double>(v) * 1e6; }

constexpr double operator""_H(long double v)   { return static_cast<double>(v); }
constexpr double operator""_uH(long double v)  { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nH(long double v)  { return static_cast<double>(v) * 1e-9; }

constexpr double operator""_W(long double v)   { return static_cast<double>(v); }
constexpr double operator""_uW(long double v)  { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nW(long double v)  { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pW(long double v)  { return static_cast<double>(v) * 1e-12; }
// clang-format on
}  // namespace literals

}  // namespace nemsim
