// Deterministic random number streams for Monte-Carlo analyses.
//
// Every Monte-Carlo trial derives its own child stream from (seed, trial
// index) so results are reproducible and independent of evaluation order.
#pragma once

#include <cstdint>
#include <random>

namespace nemsim {

/// A seeded normal/uniform generator wrapping the standard engine.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_mix_(seed) {}

  /// Derives a statistically-independent child stream for `index`.
  Rng child(std::uint64_t index) const {
    // SplitMix64-style mix of seed and index; avoids correlated streams.
    std::uint64_t z = seed_mix_ + index * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return Rng(z ^ (z >> 31));
  }

  /// Standard normal draw scaled to (mean, sigma).
  double normal(double mean = 0.0, double sigma = 1.0) {
    return mean + sigma * normal_(engine_);
  }

  /// Uniform draw in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return lo + (hi - lo) * uniform_(engine_);
  }

  /// Uniform integer in [0, n).
  std::uint64_t index(std::uint64_t n) {
    std::uniform_int_distribution<std::uint64_t> d(0, n - 1);
    return d(engine_);
  }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_mix_ = 0;
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace nemsim
