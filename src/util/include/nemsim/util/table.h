// ASCII / CSV table formatting used by the bench harnesses.
//
// Every bench binary reproduces one table or figure of the paper by printing
// the underlying data series; `Table` gives them a uniform, aligned look and
// an optional CSV dump for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nemsim {

/// A simple column-aligned table builder.
///
/// Cells are strings; numeric helpers format with engineering-friendly
/// precision.  Rows must have exactly as many cells as there are columns.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Number of columns fixed at construction.
  std::size_t num_columns() const { return columns_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  /// Appends a fully-formed row. Throws InvalidArgument on arity mismatch.
  void add_row(std::vector<std::string> cells);

  /// Row-building helpers: call `begin_row`, then `cell(...)` per column.
  Table& begin_row();
  Table& cell(const std::string& text);
  Table& cell(double value, int precision = 4);
  Table& cell_sci(double value, int precision = 3);
  Table& cell(int value);

  /// Renders an aligned ASCII table (with header separator) to `os`.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (no quoting of embedded commas needed here).
  void print_csv(std::ostream& os) const;

  /// Formats a double with `precision` significant digits (general format).
  static std::string format(double value, int precision = 4);
  /// Formats a double in scientific notation.
  static std::string format_sci(double value, int precision = 3);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nemsim
