// Minimal thread-pool parallelism for embarrassingly-parallel sweeps.
//
// No external dependencies: std::thread workers over a FIFO work queue.
// The intended use is coarse-grained task parallelism (one DC sweep
// point, one Monte-Carlo trial, one fan-in variant per task); results
// are always collected in input order, so a parallel run is bitwise
// identical to a sequential one as long as tasks are independent.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace nemsim::util {

/// Worker count used when a caller passes 0: the NEMSIM_THREADS
/// environment variable when set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (at least 1).  Values that are
/// negative, zero, non-numeric, partially numeric ("8x"), or beyond 2^20
/// are rejected and fall back to the hardware default — a bad environment
/// must never wrap to a huge count or throw.
std::size_t default_parallelism();

/// Fixed-size pool of workers draining a FIFO queue of tasks.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 -> default_parallelism()).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; tasks must not throw (wrap and capture instead).
  /// Throws Error if the pool has been shut down — submitting into a dead
  /// pool is a programming error, not something to silently drop.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// Drains remaining tasks, joins all workers, and rejects further
  /// submits.  Idempotent; also called by the destructor.
  void shutdown();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Evaluates fn(0), ..., fn(count-1) on a pool of `threads` workers and
/// returns the results in index order — deterministic regardless of the
/// thread interleaving.  `threads` of 0 uses default_parallelism(); 1
/// runs inline on the calling thread (no pool).  The first exception
/// thrown by any task (lowest index wins) is rethrown after all tasks
/// finish.  The result type must be default-constructible and movable.
template <typename Fn>
auto parallel_map(std::size_t count, Fn&& fn, std::size_t threads = 0)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  if (threads == 0) threads = default_parallelism();
  std::vector<Result> results(count);
  if (count == 0) return results;

  if (threads <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }

  std::vector<std::exception_ptr> errors(count);
  ThreadPool pool(std::min(threads, count));
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&, i]() {
      try {
        results[i] = fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

}  // namespace nemsim::util
