// Piecewise-linear interpolation over sampled curves.
//
// Used by waveform measurements (crossing times) and the PWL source.
#pragma once

#include <span>
#include <vector>

namespace nemsim {

/// Linear interpolation of y(x) through sorted sample points.
///
/// Outside the sample range the curve is clamped to the end values
/// (the natural behaviour for source waveforms and measured curves).
class PiecewiseLinear {
 public:
  /// `xs` must be strictly increasing and the spans equally sized.
  PiecewiseLinear(std::span<const double> xs, std::span<const double> ys);

  double operator()(double x) const;

  std::size_t size() const { return xs_.size(); }
  std::span<const double> xs() const { return xs_; }
  std::span<const double> ys() const { return ys_; }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// One-shot interpolation through (xs, ys) at `x` (same rules as above).
double lerp_at(std::span<const double> xs, std::span<const double> ys,
               double x);

}  // namespace nemsim
