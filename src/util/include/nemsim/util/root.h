// Scalar root finding and extremum search.
//
// Used by the measurement layer: noise-margin bisection, pull-in voltage
// extraction, SNM maximum-square search.
#pragma once

#include <functional>

namespace nemsim {

/// Options for bracketing root finders.
struct RootOptions {
  double xtol = 1e-9;      ///< stop when bracket width < xtol
  double ftol = 0.0;       ///< stop when |f| < ftol (0 disables)
  int max_iterations = 200;
};

/// Finds x in [lo, hi] with f(x) = 0 by bisection.
///
/// Requires f(lo) and f(hi) to have opposite signs (or one of them to be
/// exactly zero); throws InvalidArgument otherwise and ConvergenceError if
/// the iteration budget is exhausted before tolerances are met.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              const RootOptions& options = {});

/// Brent's method: bisection safety with superlinear convergence.
double brent(const std::function<double(double)>& f, double lo, double hi,
             const RootOptions& options = {});

/// Golden-section search for the minimum of a unimodal f on [lo, hi].
double golden_minimize(const std::function<double(double)>& f, double lo,
                       double hi, double xtol = 1e-9);

/// Largest x in [lo, hi] such that pred(x) holds, assuming pred is
/// monotone (true on [lo, x*], false after).  Returns lo if pred(lo) is
/// false.  Used for "largest noise voltage the gate tolerates" searches.
double monotone_threshold(const std::function<bool(double)>& pred, double lo,
                          double hi, double xtol = 1e-6);

}  // namespace nemsim
