// Counter/timer registry for run instrumentation.
//
// Analyses report their work (phase wall-clock, event counts) into a
// MetricRegistry owned by the caller's diagnostics sink.  Everything here
// is pointer-optional by design: a null registry makes ScopedTimer a
// no-op that never reads the clock, so instrumented code paths cost
// nothing when no sink is attached.  The registry itself is mutex-guarded
// so parallel sweep workers can share one.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace nemsim::util {

/// One named metric: an event count and/or accumulated seconds.
struct MetricEntry {
  std::int64_t count = 0;
  double seconds = 0.0;
};

/// Thread-safe map of named counters and timers.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Adds `delta` events to counter `name` (creating it at zero).
  void add_count(const std::string& name, std::int64_t delta = 1);

  /// Adds `seconds` of wall-clock to timer `name` (also bumps its count,
  /// so mean duration is seconds/count).
  void add_time(const std::string& name, double seconds);

  /// Current value of `name` (zeros when never touched).
  MetricEntry get(const std::string& name) const;

  /// All entries, sorted by name (stable output for logs/JSON).
  std::vector<std::pair<std::string, MetricEntry>> snapshot() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, MetricEntry> entries_;
};

/// RAII phase timer: records elapsed wall-clock into `registry` under
/// `name` on destruction.  A null registry disables it entirely (the
/// clock is never read).
class ScopedTimer {
 public:
  ScopedTimer(MetricRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {
    if (registry_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (registry_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      registry_->add_time(
          name_, std::chrono::duration<double>(elapsed).count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricRegistry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace nemsim::util
