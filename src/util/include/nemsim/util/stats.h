// Summary statistics for Monte-Carlo results and measurement sweeps.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nemsim {

/// Running summary of a scalar sample stream (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; NaN for fewer than two samples (spread is
  /// undefined there, matching the free stddev()'s >= 2 contract — the
  /// old 0.0 made a single trial look like a measured zero spread).
  double variance() const;
  /// sqrt(variance()); NaN for fewer than two samples.
  double stddev() const;
  /// True once variance()/stddev() are defined (two or more samples).
  bool has_spread() const { return n_ >= 2; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of `xs`; throws InvalidArgument when empty.
double mean(std::span<const double> xs);
/// Unbiased sample standard deviation; throws when fewer than 2 samples.
double stddev(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0, 100]; throws when empty.
double percentile(std::vector<double> xs, double p);

}  // namespace nemsim
