// Device characterization harness: Ion / Ioff / subthreshold swing and
// the NEMS hysteresis window, measured by driving the actual simulator
// (not closed-form shortcuts), exactly the way Table 1 and Figure 2 are
// produced.
#pragma once

#include <vector>

#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"

namespace nemsim::tech {

/// Characterization of one device flavour at a given supply.
struct DeviceIV {
  double ion = 0.0;        ///< drain current at Vgs = Vds = Vdd (A)
  double ioff = 0.0;       ///< drain current at Vgs = 0, Vds = Vdd (A)
  double swing_mv_dec = 0.0;  ///< min dVgs/dlog10(Id) over the sweep (mV/dec)
};

/// Id-Vgs transfer sweep result (one direction).
struct TransferCurve {
  std::vector<double> vgs;
  std::vector<double> id;
};

/// Full NEMS characterization including the hysteresis window.
struct NemsIV {
  DeviceIV iv;
  double pull_in_v = 0.0;   ///< measured Vgs of the up->down current jump
  double pull_out_v = 0.0;  ///< measured Vgs of the down->up release
  TransferCurve up_sweep;   ///< Vgs ascending (beam initially up)
  TransferCurve down_sweep; ///< Vgs descending (beam pulled in)
};

/// Measures a MOSFET flavour with a Vd + Vg source pair and a DC sweep.
DeviceIV characterize_mosfet(const devices::MosParams& params,
                             devices::MosPolarity polarity, double width,
                             double length, double vdd,
                             std::size_t sweep_points = 121);

/// Measures the NEMFET: ascending and descending Vgs sweeps with solution
/// continuation to capture both hysteresis branches.
NemsIV characterize_nemfet(const devices::NemsParams& params, double width,
                           double vdd, std::size_t sweep_points = 241);

/// Steepest slope of a transfer curve in mV/decade (minimum over
/// adjacent sample pairs with both currents positive).
double extract_swing_mv_per_decade(const TransferCurve& curve);

}  // namespace nemsim::tech
