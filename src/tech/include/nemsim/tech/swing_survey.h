// Subthreshold-swing survey (paper Figure 2).
//
// Figure 2 compares the minimum reported subthreshold swings of classical
// and non-classical devices [7]-[12].  The literature values are embedded
// here; the bench additionally cross-checks the two devices this library
// actually models (bulk CMOS and the NEMS switch) against their measured
// swings from the characterization harness.
#pragma once

#include <string>
#include <vector>

namespace nemsim::tech {

struct SwingEntry {
  std::string device;       ///< short device name as plotted
  double swing_mv_dec;      ///< minimum reported swing (mV/decade)
  bool modeled_here;        ///< true when this library implements the device
};

/// The Figure 2 bar values, in plot order.
const std::vector<SwingEntry>& swing_survey();

/// The thermionic limit of bulk CMOS at room temperature (~59.6 mV/dec).
double cmos_thermionic_limit_mv_dec();

}  // namespace nemsim::tech
