// Process corners and temperature transforms for the technology cards.
//
// The paper's introduction stresses the strong temperature dependence of
// leakage ([5]); these helpers let any experiment be re-run at a corner
// or temperature.  The NEMS switch's OFF floor is a mechanical/tunneling
// current, essentially temperature-insensitive - which is the interesting
// contrast the ablation bench shows.
#pragma once

#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"

namespace nemsim::tech {

/// Classic three process corners.
enum class Corner {
  kTypical,  ///< TT
  kFast,     ///< FF: lower Vth, higher mobility (fast and leaky)
  kSlow,     ///< SS: higher Vth, lower mobility (slow and tight)
};

const char* corner_name(Corner corner);

/// Applies a corner to a MOSFET card (delta Vth -/+ 40 mV, kp +/- 8 %).
devices::MosParams at_corner(devices::MosParams card, Corner corner);

/// Re-targets a MOSFET card to temperature `temp_k`:
///  - threshold drops ~0.8 mV/K above 300 K,
///  - mobility scales as (T/300)^-1.5,
///  - the model's internal thermal voltage follows `temp`.
/// Subthreshold leakage consequently grows steeply with temperature.
devices::MosParams at_temperature(devices::MosParams card, double temp_k);

/// Re-targets the NEMS card: only the channel (thermal voltage, slight
/// mobility loss) responds; the mechanical pull-in and the tunneling
/// leakage floor are temperature-insensitive.
devices::NemsParams at_temperature(devices::NemsParams card, double temp_k);

}  // namespace nemsim::tech
