// Technology cards: 90 nm CMOS flavours and the NEMS device, calibrated
// to the paper's Table 1:
//   CMOS  Ion = 1110 uA/um, Ioff = 50 nA/um   (ITRS/PTM 90 nm HP, [4][14])
//   NEMS  Ion =  330 uA/um, Ioff = 110 pA/um  (Kam et al. NEMFET, [13])
// at Vdd = 1.2 V.  The regression suite checks the calibration against
// these targets via full device characterization.
#pragma once

#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"

namespace nemsim::tech {

/// Global numbers of the 90 nm node used throughout the experiments.
struct TechNode {
  double vdd = 1.2;      ///< nominal supply (V)
  double lmin = 1e-7;    ///< minimum channel length (m)
  double wmin = 1.2e-7;  ///< minimum device width (m)
};

/// The 90 nm node the paper evaluates at.
TechNode node_90nm();

/// Nominal-Vt high-performance devices (Table 1 calibration).
devices::MosParams nmos_90nm();
devices::MosParams pmos_90nm();

/// High-Vt (low-leakage) flavours used by the dual-Vt / asymmetric SRAM
/// cells of Figure 13 (b)/(c): +120 mV threshold.
devices::MosParams nmos_90nm_hvt();
devices::MosParams pmos_90nm_hvt();

/// Low-Vt (fast, leaky) flavours: -60 mV threshold.
devices::MosParams nmos_90nm_lvt();
devices::MosParams pmos_90nm_lvt();

/// The NEMS (suspended-gate) device card; used for both polarities.
/// Mechanical numbers assume the aggressively scaled nm-gap device of
/// [13] (the paper: "the need to form gaps of a few nanometers").
devices::NemsParams nems_90nm();

}  // namespace nemsim::tech
