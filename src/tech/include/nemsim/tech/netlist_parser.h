// SPICE-style netlist parser: the inverse of spice::export_netlist.
//
// Reads the subset this library writes (plus common hand-written forms):
//   * title and comment lines ("*...")
//   Rname p n <value>            Cname p n <value>       Lname p n <value>
//   Vname p n DC <v> | PULSE(v1 v2 td tr tf pw [per]) | SIN(off amp f [td])
//   Iname p n DC <v> | ...
//   Ename p n cp cn <gain>       Gname p n cp cn <gm>
//   Dname a c [IS=..] [N=..]
//   Mname d g s NMOS|PMOS W=<m> L=<m> [VTH0=..] [KP=..]
//   Xname d g s NEMFET_N|NEMFET_P W=<m> [GAP0=..] [K=..] [M=..]
//   .end
// Values accept SPICE suffixes (f p n u m k meg g t).  Device type is
// dispatched on the first letter of the element name (the classic SPICE
// convention) - circuits built programmatically with free-form device
// names (e.g. "INVout.P") export fine but only re-parse when their names
// follow the letter convention.  MOSFET/NEMFET
// lines start from the 90 nm technology cards and apply any parameter
// overrides given on the line.
#pragma once

#include <iosfwd>
#include <string>

#include "nemsim/spice/circuit.h"

namespace nemsim::tech {

/// Parses a netlist from `text` into a fresh Circuit.
/// Throws NetlistError with a line number on malformed input.
spice::Circuit parse_netlist(const std::string& text);

/// Stream overload.
spice::Circuit parse_netlist(std::istream& is);

/// Parses one SPICE number with magnitude suffix ("2.5k", "10n", "3meg");
/// exposed for tests.
double parse_spice_value(const std::string& token);

}  // namespace nemsim::tech
