// ITRS-style technology scaling trend (paper Figure 1).
//
// Figure 1 plots the supply/threshold scaling trend and the resulting
// subthreshold leakage explosion, sourced from the ITRS roadmap.  We
// embed an ITRS-2005-flavoured high-performance logic table; the bench
// reproduces the plotted series from it.
#pragma once

#include <vector>

namespace nemsim::tech {

/// One roadmap node.
struct ItrsNode {
  int node_nm;            ///< technology node (nm)
  int year;               ///< approximate production year
  double vdd;             ///< nominal supply (V)
  double vth;             ///< nominal saturation threshold (V)
  double ioff_na_per_um;  ///< HP NMOS subthreshold leakage (nA/um, 25 C)
};

/// The roadmap table, 250 nm through 32 nm, ordered by decreasing node.
const std::vector<ItrsNode>& itrs_trend();

/// Leakage growth factor between the first and last roadmap nodes.
double leakage_growth_factor();

}  // namespace nemsim::tech
