#include "nemsim/tech/characterize.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/dcsweep.h"
#include "nemsim/util/error.h"

namespace nemsim::tech {

namespace {

using devices::Mosfet;
using devices::Nemfet;
using devices::SourceWave;
using devices::VoltageSource;

/// Drain current flowing into the drain terminal = -i(Vd) (the source
/// convention: i(Vd) is the current from the supply's + node through it).
TransferCurve run_transfer_sweep(spice::MnaSystem& system,
                                 VoltageSource& vg_source,
                                 std::span<const double> vgs_points) {
  spice::DcSweepOptions sweep_options;
  spice::Waveform sweep = spice::dc_sweep(
      system, [&](double v) { vg_source.set_dc(v); }, vgs_points,
      sweep_options);
  TransferCurve curve;
  curve.vgs.assign(vgs_points.begin(), vgs_points.end());
  std::vector<double> branch = sweep.series("i(Vd)");
  curve.id.resize(branch.size());
  for (std::size_t i = 0; i < branch.size(); ++i) {
    curve.id[i] = std::abs(branch[i]);
  }
  return curve;
}

}  // namespace

double extract_swing_mv_per_decade(const TransferCurve& curve) {
  require(curve.vgs.size() == curve.id.size() && curve.vgs.size() >= 2,
          "extract_swing: need a sweep");
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < curve.vgs.size(); ++i) {
    const double i0 = curve.id[i - 1];
    const double i1 = curve.id[i];
    if (i0 <= 0.0 || i1 <= 0.0 || i1 <= i0) continue;
    const double decades = std::log10(i1 / i0);
    if (decades < 1e-6) continue;
    const double dv = std::abs(curve.vgs[i] - curve.vgs[i - 1]);
    best = std::min(best, dv / decades * 1e3);
  }
  require(std::isfinite(best), "extract_swing: no rising region found");
  return best;
}

DeviceIV characterize_mosfet(const devices::MosParams& params,
                             devices::MosPolarity polarity, double width,
                             double length, double vdd,
                             std::size_t sweep_points) {
  const double sign = polarity == devices::MosPolarity::kNmos ? 1.0 : -1.0;
  spice::Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  ckt.add<VoltageSource>("Vd", d, ckt.gnd(), SourceWave::dc(sign * vdd));
  auto& vg = ckt.add<VoltageSource>("Vg", g, ckt.gnd(), SourceWave::dc(0.0));
  ckt.add<Mosfet>("M1", d, g, ckt.gnd(), polarity, params, width, length);

  spice::MnaSystem system(ckt);
  std::vector<double> points = spice::linspace(0.0, sign * vdd, sweep_points);
  TransferCurve curve = run_transfer_sweep(system, vg, points);

  DeviceIV iv;
  iv.ioff = curve.id.front();
  iv.ion = curve.id.back();
  iv.swing_mv_dec = extract_swing_mv_per_decade(curve);
  return iv;
}

NemsIV characterize_nemfet(const devices::NemsParams& params, double width,
                           double vdd, std::size_t sweep_points) {
  spice::Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  ckt.add<VoltageSource>("Vd", d, ckt.gnd(), SourceWave::dc(vdd));
  auto& vg = ckt.add<VoltageSource>("Vg", g, ckt.gnd(), SourceWave::dc(0.0));
  ckt.add<Nemfet>("X1", d, g, ckt.gnd(), devices::NemsPolarity::kN, params,
                  width);

  spice::MnaSystem system(ckt);

  NemsIV out;
  // Ascending branch: beam starts up, snaps in at pull-in.
  std::vector<double> up = spice::linspace(0.0, vdd, sweep_points);
  out.up_sweep = run_transfer_sweep(system, vg, up);
  // Descending branch: continuation from the pulled-in state.
  std::vector<double> down = spice::linspace(vdd, 0.0, sweep_points);
  out.down_sweep = run_transfer_sweep(system, vg, down);

  out.iv.ioff = out.up_sweep.id.front();
  out.iv.ion = out.up_sweep.id.back();
  out.iv.swing_mv_dec = extract_swing_mv_per_decade(out.up_sweep);

  // Hysteresis edges: largest relative jump between adjacent samples.
  auto jump_voltage = [](const TransferCurve& c) {
    double best_ratio = 0.0;
    double v = 0.0;
    for (std::size_t i = 1; i < c.id.size(); ++i) {
      const double lo = std::min(c.id[i - 1], c.id[i]);
      const double hi = std::max(c.id[i - 1], c.id[i]);
      if (lo <= 0.0) continue;
      if (hi / lo > best_ratio) {
        best_ratio = hi / lo;
        v = 0.5 * (c.vgs[i - 1] + c.vgs[i]);
      }
    }
    return v;
  };
  out.pull_in_v = jump_voltage(out.up_sweep);
  out.pull_out_v = jump_voltage(out.down_sweep);
  return out;
}

}  // namespace nemsim::tech
