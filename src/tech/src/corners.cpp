#include "nemsim/tech/corners.h"

#include <cmath>

#include "nemsim/util/error.h"

namespace nemsim::tech {

const char* corner_name(Corner corner) {
  switch (corner) {
    case Corner::kTypical: return "TT";
    case Corner::kFast: return "FF";
    case Corner::kSlow: return "SS";
  }
  return "?";
}

devices::MosParams at_corner(devices::MosParams card, Corner corner) {
  switch (corner) {
    case Corner::kTypical:
      break;
    case Corner::kFast:
      card.vth0 -= 0.04;
      card.kp *= 1.08;
      break;
    case Corner::kSlow:
      card.vth0 += 0.04;
      card.kp *= 0.92;
      break;
  }
  return card;
}

devices::MosParams at_temperature(devices::MosParams card, double temp_k) {
  require(temp_k > 0.0, "at_temperature: temperature must be positive");
  const double dt = temp_k - 300.0;
  card.vth0 -= 8e-4 * dt;
  card.kp *= std::pow(temp_k / 300.0, -1.5);
  card.temp = temp_k;
  return card;
}

devices::NemsParams at_temperature(devices::NemsParams card, double temp_k) {
  require(temp_k > 0.0, "at_temperature: temperature must be positive");
  const double dt = temp_k - 300.0;
  card.vth_ch -= 8e-4 * dt;
  card.kp *= std::pow(temp_k / 300.0, -1.5);
  card.temp = temp_k;
  // gap0/spring/mass/damping/goff untouched: the beam's restoring force
  // and the vacuum-gap tunneling floor do not follow kT.
  return card;
}

}  // namespace nemsim::tech
