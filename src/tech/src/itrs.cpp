#include "nemsim/tech/itrs.h"

namespace nemsim::tech {

const std::vector<ItrsNode>& itrs_trend() {
  // ITRS-style high-performance logic trend.  Values follow the public
  // roadmap editions' shape: Vdd scales ~0.85x/node while Vth must scale
  // more slowly to control leakage, so Ioff rises by ~5 orders of
  // magnitude from 250 nm to 32 nm.
  static const std::vector<ItrsNode> kTable = {
      {250, 1997, 2.50, 0.500, 0.01},
      {180, 1999, 1.80, 0.450, 0.10},
      {130, 2001, 1.50, 0.400, 1.0},
      {90, 2004, 1.20, 0.350, 50.0},
      {65, 2007, 1.10, 0.300, 200.0},
      {45, 2010, 1.00, 0.260, 280.0},
      {32, 2013, 0.90, 0.220, 300.0},
  };
  return kTable;
}

double leakage_growth_factor() {
  const auto& t = itrs_trend();
  return t.back().ioff_na_per_um / t.front().ioff_na_per_um;
}

}  // namespace nemsim::tech
