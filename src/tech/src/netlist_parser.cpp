#include "nemsim/tech/netlist_parser.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <iomanip>
#include <istream>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "nemsim/devices/controlled.h"
#include "nemsim/devices/diode.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/subcircuit.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/error.h"

namespace nemsim::tech {

namespace {

using devices::SourceWave;
using spice::SubcktParams;

std::string to_upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw NetlistError("netlist line " + std::to_string(line_no) + ": " + what);
}

/// Splits a line into tokens, treating '(' ')' as separators and keeping
/// "KEY=VALUE" as one token.
std::vector<std::string> tokenize(const std::string& line) {
  std::string spaced;
  for (char c : line) {
    if (c == '(' || c == ')' || c == ',') {
      spaced += ' ';
    } else {
      spaced += c;
    }
  }
  std::istringstream is(spaced);
  std::vector<std::string> tokens;
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

/// Key=value parameters from the tail of a token list.
std::unordered_map<std::string, double> parse_params(
    const std::vector<std::string>& tokens, std::size_t from,
    std::size_t line_no) {
  std::unordered_map<std::string, double> out;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      fail(line_no, "expected KEY=VALUE, got '" + tokens[i] + "'");
    }
    out[to_upper(tokens[i].substr(0, eq))] =
        parse_spice_value(tokens[i].substr(eq + 1));
  }
  return out;
}

struct SourceSpec {
  SourceWave wave = SourceWave::dc(0.0);
};

/// Parses the source tail: "DC v" | "PULSE v1 v2 td tr tf pw [per]" |
/// "PWL t1 v1 t2 v2 ..." | "SIN off amp freq [td]" | bare value.
SourceSpec parse_source_tail(const std::vector<std::string>& tokens,
                             std::size_t from, std::size_t line_no) {
  SourceSpec spec;
  if (from >= tokens.size()) fail(line_no, "missing source value");
  const std::string kind = to_upper(tokens[from]);
  auto num = [&](std::size_t i) {
    if (i >= tokens.size()) fail(line_no, "missing source parameter");
    return parse_spice_value(tokens[i]);
  };
  if (kind == "DC") {
    spec.wave = SourceWave::dc(num(from + 1));
  } else if (kind == "PULSE") {
    const std::size_t n_args = tokens.size() - (from + 1);
    if (n_args < 6) fail(line_no, "PULSE needs at least 6 parameters");
    const double period = n_args >= 7 ? num(from + 7) : 0.0;
    spec.wave = SourceWave::pulse(num(from + 1), num(from + 2), num(from + 3),
                                  num(from + 4), num(from + 5), num(from + 6),
                                  period);
  } else if (kind == "PWL") {
    // "PWL t1 v1 t2 v2 ..." (parens/commas already stripped by the
    // tokenizer).  The exporter emits this form; rejecting it here made
    // every PWL-driven deck fail its export -> parse round trip.
    const std::size_t n_args = tokens.size() - (from + 1);
    if (n_args < 2 || n_args % 2 != 0) {
      fail(line_no, "PWL needs one or more time/value pairs");
    }
    std::vector<std::pair<double, double>> points;
    points.reserve(n_args / 2);
    for (std::size_t i = from + 1; i + 1 < tokens.size(); i += 2) {
      points.emplace_back(num(i), num(i + 1));
    }
    spec.wave = SourceWave::pwl(std::move(points));
  } else if (kind == "SIN") {
    const std::size_t n_args = tokens.size() - (from + 1);
    if (n_args < 3) fail(line_no, "SIN needs at least 3 parameters");
    const double delay = n_args >= 4 ? num(from + 4) : 0.0;
    spec.wave = SourceWave::sine(num(from + 1), num(from + 2), num(from + 3),
                                 delay);
  } else {
    spec.wave = SourceWave::dc(parse_spice_value(tokens[from]));
  }
  return spec;
}

// ----------------------------------------------------- hierarchy support

/// One `.subckt` block collected from the deck: interface plus raw body
/// lines (with their original line numbers, for error reporting), kept
/// textual so `{KEY}` placeholders are substituted per instance.
struct DeckSubckt {
  std::string name;
  std::vector<std::string> ports;
  SubcktParams defaults;
  std::vector<std::pair<std::size_t, std::string>> body;
};

/// All `.subckt` blocks of one deck.  Builder callbacks capture this via
/// shared_ptr (it never owns spice::Subcircuit objects, so there is no
/// ownership cycle).
struct DeckDefs {
  std::map<std::string, DeckSubckt> decks;
};

spice::Subcircuit make_deck_subcircuit(
    const std::shared_ptr<const DeckDefs>& defs, const DeckSubckt& deck);

/// Replaces `{KEY}` placeholders with parameter values; anything left in
/// braces has no binding and is an error.
std::string substitute_params(const std::string& line,
                              const SubcktParams& params,
                              std::size_t line_no) {
  std::string out = line;
  for (const auto& [key, value] : params) {
    const std::string tag = "{" + key + "}";
    std::size_t pos = 0;
    while ((pos = out.find(tag, pos)) != std::string::npos) {
      std::ostringstream os;
      os << std::setprecision(17) << value;
      out.replace(pos, tag.size(), os.str());
      pos += os.str().size();
    }
  }
  if (const auto open = out.find('{'); open != std::string::npos) {
    const auto close = out.find('}', open);
    fail(line_no, "unresolved parameter '" +
                      out.substr(open, close == std::string::npos
                                           ? std::string::npos
                                           : close - open + 1) +
                      "'");
  }
  return out;
}

/// Where a card lands: the top level of the circuit, or inside a
/// subcircuit scope (then names and nodes are resolved through it).
struct ParseContext {
  spice::Circuit& ckt;
  spice::SubcircuitScope* scope = nullptr;
  const std::shared_ptr<const DeckDefs>& defs;

  spice::NodeId node(const std::string& name) {
    return scope ? scope->node(name) : ckt.node(name);
  }
  template <typename T, typename... Args>
  T& add(const std::string& name, Args&&... args) {
    if (scope) return scope->add<T>(name, std::forward<Args>(args)...);
    return ckt.add<T>(name, std::forward<Args>(args)...);
  }
};

/// Parses one element card into the context.  Throws NetlistError with
/// the line number on any malformation.
void parse_card(ParseContext& pc, const std::vector<std::string>& t,
                std::size_t line_no) {
  const std::string& name = t[0];
  const char kind = static_cast<char>(std::toupper(t[0][0]));
  auto node = [&](std::size_t i) -> spice::NodeId {
    if (i >= t.size()) fail(line_no, "missing node");
    return pc.node(t[i]);
  };
  try {
    switch (kind) {
      case 'R':
        pc.add<devices::Resistor>(name, node(1), node(2),
                                  parse_spice_value(t.at(3)));
        break;
      case 'C':
        pc.add<devices::Capacitor>(name, node(1), node(2),
                                   parse_spice_value(t.at(3)));
        break;
      case 'L':
        pc.add<devices::Inductor>(name, node(1), node(2),
                                  parse_spice_value(t.at(3)));
        break;
      case 'V': {
        SourceSpec s = parse_source_tail(t, 3, line_no);
        pc.add<devices::VoltageSource>(name, node(1), node(2), s.wave);
        break;
      }
      case 'I': {
        SourceSpec s = parse_source_tail(t, 3, line_no);
        pc.add<devices::CurrentSource>(name, node(1), node(2), s.wave);
        break;
      }
      case 'E':
        pc.add<devices::Vcvs>(name, node(1), node(2), node(3), node(4),
                              parse_spice_value(t.at(5)));
        break;
      case 'G':
        pc.add<devices::Vccs>(name, node(1), node(2), node(3), node(4),
                              parse_spice_value(t.at(5)));
        break;
      case 'D': {
        devices::DiodeParams p;
        auto params = parse_params(t, 3, line_no);
        if (params.count("IS")) p.is = params["IS"];
        if (params.count("N")) p.n = params["N"];
        pc.add<devices::Diode>(name, node(1), node(2), p);
        break;
      }
      case 'M': {
        const std::string model = to_upper(t.at(4));
        const bool nmos = model == "NMOS";
        if (!nmos && model != "PMOS") {
          fail(line_no, "MOSFET model must be NMOS or PMOS");
        }
        devices::MosParams card = nmos ? nmos_90nm() : pmos_90nm();
        auto params = parse_params(t, 5, line_no);
        if (params.count("VTH0")) card.vth0 = params["VTH0"];
        if (params.count("KP")) card.kp = params["KP"];
        const double w = params.count("W") ? params["W"] : 1e-6;
        const double l = params.count("L") ? params["L"] : 1e-7;
        pc.add<devices::Mosfet>(name, node(1), node(2), node(3),
                                nmos ? devices::MosPolarity::kNmos
                                     : devices::MosPolarity::kPmos,
                                card, w, l);
        break;
      }
      case 'X': {
        // An X card is either a NEMFET primitive (which has no standard
        // SPICE element letter) or a subcircuit instance.  Dispatch on
        // the trailing model/subckt token: the last token that is not a
        // KEY=VALUE parameter.
        std::size_t model_idx = 0;
        for (std::size_t i = t.size() - 1; i >= 1; --i) {
          if (t[i].find('=') == std::string::npos) {
            model_idx = i;
            break;
          }
        }
        if (model_idx == 0) {
          fail(line_no, "X element needs a subcircuit or model name");
        }
        const std::string model = to_upper(t[model_idx]);
        if (model == "NEMFET_N" || model == "NEMFET_P") {
          if (model_idx != 4) {
            fail(line_no, "NEMFET X element needs exactly 3 nodes");
          }
          devices::NemsParams card = nems_90nm();
          auto params = parse_params(t, 5, line_no);
          if (params.count("GAP0")) card.gap0 = params["GAP0"];
          if (params.count("K")) card.spring_k = params["K"];
          if (params.count("M")) card.mass = params["M"];
          params.erase("VPI");  // informational in exports
          const double w = params.count("W") ? params["W"] : 1e-6;
          pc.add<devices::Nemfet>(name, node(1), node(2), node(3),
                                  model == "NEMFET_N"
                                      ? devices::NemsPolarity::kN
                                      : devices::NemsPolarity::kP,
                                  card, w);
          break;
        }
        auto it = pc.defs->decks.find(t[model_idx]);
        if (it == pc.defs->decks.end()) {
          fail(line_no, "unknown subcircuit or model '" + t[model_idx] + "'");
        }
        std::vector<spice::NodeId> actuals;
        for (std::size_t i = 1; i < model_idx; ++i) actuals.push_back(node(i));
        SubcktParams overrides;
        for (const auto& [key, value] :
             parse_params(t, model_idx + 1, line_no)) {
          overrides[key] = value;
        }
        const spice::Subcircuit def =
            make_deck_subcircuit(pc.defs, it->second);
        if (pc.scope) {
          pc.scope->instantiate(def, name, actuals, overrides);
        } else {
          pc.ckt.instantiate(def, name, actuals, overrides);
        }
        break;
      }
      default:
        fail(line_no, std::string("unknown element type '") + kind + "'");
    }
  } catch (const NetlistError& e) {
    // Nested errors (deeper body lines) are already annotated; annotate
    // everything surfacing from this card with this card's line.
    const std::string what = e.what();
    if (what.rfind("netlist line", 0) == 0) throw;
    fail(line_no, what);
  } catch (const std::exception& e) {
    fail(line_no, e.what());
  }
}

spice::Subcircuit make_deck_subcircuit(
    const std::shared_ptr<const DeckDefs>& defs, const DeckSubckt& deck) {
  auto builder = [defs, name = deck.name](spice::SubcircuitScope& scope) {
    const DeckSubckt& self = defs->decks.at(name);
    for (const auto& [line_no, raw] : self.body) {
      const std::string line =
          substitute_params(raw, scope.params(), line_no);
      const std::vector<std::string> tokens = tokenize(line);
      if (tokens.empty()) continue;
      ParseContext pc{scope.circuit(), &scope, defs};
      parse_card(pc, tokens, line_no);
    }
  };
  spice::Subcircuit def(deck.name, deck.ports, std::move(builder),
                        deck.defaults);
  std::vector<std::string> body_text;
  body_text.reserve(deck.body.size());
  for (const auto& [line_no, raw] : deck.body) body_text.push_back(raw);
  def.set_body_text(std::move(body_text));
  return def;
}

}  // namespace

double parse_spice_value(const std::string& token) {
  require(!token.empty(), "parse_spice_value: empty token");
  // std::from_chars is locale-independent (std::stod honors the global C
  // locale, where "3.3" can fail to parse the fraction) but does not
  // accept a leading '+', so strip one manually.
  const char* first = token.data();
  const char* last = token.data() + token.size();
  if (*first == '+') ++first;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr == first) {
    throw NetlistError("bad numeric value '" + token + "'");
  }
  std::string suffix = to_upper(std::string(ptr, last));
  if (suffix.empty()) return value;
  // SPICE magnitude suffixes.  Longest match wins (MEG before M).
  static const std::vector<std::pair<std::string, double>> kSuffixes = {
      {"MEG", 1e6}, {"T", 1e12}, {"G", 1e9}, {"K", 1e3}, {"M", 1e-3},
      {"U", 1e-6},  {"N", 1e-9}, {"P", 1e-12}, {"F", 1e-15},
  };
  double scale = 1.0;
  std::size_t consumed = 0;
  for (const auto& [s, sc] : kSuffixes) {
    if (suffix.rfind(s, 0) == 0) {
      scale = sc;
      consumed = s.size();
      break;
    }
  }
  // Whatever follows the magnitude prefix (or the whole suffix when none
  // matched) must be a bare unit tag — "V", "A", "Hz", the "F" in "pF" —
  // which SPICE ignores.  Digits or punctuation ("1k5") are malformed.
  for (std::size_t i = consumed; i < suffix.size(); ++i) {
    if (!std::isalpha(static_cast<unsigned char>(suffix[i]))) {
      throw NetlistError("unknown value suffix '" + suffix + "'");
    }
  }
  return value * scale;
}

spice::Circuit parse_netlist(const std::string& text) {
  std::istringstream is(text);
  return parse_netlist(is);
}

spice::Circuit parse_netlist(std::istream& is) {
  // Pass 1: read the deck, strip comments, collect `.subckt`/`.ends`
  // blocks into the definition table and everything else into the
  // top-level card list.  Definitions may therefore appear anywhere in
  // the deck, including after their first use.
  auto defs = std::make_shared<DeckDefs>();
  std::vector<std::pair<std::size_t, std::vector<std::string>>> top_cards;
  DeckSubckt* open = nullptr;  // currently collecting body, or null
  std::size_t open_line = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (const auto c = line.find(';'); c != std::string::npos) {
      line.erase(c);
    }
    std::vector<std::string> t = tokenize(line);
    if (t.empty()) continue;
    if (t[0][0] == '*') continue;  // comment / title
    const std::string directive = to_upper(t[0]);
    if (directive == ".SUBCKT") {
      if (open) fail(line_no, "nested .subckt is not supported");
      if (t.size() < 2) fail(line_no, ".subckt needs a name");
      DeckSubckt deck;
      deck.name = t[1];
      bool in_params = false;
      for (std::size_t i = 2; i < t.size(); ++i) {
        if (t[i].find('=') != std::string::npos) {
          in_params = true;
          const auto eq = t[i].find('=');
          deck.defaults[to_upper(t[i].substr(0, eq))] =
              parse_spice_value(t[i].substr(eq + 1));
        } else {
          if (in_params) {
            fail(line_no, "port '" + t[i] + "' after parameter defaults");
          }
          deck.ports.push_back(t[i]);
        }
      }
      auto [it, inserted] = defs->decks.emplace(deck.name, std::move(deck));
      if (!inserted) {
        fail(line_no, "duplicate .subckt definition '" + t[1] + "'");
      }
      open = &it->second;
      open_line = line_no;
      continue;
    }
    if (directive == ".ENDS") {
      if (!open) fail(line_no, ".ends without matching .subckt");
      if (t.size() >= 2 && t[1] != open->name) {
        fail(line_no, ".ends name '" + t[1] + "' does not match .subckt '" +
                          open->name + "'");
      }
      open = nullptr;
      continue;
    }
    if (directive == ".END") {
      if (open) {
        fail(line_no, ".end inside .subckt '" + open->name +
                          "' (missing .ends)");
      }
      break;
    }
    if (open) {
      if (t[0][0] == '.') {
        fail(line_no, "directive '" + t[0] + "' inside .subckt body");
      }
      open->body.emplace_back(line_no, line);
      continue;
    }
    if (t[0][0] == '.') continue;  // other directives ignored
    top_cards.emplace_back(line_no, std::move(t));
  }
  if (open) {
    fail(open_line, ".subckt '" + open->name + "' never closed by .ends");
  }

  // Pass 2: elaborate the top-level cards.
  spice::Circuit ckt;
  for (const auto& [card_line, tokens] : top_cards) {
    ParseContext pc{ckt, nullptr, defs};
    parse_card(pc, tokens, card_line);
  }
  return ckt;
}

}  // namespace nemsim::tech
