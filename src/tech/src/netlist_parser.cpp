#include "nemsim/tech/netlist_parser.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <istream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "nemsim/devices/controlled.h"
#include "nemsim/devices/diode.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/error.h"

namespace nemsim::tech {

namespace {

using devices::SourceWave;

std::string to_upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw NetlistError("netlist line " + std::to_string(line_no) + ": " + what);
}

/// Splits a line into tokens, treating '(' ')' as separators and keeping
/// "KEY=VALUE" as one token.
std::vector<std::string> tokenize(const std::string& line) {
  std::string spaced;
  for (char c : line) {
    if (c == '(' || c == ')' || c == ',') {
      spaced += ' ';
    } else {
      spaced += c;
    }
  }
  std::istringstream is(spaced);
  std::vector<std::string> tokens;
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

/// Key=value parameters from the tail of a token list.
std::unordered_map<std::string, double> parse_params(
    const std::vector<std::string>& tokens, std::size_t from,
    std::size_t line_no) {
  std::unordered_map<std::string, double> out;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      fail(line_no, "expected KEY=VALUE, got '" + tokens[i] + "'");
    }
    out[to_upper(tokens[i].substr(0, eq))] =
        parse_spice_value(tokens[i].substr(eq + 1));
  }
  return out;
}

struct SourceSpec {
  SourceWave wave = SourceWave::dc(0.0);
};

/// Parses the source tail: "DC v" | "PULSE v1 v2 td tr tf pw [per]" |
/// "SIN off amp freq [td]" | bare value.
SourceSpec parse_source_tail(const std::vector<std::string>& tokens,
                             std::size_t from, std::size_t line_no) {
  SourceSpec spec;
  if (from >= tokens.size()) fail(line_no, "missing source value");
  const std::string kind = to_upper(tokens[from]);
  auto num = [&](std::size_t i) {
    if (i >= tokens.size()) fail(line_no, "missing source parameter");
    return parse_spice_value(tokens[i]);
  };
  if (kind == "DC") {
    spec.wave = SourceWave::dc(num(from + 1));
  } else if (kind == "PULSE") {
    const std::size_t n_args = tokens.size() - (from + 1);
    if (n_args < 6) fail(line_no, "PULSE needs at least 6 parameters");
    const double period = n_args >= 7 ? num(from + 7) : 0.0;
    spec.wave = SourceWave::pulse(num(from + 1), num(from + 2), num(from + 3),
                                  num(from + 4), num(from + 5), num(from + 6),
                                  period);
  } else if (kind == "SIN") {
    const std::size_t n_args = tokens.size() - (from + 1);
    if (n_args < 3) fail(line_no, "SIN needs at least 3 parameters");
    const double delay = n_args >= 4 ? num(from + 4) : 0.0;
    spec.wave = SourceWave::sine(num(from + 1), num(from + 2), num(from + 3),
                                 delay);
  } else {
    spec.wave = SourceWave::dc(parse_spice_value(tokens[from]));
  }
  return spec;
}

}  // namespace

double parse_spice_value(const std::string& token) {
  require(!token.empty(), "parse_spice_value: empty token");
  // std::from_chars is locale-independent (std::stod honors the global C
  // locale, where "3.3" can fail to parse the fraction) but does not
  // accept a leading '+', so strip one manually.
  const char* first = token.data();
  const char* last = token.data() + token.size();
  if (*first == '+') ++first;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr == first) {
    throw NetlistError("bad numeric value '" + token + "'");
  }
  std::string suffix = to_upper(std::string(ptr, last));
  if (suffix.empty()) return value;
  // SPICE magnitude suffixes.  Longest match wins (MEG before M).
  static const std::vector<std::pair<std::string, double>> kSuffixes = {
      {"MEG", 1e6}, {"T", 1e12}, {"G", 1e9}, {"K", 1e3}, {"M", 1e-3},
      {"U", 1e-6},  {"N", 1e-9}, {"P", 1e-12}, {"F", 1e-15},
  };
  double scale = 1.0;
  std::size_t consumed = 0;
  for (const auto& [s, sc] : kSuffixes) {
    if (suffix.rfind(s, 0) == 0) {
      scale = sc;
      consumed = s.size();
      break;
    }
  }
  // Whatever follows the magnitude prefix (or the whole suffix when none
  // matched) must be a bare unit tag — "V", "A", "Hz", the "F" in "pF" —
  // which SPICE ignores.  Digits or punctuation ("1k5") are malformed.
  for (std::size_t i = consumed; i < suffix.size(); ++i) {
    if (!std::isalpha(static_cast<unsigned char>(suffix[i]))) {
      throw NetlistError("unknown value suffix '" + suffix + "'");
    }
  }
  return value * scale;
}

spice::Circuit parse_netlist(const std::string& text) {
  std::istringstream is(text);
  return parse_netlist(is);
}

spice::Circuit parse_netlist(std::istream& is) {
  spice::Circuit ckt;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and whitespace.
    if (const auto c = line.find(';'); c != std::string::npos) {
      line.erase(c);
    }
    std::vector<std::string> t = tokenize(line);
    if (t.empty()) continue;
    if (t[0][0] == '*') continue;  // comment / title
    if (to_upper(t[0]) == ".END") break;
    if (t[0][0] == '.') continue;  // other directives ignored

    const std::string& name = t[0];
    const char kind = static_cast<char>(std::toupper(t[0][0]));
    auto node = [&](std::size_t i) -> spice::NodeId {
      if (i >= t.size()) fail(line_no, "missing node");
      return ckt.node(t[i]);
    };
    try {
      switch (kind) {
        case 'R':
          ckt.add<devices::Resistor>(name, node(1), node(2),
                                     parse_spice_value(t.at(3)));
          break;
        case 'C':
          ckt.add<devices::Capacitor>(name, node(1), node(2),
                                      parse_spice_value(t.at(3)));
          break;
        case 'L':
          ckt.add<devices::Inductor>(name, node(1), node(2),
                                     parse_spice_value(t.at(3)));
          break;
        case 'V': {
          SourceSpec s = parse_source_tail(t, 3, line_no);
          ckt.add<devices::VoltageSource>(name, node(1), node(2), s.wave);
          break;
        }
        case 'I': {
          SourceSpec s = parse_source_tail(t, 3, line_no);
          ckt.add<devices::CurrentSource>(name, node(1), node(2), s.wave);
          break;
        }
        case 'E':
          ckt.add<devices::Vcvs>(name, node(1), node(2), node(3), node(4),
                                 parse_spice_value(t.at(5)));
          break;
        case 'G':
          ckt.add<devices::Vccs>(name, node(1), node(2), node(3), node(4),
                                 parse_spice_value(t.at(5)));
          break;
        case 'D': {
          devices::DiodeParams p;
          auto params = parse_params(t, 3, line_no);
          if (params.count("IS")) p.is = params["IS"];
          if (params.count("N")) p.n = params["N"];
          ckt.add<devices::Diode>(name, node(1), node(2), p);
          break;
        }
        case 'M': {
          const std::string model = to_upper(t.at(4));
          const bool nmos = model == "NMOS";
          if (!nmos && model != "PMOS") {
            fail(line_no, "MOSFET model must be NMOS or PMOS");
          }
          devices::MosParams card = nmos ? nmos_90nm() : pmos_90nm();
          auto params = parse_params(t, 5, line_no);
          if (params.count("VTH0")) card.vth0 = params["VTH0"];
          if (params.count("KP")) card.kp = params["KP"];
          const double w = params.count("W") ? params["W"] : 1e-6;
          const double l = params.count("L") ? params["L"] : 1e-7;
          ckt.add<devices::Mosfet>(name, node(1), node(2), node(3),
                                   nmos ? devices::MosPolarity::kNmos
                                        : devices::MosPolarity::kPmos,
                                   card, w, l);
          break;
        }
        case 'X': {
          const std::string model = to_upper(t.at(4));
          const bool n_type = model == "NEMFET_N";
          if (!n_type && model != "NEMFET_P") {
            fail(line_no, "X element model must be NEMFET_N or NEMFET_P");
          }
          devices::NemsParams card = nems_90nm();
          auto params = parse_params(t, 5, line_no);
          if (params.count("GAP0")) card.gap0 = params["GAP0"];
          if (params.count("K")) card.spring_k = params["K"];
          if (params.count("M")) card.mass = params["M"];
          params.erase("VPI");  // informational in exports
          const double w = params.count("W") ? params["W"] : 1e-6;
          ckt.add<devices::Nemfet>(name, node(1), node(2), node(3),
                                   n_type ? devices::NemsPolarity::kN
                                          : devices::NemsPolarity::kP,
                                   card, w);
          break;
        }
        default:
          fail(line_no, std::string("unknown element type '") + kind + "'");
      }
    } catch (const NetlistError&) {
      throw;
    } catch (const std::exception& e) {
      fail(line_no, e.what());
    }
  }
  return ckt;
}

}  // namespace nemsim::tech
