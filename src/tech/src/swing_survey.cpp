#include "nemsim/tech/swing_survey.h"

#include <cmath>

#include "nemsim/util/units.h"

namespace nemsim::tech {

const std::vector<SwingEntry>& swing_survey() {
  // Values as cited by the paper (refs [7]-[12]); all CMOS-based devices
  // sit above the 60 mV/dec thermionic limit, the NEMS switch far below.
  static const std::vector<SwingEntry> kTable = {
      {"Bulk CMOS", 85.0, true},
      {"FDSOI", 70.0, false},
      {"FinFET", 65.0, false},
      {"T-CNFET", 40.0, false},
      {"NW-FET", 35.0, false},
      {"IMOS", 8.9, false},
      {"NEMS (SG-MOSFET)", 2.0, true},
  };
  return kTable;
}

double cmos_thermionic_limit_mv_dec() {
  return phys::thermal_voltage(phys::kRoomTemperature) * std::log(10.0) * 1e3;
}

}  // namespace nemsim::tech
