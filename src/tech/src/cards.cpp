#include "nemsim/tech/cards.h"

namespace nemsim::tech {

TechNode node_90nm() { return TechNode{}; }

devices::MosParams nmos_90nm() {
  devices::MosParams p;
  p.vth0 = 0.2185;
  p.n = 1.4;
  p.kp = 2.744e-4;
  p.lambda = 0.06;
  p.eta_dibl = 0.04;
  p.cox_area = 0.022;
  p.cov = 3e-10;
  p.cj = 8e-10;
  p.goff = 0.0;
  return p;
}

devices::MosParams pmos_90nm() {
  devices::MosParams p = nmos_90nm();
  // Hole mobility: ~0.45x; Ioff tracks a slightly higher |Vth|.
  p.kp = 1.24e-4;
  p.vth0 = 0.235;
  return p;
}

devices::MosParams nmos_90nm_hvt() {
  devices::MosParams p = nmos_90nm();
  p.vth0 += 0.12;
  return p;
}

devices::MosParams pmos_90nm_hvt() {
  devices::MosParams p = pmos_90nm();
  p.vth0 += 0.12;
  return p;
}

devices::MosParams nmos_90nm_lvt() {
  devices::MosParams p = nmos_90nm();
  p.vth0 -= 0.06;
  return p;
}

devices::MosParams pmos_90nm_lvt() {
  devices::MosParams p = pmos_90nm();
  p.vth0 -= 0.06;
  return p;
}

devices::NemsParams nems_90nm() {
  devices::NemsParams p;
  // Mechanics: 2 nm gap, pull-in ~0.45 V (comparable to the CMOS Vth as
  // the paper requires), pull-out ~0.13 V (hysteretic), pull-in transit
  // of a few tens of ps under full Vdd overdrive.
  p.gap0 = 2e-9;
  p.spring_k = 8.0;
  p.mass = 4e-20;
  p.damping = 6.8e-10;
  p.area = 1.5e-14;
  p.contact_k = 2e4;
  p.contact_softness = 5e-11;
  p.gap_softness = 5e-11;
  p.w_ref = 1e-6;
  p.tox = 1e-9;
  p.eps_ox = 3.9;
  // Channel: Ion = 330 uA/um at Vdd with the beam in contact; the OFF
  // floor reproduces the 110 pA/um vacuum-tunneling/Brownian leakage.
  p.vth_ch = 0.15;
  p.n_ch = 1.2;
  p.kp = 8.0e-5;
  p.lambda = 0.05;
  p.eta_dibl = 0.0;
  p.dvth_per_alpha = 0.8;
  p.l_ch = 1e-7;
  p.goff = 9.17e-5;
  p.cov = 2e-10;
  p.cj = 8e-10;
  return p;
}

}  // namespace nemsim::tech
