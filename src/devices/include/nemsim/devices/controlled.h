// Linear controlled sources: VCVS (E) and VCCS (G).
#pragma once

#include "nemsim/spice/device.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/kernels.h"

namespace nemsim::devices {

/// Voltage-controlled voltage source: v(p,n) = gain * v(cp,cn).
class Vcvs : public spice::Device {
 public:
  Vcvs(std::string name, spice::NodeId p, spice::NodeId n, spice::NodeId cp,
       spice::NodeId cn, double gain);

  spice::UnknownId branch() const { return branch_; }
  void set_gain(double gain) { gain_ = gain; }

  void setup(spice::SetupContext& ctx) override;
  void stamp(spice::StampContext& ctx) const override;
  void kernel_descriptor(const spice::KernelLayout& layout,
                         spice::KernelDescriptor& out) const override;
  /// Kernel twin of stamp(); roles: 0 = p, 1 = n, 2 = cp, 3 = cn,
  /// 4 = branch current.
  void kernel_eval(const spice::KernelSink& k) const;
  bool is_linear() const override { return true; }
  void stamp_ac(spice::AcStampContext& ctx) const override;
  bool has_ac_model() const override { return true; }
  spice::DeviceTopology topology() const override;
  void interval_transfer(const analyze::IntervalSet& nodes,
                         std::vector<analyze::NodeClaim>& out) const override;
  std::string netlist_line(
      const std::function<std::string(spice::NodeId)>& node_namer)
      const override;

 private:
  spice::NodeId p_, n_, cp_, cn_;
  double gain_;
  spice::UnknownId branch_;
};

/// Voltage-controlled current source: i(p->n) = gm * v(cp,cn).
class Vccs : public spice::Device {
 public:
  Vccs(std::string name, spice::NodeId p, spice::NodeId n, spice::NodeId cp,
       spice::NodeId cn, double gm);

  void set_gm(double gm) { gm_ = gm; }

  void stamp(spice::StampContext& ctx) const override;
  void kernel_descriptor(const spice::KernelLayout& layout,
                         spice::KernelDescriptor& out) const override;
  /// Kernel twin of stamp(); roles: 0 = p, 1 = n, 2 = cp, 3 = cn.
  void kernel_eval(const spice::KernelSink& k) const;
  bool is_linear() const override { return true; }
  void stamp_ac(spice::AcStampContext& ctx) const override;
  bool has_ac_model() const override { return true; }
  spice::DeviceTopology topology() const override;
  /// A current-defined branch constrains no node voltage: claim nothing.
  void interval_transfer(const analyze::IntervalSet& nodes,
                         std::vector<analyze::NodeClaim>& out) const override {
    (void)nodes;
    (void)out;
  }
  std::string netlist_line(
      const std::function<std::string(spice::NodeId)>& node_namer)
      const override;

 private:
  spice::NodeId p_, n_, cp_, cn_;
  double gm_;
};

}  // namespace nemsim::devices
