// Junction diode with exponential I-V and overflow-safe linearization.
#pragma once

#include "nemsim/spice/device.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/kernels.h"

namespace nemsim::devices {

struct DiodeParams {
  double is = 1e-14;        ///< saturation current (A)
  double n = 1.0;           ///< ideality factor
  double temp = 300.0;      ///< K
  double gmin_shunt = 1e-15;///< parallel conductance (aids convergence)
};

/// Ideal-law diode from anode to cathode:
///   i = Is (exp(v / (n vt)) - 1) + gmin_shunt * v
/// Above ~40 thermal voltages the exponential is continued linearly so
/// intermediate Newton iterates cannot overflow.
class Diode : public spice::Device {
 public:
  Diode(std::string name, spice::NodeId anode, spice::NodeId cathode,
        DiodeParams params = {});

  const DiodeParams& params() const { return params_; }

  /// Model evaluation (exposed for tests): current and conductance at v.
  void evaluate(double v, double& i, double& g) const;

  void stamp(spice::StampContext& ctx) const override;
  void kernel_descriptor(const spice::KernelLayout& layout,
                         spice::KernelDescriptor& out) const override;
  /// Kernel twin of stamp(); roles: 0 = anode, 1 = cathode.
  void kernel_eval(const spice::KernelSink& k) const;
  void stamp_ac(spice::AcStampContext& ctx) const override;
  bool has_ac_model() const override { return true; }
  /// The stamp is a pure function of the junction voltage: an empty
  /// signature opts into quiescent bypass unconditionally.
  bool bypass_signature(std::vector<double>& out) const override {
    (void)out;
    return true;
  }
  spice::DeviceTopology topology() const override;
  void interval_transfer(const analyze::IntervalSet& nodes,
                         std::vector<analyze::NodeClaim>& out) const override;
  void interval_check(const analyze::IntervalSet& nodes,
                      std::vector<analyze::RegionVerdict>& out) const override;
  void self_check(const lint::DeviceCheckContext& ctx,
                  std::vector<lint::LintFinding>& out) const override;
  std::string netlist_line(
      const std::function<std::string(spice::NodeId)>& node_namer)
      const override;

 private:
  spice::NodeId anode_, cathode_;
  DiodeParams params_;
};

}  // namespace nemsim::devices
