// Shared companion-model helper for capacitive branches.
//
// Implements the trapezoidal integration companion with a backward-Euler
// restart after discontinuities (the standard SPICE recipe).  Used by the
// standalone Capacitor device and by the internal capacitances of the
// MOSFET and NEMFET models.
#pragma once

#include "nemsim/spice/engine.h"
#include "nemsim/spice/kernels.h"

namespace nemsim::devices {

/// Companion state/stamps for one two-terminal capacitive branch.
///
/// In transient, stamps the Norton companion
///   i(v) = geq * (v - v0) - i0_term
/// where for trapezoidal geq = 2C/dt, i0_term = i0, and for backward Euler
/// geq = C/dt, i0_term = 0.  In DC the branch is an open circuit.
class CapCompanion {
 public:
  CapCompanion() = default;
  explicit CapCompanion(double capacitance) : c_(capacitance) {}

  double capacitance() const { return c_; }
  void set_capacitance(double c) { c_ = c; }

  /// Current through the branch at iterate voltage `v` for the context's
  /// step, and the conductance to stamp.
  double current(const spice::StampContext& ctx, double v) const {
    if (ctx.mode() == spice::AnalysisMode::kDcOperatingPoint) return 0.0;
    return geq(ctx) * (v - v0_) - (use_be_ ? 0.0 : i0_);
  }

  double geq(const spice::StampContext& ctx) const {
    if (ctx.mode() == spice::AnalysisMode::kDcOperatingPoint) return 0.0;
    const double dt = ctx.dt();
    return use_be_ ? c_ / dt : 2.0 * c_ / dt;
  }

  /// Stamps KCL rows/Jacobian for the branch between nodes p and n.
  void stamp(spice::StampContext& ctx, spice::NodeId p, spice::NodeId n) const {
    if (ctx.mode() == spice::AnalysisMode::kDcOperatingPoint) return;
    const double v = ctx.v(p) - ctx.v(n);
    const double i = current(ctx, v);
    const double g = geq(ctx);
    ctx.add_f(p, i);
    ctx.add_f(n, -i);
    ctx.add_J(p, p, g);
    ctx.add_J(p, n, -g);
    ctx.add_J(n, p, -g);
    ctx.add_J(n, n, g);
  }

  /// Kernel-path twin of stamp(): same arithmetic, role-indexed sink
  /// (role -1 = grounded terminal).  Declare the 2x2 (p, n) Jacobian
  /// block in the owner's descriptor for every non-ground role pair.
  void kernel_stamp(const spice::KernelSink& k, int p_role,
                    int n_role) const {
    if (k.dc()) return;
    const double dt = k.dt();
    const double g = use_be_ ? c_ / dt : 2.0 * c_ / dt;
    const double v = k.xr(p_role) - k.xr(n_role);
    const double i = g * (v - v0_) - (use_be_ ? 0.0 : i0_);
    k.f(p_role, i);
    k.f(n_role, -i);
    k.J(p_role, p_role, g);
    k.J(p_role, n_role, -g);
    k.J(n_role, p_role, -g);
    k.J(n_role, n_role, g);
  }

  /// Commits state after a converged solve at branch voltage `v`.
  void accept(const spice::AcceptContext& ctx, double v) {
    if (ctx.mode() == spice::AnalysisMode::kDcOperatingPoint) {
      v0_ = v;
      i0_ = 0.0;
      use_be_ = true;  // self-start the first transient step
      return;
    }
    i0_ = current_at_accept(ctx.dt(), v);
    v0_ = v;
    use_be_ = false;
  }

  void reset() {
    v0_ = 0.0;
    i0_ = 0.0;
    use_be_ = true;
  }

  void discontinuity() { use_be_ = true; }

  /// Appends everything the stamp reads besides the iterate and context
  /// scalars — the quiescent-bypass signature contribution of this branch
  /// (Device::bypass_signature).
  void append_signature(std::vector<double>& out) const {
    out.push_back(c_);
    out.push_back(v0_);
    out.push_back(i0_);
    out.push_back(use_be_ ? 1.0 : 0.0);
  }

 private:
  double current_at_accept(double dt, double v) const {
    return use_be_ ? c_ / dt * (v - v0_)
                   : 2.0 * c_ / dt * (v - v0_) - i0_;
  }

  double c_ = 0.0;
  double v0_ = 0.0;
  double i0_ = 0.0;
  bool use_be_ = true;
};

}  // namespace nemsim::devices
