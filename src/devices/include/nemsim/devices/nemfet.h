// NEMFET: suspended-gate MOSFET (nano-electro-mechanical FET).
//
// The movable gate beam is a spring-mass-damper pulled toward the channel
// by the electrostatic force of the gate bias.  Its displacement and
// velocity are *MNA unknowns*: the discretized mechanical equations are
// extra rows solved self-consistently with the circuit by the same Newton
// iteration (DESIGN.md decision #1).  The channel is the shared EKV model
// with air-gap-modulated threshold and slope factor: while the beam is up,
// the series air-gap capacitor divides the gate coupling so the channel is
// deeply off (only a tunneling floor conducts); when the beam pulls in,
// the device behaves as a normal (lower-Ion) MOSFET.  The snap between the
// two branches is what gives the experimentally observed ~2 mV/decade
// effective subthreshold swing and the pull-in/pull-out hysteresis.
#pragma once

#include "nemsim/devices/companion.h"
#include "nemsim/spice/device.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/parambank.h"

namespace nemsim::devices {

enum class NemsPolarity { kN, kP };

/// Technology card for a NEMFET.  Mechanical quantities are specified at
/// a reference width `w_ref` and scale linearly with instance width
/// (wider beam: proportionally stiffer, heavier, larger electrode), which
/// keeps the pull-in voltage size-independent.
struct NemsParams {
  // --- Beam mechanics (at w_ref) ---
  double gap0 = 2e-9;          ///< air gap at rest (m)
  double spring_k = 8.0;       ///< beam stiffness (N/m)
  double mass = 2e-20;         ///< effective beam mass (kg)
  double damping = 5e-10;      ///< damping coefficient (N*s/m)
  double area = 1.5e-14;       ///< electrostatic actuation area (m^2)
  double contact_k = 2e4;      ///< contact (stop) penalty stiffness (N/m)
  double contact_softness = 5e-11;  ///< softplus width of the stop (m)
  double gap_softness = 5e-11;      ///< softplus width of gap closure (m)
  double w_ref = 1e-6;         ///< width the mechanical numbers refer to

  // --- Gate stack ---
  double tox = 1e-9;           ///< oxide under the beam (m)
  double eps_ox = 3.9;         ///< oxide relative permittivity

  // --- Channel (valid with the beam in contact) ---
  double vth_ch = 0.15;        ///< threshold with gap closed (V)
  double n_ch = 1.2;           ///< slope factor with gap closed
  double kp = 72e-6;           ///< transconductance parameter (A/V^2)
  double lambda = 0.05;        ///< channel-length modulation (1/V)
  double eta_dibl = 0.0;       ///< DIBL (the MEMS gate screens the drain)
  double dvth_per_alpha = 0.8; ///< Vth increase per unit of coupling loss
  double l_ch = 1e-7;          ///< channel length (m)
  double goff = 9.2e-5;        ///< tunneling/Brownian leakage floor (S/m)
  double cov = 2e-10;          ///< overlap capacitance per width (F/m)
  double cj = 8e-10;           ///< junction capacitance per width (F/m)
  double temp = 300.0;         ///< K

  /// Effective electrostatic gap at rest: air gap plus oxide divided by
  /// its permittivity.
  double electrostatic_gap() const { return gap0 + tox / eps_ox; }

  /// Analytic parallel-plate pull-in voltage sqrt(8 k d^3 / 27 eps0 A)
  /// (width-independent by the scaling rule above).
  double analytic_pull_in_voltage() const;

  /// Analytic release (pull-out) voltage: bias at which the electrostatic
  /// force at contact equals the spring restoring force.
  double analytic_pull_out_voltage() const;
};

/// The NEMFET device.  Terminals: drain, gate (beam), source.
class Nemfet : public spice::Device {
 public:
  Nemfet(std::string name, spice::NodeId drain, spice::NodeId gate,
         spice::NodeId source, NemsPolarity polarity, NemsParams params,
         double width);

  NemsPolarity polarity() const { return polarity_; }
  const NemsParams& params() const { return params_; }
  double width() const { return w_.get(); }
  void set_width(double width);

  /// Monte-Carlo threshold shift on the channel threshold magnitude.
  void set_vth_shift(double dv) { vth_shift_.set(dv); }
  double vth_shift() const { return vth_shift_.get(); }

  /// Bank slots of the tunable scalars ("nems.vth_shift" / "nems.w");
  /// invalid until the device is added to a Circuit.
  spice::ParamSlot vth_shift_slot() const { return vth_shift_.slot(); }
  spice::ParamSlot width_slot() const { return w_.slot(); }

  /// Initial beam displacement used as the Newton cold-start guess
  /// (0 = fully up; params.gap0 = in contact).  Must be called before the
  /// MnaSystem is constructed.  Lets bistable circuits (SRAM) start on a
  /// chosen branch.
  void set_initial_position(double x0) {
    initial_position_ = x0;
    x_state_ = x0;  // also seed the DC branch memory
  }
  void set_initially_closed() { set_initial_position(params_.gap0); }

  /// Display names of the mechanical unknowns are "<name>.x"/"<name>.v".
  spice::UnknownId unknown_x() const { return ux_; }
  spice::UnknownId unknown_v() const { return uv_; }

  /// Accepted beam displacement after the last converged solve.
  double position() const { return x_state_; }

  /// Static electromechanical helpers (exposed for tests/calibration).
  double air_gap(double x) const;
  double electrostatic_force(double v_beam, double x) const;
  double contact_force(double x) const;
  /// Channel current in canonical polarity at beam position x.
  double drain_current(double vgs, double vds, double x) const;
  /// Channel current and its partial derivatives (canonical polarity,
  /// vds >= 0).  Exposed for model verification.
  void channel_gradients(double vgs, double vds, double x, double& id,
                         double& gm, double& gds, double& did_dx) const;
  /// Gate-stack capacitance at beam position x (excludes overlaps).
  double gate_capacitance(double x) const;

  void bind_params(spice::ParamBank& bank) override;
  /// Width drives the companion capacitances; resize them from the bank.
  void on_params_changed() override;
  void setup(spice::SetupContext& ctx) override;
  void stamp(spice::StampContext& ctx) const override;
  void kernel_descriptor(const spice::KernelLayout& layout,
                         spice::KernelDescriptor& out) const override;
  /// Kernel twin of stamp(); roles: 0 = drain, 1 = gate, 2 = source,
  /// 3 = beam displacement, 4 = beam velocity.
  void kernel_eval(const spice::KernelSink& k) const;
  bool bypass_signature(std::vector<double>& out) const override;
  void begin_step(double time, double dt) override;
  void accept_step(const spice::AcceptContext& ctx) override;
  void reset_state() override;
  void stamp_ac(spice::AcStampContext& ctx) const override;
  bool has_ac_model() const override { return true; }
  spice::DeviceTopology topology() const override;
  void interval_transfer(const analyze::IntervalSet& nodes,
                         std::vector<analyze::NodeClaim>& out) const override;
  void interval_check(const analyze::IntervalSet& nodes,
                      std::vector<analyze::RegionVerdict>& out) const override;
  void self_check(const lint::DeviceCheckContext& ctx,
                  std::vector<lint::LintFinding>& out) const override;
  std::string netlist_line(
      const std::function<std::string(spice::NodeId)>& node_namer)
      const override;
  void notify_discontinuity() override;

 private:
  /// Width scale factor for mechanical quantities.
  double sw() const { return w_.get() / params_.w_ref; }

  struct ChannelEval {
    double id, gm, gds, did_dx;
  };
  ChannelEval eval_channel(double vgs, double vds, double x) const;

  /// Static equilibrium of the beam at actuation magnitude |v|.
  ///
  /// The DC force balance k x + Fc(x) = Fe(v, x) is bistable; Newton on
  /// the raw residual cannot traverse the pull-in fold (the up-branch
  /// root vanishes in a saddle-node).  This helper finds all stable
  /// roots by scan + bisection and returns the one closest to the
  /// device's remembered position (branch memory = hysteresis), plus the
  /// implicit-function derivative dx/d|v| on that branch.
  struct StaticEq {
    double x;
    double dx_dv;
  };
  StaticEq static_equilibrium(double v_abs) const;

  spice::NodeId d_, g_, s_;
  NemsPolarity polarity_;
  NemsParams params_;
  spice::BankedParam w_;
  spice::BankedParam vth_shift_{0.0};
  double initial_position_ = 0.0;

  spice::UnknownId ux_, uv_;
  // Accepted mechanical state (start values for the next step).
  double x_state_ = 0.0;
  double v_state_ = 0.0;

  CapCompanion cg_gap_;  // beam-to-channel stack cap, position-dependent
  CapCompanion cgd_ov_, cgs_ov_, cdb_, csb_;
};

}  // namespace nemsim::devices
