// Shared EKV-style channel current evaluation.
//
// The long-channel EKV interpolation gives one smooth equation covering
// weak inversion (exponential, slope factor n) through strong inversion
// (square law) with a continuous Jacobian — which is exactly what the
// Newton loop wants (no piecewise-region chatter).  Both the MOSFET and
// the NEMFET channel use it; the NEMFET additionally modulates Vth and n
// with the beam position.
#pragma once

#include <cmath>

namespace nemsim::devices::ekv {

/// ln(1 + exp(x)) with overflow/underflow guards.
inline double softplus(double x) {
  if (x > 40.0) return x;
  if (x < -40.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

/// Logistic function with guards.
inline double sigmoid(double x) {
  if (x > 40.0) return 1.0;
  if (x < -40.0) return std::exp(x);
  return 1.0 / (1.0 + std::exp(-x));
}

/// Inputs to one channel evaluation (canonical polarity: all voltages
/// source-referenced and non-negative vds).
struct ChannelBias {
  double vgs = 0.0;
  double vds = 0.0;  ///< must be >= 0 (caller swaps terminals otherwise)
};

/// Device-point parameters for one evaluation.
struct ChannelParams {
  double vth = 0.25;    ///< effective threshold (after DIBL/shift/gap)
  double n = 1.35;      ///< slope factor
  double kp = 350e-6;   ///< transconductance parameter (A/V^2)
  double w_over_l = 10; ///< geometry ratio
  double lambda = 0.06; ///< channel-length modulation (1/V)
  double eta = 0.04;    ///< DIBL coefficient: vth_eff = vth - eta*vds
  double vt = 0.025852; ///< thermal voltage
};

/// Outputs: drain current and its partial derivatives.
struct ChannelResult {
  double id = 0.0;   ///< drain->source current (A)
  double gm = 0.0;   ///< d id / d vgs
  double gds = 0.0;  ///< d id / d vds
  /// Sensitivities used by the NEMFET: d id / d vth and d id / d n at
  /// fixed bias (zero cost to compute alongside).
  double did_dvth = 0.0;
  double did_dn = 0.0;
};

/// Evaluates the EKV interpolation
///   id = Ispec (L(xf)^2 - L(xr)^2) (1 + lambda vds),
///   L(x) = ln(1 + e^{x/2}),  Ispec = 2 n kp (W/L) vt^2,
///   xf = vp/vt, xr = (vp - vds)/vt,  vp = (vgs - vth + eta vds)/n.
inline ChannelResult evaluate(const ChannelBias& bias,
                              const ChannelParams& p) {
  const double vt = p.vt;
  const double vp = (bias.vgs - p.vth + p.eta * bias.vds) / p.n;
  const double xf = vp / vt;
  const double xr = (vp - bias.vds) / vt;

  const double lf = softplus(0.5 * xf);
  const double lr = softplus(0.5 * xr);
  const double sf = sigmoid(0.5 * xf);
  const double sr = sigmoid(0.5 * xr);

  const double ispec = 2.0 * p.n * p.kp * p.w_over_l * vt * vt;
  const double i0 = ispec * (lf * lf - lr * lr);
  const double clm = 1.0 + p.lambda * bias.vds;

  // d(L^2)/dx = L(x/..) * sigmoid(...): with L = softplus(x/2),
  // d(L^2)/dx = L * sigmoid(x/2).
  const double dLf2_dxf = lf * sf;
  const double dLr2_dxr = lr * sr;

  const double dvp_dvgs = 1.0 / p.n;
  const double dvp_dvds = p.eta / p.n;
  const double dxf_dvgs = dvp_dvgs / vt;
  const double dxf_dvds = dvp_dvds / vt;
  const double dxr_dvgs = dvp_dvgs / vt;
  const double dxr_dvds = (dvp_dvds - 1.0) / vt;

  ChannelResult r;
  r.id = i0 * clm;
  r.gm = ispec * clm * (dLf2_dxf * dxf_dvgs - dLr2_dxr * dxr_dvgs);
  r.gds = ispec * clm * (dLf2_dxf * dxf_dvds - dLr2_dxr * dxr_dvds) +
          i0 * p.lambda;

  // d id / d vth at fixed bias: dvp/dvth = -1/n → dx/dvth = -1/(n vt).
  const double dx_dvth = -1.0 / (p.n * vt);
  r.did_dvth = ispec * clm * (dLf2_dxf - dLr2_dxr) * dx_dvth;

  // d id / d n: through both Ispec (∝ n) and vp (∝ 1/n).
  const double dvp_dn = -vp / p.n;
  const double dx_dn = dvp_dn / vt;
  r.did_dn = (i0 / p.n) * clm +
             ispec * clm * (dLf2_dxf - dLr2_dxr) * dx_dn;
  return r;
}

}  // namespace nemsim::devices::ekv
