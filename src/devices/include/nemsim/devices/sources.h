// Independent sources and their waveform descriptions.
#pragma once

#include <utility>
#include <vector>

#include "nemsim/spice/device.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/kernels.h"
#include "nemsim/spice/parambank.h"

namespace nemsim::devices {

/// Time-dependent source value: DC, PULSE, PWL or SIN (SPICE semantics).
class SourceWave {
 public:
  /// Constant value.
  static SourceWave dc(double value);

  /// SPICE PULSE(v1 v2 delay rise fall width period).  `period` of 0
  /// means a single pulse.
  static SourceWave pulse(double v1, double v2, double delay, double rise,
                          double fall, double width, double period = 0.0);

  /// Piecewise-linear through (time, value) points; clamped outside.
  static SourceWave pwl(std::vector<std::pair<double, double>> points);

  /// offset + amplitude * sin(2*pi*freq*(t - delay)) for t >= delay.
  static SourceWave sine(double offset, double amplitude, double freq,
                         double delay = 0.0);

  /// Value at time `t`.
  double value(double t) const;

  /// True for waveforms built with dc(); those mirror into the parameter
  /// bank so sweeps can retune the level without replacing the waveform.
  bool is_dc() const { return kind_ == Kind::kDc; }
  /// The constant level of a DC waveform (meaningless otherwise).
  double dc_value() const { return v1_; }

  /// Time points where the derivative is discontinuous, within (0, tstop].
  void breakpoints(double tstop, std::vector<double>& out) const;

  /// SPICE-syntax description: "DC 1.2", "PULSE(0 1.2 1n ...)", ...
  std::string to_spice() const;

  /// Largest |value(t)| over all t >= 0 (exact per waveform kind); used
  /// by the lint pass to infer the supply rail.
  double max_abs_value() const;

  /// Range {lo, hi} of value(t) over all t >= 0 (exact per waveform
  /// kind); feeds the analyzer's DC interval relations.
  std::pair<double, double> value_range() const;

 private:
  enum class Kind { kDc, kPulse, kPwl, kSine };
  SourceWave() = default;

  Kind kind_ = Kind::kDc;
  // DC / common
  double v1_ = 0.0;
  // PULSE
  double v2_ = 0.0, delay_ = 0.0, rise_ = 0.0, fall_ = 0.0, width_ = 0.0,
         period_ = 0.0;
  // SIN
  double freq_ = 0.0;
  // PWL
  std::vector<std::pair<double, double>> points_;
};

/// Independent voltage source (carries a branch-current unknown whose
/// value is the current flowing from p through the source to n).
class VoltageSource : public spice::Device {
 public:
  VoltageSource(std::string name, spice::NodeId p, spice::NodeId n,
                SourceWave wave);

  /// Replaces the waveform (used by DC sweeps via set_dc).
  void set_wave(SourceWave wave) {
    wave_ = std::move(wave);
    if (wave_.is_dc()) dc_level_.set(wave_.dc_value());
  }
  void set_dc(double value) {
    wave_ = SourceWave::dc(value);
    dc_level_.set(value);
  }
  double value(double t) const { return wave_.value(t); }
  /// Bank slot ("v.dc"); tracks the level only while the wave is DC.
  spice::ParamSlot dc_slot() const { return dc_level_.slot(); }

  void bind_params(spice::ParamBank& bank) override;
  /// A bank write retunes a DC level; shaped waveforms are untouched.
  void on_params_changed() override {
    if (wave_.is_dc()) wave_ = SourceWave::dc(dc_level_.get());
  }

  /// Branch unknown: i(name), the current from p to n through the source.
  spice::UnknownId branch() const { return branch_; }

  /// AC excitation phasor (magnitude in volts, phase in degrees); zero by
  /// default so the source is AC-quiet.
  void set_ac(double magnitude, double phase_deg = 0.0) {
    ac_magnitude_ = magnitude;
    ac_phase_deg_ = phase_deg;
  }

  void setup(spice::SetupContext& ctx) override;
  void stamp(spice::StampContext& ctx) const override;
  void kernel_descriptor(const spice::KernelLayout& layout,
                         spice::KernelDescriptor& out) const override;
  /// Kernel twin of stamp(); roles: 0 = p, 1 = n, 2 = branch current.
  void kernel_eval(const spice::KernelSink& k) const;
  bool is_linear() const override { return true; }
  void stamp_ac(spice::AcStampContext& ctx) const override;
  bool has_ac_model() const override { return true; }
  void breakpoints(double tstop, std::vector<double>& out) const override;
  spice::DeviceTopology topology() const override;
  void interval_transfer(const analyze::IntervalSet& nodes,
                         std::vector<analyze::NodeClaim>& out) const override;
  std::string netlist_line(
      const std::function<std::string(spice::NodeId)>& node_namer)
      const override;

 private:
  spice::NodeId p_, n_;
  SourceWave wave_;
  spice::BankedParam dc_level_{0.0};
  spice::UnknownId branch_;
  double ac_magnitude_ = 0.0;
  double ac_phase_deg_ = 0.0;
};

/// Independent current source pushing `value(t)` from p to n externally
/// (i.e. current leaves node p, enters node n inside the source).
class CurrentSource : public spice::Device {
 public:
  CurrentSource(std::string name, spice::NodeId p, spice::NodeId n,
                SourceWave wave);

  void set_wave(SourceWave wave) {
    wave_ = std::move(wave);
    if (wave_.is_dc()) dc_level_.set(wave_.dc_value());
  }
  void set_dc(double value) {
    wave_ = SourceWave::dc(value);
    dc_level_.set(value);
  }
  /// Bank slot ("i.dc"); tracks the level only while the wave is DC.
  spice::ParamSlot dc_slot() const { return dc_level_.slot(); }

  void bind_params(spice::ParamBank& bank) override;
  void on_params_changed() override {
    if (wave_.is_dc()) wave_ = SourceWave::dc(dc_level_.get());
  }

  /// AC excitation phasor (amperes / degrees); zero by default.
  void set_ac(double magnitude, double phase_deg = 0.0) {
    ac_magnitude_ = magnitude;
    ac_phase_deg_ = phase_deg;
  }

  void stamp(spice::StampContext& ctx) const override;
  void kernel_descriptor(const spice::KernelLayout& layout,
                         spice::KernelDescriptor& out) const override;
  /// Kernel twin of stamp(); roles: 0 = p, 1 = n.
  void kernel_eval(const spice::KernelSink& k) const;
  bool is_linear() const override { return true; }
  void stamp_ac(spice::AcStampContext& ctx) const override;
  bool has_ac_model() const override { return true; }
  void breakpoints(double tstop, std::vector<double>& out) const override;
  spice::DeviceTopology topology() const override;
  /// A current-defined branch constrains no node voltage: claim nothing.
  void interval_transfer(const analyze::IntervalSet& nodes,
                         std::vector<analyze::NodeClaim>& out) const override {
    (void)nodes;
    (void)out;
  }
  std::string netlist_line(
      const std::function<std::string(spice::NodeId)>& node_namer)
      const override;

 private:
  spice::NodeId p_, n_;
  SourceWave wave_;
  spice::BankedParam dc_level_{0.0};
  double ac_magnitude_ = 0.0;
  double ac_phase_deg_ = 0.0;
};

}  // namespace nemsim::devices
