// Linear passive devices: resistor, capacitor, inductor.
#pragma once

#include "nemsim/devices/companion.h"
#include "nemsim/spice/device.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/kernels.h"
#include "nemsim/spice/parambank.h"

namespace nemsim::devices {

/// Ideal linear resistor between nodes p and n.
class Resistor : public spice::Device {
 public:
  Resistor(std::string name, spice::NodeId p, spice::NodeId n,
           double resistance);

  double resistance() const { return r_.get(); }
  void set_resistance(double r);
  /// Bank slot ("r.resistance"); invalid until added to a Circuit.
  spice::ParamSlot resistance_slot() const { return r_.slot(); }

  void bind_params(spice::ParamBank& bank) override;
  void stamp(spice::StampContext& ctx) const override;
  void kernel_descriptor(const spice::KernelLayout& layout,
                         spice::KernelDescriptor& out) const override;
  /// Kernel twin of stamp(); roles: 0 = p, 1 = n.
  void kernel_eval(const spice::KernelSink& k) const;
  void stamp_ac(spice::AcStampContext& ctx) const override;
  bool has_ac_model() const override { return true; }
  bool is_linear() const override { return true; }
  spice::DeviceTopology topology() const override;
  void interval_transfer(const analyze::IntervalSet& nodes,
                         std::vector<analyze::NodeClaim>& out) const override;
  void self_check(const lint::DeviceCheckContext& ctx,
                  std::vector<lint::LintFinding>& out) const override;
  std::string netlist_line(
      const std::function<std::string(spice::NodeId)>& node_namer)
      const override;

 private:
  spice::NodeId p_, n_;
  spice::BankedParam r_;
};

/// Ideal linear capacitor; open in DC, trapezoidal companion in transient.
class Capacitor : public spice::Device {
 public:
  Capacitor(std::string name, spice::NodeId p, spice::NodeId n,
            double capacitance);

  double capacitance() const { return companion_.capacitance(); }
  void set_capacitance(double c) {
    c_.set(c);
    companion_.set_capacitance(c);
  }
  /// Bank slot ("c.capacitance"); invalid until added to a Circuit.
  spice::ParamSlot capacitance_slot() const { return c_.slot(); }

  void bind_params(spice::ParamBank& bank) override;
  /// The companion model mirrors the banked capacitance; resync it.
  void on_params_changed() override {
    companion_.set_capacitance(c_.get());
  }
  void stamp(spice::StampContext& ctx) const override;
  void kernel_descriptor(const spice::KernelLayout& layout,
                         spice::KernelDescriptor& out) const override;
  /// Kernel twin of stamp(); roles: 0 = p, 1 = n.
  void kernel_eval(const spice::KernelSink& k) const {
    companion_.kernel_stamp(k, 0, 1);
  }
  bool is_linear() const override { return true; }
  void accept_step(const spice::AcceptContext& ctx) override;
  void reset_state() override;
  void stamp_ac(spice::AcStampContext& ctx) const override;
  bool has_ac_model() const override { return true; }
  spice::DeviceTopology topology() const override;
  /// Open in DC: nothing to claim about node voltages.
  void interval_transfer(const analyze::IntervalSet& nodes,
                         std::vector<analyze::NodeClaim>& out) const override {
    (void)nodes;
    (void)out;
  }
  void self_check(const lint::DeviceCheckContext& ctx,
                  std::vector<lint::LintFinding>& out) const override;
  std::string netlist_line(
      const std::function<std::string(spice::NodeId)>& node_namer)
      const override;
  void notify_discontinuity() override;

 private:
  spice::NodeId p_, n_;
  /// Authoritative value; companion_ holds a mirror used by the stamps.
  spice::BankedParam c_;
  CapCompanion companion_;
};

/// Ideal linear inductor; short in DC, trapezoidal companion in transient.
/// Carries a branch-current unknown.
class Inductor : public spice::Device {
 public:
  Inductor(std::string name, spice::NodeId p, spice::NodeId n,
           double inductance);

  double inductance() const { return l_; }
  spice::UnknownId branch() const { return branch_; }

  void setup(spice::SetupContext& ctx) override;
  void stamp(spice::StampContext& ctx) const override;
  void kernel_descriptor(const spice::KernelLayout& layout,
                         spice::KernelDescriptor& out) const override;
  /// Kernel twin of stamp(); roles: 0 = p, 1 = n, 2 = branch current.
  void kernel_eval(const spice::KernelSink& k) const;
  bool is_linear() const override { return true; }
  void accept_step(const spice::AcceptContext& ctx) override;
  void reset_state() override;
  void stamp_ac(spice::AcStampContext& ctx) const override;
  bool has_ac_model() const override { return true; }
  spice::DeviceTopology topology() const override;
  void interval_transfer(const analyze::IntervalSet& nodes,
                         std::vector<analyze::NodeClaim>& out) const override;
  void self_check(const lint::DeviceCheckContext& ctx,
                  std::vector<lint::LintFinding>& out) const override;
  std::string netlist_line(
      const std::function<std::string(spice::NodeId)>& node_namer)
      const override;
  void notify_discontinuity() override;

 private:
  spice::NodeId p_, n_;
  double l_;
  spice::UnknownId branch_;
  double i0_ = 0.0;   // accepted branch current
  double vl0_ = 0.0;  // accepted inductor voltage
  bool use_be_ = true;
};

}  // namespace nemsim::devices
