// Bulk-CMOS MOSFET compact model (smooth EKV interpolation).
//
// Calibrated by the tech layer to the paper's Table 1 targets
// (Ion = 1110 uA/um, Ioff = 50 nA/um at Vdd = 1.2 V, 90 nm).
// Capacitances are bias-independent Meyer-style lumps — sufficient for
// the delay/power *trends* the paper studies, and far kinder to Newton.
#pragma once

#include "nemsim/devices/companion.h"
#include "nemsim/spice/device.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/parambank.h"

namespace nemsim::devices {

enum class MosPolarity { kNmos, kPmos };

/// Card-level (technology) MOSFET parameters; geometry is per-instance.
struct MosParams {
  double vth0 = 0.25;      ///< zero-bias threshold magnitude (V)
  double n = 1.35;         ///< subthreshold slope factor
  double kp = 350e-6;      ///< transconductance parameter (A/V^2)
  double lambda = 0.06;    ///< channel-length modulation (1/V)
  double eta_dibl = 0.04;  ///< DIBL coefficient (V/V)
  double cox_area = 0.022; ///< gate capacitance per area (F/m^2)
  double cov = 3e-10;      ///< overlap capacitance per width (F/m)
  double cj = 8e-10;       ///< junction capacitance per width (F/m)
  double goff = 0.0;       ///< drain-source leakage floor per width (S/m)
  double temp = 300.0;     ///< K
};

/// Four-terminal-less (bulk-tied) MOSFET between drain/gate/source nodes.
class Mosfet : public spice::Device {
 public:
  Mosfet(std::string name, spice::NodeId drain, spice::NodeId gate,
         spice::NodeId source, MosPolarity polarity, MosParams params,
         double width, double length);

  MosPolarity polarity() const { return polarity_; }
  const MosParams& params() const { return params_; }
  double width() const { return w_.get(); }
  double length() const { return l_; }

  /// Resizes the device (keeper sweeps); updates capacitances.
  void set_width(double width);

  /// Monte-Carlo threshold shift, added to the threshold magnitude.
  void set_vth_shift(double dv) { vth_shift_.set(dv); }
  double vth_shift() const { return vth_shift_.get(); }

  /// Bank slots of the tunable scalars ("mos.vth_shift" / "mos.w");
  /// invalid until the device is added to a Circuit.
  spice::ParamSlot vth_shift_slot() const { return vth_shift_.slot(); }
  spice::ParamSlot width_slot() const { return w_.slot(); }

  /// Model evaluation in canonical polarity (vgs/vds as magnitudes, i.e.
  /// for PMOS pass |vgs|, |vds|).  Exposed for calibration and tests.
  double drain_current(double vgs, double vds) const;

  void bind_params(spice::ParamBank& bank) override;
  void on_params_changed() override { refresh_capacitances(); }
  void stamp(spice::StampContext& ctx) const override;
  void kernel_descriptor(const spice::KernelLayout& layout,
                         spice::KernelDescriptor& out) const override;
  /// Kernel twin of stamp(); roles: 0 = drain, 1 = gate, 2 = source.
  void kernel_eval(const spice::KernelSink& k) const;
  bool bypass_signature(std::vector<double>& out) const override;
  void accept_step(const spice::AcceptContext& ctx) override;
  void reset_state() override;
  void stamp_ac(spice::AcStampContext& ctx) const override;
  bool has_ac_model() const override { return true; }
  spice::DeviceTopology topology() const override;
  void interval_transfer(const analyze::IntervalSet& nodes,
                         std::vector<analyze::NodeClaim>& out) const override;
  void interval_check(const analyze::IntervalSet& nodes,
                      std::vector<analyze::RegionVerdict>& out) const override;
  void self_check(const lint::DeviceCheckContext& ctx,
                  std::vector<lint::LintFinding>& out) const override;
  std::string netlist_line(
      const std::function<std::string(spice::NodeId)>& node_namer)
      const override;
  void notify_discontinuity() override;

 private:
  void refresh_capacitances();

  spice::NodeId d_, g_, s_;
  MosPolarity polarity_;
  MosParams params_;
  spice::BankedParam w_;
  double l_;
  spice::BankedParam vth_shift_{0.0};

  CapCompanion cgs_, cgd_, cdb_, csb_;
};

}  // namespace nemsim::devices
