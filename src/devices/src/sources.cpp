#include "nemsim/devices/sources.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>

#include "nemsim/spice/ac.h"
#include <complex>
#include "nemsim/util/error.h"

namespace nemsim::devices {

using spice::AnalysisMode;

// ------------------------------------------------------------ SourceWave

SourceWave SourceWave::dc(double value) {
  SourceWave w;
  w.kind_ = Kind::kDc;
  w.v1_ = value;
  return w;
}

SourceWave SourceWave::pulse(double v1, double v2, double delay, double rise,
                             double fall, double width, double period) {
  require(rise > 0.0 && fall > 0.0, "pulse: rise/fall must be positive");
  require(width >= 0.0 && delay >= 0.0, "pulse: width/delay must be >= 0");
  if (period > 0.0) {
    require(period >= rise + fall + width,
            "pulse: period shorter than one pulse");
  }
  SourceWave w;
  w.kind_ = Kind::kPulse;
  w.v1_ = v1;
  w.v2_ = v2;
  w.delay_ = delay;
  w.rise_ = rise;
  w.fall_ = fall;
  w.width_ = width;
  w.period_ = period;
  return w;
}

SourceWave SourceWave::pwl(std::vector<std::pair<double, double>> points) {
  require(!points.empty(), "pwl: need at least one point");
  for (std::size_t i = 1; i < points.size(); ++i) {
    require(points[i].first > points[i - 1].first,
            "pwl: times must be strictly increasing");
  }
  SourceWave w;
  w.kind_ = Kind::kPwl;
  w.points_ = std::move(points);
  return w;
}

SourceWave SourceWave::sine(double offset, double amplitude, double freq,
                            double delay) {
  require(freq > 0.0, "sine: frequency must be positive");
  SourceWave w;
  w.kind_ = Kind::kSine;
  w.v1_ = offset;
  w.v2_ = amplitude;
  w.freq_ = freq;
  w.delay_ = delay;
  return w;
}

double SourceWave::value(double t) const {
  switch (kind_) {
    case Kind::kDc:
      return v1_;
    case Kind::kPulse: {
      if (t < delay_) return v1_;
      double local = t - delay_;
      if (period_ > 0.0) local = std::fmod(local, period_);
      if (local < rise_) return v1_ + (v2_ - v1_) * (local / rise_);
      if (local < rise_ + width_) return v2_;
      if (local < rise_ + width_ + fall_) {
        return v2_ + (v1_ - v2_) * ((local - rise_ - width_) / fall_);
      }
      return v1_;
    }
    case Kind::kPwl: {
      if (t <= points_.front().first) return points_.front().second;
      if (t >= points_.back().first) return points_.back().second;
      for (std::size_t i = 1; i < points_.size(); ++i) {
        if (t <= points_[i].first) {
          const auto& [t0, y0] = points_[i - 1];
          const auto& [t1, y1] = points_[i];
          return y0 + (y1 - y0) * (t - t0) / (t1 - t0);
        }
      }
      return points_.back().second;
    }
    case Kind::kSine: {
      if (t < delay_) return v1_;
      return v1_ + v2_ * std::sin(2.0 * std::numbers::pi * freq_ * (t - delay_));
    }
  }
  return 0.0;
}

void SourceWave::breakpoints(double tstop, std::vector<double>& out) const {
  switch (kind_) {
    case Kind::kDc:
    case Kind::kSine:
      return;
    case Kind::kPulse: {
      const double one = rise_ + width_ + fall_;
      double base = delay_;
      while (base <= tstop) {
        out.push_back(base);
        out.push_back(base + rise_);
        out.push_back(base + rise_ + width_);
        out.push_back(base + one);
        if (period_ <= 0.0) break;
        base += period_;
      }
      return;
    }
    case Kind::kPwl: {
      for (const auto& [t, v] : points_) {
        (void)v;
        if (t > 0.0 && t <= tstop) out.push_back(t);
      }
      return;
    }
  }
}

std::string SourceWave::to_spice() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kDc:
      os << "DC " << v1_;
      break;
    case Kind::kPulse:
      os << "PULSE(" << v1_ << " " << v2_ << " " << delay_ << " " << rise_
         << " " << fall_ << " " << width_;
      if (period_ > 0.0) os << " " << period_;
      os << ")";
      break;
    case Kind::kPwl:
      os << "PWL(";
      for (std::size_t i = 0; i < points_.size(); ++i) {
        if (i) os << " ";
        os << points_[i].first << " " << points_[i].second;
      }
      os << ")";
      break;
    case Kind::kSine:
      os << "SIN(" << v1_ << " " << v2_ << " " << freq_ << " " << delay_
         << ")";
      break;
  }
  return os.str();
}

double SourceWave::max_abs_value() const {
  switch (kind_) {
    case Kind::kDc:
      return std::abs(v1_);
    case Kind::kPulse:
      return std::max(std::abs(v1_), std::abs(v2_));
    case Kind::kSine:
      return std::abs(v1_) + std::abs(v2_);
    case Kind::kPwl: {
      double m = 0.0;
      for (const auto& [t, v] : points_) {
        (void)t;
        m = std::max(m, std::abs(v));
      }
      return m;
    }
  }
  return 0.0;
}

std::pair<double, double> SourceWave::value_range() const {
  switch (kind_) {
    case Kind::kDc:
      return {v1_, v1_};
    case Kind::kPulse:
      return std::minmax(v1_, v2_);
    case Kind::kSine:
      // value(t) = v1_ for t < delay, which sits inside offset +- |amp|.
      return {v1_ - std::abs(v2_), v1_ + std::abs(v2_)};
    case Kind::kPwl: {
      double lo = points_.front().second, hi = lo;
      for (const auto& [t, v] : points_) {
        (void)t;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      return {lo, hi};
    }
  }
  return {0.0, 0.0};
}

// --------------------------------------------------------- VoltageSource

VoltageSource::VoltageSource(std::string name, spice::NodeId p,
                             spice::NodeId n, SourceWave wave)
    : Device(std::move(name)), p_(p), n_(n), wave_(std::move(wave)) {
  if (wave_.is_dc()) dc_level_.set(wave_.dc_value());
}

void VoltageSource::bind_params(spice::ParamBank& bank) {
  dc_level_.bind(bank, "v.dc", name());
}

void VoltageSource::setup(spice::SetupContext& ctx) {
  branch_ = ctx.add_branch_current(name());
}

void VoltageSource::stamp(spice::StampContext& ctx) const {
  const double i = ctx.x(branch_);
  ctx.add_f(p_, i);
  ctx.add_f(n_, -i);
  ctx.add_J(p_, branch_, 1.0);
  ctx.add_J(n_, branch_, -1.0);

  const double target = wave_.value(ctx.time()) * ctx.source_factor();
  ctx.add_f(branch_, ctx.v(p_) - ctx.v(n_) - target);
  ctx.add_J(branch_, p_, 1.0);
  ctx.add_J(branch_, n_, -1.0);
}

void VoltageSource::kernel_descriptor(const spice::KernelLayout& layout,
                                      spice::KernelDescriptor& out) const {
  out.supported = true;
  out.bucket = "vsource";
  out.batch = &spice::kernel_batch_eval<VoltageSource>;
  out.roles = 3;
  out.role_unknowns = {layout.of(p_), layout.of(n_),
                       spice::KernelLayout::of(branch_)};
  out.add_j(0, 2);
  out.add_j(1, 2);
  out.add_j(2, 0);
  out.add_j(2, 1);
}

void VoltageSource::kernel_eval(const spice::KernelSink& k) const {
  const double i = k.xr(2);
  k.f(0, i);
  k.f(1, -i);
  k.J(0, 2, 1.0);
  k.J(1, 2, -1.0);

  const double target = wave_.value(k.time()) * k.source_factor();
  k.f(2, k.xr(0) - k.xr(1) - target);
  k.J(2, 0, 1.0);
  k.J(2, 1, -1.0);
}

void VoltageSource::breakpoints(double tstop, std::vector<double>& out) const {
  wave_.breakpoints(tstop, out);
}

void VoltageSource::stamp_ac(spice::AcStampContext& ctx) const {
  ctx.add_G(p_, branch_, 1.0);
  ctx.add_G(n_, branch_, -1.0);
  ctx.add_G(branch_, p_, 1.0);
  ctx.add_G(branch_, n_, -1.0);
  const double phase = ac_phase_deg_ * std::numbers::pi / 180.0;
  ctx.add_rhs(branch_, std::polar(ac_magnitude_, phase));
}

spice::DeviceTopology VoltageSource::topology() const {
  spice::DeviceTopology topo;
  topo.element_letter = 'V';
  const std::size_t p = topo.add_terminal("p", p_);
  const std::size_t n = topo.add_terminal("n", n_);
  auto& edge = topo.add_edge(spice::DeviceTopology::EdgeKind::kVoltage, p, n);
  edge.is_source = true;
  edge.dc_value = wave_.value(0.0);
  edge.max_abs = wave_.max_abs_value();
  return topo;
}

void VoltageSource::interval_transfer(
    const analyze::IntervalSet& nodes,
    std::vector<analyze::NodeClaim>& out) const {
  // v(p) - v(n) tracks the waveform exactly, so each terminal lies in
  // the other's interval shifted by the waveform's value range.
  const auto [lo, hi] = wave_.value_range();
  const analyze::Interval range{lo, hi};
  out.push_back(
      {p_, nodes.at(n_) + range, analyze::NodeClaim::Kind::kRelation});
  out.push_back(
      {n_, nodes.at(p_) - range, analyze::NodeClaim::Kind::kRelation});
}

std::string VoltageSource::netlist_line(
    const std::function<std::string(spice::NodeId)>& node_namer) const {
  return name() + " " + node_namer(p_) + " " + node_namer(n_) + " " +
         wave_.to_spice();
}

// --------------------------------------------------------- CurrentSource

CurrentSource::CurrentSource(std::string name, spice::NodeId p,
                             spice::NodeId n, SourceWave wave)
    : Device(std::move(name)), p_(p), n_(n), wave_(std::move(wave)) {
  if (wave_.is_dc()) dc_level_.set(wave_.dc_value());
}

void CurrentSource::bind_params(spice::ParamBank& bank) {
  dc_level_.bind(bank, "i.dc", name());
}

void CurrentSource::stamp(spice::StampContext& ctx) const {
  const double i = wave_.value(ctx.time()) * ctx.source_factor();
  // Convention: the source drives current out of p (through the external
  // circuit) into n; at node p the device removes +i.
  ctx.add_f(p_, i);
  ctx.add_f(n_, -i);
}

void CurrentSource::kernel_descriptor(const spice::KernelLayout& layout,
                                      spice::KernelDescriptor& out) const {
  out.supported = true;
  out.bucket = "isource";
  out.batch = &spice::kernel_batch_eval<CurrentSource>;
  out.roles = 2;
  out.role_unknowns = {layout.of(p_), layout.of(n_)};
  // No Jacobian cells: the excitation is iterate-independent.
}

void CurrentSource::kernel_eval(const spice::KernelSink& k) const {
  const double i = wave_.value(k.time()) * k.source_factor();
  k.f(0, i);
  k.f(1, -i);
}

void CurrentSource::breakpoints(double tstop, std::vector<double>& out) const {
  wave_.breakpoints(tstop, out);
}

void CurrentSource::stamp_ac(spice::AcStampContext& ctx) const {
  // DC convention: +i leaves node p.  Moving the excitation to the right
  // hand side flips the sign.
  const double phase = ac_phase_deg_ * std::numbers::pi / 180.0;
  const linalg::Complex i = std::polar(ac_magnitude_, phase);
  ctx.add_rhs(p_, -i);
  ctx.add_rhs(n_, i);
}

spice::DeviceTopology CurrentSource::topology() const {
  spice::DeviceTopology topo;
  topo.element_letter = 'I';
  const std::size_t p = topo.add_terminal("p", p_);
  const std::size_t n = topo.add_terminal("n", n_);
  auto& edge = topo.add_edge(spice::DeviceTopology::EdgeKind::kCurrent, p, n);
  edge.is_source = true;
  edge.dc_value = wave_.value(0.0);
  edge.max_abs = wave_.max_abs_value();
  return topo;
}

std::string CurrentSource::netlist_line(
    const std::function<std::string(spice::NodeId)>& node_namer) const {
  return name() + " " + node_namer(p_) + " " + node_namer(n_) + " " +
         wave_.to_spice();
}

}  // namespace nemsim::devices
