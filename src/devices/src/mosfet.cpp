#include "nemsim/devices/mosfet.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "nemsim/devices/ekv.h"
#include <sstream>

#include "nemsim/spice/ac.h"
#include "nemsim/util/error.h"
#include "nemsim/util/units.h"

namespace nemsim::devices {

Mosfet::Mosfet(std::string name, spice::NodeId drain, spice::NodeId gate,
               spice::NodeId source, MosPolarity polarity, MosParams params,
               double width, double length)
    : Device(std::move(name)), d_(drain), g_(gate), s_(source),
      polarity_(polarity), params_(params), w_(width), l_(length) {
  require(width > 0.0 && length > 0.0, "Mosfet: W and L must be positive");
  refresh_capacitances();
}

void Mosfet::bind_params(spice::ParamBank& bank) {
  vth_shift_.bind(bank, "mos.vth_shift", name());
  w_.bind(bank, "mos.w", name());
}

void Mosfet::set_width(double width) {
  require(width > 0.0, "Mosfet: W must be positive");
  w_.set(width);
  refresh_capacitances();
}

void Mosfet::refresh_capacitances() {
  const double cgate_half = 0.5 * params_.cox_area * w_.get() * l_;
  cgs_.set_capacitance(cgate_half + params_.cov * w_.get());
  cgd_.set_capacitance(cgate_half + params_.cov * w_.get());
  cdb_.set_capacitance(params_.cj * w_.get());
  csb_.set_capacitance(params_.cj * w_.get());
}

double Mosfet::drain_current(double vgs, double vds) const {
  ekv::ChannelBias bias;
  ekv::ChannelParams cp;
  cp.vth = params_.vth0 + vth_shift_.get();
  cp.n = params_.n;
  cp.kp = params_.kp;
  cp.w_over_l = w_.get() / l_;
  cp.lambda = params_.lambda;
  cp.eta = params_.eta_dibl;
  cp.vt = phys::thermal_voltage(params_.temp);

  double sign = 1.0;
  if (vds < 0.0) {
    // Symmetric device: swap source/drain roles.
    bias.vgs = vgs - vds;
    bias.vds = -vds;
    sign = -1.0;
  } else {
    bias.vgs = vgs;
    bias.vds = vds;
  }
  const ekv::ChannelResult r = ekv::evaluate(bias, cp);
  return sign * (r.id + params_.goff * w_.get() * bias.vds);
}

void Mosfet::stamp(spice::StampContext& ctx) const {
  const double sign = polarity_ == MosPolarity::kNmos ? 1.0 : -1.0;

  // Canonical terminal roles: nd carries positive vds after an optional
  // source/drain swap (the model is symmetric).
  spice::NodeId nd = d_;
  spice::NodeId ns = s_;
  double vds = sign * (ctx.v(nd) - ctx.v(ns));
  if (vds < 0.0) {
    std::swap(nd, ns);
    vds = -vds;
  }
  const double vgs = sign * (ctx.v(g_) - ctx.v(ns));

  ekv::ChannelBias bias{vgs, vds};
  ekv::ChannelParams cp;
  cp.vth = params_.vth0 + vth_shift_.get();
  cp.n = params_.n;
  cp.kp = params_.kp;
  cp.w_over_l = w_.get() / l_;
  cp.lambda = params_.lambda;
  cp.eta = params_.eta_dibl;
  cp.vt = phys::thermal_voltage(params_.temp);
  const ekv::ChannelResult r = ekv::evaluate(bias, cp);

  const double gfloor = params_.goff * w_.get();
  const double id = r.id + gfloor * vds;
  const double gm = r.gm;
  const double gds = r.gds + gfloor;

  // Current of magnitude id flows nd -> ns in sign-space; as computed in
  // the header comment, the sign factors cancel in the Jacobian.
  ctx.add_f(nd, sign * id);
  ctx.add_f(ns, -sign * id);
  ctx.add_J(nd, g_, gm);
  ctx.add_J(nd, nd, gds);
  ctx.add_J(nd, ns, -(gm + gds));
  ctx.add_J(ns, g_, -gm);
  ctx.add_J(ns, nd, -gds);
  ctx.add_J(ns, ns, gm + gds);

  // Parasitic capacitances (bias-independent).
  cgs_.stamp(ctx, g_, s_);
  cgd_.stamp(ctx, g_, d_);
  cdb_.stamp(ctx, d_, spice::kGround);
  csb_.stamp(ctx, s_, spice::kGround);
}

void Mosfet::kernel_descriptor(const spice::KernelLayout& layout,
                               spice::KernelDescriptor& out) const {
  out.supported = true;
  out.bucket = "mosfet";
  out.batch = &spice::kernel_batch_eval<Mosfet>;
  out.roles = 3;
  out.role_unknowns = {layout.of(d_), layout.of(g_), layout.of(s_)};
  // Full 3x3: the source/drain swap plus the companion caps reach every
  // cell across runtime orientations.
  for (int e = 0; e < 3; ++e) {
    for (int v = 0; v < 3; ++v) out.add_j(e, v);
  }
}

void Mosfet::kernel_eval(const spice::KernelSink& k) const {
  const double sign = polarity_ == MosPolarity::kNmos ? 1.0 : -1.0;

  int nd = 0, ns = 2;  // drain/source roles before the symmetric swap
  double vds = sign * (k.xr(nd) - k.xr(ns));
  if (vds < 0.0) {
    std::swap(nd, ns);
    vds = -vds;
  }
  const double vgs = sign * (k.xr(1) - k.xr(ns));

  ekv::ChannelBias bias{vgs, vds};
  ekv::ChannelParams cp;
  cp.vth = params_.vth0 + vth_shift_.get();
  cp.n = params_.n;
  cp.kp = params_.kp;
  cp.w_over_l = w_.get() / l_;
  cp.lambda = params_.lambda;
  cp.eta = params_.eta_dibl;
  cp.vt = phys::thermal_voltage(params_.temp);
  const ekv::ChannelResult r = ekv::evaluate(bias, cp);

  const double gfloor = params_.goff * w_.get();
  const double id = r.id + gfloor * vds;
  const double gm = r.gm;
  const double gds = r.gds + gfloor;

  k.f(nd, sign * id);
  k.f(ns, -sign * id);
  k.J(nd, 1, gm);
  k.J(nd, nd, gds);
  k.J(nd, ns, -(gm + gds));
  k.J(ns, 1, -gm);
  k.J(ns, nd, -gds);
  k.J(ns, ns, gm + gds);

  cgs_.kernel_stamp(k, 1, 2);
  cgd_.kernel_stamp(k, 1, 0);
  cdb_.kernel_stamp(k, 0, -1);
  csb_.kernel_stamp(k, 2, -1);
}

bool Mosfet::bypass_signature(std::vector<double>& out) const {
  // Everything the stamp reads besides the iterate: instance geometry and
  // threshold shift (mutable via keeper/Monte-Carlo sweeps) plus the four
  // companion histories.
  out.push_back(w_.get());
  out.push_back(vth_shift_.get());
  cgs_.append_signature(out);
  cgd_.append_signature(out);
  cdb_.append_signature(out);
  csb_.append_signature(out);
  return true;
}

void Mosfet::accept_step(const spice::AcceptContext& ctx) {
  cgs_.accept(ctx, ctx.v(g_) - ctx.v(s_));
  cgd_.accept(ctx, ctx.v(g_) - ctx.v(d_));
  cdb_.accept(ctx, ctx.v(d_));
  csb_.accept(ctx, ctx.v(s_));
}

void Mosfet::reset_state() {
  cgs_.reset();
  cgd_.reset();
  cdb_.reset();
  csb_.reset();
}

void Mosfet::notify_discontinuity() {
  cgs_.discontinuity();
  cgd_.discontinuity();
  cdb_.discontinuity();
  csb_.discontinuity();
}

void Mosfet::stamp_ac(spice::AcStampContext& ctx) const {
  const double sign = polarity_ == MosPolarity::kNmos ? 1.0 : -1.0;
  spice::NodeId nd = d_;
  spice::NodeId ns = s_;
  double vds = sign * (ctx.v(nd) - ctx.v(ns));
  if (vds < 0.0) {
    std::swap(nd, ns);
    vds = -vds;
  }
  const double vgs = sign * (ctx.v(g_) - ctx.v(ns));

  ekv::ChannelBias bias{vgs, vds};
  ekv::ChannelParams cp;
  cp.vth = params_.vth0 + vth_shift_.get();
  cp.n = params_.n;
  cp.kp = params_.kp;
  cp.w_over_l = w_.get() / l_;
  cp.lambda = params_.lambda;
  cp.eta = params_.eta_dibl;
  cp.vt = phys::thermal_voltage(params_.temp);
  const ekv::ChannelResult r = ekv::evaluate(bias, cp);
  const double gm = r.gm;
  const double gds = r.gds + params_.goff * w_.get();

  // Same sign-cancelled pattern as the large-signal stamp.
  ctx.add_G(nd, g_, gm);
  ctx.add_G(nd, nd, gds);
  ctx.add_G(nd, ns, -(gm + gds));
  ctx.add_G(ns, g_, -gm);
  ctx.add_G(ns, nd, -gds);
  ctx.add_G(ns, ns, gm + gds);

  ctx.stamp_capacitance(g_, s_, cgs_.capacitance());
  ctx.stamp_capacitance(g_, d_, cgd_.capacitance());
  ctx.stamp_capacitance(d_, spice::kGround, cdb_.capacitance());
  ctx.stamp_capacitance(s_, spice::kGround, csb_.capacitance());
}

spice::DeviceTopology Mosfet::topology() const {
  using EdgeKind = spice::DeviceTopology::EdgeKind;
  spice::DeviceTopology topo;
  topo.element_letter = 'M';
  const std::size_t d = topo.add_terminal("drain", d_);
  const std::size_t g = topo.add_terminal("gate", g_);
  const std::size_t s = topo.add_terminal("source", s_);
  // Bulk is tied to ground; the junction caps land there.
  const std::size_t b = topo.add_terminal("bulk", spice::kGround);
  // Channel magnitude: representative on-state conductance ~ KP W/L.
  topo.add_edge(EdgeKind::kConductive, d, s).magnitude =
      params_.kp * w_.get() / l_;
  topo.add_edge(EdgeKind::kCapacitive, g, d).magnitude = cgd_.capacitance();
  topo.add_edge(EdgeKind::kCapacitive, g, s).magnitude = cgs_.capacitance();
  topo.add_edge(EdgeKind::kCapacitive, d, b).magnitude = cdb_.capacitance();
  topo.add_edge(EdgeKind::kCapacitive, s, b).magnitude = csb_.capacitance();
  return topo;
}

void Mosfet::interval_transfer(const analyze::IntervalSet& nodes,
                               std::vector<analyze::NodeClaim>& out) const {
  // The channel (EKV + goff floor) is passive — current sign follows
  // vds even through the source/drain swap — so the maximum principle
  // holds between drain and source.  The gate only couples capacitively.
  out.push_back({d_, nodes.at(s_), analyze::NodeClaim::Kind::kNeighbor});
  out.push_back({s_, nodes.at(d_), analyze::NodeClaim::Kind::kNeighbor});
}

void Mosfet::interval_check(const analyze::IntervalSet& nodes,
                            std::vector<analyze::RegionVerdict>& out) const {
  const double sign = polarity_ == MosPolarity::kNmos ? 1.0 : -1.0;
  // Canonical gate drive after the source/drain swap: the source is the
  // lower terminal in sign-space, so vgs = max over both pairings of
  // sign * (v(gate) - v(terminal)); interval max is endpoint-wise.
  const analyze::Interval vgd = (nodes.at(g_) - nodes.at(d_)).scaled(sign);
  const analyze::Interval vgs = (nodes.at(g_) - nodes.at(s_)).scaled(sign);
  const double drive_hi = std::max(vgd.hi, vgs.hi);
  const double drive_lo = std::max(vgd.lo, vgs.lo);
  const double vth = params_.vth0 + vth_shift_.get();
  // Guard band for the EKV interpolation's soft knee around threshold.
  constexpr double kMarginVolts = 0.1;
  if (std::isfinite(drive_hi) && drive_hi < vth - kMarginVolts) {
    std::ostringstream msg;
    msg << "gate drive can never exceed " << drive_hi << " V against a "
        << "threshold of " << vth << " V: the channel is provably always "
        << "subthreshold — only leakage flows, which is either the point "
        << "(keeper, sleep transistor) or a mis-wired gate net";
    out.push_back({name(), "mosfet-always-off", msg.str(),
                   lint::LintSeverity::kHint, "", {}});
  } else if (drive_lo > vth + kMarginVolts) {
    std::ostringstream msg;
    msg << "gate drive never falls below " << drive_lo << " V against a "
        << "threshold of " << vth << " V: the channel is provably always "
        << "on — the device acts as a pass resistor, never as a switch";
    out.push_back({name(), "mosfet-always-on", msg.str(),
                   lint::LintSeverity::kHint, "", {}});
  }
}

void Mosfet::self_check(const lint::DeviceCheckContext& ctx,
                        std::vector<lint::LintFinding>& out) const {
  (void)ctx;
  if (params_.kp <= 0.0) {
    std::ostringstream msg;
    msg << "transconductance parameter KP = " << params_.kp
        << " A/V^2 is non-positive; the channel cannot conduct";
    out.push_back({lint::LintSeverity::kWarning, "nonphysical-parameter", "",
                   msg.str()});
  }
  if (params_.temp <= 0.0) {
    std::ostringstream msg;
    msg << "temperature " << params_.temp << " K is non-positive; the "
        << "thermal voltage is undefined";
    out.push_back({lint::LintSeverity::kWarning, "nonphysical-parameter", "",
                   msg.str()});
  }
  if (params_.lambda < 0.0) {
    std::ostringstream msg;
    msg << "channel-length modulation lambda = " << params_.lambda
        << " 1/V is negative: output conductance would be negative in "
        << "saturation";
    out.push_back({lint::LintSeverity::kWarning, "nonphysical-parameter", "",
                   msg.str()});
  }
}

std::string Mosfet::netlist_line(
    const std::function<std::string(spice::NodeId)>& node_namer) const {
  std::ostringstream os;
  os << name() << " " << node_namer(d_) << " " << node_namer(g_) << " "
     << node_namer(s_) << " "
     << (polarity_ == MosPolarity::kNmos ? "NMOS" : "PMOS") << " W=" << w_.get()
     << " L=" << l_ << " VTH0=" << params_.vth0 + vth_shift_.get()
     << " KP=" << params_.kp;
  return os.str();
}

}  // namespace nemsim::devices
