#include "nemsim/devices/nemfet.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "nemsim/devices/ekv.h"
#include <sstream>

#include "nemsim/spice/ac.h"
#include "nemsim/util/error.h"
#include "nemsim/util/units.h"

namespace nemsim::devices {

using ekv::sigmoid;
using ekv::softplus;

double NemsParams::analytic_pull_in_voltage() const {
  const double d = electrostatic_gap();
  return std::sqrt(8.0 * spring_k * d * d * d /
                   (27.0 * phys::kEps0 * area));
}

double NemsParams::analytic_pull_out_voltage() const {
  // At contact the remaining electrostatic gap is tox/eps_ox; release
  // happens when Fe there can no longer hold the stretched spring.
  const double d_contact = tox / eps_ox;
  const double fe_per_v2 = 0.5 * phys::kEps0 * area / (d_contact * d_contact);
  return std::sqrt(spring_k * gap0 / fe_per_v2);
}

Nemfet::Nemfet(std::string name, spice::NodeId drain, spice::NodeId gate,
               spice::NodeId source, NemsPolarity polarity, NemsParams params,
               double width)
    : Device(std::move(name)), d_(drain), g_(gate), s_(source),
      polarity_(polarity), params_(params), w_(width) {
  require(width > 0.0, "Nemfet: width must be positive");
  require(params_.gap0 > 0.0 && params_.tox > 0.0,
          "Nemfet: geometry must be positive");
  require(params_.spring_k > 0.0 && params_.mass > 0.0 &&
              params_.damping >= 0.0,
          "Nemfet: mechanical parameters must be positive");
  cg_gap_.set_capacitance(gate_capacitance(0.0));
  cgd_ov_.set_capacitance(params_.cov * w_.get());
  cgs_ov_.set_capacitance(params_.cov * w_.get());
  cdb_.set_capacitance(params_.cj * w_.get());
  csb_.set_capacitance(params_.cj * w_.get());
}

void Nemfet::bind_params(spice::ParamBank& bank) {
  vth_shift_.bind(bank, "nems.vth_shift", name());
  w_.bind(bank, "nems.w", name());
}

void Nemfet::on_params_changed() {
  cg_gap_.set_capacitance(gate_capacitance(x_state_));
  cgd_ov_.set_capacitance(params_.cov * w_.get());
  cgs_ov_.set_capacitance(params_.cov * w_.get());
  cdb_.set_capacitance(params_.cj * w_.get());
  csb_.set_capacitance(params_.cj * w_.get());
}

void Nemfet::set_width(double width) {
  require(width > 0.0, "Nemfet: width must be positive");
  w_.set(width);
  cg_gap_.set_capacitance(gate_capacitance(x_state_));
  cgd_ov_.set_capacitance(params_.cov * w_.get());
  cgs_ov_.set_capacitance(params_.cov * w_.get());
  cdb_.set_capacitance(params_.cj * w_.get());
  csb_.set_capacitance(params_.cj * w_.get());
}

double Nemfet::air_gap(double x) const {
  // Smooth max(gap0 - x, 0): the beam cannot penetrate the oxide; the
  // softplus keeps the Jacobian continuous through contact.
  const double wg = params_.gap_softness;
  return wg * softplus((params_.gap0 - x) / wg);
}

double Nemfet::electrostatic_force(double v_beam, double x) const {
  const double d = air_gap(x) + params_.tox / params_.eps_ox;
  const double a = params_.area * sw();
  return 0.5 * phys::kEps0 * a * v_beam * v_beam / (d * d);
}

double Nemfet::contact_force(double x) const {
  const double wc = params_.contact_softness;
  return params_.contact_k * sw() * wc *
         softplus((x - params_.gap0) / wc);
}

double Nemfet::gate_capacitance(double x) const {
  const double d = air_gap(x) + params_.tox / params_.eps_ox;
  return phys::kEps0 * params_.area * sw() / d;
}

Nemfet::ChannelEval Nemfet::eval_channel(double vgs, double vds,
                                         double x) const {
  // Gate-coupling divider: alpha = C_ox / C_stack(x) >= 1.
  const double t_eq = params_.tox / params_.eps_ox;
  const double ga = air_gap(x);
  const double alpha = (t_eq + ga) / t_eq;
  const double dga_dx = -sigmoid((params_.gap0 - x) / params_.gap_softness);
  const double dalpha_dx = dga_dx / t_eq;

  ekv::ChannelBias bias{vgs, vds};
  ekv::ChannelParams cp;
  cp.vth = params_.vth_ch + vth_shift_.get() +
           params_.dvth_per_alpha * (alpha - 1.0);
  cp.n = params_.n_ch * alpha;
  cp.kp = params_.kp;
  cp.w_over_l = w_.get() / params_.l_ch;
  cp.lambda = params_.lambda;
  cp.eta = params_.eta_dibl;
  cp.vt = phys::thermal_voltage(params_.temp);
  const ekv::ChannelResult r = ekv::evaluate(bias, cp);

  ChannelEval out;
  const double gfloor = params_.goff * w_.get();
  out.id = r.id + gfloor * vds;
  out.gm = r.gm;
  out.gds = r.gds + gfloor;
  const double dvth_dx = params_.dvth_per_alpha * dalpha_dx;
  const double dn_dx = params_.n_ch * dalpha_dx;
  out.did_dx = r.did_dvth * dvth_dx + r.did_dn * dn_dx;
  return out;
}

void Nemfet::channel_gradients(double vgs, double vds, double x, double& id,
                               double& gm, double& gds,
                               double& did_dx) const {
  require(vds >= 0.0, "channel_gradients: canonical polarity requires vds >= 0");
  const ChannelEval e = eval_channel(vgs, vds, x);
  id = e.id;
  gm = e.gm;
  gds = e.gds;
  did_dx = e.did_dx;
}

double Nemfet::drain_current(double vgs, double vds, double x) const {
  if (vds < 0.0) {
    return -eval_channel(vgs - vds, -vds, x).id;
  }
  return eval_channel(vgs, vds, x).id;
}

Nemfet::StaticEq Nemfet::static_equilibrium(double v_abs) const {
  const double k = params_.spring_k * sw();
  auto residual = [&](double x) {
    return k * x + contact_force(x) - electrostatic_force(v_abs, x);
  };
  auto residual_slope = [&](double x) {
    const double d = air_gap(x) + params_.tox / params_.eps_ox;
    const double fe = electrostatic_force(v_abs, x);
    const double dga = -sigmoid((params_.gap0 - x) / params_.gap_softness);
    const double dfe = -2.0 * fe / d * dga;
    const double dfc = params_.contact_k * sw() *
                       sigmoid((x - params_.gap0) / params_.contact_softness);
    return k + dfc - dfe;
  };

  // Upper scan bound: walk past the contact stop until the stiff stop
  // spring dominates and the residual is positive.
  double x_hi = params_.gap0;
  for (int i = 0; i < 200 && residual(x_hi) <= 0.0; ++i) {
    x_hi += 0.05 * params_.gap0;
  }

  // Scan for stable roots: residual sign changes from - to +.
  constexpr int kScanPoints = 256;
  std::vector<double> stable_roots;
  double x_prev = 0.0;
  double r_prev = residual(0.0);
  if (r_prev == 0.0) stable_roots.push_back(0.0);  // exactly unbiased
  for (int i = 1; i <= kScanPoints; ++i) {
    const double xx = x_hi * static_cast<double>(i) / kScanPoints;
    const double rr = residual(xx);
    if (r_prev < 0.0 && rr >= 0.0) {
      // Bisection refinement of the bracketed stable root.
      double lo = x_prev, hi = xx;
      for (int it = 0; it < 80; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (residual(mid) < 0.0) lo = mid; else hi = mid;
      }
      stable_roots.push_back(0.5 * (lo + hi));
    }
    x_prev = xx;
    r_prev = rr;
  }

  StaticEq eq;
  if (stable_roots.empty()) {
    // v_abs == 0 and no deflection: the trivial equilibrium.
    eq.x = 0.0;
    eq.dx_dv = 0.0;
    return eq;
  }
  // Branch memory: stay on the branch the beam currently occupies.
  eq.x = stable_roots.front();
  for (double root : stable_roots) {
    if (std::abs(root - x_state_) < std::abs(eq.x - x_state_)) eq.x = root;
  }
  // Implicit-function derivative dx/d|v| = (dFe/d|v|) / r'(x); r' > 0 on
  // a stable branch, clamped away from the fold singularity.
  const double d = air_gap(eq.x) + params_.tox / params_.eps_ox;
  const double a = params_.area * sw();
  const double dfe_dv = phys::kEps0 * a * v_abs / (d * d);
  const double slope = std::max(residual_slope(eq.x), 1e-3 * k);
  eq.dx_dv = dfe_dv / slope;
  return eq;
}

void Nemfet::setup(spice::SetupContext& ctx) {
  // Displacement: meters; velocity: meters/second.  Row units: the x-row
  // is the kinematic equation (m/s in transient, m/s in DC where it pins
  // v = 0 ... volts-free), the v-row is the force balance (newtons).
  ux_ = ctx.add_internal(name() + ".x", /*abstol=*/1e-13,
                         /*row_abstol=*/1e-4,
                         /*max_newton_step=*/params_.gap0 * 0.25,
                         /*initial_guess=*/initial_position_);
  uv_ = ctx.add_internal(name() + ".v", /*abstol=*/1e-6,
                         /*row_abstol=*/1e-15 * std::max(1.0, sw()),
                         /*max_newton_step=*/0.0,
                         /*initial_guess=*/0.0);
}

void Nemfet::stamp(spice::StampContext& ctx) const {
  const double sign = polarity_ == NemsPolarity::kN ? 1.0 : -1.0;
  const double x = ctx.x(ux_);
  const double vel = ctx.x(uv_);

  // ---- Channel current (canonical polarity with source/drain swap) ----
  spice::NodeId nd = d_;
  spice::NodeId ns = s_;
  double vds = sign * (ctx.v(nd) - ctx.v(ns));
  if (vds < 0.0) {
    std::swap(nd, ns);
    vds = -vds;
  }
  const double vgs = sign * (ctx.v(g_) - ctx.v(ns));
  const ChannelEval ch = eval_channel(vgs, vds, x);

  ctx.add_f(nd, sign * ch.id);
  ctx.add_f(ns, -sign * ch.id);
  ctx.add_J(nd, g_, ch.gm);
  ctx.add_J(nd, nd, ch.gds);
  ctx.add_J(nd, ns, -(ch.gm + ch.gds));
  ctx.add_J(ns, g_, -ch.gm);
  ctx.add_J(ns, nd, -ch.gds);
  ctx.add_J(ns, ns, ch.gm + ch.gds);
  ctx.add_J(nd, ux_, sign * ch.did_dx);
  ctx.add_J(ns, ux_, -sign * ch.did_dx);

  // ---- Mechanics (actuation voltage = beam-to-source) ----
  const double vgf = sign * (ctx.v(g_) - ctx.v(ns));

  if (ctx.mode() == spice::AnalysisMode::kDcOperatingPoint) {
    // Velocity is zero in statics.
    ctx.add_f(ux_, vel);
    ctx.add_J(ux_, uv_, 1.0);

    // Pin x to the stable static-equilibrium branch (see the helper's
    // comment: raw Newton cannot cross the pull-in fold).  Row:
    //   x - x_dc(|vgf|) = 0.
    const StaticEq eq = static_equilibrium(std::abs(vgf));
    const double dsign = sign * (vgf >= 0.0 ? 1.0 : -1.0);
    ctx.add_f(uv_, x - eq.x);
    ctx.add_J(uv_, ux_, 1.0);
    ctx.add_J(uv_, g_, -eq.dx_dv * dsign);
    ctx.add_J(uv_, ns, eq.dx_dv * dsign);
  } else {
    const double d_el = air_gap(x) + params_.tox / params_.eps_ox;
    const double a = params_.area * sw();
    const double fe = 0.5 * phys::kEps0 * a * vgf * vgf / (d_el * d_el);
    const double dga_dx = -sigmoid((params_.gap0 - x) / params_.gap_softness);
    const double dfe_dx = -2.0 * fe / d_el * dga_dx;
    const double dfe_dvgf = phys::kEps0 * a * vgf / (d_el * d_el);

    const double k = params_.spring_k * sw();
    const double fc = contact_force(x);
    const double dfc_dx =
        params_.contact_k * sw() *
        sigmoid((x - params_.gap0) / params_.contact_softness);

    // Backward Euler on the beam ODE (numerically damped: no spurious
    // contact bounce from trapezoidal ringing).
    const double dt = ctx.dt();
    // Kinematics: (x - x0)/dt - v = 0.
    ctx.add_f(ux_, (x - x_state_) / dt - vel);
    ctx.add_J(ux_, ux_, 1.0 / dt);
    ctx.add_J(ux_, uv_, -1.0);

    // Momentum: m (v - v0)/dt + c v + k x + Fc - Fe = 0.
    const double m = params_.mass * sw();
    const double c = params_.damping * sw();
    ctx.add_f(uv_, m * (vel - v_state_) / dt + c * vel + k * x + fc - fe);
    ctx.add_J(uv_, uv_, m / dt + c);
    ctx.add_J(uv_, ux_, k + dfc_dx - dfe_dx);
    ctx.add_J(uv_, g_, -dfe_dvgf * sign);
    ctx.add_J(uv_, ns, dfe_dvgf * sign);
  }

  // ---- Capacitances ----
  cg_gap_.stamp(ctx, g_, s_);
  cgs_ov_.stamp(ctx, g_, s_);
  cgd_ov_.stamp(ctx, g_, d_);
  cdb_.stamp(ctx, d_, spice::kGround);
  csb_.stamp(ctx, s_, spice::kGround);
}

void Nemfet::kernel_descriptor(const spice::KernelLayout& layout,
                               spice::KernelDescriptor& out) const {
  out.supported = true;
  out.bucket = "nemfet";
  out.batch = &spice::kernel_batch_eval<Nemfet>;
  out.roles = 5;
  out.role_unknowns = {layout.of(d_), layout.of(g_), layout.of(s_),
                       spice::KernelLayout::of(ux_),
                       spice::KernelLayout::of(uv_)};
  // Channel rows (drain/source under the symmetric swap) couple to all
  // three terminals and the beam position; the gate row only carries the
  // companion caps; the mechanical rows couple to themselves and to the
  // actuation terminals.
  for (int e : {0, 2}) {
    for (int v : {0, 1, 2, 3}) out.add_j(e, v);
  }
  out.add_j(1, 0);
  out.add_j(1, 1);
  out.add_j(1, 2);
  out.add_j(3, 3);
  out.add_j(3, 4);
  out.add_j(4, 0);
  out.add_j(4, 1);
  out.add_j(4, 2);
  out.add_j(4, 3);
  out.add_j(4, 4);
}

void Nemfet::kernel_eval(const spice::KernelSink& kk) const {
  const double sign = polarity_ == NemsPolarity::kN ? 1.0 : -1.0;
  const double x = kk.xr(3);
  const double vel = kk.xr(4);

  // Channel current, mirroring stamp() with roles 0 = d, 1 = g, 2 = s.
  int nd = 0, ns = 2;
  double vds = sign * (kk.xr(nd) - kk.xr(ns));
  if (vds < 0.0) {
    std::swap(nd, ns);
    vds = -vds;
  }
  const double vgs = sign * (kk.xr(1) - kk.xr(ns));
  const ChannelEval ch = eval_channel(vgs, vds, x);

  kk.f(nd, sign * ch.id);
  kk.f(ns, -sign * ch.id);
  kk.J(nd, 1, ch.gm);
  kk.J(nd, nd, ch.gds);
  kk.J(nd, ns, -(ch.gm + ch.gds));
  kk.J(ns, 1, -ch.gm);
  kk.J(ns, nd, -ch.gds);
  kk.J(ns, ns, ch.gm + ch.gds);
  kk.J(nd, 3, sign * ch.did_dx);
  kk.J(ns, 3, -sign * ch.did_dx);

  const double vgf = sign * (kk.xr(1) - kk.xr(ns));

  if (kk.dc()) {
    kk.f(3, vel);
    kk.J(3, 4, 1.0);

    const StaticEq eq = static_equilibrium(std::abs(vgf));
    const double dsign = sign * (vgf >= 0.0 ? 1.0 : -1.0);
    kk.f(4, x - eq.x);
    kk.J(4, 3, 1.0);
    kk.J(4, 1, -eq.dx_dv * dsign);
    kk.J(4, ns, eq.dx_dv * dsign);
  } else {
    const double d_el = air_gap(x) + params_.tox / params_.eps_ox;
    const double a = params_.area * sw();
    const double fe = 0.5 * phys::kEps0 * a * vgf * vgf / (d_el * d_el);
    const double dga_dx = -sigmoid((params_.gap0 - x) / params_.gap_softness);
    const double dfe_dx = -2.0 * fe / d_el * dga_dx;
    const double dfe_dvgf = phys::kEps0 * a * vgf / (d_el * d_el);

    const double k = params_.spring_k * sw();
    const double fc = contact_force(x);
    const double dfc_dx =
        params_.contact_k * sw() *
        sigmoid((x - params_.gap0) / params_.contact_softness);

    const double dt = kk.dt();
    kk.f(3, (x - x_state_) / dt - vel);
    kk.J(3, 3, 1.0 / dt);
    kk.J(3, 4, -1.0);

    const double m = params_.mass * sw();
    const double c = params_.damping * sw();
    kk.f(4, m * (vel - v_state_) / dt + c * vel + k * x + fc - fe);
    kk.J(4, 4, m / dt + c);
    kk.J(4, 3, k + dfc_dx - dfe_dx);
    kk.J(4, 1, -dfe_dvgf * sign);
    kk.J(4, ns, dfe_dvgf * sign);
  }

  cg_gap_.kernel_stamp(kk, 1, 2);
  cgs_ov_.kernel_stamp(kk, 1, 2);
  cgd_ov_.kernel_stamp(kk, 1, 0);
  cdb_.kernel_stamp(kk, 0, -1);
  csb_.kernel_stamp(kk, 2, -1);
}

void Nemfet::begin_step(double time, double dt) {
  (void)time;
  (void)dt;
  // History (x_state_, v_state_) is the accepted state; nothing else to
  // capture, and repeated calls with shrinking dt are naturally safe.
}

bool Nemfet::bypass_signature(std::vector<double>& out) const {
  // Beam history drives both the transient mechanics rows and the DC
  // branch memory of static_equilibrium; the cg_gap_ companion also
  // carries the position-dependent capacitance.
  out.push_back(w_.get());
  out.push_back(vth_shift_.get());
  out.push_back(x_state_);
  out.push_back(v_state_);
  cg_gap_.append_signature(out);
  cgs_ov_.append_signature(out);
  cgd_ov_.append_signature(out);
  cdb_.append_signature(out);
  csb_.append_signature(out);
  return true;
}

void Nemfet::accept_step(const spice::AcceptContext& ctx) {
  x_state_ = ctx.x(ux_);
  v_state_ = ctx.x(uv_);
  // Quasi-static update of the moving-plate capacitor.
  cg_gap_.set_capacitance(gate_capacitance(x_state_));
  cg_gap_.accept(ctx, ctx.v(g_) - ctx.v(s_));
  cgs_ov_.accept(ctx, ctx.v(g_) - ctx.v(s_));
  cgd_ov_.accept(ctx, ctx.v(g_) - ctx.v(d_));
  cdb_.accept(ctx, ctx.v(d_));
  csb_.accept(ctx, ctx.v(s_));
}

void Nemfet::reset_state() {
  x_state_ = initial_position_;
  v_state_ = 0.0;
  cg_gap_.reset();
  cg_gap_.set_capacitance(gate_capacitance(x_state_));
  cgs_ov_.reset();
  cgd_ov_.reset();
  cdb_.reset();
  csb_.reset();
}

void Nemfet::notify_discontinuity() {
  cg_gap_.discontinuity();
  cgs_ov_.discontinuity();
  cgd_ov_.discontinuity();
  cdb_.discontinuity();
  csb_.discontinuity();
}

void Nemfet::stamp_ac(spice::AcStampContext& ctx) const {
  const double sign = polarity_ == NemsPolarity::kN ? 1.0 : -1.0;
  const double x = ctx.x(ux_);

  // ---- Channel small-signal (same swap rules as the transient stamp) --
  spice::NodeId nd = d_;
  spice::NodeId ns = s_;
  double vds = sign * (ctx.v(nd) - ctx.v(ns));
  if (vds < 0.0) {
    std::swap(nd, ns);
    vds = -vds;
  }
  const double vgs = sign * (ctx.v(g_) - ctx.v(ns));
  const ChannelEval ch = eval_channel(vgs, vds, x);

  ctx.add_G(nd, g_, ch.gm);
  ctx.add_G(nd, nd, ch.gds);
  ctx.add_G(nd, ns, -(ch.gm + ch.gds));
  ctx.add_G(ns, g_, -ch.gm);
  ctx.add_G(ns, nd, -ch.gds);
  ctx.add_G(ns, ns, ch.gm + ch.gds);
  ctx.add_G(nd, ux_, sign * ch.did_dx);
  ctx.add_G(ns, ux_, -sign * ch.did_dx);

  // ---- Mechanics: x' - v = 0 and m v' + c v + k x + Fc - Fe = 0 -------
  const double vgf = sign * (ctx.v(g_) - ctx.v(ns));
  const double d_el = air_gap(x) + params_.tox / params_.eps_ox;
  const double a = params_.area * sw();
  const double fe = 0.5 * phys::kEps0 * a * vgf * vgf / (d_el * d_el);
  const double dga_dx = -sigmoid((params_.gap0 - x) / params_.gap_softness);
  const double dfe_dx = -2.0 * fe / d_el * dga_dx;
  const double dfe_dvgf = phys::kEps0 * a * vgf / (d_el * d_el);
  const double k = params_.spring_k * sw();
  const double dfc_dx = params_.contact_k * sw() *
                        sigmoid((x - params_.gap0) / params_.contact_softness);

  ctx.add_C(ux_, ux_, 1.0);
  ctx.add_G(ux_, uv_, -1.0);

  ctx.add_C(uv_, uv_, params_.mass * sw());
  ctx.add_G(uv_, uv_, params_.damping * sw());
  ctx.add_G(uv_, ux_, k + dfc_dx - dfe_dx);
  ctx.add_G(uv_, g_, -dfe_dvgf * sign);
  ctx.add_G(uv_, ns, dfe_dvgf * sign);

  // ---- Capacitances at the bias position ------------------------------
  ctx.stamp_capacitance(g_, s_, gate_capacitance(x) + params_.cov * w_.get());
  ctx.stamp_capacitance(g_, d_, params_.cov * w_.get());
  ctx.stamp_capacitance(d_, spice::kGround, params_.cj * w_.get());
  ctx.stamp_capacitance(s_, spice::kGround, params_.cj * w_.get());
}

spice::DeviceTopology Nemfet::topology() const {
  using EdgeKind = spice::DeviceTopology::EdgeKind;
  spice::DeviceTopology topo;
  topo.element_letter = 'X';
  const std::size_t d = topo.add_terminal("drain", d_);
  const std::size_t g = topo.add_terminal("gate", g_);
  const std::size_t s = topo.add_terminal("source", s_);
  const std::size_t b = topo.add_terminal("bulk", spice::kGround);
  // The tunneling/Brownian floor (goff) keeps the channel conductive
  // even with the beam up, so drain-source is a real DC path.  The
  // magnitude is the representative on-state conductance ~ KP W/L.
  topo.add_edge(EdgeKind::kConductive, d, s).magnitude =
      params_.kp * w_.get() / params_.l_ch;
  topo.add_edge(EdgeKind::kCapacitive, g, s).magnitude =  // stack + overlap
      gate_capacitance(x_state_) + params_.cov * w_.get();
  topo.add_edge(EdgeKind::kCapacitive, g, d).magnitude =  // overlap
      params_.cov * w_.get();
  topo.add_edge(EdgeKind::kCapacitive, d, b).magnitude = params_.cj * w_.get();
  topo.add_edge(EdgeKind::kCapacitive, s, b).magnitude = params_.cj * w_.get();
  return topo;
}

void Nemfet::interval_transfer(const analyze::IntervalSet& nodes,
                               std::vector<analyze::NodeClaim>& out) const {
  // Like the MOSFET channel: passive drain-source path (EKV + goff
  // floor), gate couples only through the beam capacitances.
  out.push_back({d_, nodes.at(s_), analyze::NodeClaim::Kind::kNeighbor});
  out.push_back({s_, nodes.at(d_), analyze::NodeClaim::Kind::kNeighbor});
}

void Nemfet::interval_check(const analyze::IntervalSet& nodes,
                            std::vector<analyze::RegionVerdict>& out) const {
  // Actuation magnitude |vgf| = |v(gate) - v(source)| with the canonical
  // source picked by the drain/source swap.  Which terminal ends up as
  // source depends on the solution, so bound over both pairings: the
  // true |vgf| can never exceed the larger upper bound nor fall below
  // the smaller lower bound.
  const analyze::Interval agd = (nodes.at(g_) - nodes.at(d_)).abs();
  const analyze::Interval ags = (nodes.at(g_) - nodes.at(s_)).abs();
  const double v_abs_hi = std::max(agd.hi, ags.hi);
  const double v_abs_lo = std::min(agd.lo, ags.lo);

  const double vpi = params_.analytic_pull_in_voltage();
  const double vpo = params_.analytic_pull_out_voltage();
  // The softplus-smoothed gap/contact forces shift the fold a few
  // percent off the parallel-plate analytics; 10 % guard bands keep the
  // verdicts sound against that modeling gap.
  const double pull_in_floor = 0.9 * vpi;
  const double hold_ceiling = 1.1 * vpo;
  const bool open0 = initial_position_ < 0.5 * params_.gap0;
  const double half_gap = 0.5 * params_.gap0;
  const double inf = std::numeric_limits<double>::infinity();

  if (open0 && std::isfinite(v_abs_hi) && v_abs_hi < pull_in_floor) {
    std::ostringstream msg;
    msg << "actuation |v(gate)-v(source)| is confined to [" << v_abs_lo
        << ", " << v_abs_hi << "] V, always below 0.9 * V_PI = "
        << pull_in_floor << " V (analytic pull-in " << vpi
        << " V) with the beam starting open: the beam can never pull in "
        << "and the channel stays on its deeply-off branch — raise the "
        << "gate swing or soften the spring";
    out.push_back({name(), "nemfet-never-actuates", msg.str(),
                   lint::LintSeverity::kWarning, name() + ".x",
                   analyze::Interval{-inf, half_gap}});
  } else if (v_abs_lo > 1.1 * (open0 ? std::max(vpi, vpo) : vpo)) {
    std::ostringstream msg;
    msg << "actuation |v(gate)-v(source)| never falls below " << v_abs_lo
        << " V, above 1.1 * " << (open0 ? "max(V_PI, V_PO)" : "V_PO")
        << " = " << 1.1 * (open0 ? std::max(vpi, vpo) : vpo)
        << " V (analytic pull-out " << vpo << " V): the beam "
        << (open0 ? "pulls in at the first solve and " : "")
        << "can never release — the device is a closed switch, not a "
        << "switch";
    out.push_back({name(), "nemfet-never-releases", msg.str(),
                   lint::LintSeverity::kWarning, name() + ".x",
                   analyze::Interval{half_gap, inf}});
  }

  if (std::isfinite(v_abs_hi) && v_abs_lo > hold_ceiling &&
      v_abs_hi < pull_in_floor) {
    std::ostringstream msg;
    msg << "actuation |v(gate)-v(source)| stays inside the hysteresis "
        << "window (1.1 * V_PO, 0.9 * V_PI) = (" << hold_ceiling << ", "
        << pull_in_floor << ") V: both beam branches remain stable, so "
        << "the device latches whichever branch it started on ("
        << (open0 ? "open" : "closed")
        << ") and no input in this deck can toggle it";
    out.push_back({name(), "nemfet-hysteresis-latched", msg.str(),
                   lint::LintSeverity::kHint, "", {}});
  }
}

void Nemfet::self_check(const lint::DeviceCheckContext& ctx,
                        std::vector<lint::LintFinding>& out) const {
  // Positivity is enforced at construction; these are the constructible-
  // but-out-of-NEMS-range values (paper regime: nm gaps, N/m springs,
  // attogram beams).
  if (params_.gap0 > 1e-6) {
    std::ostringstream msg;
    msg << "rest air gap GAP0 = " << params_.gap0
        << " m exceeds 1 um; NEMS gaps are nanometers — a unit suffix "
        << "was likely dropped";
    out.push_back({lint::LintSeverity::kWarning, "nonphysical-parameter", "",
                   msg.str()});
  }
  if (params_.spring_k > 1e5) {
    std::ostringstream msg;
    msg << "beam stiffness K = " << params_.spring_k
        << " N/m exceeds 100 kN/m; suspended-beam stiffness is of order "
        << "1..100 N/m";
    out.push_back({lint::LintSeverity::kWarning, "nonphysical-parameter", "",
                   msg.str()});
  }
  if (params_.mass > 1e-12) {
    std::ostringstream msg;
    msg << "beam mass M = " << params_.mass
        << " kg exceeds 1 ng; NEMS beams weigh atto- to femtograms";
    out.push_back({lint::LintSeverity::kWarning, "nonphysical-parameter", "",
                   msg.str()});
  }
  if (params_.temp <= 0.0) {
    std::ostringstream msg;
    msg << "temperature " << params_.temp << " K is non-positive; the "
        << "thermal voltage is undefined";
    out.push_back({lint::LintSeverity::kWarning, "nonphysical-parameter", "",
                   msg.str()});
  }
  const double vpi = params_.analytic_pull_in_voltage();
  if (ctx.supply_rail > 0.0 && vpi > ctx.supply_rail) {
    std::ostringstream msg;
    msg << "analytic pull-in voltage " << vpi
        << " V exceeds the largest supply magnitude " << ctx.supply_rail
        << " V: the beam can never actuate and the device is stuck in "
        << "the off branch";
    out.push_back({lint::LintSeverity::kWarning, "pull-in-above-rail", "",
                   msg.str()});
  }
}

std::string Nemfet::netlist_line(
    const std::function<std::string(spice::NodeId)>& node_namer) const {
  std::ostringstream os;
  os << name() << " " << node_namer(d_) << " " << node_namer(g_) << " "
     << node_namer(s_) << " "
     << (polarity_ == NemsPolarity::kN ? "NEMFET_N" : "NEMFET_P")
     << " W=" << w_.get() << " GAP0=" << params_.gap0 << " K=" << params_.spring_k
     << " M=" << params_.mass << " VPI="
     << params_.analytic_pull_in_voltage();
  return os.str();
}

}  // namespace nemsim::devices
