#include "nemsim/devices/passives.h"

#include <sstream>

#include "nemsim/spice/ac.h"
#include "nemsim/util/error.h"

namespace nemsim::devices {

using spice::AnalysisMode;

// -------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, spice::NodeId p, spice::NodeId n,
                   double resistance)
    : Device(std::move(name)), p_(p), n_(n), r_(resistance) {
  require(resistance > 0.0, "Resistor: resistance must be positive");
}

void Resistor::set_resistance(double r) {
  require(r > 0.0, "Resistor: resistance must be positive");
  r_.set(r);
}

void Resistor::bind_params(spice::ParamBank& bank) {
  r_.bind(bank, "r.resistance", name());
}

void Resistor::stamp_ac(spice::AcStampContext& ctx) const {
  ctx.stamp_conductance(p_, n_, 1.0 / r_.get());
}

std::string Resistor::netlist_line(
    const std::function<std::string(spice::NodeId)>& node_namer) const {
  return name() + " " + node_namer(p_) + " " + node_namer(n_) + " " +
         std::to_string(r_.get());
}

spice::DeviceTopology Resistor::topology() const {
  spice::DeviceTopology topo;
  topo.element_letter = 'R';
  const std::size_t p = topo.add_terminal("p", p_);
  const std::size_t n = topo.add_terminal("n", n_);
  topo.add_edge(spice::DeviceTopology::EdgeKind::kConductive, p, n)
      .magnitude = 1.0 / r_.get();
  return topo;
}

void Resistor::interval_transfer(const analyze::IntervalSet& nodes,
                                 std::vector<analyze::NodeClaim>& out) const {
  out.push_back({p_, nodes.at(n_), analyze::NodeClaim::Kind::kNeighbor});
  out.push_back({n_, nodes.at(p_), analyze::NodeClaim::Kind::kNeighbor});
}

void Resistor::self_check(const lint::DeviceCheckContext& ctx,
                          std::vector<lint::LintFinding>& out) const {
  (void)ctx;
  // Positivity is enforced at construction; what remains constructible
  // but non-physical are the extremes that wreck Jacobian conditioning.
  const double r = r_.get();
  if (r < 1e-3 || r > 1e12) {
    std::ostringstream msg;
    msg << "resistance " << r << " Ohm is outside the physically "
        << "sensible range [1 mOhm, 1 TOhm]; expect a near-"
        << (r < 1e-3 ? "short" : "open")
        << " and poor Jacobian conditioning";
    out.push_back({lint::LintSeverity::kWarning, "nonphysical-parameter", "",
                   msg.str()});
  }
}

void Resistor::stamp(spice::StampContext& ctx) const {
  const double g = 1.0 / r_.get();
  const double i = g * (ctx.v(p_) - ctx.v(n_));
  ctx.add_f(p_, i);
  ctx.add_f(n_, -i);
  ctx.add_J(p_, p_, g);
  ctx.add_J(p_, n_, -g);
  ctx.add_J(n_, p_, -g);
  ctx.add_J(n_, n_, g);
}

void Resistor::kernel_descriptor(const spice::KernelLayout& layout,
                                 spice::KernelDescriptor& out) const {
  out.supported = true;
  out.bucket = "resistor";
  out.batch = &spice::kernel_batch_eval<Resistor>;
  out.roles = 2;
  out.role_unknowns = {layout.of(p_), layout.of(n_)};
  for (int e = 0; e < 2; ++e) {
    for (int v = 0; v < 2; ++v) out.add_j(e, v);
  }
}

void Resistor::kernel_eval(const spice::KernelSink& k) const {
  const double g = 1.0 / r_.get();
  const double i = g * (k.xr(0) - k.xr(1));
  k.f(0, i);
  k.f(1, -i);
  k.J(0, 0, g);
  k.J(0, 1, -g);
  k.J(1, 0, -g);
  k.J(1, 1, g);
}

// ------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, spice::NodeId p, spice::NodeId n,
                     double capacitance)
    : Device(std::move(name)),
      p_(p),
      n_(n),
      c_(capacitance),
      companion_(capacitance) {
  require(capacitance >= 0.0, "Capacitor: capacitance must be non-negative");
}

void Capacitor::bind_params(spice::ParamBank& bank) {
  c_.bind(bank, "c.capacitance", name());
}

void Capacitor::stamp_ac(spice::AcStampContext& ctx) const {
  ctx.stamp_capacitance(p_, n_, companion_.capacitance());
}

std::string Capacitor::netlist_line(
    const std::function<std::string(spice::NodeId)>& node_namer) const {
  std::ostringstream os;
  os << name() << " " << node_namer(p_) << " " << node_namer(n_) << " "
     << companion_.capacitance();
  return os.str();
}

spice::DeviceTopology Capacitor::topology() const {
  spice::DeviceTopology topo;
  topo.element_letter = 'C';
  const std::size_t p = topo.add_terminal("p", p_);
  const std::size_t n = topo.add_terminal("n", n_);
  topo.add_edge(spice::DeviceTopology::EdgeKind::kCapacitive, p, n)
      .magnitude = companion_.capacitance();
  return topo;
}

void Capacitor::self_check(const lint::DeviceCheckContext& ctx,
                           std::vector<lint::LintFinding>& out) const {
  (void)ctx;
  const double c = companion_.capacitance();
  if (c == 0.0) {
    out.push_back({lint::LintSeverity::kWarning, "nonphysical-parameter", "",
                   "capacitance is exactly 0 F: the device stamps nothing "
                   "and contributes no dynamics"});
  } else if (c > 1.0) {
    std::ostringstream msg;
    msg << "capacitance " << c << " F exceeds 1 F; on-chip values are "
        << "femtofarads to picofarads — a unit suffix was likely dropped";
    out.push_back({lint::LintSeverity::kWarning, "nonphysical-parameter", "",
                   msg.str()});
  }
}

void Capacitor::stamp(spice::StampContext& ctx) const {
  companion_.stamp(ctx, p_, n_);
}

void Capacitor::kernel_descriptor(const spice::KernelLayout& layout,
                                  spice::KernelDescriptor& out) const {
  out.supported = true;
  out.bucket = "capacitor";
  out.batch = &spice::kernel_batch_eval<Capacitor>;
  out.roles = 2;
  out.role_unknowns = {layout.of(p_), layout.of(n_)};
  for (int e = 0; e < 2; ++e) {
    for (int v = 0; v < 2; ++v) out.add_j(e, v);
  }
}

void Capacitor::accept_step(const spice::AcceptContext& ctx) {
  companion_.accept(ctx, ctx.v(p_) - ctx.v(n_));
}

void Capacitor::reset_state() { companion_.reset(); }

void Capacitor::notify_discontinuity() { companion_.discontinuity(); }

// -------------------------------------------------------------- Inductor

Inductor::Inductor(std::string name, spice::NodeId p, spice::NodeId n,
                   double inductance)
    : Device(std::move(name)), p_(p), n_(n), l_(inductance) {
  require(inductance > 0.0, "Inductor: inductance must be positive");
}

void Inductor::stamp_ac(spice::AcStampContext& ctx) const {
  ctx.add_G(p_, branch_, 1.0);
  ctx.add_G(n_, branch_, -1.0);
  // KVL row: v_p - v_n - L di/dt = 0.
  ctx.add_G(branch_, p_, 1.0);
  ctx.add_G(branch_, n_, -1.0);
  ctx.add_C(branch_, branch_, -l_);
}

std::string Inductor::netlist_line(
    const std::function<std::string(spice::NodeId)>& node_namer) const {
  std::ostringstream os;
  os << name() << " " << node_namer(p_) << " " << node_namer(n_) << " " << l_;
  return os.str();
}

spice::DeviceTopology Inductor::topology() const {
  spice::DeviceTopology topo;
  topo.element_letter = 'L';
  const std::size_t p = topo.add_terminal("p", p_);
  const std::size_t n = topo.add_terminal("n", n_);
  // An inductor is a DC short: a voltage-defined branch for loop checks.
  topo.add_edge(spice::DeviceTopology::EdgeKind::kVoltage, p, n).magnitude =
      l_;
  return topo;
}

void Inductor::interval_transfer(const analyze::IntervalSet& nodes,
                                 std::vector<analyze::NodeClaim>& out) const {
  // DC short: both terminals share one interval (equality relation).
  out.push_back({p_, nodes.at(n_), analyze::NodeClaim::Kind::kRelation});
  out.push_back({n_, nodes.at(p_), analyze::NodeClaim::Kind::kRelation});
}

void Inductor::self_check(const lint::DeviceCheckContext& ctx,
                          std::vector<lint::LintFinding>& out) const {
  (void)ctx;
  if (l_ < 1e-15 || l_ > 1e3) {
    std::ostringstream msg;
    msg << "inductance " << l_ << " H is outside the physically sensible "
        << "range [1 fH, 1 kH]; a unit suffix was likely dropped";
    out.push_back({lint::LintSeverity::kWarning, "nonphysical-parameter", "",
                   msg.str()});
  }
}

void Inductor::setup(spice::SetupContext& ctx) {
  branch_ = ctx.add_branch_current(name());
}

void Inductor::stamp(spice::StampContext& ctx) const {
  const double i = ctx.x(branch_);
  // KCL: branch current flows p -> n.
  ctx.add_f(p_, i);
  ctx.add_f(n_, -i);
  ctx.add_J(p_, branch_, 1.0);
  ctx.add_J(n_, branch_, -1.0);

  // Branch (KVL) row.
  const double v = ctx.v(p_) - ctx.v(n_);
  if (ctx.mode() == AnalysisMode::kDcOperatingPoint) {
    // Short circuit: v = 0.
    ctx.add_f(branch_, v);
    ctx.add_J(branch_, p_, 1.0);
    ctx.add_J(branch_, n_, -1.0);
    return;
  }
  const double dt = ctx.dt();
  if (use_be_) {
    // v = L (i - i0)/dt
    ctx.add_f(branch_, v - l_ * (i - i0_) / dt);
    ctx.add_J(branch_, p_, 1.0);
    ctx.add_J(branch_, n_, -1.0);
    ctx.add_J(branch_, branch_, -l_ / dt);
  } else {
    // (v + v0)/2 = L (i - i0)/dt
    ctx.add_f(branch_, 0.5 * (v + vl0_) - l_ * (i - i0_) / dt);
    ctx.add_J(branch_, p_, 0.5);
    ctx.add_J(branch_, n_, -0.5);
    ctx.add_J(branch_, branch_, -l_ / dt);
  }
}

void Inductor::kernel_descriptor(const spice::KernelLayout& layout,
                                 spice::KernelDescriptor& out) const {
  out.supported = true;
  out.bucket = "inductor";
  out.batch = &spice::kernel_batch_eval<Inductor>;
  out.roles = 3;
  out.role_unknowns = {layout.of(p_), layout.of(n_),
                       spice::KernelLayout::of(branch_)};
  out.add_j(0, 2);
  out.add_j(1, 2);
  out.add_j(2, 0);
  out.add_j(2, 1);
  out.add_j(2, 2);
}

void Inductor::kernel_eval(const spice::KernelSink& k) const {
  const double i = k.xr(2);
  k.f(0, i);
  k.f(1, -i);
  k.J(0, 2, 1.0);
  k.J(1, 2, -1.0);

  const double v = k.xr(0) - k.xr(1);
  if (k.dc()) {
    k.f(2, v);
    k.J(2, 0, 1.0);
    k.J(2, 1, -1.0);
    return;
  }
  const double dt = k.dt();
  if (use_be_) {
    k.f(2, v - l_ * (i - i0_) / dt);
    k.J(2, 0, 1.0);
    k.J(2, 1, -1.0);
    k.J(2, 2, -l_ / dt);
  } else {
    k.f(2, 0.5 * (v + vl0_) - l_ * (i - i0_) / dt);
    k.J(2, 0, 0.5);
    k.J(2, 1, -0.5);
    k.J(2, 2, -l_ / dt);
  }
}

void Inductor::accept_step(const spice::AcceptContext& ctx) {
  i0_ = ctx.x(branch_);
  if (ctx.mode() == AnalysisMode::kDcOperatingPoint) {
    vl0_ = 0.0;
    use_be_ = true;
    return;
  }
  vl0_ = ctx.v(p_) - ctx.v(n_);
  use_be_ = false;
}

void Inductor::reset_state() {
  i0_ = 0.0;
  vl0_ = 0.0;
  use_be_ = true;
}

void Inductor::notify_discontinuity() { use_be_ = true; }

}  // namespace nemsim::devices
