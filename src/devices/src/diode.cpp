#include "nemsim/devices/diode.h"

#include <cmath>

#include <sstream>

#include "nemsim/spice/ac.h"
#include "nemsim/util/error.h"
#include "nemsim/util/units.h"

namespace nemsim::devices {

Diode::Diode(std::string name, spice::NodeId anode, spice::NodeId cathode,
             DiodeParams params)
    : Device(std::move(name)), anode_(anode), cathode_(cathode),
      params_(params) {
  require(params_.is > 0.0, "Diode: Is must be positive");
  require(params_.n > 0.0, "Diode: ideality must be positive");
}

void Diode::evaluate(double v, double& i, double& g) const {
  const double nvt = params_.n * phys::thermal_voltage(params_.temp);
  const double arg = v / nvt;
  constexpr double kMaxArg = 40.0;
  if (arg <= kMaxArg) {
    const double e = std::exp(arg);
    i = params_.is * (e - 1.0);
    g = params_.is * e / nvt;
  } else {
    // Linear continuation: value and slope continuous at kMaxArg.
    const double e = std::exp(kMaxArg);
    g = params_.is * e / nvt;
    i = params_.is * (e - 1.0) + g * (v - kMaxArg * nvt);
  }
  i += params_.gmin_shunt * v;
  g += params_.gmin_shunt;
}

void Diode::stamp(spice::StampContext& ctx) const {
  const double v = ctx.v(anode_) - ctx.v(cathode_);
  double i = 0.0, g = 0.0;
  evaluate(v, i, g);
  ctx.add_f(anode_, i);
  ctx.add_f(cathode_, -i);
  ctx.add_J(anode_, anode_, g);
  ctx.add_J(anode_, cathode_, -g);
  ctx.add_J(cathode_, anode_, -g);
  ctx.add_J(cathode_, cathode_, g);
}

void Diode::kernel_descriptor(const spice::KernelLayout& layout,
                              spice::KernelDescriptor& out) const {
  out.supported = true;
  out.bucket = "diode";
  out.batch = &spice::kernel_batch_eval<Diode>;
  out.roles = 2;
  out.role_unknowns = {layout.of(anode_), layout.of(cathode_)};
  for (int e = 0; e < 2; ++e) {
    for (int v = 0; v < 2; ++v) out.add_j(e, v);
  }
}

void Diode::kernel_eval(const spice::KernelSink& k) const {
  const double v = k.xr(0) - k.xr(1);
  double i = 0.0, g = 0.0;
  evaluate(v, i, g);
  k.f(0, i);
  k.f(1, -i);
  k.J(0, 0, g);
  k.J(0, 1, -g);
  k.J(1, 0, -g);
  k.J(1, 1, g);
}

void Diode::stamp_ac(spice::AcStampContext& ctx) const {
  const double v = ctx.v(anode_) - ctx.v(cathode_);
  double i = 0.0, g = 0.0;
  evaluate(v, i, g);
  ctx.stamp_conductance(anode_, cathode_, g);
}

spice::DeviceTopology Diode::topology() const {
  spice::DeviceTopology topo;
  topo.element_letter = 'D';
  const std::size_t a = topo.add_terminal("anode", anode_);
  const std::size_t c = topo.add_terminal("cathode", cathode_);
  // Representative small-signal conductance near zero bias: the shunt
  // plus the junction slope Is/(n vt).
  topo.add_edge(spice::DeviceTopology::EdgeKind::kConductive, a, c)
      .magnitude = params_.gmin_shunt +
                   params_.is / (params_.n *
                                 phys::thermal_voltage(params_.temp));
  return topo;
}

void Diode::interval_transfer(const analyze::IntervalSet& nodes,
                              std::vector<analyze::NodeClaim>& out) const {
  // Passive edge: sign(i) = sign(v), so each terminal obeys the maximum
  // principle against the other.
  out.push_back(
      {anode_, nodes.at(cathode_), analyze::NodeClaim::Kind::kNeighbor});
  out.push_back(
      {cathode_, nodes.at(anode_), analyze::NodeClaim::Kind::kNeighbor});
}

void Diode::interval_check(const analyze::IntervalSet& nodes,
                           std::vector<analyze::RegionVerdict>& out) const {
  const analyze::Interval v = nodes.at(anode_) - nodes.at(cathode_);
  // Far below a junction drop the exponential is off scale: the device
  // only ever conducts its gmin shunt.
  constexpr double kKneeVolts = 0.3;
  if (std::isfinite(v.hi) && v.hi < kKneeVolts) {
    std::ostringstream msg;
    msg << "junction voltage is confined to " << v.to_string()
        << " V, always below the ~" << kKneeVolts
        << " V knee: the diode never forward-biases and acts as a "
        << params_.gmin_shunt << " S shunt — if that is intentional, a "
        << "resistor says so more cheaply";
    out.push_back({name(), "diode-never-forward", msg.str(),
                   lint::LintSeverity::kHint, "", {}});
  }
}

void Diode::self_check(const lint::DeviceCheckContext& ctx,
                       std::vector<lint::LintFinding>& out) const {
  (void)ctx;
  if (params_.temp <= 0.0) {
    std::ostringstream msg;
    msg << "temperature " << params_.temp << " K is non-positive; the "
        << "thermal voltage is undefined and the I-V law evaluates to NaN";
    out.push_back({lint::LintSeverity::kWarning, "nonphysical-parameter", "",
                   msg.str()});
  }
  if (params_.n > 5.0) {
    std::ostringstream msg;
    msg << "ideality factor " << params_.n
        << " exceeds 5; junction diodes sit between 1 and 2";
    out.push_back({lint::LintSeverity::kWarning, "nonphysical-parameter", "",
                   msg.str()});
  }
  if (params_.gmin_shunt < 0.0) {
    std::ostringstream msg;
    msg << "gmin shunt " << params_.gmin_shunt
        << " S is negative: the convergence aid injects energy";
    out.push_back({lint::LintSeverity::kWarning, "nonphysical-parameter", "",
                   msg.str()});
  }
}

std::string Diode::netlist_line(
    const std::function<std::string(spice::NodeId)>& node_namer) const {
  std::ostringstream os;
  os << name() << " " << node_namer(anode_) << " " << node_namer(cathode_)
     << " IS=" << params_.is << " N=" << params_.n;
  return os.str();
}

}  // namespace nemsim::devices
