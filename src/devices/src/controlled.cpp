#include "nemsim/devices/controlled.h"

#include "nemsim/spice/ac.h"

#include <cmath>
#include <sstream>

namespace nemsim::devices {

Vcvs::Vcvs(std::string name, spice::NodeId p, spice::NodeId n,
           spice::NodeId cp, spice::NodeId cn, double gain)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gain_(gain) {}

void Vcvs::setup(spice::SetupContext& ctx) {
  branch_ = ctx.add_branch_current(name());
}

void Vcvs::stamp(spice::StampContext& ctx) const {
  const double i = ctx.x(branch_);
  ctx.add_f(p_, i);
  ctx.add_f(n_, -i);
  ctx.add_J(p_, branch_, 1.0);
  ctx.add_J(n_, branch_, -1.0);

  ctx.add_f(branch_,
            ctx.v(p_) - ctx.v(n_) - gain_ * (ctx.v(cp_) - ctx.v(cn_)));
  ctx.add_J(branch_, p_, 1.0);
  ctx.add_J(branch_, n_, -1.0);
  ctx.add_J(branch_, cp_, -gain_);
  ctx.add_J(branch_, cn_, gain_);
}

void Vcvs::kernel_descriptor(const spice::KernelLayout& layout,
                             spice::KernelDescriptor& out) const {
  out.supported = true;
  out.bucket = "vcvs";
  out.batch = &spice::kernel_batch_eval<Vcvs>;
  out.roles = 5;
  out.role_unknowns = {layout.of(p_), layout.of(n_), layout.of(cp_),
                       layout.of(cn_), spice::KernelLayout::of(branch_)};
  out.add_j(0, 4);
  out.add_j(1, 4);
  out.add_j(4, 0);
  out.add_j(4, 1);
  out.add_j(4, 2);
  out.add_j(4, 3);
}

void Vcvs::kernel_eval(const spice::KernelSink& k) const {
  const double i = k.xr(4);
  k.f(0, i);
  k.f(1, -i);
  k.J(0, 4, 1.0);
  k.J(1, 4, -1.0);

  k.f(4, k.xr(0) - k.xr(1) - gain_ * (k.xr(2) - k.xr(3)));
  k.J(4, 0, 1.0);
  k.J(4, 1, -1.0);
  k.J(4, 2, -gain_);
  k.J(4, 3, gain_);
}

void Vcvs::stamp_ac(spice::AcStampContext& ctx) const {
  ctx.add_G(p_, branch_, 1.0);
  ctx.add_G(n_, branch_, -1.0);
  ctx.add_G(branch_, p_, 1.0);
  ctx.add_G(branch_, n_, -1.0);
  ctx.add_G(branch_, cp_, -gain_);
  ctx.add_G(branch_, cn_, gain_);
}

spice::DeviceTopology Vcvs::topology() const {
  spice::DeviceTopology topo;
  topo.element_letter = 'E';
  const std::size_t p = topo.add_terminal("p", p_);
  const std::size_t n = topo.add_terminal("n", n_);
  // Control terminals sense voltage only — they provide no branch, so a
  // node touched only by them is correctly reported floating.
  topo.add_terminal("cp", cp_);
  topo.add_terminal("cn", cn_);
  topo.add_edge(spice::DeviceTopology::EdgeKind::kVoltage, p, n);
  return topo;
}

void Vcvs::interval_transfer(const analyze::IntervalSet& nodes,
                             std::vector<analyze::NodeClaim>& out) const {
  // v(p) - v(n) = gain * (v(cp) - v(cn)) exactly.
  const analyze::Interval ctrl =
      (nodes.at(cp_) - nodes.at(cn_)).scaled(gain_);
  out.push_back(
      {p_, nodes.at(n_) + ctrl, analyze::NodeClaim::Kind::kRelation});
  out.push_back(
      {n_, nodes.at(p_) - ctrl, analyze::NodeClaim::Kind::kRelation});
}

std::string Vcvs::netlist_line(
    const std::function<std::string(spice::NodeId)>& node_namer) const {
  std::ostringstream os;
  os << name() << " " << node_namer(p_) << " " << node_namer(n_) << " "
     << node_namer(cp_) << " " << node_namer(cn_) << " " << gain_;
  return os.str();
}

Vccs::Vccs(std::string name, spice::NodeId p, spice::NodeId n,
           spice::NodeId cp, spice::NodeId cn, double gm)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gm_(gm) {}

void Vccs::stamp(spice::StampContext& ctx) const {
  const double i = gm_ * (ctx.v(cp_) - ctx.v(cn_));
  ctx.add_f(p_, i);
  ctx.add_f(n_, -i);
  ctx.add_J(p_, cp_, gm_);
  ctx.add_J(p_, cn_, -gm_);
  ctx.add_J(n_, cp_, -gm_);
  ctx.add_J(n_, cn_, gm_);
}

void Vccs::kernel_descriptor(const spice::KernelLayout& layout,
                             spice::KernelDescriptor& out) const {
  out.supported = true;
  out.bucket = "vccs";
  out.batch = &spice::kernel_batch_eval<Vccs>;
  out.roles = 4;
  out.role_unknowns = {layout.of(p_), layout.of(n_), layout.of(cp_),
                       layout.of(cn_)};
  out.add_j(0, 2);
  out.add_j(0, 3);
  out.add_j(1, 2);
  out.add_j(1, 3);
}

void Vccs::kernel_eval(const spice::KernelSink& k) const {
  const double i = gm_ * (k.xr(2) - k.xr(3));
  k.f(0, i);
  k.f(1, -i);
  k.J(0, 2, gm_);
  k.J(0, 3, -gm_);
  k.J(1, 2, -gm_);
  k.J(1, 3, gm_);
}

void Vccs::stamp_ac(spice::AcStampContext& ctx) const {
  ctx.add_G(p_, cp_, gm_);
  ctx.add_G(p_, cn_, -gm_);
  ctx.add_G(n_, cp_, -gm_);
  ctx.add_G(n_, cn_, gm_);
}

spice::DeviceTopology Vccs::topology() const {
  spice::DeviceTopology topo;
  topo.element_letter = 'G';
  const std::size_t p = topo.add_terminal("p", p_);
  const std::size_t n = topo.add_terminal("n", n_);
  topo.add_terminal("cp", cp_);
  topo.add_terminal("cn", cn_);
  topo.add_edge(spice::DeviceTopology::EdgeKind::kCurrent, p, n).magnitude =
      std::abs(gm_);
  return topo;
}

std::string Vccs::netlist_line(
    const std::function<std::string(spice::NodeId)>& node_namer) const {
  std::ostringstream os;
  os << name() << " " << node_namer(p_) << " " << node_namer(n_) << " "
     << node_namer(cp_) << " " << node_namer(cn_) << " " << gm_;
  return os.str();
}

}  // namespace nemsim::devices
