#include "nemsim/check/checker.h"

#include <cmath>
#include <functional>
#include <optional>
#include <sstream>
#include <utility>

#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/analyze.h"
#include "nemsim/spice/compile.h"
#include "nemsim/spice/dcsweep.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/netlist_export.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/netlist_parser.h"
#include "nemsim/util/error.h"

namespace nemsim::check {

const char* to_string(Analysis a) {
  switch (a) {
    case Analysis::kOp: return "op";
    case Analysis::kTransient: return "tran";
    case Analysis::kDcSweep: return "dcsweep";
  }
  return "?";
}

const char* to_string(Contract c) {
  switch (c) {
    case Contract::kDeterminism: return "determinism";
    case Contract::kRoundTrip: return "round-trip";
    case Contract::kHierarchy: return "hierarchy";
    case Contract::kParallelSweep: return "parallel-sweep";
    case Contract::kSparseVsDense: return "sparse-vs-dense";
    case Contract::kBypass: return "bypass";
    case Contract::kJacobianReuse: return "jacobian-reuse";
    case Contract::kBypassAndReuse: return "bypass-and-reuse";
    case Contract::kAnalyze: return "analyze";
    case Contract::kCompiled: return "compiled";
    case Contract::kKernels: return "kernels";
  }
  return "?";
}

bool contract_is_bitwise(Contract c) {
  switch (c) {
    case Contract::kDeterminism:
    case Contract::kRoundTrip:
    case Contract::kHierarchy:
    case Contract::kParallelSweep:
    case Contract::kCompiled:
      return true;
    default:
      return false;
  }
}

Analysis parse_analysis(const std::string& s) {
  for (Analysis a : {Analysis::kOp, Analysis::kTransient, Analysis::kDcSweep}) {
    if (s == to_string(a)) return a;
  }
  throw InvalidArgument("unknown analysis '" + s +
                        "' (expected op, tran, or dcsweep)");
}

Contract parse_contract(const std::string& s) {
  for (Contract c :
       {Contract::kDeterminism, Contract::kRoundTrip, Contract::kHierarchy,
        Contract::kParallelSweep, Contract::kSparseVsDense, Contract::kBypass,
        Contract::kJacobianReuse, Contract::kBypassAndReuse,
        Contract::kAnalyze, Contract::kCompiled, Contract::kKernels}) {
    if (s == to_string(c)) return c;
  }
  throw InvalidArgument("unknown contract '" + s + "'");
}

namespace {

using spice::Waveform;

/// One engine configuration of the redundant-path matrix.
struct LegConfig {
  spice::JacobianSolver solver = spice::JacobianSolver::kDense;
  bool bypass = false;
  bool reuse = false;
  bool kernels = false;
};

spice::NewtonOptions newton_for(const LegConfig& leg,
                                const CheckOptions& opts) {
  spice::NewtonOptions n;
  n.solver = leg.solver;
  n.bypass = leg.bypass;
  n.jacobian_reuse = leg.reuse;
  n.kernels = leg.kernels;
  if (leg.reuse && opts.sabotage == Sabotage::kStaleJacobian) {
    // A broken refresh gate: any stale-LU solve is accepted and the
    // convergence test is loosened far past the contract tolerance, so
    // reuse legs settle visibly short of the true solution.
    n.reltol = 3e-2;
    n.reuse_residual_ratio = 1e9;
  }
  return n;
}

/// Strips the first occurrence of the hierarchy instance prefix
/// ("Xdut.") so wrapped-twin names ("v(Xdut.s3)", "Xdut.X5.x") map onto
/// their flat counterparts.
std::string strip_prefix(std::string name, const std::string& prefix) {
  const std::size_t pos = name.find(prefix);
  if (pos != std::string::npos) name.erase(pos, prefix.size());
  return name;
}

Waveform rename_signals(const Waveform& wave, const std::string& prefix) {
  std::vector<std::string> names;
  names.reserve(wave.num_signals());
  for (const std::string& n : wave.signal_names()) {
    names.push_back(strip_prefix(n, prefix));
  }
  Waveform out(std::move(names));
  out.reserve(wave.num_samples());
  linalg::Vector row(wave.num_signals());
  for (std::size_t k = 0; k < wave.num_samples(); ++k) {
    for (std::size_t s = 0; s < wave.num_signals(); ++s) {
      row[s] = wave.sample(s, k);
    }
    out.append(wave.times()[k], row);
  }
  return out;
}

/// Runs the legs of one (analysis, contract) pair and compares them.
/// Owns the per-analysis baseline cache so contracts sharing a reference
/// (everything except kParallelSweep, whose reference is cold-per-point)
/// solve it only once.
class Runner {
 public:
  Runner(std::function<spice::Circuit()> make_flat,
         std::function<spice::Circuit()> make_wrapped, std::string deck,
         double tstop, const CheckOptions& opts, std::string wrap_prefix)
      : make_flat_(std::move(make_flat)),
        make_wrapped_(std::move(make_wrapped)),
        deck_(std::move(deck)),
        tstop_(tstop),
        opts_(opts),
        wrap_prefix_(std::move(wrap_prefix)) {}

  /// Empty optional = contract not applicable to this analysis.
  std::optional<CompareResult> run(Analysis analysis, Contract contract) {
    switch (analysis) {
      case Analysis::kOp: return run_op_contract(contract);
      case Analysis::kTransient: return run_tran_contract(contract);
      case Analysis::kDcSweep: return run_sweep_contract(contract);
    }
    return std::nullopt;
  }

 private:
  static constexpr LegConfig kBaseline{};

  Tolerance op_tol() const { return {opts_.op_reltol, opts_.op_abstol}; }
  Tolerance tran_tol() const {
    return {opts_.tran_reltol, opts_.tran_abstol, opts_.tran_time_tol};
  }
  static Tolerance bitwise_tol() { return {}; }

  std::vector<NamedValue> solve_op(spice::Circuit& ckt,
                                   const LegConfig& leg) const {
    spice::MnaSystem system(ckt);
    spice::OpOptions o;
    o.newton = newton_for(leg, opts_);
    o.lint = lint::LintMode::kOff;  // generated circuits are clean by design
    const spice::OpResult r = spice::operating_point(system, o);
    std::vector<NamedValue> out;
    out.reserve(system.num_unknowns());
    for (std::size_t i = 0; i < system.num_unknowns(); ++i) {
      out.push_back({system.unknown_info(i).name, r.raw()[i]});
    }
    return out;
  }

  Waveform solve_tran(spice::Circuit& ckt, const LegConfig& leg) const {
    spice::MnaSystem system(ckt);
    spice::TransientOptions o;
    o.tstop = tstop_;
    o.newton = newton_for(leg, opts_);
    o.lint = lint::LintMode::kOff;
    return spice::transient(system, o);
  }

  std::vector<double> sweep_points() const {
    return spice::linspace(0.0, opts_.generator.vdd, opts_.sweep_points);
  }

  Waveform solve_sweep(spice::Circuit& ckt, const LegConfig& leg) const {
    spice::MnaSystem system(ckt);
    spice::DcSweepOptions o;
    o.newton = newton_for(leg, opts_);
    o.lint = lint::LintMode::kOff;
    auto& vin = ckt.find<devices::VoltageSource>("Vin");
    const std::vector<double> pts = sweep_points();
    return spice::dc_sweep(system, [&](double v) { vin.set_dc(v); }, pts, o);
  }

  Waveform solve_sweep_parallel(std::size_t threads) const {
    spice::DcSweepOptions o;
    o.newton = newton_for(kBaseline, opts_);
    o.lint = lint::LintMode::kOff;
    const std::vector<double> pts = sweep_points();
    return spice::dc_sweep_parallel(
        make_flat_,
        [](spice::Circuit& c, double v) {
          c.find<devices::VoltageSource>("Vin").set_dc(v);
        },
        pts, o, threads);
  }

  spice::CompiledCircuit make_compiled() const {
    spice::CompileOptions co;
    co.newton = newton_for(kBaseline, opts_);
    co.lint = lint::LintMode::kOff;
    return spice::compile(make_flat_(), co);
  }

  /// Deterministic small per-device threshold shifts; the overlay leg
  /// applies them through the bank, the rebuilt leg through the device
  /// setters — both write the same doubles to the same slots.
  static std::vector<double> compiled_shift_values(std::size_t count) {
    std::vector<double> shifts(count);
    for (std::size_t i = 0; i < count; ++i) {
      shifts[i] = 1e-3 * static_cast<double>(1 + (i % 8));
    }
    return shifts;
  }

  static spice::ParamPatch compiled_overlay(const spice::Circuit& ckt) {
    std::vector<spice::ParamSlot> slots;
    ckt.for_each<devices::Mosfet>([&](const devices::Mosfet& m) {
      slots.push_back(m.vth_shift_slot());
    });
    ckt.for_each<devices::Nemfet>([&](const devices::Nemfet& x) {
      slots.push_back(x.vth_shift_slot());
    });
    const std::vector<double> shifts = compiled_shift_values(slots.size());
    spice::ParamPatch patch;
    patch.reserve(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      patch.push_back({slots[i], shifts[i]});
    }
    return patch;
  }

  static void apply_compiled_shifts(spice::Circuit& ckt) {
    std::size_t count = 0;
    ckt.for_each<devices::Mosfet>([&](const devices::Mosfet&) { ++count; });
    ckt.for_each<devices::Nemfet>([&](const devices::Nemfet&) { ++count; });
    const std::vector<double> shifts = compiled_shift_values(count);
    std::size_t i = 0;
    ckt.for_each<devices::Mosfet>(
        [&](devices::Mosfet& m) { m.set_vth_shift(shifts[i++]); });
    ckt.for_each<devices::Nemfet>(
        [&](devices::Nemfet& x) { x.set_vth_shift(shifts[i++]); });
  }

  static std::vector<NamedValue> op_values(const spice::MnaSystem& system,
                                           const spice::OpResult& r) {
    std::vector<NamedValue> out;
    out.reserve(system.num_unknowns());
    for (std::size_t i = 0; i < system.num_unknowns(); ++i) {
      out.push_back({system.unknown_info(i).name, r.raw()[i]});
    }
    return out;
  }

  /// Prefixes the leg name onto a failed comparison's detail, and folds
  /// the row counts of passing ones into `total`.
  static std::optional<CompareResult> fold_leg(CompareResult& total,
                                               CompareResult leg,
                                               const char* name) {
    if (!leg.ok) {
      leg.detail = std::string(name) + ": " + leg.detail;
      return leg;
    }
    total.compared += leg.compared;
    return std::nullopt;
  }

  std::optional<CompareResult> run_op_compiled() {
    spice::CompiledCircuit compiled = make_compiled();
    CompareResult total;
    const std::vector<NamedValue> first =
        op_values(compiled.system(), compiled.run_op());
    if (auto bad = fold_leg(total,
                            compare_values(base_op(), first, bitwise_tol()),
                            "compiled vs legacy")) {
      return bad;
    }
    const std::vector<NamedValue> second =
        op_values(compiled.system(), compiled.run_op());
    if (auto bad = fold_leg(total,
                            compare_values(first, second, bitwise_tol()),
                            "compiled re-run")) {
      return bad;
    }
    compiled.set_overlay(compiled_overlay(compiled.circuit()));
    const std::vector<NamedValue> overlaid =
        op_values(compiled.system(), compiled.run_op());
    spice::Circuit rebuilt = make_flat_();
    apply_compiled_shifts(rebuilt);
    if (auto bad = fold_leg(
            total,
            compare_values(solve_op(rebuilt, kBaseline), overlaid,
                           bitwise_tol()),
            "overlay vs rebuilt")) {
      return bad;
    }
    return total;
  }

  std::optional<CompareResult> run_tran_compiled() {
    spice::CompiledCircuit compiled = make_compiled();
    spice::TransientOptions o;
    o.tstop = tstop_;
    CompareResult total;
    const Waveform first = compiled.run_transient(o);
    if (auto bad = fold_leg(total,
                            compare_waveforms(base_tran(), first,
                                              bitwise_tol()),
                            "compiled vs legacy")) {
      return bad;
    }
    const Waveform second = compiled.run_transient(o);
    if (auto bad = fold_leg(total,
                            compare_waveforms(first, second, bitwise_tol()),
                            "compiled re-run")) {
      return bad;
    }
    compiled.set_overlay(compiled_overlay(compiled.circuit()));
    const Waveform overlaid = compiled.run_transient(o);
    spice::Circuit rebuilt = make_flat_();
    apply_compiled_shifts(rebuilt);
    if (auto bad = fold_leg(
            total,
            compare_waveforms(solve_tran(rebuilt, kBaseline), overlaid,
                              bitwise_tol()),
            "overlay vs rebuilt")) {
      return bad;
    }
    return total;
  }

  std::optional<CompareResult> run_sweep_compiled() {
    spice::CompiledCircuit compiled = make_compiled();
    const std::vector<double> pts = sweep_points();
    auto& vin = compiled.circuit().find<devices::VoltageSource>("Vin");
    auto sweep_once = [&] {
      return compiled.run_dc_sweep([&](double v) { vin.set_dc(v); }, pts);
    };
    CompareResult total;
    const Waveform first = sweep_once();
    if (auto bad = fold_leg(total,
                            compare_waveforms(base_sweep(), first,
                                              bitwise_tol()),
                            "compiled vs legacy")) {
      return bad;
    }
    const Waveform second = sweep_once();
    if (auto bad = fold_leg(total,
                            compare_waveforms(first, second, bitwise_tol()),
                            "compiled re-run")) {
      return bad;
    }
    compiled.set_overlay(compiled_overlay(compiled.circuit()));
    const Waveform overlaid = sweep_once();
    spice::Circuit rebuilt = make_flat_();
    apply_compiled_shifts(rebuilt);
    if (auto bad = fold_leg(
            total,
            compare_waveforms(solve_sweep(rebuilt, kBaseline), overlaid,
                              bitwise_tol()),
            "overlay vs rebuilt")) {
      return bad;
    }
    return total;
  }

  const std::vector<NamedValue>& base_op() {
    if (!base_op_) {
      spice::Circuit ckt = make_flat_();
      base_op_ = solve_op(ckt, kBaseline);
    }
    return *base_op_;
  }
  const Waveform& base_tran() {
    if (!base_tran_) {
      spice::Circuit ckt = make_flat_();
      base_tran_ = solve_tran(ckt, kBaseline);
    }
    return *base_tran_;
  }
  const Waveform& base_sweep() {
    if (!base_sweep_) {
      spice::Circuit ckt = make_flat_();
      base_sweep_ = solve_sweep(ckt, kBaseline);
    }
    return *base_sweep_;
  }

  std::optional<CompareResult> op_variant(const LegConfig& leg,
                                          const Tolerance& tol) {
    spice::Circuit ckt = make_flat_();
    return compare_values(base_op(), solve_op(ckt, leg), tol);
  }
  std::optional<CompareResult> tran_variant(const LegConfig& leg,
                                            const Tolerance& tol) {
    spice::Circuit ckt = make_flat_();
    return compare_waveforms(base_tran(), solve_tran(ckt, leg), tol);
  }

  std::optional<CompareResult> run_op_contract(Contract c) {
    switch (c) {
      case Contract::kDeterminism:
        return op_variant(kBaseline, bitwise_tol());
      case Contract::kRoundTrip: {
        spice::Circuit reparsed = tech::parse_netlist(deck_);
        return compare_values(base_op(), solve_op(reparsed, kBaseline),
                              bitwise_tol());
      }
      case Contract::kHierarchy: {
        if (!make_wrapped_) return std::nullopt;
        spice::Circuit wrapped = make_wrapped_();
        std::vector<NamedValue> got = solve_op(wrapped, kBaseline);
        for (NamedValue& nv : got) {
          nv.name = strip_prefix(std::move(nv.name), wrap_prefix_);
        }
        return compare_values(base_op(), got, bitwise_tol());
      }
      case Contract::kSparseVsDense:
        return op_variant({spice::JacobianSolver::kSparse, false, false},
                          op_tol());
      case Contract::kBypass:
        return op_variant({spice::JacobianSolver::kDense, true, false},
                          op_tol());
      case Contract::kJacobianReuse:
        return op_variant({spice::JacobianSolver::kDense, false, true},
                          op_tol());
      case Contract::kAnalyze:
        return run_op_analyze();
      case Contract::kCompiled:
        return run_op_compiled();
      case Contract::kKernels: {
        // Lane assembly against both Jacobian sinks: dense offsets and
        // frozen CSR scatter slots are separate code paths.
        auto dense = op_variant(
            {spice::JacobianSolver::kDense, false, false, true}, op_tol());
        if (!dense || !dense->ok) return dense;
        auto sparse = op_variant(
            {spice::JacobianSolver::kSparse, false, false, true}, op_tol());
        if (sparse) sparse->compared += dense->compared;
        return sparse;
      }
      case Contract::kParallelSweep:
      case Contract::kBypassAndReuse:
        return std::nullopt;
    }
    return std::nullopt;
  }

  /// Soundness contract of the static analyzer: every predicted node
  /// interval must contain the solved OP voltage, and every region
  /// verdict's predicted unknown enclosure must hold.  The slack covers
  /// the solver's gmin regularization and Newton reltol — the analyzer
  /// bounds the exact solution, the solver delivers a perturbed one.
  std::optional<CompareResult> run_op_analyze() {
    spice::Circuit ckt = make_flat_();
    const analyze::AnalyzeReport rpt = analyze::analyze_circuit(ckt);
    const std::vector<NamedValue>& op = base_op();

    CompareResult res;
    std::ostringstream bad;
    for (const NamedValue& nv : op) {
      if (nv.name.size() > 3 && nv.name.compare(0, 2, "v(") == 0 &&
          nv.name.back() == ')') {
        const std::string node = nv.name.substr(2, nv.name.size() - 3);
        if (!ckt.has_node(node)) continue;
        const analyze::Interval iv = rpt.intervals.at(ckt.find_node(node));
        ++res.compared;
        const double slack =
            opts_.analyze_abstol + opts_.analyze_reltol * std::abs(nv.value);
        if (!iv.contains(nv.value, slack)) {
          res.ok = false;
          ++res.mismatched;
          bad << "  " << nv.name << ": solved " << nv.value
              << " V outside predicted " << iv.to_string() << " (slack "
              << slack << ")\n";
        }
      }
    }
    for (const analyze::RegionVerdict& v : rpt.verdicts) {
      if (v.unknown.empty()) continue;
      for (const NamedValue& nv : op) {
        if (nv.name != v.unknown) continue;
        ++res.compared;
        if (!v.predicted.contains(nv.value)) {
          res.ok = false;
          ++res.mismatched;
          bad << "  " << v.region << ": predicted " << v.unknown << " in "
              << v.predicted.to_string() << " but the OP solved "
              << nv.value << "\n";
        }
        break;
      }
    }
    if (!res.ok) res.detail = "analyze soundness violated:\n" + bad.str();
    return res;
  }

  std::optional<CompareResult> run_tran_contract(Contract c) {
    switch (c) {
      case Contract::kDeterminism:
        return tran_variant(kBaseline, bitwise_tol());
      case Contract::kRoundTrip: {
        spice::Circuit reparsed = tech::parse_netlist(deck_);
        return compare_waveforms(base_tran(), solve_tran(reparsed, kBaseline),
                                 bitwise_tol());
      }
      case Contract::kHierarchy: {
        if (!make_wrapped_) return std::nullopt;
        spice::Circuit wrapped = make_wrapped_();
        return compare_waveforms(
            base_tran(),
            rename_signals(solve_tran(wrapped, kBaseline), wrap_prefix_),
            bitwise_tol());
      }
      case Contract::kSparseVsDense:
        return tran_variant({spice::JacobianSolver::kSparse, false, false},
                            tran_tol());
      case Contract::kBypass:
        return tran_variant({spice::JacobianSolver::kDense, true, false},
                            tran_tol());
      case Contract::kJacobianReuse:
        return tran_variant({spice::JacobianSolver::kDense, false, true},
                            tran_tol());
      case Contract::kBypassAndReuse:
        return tran_variant({spice::JacobianSolver::kDense, true, true},
                            tran_tol());
      case Contract::kCompiled:
        return run_tran_compiled();
      case Contract::kKernels: {
        auto dense = tran_variant(
            {spice::JacobianSolver::kDense, false, false, true}, tran_tol());
        if (!dense || !dense->ok) return dense;
        auto sparse = tran_variant(
            {spice::JacobianSolver::kSparse, false, false, true}, tran_tol());
        if (sparse) sparse->compared += dense->compared;
        return sparse;
      }
      case Contract::kParallelSweep:
      case Contract::kAnalyze:  // DC-interval contract: OP only
        return std::nullopt;
    }
    return std::nullopt;
  }

  std::optional<CompareResult> run_sweep_contract(Contract c) {
    switch (c) {
      case Contract::kDeterminism: {
        spice::Circuit ckt = make_flat_();
        return compare_waveforms(base_sweep(), solve_sweep(ckt, kBaseline),
                                 bitwise_tol());
      }
      case Contract::kParallelSweep:
        // Cold-per-point reference vs N workers: bitwise for any thread
        // count is the dc_sweep_parallel contract.
        return compare_waveforms(solve_sweep_parallel(1),
                                 solve_sweep_parallel(opts_.sweep_threads),
                                 bitwise_tol());
      case Contract::kSparseVsDense: {
        spice::Circuit ckt = make_flat_();
        return compare_waveforms(
            base_sweep(),
            solve_sweep(ckt, {spice::JacobianSolver::kSparse, false, false}),
            op_tol());
      }
      case Contract::kCompiled:
        return run_sweep_compiled();
      case Contract::kKernels: {
        spice::Circuit ckt = make_flat_();
        return compare_waveforms(
            base_sweep(),
            solve_sweep(ckt,
                        {spice::JacobianSolver::kSparse, false, false, true}),
            op_tol());
      }
      default:
        return std::nullopt;
    }
  }

  std::function<spice::Circuit()> make_flat_;
  std::function<spice::Circuit()> make_wrapped_;  ///< null in deck mode
  std::string deck_;
  double tstop_;
  const CheckOptions& opts_;
  std::string wrap_prefix_;

  std::optional<std::vector<NamedValue>> base_op_;
  std::optional<Waveform> base_tran_;
  std::optional<Waveform> base_sweep_;
};

constexpr Contract kAllContracts[] = {
    Contract::kDeterminism,   Contract::kRoundTrip,
    Contract::kHierarchy,     Contract::kParallelSweep,
    Contract::kSparseVsDense, Contract::kBypass,
    Contract::kJacobianReuse, Contract::kBypassAndReuse,
    Contract::kAnalyze,       Contract::kCompiled,
    Contract::kKernels,
};
constexpr Analysis kAllAnalyses[] = {Analysis::kOp, Analysis::kTransient,
                                     Analysis::kDcSweep};

}  // namespace

CheckCaseResult run_check_case(std::uint64_t seed, const CheckOptions& opts) {
  CheckCaseResult result;
  result.seed = seed;

  GeneratedInfo info;
  spice::Circuit probe = generate_circuit(seed, opts.generator, &info);
  const std::string deck =
      spice::netlist_string(probe, "nemsim-fuzz seed " + std::to_string(seed));

  Runner runner(
      [&] { return generate_circuit(seed, opts.generator); },
      [&] {
        return generate_circuit(seed, opts.generator, nullptr,
                                /*wrap_in_subckt=*/true);
      },
      deck, info.tstop, opts, info.wrap_prefix);

  for (Analysis analysis : kAllAnalyses) {
    for (Contract contract : kAllContracts) {
      if (opts.bitwise_only && !contract_is_bitwise(contract)) continue;
      if (opts.only_contract && contract != *opts.only_contract) continue;
      std::optional<CompareResult> cmp;
      try {
        cmp = runner.run(analysis, contract);
      } catch (const Error& e) {
        // A leg failing to solve at all breaks the contract just as
        // surely as disagreeing about the answer.
        CompareResult failed;
        failed.ok = false;
        failed.detail = std::string("leg threw: ") + e.what();
        cmp = failed;
      }
      if (!cmp) continue;  // contract not applicable to this analysis
      ++result.contracts_run;
      if (cmp->ok) continue;

      Mismatch m;
      m.seed = seed;
      m.analysis = analysis;
      m.contract = contract;
      m.detail = cmp->detail;
      m.deck = deck;
      if (opts.report != nullptr) {
        opts.report->add_note(std::string("check mismatch: seed ") +
                              std::to_string(seed) + " " + to_string(analysis) +
                              "/" + to_string(contract) + ": " + cmp->detail);
      }
      if (opts.forensics.enabled) {
        spice::ForensicsOptions f = opts.forensics;
        f.tag += "_seed" + std::to_string(seed) + "_" + to_string(analysis) +
                 "_" + to_string(contract);
        spice::write_failure_forensics(
            f, probe, nullptr,
            std::string("differential mismatch (") + to_string(analysis) +
                "/" + to_string(contract) + "): " + cmp->detail,
            nullptr);
      }
      result.mismatches.push_back(std::move(m));
    }
  }
  return result;
}

bool deck_mismatches(const std::string& deck, Analysis analysis,
                     Contract contract, const CheckOptions& opts,
                     std::string* detail) {
  if (contract == Contract::kHierarchy) return false;
  // A deck that no longer parses, lints, or solves cannot *evaluate* the
  // contract, which is different from violating it — the minimizer
  // relies on this: a deletion that merely breaks the deck is rejected,
  // not mistaken for a smaller reproduction.
  try {
    tech::parse_netlist(deck);
  } catch (const Error& e) {
    if (detail != nullptr) *detail = std::string("deck invalid: ") + e.what();
    return false;
  }
  Runner runner([&deck] { return tech::parse_netlist(deck); },
                /*make_wrapped=*/nullptr, deck, /*tstop=*/4e-9, opts,
                /*wrap_prefix=*/"");
  std::optional<CompareResult> cmp;
  try {
    cmp = runner.run(analysis, contract);
  } catch (const Error& e) {
    if (detail != nullptr) *detail = std::string("leg threw: ") + e.what();
    return false;
  }
  if (!cmp) return false;
  if (detail != nullptr) *detail = cmp->detail;
  return !cmp->ok;
}

}  // namespace nemsim::check
