#include "nemsim/check/generator.h"

#include <utility>
#include <vector>

#include "nemsim/devices/controlled.h"
#include "nemsim/devices/diode.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/subcircuit.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/error.h"
#include "nemsim/util/rng.h"

namespace nemsim::check {

namespace {

using devices::Capacitor;
using devices::CurrentSource;
using devices::Diode;
using devices::Inductor;
using devices::Mosfet;
using devices::MosPolarity;
using devices::Nemfet;
using devices::NemsPolarity;
using devices::Resistor;
using devices::SourceWave;
using devices::Vccs;
using devices::Vcvs;
using devices::VoltageSource;

// Every table value is a short decimal literal: printed by the exporter
// (6 significant digits for ostream-formatted devices, fixed 6 decimals
// for std::to_string-formatted resistors) it re-parses to the identical
// double, which is what makes the export -> parse round-trip contract
// bitwise rather than merely close.
constexpr double kResistors[] = {220.0,   470.0,   1000.0,  2200.0,
                                 4700.0,  10000.0, 22000.0, 47000.0};
constexpr double kCapacitors[] = {1e-15, 2e-15, 5e-15, 1e-14,
                                  2.2e-14, 4.7e-14, 1e-13};
constexpr double kInductors[] = {1e-9, 2.2e-9, 4.7e-9, 1e-8};
// RLC tanks draw from dedicated tables keeping the resonance low-Q
// (Q = R * sqrt(C/L) with the series resistor acting as the tank's
// parallel loss; these combinations give Q <= 0.3, ringing dead within
// a cycle).  A high-Q tank rings for hundreds of cycles, and two
// legitimate adaptive step sequences drift in phase — pointwise
// trajectory comparison of a phase-drifted oscillation is
// ill-conditioned at ANY tolerance, so the reltol contracts would
// flag circuits both of whose legs are individually correct.
constexpr double kTankResistors[] = {220.0, 470.0};
constexpr double kTankInductors[] = {4.7e-9, 1e-8};
constexpr double kTankCapacitors[] = {1e-15, 2e-15};
constexpr double kGains[] = {0.5, 1.0, 2.0};
constexpr double kGms[] = {1e-5, 5e-5, 1e-4, 2e-4};
constexpr double kMosWidths[] = {1.2e-7, 2.4e-7, 4.8e-7, 1e-6};
constexpr double kMosLengths[] = {1e-7, 2e-7};
constexpr double kNemsWidths[] = {2.4e-7, 4.8e-7, 1e-6};

template <typename T, std::size_t N>
T pick(Rng& rng, const T (&table)[N]) {
  return table[rng.index(N)];
}

enum class StageKind {
  kRcDivider,   ///< R anchor->s, R s->gnd, C s->gnd
  kRlcTank,     ///< R anchor->s, L s->gnd, C s->gnd
  kDiodeClamp,  ///< R anchor->s, D s->gnd, C s->gnd
  kInverter,    ///< CMOS pair gated by anchor, C load
  kNemfet,      ///< NEMFET pull-down (gate railed), R pull-up, C load
  kVcvsBuffer,  ///< E sensing anchor, R load
  kVccsLoad,    ///< G injecting g_m * v(anchor) into an existing node
  kBridge,      ///< R between two existing signal nodes
};

/// One fully pinned stage: every random choice is drawn while the plan
/// is built, so the flat and subcircuit-wrapped twins materialize the
/// byte-identical device sequence.
struct StagePlan {
  StageKind kind = StageKind::kRcDivider;
  std::size_t idx = 0;   ///< device-name suffix
  std::string anchor;    ///< existing local node name
  std::string anchor2;   ///< kBridge / kVccsLoad second existing node
  std::string out;       ///< fresh local node ("s<idx>") when the stage adds one
  double r1 = 0.0, r2 = 0.0, c = 0.0, l = 0.0, gain = 0.0, w = 0.0, len = 0.0;
  bool gate_high = true;  ///< kNemfet: gate tied to vdd (true) or ground
};

struct Plan {
  SourceWave stimulus = SourceWave::dc(0.0);
  std::vector<StagePlan> stages;
  bool has_nemfet = false, has_mosfet = false, has_diode = false;
  /// True when some stage attaches to the supply rail.  When none does,
  /// generate_circuit adds a bleeder resistor so 'vdd' never dangles
  /// with only the Vsup branch on it (a lint warning the generator
  /// promises not to produce).
  bool uses_vdd = false;
};

SourceWave make_stimulus(Rng& rng, double vdd) {
  switch (rng.index(4)) {
    case 0:
      return SourceWave::dc(0.5 * vdd);
    case 1:
      return SourceWave::pulse(0.0, vdd, 2e-10, 5e-11, 5e-11, 1.5e-9);
    case 2:
      return SourceWave::pulse(0.0, vdd, 1e-10, 1e-10, 1e-10, 1e-9, 3e-9);
    default:
      return SourceWave::pwl(
          {{0.0, 0.0}, {5e-10, vdd}, {2e-9, vdd}, {2.5e-9, 0.25 * vdd}});
  }
}

Plan make_plan(std::uint64_t seed, const GeneratorOptions& options) {
  require(options.max_stages >= options.min_stages && options.min_stages > 0,
          "generate_circuit: bad stage bounds");
  Rng rng = Rng(seed).child(0x6e656d73);  // decorrelate from raw seed use
  Plan plan;
  plan.stimulus = make_stimulus(rng, options.vdd);

  // Local node names that already carry a signal worth probing; "in" is
  // the stimulus, stage outputs join as they are created.
  std::vector<std::string> signals = {"in"};
  const std::size_t stages =
      options.min_stages +
      rng.index(options.max_stages - options.min_stages + 1);
  for (std::size_t k = 0; k < stages; ++k) {
    StagePlan s;
    s.idx = k + 1;
    s.anchor = signals[rng.index(signals.size())];
    // Draw a kind the option set allows (rejection loop is deterministic).
    for (;;) {
      s.kind = static_cast<StageKind>(rng.index(8));
      if (s.kind == StageKind::kRlcTank && !options.allow_inductors) continue;
      if (s.kind == StageKind::kDiodeClamp && !options.allow_diodes) continue;
      if (s.kind == StageKind::kInverter && !options.allow_mosfets) continue;
      if (s.kind == StageKind::kNemfet && !options.allow_nemfets) continue;
      if ((s.kind == StageKind::kVcvsBuffer ||
           s.kind == StageKind::kVccsLoad) &&
          !options.allow_controlled) {
        continue;
      }
      break;
    }
    s.r1 = pick(rng, kResistors);
    s.r2 = pick(rng, kResistors);
    s.c = pick(rng, kCapacitors);
    s.l = pick(rng, kInductors);
    s.gain = pick(rng, kGains);
    if (s.kind == StageKind::kRlcTank) {
      s.r1 = pick(rng, kTankResistors);
      s.l = pick(rng, kTankInductors);
      s.c = pick(rng, kTankCapacitors);
    }
    switch (s.kind) {
      case StageKind::kInverter:
        plan.has_mosfet = true;
        s.w = pick(rng, kMosWidths);
        s.len = pick(rng, kMosLengths);
        break;
      case StageKind::kNemfet:
        plan.has_nemfet = true;
        s.w = pick(rng, kNemsWidths);
        s.gate_high = rng.index(2) == 0;
        break;
      case StageKind::kDiodeClamp:
        plan.has_diode = true;
        break;
      case StageKind::kVccsLoad:
        s.gain = pick(rng, kGms);
        s.anchor2 = signals[rng.index(signals.size())];
        break;
      case StageKind::kBridge:
        s.anchor2 = signals[rng.index(signals.size())];
        break;
      default:
        break;
    }
    if (s.kind != StageKind::kVccsLoad && s.kind != StageKind::kBridge) {
      s.out = "s" + std::to_string(s.idx);
      signals.push_back(s.out);
    }
    if (s.kind == StageKind::kInverter || s.kind == StageKind::kNemfet ||
        (s.kind == StageKind::kBridge && s.anchor2 == s.anchor)) {
      plan.uses_vdd = true;
    }
    plan.stages.push_back(std::move(s));
  }
  return plan;
}

/// Materializes the plan through either a flat Circuit or a
/// SubcircuitScope; both expose node(name) and add<T>(name, ...), so the
/// two twins are built by the same code path and therefore in the same
/// node-creation and device order (which is what makes their MNA systems
/// bitwise twins).
template <typename Adapter>
void materialize(Adapter& a, const Plan& plan, double vdd) {
  (void)vdd;
  for (const StagePlan& s : plan.stages) {
    const std::string n = std::to_string(s.idx);
    const spice::NodeId anchor = a.node(s.anchor);
    switch (s.kind) {
      case StageKind::kRcDivider: {
        const spice::NodeId out = a.node(s.out);
        a.template add<Resistor>("R" + n + "A", anchor, out, s.r1);
        a.template add<Resistor>("R" + n + "B", out, a.node("0"), s.r2);
        a.template add<Capacitor>("C" + n, out, a.node("0"), s.c);
        break;
      }
      case StageKind::kRlcTank: {
        const spice::NodeId out = a.node(s.out);
        a.template add<Resistor>("R" + n + "A", anchor, out, s.r1);
        a.template add<Inductor>("L" + n, out, a.node("0"), s.l);
        a.template add<Capacitor>("C" + n, out, a.node("0"), s.c);
        break;
      }
      case StageKind::kDiodeClamp: {
        const spice::NodeId out = a.node(s.out);
        a.template add<Resistor>("R" + n + "A", anchor, out, s.r1);
        a.template add<Diode>("D" + n, out, a.node("0"));
        a.template add<Capacitor>("C" + n, out, a.node("0"), s.c);
        break;
      }
      case StageKind::kInverter: {
        const spice::NodeId out = a.node(s.out);
        a.template add<Mosfet>("MP" + n, out, anchor, a.node("vdd"),
                               MosPolarity::kPmos, tech::pmos_90nm(), 2.0 * s.w,
                               s.len);
        a.template add<Mosfet>("MN" + n, out, anchor, a.node("0"),
                               MosPolarity::kNmos, tech::nmos_90nm(), s.w,
                               s.len);
        a.template add<Capacitor>("C" + n, out, a.node("0"), s.c);
        break;
      }
      case StageKind::kNemfet: {
        // The gate sits on a rail, so the beam has a unique equilibrium
        // branch (firmly pulled in at vdd, firmly released at ground) and
        // redundant-path comparisons never straddle the bistable pull-in
        // boundary where roundoff legitimately picks different branches.
        const spice::NodeId out = a.node(s.out);
        const spice::NodeId gate = s.gate_high ? a.node("vdd") : a.node("0");
        a.template add<Resistor>("R" + n + "A", a.node("vdd"), out, s.r1);
        a.template add<Nemfet>("X" + n, out, gate, a.node("0"),
                               NemsPolarity::kN, tech::nems_90nm(), s.w);
        a.template add<Capacitor>("C" + n, out, a.node("0"), s.c);
        break;
      }
      case StageKind::kVcvsBuffer: {
        const spice::NodeId out = a.node(s.out);
        a.template add<Vcvs>("E" + n, out, a.node("0"), anchor, a.node("0"),
                             s.gain);
        a.template add<Resistor>("R" + n + "A", out, a.node("0"), s.r1);
        break;
      }
      case StageKind::kVccsLoad: {
        const spice::NodeId sink = a.node(s.anchor2);
        a.template add<Vccs>("G" + n, sink, a.node("0"), anchor, a.node("0"),
                             s.gain);
        break;
      }
      case StageKind::kBridge: {
        const spice::NodeId other = a.node(s.anchor2);
        if (other == anchor) {
          a.template add<Resistor>("R" + n + "A", anchor, a.node("vdd"), s.r1);
        } else {
          a.template add<Resistor>("R" + n + "A", anchor, other, s.r1);
        }
        break;
      }
    }
  }
}

struct FlatAdapter {
  spice::Circuit& ckt;
  spice::NodeId node(const std::string& name) { return ckt.node(name); }
  template <typename T, typename... Args>
  T& add(const std::string& name, Args&&... args) {
    return ckt.add<T>(name, std::forward<Args>(args)...);
  }
};

struct ScopeAdapter {
  spice::SubcircuitScope& scope;
  spice::NodeId node(const std::string& name) { return scope.node(name); }
  template <typename T, typename... Args>
  T& add(const std::string& name, Args&&... args) {
    return scope.add<T>(name, std::forward<Args>(args)...);
  }
};

}  // namespace

spice::Circuit generate_circuit(std::uint64_t seed,
                                const GeneratorOptions& options,
                                GeneratedInfo* info, bool wrap_in_subckt) {
  const Plan plan = make_plan(seed, options);

  spice::Circuit ckt;
  const spice::NodeId vdd = ckt.node("vdd");
  const spice::NodeId in = ckt.node("in");
  ckt.add<VoltageSource>("Vsup", vdd, ckt.gnd(), SourceWave::dc(options.vdd));
  ckt.add<VoltageSource>("Vin", in, ckt.gnd(), plan.stimulus);
  // Keep the supply rail two-terminal even when no stage drew on it; a
  // top-level device in both twins, so the flat/hierarchy pairing is
  // unaffected (resistors add no branch unknowns).
  if (!plan.uses_vdd) {
    ckt.add<Resistor>("Rvddbleed", vdd, ckt.gnd(), 22000.0);
  }

  if (wrap_in_subckt) {
    const spice::Subcircuit def(
        "fuzzdut", {"vdd", "in"}, [&plan, &options](spice::SubcircuitScope& s) {
          ScopeAdapter a{s};
          materialize(a, plan, options.vdd);
        });
    ckt.instantiate(def, "Xdut", {vdd, in});
  } else {
    FlatAdapter a{ckt};
    materialize(a, plan, options.vdd);
  }

  if (info != nullptr) {
    info->vdd = options.vdd;
    info->tstop = 4e-9;
    info->stages = plan.stages.size();
    info->has_nemfet = plan.has_nemfet;
    info->has_mosfet = plan.has_mosfet;
    info->has_diode = plan.has_diode;
  }
  return ckt;
}

}  // namespace nemsim::check
