#include "nemsim/check/minimize.h"

#include <cctype>
#include <set>
#include <sstream>
#include <vector>

#include "nemsim/util/error.h"

namespace nemsim::check {

namespace {

/// Hard ceiling on contract evaluations per minimization; each predicate
/// call costs two full analyses, so an O(n^2) merge pass on a large deck
/// must stop somewhere sane rather than run for minutes.
constexpr std::size_t kMaxPredicateCalls = 400;

std::vector<std::string> split_lines(const std::string& deck) {
  std::vector<std::string> lines;
  std::istringstream is(deck);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// Device cards are removable; the title ('*'), directives ('.'), and
/// blank lines are structure.
bool is_device_line(const std::string& line) {
  return !line.empty() && line[0] != '*' && line[0] != '.';
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> t;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) t.push_back(tok);
  return t;
}

/// Token indices holding node names for an element card, by element
/// letter (matching the parser's positional conventions).
std::vector<std::size_t> node_token_indices(const std::string& line) {
  if (line.empty()) return {};
  switch (std::toupper(static_cast<unsigned char>(line[0]))) {
    case 'R': case 'C': case 'L': case 'V': case 'I': case 'D':
      return {1, 2};
    case 'M': case 'X':
      return {1, 2, 3};
    case 'E': case 'G':
      return {1, 2, 3, 4};
    default:
      return {};
  }
}

std::set<std::string> collect_nodes(const std::vector<std::string>& lines) {
  std::set<std::string> nodes;
  for (const std::string& line : lines) {
    if (!is_device_line(line)) continue;
    const std::vector<std::string> t = tokens_of(line);
    for (std::size_t i : node_token_indices(line)) {
      if (i < t.size()) nodes.insert(t[i]);
    }
  }
  return nodes;
}

/// Rewrites every node token equal to `from` into `to`.
std::vector<std::string> merge_node(const std::vector<std::string>& lines,
                                    const std::string& from,
                                    const std::string& to) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  for (const std::string& line : lines) {
    if (!is_device_line(line)) {
      out.push_back(line);
      continue;
    }
    std::vector<std::string> t = tokens_of(line);
    for (std::size_t i : node_token_indices(line)) {
      if (i < t.size() && t[i] == from) t[i] = to;
    }
    std::string rebuilt;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (i) rebuilt += ' ';
      rebuilt += t[i];
    }
    out.push_back(rebuilt);
  }
  return out;
}

}  // namespace

MinimizeResult minimize_deck(const std::string& deck, Analysis analysis,
                             Contract contract, const CheckOptions& opts) {
  MinimizeResult result;
  auto reproduces = [&](const std::string& candidate) {
    ++result.predicate_calls;
    return deck_mismatches(candidate, analysis, contract, opts);
  };
  require(contract != Contract::kHierarchy,
          "minimize_deck: the hierarchy contract needs the generator-built "
          "wrapped twin and cannot be replayed from a deck");
  require(reproduces(deck),
          "minimize_deck: the input deck does not reproduce a mismatch for " +
              std::string(to_string(analysis)) + "/" + to_string(contract));

  std::vector<std::string> lines = split_lines(deck);
  bool changed = true;
  while (changed && result.predicate_calls < kMaxPredicateCalls) {
    changed = false;
    // Deletion pass: drop one device card at a time.
    for (std::size_t i = 0;
         i < lines.size() && result.predicate_calls < kMaxPredicateCalls;
         ++i) {
      if (!is_device_line(lines[i])) continue;
      std::vector<std::string> candidate = lines;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (reproduces(join_lines(candidate))) {
        lines = std::move(candidate);
        ++result.devices_removed;
        changed = true;
        --i;  // the next card shifted into this slot
      }
    }
    // Merge pass: collapse one node into another (ground included as a
    // merge target; ground itself is never renamed).
    const std::set<std::string> nodes = collect_nodes(lines);
    for (const std::string& from : nodes) {
      if (from == "0") continue;
      if (result.predicate_calls >= kMaxPredicateCalls) break;
      bool merged = false;
      for (const std::string& to : nodes) {
        if (to == from) continue;
        if (result.predicate_calls >= kMaxPredicateCalls) break;
        std::vector<std::string> candidate = merge_node(lines, from, to);
        if (reproduces(join_lines(candidate))) {
          lines = std::move(candidate);
          ++result.nodes_merged;
          changed = true;
          merged = true;
          break;
        }
      }
      if (merged) break;  // node set changed; rebuild it
    }
  }
  result.deck = join_lines(lines);
  return result;
}

}  // namespace nemsim::check
