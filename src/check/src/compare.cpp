#include "nemsim/check/compare.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace nemsim::check {

namespace {

/// Bitwise comparison treats NaN as always-mismatching: a NaN anywhere
/// in a solution vector is a defect the checker must surface, not a
/// value two broken legs may "agree" on.
bool bit_equal(double a, double b) { return a == b; }

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

struct Worst {
  double score = -1.0;  ///< |delta| / allowance (bitwise: |delta|)
  std::string name;
  double ref = 0.0, got = 0.0, allowed = 0.0;
};

void note_worst(Worst& w, const std::string& name, double ref, double got,
                double allowed, bool bitwise) {
  const double delta = std::abs(got - ref);
  const double score =
      std::isnan(got - ref)
          ? std::numeric_limits<double>::infinity()
          : (bitwise ? delta : delta / std::max(allowed, 1e-300));
  if (score > w.score) w = {score, name, ref, got, allowed};
}

std::string worst_line(const Worst& w, const Tolerance& tol) {
  std::ostringstream os;
  os << "worst row " << w.name << ": ref=" << fmt(w.ref)
     << " got=" << fmt(w.got) << " |delta|=" << fmt(std::abs(w.got - w.ref));
  if (tol.bitwise()) {
    os << " (contract: bitwise)";
  } else {
    os << " allowed=" << fmt(w.allowed) << " (reltol=" << tol.reltol
       << " abstol=" << tol.abstol << ")";
  }
  return os.str();
}

}  // namespace

CompareResult compare_values(const std::vector<NamedValue>& ref,
                             const std::vector<NamedValue>& got,
                             const Tolerance& tol) {
  CompareResult r;
  if (ref.size() != got.size()) {
    r.ok = false;
    r.detail = "solution vectors have different sizes: ref has " +
               std::to_string(ref.size()) + " unknowns, got has " +
               std::to_string(got.size());
    return r;
  }
  Worst worst;
  std::ostringstream rows;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (ref[i].name != got[i].name) {
      r.ok = false;
      r.detail = "unknown tables disagree at row " + std::to_string(i) +
                 ": ref '" + ref[i].name + "' vs got '" + got[i].name + "'";
      return r;
    }
    ++r.compared;
    const double allowed =
        tol.reltol * std::abs(ref[i].value) + tol.abstol;
    const bool match =
        tol.bitwise() ? bit_equal(ref[i].value, got[i].value)
                      : std::abs(got[i].value - ref[i].value) <= allowed;
    note_worst(worst, ref[i].name, ref[i].value, got[i].value, allowed,
               tol.bitwise());
    if (!match) {
      ++r.mismatched;
      rows << "  " << ref[i].name << ": ref=" << fmt(ref[i].value)
           << " got=" << fmt(got[i].value) << "\n";
    }
  }
  if (r.mismatched > 0) {
    r.ok = false;
    std::ostringstream os;
    os << r.mismatched << "/" << r.compared << " unknowns out of tolerance; "
       << worst_line(worst, tol) << "\nboth solution vectors (ref vs got):\n"
       << rows.str();
    r.detail = os.str();
  }
  return r;
}

CompareResult compare_waveforms(const spice::Waveform& ref,
                                const spice::Waveform& got,
                                const Tolerance& tol) {
  CompareResult r;
  if (ref.signal_names() != got.signal_names()) {
    r.ok = false;
    r.detail = "waveform signal tables disagree (" +
               std::to_string(ref.num_signals()) + " vs " +
               std::to_string(got.num_signals()) + " signals)";
    return r;
  }
  const std::size_t num_signals = ref.num_signals();

  if (tol.bitwise()) {
    if (ref.num_samples() != got.num_samples()) {
      r.ok = false;
      r.detail = "sample counts differ: ref has " +
                 std::to_string(ref.num_samples()) + ", got has " +
                 std::to_string(got.num_samples()) +
                 " (bitwise contract requires the identical step sequence)";
      return r;
    }
    Worst worst;
    std::size_t worst_k = 0;
    for (std::size_t k = 0; k < ref.num_samples(); ++k) {
      if (!bit_equal(ref.times()[k], got.times()[k])) {
        r.ok = false;
        r.detail = "axes diverge at sample " + std::to_string(k) + ": ref t=" +
                   fmt(ref.times()[k]) + " got t=" + fmt(got.times()[k]);
        return r;
      }
      for (std::size_t s = 0; s < num_signals; ++s) {
        ++r.compared;
        if (!bit_equal(ref.sample(s, k), got.sample(s, k))) {
          ++r.mismatched;
          const Worst before = worst;
          note_worst(worst, ref.signal_names()[s], ref.sample(s, k),
                     got.sample(s, k), 0.0, true);
          if (worst.score > before.score) worst_k = k;
        }
      }
    }
    if (r.mismatched > 0) {
      r.ok = false;
      std::ostringstream os;
      os << r.mismatched << "/" << r.compared
         << " samples differ; at t=" << fmt(ref.times()[worst_k]) << " "
         << worst_line(worst, tol);
      r.detail = os.str();
    }
    return r;
  }

  // Reltol: different arithmetic means different adaptive step
  // sequences, so judge `got` interpolated onto the reference axis, per
  // signal against its own full-trace magnitude.
  std::vector<double> scale(num_signals, 0.0);
  for (std::size_t k = 0; k < ref.num_samples(); ++k) {
    for (std::size_t s = 0; s < num_signals; ++s) {
      scale[s] = std::max(scale[s], std::abs(ref.sample(s, k)));
    }
  }
  Worst worst;
  double worst_t = 0.0;
  // Moving window over the got axis for the time-tube: minimum |gv - rv|
  // of a piecewise-linear trace over [t - tau, t + tau] is attained
  // either where the trace CROSSES rv (minimum zero, generally strictly
  // between samples) or at a window endpoint / got sample inside the
  // window.  Candidates are swept in time order so a sign change of
  // (candidate - rv) between neighbours detects the crossing; without
  // that check a steep edge skewed by a fraction of the tube still
  // mismatches, because adjacent samples straddle rv by half a
  // per-sample swing each.
  const std::vector<double>& gt = got.times();
  std::size_t lo = 0;
  for (std::size_t k = 0; k < ref.num_samples(); ++k) {
    const double t = ref.times()[k];
    while (lo < gt.size() && gt[lo] < t - tol.time_tol) ++lo;
    std::size_t hi = lo;
    while (hi < gt.size() && gt[hi] <= t + tol.time_tol) ++hi;
    for (std::size_t s = 0; s < num_signals; ++s) {
      ++r.compared;
      const double rv = ref.sample(s, k);
      double gv = got.at(s, t);
      if (tol.time_tol > 0.0) {
        double best = std::abs(gv - rv);
        bool have_prev = false;
        double prev = 0.0;
        auto consider = [&](double candidate) {
          if (have_prev && (prev - rv) * (candidate - rv) <= 0.0) {
            best = 0.0;
            gv = rv;
          }
          const double d = std::abs(candidate - rv);
          if (d < best) {
            best = d;
            gv = candidate;
          }
          prev = candidate;
          have_prev = true;
        };
        consider(got.at(s, t - tol.time_tol));
        for (std::size_t j = lo; j < hi; ++j) consider(got.sample(s, j));
        consider(got.at(s, t + tol.time_tol));
      }
      const double allowed = tol.reltol * scale[s] + tol.abstol;
      const Worst before = worst;
      note_worst(worst, ref.signal_names()[s], rv, gv, allowed, false);
      if (worst.score > before.score) worst_t = t;
      if (!(std::abs(gv - rv) <= allowed)) ++r.mismatched;
    }
  }
  if (r.mismatched > 0) {
    r.ok = false;
    std::ostringstream os;
    os << r.mismatched << "/" << r.compared
       << " interpolated samples out of tolerance; at t=" << fmt(worst_t)
       << " " << worst_line(worst, tol);
    r.detail = os.str();
  }
  return r;
}

}  // namespace nemsim::check
