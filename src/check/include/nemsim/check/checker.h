// Configuration-matrix executor: runs one generated circuit through
// every redundant engine path and compares the results under the
// contract each path promises.
//
// Contract classes (see DESIGN.md "Differential-check contracts"):
//  - bitwise: two legs must produce identical bits.
//      kDeterminism    rebuild + rerun of the same configuration
//      kRoundTrip      export_netlist -> parse_netlist -> rerun (the
//                      generator only emits exactly-representable
//                      parameter values, so this is bitwise, not close)
//      kHierarchy      flat twin vs subcircuit-wrapped twin (names
//                      normalized by stripping the instance prefix)
//      kParallelSweep  dc_sweep_parallel with 1 thread vs N threads
//      kCompiled       compile/execute split: a CompiledCircuit's first
//                      run vs the legacy driver, its second run vs the
//                      first (per-run state ownership), and a parameter
//                      bank overlay vs a rebuilt circuit with the same
//                      values written through device setters
//  - reltol: two legs must agree to a tolerance because they perform
//    different arithmetic on the way to the same converged solution.
//      kSparseVsDense  JacobianSolver::kDense vs kSparse
//      kBypass         NewtonOptions::bypass on vs off
//      kJacobianReuse  NewtonOptions::jacobian_reuse on vs off
//      kBypassAndReuse both accelerators on vs off (transient only)
//      kKernels        NewtonOptions::kernels on vs off, exercised
//                      against both the dense and the sparse Jacobian
//                      sink (lanes accumulate in bucket order, so the
//                      contract is reltol, not bitwise)
//  - soundness: a static prediction must contain the dynamic result.
//      kAnalyze        nemsim::analyze's DC node intervals must contain
//                      the solved operating point (within a small slack
//                      for the solver's gmin/reltol perturbation), and
//                      every operating-region verdict's predicted
//                      unknown enclosure must hold at the OP
//
// Every leg builds its OWN circuit from the seed — device state
// (capacitor history, NEMS beam position) must never leak between legs.
// The baseline leg (dense LU, accelerators off, flat, serial) is solved
// once per analysis and shared as the reference for all contracts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nemsim/check/compare.h"
#include "nemsim/check/generator.h"
#include "nemsim/spice/diagnostics.h"

namespace nemsim::check {

enum class Analysis { kOp, kTransient, kDcSweep };
enum class Contract {
  kDeterminism,
  kRoundTrip,
  kHierarchy,
  kParallelSweep,
  kSparseVsDense,
  kBypass,
  kJacobianReuse,
  kBypassAndReuse,
  kAnalyze,
  kCompiled,
  kKernels,
};

const char* to_string(Analysis a);
const char* to_string(Contract c);
bool contract_is_bitwise(Contract c);
/// Parses the kebab-case names printed by to_string; throws
/// InvalidArgument on anything else.
Analysis parse_analysis(const std::string& s);
Contract parse_contract(const std::string& s);

/// Deliberate defect injection, for proving the checker catches what it
/// claims to catch (and for exercising the minimizer on a real
/// mismatch).  kStaleJacobian models a modified-Newton implementation
/// whose refresh gate is broken: on jacobian_reuse legs the Newton
/// tolerance is loosened and the stale-LU acceptance gate is disabled,
/// so solves settle visibly short of the true solution.
enum class Sabotage { kNone, kStaleJacobian };

struct CheckOptions {
  GeneratorOptions generator;
  /// Restrict to the bitwise contracts (fast smoke tier).
  bool bitwise_only = false;
  /// Restrict to one contract (e.g. a dedicated kAnalyze soundness
  /// sweep); empty runs the whole matrix.
  std::optional<Contract> only_contract;
  Sabotage sabotage = Sabotage::kNone;
  /// Reltol-contract tolerances.  OP solves share one Newton tolerance,
  /// so they agree tightly; transients accumulate step-sequence
  /// differences through the LTE controller and get more room.
  double op_reltol = 1e-6;
  double op_abstol = 1e-9;
  /// Transient tolerances judge *trajectories*, not single solves: two
  /// legs doing different arithmetic adapt different step sequences, and
  /// the integrator only bounds per-step truncation error to lte_reltol
  /// (2e-3) — at switching edges the accumulated, interpolated
  /// divergence between two legitimate step sequences reaches a few
  /// times that (measured ~0.6 % worst case for bypass on generated
  /// circuits).  tran_reltol therefore sits at 5x LTE; anything past it
  /// means a leg left the converged trajectory, not that the steppers
  /// disagreed about where to sample it (this margin caught the
  /// bypass fast-restart defect: blind dt/8 post-breakpoint steps
  /// displaced trajectories by ~30 mV / 15 %).  tran_abstol covers
  /// small-amplitude nodes whose per-signal reltol scale shrinks below
  /// the bypass admission tolerance (bypass_reltol = 1e-4 on ~1 V
  /// signals; second-order replay error ~1e-5).
  double tran_reltol = 1e-2;
  double tran_abstol = 2e-5;
  /// Time half-width of the comparison tube (Tolerance::time_tol):
  /// pointwise values may match anywhere within +/- this much of the
  /// reference time, absorbing the few-ps step-sequence skew two
  /// legitimate adaptive integrations accumulate through a fast edge.
  double tran_time_tol = 5e-12;
  /// kAnalyze containment slack.  The analyzer's intervals enclose the
  /// *exact* DC solution; the solver hands back one perturbed by its
  /// final gmin shunts (1e-15 S against conductances no smaller than the
  /// NEMFET goff floor, worst case ~1e-5 V) and its Newton reltol.
  double analyze_abstol = 1e-4;
  double analyze_reltol = 1e-6;
  std::size_t sweep_points = 9;        ///< DC sweep 0..vdd point count
  std::size_t sweep_threads = 4;       ///< "N threads" leg of kParallelSweep
  /// Optional sinks: mismatches become report notes; with forensics
  /// enabled each mismatch dumps the offending deck + detail through
  /// write_failure_forensics (tagged per seed/analysis/contract).
  spice::RunReport* report = nullptr;
  spice::ForensicsOptions forensics;
};

struct Mismatch {
  std::uint64_t seed = 0;
  Analysis analysis = Analysis::kOp;
  Contract contract = Contract::kDeterminism;
  /// Worst row named via the MNA unknown table, both values, tolerance.
  std::string detail;
  /// Netlist reproducing the failure (feed to deck_mismatches or
  /// `nemsim-fuzz --deck`).
  std::string deck;
};

struct CheckCaseResult {
  std::uint64_t seed = 0;
  std::size_t contracts_run = 0;
  std::vector<Mismatch> mismatches;
  bool ok() const { return mismatches.empty(); }
};

/// Runs the full contract matrix for one seed.
CheckCaseResult run_check_case(std::uint64_t seed, const CheckOptions& opts);

/// Replays one (analysis, contract) leg on an explicit deck instead of a
/// generated circuit; returns true when the deck still violates the
/// contract.  This is the minimizer's predicate and the CLI's `--deck`
/// repro path.  kHierarchy is not deck-replayable (the wrapped twin
/// needs the generator) and always returns false.
bool deck_mismatches(const std::string& deck, Analysis analysis,
                     Contract contract, const CheckOptions& opts,
                     std::string* detail = nullptr);

}  // namespace nemsim::check
