// Greedy deck minimizer for differential mismatches.
//
// Given a netlist deck that violates one (analysis, contract) pair, the
// minimizer repeatedly tries two shrinking moves and keeps any that
// still reproduces the mismatch:
//  - delete one device card, or
//  - merge one node into another (textual node-token substitution).
// A candidate deck that fails to parse, lint, or solve is rejected (the
// predicate — deck_mismatches — treats "cannot evaluate the contract"
// as not reproducing), so minimization never wanders into merely-broken
// decks.  The loop runs to a fixpoint: the result is 1-minimal — no
// single remaining deletion or merge keeps the mismatch alive.
#pragma once

#include <cstddef>
#include <string>

#include "nemsim/check/checker.h"

namespace nemsim::check {

struct MinimizeResult {
  std::string deck;               ///< shrunk deck, still mismatching
  std::size_t devices_removed = 0;
  std::size_t nodes_merged = 0;
  std::size_t predicate_calls = 0;  ///< contract evaluations spent
};

/// Shrinks `deck` while `deck_mismatches(deck, analysis, contract, opts)`
/// stays true.  Requires the initial deck to mismatch (throws
/// InvalidArgument otherwise — minimizing a passing deck is a caller
/// bug).  kHierarchy decks are not minimizable (deck_mismatches cannot
/// replay them) and are rejected the same way.
MinimizeResult minimize_deck(const std::string& deck, Analysis analysis,
                             Contract contract, const CheckOptions& opts);

}  // namespace nemsim::check
