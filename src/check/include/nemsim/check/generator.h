// Seeded random circuit generator for the differential checker.
//
// generate_circuit(seed) is a pure function: the same seed always
// rebuilds the identical circuit (device-for-device, node-for-node), so
// the configuration-matrix executor can give every redundant engine path
// its own freshly built twin without sharing any device state between
// runs.  Generated circuits are structurally lint-clean by construction
// (every node has a DC path to ground, no voltage loops, no
// current-only cutsets) and use only netlist-exactly-representable
// parameter values drawn from E-series-style tables, so an
// export -> parse round trip reproduces bit-identical device parameters
// (the exporter prints at 6 significant digits; every table value prints
// and re-parses to the same double).
//
// Circuit shape: a supply rail (Vsup, DC vdd) and a stimulus source
// (Vin: DC, PULSE, or PWL) feed a seeded sequence of stages — RC
// dividers, RLC branches, diode clamps, CMOS inverters, NEMFET
// pull-downs, VCVS buffers, VCCS loads, and resistive bridges — each
// anchored to a previously created node.  Stage counts span the n = 32
// dense/sparse crossover, so both linear-solver paths are exercised.
// NEMFET gates are tied to a rail (vdd or ground): the beam sits on a
// unique equilibrium branch, keeping every redundant-path comparison
// away from the bistable pull-in boundary where roundoff legitimately
// selects different branches.
#pragma once

#include <cstdint>
#include <string>

#include "nemsim/spice/circuit.h"

namespace nemsim::check {

struct GeneratorOptions {
  std::size_t min_stages = 3;
  std::size_t max_stages = 14;  ///< spans the n = 32 dense/sparse crossover
  bool allow_inductors = true;
  bool allow_diodes = true;
  bool allow_mosfets = true;
  bool allow_nemfets = true;
  bool allow_controlled = true;
  double vdd = 1.2;  ///< supply (also the stimulus swing)
};

/// Everything the executor needs to know about a generated circuit
/// beyond its devices.
struct GeneratedInfo {
  std::string supply_source = "Vsup";
  std::string stimulus_source = "Vin";
  double vdd = 1.2;
  double tstop = 4e-9;  ///< transient horizon covering the stimulus edges
  std::size_t stages = 0;
  bool has_nemfet = false;
  bool has_mosfet = false;
  bool has_diode = false;
  /// Hierarchical-twin node/unknown names carry this instance prefix
  /// ("Xdut."); stripping it maps wrapped names onto flat ones.
  std::string wrap_prefix = "Xdut.";
};

/// Builds the circuit for `seed`.  With `wrap_in_subckt` the identical
/// stage sequence is elaborated through a Subcircuit instance ("Xdut")
/// instead of flat — same node-creation and device order, so the MNA
/// systems are twins and the flat/hierarchical contract is bitwise.
spice::Circuit generate_circuit(std::uint64_t seed,
                                const GeneratorOptions& options = {},
                                GeneratedInfo* info = nullptr,
                                bool wrap_in_subckt = false);

}  // namespace nemsim::check
