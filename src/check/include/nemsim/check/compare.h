// Tolerance-aware result comparison for the differential checker.
//
// Two comparison regimes back the two contract classes:
//  - bitwise (Tolerance{0, 0}): every value must be identical to the
//    last bit (== on doubles; NaN never matches).  Used for contracts
//    where the engine promises the exact same arithmetic: accelerators
//    off, parallel determinism, hierarchy flattening, netlist round
//    trips on exactly-representable decks.
//  - reltol: |got - ref| <= reltol * scale + abstol, where scale is the
//    per-signal maximum |ref| (so microvolt wiggles on a 1 V signal are
//    judged against the signal, not against zero).  Used for contracts
//    that promise the same converged solution through different
//    arithmetic: dense vs sparse LU, quiescent bypass, Jacobian reuse.
//
// All comparisons name their worst row via the caller-provided display
// names (the MNA unknown table), so a mismatch report reads
// "v(Xdut.s3): ref=... got=..." rather than "row 17".
#pragma once

#include <string>
#include <vector>

#include "nemsim/spice/waveform.h"

namespace nemsim::check {

struct Tolerance {
  double reltol = 0.0;
  double abstol = 0.0;
  /// Waveform comparisons only: a sample matches if the value tolerance
  /// holds for ANY got-trace point within +/- time_tol of the reference
  /// time (a value+time "tube", as in waveform regression tools).  Two
  /// legitimate adaptive step sequences accumulate a few picoseconds of
  /// skew through a fast edge; at 24 V/ns a 1 ps skew is 24 mV of
  /// pointwise error that says nothing about solution accuracy.  0
  /// compares strictly pointwise.
  double time_tol = 0.0;
  bool bitwise() const { return reltol == 0.0 && abstol == 0.0; }
};

/// One (name, value) pair of a solution vector.
struct NamedValue {
  std::string name;
  double value = 0.0;
};

struct CompareResult {
  bool ok = true;
  std::size_t compared = 0;    ///< values examined
  std::size_t mismatched = 0;  ///< values out of tolerance
  /// Human-readable report: worst row first (named via the unknown
  /// table), then both full vectors when they disagree.
  std::string detail;
};

/// Compares two solution vectors row by row.  Names must agree pairwise
/// (a name mismatch is itself a failure: the two legs disagreed about
/// the unknown table).
CompareResult compare_values(const std::vector<NamedValue>& ref,
                             const std::vector<NamedValue>& got,
                             const Tolerance& tol);

/// Compares two waveforms.  Bitwise: identical axes and identical
/// samples.  Reltol: `got` is interpolated onto the reference axis and
/// judged per signal against reltol * max|ref| + abstol (axes may
/// differ — adaptive steppers on different arithmetic land on different
/// step sequences).  Signal name sets must match exactly in both modes.
CompareResult compare_waveforms(const spice::Waveform& ref,
                                const spice::Waveform& got,
                                const Tolerance& tol);

}  // namespace nemsim::check
