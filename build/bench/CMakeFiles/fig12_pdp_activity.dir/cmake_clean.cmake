file(REMOVE_RECURSE
  "CMakeFiles/fig12_pdp_activity.dir/fig12_pdp_activity.cpp.o"
  "CMakeFiles/fig12_pdp_activity.dir/fig12_pdp_activity.cpp.o.d"
  "fig12_pdp_activity"
  "fig12_pdp_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_pdp_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
