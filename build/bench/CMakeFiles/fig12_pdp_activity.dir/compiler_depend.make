# Empty compiler generated dependencies file for fig12_pdp_activity.
# This may be replaced when dependencies are built.
