file(REMOVE_RECURSE
  "CMakeFiles/table1_device_calibration.dir/table1_device_calibration.cpp.o"
  "CMakeFiles/table1_device_calibration.dir/table1_device_calibration.cpp.o.d"
  "table1_device_calibration"
  "table1_device_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_device_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
