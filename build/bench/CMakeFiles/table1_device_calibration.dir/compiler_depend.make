# Empty compiler generated dependencies file for table1_device_calibration.
# This may be replaced when dependencies are built.
