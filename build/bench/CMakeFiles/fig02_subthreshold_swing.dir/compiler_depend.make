# Empty compiler generated dependencies file for fig02_subthreshold_swing.
# This may be replaced when dependencies are built.
