file(REMOVE_RECURSE
  "CMakeFiles/fig02_subthreshold_swing.dir/fig02_subthreshold_swing.cpp.o"
  "CMakeFiles/fig02_subthreshold_swing.dir/fig02_subthreshold_swing.cpp.o.d"
  "fig02_subthreshold_swing"
  "fig02_subthreshold_swing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_subthreshold_swing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
