file(REMOVE_RECURSE
  "CMakeFiles/fig01_itrs_trend.dir/fig01_itrs_trend.cpp.o"
  "CMakeFiles/fig01_itrs_trend.dir/fig01_itrs_trend.cpp.o.d"
  "fig01_itrs_trend"
  "fig01_itrs_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_itrs_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
