file(REMOVE_RECURSE
  "CMakeFiles/fig10_fanout_sweep.dir/fig10_fanout_sweep.cpp.o"
  "CMakeFiles/fig10_fanout_sweep.dir/fig10_fanout_sweep.cpp.o.d"
  "fig10_fanout_sweep"
  "fig10_fanout_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_fanout_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
