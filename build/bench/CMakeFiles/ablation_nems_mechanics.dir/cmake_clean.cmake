file(REMOVE_RECURSE
  "CMakeFiles/ablation_nems_mechanics.dir/ablation_nems_mechanics.cpp.o"
  "CMakeFiles/ablation_nems_mechanics.dir/ablation_nems_mechanics.cpp.o.d"
  "ablation_nems_mechanics"
  "ablation_nems_mechanics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nems_mechanics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
