# Empty compiler generated dependencies file for ablation_nems_mechanics.
# This may be replaced when dependencies are built.
