# Empty dependencies file for fig09_keeper_tradeoff.
# This may be replaced when dependencies are built.
