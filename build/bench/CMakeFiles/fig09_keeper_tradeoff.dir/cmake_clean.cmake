file(REMOVE_RECURSE
  "CMakeFiles/fig09_keeper_tradeoff.dir/fig09_keeper_tradeoff.cpp.o"
  "CMakeFiles/fig09_keeper_tradeoff.dir/fig09_keeper_tradeoff.cpp.o.d"
  "fig09_keeper_tradeoff"
  "fig09_keeper_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_keeper_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
