
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_temperature.cpp" "bench/CMakeFiles/ablation_temperature.dir/ablation_temperature.cpp.o" "gcc" "bench/CMakeFiles/ablation_temperature.dir/ablation_temperature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nemsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/nemsim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/nemsim_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/nemsim_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nemsim_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nemsim_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nemsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
