# Empty dependencies file for fig11_fanin_sweep.
# This may be replaced when dependencies are built.
