# Empty compiler generated dependencies file for fig15_sram_latency_leakage.
# This may be replaced when dependencies are built.
