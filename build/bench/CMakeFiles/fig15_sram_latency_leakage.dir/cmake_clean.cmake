file(REMOVE_RECURSE
  "CMakeFiles/fig15_sram_latency_leakage.dir/fig15_sram_latency_leakage.cpp.o"
  "CMakeFiles/fig15_sram_latency_leakage.dir/fig15_sram_latency_leakage.cpp.o.d"
  "fig15_sram_latency_leakage"
  "fig15_sram_latency_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_sram_latency_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
