file(REMOVE_RECURSE
  "CMakeFiles/fig14_sram_butterfly.dir/fig14_sram_butterfly.cpp.o"
  "CMakeFiles/fig14_sram_butterfly.dir/fig14_sram_butterfly.cpp.o.d"
  "fig14_sram_butterfly"
  "fig14_sram_butterfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sram_butterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
