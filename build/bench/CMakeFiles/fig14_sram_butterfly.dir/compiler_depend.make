# Empty compiler generated dependencies file for fig14_sram_butterfly.
# This may be replaced when dependencies are built.
