file(REMOVE_RECURSE
  "CMakeFiles/fig17_sleep_transistor.dir/fig17_sleep_transistor.cpp.o"
  "CMakeFiles/fig17_sleep_transistor.dir/fig17_sleep_transistor.cpp.o.d"
  "fig17_sleep_transistor"
  "fig17_sleep_transistor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_sleep_transistor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
