# Empty compiler generated dependencies file for fig17_sleep_transistor.
# This may be replaced when dependencies are built.
