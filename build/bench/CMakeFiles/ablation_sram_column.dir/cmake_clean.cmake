file(REMOVE_RECURSE
  "CMakeFiles/ablation_sram_column.dir/ablation_sram_column.cpp.o"
  "CMakeFiles/ablation_sram_column.dir/ablation_sram_column.cpp.o.d"
  "ablation_sram_column"
  "ablation_sram_column.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sram_column.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
