# Empty compiler generated dependencies file for ablation_sram_column.
# This may be replaced when dependencies are built.
