# Empty compiler generated dependencies file for ablation_nems_resonator.
# This may be replaced when dependencies are built.
