file(REMOVE_RECURSE
  "CMakeFiles/ablation_nems_resonator.dir/ablation_nems_resonator.cpp.o"
  "CMakeFiles/ablation_nems_resonator.dir/ablation_nems_resonator.cpp.o.d"
  "ablation_nems_resonator"
  "ablation_nems_resonator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nems_resonator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
