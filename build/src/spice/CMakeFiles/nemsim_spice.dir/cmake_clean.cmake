file(REMOVE_RECURSE
  "CMakeFiles/nemsim_spice.dir/src/ac.cpp.o"
  "CMakeFiles/nemsim_spice.dir/src/ac.cpp.o.d"
  "CMakeFiles/nemsim_spice.dir/src/circuit.cpp.o"
  "CMakeFiles/nemsim_spice.dir/src/circuit.cpp.o.d"
  "CMakeFiles/nemsim_spice.dir/src/dcsweep.cpp.o"
  "CMakeFiles/nemsim_spice.dir/src/dcsweep.cpp.o.d"
  "CMakeFiles/nemsim_spice.dir/src/engine.cpp.o"
  "CMakeFiles/nemsim_spice.dir/src/engine.cpp.o.d"
  "CMakeFiles/nemsim_spice.dir/src/measure.cpp.o"
  "CMakeFiles/nemsim_spice.dir/src/measure.cpp.o.d"
  "CMakeFiles/nemsim_spice.dir/src/netlist_export.cpp.o"
  "CMakeFiles/nemsim_spice.dir/src/netlist_export.cpp.o.d"
  "CMakeFiles/nemsim_spice.dir/src/newton.cpp.o"
  "CMakeFiles/nemsim_spice.dir/src/newton.cpp.o.d"
  "CMakeFiles/nemsim_spice.dir/src/op.cpp.o"
  "CMakeFiles/nemsim_spice.dir/src/op.cpp.o.d"
  "CMakeFiles/nemsim_spice.dir/src/transient.cpp.o"
  "CMakeFiles/nemsim_spice.dir/src/transient.cpp.o.d"
  "CMakeFiles/nemsim_spice.dir/src/waveform.cpp.o"
  "CMakeFiles/nemsim_spice.dir/src/waveform.cpp.o.d"
  "libnemsim_spice.a"
  "libnemsim_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemsim_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
