# Empty dependencies file for nemsim_spice.
# This may be replaced when dependencies are built.
