file(REMOVE_RECURSE
  "libnemsim_spice.a"
)
