
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/src/ac.cpp" "src/spice/CMakeFiles/nemsim_spice.dir/src/ac.cpp.o" "gcc" "src/spice/CMakeFiles/nemsim_spice.dir/src/ac.cpp.o.d"
  "/root/repo/src/spice/src/circuit.cpp" "src/spice/CMakeFiles/nemsim_spice.dir/src/circuit.cpp.o" "gcc" "src/spice/CMakeFiles/nemsim_spice.dir/src/circuit.cpp.o.d"
  "/root/repo/src/spice/src/dcsweep.cpp" "src/spice/CMakeFiles/nemsim_spice.dir/src/dcsweep.cpp.o" "gcc" "src/spice/CMakeFiles/nemsim_spice.dir/src/dcsweep.cpp.o.d"
  "/root/repo/src/spice/src/engine.cpp" "src/spice/CMakeFiles/nemsim_spice.dir/src/engine.cpp.o" "gcc" "src/spice/CMakeFiles/nemsim_spice.dir/src/engine.cpp.o.d"
  "/root/repo/src/spice/src/measure.cpp" "src/spice/CMakeFiles/nemsim_spice.dir/src/measure.cpp.o" "gcc" "src/spice/CMakeFiles/nemsim_spice.dir/src/measure.cpp.o.d"
  "/root/repo/src/spice/src/netlist_export.cpp" "src/spice/CMakeFiles/nemsim_spice.dir/src/netlist_export.cpp.o" "gcc" "src/spice/CMakeFiles/nemsim_spice.dir/src/netlist_export.cpp.o.d"
  "/root/repo/src/spice/src/newton.cpp" "src/spice/CMakeFiles/nemsim_spice.dir/src/newton.cpp.o" "gcc" "src/spice/CMakeFiles/nemsim_spice.dir/src/newton.cpp.o.d"
  "/root/repo/src/spice/src/op.cpp" "src/spice/CMakeFiles/nemsim_spice.dir/src/op.cpp.o" "gcc" "src/spice/CMakeFiles/nemsim_spice.dir/src/op.cpp.o.d"
  "/root/repo/src/spice/src/transient.cpp" "src/spice/CMakeFiles/nemsim_spice.dir/src/transient.cpp.o" "gcc" "src/spice/CMakeFiles/nemsim_spice.dir/src/transient.cpp.o.d"
  "/root/repo/src/spice/src/waveform.cpp" "src/spice/CMakeFiles/nemsim_spice.dir/src/waveform.cpp.o" "gcc" "src/spice/CMakeFiles/nemsim_spice.dir/src/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/nemsim_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nemsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
