# Empty compiler generated dependencies file for nemsim_devices.
# This may be replaced when dependencies are built.
