file(REMOVE_RECURSE
  "libnemsim_devices.a"
)
