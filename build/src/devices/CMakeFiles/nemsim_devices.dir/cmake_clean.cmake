file(REMOVE_RECURSE
  "CMakeFiles/nemsim_devices.dir/src/controlled.cpp.o"
  "CMakeFiles/nemsim_devices.dir/src/controlled.cpp.o.d"
  "CMakeFiles/nemsim_devices.dir/src/diode.cpp.o"
  "CMakeFiles/nemsim_devices.dir/src/diode.cpp.o.d"
  "CMakeFiles/nemsim_devices.dir/src/mosfet.cpp.o"
  "CMakeFiles/nemsim_devices.dir/src/mosfet.cpp.o.d"
  "CMakeFiles/nemsim_devices.dir/src/nemfet.cpp.o"
  "CMakeFiles/nemsim_devices.dir/src/nemfet.cpp.o.d"
  "CMakeFiles/nemsim_devices.dir/src/passives.cpp.o"
  "CMakeFiles/nemsim_devices.dir/src/passives.cpp.o.d"
  "CMakeFiles/nemsim_devices.dir/src/sources.cpp.o"
  "CMakeFiles/nemsim_devices.dir/src/sources.cpp.o.d"
  "libnemsim_devices.a"
  "libnemsim_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemsim_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
