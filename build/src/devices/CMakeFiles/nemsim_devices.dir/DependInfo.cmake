
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/src/controlled.cpp" "src/devices/CMakeFiles/nemsim_devices.dir/src/controlled.cpp.o" "gcc" "src/devices/CMakeFiles/nemsim_devices.dir/src/controlled.cpp.o.d"
  "/root/repo/src/devices/src/diode.cpp" "src/devices/CMakeFiles/nemsim_devices.dir/src/diode.cpp.o" "gcc" "src/devices/CMakeFiles/nemsim_devices.dir/src/diode.cpp.o.d"
  "/root/repo/src/devices/src/mosfet.cpp" "src/devices/CMakeFiles/nemsim_devices.dir/src/mosfet.cpp.o" "gcc" "src/devices/CMakeFiles/nemsim_devices.dir/src/mosfet.cpp.o.d"
  "/root/repo/src/devices/src/nemfet.cpp" "src/devices/CMakeFiles/nemsim_devices.dir/src/nemfet.cpp.o" "gcc" "src/devices/CMakeFiles/nemsim_devices.dir/src/nemfet.cpp.o.d"
  "/root/repo/src/devices/src/passives.cpp" "src/devices/CMakeFiles/nemsim_devices.dir/src/passives.cpp.o" "gcc" "src/devices/CMakeFiles/nemsim_devices.dir/src/passives.cpp.o.d"
  "/root/repo/src/devices/src/sources.cpp" "src/devices/CMakeFiles/nemsim_devices.dir/src/sources.cpp.o" "gcc" "src/devices/CMakeFiles/nemsim_devices.dir/src/sources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/nemsim_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nemsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nemsim_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
