
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/src/cards.cpp" "src/tech/CMakeFiles/nemsim_tech.dir/src/cards.cpp.o" "gcc" "src/tech/CMakeFiles/nemsim_tech.dir/src/cards.cpp.o.d"
  "/root/repo/src/tech/src/characterize.cpp" "src/tech/CMakeFiles/nemsim_tech.dir/src/characterize.cpp.o" "gcc" "src/tech/CMakeFiles/nemsim_tech.dir/src/characterize.cpp.o.d"
  "/root/repo/src/tech/src/corners.cpp" "src/tech/CMakeFiles/nemsim_tech.dir/src/corners.cpp.o" "gcc" "src/tech/CMakeFiles/nemsim_tech.dir/src/corners.cpp.o.d"
  "/root/repo/src/tech/src/itrs.cpp" "src/tech/CMakeFiles/nemsim_tech.dir/src/itrs.cpp.o" "gcc" "src/tech/CMakeFiles/nemsim_tech.dir/src/itrs.cpp.o.d"
  "/root/repo/src/tech/src/netlist_parser.cpp" "src/tech/CMakeFiles/nemsim_tech.dir/src/netlist_parser.cpp.o" "gcc" "src/tech/CMakeFiles/nemsim_tech.dir/src/netlist_parser.cpp.o.d"
  "/root/repo/src/tech/src/swing_survey.cpp" "src/tech/CMakeFiles/nemsim_tech.dir/src/swing_survey.cpp.o" "gcc" "src/tech/CMakeFiles/nemsim_tech.dir/src/swing_survey.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/devices/CMakeFiles/nemsim_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nemsim_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nemsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nemsim_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
