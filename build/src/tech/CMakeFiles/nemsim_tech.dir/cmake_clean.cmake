file(REMOVE_RECURSE
  "CMakeFiles/nemsim_tech.dir/src/cards.cpp.o"
  "CMakeFiles/nemsim_tech.dir/src/cards.cpp.o.d"
  "CMakeFiles/nemsim_tech.dir/src/characterize.cpp.o"
  "CMakeFiles/nemsim_tech.dir/src/characterize.cpp.o.d"
  "CMakeFiles/nemsim_tech.dir/src/corners.cpp.o"
  "CMakeFiles/nemsim_tech.dir/src/corners.cpp.o.d"
  "CMakeFiles/nemsim_tech.dir/src/itrs.cpp.o"
  "CMakeFiles/nemsim_tech.dir/src/itrs.cpp.o.d"
  "CMakeFiles/nemsim_tech.dir/src/netlist_parser.cpp.o"
  "CMakeFiles/nemsim_tech.dir/src/netlist_parser.cpp.o.d"
  "CMakeFiles/nemsim_tech.dir/src/swing_survey.cpp.o"
  "CMakeFiles/nemsim_tech.dir/src/swing_survey.cpp.o.d"
  "libnemsim_tech.a"
  "libnemsim_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemsim_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
