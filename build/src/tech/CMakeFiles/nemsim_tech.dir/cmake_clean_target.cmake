file(REMOVE_RECURSE
  "libnemsim_tech.a"
)
