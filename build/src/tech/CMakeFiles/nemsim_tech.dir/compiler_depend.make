# Empty compiler generated dependencies file for nemsim_tech.
# This may be replaced when dependencies are built.
