file(REMOVE_RECURSE
  "CMakeFiles/nemsim_util.dir/src/interp.cpp.o"
  "CMakeFiles/nemsim_util.dir/src/interp.cpp.o.d"
  "CMakeFiles/nemsim_util.dir/src/logging.cpp.o"
  "CMakeFiles/nemsim_util.dir/src/logging.cpp.o.d"
  "CMakeFiles/nemsim_util.dir/src/root.cpp.o"
  "CMakeFiles/nemsim_util.dir/src/root.cpp.o.d"
  "CMakeFiles/nemsim_util.dir/src/stats.cpp.o"
  "CMakeFiles/nemsim_util.dir/src/stats.cpp.o.d"
  "CMakeFiles/nemsim_util.dir/src/table.cpp.o"
  "CMakeFiles/nemsim_util.dir/src/table.cpp.o.d"
  "libnemsim_util.a"
  "libnemsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
