file(REMOVE_RECURSE
  "libnemsim_util.a"
)
