# Empty compiler generated dependencies file for nemsim_util.
# This may be replaced when dependencies are built.
