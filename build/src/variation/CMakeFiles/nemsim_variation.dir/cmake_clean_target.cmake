file(REMOVE_RECURSE
  "libnemsim_variation.a"
)
