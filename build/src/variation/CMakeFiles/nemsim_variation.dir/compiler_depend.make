# Empty compiler generated dependencies file for nemsim_variation.
# This may be replaced when dependencies are built.
