file(REMOVE_RECURSE
  "CMakeFiles/nemsim_variation.dir/src/montecarlo.cpp.o"
  "CMakeFiles/nemsim_variation.dir/src/montecarlo.cpp.o.d"
  "libnemsim_variation.a"
  "libnemsim_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemsim_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
