# Empty compiler generated dependencies file for nemsim_linalg.
# This may be replaced when dependencies are built.
