
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/src/complex.cpp" "src/linalg/CMakeFiles/nemsim_linalg.dir/src/complex.cpp.o" "gcc" "src/linalg/CMakeFiles/nemsim_linalg.dir/src/complex.cpp.o.d"
  "/root/repo/src/linalg/src/lu.cpp" "src/linalg/CMakeFiles/nemsim_linalg.dir/src/lu.cpp.o" "gcc" "src/linalg/CMakeFiles/nemsim_linalg.dir/src/lu.cpp.o.d"
  "/root/repo/src/linalg/src/matrix.cpp" "src/linalg/CMakeFiles/nemsim_linalg.dir/src/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/nemsim_linalg.dir/src/matrix.cpp.o.d"
  "/root/repo/src/linalg/src/polyfit.cpp" "src/linalg/CMakeFiles/nemsim_linalg.dir/src/polyfit.cpp.o" "gcc" "src/linalg/CMakeFiles/nemsim_linalg.dir/src/polyfit.cpp.o.d"
  "/root/repo/src/linalg/src/sparse.cpp" "src/linalg/CMakeFiles/nemsim_linalg.dir/src/sparse.cpp.o" "gcc" "src/linalg/CMakeFiles/nemsim_linalg.dir/src/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nemsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
