file(REMOVE_RECURSE
  "libnemsim_linalg.a"
)
