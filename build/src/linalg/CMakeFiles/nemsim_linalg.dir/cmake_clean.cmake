file(REMOVE_RECURSE
  "CMakeFiles/nemsim_linalg.dir/src/complex.cpp.o"
  "CMakeFiles/nemsim_linalg.dir/src/complex.cpp.o.d"
  "CMakeFiles/nemsim_linalg.dir/src/lu.cpp.o"
  "CMakeFiles/nemsim_linalg.dir/src/lu.cpp.o.d"
  "CMakeFiles/nemsim_linalg.dir/src/matrix.cpp.o"
  "CMakeFiles/nemsim_linalg.dir/src/matrix.cpp.o.d"
  "CMakeFiles/nemsim_linalg.dir/src/polyfit.cpp.o"
  "CMakeFiles/nemsim_linalg.dir/src/polyfit.cpp.o.d"
  "CMakeFiles/nemsim_linalg.dir/src/sparse.cpp.o"
  "CMakeFiles/nemsim_linalg.dir/src/sparse.cpp.o.d"
  "libnemsim_linalg.a"
  "libnemsim_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemsim_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
