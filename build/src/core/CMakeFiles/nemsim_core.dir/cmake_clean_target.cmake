file(REMOVE_RECURSE
  "libnemsim_core.a"
)
