# Empty dependencies file for nemsim_core.
# This may be replaced when dependencies are built.
