file(REMOVE_RECURSE
  "CMakeFiles/nemsim_core.dir/src/dynamic_or.cpp.o"
  "CMakeFiles/nemsim_core.dir/src/dynamic_or.cpp.o.d"
  "CMakeFiles/nemsim_core.dir/src/gates.cpp.o"
  "CMakeFiles/nemsim_core.dir/src/gates.cpp.o.d"
  "CMakeFiles/nemsim_core.dir/src/metrics.cpp.o"
  "CMakeFiles/nemsim_core.dir/src/metrics.cpp.o.d"
  "CMakeFiles/nemsim_core.dir/src/power_gating.cpp.o"
  "CMakeFiles/nemsim_core.dir/src/power_gating.cpp.o.d"
  "CMakeFiles/nemsim_core.dir/src/sram.cpp.o"
  "CMakeFiles/nemsim_core.dir/src/sram.cpp.o.d"
  "libnemsim_core.a"
  "libnemsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
