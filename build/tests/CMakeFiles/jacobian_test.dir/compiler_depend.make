# Empty compiler generated dependencies file for jacobian_test.
# This may be replaced when dependencies are built.
