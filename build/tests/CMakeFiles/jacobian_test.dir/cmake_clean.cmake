file(REMOVE_RECURSE
  "CMakeFiles/jacobian_test.dir/jacobian_test.cpp.o"
  "CMakeFiles/jacobian_test.dir/jacobian_test.cpp.o.d"
  "jacobian_test"
  "jacobian_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
