file(REMOVE_RECURSE
  "CMakeFiles/nemfet_test.dir/nemfet_test.cpp.o"
  "CMakeFiles/nemfet_test.dir/nemfet_test.cpp.o.d"
  "nemfet_test"
  "nemfet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemfet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
