# Empty dependencies file for nemfet_test.
# This may be replaced when dependencies are built.
