# Empty dependencies file for sram_write_test.
# This may be replaced when dependencies are built.
