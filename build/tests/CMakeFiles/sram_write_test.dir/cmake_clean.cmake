file(REMOVE_RECURSE
  "CMakeFiles/sram_write_test.dir/sram_write_test.cpp.o"
  "CMakeFiles/sram_write_test.dir/sram_write_test.cpp.o.d"
  "sram_write_test"
  "sram_write_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sram_write_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
