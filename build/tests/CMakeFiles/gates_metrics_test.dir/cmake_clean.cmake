file(REMOVE_RECURSE
  "CMakeFiles/gates_metrics_test.dir/gates_metrics_test.cpp.o"
  "CMakeFiles/gates_metrics_test.dir/gates_metrics_test.cpp.o.d"
  "gates_metrics_test"
  "gates_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gates_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
