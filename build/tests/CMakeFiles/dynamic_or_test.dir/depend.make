# Empty dependencies file for dynamic_or_test.
# This may be replaced when dependencies are built.
