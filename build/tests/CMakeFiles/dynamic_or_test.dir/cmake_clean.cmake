file(REMOVE_RECURSE
  "CMakeFiles/dynamic_or_test.dir/dynamic_or_test.cpp.o"
  "CMakeFiles/dynamic_or_test.dir/dynamic_or_test.cpp.o.d"
  "dynamic_or_test"
  "dynamic_or_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_or_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
