file(REMOVE_RECURSE
  "CMakeFiles/mosfet_test.dir/mosfet_test.cpp.o"
  "CMakeFiles/mosfet_test.dir/mosfet_test.cpp.o.d"
  "mosfet_test"
  "mosfet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosfet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
