file(REMOVE_RECURSE
  "CMakeFiles/spice_core_test.dir/spice_core_test.cpp.o"
  "CMakeFiles/spice_core_test.dir/spice_core_test.cpp.o.d"
  "spice_core_test"
  "spice_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
