# Empty compiler generated dependencies file for spice_core_test.
# This may be replaced when dependencies are built.
