file(REMOVE_RECURSE
  "CMakeFiles/sram_test.dir/sram_test.cpp.o"
  "CMakeFiles/sram_test.dir/sram_test.cpp.o.d"
  "sram_test"
  "sram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
