# Empty dependencies file for sram_test.
# This may be replaced when dependencies are built.
