file(REMOVE_RECURSE
  "CMakeFiles/nemfet_iv_curves.dir/nemfet_iv_curves.cpp.o"
  "CMakeFiles/nemfet_iv_curves.dir/nemfet_iv_curves.cpp.o.d"
  "nemfet_iv_curves"
  "nemfet_iv_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemfet_iv_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
