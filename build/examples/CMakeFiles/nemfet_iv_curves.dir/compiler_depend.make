# Empty compiler generated dependencies file for nemfet_iv_curves.
# This may be replaced when dependencies are built.
