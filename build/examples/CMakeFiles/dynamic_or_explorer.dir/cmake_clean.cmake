file(REMOVE_RECURSE
  "CMakeFiles/dynamic_or_explorer.dir/dynamic_or_explorer.cpp.o"
  "CMakeFiles/dynamic_or_explorer.dir/dynamic_or_explorer.cpp.o.d"
  "dynamic_or_explorer"
  "dynamic_or_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_or_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
