# Empty compiler generated dependencies file for dynamic_or_explorer.
# This may be replaced when dependencies are built.
