file(REMOVE_RECURSE
  "CMakeFiles/power_gating_planner.dir/power_gating_planner.cpp.o"
  "CMakeFiles/power_gating_planner.dir/power_gating_planner.cpp.o.d"
  "power_gating_planner"
  "power_gating_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_gating_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
