# Empty dependencies file for power_gating_planner.
# This may be replaced when dependencies are built.
