# Empty dependencies file for resonator_explorer.
# This may be replaced when dependencies are built.
