file(REMOVE_RECURSE
  "CMakeFiles/resonator_explorer.dir/resonator_explorer.cpp.o"
  "CMakeFiles/resonator_explorer.dir/resonator_explorer.cpp.o.d"
  "resonator_explorer"
  "resonator_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resonator_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
