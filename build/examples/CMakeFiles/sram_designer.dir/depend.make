# Empty dependencies file for sram_designer.
# This may be replaced when dependencies are built.
