file(REMOVE_RECURSE
  "CMakeFiles/sram_designer.dir/sram_designer.cpp.o"
  "CMakeFiles/sram_designer.dir/sram_designer.cpp.o.d"
  "sram_designer"
  "sram_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sram_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
