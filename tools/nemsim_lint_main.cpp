// nemsim-lint: pre-simulation structural analyzer over a SPICE deck.
//
// Usage: nemsim-lint [--strict-names] [--analyze] [--json] <deck.sp | ->
//
// Reads the netlist, builds the circuit, runs every lint rule
// (nemsim/spice/lint.h) and prints one line per finding plus a totals
// line.  With --analyze it additionally runs the semantic static
// analyzer (nemsim/spice/analyze.h): DC interval analysis, NEMFET
// operating-region reachability, stiffness/conditioning prediction and
// dead-device detection, all without solving anything.  The exit code
// is the worst severity across every finding, so the tool slots into
// CI and Makefiles directly:
//   0  clean (hints allowed; suppress even those from the code with
//      --strict-names to make hints count like warnings)
//   1  warnings
//   2  errors (the circuit is structurally unsolvable)
//   3  usage / IO / parse failure
//
// --json replaces the human-readable listing with one JSON object on
// stdout using the same findings schema RunReport::write_json emits
// ({"severity","rule","subject","message"}), so CI can consume either
// source with one parser.  The exit code is unchanged by --json.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "nemsim/spice/analyze.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/diagnostics.h"
#include "nemsim/spice/lint.h"
#include "nemsim/tech/netlist_parser.h"
#include "nemsim/util/error.h"
#include "nemsim/util/logging.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--strict-names] [--analyze] [--json] <deck.sp | ->\n"
            << "  lints a SPICE netlist without simulating it\n"
            << "  exit codes: 0 clean, 1 warnings, 2 errors, 3 parse/IO\n"
            << "  --strict-names: name-convention hints count as warnings\n"
            << "  --analyze: also run the semantic static analyzer\n"
            << "             (intervals, regions, stiffness, dead devices)\n"
            << "  --json: machine-readable findings on stdout\n";
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  using nemsim::lint::LintReport;
  using nemsim::lint::LintSeverity;

  bool strict_names = false;
  bool analyze = false;
  bool json = false;
  std::string input;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict-names") {
      strict_names = true;
    } else if (arg == "--analyze") {
      analyze = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "-h" || arg == "--help") {
      return usage(argv[0]);
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty()) return usage(argv[0]);

  // The analyzer logs its findings through the warn channel when invoked
  // via an analysis gate; here the report is printed explicitly, so the
  // logger would only duplicate every line.
  nemsim::set_log_level(nemsim::LogLevel::kError);

  std::string text;
  if (input == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream is(input);
    if (!is) {
      std::cerr << "nemsim-lint: cannot open '" << input << "'\n";
      return 3;
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    text = buffer.str();
  }

  LintReport report;
  LintReport analysis;
  try {
    nemsim::spice::Circuit circuit = nemsim::tech::parse_netlist(text);
    report = nemsim::lint::lint_circuit(circuit);
    // Semantic analysis assumes a structurally well-posed circuit (the
    // interval fixpoint needs sources to anchor against); on lint errors
    // its verdicts would only restate the structural problem, so skip it.
    if (analyze && !report.has_errors()) {
      analysis = nemsim::analyze::analyze_circuit(circuit).findings;
    }
  } catch (const nemsim::Error& e) {
    std::cerr << "nemsim-lint: " << e.what() << "\n";
    return 3;
  }

  if (json) {
    // Key names match RunReport::write_json so fixtures and CI share one
    // schema regardless of which tool produced the report.
    std::string shown = input == "-" ? "<stdin>" : input;
    for (std::size_t p = 0; (p = shown.find_first_of("\\\"", p)) !=
                            std::string::npos; p += 2) {
      shown.insert(p, 1, '\\');
    }
    std::cout << "{\n  \"input\": \"" << shown
              << "\",\n  \"errors\": " << (report.errors + analysis.errors)
              << ",\n  \"warnings\": " << (report.warnings + analysis.warnings)
              << ",\n  \"hints\": " << (report.hints + analysis.hints)
              << ",\n  \"lint_findings\": ";
    nemsim::spice::write_findings_json(std::cout, report.findings);
    std::cout << ",\n  \"analyze_findings\": ";
    nemsim::spice::write_findings_json(std::cout, analysis.findings);
    std::cout << "\n}\n";
  } else {
    std::cout << report.summary() << "\n";
    if (analyze) std::cout << analysis.summary() << "\n";
  }

  if (report.errors > 0 || analysis.errors > 0) return 2;
  if (report.warnings > 0 || analysis.warnings > 0) return 1;
  if (strict_names && (report.hints > 0 || analysis.hints > 0)) return 1;
  return 0;
}
