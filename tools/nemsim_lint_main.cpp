// nemsim-lint: pre-simulation structural analyzer over a SPICE deck.
//
// Usage: nemsim-lint [--strict-names] <deck.sp | ->
//
// Reads the netlist, builds the circuit, runs every lint rule
// (nemsim/spice/lint.h) and prints one line per finding plus a totals
// line.  The exit code is the worst severity, so the tool slots into CI
// and Makefiles directly:
//   0  clean (hints allowed; suppress even those from the code with
//      --strict-names to make hints count like warnings)
//   1  warnings
//   2  errors (the circuit is structurally unsolvable)
//   3  usage / IO / parse failure
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "nemsim/spice/circuit.h"
#include "nemsim/spice/lint.h"
#include "nemsim/tech/netlist_parser.h"
#include "nemsim/util/error.h"
#include "nemsim/util/logging.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--strict-names] <deck.sp | ->\n"
            << "  lints a SPICE netlist without simulating it\n"
            << "  exit codes: 0 clean, 1 warnings, 2 errors, 3 parse/IO\n"
            << "  --strict-names: name-convention hints count as warnings\n";
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  using nemsim::lint::LintReport;
  using nemsim::lint::LintSeverity;

  bool strict_names = false;
  std::string input;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict-names") {
      strict_names = true;
    } else if (arg == "-h" || arg == "--help") {
      return usage(argv[0]);
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty()) return usage(argv[0]);

  // The analyzer logs its findings through the warn channel when invoked
  // via an analysis gate; here the report is printed explicitly, so the
  // logger would only duplicate every line.
  nemsim::set_log_level(nemsim::LogLevel::kError);

  std::string text;
  if (input == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream is(input);
    if (!is) {
      std::cerr << "nemsim-lint: cannot open '" << input << "'\n";
      return 3;
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    text = buffer.str();
  }

  LintReport report;
  try {
    nemsim::spice::Circuit circuit = nemsim::tech::parse_netlist(text);
    report = nemsim::lint::lint_circuit(circuit);
  } catch (const nemsim::Error& e) {
    std::cerr << "nemsim-lint: " << e.what() << "\n";
    return 3;
  }

  std::cout << report.summary() << "\n";

  if (report.errors > 0) return 2;
  if (report.warnings > 0) return 1;
  if (strict_names && report.hints > 0) return 1;
  return 0;
}
