#!/usr/bin/env sh
# One-command C++ static-analysis gate: configures the default build
# directory if needed (so compile_commands.json exists) and runs the
# curated .clang-tidy check set over every library and tool source via
# the lint-cpp CMake target.
#
#   tools/lint_cpp.sh            # gate; nonzero exit on any finding
#
# clang-tidy is a host tool, not a build dependency: on machines without
# it (e.g. the minimal CI container, which only ships the compiler) the
# lint-cpp target is not generated and this script reports that and
# exits 0 rather than failing the build for a missing linter.  CI images
# that do carry clang-tidy get the full gate automatically.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build="$repo/build"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint_cpp.sh: clang-tidy not found on PATH; skipping the C++ lint gate" >&2
  exit 0
fi

if [ ! -f "$build/CMakeCache.txt" ]; then
  cmake --preset default -S "$repo" >/dev/null
fi
# Re-run the generator if clang-tidy appeared after the first configure
# (the lint-cpp target is created at configure time).
if ! cmake --build "$build" --target help 2>/dev/null | grep -q "lint-cpp"; then
  cmake "$build" >/dev/null
fi

exec cmake --build "$build" --target lint-cpp
