// nemsim-fuzz: differential fuzzer over the engine's redundant paths.
//
// Generate mode (default): for each seed in [--seed, --seed + --count),
// builds a random circuit and runs the full configuration matrix
// (nemsim/check/checker.h) — dense vs sparse LU, bypass / Jacobian
// reuse on vs off, flat vs hierarchical, serial vs parallel sweep,
// export -> parse round trip — comparing every pair under its bitwise
// or reltol contract.  Mismatches are printed with the worst MNA row
// named, and the offending deck plus a repro command are written to
// --out; with --minimize the deck is first shrunk (greedy device
// deletion + node merging) while the mismatch still reproduces.
//
// Repro mode: --deck FILE --analysis A --contract C replays one leg on
// an explicit deck (the file the generate mode wrote).
//
// Exit codes: 0 all contracts held, 1 mismatches found, 2 usage/IO.
//
// --break stale-jacobian injects a deliberate defect (a broken
// modified-Newton refresh gate) to prove the harness catches and
// minimizes what it claims to; it must make the run fail.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "nemsim/check/checker.h"
#include "nemsim/check/minimize.h"
#include "nemsim/util/error.h"
#include "nemsim/util/logging.h"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  generate mode:\n"
      << "    --seed N          first seed (default 1)\n"
      << "    --count N         seeds to run (default 20)\n"
      << "    --bitwise-only    only the bitwise contracts (fast smoke)\n"
      << "    --only NAME       run a single contract (e.g. analyze)\n"
      << "    --max-stages N    generator stage ceiling (default 14)\n"
      << "    --minimize        shrink each mismatching deck\n"
      << "    --out DIR         mismatch artifact directory (default "
         "fuzz_out)\n"
      << "    --break stale-jacobian   inject a defect; run must fail\n"
      << "  repro mode:\n"
      << "    --deck FILE --analysis op|tran|dcsweep --contract NAME\n"
      << "  exit codes: 0 clean, 1 mismatch, 2 usage/IO\n";
  return 2;
}

/// Writes `text` to out_dir/name, creating the directory on first use.
bool write_artifact(const std::string& out_dir, const std::string& name,
                    const std::string& text, std::string* path_out) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string path = out_dir + "/" + name;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "nemsim-fuzz: cannot write " << path << "\n";
    return false;
  }
  os << text;
  if (path_out != nullptr) *path_out = path;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nemsim;

  std::uint64_t seed = 1;
  std::size_t count = 20;
  std::string out_dir = "fuzz_out";
  std::string deck_file, analysis_name, contract_name, break_name;
  bool minimize = false;
  check::CheckOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "nemsim-fuzz: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--seed") {
        seed = std::stoull(value());
      } else if (arg == "--count") {
        count = std::stoull(value());
      } else if (arg == "--max-stages") {
        opts.generator.max_stages = std::stoull(value());
        if (opts.generator.min_stages > opts.generator.max_stages) {
          opts.generator.min_stages = opts.generator.max_stages;
        }
      } else if (arg == "--bitwise-only") {
        opts.bitwise_only = true;
      } else if (arg == "--only") {
        opts.only_contract = check::parse_contract(value());
      } else if (arg == "--minimize") {
        minimize = true;
      } else if (arg == "--out") {
        out_dir = value();
      } else if (arg == "--break") {
        break_name = value();
      } else if (arg == "--deck") {
        deck_file = value();
      } else if (arg == "--analysis") {
        analysis_name = value();
      } else if (arg == "--contract") {
        contract_name = value();
      } else if (arg == "-h" || arg == "--help") {
        return usage(argv[0]);
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::cerr << "nemsim-fuzz: bad value for " << arg << ": " << e.what()
                << "\n";
      return 2;
    }
  }
  if (!break_name.empty()) {
    if (break_name != "stale-jacobian") {
      std::cerr << "nemsim-fuzz: unknown --break '" << break_name
                << "' (have: stale-jacobian)\n";
      return 2;
    }
    opts.sabotage = check::Sabotage::kStaleJacobian;
  }
  set_log_level(LogLevel::kError);  // Newton retry chatter drowns findings

  // ---- repro mode -------------------------------------------------------
  if (!deck_file.empty()) {
    if (analysis_name.empty() || contract_name.empty()) {
      std::cerr << "nemsim-fuzz: --deck needs --analysis and --contract\n";
      return 2;
    }
    std::ifstream is(deck_file);
    if (!is) {
      std::cerr << "nemsim-fuzz: cannot read " << deck_file << "\n";
      return 2;
    }
    std::ostringstream deck;
    deck << is.rdbuf();
    try {
      std::string detail;
      const bool bad =
          check::deck_mismatches(deck.str(), check::parse_analysis(analysis_name),
                                 check::parse_contract(contract_name), opts,
                                 &detail);
      if (bad) {
        std::cout << "MISMATCH " << analysis_name << "/" << contract_name
                  << ": " << detail << "\n";
        return 1;
      }
      std::cout << "ok: contract " << analysis_name << "/" << contract_name
                << " holds on " << deck_file << "\n";
      return 0;
    } catch (const Error& e) {
      std::cerr << "nemsim-fuzz: " << e.what() << "\n";
      return 2;
    }
  }

  // ---- generate mode ----------------------------------------------------
  std::size_t total_contracts = 0, total_mismatches = 0;
  for (std::uint64_t s = seed; s < seed + count; ++s) {
    check::CheckCaseResult res;
    try {
      res = check::run_check_case(s, opts);
    } catch (const Error& e) {
      std::cerr << "nemsim-fuzz: seed " << s << " failed outright: "
                << e.what() << "\n";
      return 2;
    }
    total_contracts += res.contracts_run;
    for (const check::Mismatch& m : res.mismatches) {
      ++total_mismatches;
      std::cout << "MISMATCH seed " << m.seed << " "
                << check::to_string(m.analysis) << "/"
                << check::to_string(m.contract) << "\n  " << m.detail << "\n";
      const std::string stem = "seed" + std::to_string(m.seed) + "_" +
                               check::to_string(m.analysis) + "_" +
                               check::to_string(m.contract);
      std::string deck_path;
      if (write_artifact(out_dir, stem + ".sp", m.deck, &deck_path)) {
        std::ostringstream repro;
        repro << argv[0] << " --deck " << deck_path << " --analysis "
              << check::to_string(m.analysis) << " --contract "
              << check::to_string(m.contract);
        if (!break_name.empty()) repro << " --break " << break_name;
        repro << "\n";
        write_artifact(out_dir, stem + ".repro", repro.str(), nullptr);
        std::cout << "  deck: " << deck_path << "  (repro command in " << stem
                  << ".repro)\n";
      }
      if (minimize && m.contract != check::Contract::kHierarchy) {
        try {
          const check::MinimizeResult shrunk =
              check::minimize_deck(m.deck, m.analysis, m.contract, opts);
          std::string min_path;
          if (write_artifact(out_dir, stem + ".min.sp", shrunk.deck,
                             &min_path)) {
            std::cout << "  minimized: " << min_path << " ("
                      << shrunk.devices_removed << " devices removed, "
                      << shrunk.nodes_merged << " nodes merged, "
                      << shrunk.predicate_calls << " evaluations)\n";
          }
        } catch (const Error& e) {
          std::cerr << "  minimize failed: " << e.what() << "\n";
        }
      }
    }
    if ((s - seed + 1) % 10 == 0 || s + 1 == seed + count) {
      std::cout << "[" << (s - seed + 1) << "/" << count << "] seeds, "
                << total_contracts << " contract legs, " << total_mismatches
                << " mismatches\n";
    }
  }
  return total_mismatches == 0 ? 0 : 1;
}
