// Export -> parse -> lint round trips.
//
// Two invariants: (1) a circuit and its exported-then-reparsed twin
// produce the same lint findings (rule-for-rule), and (2) the
// name-convention hint is an exact predictor — a circuit with no hints
// survives the round trip with every device intact.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "nemsim/devices/controlled.h"
#include "nemsim/devices/diode.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/lint.h"
#include "nemsim/spice/netlist_export.h"
#include "nemsim/tech/cards.h"
#include "nemsim/tech/netlist_parser.h"

namespace nemsim {
namespace {

using devices::Capacitor;
using devices::CurrentSource;
using devices::Diode;
using devices::Mosfet;
using devices::MosPolarity;
using devices::Nemfet;
using devices::NemsPolarity;
using devices::Resistor;
using devices::SourceWave;
using devices::VoltageSource;

// Sorted (rule, subject) pairs — the comparable essence of a report.
std::vector<std::pair<std::string, std::string>> essence(
    const lint::LintReport& r) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(r.findings.size());
  for (const auto& f : r.findings) out.push_back({f.rule, f.subject});
  std::sort(out.begin(), out.end());
  return out;
}

// One device of every exportable element class, all properly named.
void build_menagerie(spice::Circuit& ckt) {
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  spice::NodeId load = ckt.node("load");
  spice::NodeId isrc = ckt.node("isrc");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>("Vin", in, ckt.gnd(), SourceWave::dc(0.6));
  ckt.add<Resistor>("R1", out, load, 500.0);
  ckt.add<Capacitor>("C1", load, ckt.gnd(), 5e-15);
  ckt.add<Mosfet>("Mp", out, in, vdd, MosPolarity::kPmos, tech::pmos_90nm(),
                  0.4e-6, 1e-7);
  ckt.add<Mosfet>("Mn", out, in, ckt.gnd(), MosPolarity::kNmos,
                  tech::nmos_90nm(), 0.2e-6, 1e-7);
  ckt.add<Nemfet>("X1", load, in, ckt.gnd(), NemsPolarity::kN,
                  tech::nems_90nm(), 1e-6);
  ckt.add<Diode>("D1", load, ckt.gnd(), devices::DiodeParams{});
  ckt.add<CurrentSource>("I1", isrc, ckt.gnd(), SourceWave::dc(1e-6));
  ckt.add<Resistor>("R2", isrc, ckt.gnd(), 1e4);
}

TEST(LintRoundTrip, CleanCircuitStaysCleanThroughExport) {
  spice::Circuit original;
  build_menagerie(original);
  lint::LintReport before = lint::lint_circuit(original);
  EXPECT_TRUE(before.clean()) << before.summary();
  EXPECT_EQ(before.hints, 0u) << before.summary();

  spice::Circuit reparsed =
      tech::parse_netlist(spice::netlist_string(original));
  EXPECT_EQ(reparsed.num_devices(), original.num_devices());
  lint::LintReport after = lint::lint_circuit(reparsed);
  EXPECT_TRUE(after.clean()) << after.summary();
  EXPECT_EQ(essence(before), essence(after));
}

TEST(LintRoundTrip, FindingsSurviveTheRoundTrip) {
  // A deck with one representative of each severity; the reparsed
  // circuit must reproduce the same (rule, subject) findings.
  spice::Circuit original;
  build_menagerie(original);
  spice::NodeId a = original.node("floater_a");
  spice::NodeId b = original.node("floater_b");
  original.add<Resistor>("R9", a, b, 1e3);                        // errors
  original.add<Capacitor>("C9", original.node("in"),
                          original.gnd(), 2.0);                   // warning
  lint::LintReport before = lint::lint_circuit(original);
  EXPECT_TRUE(before.has_errors());

  spice::Circuit reparsed =
      tech::parse_netlist(spice::netlist_string(original));
  lint::LintReport after = lint::lint_circuit(reparsed);
  EXPECT_EQ(essence(before), essence(after))
      << "before:\n" << before.summary() << "\nafter:\n" << after.summary();
}

TEST(LintRoundTrip, NameHintPredictsRoundTripDamage) {
  // A resistor whose name starts with 'V' is re-dispatched by the
  // parser's first letter: "VR2 in 0 1000" comes back as a 1000 V DC
  // source.  The hint fires before export; after the round trip the
  // damage is real — the reparsed circuit lints with hard errors.
  spice::Circuit ckt;
  spice::NodeId in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, ckt.gnd(), SourceWave::dc(1.0));
  ckt.add<Resistor>("VR2", in, ckt.gnd(), 1e3);
  lint::LintReport r = lint::lint_circuit(ckt);
  ASSERT_EQ(r.hints, 1u) << r.summary();
  EXPECT_EQ(r.findings.back().rule, "name-convention");
  EXPECT_EQ(r.findings.back().subject, "VR2");
  EXPECT_TRUE(r.clean());  // hints only: the original is simulable

  spice::Circuit reparsed =
      tech::parse_netlist(spice::netlist_string(ckt));
  EXPECT_NO_THROW(reparsed.find<VoltageSource>("VR2"));
  lint::LintReport after = lint::lint_circuit(reparsed);
  EXPECT_TRUE(after.has_errors()) << after.summary();
  bool loop = false;
  for (const auto& f : after.findings) loop |= f.rule == "voltage-loop";
  EXPECT_TRUE(loop) << after.summary();
}

}  // namespace
}  // namespace nemsim
