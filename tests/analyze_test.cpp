// nemsim::analyze unit tests: interval algebra, the DC interval
// fixpoint (with a soundness spot-check against the real solver),
// NEMFET operating-region verdicts, stiffness/conditioning prediction,
// dead-device detection, and the analysis gate (off / warn / strict).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "nemsim/spice/analyze.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/diagnostics.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/lint.h"
#include "nemsim/spice/op.h"
#include "nemsim/tech/netlist_parser.h"

namespace nemsim {
namespace {

using analyze::AnalyzeOptions;
using analyze::AnalyzeReport;
using analyze::Interval;
using analyze::IntervalSet;
using lint::LintReport;
using lint::LintSeverity;

constexpr double kInf = std::numeric_limits<double>::infinity();

bool has(const LintReport& r, const std::string& rule,
         const std::string& subject) {
  for (const auto& f : r.findings) {
    if (f.rule == rule && f.subject == subject) return true;
  }
  return false;
}

std::size_t count_rule(const LintReport& r, const std::string& rule) {
  std::size_t n = 0;
  for (const auto& f : r.findings) n += (f.rule == rule) ? 1 : 0;
  return n;
}

// ------------------------------------------------------ interval algebra

TEST(Interval, AlgebraAndContainment) {
  const Interval a{1.0, 3.0};
  const Interval b{-2.0, 0.5};
  EXPECT_EQ((a + b).lo, -1.0);
  EXPECT_EQ((a + b).hi, 3.5);
  EXPECT_EQ((a - b).lo, 0.5);
  EXPECT_EQ((a - b).hi, 5.0);
  EXPECT_TRUE(a.contains(1.0));
  EXPECT_FALSE(a.contains(0.999));
  EXPECT_TRUE(a.contains(0.999, 1e-2));  // slack widens both ends

  const Interval h = a.hull(b);
  EXPECT_EQ(h.lo, -2.0);
  EXPECT_EQ(h.hi, 3.0);
}

TEST(Interval, ScaledFlipsOnNegativeGain) {
  const Interval a{1.0, 3.0};
  const Interval s = a.scaled(-2.0);
  EXPECT_EQ(s.lo, -6.0);
  EXPECT_EQ(s.hi, -2.0);
}

TEST(Interval, ScaledByZeroOnUnboundedIsZeroNotNan) {
  // 0 * inf is NaN in IEEE arithmetic; the lattice answer is the exact
  // point 0 (a zero-gain source contributes nothing, whatever its
  // control does).
  const Interval s = Interval::top().scaled(0.0);
  EXPECT_EQ(s.lo, 0.0);
  EXPECT_EQ(s.hi, 0.0);
}

TEST(Interval, AbsFoldsTheNegativeLobe) {
  const Interval a = Interval{-2.0, 1.0}.abs();
  EXPECT_EQ(a.lo, 0.0);
  EXPECT_EQ(a.hi, 2.0);
  const Interval b = Interval{0.5, 1.5}.abs();
  EXPECT_EQ(b.lo, 0.5);
  const Interval c = Interval{-3.0, -1.0}.abs();
  EXPECT_EQ(c.lo, 1.0);
  EXPECT_EQ(c.hi, 3.0);
}

TEST(IntervalSet, GroundIsPinnedAndEmptyIntersectionIsSkipped) {
  IntervalSet s(3);
  EXPECT_EQ(s.at(spice::kGround).lo, 0.0);
  EXPECT_EQ(s.at(spice::kGround).hi, 0.0);
  EXPECT_TRUE(s.at(spice::NodeId{1}).is_top());

  EXPECT_TRUE(s.tighten(spice::NodeId{1}, Interval{0.0, 2.0}));
  // A disjoint claim would produce the empty set; the narrowing is
  // refused and the previous (sound) bound kept.
  EXPECT_FALSE(s.tighten(spice::NodeId{1}, Interval{5.0, 6.0}));
  EXPECT_EQ(s.at(spice::NodeId{1}).lo, 0.0);
  EXPECT_EQ(s.at(spice::NodeId{1}).hi, 2.0);
}

// ------------------------------------------------------ interval fixpoint

TEST(AnalyzeFixpoint, DividerIntervalsContainTheOperatingPoint) {
  spice::Circuit ckt = tech::parse_netlist(
      "V1 in 0 DC 1.0\n"
      "R1 in mid 1k\n"
      "R2 mid 0 2k\n"
      ".op\n.end\n");
  const AnalyzeReport rpt = analyze::analyze_circuit(ckt);
  EXPECT_TRUE(rpt.fixpoint);
  EXPECT_GT(rpt.sweeps, 0u);

  // v(in) is pinned exactly by V1; v(mid) relaxes to the hull of its
  // resistor neighbors (maximum principle: a source-free node cannot
  // leave the range its neighbors span).
  const Interval in = rpt.intervals.at(ckt.find_node("in"));
  EXPECT_EQ(in.lo, 1.0);
  EXPECT_EQ(in.hi, 1.0);
  const Interval mid = rpt.intervals.at(ckt.find_node("mid"));
  EXPECT_GE(mid.lo, 0.0);
  EXPECT_LE(mid.hi, 1.0);

  spice::MnaSystem system(ckt);
  spice::OpResult op = spice::operating_point(system);
  EXPECT_TRUE(in.contains(op.v("in"), 1e-9));
  EXPECT_TRUE(mid.contains(op.v("mid"), 1e-9));  // 2/3 V
}

TEST(AnalyzeFixpoint, VcvsPropagatesGainThroughTheRelation) {
  spice::Circuit ckt = tech::parse_netlist(
      "V1 in 0 DC 1.0\n"
      "R1 in 0 1k\n"
      "E1 out 0 in 0 2.0\n"
      "R2 out 0 1k\n"
      ".op\n.end\n");
  const AnalyzeReport rpt = analyze::analyze_circuit(ckt);
  const Interval out = rpt.intervals.at(ckt.find_node("out"));
  EXPECT_NEAR(out.lo, 2.0, 1e-12);
  EXPECT_NEAR(out.hi, 2.0, 1e-12);
}

TEST(AnalyzeFixpoint, InductorIsADcShort) {
  spice::Circuit ckt = tech::parse_netlist(
      "V1 in 0 DC 1.0\n"
      "L1 in mid 1u\n"
      "R1 mid 0 1k\n"
      ".op\n.end\n");
  const AnalyzeReport rpt = analyze::analyze_circuit(ckt);
  const Interval mid = rpt.intervals.at(ckt.find_node("mid"));
  EXPECT_NEAR(mid.lo, 1.0, 1e-12);
  EXPECT_NEAR(mid.hi, 1.0, 1e-12);
}

TEST(AnalyzeFixpoint, CurrentSourceClaimsNothing) {
  // A current-defined branch constrains no node voltage; with only a
  // resistor to anchor it the node interval must stay conservative
  // (here: the neighbor hull collapses to ground's [0,0] is NOT sound,
  // so the node keeps an unbounded side or the resistor hull — either
  // way it must contain the true 1 V drop).
  spice::Circuit ckt = tech::parse_netlist(
      "I1 0 a DC 1m\n"
      "R1 a 0 1k\n"
      ".op\n.end\n");
  const AnalyzeReport rpt = analyze::analyze_circuit(ckt);
  spice::MnaSystem system(ckt);
  spice::OpResult op = spice::operating_point(system);
  EXPECT_TRUE(rpt.intervals.at(ckt.find_node("a")).contains(op.v("a"), 1e-9));
}

// ----------------------------------------------------- region verdicts

TEST(AnalyzeRegions, NemfetNeverActuates) {
  spice::Circuit ckt = tech::parse_netlist(
      "VG g 0 DC 0.2\n"
      "RD d 0 10k\n"
      "X1 d g 0 NEMFET_N W=1e-6\n"
      ".op\n.end\n");
  const AnalyzeReport rpt = analyze::analyze_circuit(ckt);
  EXPECT_TRUE(has(rpt.findings, "nemfet-never-actuates", "X1"));
  ASSERT_FALSE(rpt.verdicts.empty());
  const analyze::RegionVerdict& v = rpt.verdicts.front();
  EXPECT_EQ(v.region, "nemfet-never-actuates");
  EXPECT_EQ(v.severity, LintSeverity::kWarning);
  // The verdict predicts the mechanical unknown: the beam stays on the
  // open side of the gap.  This enclosure is what the kAnalyze fuzz
  // contract checks against the solved OP.
  EXPECT_EQ(v.unknown, "X1.x");
  EXPECT_TRUE(v.predicted.contains(0.0));
  EXPECT_LT(v.predicted.hi, 2e-9);  // half of gap0
}

TEST(AnalyzeRegions, NemfetNeverReleases) {
  spice::Circuit ckt = tech::parse_netlist(
      "VG g 0 DC 0.8\n"
      "X1 0 g 0 NEMFET_N W=1e-6\n"
      ".op\n.end\n");
  const AnalyzeReport rpt = analyze::analyze_circuit(ckt);
  EXPECT_TRUE(has(rpt.findings, "nemfet-never-releases", "X1"));
  EXPECT_FALSE(has(rpt.findings, "nemfet-never-actuates", "X1"));
}

TEST(AnalyzeRegions, NemfetLatchedInTheHysteresisWindowIsAHint) {
  spice::Circuit ckt = tech::parse_netlist(
      "VG g 0 DC 0.25\n"
      "X1 0 g 0 NEMFET_N W=1e-6\n"
      ".op\n.end\n");
  const AnalyzeReport rpt = analyze::analyze_circuit(ckt);
  EXPECT_TRUE(has(rpt.findings, "nemfet-hysteresis-latched", "X1"));
  for (const auto& f : rpt.findings.findings) {
    if (f.rule == "nemfet-hysteresis-latched") {
      EXPECT_EQ(f.severity, LintSeverity::kHint);
    }
  }
}

TEST(AnalyzeRegions, FullRailDriveIsSilent) {
  spice::Circuit ckt = tech::parse_netlist(
      "VDD vdd 0 DC 0.6\n"
      "VG g 0 DC 0.6\n"
      "RL vdd d 100k\n"
      "X1 d g 0 NEMFET_N W=1e-6\n"
      ".op\n.end\n");
  const AnalyzeReport rpt = analyze::analyze_circuit(ckt);
  EXPECT_TRUE(rpt.verdicts.empty());
  EXPECT_TRUE(rpt.findings.clean());
}

// --------------------------------------------- stiffness / conditioning

TEST(AnalyzeMagnitudes, StiffTimeConstantSpreadWarns) {
  spice::Circuit ckt = tech::parse_netlist(
      "V1 in 0 DC 1.0\n"
      "R1 in slow 1k\n"
      "C1 slow 0 1u\n"
      "R2 in fast 1k\n"
      "C2 fast 0 0.1p\n"
      ".op\n.end\n");
  const AnalyzeReport rpt = analyze::analyze_circuit(ckt);
  EXPECT_EQ(count_rule(rpt.findings, "stiff-time-constants"), 1u);
  EXPECT_NEAR(rpt.tau_max, 1e-3, 1e-5);
  EXPECT_NEAR(rpt.tau_min, 1e-10, 1e-12);
}

TEST(AnalyzeMagnitudes, OneDecadeOfTauIsSilent) {
  spice::Circuit ckt = tech::parse_netlist(
      "V1 in 0 DC 1.0\n"
      "R1 in a 1k\n"
      "C1 a 0 1n\n"
      "R2 in b 10k\n"
      "C2 b 0 1n\n"
      ".op\n.end\n");
  const AnalyzeReport rpt = analyze::analyze_circuit(ckt);
  EXPECT_EQ(count_rule(rpt.findings, "stiff-time-constants"), 0u);
}

TEST(AnalyzeMagnitudes, ConductanceScaleSpreadWarns) {
  spice::Circuit ckt = tech::parse_netlist(
      "V1 in 0 DC 1.0\n"
      "R1 in mid 0.01\n"
      "R2 mid 0 100G\n"
      ".op\n.end\n");
  const AnalyzeReport rpt = analyze::analyze_circuit(ckt);
  EXPECT_EQ(count_rule(rpt.findings, "conductance-scale-spread"), 1u);
  EXPECT_NEAR(rpt.g_max, 100.0, 1e-9);
  EXPECT_NEAR(rpt.g_min, 1e-11, 1e-20);
}

// ------------------------------------------------------- reachability

TEST(AnalyzeReachability, SourceFreeIslandIsDead) {
  spice::Circuit ckt = tech::parse_netlist(
      "V1 in 0 DC 1.0\n"
      "R1 in mid 1k\n"
      "R2 mid 0 2k\n"
      "R3 island 0 1k\n"
      "R4 island 0 2k\n"
      ".op\n.end\n");
  const AnalyzeReport rpt = analyze::analyze_circuit(ckt);
  EXPECT_TRUE(has(rpt.findings, "dead-subcircuit", "R3"));
  EXPECT_TRUE(has(rpt.findings, "dead-subcircuit", "R4"));
  EXPECT_FALSE(has(rpt.findings, "dead-subcircuit", "R1"));
}

TEST(AnalyzeReachability, ObservabilityConeFlagsTheOtherBranch) {
  // Two sourced components; only one is observed.  The other branch is
  // alive (it has its own source) but outside every measurement's cone.
  spice::Circuit ckt = tech::parse_netlist(
      "V1 in 0 DC 1.0\n"
      "R1 in mid 1k\n"
      "R2 mid 0 2k\n"
      "V2 b 0 DC 1.0\n"
      "R3 b c 1k\n"
      "R4 c 0 2k\n"
      ".op\n.end\n");
  AnalyzeOptions options;
  options.observed_nodes = {"mid", "ghost"};
  const AnalyzeReport rpt = analyze::analyze_circuit(ckt, options);
  EXPECT_TRUE(has(rpt.findings, "unobserved-device", "R3"));
  EXPECT_TRUE(has(rpt.findings, "unobserved-device", "R4"));
  EXPECT_FALSE(has(rpt.findings, "unobserved-device", "R1"));
  EXPECT_TRUE(has(rpt.findings, "observed-node-unknown", "ghost"));
}

// ------------------------------------------------------ analysis gating

TEST(AnalyzeGate, OffDoesNothing) {
  spice::Circuit ckt = tech::parse_netlist(
      "V1 in 0 DC 1.0\nR1 in 0 1k\nR2 dead 0 1k\nR3 dead 0 1k\n.op\n.end\n");
  spice::RunReport report;
  const LintReport r =
      analyze::analyze_gate(ckt, lint::LintMode::kOff, &report);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_TRUE(report.analyze_findings.empty());
}

TEST(AnalyzeGate, WarnFillsTheRunReportAndItsJson) {
  spice::Circuit ckt = tech::parse_netlist(
      "V1 in 0 DC 1.0\nR1 in 0 1k\nR2 dead 0 1k\nR3 dead 0 1k\n.op\n.end\n");
  spice::RunReport report;
  const LintReport r =
      analyze::analyze_gate(ckt, lint::LintMode::kWarn, &report);
  EXPECT_EQ(r.warnings, 2u);
  ASSERT_FALSE(report.analyze_findings.empty());
  EXPECT_EQ(report.analyze_findings.front().rule, "dead-subcircuit");

  std::ostringstream os;
  report.write_json(os);
  EXPECT_NE(os.str().find("\"analyze_findings\""), std::string::npos);
  EXPECT_NE(os.str().find("dead-subcircuit"), std::string::npos);
  EXPECT_NE(report.summary().find("analyze"), std::string::npos);
}

TEST(AnalyzeGate, StrictThrowsOnWarningsUnlikeLint) {
  // Divergence from lint_gate, by design: semantic warnings mean the
  // simulation is predictably wasted work, so strict mode treats them
  // as rejections, not advisories.
  spice::Circuit ckt = tech::parse_netlist(
      "V1 in 0 DC 1.0\nR1 in 0 1k\nR2 dead 0 1k\nR3 dead 0 1k\n.op\n.end\n");
  EXPECT_THROW(analyze::analyze_gate(ckt, lint::LintMode::kStrict, nullptr),
               lint::LintError);
}

TEST(AnalyzeGate, StrictPassesACleanCircuit) {
  spice::Circuit ckt = tech::parse_netlist(
      "V1 in 0 DC 1.0\nR1 in mid 1k\nR2 mid 0 2k\n.op\n.end\n");
  const LintReport r =
      analyze::analyze_gate(ckt, lint::LintMode::kStrict, nullptr);
  EXPECT_TRUE(r.clean());
}

TEST(AnalyzeGate, OpOptionsWireTheGate) {
  spice::Circuit ckt = tech::parse_netlist(
      "V1 in 0 DC 1.0\nR1 in mid 1k\nR2 mid 0 2k\nR3 dead 0 1k\n"
      "R4 dead 0 1k\n.op\n.end\n");
  spice::MnaSystem system(ckt);
  spice::RunReport report;
  spice::OpOptions options;
  options.analyze = lint::LintMode::kWarn;
  options.report = &report;
  spice::OpResult op = spice::operating_point(system, options);
  EXPECT_NEAR(op.v("mid"), 2.0 / 3.0, 1e-9);
  EXPECT_FALSE(report.analyze_findings.empty());
}

}  // namespace
}  // namespace nemsim
