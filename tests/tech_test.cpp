// Technology layer tests: cards, ITRS trend, swing survey, and the
// characterization harness driving the full simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "nemsim/tech/cards.h"
#include "nemsim/tech/characterize.h"
#include "nemsim/tech/itrs.h"
#include "nemsim/tech/swing_survey.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

TEST(Cards, FlavourOrderingOfThresholds) {
  EXPECT_GT(tech::nmos_90nm_hvt().vth0, tech::nmos_90nm().vth0);
  EXPECT_LT(tech::nmos_90nm_lvt().vth0, tech::nmos_90nm().vth0);
  EXPECT_GT(tech::pmos_90nm_hvt().vth0, tech::pmos_90nm().vth0);
}

TEST(Cards, PmosWeakerThanNmos) {
  EXPECT_LT(tech::pmos_90nm().kp, tech::nmos_90nm().kp);
}

TEST(Cards, NemsPullInBelowVdd) {
  const auto p = tech::nems_90nm();
  EXPECT_LT(p.analytic_pull_in_voltage(), tech::node_90nm().vdd);
  EXPECT_GT(p.analytic_pull_in_voltage(), p.analytic_pull_out_voltage());
}

TEST(Itrs, TrendCoversSevenNodesMonotonically) {
  const auto& trend = tech::itrs_trend();
  ASSERT_EQ(trend.size(), 7u);
  for (std::size_t i = 1; i < trend.size(); ++i) {
    EXPECT_LT(trend[i].node_nm, trend[i - 1].node_nm);
    EXPECT_LE(trend[i].vdd, trend[i - 1].vdd);
    EXPECT_LE(trend[i].vth, trend[i - 1].vth);
    EXPECT_GE(trend[i].ioff_na_per_um, trend[i - 1].ioff_na_per_um);
  }
}

TEST(Itrs, LeakageExplodesAcrossTheRoadmap) {
  // Figure 1's message: orders of magnitude of subthreshold leakage growth.
  EXPECT_GT(tech::leakage_growth_factor(), 1e3);
}

TEST(SwingSurvey, CmosAboveThermionicLimitNemsBelow) {
  const double limit = tech::cmos_thermionic_limit_mv_dec();
  EXPECT_NEAR(limit, 59.5, 1.0);
  for (const auto& e : tech::swing_survey()) {
    if (e.device == "Bulk CMOS" || e.device == "FDSOI" ||
        e.device == "FinFET") {
      EXPECT_GE(e.swing_mv_dec, limit) << e.device;
    }
  }
  EXPECT_DOUBLE_EQ(tech::swing_survey().back().swing_mv_dec, 2.0);
}

TEST(SwingSurvey, ModeledDevicesAgreeWithMeasuredSwing) {
  using namespace nemsim::literals;
  // Bulk CMOS: survey says 85; our calibrated card measures close by.
  tech::DeviceIV cmos = tech::characterize_mosfet(
      tech::nmos_90nm(), devices::MosPolarity::kNmos, 1.0_um, 0.1_um, 1.2);
  EXPECT_NEAR(cmos.swing_mv_dec, 85.0, 10.0);
  // NEMS: survey says 2 mV/dec; ours must be well below thermionic.
  tech::NemsIV nems = tech::characterize_nemfet(tech::nems_90nm(), 1.0_um, 1.2);
  EXPECT_LT(nems.iv.swing_mv_dec, 10.0);
}

TEST(Characterize, SwingExtractionRejectsFlatCurves) {
  tech::TransferCurve flat;
  flat.vgs = {0.0, 0.1, 0.2};
  flat.id = {1e-9, 1e-9, 1e-9};
  EXPECT_THROW(tech::extract_swing_mv_per_decade(flat), Error);
}

TEST(Characterize, SwingOfIdealExponential) {
  // Synthetic decade-per-100mV curve must measure exactly 100 mV/dec.
  tech::TransferCurve c;
  for (int i = 0; i <= 10; ++i) {
    c.vgs.push_back(0.1 * i);
    c.id.push_back(1e-12 * std::pow(10.0, i));
  }
  EXPECT_NEAR(tech::extract_swing_mv_per_decade(c), 100.0, 1e-6);
}

}  // namespace
}  // namespace nemsim
