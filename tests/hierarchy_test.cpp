// Hierarchical netlist tests: elaboration at scale (the 64-cell SRAM
// column against a hand-flattened twin, bitwise), .subckt round trips
// through the exporter and parser, and the deck-level error contract
// (duplicate instance names, port arity) with line numbers.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "nemsim/core/cells.h"
#include "nemsim/core/sram.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/lint.h"
#include "nemsim/spice/netlist_export.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"
#include "nemsim/tech/netlist_parser.h"
#include "nemsim/util/error.h"

namespace nemsim {
namespace {

using devices::Capacitor;
using devices::Mosfet;
using devices::MosPolarity;
using devices::Nemfet;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::MnaSystem;
using spice::NodeId;

// ------------------------------------------- 64-cell bitwise equivalence

constexpr std::size_t kCells = 64;

core::SramColumnConfig conventional_column() {
  core::SramColumnConfig cfg;
  cfg.cell.kind = core::SramKind::kConventional;
  cfg.n_cells = kCells;
  return cfg;
}

/// Hand-flattened twin of core::build_sram_column for the conventional
/// cell: the same devices with the same parameters, created in the same
/// order as elaboration produces them (testbench first, then per cell
/// MAL, MAR, MNL, MNR, MPL, MPR with storage nodes ql/qr created ahead
/// of the cell's devices).  Names are flat — only the ordering and the
/// numbers must match for the MNA systems to be bitwise identical.
Circuit build_flat_column(const core::SramColumnConfig& cfg) {
  const core::SramConfig& c = cfg.cell;
  Circuit ckt;
  NodeId vdd = ckt.node("vdd");
  NodeId bl = ckt.node("bl");
  NodeId blb = ckt.node("blb");
  NodeId wl = ckt.node("wl");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(c.vdd));
  ckt.add<VoltageSource>("Vwl", wl, ckt.gnd(), SourceWave::dc(0.0));
  ckt.add<Capacitor>("Cbl", bl, ckt.gnd(), c.bitline_cap);
  ckt.add<Capacitor>("Cblb", blb, ckt.gnd(), c.bitline_cap);
  for (std::size_t i = 0; i < cfg.n_cells; ++i) {
    const std::string k = std::to_string(i);
    NodeId cell_wl = i == cfg.active_cell ? wl : ckt.gnd();
    NodeId ql = ckt.node("ql" + k);
    NodeId qr = ckt.node("qr" + k);
    ckt.add<Mosfet>("MAL" + k, bl, cell_wl, ql, MosPolarity::kNmos,
                    tech::nmos_90nm(), c.w_access, c.l);
    ckt.add<Mosfet>("MAR" + k, blb, cell_wl, qr, MosPolarity::kNmos,
                    tech::nmos_90nm(), c.w_access, c.l);
    ckt.add<Mosfet>("MNL" + k, ql, qr, ckt.gnd(), MosPolarity::kNmos,
                    tech::nmos_90nm(), c.w_pulldown, c.l);
    ckt.add<Mosfet>("MNR" + k, qr, ql, ckt.gnd(), MosPolarity::kNmos,
                    tech::nmos_90nm(), c.w_pulldown, c.l);
    ckt.add<Mosfet>("MPL" + k, ql, qr, vdd, MosPolarity::kPmos,
                    tech::pmos_90nm(), c.w_pullup, c.l);
    ckt.add<Mosfet>("MPR" + k, qr, ql, vdd, MosPolarity::kPmos,
                    tech::pmos_90nm(), c.w_pullup, c.l);
  }
  return ckt;
}

void nodeset_flat_column(MnaSystem& system, Circuit& ckt,
                         const core::SramColumnConfig& cfg) {
  for (std::size_t i = 0; i < cfg.n_cells; ++i) {
    const double vql = cfg.cell_stores_one(i) ? cfg.cell.vdd : 0.0;
    system.set_nodeset(ckt.find_node("ql" + std::to_string(i)), vql);
    system.set_nodeset(ckt.find_node("qr" + std::to_string(i)),
                       cfg.cell.vdd - vql);
  }
}

TEST(ColumnHierarchy, SixtyFourCellOpBitwiseMatchesHandFlattened) {
  const core::SramColumnConfig cfg = conventional_column();
  core::SramColumn col = core::build_sram_column(cfg);
  Circuit flat = build_flat_column(cfg);
  ASSERT_EQ(col.ckt().num_devices(), flat.num_devices());
  ASSERT_EQ(col.ckt().num_nodes(), flat.num_nodes());

  MnaSystem hier_sys(col.ckt());
  MnaSystem flat_sys(flat);
  ASSERT_EQ(hier_sys.num_unknowns(), flat_sys.num_unknowns());
  core::nodeset_column_state(hier_sys, col);
  nodeset_flat_column(flat_sys, flat, cfg);

  // A 64-cell column is far past the sparse fast-path threshold; the
  // elaborated hierarchy must ride it like any flat circuit.
  spice::NewtonStats stats;
  spice::OpOptions options;
  options.stats = &stats;
  spice::OpResult hier_op = spice::operating_point(hier_sys, options);
  spice::OpResult flat_op = spice::operating_point(flat_sys, options);
  EXPECT_TRUE(stats.used_sparse);

  for (std::size_t i = 0; i < hier_sys.num_unknowns(); ++i) {
    EXPECT_EQ(hier_op.raw()[i], flat_op.raw()[i]) << "unknown " << i;
  }
  // Spot-check through the hierarchical name table: the active cell holds
  // a zero, the idle cells hold ones.
  EXPECT_LT(hier_op.v(col.cell_node(0, "ql")), 0.1);
  EXPECT_GT(hier_op.v(col.cell_node(1, "ql")), 0.9 * cfg.cell.vdd);
}

TEST(ColumnHierarchy, SixtyFourCellTransientBitwiseMatchesHandFlattened) {
  const core::SramColumnConfig cfg = conventional_column();
  core::SramColumn col = core::build_sram_column(cfg);
  Circuit flat = build_flat_column(cfg);

  // A read-like event: wordline pulse into precharged bitlines.
  const SourceWave wl_pulse =
      SourceWave::pulse(0.0, cfg.cell.vdd, 0.1e-9, 20e-12, 20e-12, 2e-9);
  col.ckt().find<VoltageSource>("Vwl").set_wave(wl_pulse);
  flat.find<VoltageSource>("Vwl").set_wave(wl_pulse);

  auto run = [&](Circuit& ckt, bool hier) {
    MnaSystem system(ckt);
    if (hier) {
      core::nodeset_column_state(system, col);
    } else {
      nodeset_flat_column(system, flat, cfg);
    }
    system.set_nodeset(ckt.find_node("bl"), cfg.cell.vdd);
    system.set_nodeset(ckt.find_node("blb"), cfg.cell.vdd);
    spice::TransientOptions options;
    options.tstop = 0.5e-9;
    options.dt_initial = 1e-13;
    return spice::transient(system, options);
  };
  spice::Waveform hier_wave = run(col.ckt(), true);
  spice::Waveform flat_wave = run(flat, false);

  // Identical systems take identical adaptive steps and identical Newton
  // paths: every accepted timepoint and every sample matches bitwise.
  ASSERT_EQ(hier_wave.num_samples(), flat_wave.num_samples());
  ASSERT_EQ(hier_wave.times(), flat_wave.times());
  EXPECT_EQ(hier_wave.series("v(bl)"), flat_wave.series("v(bl)"));
  EXPECT_EQ(hier_wave.series("v(blb)"), flat_wave.series("v(blb)"));
  EXPECT_EQ(hier_wave.series("v(" + col.cell_node(0, "ql") + ")"),
            flat_wave.series("v(ql0)"));
}

// ---------------------------------------------------- .subckt round trip

// Sorted (rule, subject) pairs — the comparable essence of a report.
std::vector<std::pair<std::string, std::string>> essence(
    const lint::LintReport& r) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(r.findings.size());
  for (const auto& f : r.findings) out.push_back({f.rule, f.subject});
  std::sort(out.begin(), out.end());
  return out;
}

TEST(HierarchyRoundTrip, ColumnSurvivesExportParseLint) {
  core::SramColumnConfig cfg = conventional_column();
  cfg.n_cells = 4;
  core::SramColumn col = core::build_sram_column(cfg);
  Circuit& original = col.ckt();

  lint::LintReport before = lint::lint_circuit(original);
  EXPECT_TRUE(before.clean()) << before.summary();

  const std::string text = spice::netlist_string(original, "column rt");
  Circuit reparsed = tech::parse_netlist(text);

  // Structure survives: same device count, the instances come back as
  // instances, and the hierarchical paths resolve.
  EXPECT_EQ(reparsed.num_devices(), original.num_devices());
  EXPECT_TRUE(reparsed.has_instance("Xcell0"));
  EXPECT_TRUE(reparsed.has_instance("Xcell3"));
  EXPECT_NO_THROW(reparsed.find_device("Xcell2.MAL"));
  EXPECT_NO_THROW(reparsed.find_node("Xcell2.ql"));

  lint::LintReport after = lint::lint_circuit(reparsed);
  EXPECT_TRUE(after.clean()) << after.summary();
  EXPECT_EQ(essence(before), essence(after));

  // And the reparsed twin solves to the same operating point (same
  // voltages by name; unknown ordering differs, so not bitwise).
  auto solve = [&](Circuit& ckt) {
    MnaSystem system(ckt);
    for (std::size_t i = 0; i < cfg.n_cells; ++i) {
      const double vql = cfg.cell_stores_one(i) ? cfg.cell.vdd : 0.0;
      system.set_nodeset(ckt.find_node("Xcell" + std::to_string(i) + ".ql"),
                         vql);
      system.set_nodeset(ckt.find_node("Xcell" + std::to_string(i) + ".qr"),
                         cfg.cell.vdd - vql);
    }
    return spice::operating_point(system);
  };
  spice::OpResult op1 = solve(original);
  spice::OpResult op2 = solve(reparsed);
  for (std::size_t i = 0; i < cfg.n_cells; ++i) {
    const std::string ql = "Xcell" + std::to_string(i) + ".ql";
    EXPECT_NEAR(op1.v(ql), op2.v(ql), 1e-8) << ql;
  }
}

// ------------------------------------------------------- error contract

TEST(HierarchyErrors, DuplicateInstanceNameCarriesLineNumber) {
  const char* deck =
      "* dup\n"
      ".subckt divider a b\n"
      "R1 a b 1k\n"
      ".ends\n"
      "X1 n1 0 divider\n"
      "X1 n1 0 divider\n"
      ".end\n";
  try {
    tech::parse_netlist(deck);
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 6"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate subcircuit instance"), std::string::npos)
        << what;
  }
}

TEST(HierarchyErrors, PortArityMismatchCarriesLineNumber) {
  const char* deck =
      "* arity\n"
      ".subckt divider a b\n"
      "R1 a b 1k\n"
      ".ends\n"
      "X1 n1 divider\n"
      ".end\n";
  try {
    tech::parse_netlist(deck);
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 5"), std::string::npos) << what;
  }
}

// --------------------------------------- X-card dispatch coexistence

TEST(HierarchyParser, NemfetXCardCoexistsWithSubcktInstances) {
  // Regression for the X-element dispatch: "X... NEMFET_N" must stay a
  // device card even when the deck defines and instantiates subcircuits.
  Circuit ckt = tech::parse_netlist(R"(* mixed
Vd d 0 DC 1.2
Vg g 0 DC 1.2
.subckt divider a b
R1 a b 1k
.ends
Xr d mid divider
Rload mid 0 1k
Xn d g 0 NEMFET_N W=1u
.end
)");
  EXPECT_TRUE(ckt.has_instance("Xr"));
  EXPECT_FALSE(ckt.has_instance("Xn"));
  EXPECT_NO_THROW(ckt.find_device("Xr.R1"));
  const auto& x = ckt.find<Nemfet>("Xn");

  MnaSystem system(ckt);
  spice::OpResult op = spice::operating_point(system);
  EXPECT_NEAR(op.v("mid"), 0.6, 1e-6);  // 1k/1k divider from 1.2 V
  EXPECT_GT(op.x(x.unknown_x()), 0.9 * x.params().gap0);  // beam pulled in
}

}  // namespace
}  // namespace nemsim
