// Sleep transistor tests (paper Section 6 / Figure 17).
#include <gtest/gtest.h>

#include "nemsim/core/power_gating.h"

namespace nemsim {
namespace {

using core::GatedBlockConfig;
using core::measure_gated_block;
using core::SleepDeviceType;
using core::SleepStyle;
using core::SleepSweepConfig;
using core::sweep_sleep_transistor;

TEST(SleepSweep, RonFallsWithArea) {
  SleepSweepConfig c;
  auto pts = sweep_sleep_transistor(c, {1.0, 2.0, 4.0});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_GT(pts[0].ron, pts[1].ron);
  EXPECT_GT(pts[1].ron, pts[2].ron);
  // Ron ~ 1/W: doubling area halves resistance.
  EXPECT_NEAR(pts[0].ron / pts[1].ron, 2.0, 0.1);
}

TEST(SleepSweep, IoffGrowsWithArea) {
  SleepSweepConfig c;
  auto pts = sweep_sleep_transistor(c, {1.0, 4.0});
  EXPECT_NEAR(pts[1].ioff / pts[0].ioff, 4.0, 0.2);
}

TEST(SleepSweep, NemsLeaksOrdersOfMagnitudeLess) {
  SleepSweepConfig cmos;
  SleepSweepConfig nems;
  nems.device = SleepDeviceType::kNems;
  auto pc = sweep_sleep_transistor(cmos, {5.0});
  auto pn = sweep_sleep_transistor(nems, {5.0});
  // Paper: up to three orders of magnitude lower OFF current.
  EXPECT_LT(pn[0].ioff, 1e-2 * pc[0].ioff);
}

TEST(SleepSweep, NemsRonHigherAtSameAreaButGapCloses) {
  SleepSweepConfig cmos;
  SleepSweepConfig nems;
  nems.device = SleepDeviceType::kNems;
  auto pc = sweep_sleep_transistor(cmos, {1.0, 50.0});
  auto pn = sweep_sleep_transistor(nems, {1.0, 50.0});
  EXPECT_GT(pn[0].ron, pc[0].ron);  // NEMS slower at equal area
  // Absolute Ron difference shrinks as devices get bigger (Figure 17's
  // "difference becomes minimal" argument).
  const double gap_small = pn[0].ron - pc[0].ron;
  const double gap_big = pn[1].ron - pc[1].ron;
  EXPECT_LT(gap_big, 0.1 * gap_small);
}

TEST(SleepSweep, HeaderStyleAlsoWorks) {
  SleepSweepConfig c;
  c.style = SleepStyle::kHeader;
  auto pts = sweep_sleep_transistor(c, {5.0});
  EXPECT_GT(pts[0].ron, 0.0);
  EXPECT_GT(pts[0].ioff, 0.0);
  c.device = SleepDeviceType::kNems;
  auto ptsn = sweep_sleep_transistor(c, {5.0});
  EXPECT_LT(ptsn[0].ioff, 1e-2 * pts[0].ioff);
}

TEST(SleepSweep, RejectsEmptyAndNonPositiveAreas) {
  SleepSweepConfig c;
  EXPECT_THROW(sweep_sleep_transistor(c, {}), InvalidArgument);
  EXPECT_THROW(sweep_sleep_transistor(c, {-1.0}), InvalidArgument);
}

TEST(GatedBlock, GatingCostsSomeDelay) {
  GatedBlockConfig c;
  auto r = measure_gated_block(c);
  EXPECT_GT(r.delay_gated, r.delay_ungated);
  EXPECT_LT(r.delay_gated, 3.0 * r.delay_ungated);
  EXPECT_GT(r.vgnd_droop, 0.0);
  EXPECT_GT(r.wakeup_time, 0.0);
}

TEST(GatedBlock, NemsSleepCutsLeakage) {
  GatedBlockConfig cmos;
  GatedBlockConfig nems;
  nems.device = SleepDeviceType::kNems;
  auto rc = measure_gated_block(cmos);
  auto rn = measure_gated_block(nems);
  EXPECT_LT(rn.sleep_leakage, 0.1 * rc.sleep_leakage);
}

TEST(GatedBlock, WiderSleepDeviceLessDelayPenalty) {
  GatedBlockConfig narrow;
  narrow.sleep_width = 0.4e-6;
  GatedBlockConfig wide;
  wide.sleep_width = 2e-6;
  auto rn = measure_gated_block(narrow);
  auto rw = measure_gated_block(wide);
  EXPECT_LT(rw.delay_gated, rn.delay_gated);
  EXPECT_LT(rw.vgnd_droop, rn.vgnd_droop);
}

}  // namespace
}  // namespace nemsim
