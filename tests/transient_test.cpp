// Transient integration accuracy tests against closed-form solutions.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/transient.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
using devices::Capacitor;
using devices::Inductor;
using devices::Resistor;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::MnaSystem;
using spice::TransientOptions;

TEST(Transient, RcStepResponseMatchesAnalytic) {
  // 1 kOhm / 1 pF: tau = 1 ns.  Step at t = 1 ns via PULSE.
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>(
      "V1", in, ckt.gnd(),
      SourceWave::pulse(0.0, 1.0, 1.0_ns, 1.0_ps, 1.0_ps, 1.0));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, ckt.gnd(), 1.0_pF);
  MnaSystem system(ckt);

  TransientOptions options;
  options.tstop = 6.0_ns;
  options.dt_initial = 1.0_ps;
  spice::Waveform wave = spice::transient(system, options);

  // Compare against v(t) = 1 - exp(-(t - t0)/tau) at several points.
  const double t0 = 1.0_ns + 1.0_ps;  // end of the (fast) edge
  for (double dt_check : {0.5e-9, 1e-9, 2e-9, 4e-9}) {
    const double expected = 1.0 - std::exp(-dt_check / 1e-9);
    EXPECT_NEAR(wave.at("v(out)", t0 + dt_check), expected, 0.01)
        << "at offset " << dt_check;
  }
}

TEST(Transient, RcDischargeFromOp) {
  // Capacitor biased at 1 V by the OP, source drops to 0 at t = 1 ns.
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>(
      "V1", in, ckt.gnd(),
      SourceWave::pulse(1.0, 0.0, 1.0_ns, 1.0_ps, 1.0_ps, 1.0));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, ckt.gnd(), 1.0_pF);
  MnaSystem system(ckt);

  TransientOptions options;
  options.tstop = 5.0_ns;
  spice::Waveform wave = spice::transient(system, options);

  EXPECT_NEAR(wave.at("v(out)", 0.9e-9), 1.0, 1e-6);  // holds OP value
  const double expected = std::exp(-2.0);
  EXPECT_NEAR(wave.at("v(out)", 3.0e-9 + 1.0_ps), expected, 0.01);
}

TEST(Transient, RcCrossingTimeIs693psAtHalf) {
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>(
      "V1", in, ckt.gnd(),
      SourceWave::pulse(0.0, 1.0, 0.1_ns, 1.0_ps, 1.0_ps, 1.0));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, ckt.gnd(), 1.0_pF);
  MnaSystem system(ckt);
  TransientOptions options;
  options.tstop = 4.0_ns;
  spice::Waveform wave = spice::transient(system, options);
  const double t_half =
      spice::cross_time(wave, "v(out)", 0.5, spice::Edge::kRising);
  EXPECT_NEAR(t_half - 0.1_ns, std::log(2.0) * 1e-9, 0.02e-9);
}

TEST(Transient, SeriesRlcRingingFrequency) {
  // Underdamped series RLC: L = 1 nH, C = 1 pF, R = 10 Ohm.
  // f_d = sqrt(1/LC - (R/2L)^2)/2pi ~ 5.03 GHz.
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId mid = ckt.node("mid");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>(
      "V1", in, ckt.gnd(),
      SourceWave::pulse(0.0, 1.0, 0.05_ns, 1.0_ps, 1.0_ps, 1.0));
  ckt.add<Resistor>("R1", in, mid, 10.0);
  ckt.add<Inductor>("L1", mid, out, 1.0_nH);
  ckt.add<Capacitor>("C1", out, ckt.gnd(), 1.0_pF);
  MnaSystem system(ckt);

  TransientOptions options;
  options.tstop = 2.0_ns;
  options.dt_max = 2.0_ps;
  spice::Waveform wave = spice::transient(system, options);

  // Measure the damped period between the first two rising crossings of
  // the final value 1.0.
  const double t1 =
      spice::cross_time(wave, "v(out)", 1.0, spice::Edge::kRising, 1);
  const double t2 =
      spice::cross_time(wave, "v(out)", 1.0, spice::Edge::kRising, 2);
  const double period = t2 - t1;
  const double l = 1e-9, c = 1e-12, r = 10.0;
  const double wd =
      std::sqrt(1.0 / (l * c) - (r / (2.0 * l)) * (r / (2.0 * l)));
  const double expected = 2.0 * std::numbers::pi / wd;
  EXPECT_NEAR(period, expected, 0.05 * expected);
  // And it must overshoot (underdamped).
  EXPECT_GT(spice::max_value(wave, "v(out)"), 1.2);
}

TEST(Transient, ChargeConservationIntoCapacitor) {
  // The integral of source current equals C * dV on the cap.
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>(
      "V1", in, ckt.gnd(),
      SourceWave::pulse(0.0, 1.0, 0.2_ns, 10.0_ps, 10.0_ps, 1.0));
  ckt.add<Resistor>("R1", in, out, 2e3);
  ckt.add<Capacitor>("C1", out, ckt.gnd(), 2.0_pF);
  MnaSystem system(ckt);
  TransientOptions options;
  options.tstop = 30.0_ns;
  spice::Waveform wave = spice::transient(system, options);

  const double q_source =
      -spice::integrate(wave, "i(V1)", 0.0, wave.end_time());
  const double dv = spice::final_value(wave, "v(out)");
  EXPECT_NEAR(q_source, 2e-12 * dv, 0.03 * 2e-12 * dv);
}

TEST(Transient, SineSourceAmplitudePreserved) {
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, ckt.gnd(),
                         SourceWave::sine(0.5, 0.25, 1e9));
  ckt.add<Resistor>("R1", in, ckt.gnd(), 1e3);
  MnaSystem system(ckt);
  TransientOptions options;
  options.tstop = 2.0_ns;
  options.dt_max = 10.0_ps;
  spice::Waveform wave = spice::transient(system, options);
  EXPECT_NEAR(spice::max_value(wave, "v(in)"), 0.75, 0.01);
  EXPECT_NEAR(spice::min_value(wave, "v(in)"), 0.25, 0.01);
}

TEST(Transient, BreakpointsAreHitExactly) {
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  ckt.add<VoltageSource>(
      "V1", in, ckt.gnd(),
      SourceWave::pulse(0.0, 1.0, 1.0_ns, 0.1_ns, 0.1_ns, 1.0_ns));
  ckt.add<Resistor>("R1", in, ckt.gnd(), 1e3);
  MnaSystem system(ckt);
  TransientOptions options;
  options.tstop = 5.0_ns;
  spice::Waveform wave = spice::transient(system, options);
  // The source's corner values must be sampled exactly.
  EXPECT_NEAR(wave.at("v(in)", 1.0_ns), 0.0, 1e-9);
  EXPECT_NEAR(wave.at("v(in)", 1.1_ns), 1.0, 1e-9);
  EXPECT_NEAR(wave.at("v(in)", 2.1_ns), 1.0, 1e-9);
  EXPECT_NEAR(wave.at("v(in)", 2.2_ns), 0.0, 1e-9);
}

TEST(Transient, RejectsNonPositiveStop) {
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, ckt.gnd(), SourceWave::dc(1.0));
  ckt.add<Resistor>("R1", in, ckt.gnd(), 1e3);
  MnaSystem system(ckt);
  TransientOptions options;
  options.tstop = 0.0;
  EXPECT_THROW(spice::transient(system, options), InvalidArgument);
}

}  // namespace
}  // namespace nemsim
