// NEMFET electromechanical model tests: pull-in/pull-out physics,
// hysteresis, Table 1 calibration, and transient switching.
#include <gtest/gtest.h>

#include <cmath>

#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/dcsweep.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"
#include "nemsim/tech/characterize.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
using devices::Nemfet;
using devices::NemsParams;
using devices::NemsPolarity;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::MnaSystem;

// ------------------------------------------------------- analytic checks

TEST(NemsParams, PullInNearHalfVolt) {
  const NemsParams p = tech::nems_90nm();
  EXPECT_GT(p.analytic_pull_in_voltage(), 0.3);
  EXPECT_LT(p.analytic_pull_in_voltage(), 0.6);
}

TEST(NemsParams, PullOutBelowPullIn) {
  const NemsParams p = tech::nems_90nm();
  EXPECT_LT(p.analytic_pull_out_voltage(), p.analytic_pull_in_voltage());
  EXPECT_GT(p.analytic_pull_out_voltage(), 0.0);
}

TEST(NemfetModel, ForceIncreasesWithVoltageAndDisplacement) {
  const NemsParams p = tech::nems_90nm();
  Nemfet x("X", spice::NodeId{1}, spice::NodeId{2}, spice::NodeId{0},
           NemsPolarity::kN, p, 1.0_um);
  const double f1 = x.electrostatic_force(0.3, 0.0);
  const double f2 = x.electrostatic_force(0.6, 0.0);
  EXPECT_NEAR(f2 / f1, 4.0, 1e-9);  // F ~ V^2
  const double f3 = x.electrostatic_force(0.3, 1.0_nm);
  EXPECT_GT(f3, f1);  // closing the gap raises the force
}

TEST(NemfetModel, ContactForceOnlyNearStop) {
  const NemsParams p = tech::nems_90nm();
  Nemfet x("X", spice::NodeId{1}, spice::NodeId{2}, spice::NodeId{0},
           NemsPolarity::kN, p, 1.0_um);
  EXPECT_LT(x.contact_force(0.0), 1e-15);
  EXPECT_GT(x.contact_force(p.gap0 + 0.1_nm), 1e-7);
}

TEST(NemfetModel, ChannelOffWhenUpOnWhenDown) {
  const NemsParams p = tech::nems_90nm();
  Nemfet x("X", spice::NodeId{1}, spice::NodeId{2}, spice::NodeId{0},
           NemsPolarity::kN, p, 1.0_um);
  const double i_up = x.drain_current(1.2, 1.2, 0.0);
  const double i_down = x.drain_current(1.2, 1.2, p.gap0);
  EXPECT_GT(i_down / i_up, 1e5);
}

TEST(NemfetModel, GateCapRisesAsGapCloses) {
  const NemsParams p = tech::nems_90nm();
  Nemfet x("X", spice::NodeId{1}, spice::NodeId{2}, spice::NodeId{0},
           NemsPolarity::kN, p, 1.0_um);
  EXPECT_GT(x.gate_capacitance(p.gap0), 3.0 * x.gate_capacitance(0.0));
}

// ------------------------------------------------- DC sweep / hysteresis

TEST(NemfetCharacterize, Table1Calibration) {
  tech::NemsIV iv = tech::characterize_nemfet(tech::nems_90nm(), 1.0_um, 1.2);
  EXPECT_NEAR(iv.iv.ion, 330e-6, 0.10 * 330e-6);   // 330 uA/um +- 10 %
  EXPECT_NEAR(iv.iv.ioff, 110e-12, 0.25 * 110e-12);  // 110 pA/um +- 25 %
}

TEST(NemfetCharacterize, SteepSwitchingNearPullIn) {
  tech::NemsIV iv = tech::characterize_nemfet(tech::nems_90nm(), 1.0_um, 1.2);
  // The mechanical snap gives a far-sub-thermionic effective swing.
  EXPECT_LT(iv.iv.swing_mv_dec, 10.0);
}

TEST(NemfetCharacterize, HysteresisWindowMatchesAnalytics) {
  const NemsParams p = tech::nems_90nm();
  tech::NemsIV iv = tech::characterize_nemfet(p, 1.0_um, 1.2);
  EXPECT_NEAR(iv.pull_in_v, p.analytic_pull_in_voltage(),
              0.15 * p.analytic_pull_in_voltage());
  EXPECT_LT(iv.pull_out_v, iv.pull_in_v);
}

TEST(NemfetCharacterize, OnOffRatioBeatsCmosBy500x) {
  tech::NemsIV nems = tech::characterize_nemfet(tech::nems_90nm(), 1.0_um, 1.2);
  tech::DeviceIV cmos = tech::characterize_mosfet(
      tech::nmos_90nm(), devices::MosPolarity::kNmos, 1.0_um, 0.1_um, 1.2);
  const double nems_ratio = nems.iv.ion / nems.iv.ioff;
  const double cmos_ratio = cmos.ion / cmos.ioff;
  EXPECT_GT(nems_ratio / cmos_ratio, 100.0);
}

// ------------------------------------------------------ DC operating point

TEST(NemfetOp, BeamStaysUpBelowPullIn) {
  Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  ckt.add<VoltageSource>("Vd", d, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>("Vg", g, ckt.gnd(), SourceWave::dc(0.2));
  auto& x = ckt.add<Nemfet>("X1", d, g, ckt.gnd(), NemsPolarity::kN,
                            tech::nems_90nm(), 1.0_um);
  MnaSystem system(ckt);
  spice::OpResult op = spice::operating_point(system);
  const double pos = op.x(x.unknown_x());
  EXPECT_LT(pos, 0.5 * tech::nems_90nm().gap0);
  EXPECT_GT(pos, 0.0);  // but slightly deflected
}

TEST(NemfetOp, BeamPullsInAboveVpi) {
  Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  ckt.add<VoltageSource>("Vd", d, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>("Vg", g, ckt.gnd(), SourceWave::dc(1.2));
  auto& x = ckt.add<Nemfet>("X1", d, g, ckt.gnd(), NemsPolarity::kN,
                            tech::nems_90nm(), 1.0_um);
  MnaSystem system(ckt);
  spice::OpResult op = spice::operating_point(system);
  EXPECT_GT(op.x(x.unknown_x()), 0.9 * tech::nems_90nm().gap0);
  // Velocity row pins v = 0 in DC.
  EXPECT_NEAR(op.x(x.unknown_v()), 0.0, 1e-9);
}

// ------------------------------------------------------------- transient

TEST(NemfetTransient, PullInTransitTensOfPicoseconds) {
  Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  ckt.add<VoltageSource>("Vd", d, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>(
      "Vg", g, ckt.gnd(),
      SourceWave::pulse(0.0, 1.2, 0.1_ns, 5.0_ps, 5.0_ps, 2.0_ns));
  auto& x = ckt.add<Nemfet>("X1", d, g, ckt.gnd(), NemsPolarity::kN,
                            tech::nems_90nm(), 1.0_um);
  MnaSystem system(ckt);
  spice::TransientOptions options;
  options.tstop = 1.0_ns;
  spice::Waveform wave = spice::transient(system, options);

  const std::string xsig = "X1.x";
  const double gap = tech::nems_90nm().gap0;
  // Beam starts up...
  EXPECT_LT(wave.at(xsig, 0.05_ns), 0.2 * gap);
  // ... and is in contact well before 1 ns.
  EXPECT_GT(spice::final_value(wave, xsig), 0.9 * gap);
  const double t_contact =
      spice::cross_time(wave, xsig, 0.9 * gap, spice::Edge::kRising);
  const double transit = t_contact - 0.1_ns;
  EXPECT_LT(transit, 0.3_ns);
  EXPECT_GT(transit, 1.0_ps);
  (void)x;
}

TEST(NemfetTransient, ReleasesWhenGateDrops) {
  Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  ckt.add<VoltageSource>("Vd", d, ckt.gnd(), SourceWave::dc(1.2));
  // High long enough to pull in, then 0 for the rest.
  ckt.add<VoltageSource>(
      "Vg", g, ckt.gnd(),
      SourceWave::pulse(1.2, 0.0, 0.5_ns, 5.0_ps, 5.0_ps, 3.0_ns));
  ckt.add<Nemfet>("X1", d, g, ckt.gnd(), NemsPolarity::kN, tech::nems_90nm(),
                  1.0_um);
  MnaSystem system(ckt);
  spice::TransientOptions options;
  options.tstop = 3.0_ns;
  spice::Waveform wave = spice::transient(system, options);
  const double gap = tech::nems_90nm().gap0;
  EXPECT_GT(wave.at("X1.x", 0.4_ns), 0.9 * gap);  // pulled in while high
  EXPECT_LT(spice::final_value(wave, "X1.x"), 0.3 * gap);  // released
}

TEST(NemfetTransient, PmosPolarityPullsInWithNegativeGate) {
  Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  spice::NodeId s = ckt.node("s");
  ckt.add<VoltageSource>("Vs", s, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>("Vd", d, ckt.gnd(), SourceWave::dc(0.0));
  ckt.add<VoltageSource>("Vg", g, ckt.gnd(), SourceWave::dc(0.0));
  auto& x = ckt.add<Nemfet>("X1", d, g, s, NemsPolarity::kP,
                            tech::nems_90nm(), 1.0_um);
  MnaSystem system(ckt);
  spice::OpResult op = spice::operating_point(system);
  // Vgs = -1.2 on a P device: |vgs| far above pull-in.
  EXPECT_GT(op.x(x.unknown_x()), 0.9 * tech::nems_90nm().gap0);
  // And it conducts: current flows from source (1.2 V) to drain.
  EXPECT_GT(std::abs(op.value("i(Vd)")), 1e-5);
}

TEST(NemfetOp, InitialPositionSelectsBranchInHysteresisWindow) {
  const NemsParams p = tech::nems_90nm();
  const double v_mid =
      0.5 * (p.analytic_pull_out_voltage() + p.analytic_pull_in_voltage());
  auto solve_with_start = [&](bool closed) {
    Circuit ckt;
    spice::NodeId d = ckt.node("d");
    spice::NodeId g = ckt.node("g");
    ckt.add<VoltageSource>("Vd", d, ckt.gnd(), SourceWave::dc(0.05));
    ckt.add<VoltageSource>("Vg", g, ckt.gnd(), SourceWave::dc(v_mid));
    auto& x = ckt.add<Nemfet>("X1", d, g, ckt.gnd(), NemsPolarity::kN, p,
                              1.0_um);
    if (closed) x.set_initially_closed();
    MnaSystem system(ckt);
    spice::OpResult op = spice::operating_point(system);
    return op.x(x.unknown_x());
  };
  EXPECT_LT(solve_with_start(false), 0.5 * p.gap0);
  // At mid-window bias the contact root sits slightly above the (soft)
  // stop, a little short of the full gap.
  EXPECT_GT(solve_with_start(true), 0.8 * p.gap0);
}

}  // namespace
}  // namespace nemsim
