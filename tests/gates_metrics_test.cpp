// Tests of the standard-cell builders and the power/PDP metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "nemsim/core/gates.h"
#include "nemsim/core/metrics.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
using core::add_fanout_load;
using core::add_inverter;
using core::add_inverter_chain;
using core::InverterSizes;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::MnaSystem;

TEST(Gates, InverterInverts) {
  Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>("Vin", in, ckt.gnd(), SourceWave::dc(0.0));
  add_inverter(ckt, "INV", in, out, vdd);
  MnaSystem system(ckt);
  EXPECT_GT(spice::operating_point(system).v("out"), 1.19);
  ckt.find<VoltageSource>("Vin").set_dc(1.2);
  EXPECT_LT(spice::operating_point(system).v("out"), 0.01);
}

TEST(Gates, FanoutLoadAddsDevices) {
  Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId n = ckt.node("n");
  const std::size_t before = ckt.num_devices();
  add_fanout_load(ckt, "L", n, vdd, 3);
  EXPECT_EQ(ckt.num_devices(), before + 6);  // 2 devices per inverter
}

TEST(Gates, InverterChainAlternates) {
  Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId in = ckt.node("in");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>("Vin", in, ckt.gnd(), SourceWave::dc(1.2));
  auto outs = add_inverter_chain(ckt, "CH", in, vdd, ckt.gnd(), 4);
  ASSERT_EQ(outs.size(), 4u);
  MnaSystem system(ckt);
  spice::OpResult op = spice::operating_point(system);
  EXPECT_LT(op.v(outs[0]), 0.01);
  EXPECT_GT(op.v(outs[1]), 1.19);
  EXPECT_LT(op.v(outs[2]), 0.01);
  EXPECT_GT(op.v(outs[3]), 1.19);
}

TEST(Gates, InputCapacitanceScalesWithWidth) {
  InverterSizes s1;
  InverterSizes s2{0.8e-6, 0.4e-6, 1e-7};
  EXPECT_NEAR(core::inverter_input_capacitance(s2) /
                  core::inverter_input_capacitance(s1),
              2.0, 1e-9);
  EXPECT_GT(core::inverter_input_capacitance(s1), 0.1_fF);
  EXPECT_LT(core::inverter_input_capacitance(s1), 10.0_fF);
}

TEST(Gates, Nand2TruthTable) {
  Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId a = ckt.node("a");
  spice::NodeId b = ckt.node("b");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  auto& va = ckt.add<VoltageSource>("Va", a, ckt.gnd(), SourceWave::dc(0.0));
  auto& vb = ckt.add<VoltageSource>("Vb", b, ckt.gnd(), SourceWave::dc(0.0));
  core::add_nand2(ckt, "ND", a, b, out, vdd);
  MnaSystem system(ckt);
  const double truth[4][3] = {
      {0.0, 0.0, 1.2}, {0.0, 1.2, 1.2}, {1.2, 0.0, 1.2}, {1.2, 1.2, 0.0}};
  for (const auto& row : truth) {
    va.set_dc(row[0]);
    vb.set_dc(row[1]);
    EXPECT_NEAR(spice::operating_point(system).v("out"), row[2], 0.02)
        << row[0] << "," << row[1];
  }
}

TEST(Gates, Nor2TruthTable) {
  Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId a = ckt.node("a");
  spice::NodeId b = ckt.node("b");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  auto& va = ckt.add<VoltageSource>("Va", a, ckt.gnd(), SourceWave::dc(0.0));
  auto& vb = ckt.add<VoltageSource>("Vb", b, ckt.gnd(), SourceWave::dc(0.0));
  core::add_nor2(ckt, "NR", a, b, out, vdd);
  MnaSystem system(ckt);
  const double truth[4][3] = {
      {0.0, 0.0, 1.2}, {0.0, 1.2, 0.0}, {1.2, 0.0, 0.0}, {1.2, 1.2, 0.0}};
  for (const auto& row : truth) {
    va.set_dc(row[0]);
    vb.set_dc(row[1]);
    EXPECT_NEAR(spice::operating_point(system).v("out"), row[2], 0.02)
        << row[0] << "," << row[1];
  }
}

// ------------------------------------------------------------- metrics

TEST(Metrics, Equation1Endpoints) {
  // alpha = 0: pure leakage; alpha = 1: pure switching.
  EXPECT_DOUBLE_EQ(core::power_delay_product(0.0, 2.0, 10.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(core::power_delay_product(1.0, 2.0, 10.0, 3.0), 30.0);
  EXPECT_DOUBLE_EQ(core::power_delay_product(0.5, 2.0, 10.0, 3.0), 18.0);
}

TEST(Metrics, Equation1RejectsBadAlpha) {
  EXPECT_THROW(core::power_delay_product(-0.1, 1.0, 1.0, 1.0),
               InvalidArgument);
  EXPECT_THROW(core::power_delay_product(1.1, 1.0, 1.0, 1.0),
               InvalidArgument);
}

TEST(Metrics, StaticPowerOfDividerMatchesOhmsLaw) {
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V1", a, ckt.gnd(), SourceWave::dc(2.0));
  ckt.add<devices::Resistor>("R1", a, ckt.gnd(), 1e3);
  MnaSystem system(ckt);
  spice::OpResult op = spice::operating_point(system);
  EXPECT_NEAR(core::static_power(ckt, op), 4e-3, 1e-9);  // V^2/R
}

TEST(Metrics, SourceEnergyOfRcCharge) {
  // Charging C to V through R draws E = C V^2 from the source.
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>(
      "V1", in, ckt.gnd(),
      SourceWave::pulse(0.0, 1.0, 0.1_ns, 10.0_ps, 10.0_ps, 1.0));
  ckt.add<devices::Resistor>("R1", in, out, 1e3);
  ckt.add<devices::Capacitor>("C1", out, ckt.gnd(), 1.0_pF);
  MnaSystem system(ckt);
  spice::TransientOptions options;
  options.tstop = 15.0_ns;
  spice::Waveform wave = spice::transient(system, options);
  const double e = core::source_energy(ckt, wave, "V1", 0.0, wave.end_time());
  EXPECT_NEAR(e, 1e-12, 0.05e-12);  // C * V^2 (half stored, half in R)
}

TEST(Metrics, AveragePowerConsistentWithEnergy) {
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V1", a, ckt.gnd(), SourceWave::dc(1.0));
  ckt.add<devices::Resistor>("R1", a, ckt.gnd(), 1e3);
  MnaSystem system(ckt);
  spice::TransientOptions options;
  options.tstop = 1.0_ns;
  spice::Waveform wave = spice::transient(system, options);
  const double p = core::source_average_power(ckt, wave, "V1", 0.0, 1.0_ns);
  EXPECT_NEAR(p, 1e-3, 1e-6);  // V^2/R = 1 mW
}

}  // namespace
}  // namespace nemsim
