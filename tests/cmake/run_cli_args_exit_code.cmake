# Runs a CLI with an arbitrary argument list and asserts its exit code.
# A generalization of run_cli_exit_code.cmake for tools whose contract
# involves flags, not just one input file (e.g. the nemsim-fuzz smoke
# corpus).
#
# Usage:
#   cmake -DCMD=<exe> "-DARGS=--seed;1;--count;5" -DEXPECTED=<code> \
#         -P run_cli_args_exit_code.cmake
#
# ARGS is a CMake ;-list, expanded one token per argv entry.
execute_process(
  COMMAND "${CMD}" ${ARGS}
  RESULT_VARIABLE actual
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT actual EQUAL "${EXPECTED}")
  string(REPLACE ";" " " pretty_args "${ARGS}")
  message(FATAL_ERROR
    "${CMD} ${pretty_args}: expected exit code ${EXPECTED}, got ${actual}\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
