# Runs a CLI with an argument list from inside WORKDIR and asserts both
# its exit code and that stdout matches a golden file byte-for-byte.
# Pins the machine-readable findings schema: a formatting or key-name
# change that would break downstream JSON consumers fails this test
# instead of their parsers.
#
# The CLI runs with the fixture directory as its working directory and
# is handed a bare file name, so the "input" field in the golden file
# stays path-independent.
#
# Usage:
#   cmake -DCMD=<exe> "-DARGS=--analyze;--json;deck.sp" -DWORKDIR=<dir>
#         -DGOLDEN=<file> -DEXPECTED=<code> -P run_cli_json_golden.cmake
execute_process(
  COMMAND "${CMD}" ${ARGS}
  WORKING_DIRECTORY "${WORKDIR}"
  RESULT_VARIABLE actual
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT actual EQUAL "${EXPECTED}")
  string(REPLACE ";" " " pretty_args "${ARGS}")
  message(FATAL_ERROR
    "${CMD} ${pretty_args}: expected exit code ${EXPECTED}, got ${actual}\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
file(READ "${GOLDEN}" want)
if(NOT out STREQUAL want)
  message(FATAL_ERROR
    "stdout does not match golden file ${GOLDEN}\n"
    "--- got ---\n${out}\n--- want ---\n${want}")
endif()
