# Runs a CLI on one input file and asserts its exit code.
#
# Usage:
#   cmake -DCMD=<exe> -DDECK=<file> -DEXPECTED=<code> -P run_cli_exit_code.cmake
execute_process(
  COMMAND "${CMD}" "${DECK}"
  RESULT_VARIABLE actual
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT actual EQUAL "${EXPECTED}")
  message(FATAL_ERROR
    "${CMD} ${DECK}: expected exit code ${EXPECTED}, got ${actual}\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
