// Dynamic OR gate tests (paper Section 4): construction, functionality,
// and the headline hybrid-vs-CMOS comparisons at reduced scale.
#include <gtest/gtest.h>

#include "nemsim/core/dynamic_or.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/transient.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
using core::build_dynamic_or;
using core::DynamicOrConfig;
using core::DynamicOrGate;
using devices::SourceWave;
using devices::VoltageSource;

DynamicOrConfig small_config(bool hybrid, int fanin = 4) {
  DynamicOrConfig c;
  c.fanin = fanin;
  c.fanout = 1;
  c.hybrid = hybrid;
  return c;
}

TEST(DynamicOr, BuilderCreatesExpectedTopology) {
  DynamicOrGate gate = build_dynamic_or(small_config(false, 3));
  auto& ckt = gate.ckt();
  EXPECT_TRUE(ckt.has_node("dyn"));
  EXPECT_TRUE(ckt.has_node("out"));
  EXPECT_TRUE(ckt.has_node("in2"));
  EXPECT_NO_THROW(ckt.find_device("Mpre"));
  EXPECT_NO_THROW(ckt.find_device("Mkeep"));
  // Each pull-down leg is a subcircuit instance "Xleg<i>".
  EXPECT_TRUE(ckt.has_instance("Xleg0"));
  EXPECT_NO_THROW(ckt.find_device("Xleg0.MPD"));
}

TEST(DynamicOr, HybridAddsSeriesNemfets) {
  DynamicOrGate gate = build_dynamic_or(small_config(true, 3));
  auto& ckt = gate.ckt();
  EXPECT_NO_THROW(ckt.find_device("Xleg0.XPD"));
  EXPECT_NO_THROW(ckt.find_device("Xleg2.XPD"));
  EXPECT_TRUE(ckt.has_node("Xleg0.mid"));
}

TEST(DynamicOr, KeeperAutosizeScalesWithFanin) {
  DynamicOrGate g4 = build_dynamic_or(small_config(false, 4));
  DynamicOrGate g8 = build_dynamic_or(small_config(false, 8));
  const double w4 = g4.ckt().find<devices::Mosfet>("Mkeep").width();
  const double w8 = g8.ckt().find<devices::Mosfet>("Mkeep").width();
  EXPECT_NEAR(w8 / w4, 2.0, 1e-9);
}

TEST(DynamicOr, KeeperClampedAtMaximum) {
  DynamicOrConfig c = small_config(false, 16);
  DynamicOrGate g = build_dynamic_or(c);
  EXPECT_DOUBLE_EQ(g.ckt().find<devices::Mosfet>("Mkeep").width(),
                   c.keeper_max_width);
}

TEST(DynamicOr, HybridKeeperIsMinimum) {
  DynamicOrConfig c = small_config(true, 16);
  DynamicOrGate g = build_dynamic_or(c);
  EXPECT_DOUBLE_EQ(g.ckt().find<devices::Mosfet>("Mkeep").width(),
                   c.hybrid_keeper_width);
}

TEST(DynamicOr, OutputStaysLowWithNoInput) {
  // No input asserted: out must stay low through the whole cycle.
  for (bool hybrid : {false, true}) {
    DynamicOrGate gate = build_dynamic_or(small_config(hybrid));
    spice::MnaSystem system(gate.ckt());
    spice::TransientOptions options;
    options.tstop = 2.1_ns;
    options.dt_initial = 1e-13;
    spice::Waveform wave = spice::transient(system, options);
    EXPECT_LT(spice::max_value(wave, "v(out)"), 0.1)
        << (hybrid ? "hybrid" : "cmos");
  }
}

TEST(DynamicOr, EvaluatesWhenAnyInputHigh) {
  // OR functionality: asserting only the LAST input must also discharge.
  for (bool hybrid : {false, true}) {
    DynamicOrGate gate = build_dynamic_or(small_config(hybrid));
    auto& c = gate.config;
    gate.ckt()
        .find<VoltageSource>(gate.input_source(c.fanin - 1))
        .set_wave(SourceWave::pulse(0.0, c.vdd,
                                    c.t_precharge + c.t_edge + c.input_skew,
                                    c.t_edge, c.t_edge, 0.7_ns));
    spice::MnaSystem system(gate.ckt());
    spice::TransientOptions options;
    options.tstop = 2.04_ns;
    options.dt_initial = 1e-13;
    spice::Waveform wave = spice::transient(system, options);
    EXPECT_GT(spice::max_value(wave, "v(out)", 1.0_ns), 1.1)
        << (hybrid ? "hybrid" : "cmos");
  }
}

TEST(DynamicOr, MeasuredDelayPositiveAndSane) {
  for (bool hybrid : {false, true}) {
    DynamicOrGate gate = build_dynamic_or(small_config(hybrid));
    const double d = core::measure_worst_case_delay(gate);
    EXPECT_GT(d, 1.0_ps);
    EXPECT_LT(d, 1.0_ns);
  }
}

TEST(DynamicOr, HybridLeakageFarBelowCmos) {
  DynamicOrGate cmos = build_dynamic_or(small_config(false, 8));
  DynamicOrGate hybrid = build_dynamic_or(small_config(true, 8));
  const double leak_c = core::measure_leakage_power(cmos);
  const double leak_h = core::measure_leakage_power(hybrid);
  // "Almost zero leakage": about an order of magnitude or more here
  // (the output inverter and precharge leakage are common to both).
  EXPECT_LT(leak_h, 0.25 * leak_c);
}

TEST(DynamicOr, HybridSwitchingPowerLower) {
  DynamicOrGate cmos = build_dynamic_or(small_config(false, 8));
  DynamicOrGate hybrid = build_dynamic_or(small_config(true, 8));
  const double p_c = core::measure_switching_power(cmos);
  const double p_h = core::measure_switching_power(hybrid);
  EXPECT_LT(p_h, 0.7 * p_c);  // paper: 60-80 % lower at fan-in 8
}

TEST(DynamicOr, NoiseMarginPositiveAndBelowVdd) {
  DynamicOrGate gate = build_dynamic_or(small_config(false, 4));
  const double nm = core::measure_noise_margin(gate, 0.02);
  EXPECT_GT(nm, 0.1);
  EXPECT_LT(nm, 1.2);
}

TEST(DynamicOr, HybridNoiseMarginAtLeastCmos) {
  // The NEMS pull-in threshold blocks sub-Vpi noise entirely, so the
  // hybrid gate's noise margin with a minimum keeper is at least
  // comparable to the CMOS gate's with its sized keeper.
  DynamicOrGate cmos = build_dynamic_or(small_config(false, 4));
  DynamicOrGate hybrid = build_dynamic_or(small_config(true, 4));
  const double nm_c = core::measure_noise_margin(cmos, 0.02);
  const double nm_h = core::measure_noise_margin(hybrid, 0.02);
  EXPECT_GT(nm_h, 0.8 * nm_c);
}

TEST(DynamicOr, RejectsZeroFanin) {
  DynamicOrConfig c;
  c.fanin = 0;
  EXPECT_THROW(build_dynamic_or(c), InvalidArgument);
}

}  // namespace
}  // namespace nemsim
